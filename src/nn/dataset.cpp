#include "nn/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "stats/hash.hpp"

namespace rt::nn {

void Dataset::add(const std::vector<double>& features, double target) {
  const std::size_t d = features.size();
  if (x.empty()) {
    x = math::Matrix(d, 0);
    y = math::Matrix(1, 0);
  }
  if (x.rows() != d) {
    throw std::invalid_argument("Dataset::add: feature dimension mismatch");
  }
  // Column-append via rebuild; datasets here are small (thousands).
  math::Matrix nx(d, x.cols() + 1);
  for (std::size_t i = 0; i < d; ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) nx(i, j) = x(i, j);
    nx(i, x.cols()) = features[i];
  }
  math::Matrix ny(1, y.cols() + 1);
  for (std::size_t j = 0; j < y.cols(); ++j) ny(0, j) = y(0, j);
  ny(0, y.cols()) = target;
  x = std::move(nx);
  y = std::move(ny);
}

Dataset Dataset::from_samples(const std::vector<std::vector<double>>& features,
                              const std::vector<double>& targets) {
  if (features.size() != targets.size()) {
    throw std::invalid_argument("Dataset::from_samples: size mismatch");
  }
  Dataset out;
  if (features.empty()) return out;
  const std::size_t d = features.front().size();
  out.x = math::Matrix(d, features.size());
  out.y = math::Matrix(1, targets.size());
  for (std::size_t j = 0; j < features.size(); ++j) {
    if (features[j].size() != d) {
      throw std::invalid_argument("Dataset::from_samples: ragged features");
    }
    for (std::size_t i = 0; i < d; ++i) out.x(i, j) = features[j][i];
    out.y(0, j) = targets[j];
  }
  return out;
}

Dataset Dataset::subset(const std::vector<std::size_t>& idx) const {
  Dataset out;
  out.x = math::Matrix(x.rows(), idx.size());
  out.y = math::Matrix(y.rows(), idx.size());
  for (std::size_t j = 0; j < idx.size(); ++j) {
    for (std::size_t i = 0; i < x.rows(); ++i) out.x(i, j) = x(i, idx[j]);
    for (std::size_t i = 0; i < y.rows(); ++i) out.y(i, j) = y(i, idx[j]);
  }
  return out;
}

std::pair<Dataset, Dataset> Dataset::split(double train_fraction,
                                           stats::Rng& rng) const {
  std::vector<std::size_t> idx(size());
  std::iota(idx.begin(), idx.end(), 0);
  std::shuffle(idx.begin(), idx.end(), rng.engine());
  const auto n_train = static_cast<std::size_t>(
      std::round(train_fraction * static_cast<double>(size())));
  std::vector<std::size_t> train_idx(idx.begin(), idx.begin() + n_train);
  std::vector<std::size_t> val_idx(idx.begin() + n_train, idx.end());
  return {subset(train_idx), subset(val_idx)};
}

std::pair<Dataset, Dataset> Dataset::split_seeded(double train_fraction,
                                                  std::uint64_t seed) const {
  const double f = std::clamp(train_fraction, 0.0, 1.0);
  // The shuffle source is opened counter-style from (seed, size), so the
  // split depends on nothing but the arguments and the sample count.
  stats::Rng rng = stats::Rng::from_stream(seed, size());
  std::vector<std::size_t> idx(size());
  std::iota(idx.begin(), idx.end(), 0);
  std::shuffle(idx.begin(), idx.end(), rng.engine());
  const auto n_train = std::min(
      size(), static_cast<std::size_t>(
                  std::llround(f * static_cast<double>(size()))));
  std::vector<std::size_t> train_idx(
      idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(n_train));
  std::vector<std::size_t> val_idx(
      idx.begin() + static_cast<std::ptrdiff_t>(n_train), idx.end());
  return {subset(train_idx), subset(val_idx)};
}

Dataset Dataset::concat(const std::vector<Dataset>& parts) {
  Dataset out;
  std::size_t cols = 0;
  std::size_t x_rows = 0;
  std::size_t y_rows = 0;
  bool seen = false;
  for (const auto& p : parts) {
    if (p.size() == 0) continue;
    if (!seen) {
      seen = true;
      x_rows = p.x.rows();
      y_rows = p.y.rows();
    } else if (p.x.rows() != x_rows || p.y.rows() != y_rows) {
      throw std::invalid_argument("Dataset::concat: dimension mismatch");
    }
    cols += p.x.cols();
  }
  if (!seen) return out;
  out.x = math::Matrix(x_rows, cols);
  out.y = math::Matrix(y_rows, cols);
  std::size_t off = 0;
  for (const auto& p : parts) {
    for (std::size_t j = 0; j < p.x.cols(); ++j, ++off) {
      for (std::size_t i = 0; i < x_rows; ++i) out.x(i, off) = p.x(i, j);
      for (std::size_t i = 0; i < y_rows; ++i) out.y(i, off) = p.y(i, j);
    }
  }
  return out;
}

std::uint64_t Dataset::content_hash() const {
  std::uint64_t h = stats::kFnv1aOffset;
  const auto fold_matrix = [&h](const math::Matrix& m) {
    h = stats::fnv1a_u64(h, m.rows());
    h = stats::fnv1a_u64(h, m.cols());
    for (const double value : m.data()) {
      h = stats::fnv1a_double(h, value);
    }
  };
  fold_matrix(x);
  fold_matrix(y);
  return h;
}

void StandardScaler::fit(const math::Matrix& x) {
  mean_.assign(x.rows(), 0.0);
  std_.assign(x.rows(), 1.0);
  if (x.cols() == 0) return;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < x.cols(); ++j) s += x(i, j);
    mean_[i] = s / static_cast<double>(x.cols());
    double ss = 0.0;
    for (std::size_t j = 0; j < x.cols(); ++j) {
      ss += (x(i, j) - mean_[i]) * (x(i, j) - mean_[i]);
    }
    const double sd = std::sqrt(ss / static_cast<double>(x.cols()));
    std_[i] = sd > 1e-9 ? sd : 1.0;
  }
}

math::Matrix StandardScaler::transform(const math::Matrix& x) const {
  if (mean_.size() != x.rows()) {
    throw std::invalid_argument("StandardScaler: dimension mismatch");
  }
  math::Matrix out = x;
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) {
      out(i, j) = (x(i, j) - mean_[i]) / std_[i];
    }
  }
  return out;
}

void StandardScaler::transform_in_place(math::Matrix& x) const {
  if (mean_.size() != x.rows()) {
    throw std::invalid_argument("StandardScaler: dimension mismatch");
  }
  for (std::size_t i = 0; i < x.rows(); ++i) {
    for (std::size_t j = 0; j < x.cols(); ++j) {
      x(i, j) = (x(i, j) - mean_[i]) / std_[i];
    }
  }
}

std::vector<double> StandardScaler::transform(
    const std::vector<double>& features) const {
  if (mean_.size() != features.size()) {
    throw std::invalid_argument("StandardScaler: dimension mismatch");
  }
  std::vector<double> out(features.size());
  for (std::size_t i = 0; i < features.size(); ++i) {
    out[i] = (features[i] - mean_[i]) / std_[i];
  }
  return out;
}

}  // namespace rt::nn
