#pragma once

#include <vector>

#include "math/matrix.hpp"

namespace rt::nn {

/// Adam optimizer (the paper trains the safety hijacker with Adam).
class Adam {
 public:
  struct Config {
    double lr{1e-3};
    double beta1{0.9};
    double beta2{0.999};
    double eps{1e-8};
  };

  explicit Adam(Config config) : config_(config) {}
  Adam() : Adam(Config{}) {}

  /// Applies one update to `params` given `grads` (parallel vectors of
  /// equal shapes). First/second moment buffers are lazily initialized.
  void step(const std::vector<math::Matrix*>& params,
            const std::vector<math::Matrix*>& grads);

  [[nodiscard]] const Config& config() const { return config_; }
  [[nodiscard]] long steps_taken() const { return t_; }

 private:
  Config config_;
  long t_{0};
  std::vector<math::Matrix> m_;
  std::vector<math::Matrix> v_;
};

}  // namespace rt::nn
