#include "nn/layer.hpp"

#include <cmath>

namespace rt::nn {

Dense::Dense(std::size_t in, std::size_t out, stats::Rng& rng)
    : Dense(in, out) {
  const double scale = std::sqrt(2.0 / static_cast<double>(in));
  for (double& v : w_.data()) v = rng.normal(0.0, scale);
}

Dense::Dense(std::size_t in, std::size_t out)
    : w_(out, in), b_(out, 1), gw_(out, in), gb_(out, 1) {}

void Dense::forward_into(const math::Matrix& x, math::Matrix& y,
                         bool /*training*/) {
  math::affine_into(w_, x, b_, y);
}

void Dense::backward_into(const math::Matrix& x_in,
                          const math::Matrix& grad_out,
                          math::Matrix& grad_in) {
  math::multiply_transposed_into(grad_out, x_in, gw_);
  gb_.resize(b_.rows(), 1);
  for (std::size_t i = 0; i < grad_out.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < grad_out.cols(); ++j) s += grad_out(i, j);
    gb_(i, 0) = s;
  }
  math::transposed_multiply_into(w_, grad_out, grad_in);
}

void Relu::forward_into(const math::Matrix& x, math::Matrix& y,
                        bool training) {
  y.resize(x.rows(), x.cols());
  const auto xd = x.data();
  const auto yd = y.data();
  if (!training) {
    // Inference clamps only strict negatives (preserves -0.0 bit patterns,
    // exactly like the historical copy-then-clamp loop).
    for (std::size_t i = 0; i < xd.size(); ++i) {
      yd[i] = xd[i] < 0.0 ? 0.0 : xd[i];
    }
    return;
  }
  // Training keeps strict positives (a -0.0 input becomes +0.0, matching
  // the historical mask-building loop bit for bit).
  for (std::size_t i = 0; i < xd.size(); ++i) {
    yd[i] = xd[i] > 0.0 ? xd[i] : 0.0;
  }
}

void Relu::backward_into(const math::Matrix& x_in,
                         const math::Matrix& grad_out,
                         math::Matrix& grad_in) {
  grad_in.resize(grad_out.rows(), grad_out.cols());
  const auto xd = x_in.data();
  const auto gd = grad_out.data();
  const auto od = grad_in.data();
  for (std::size_t i = 0; i < gd.size(); ++i) {
    od[i] = gd[i] * (xd[i] > 0.0 ? 1.0 : 0.0);
  }
}

void Dropout::forward_into(const math::Matrix& x, math::Matrix& y,
                           bool training) {
  if (!training) {
    y = x;
    return;
  }
  if (rate_ <= 0.0) {
    mask_ = math::Matrix();
    y = x;
    return;
  }
  mask_.resize(x.rows(), x.cols());
  y.resize(x.rows(), x.cols());
  const double keep = 1.0 - rate_;
  const auto xd = x.data();
  const auto yd = y.data();
  const auto md = mask_.data();
  for (std::size_t i = 0; i < xd.size(); ++i) {
    // Inverted dropout: kept units are scaled by 1/keep so inference needs
    // no rescaling.
    md[i] = rng_.bernoulli(keep) ? 1.0 / keep : 0.0;
    yd[i] = xd[i] * md[i];
  }
}

void Dropout::backward_into(const math::Matrix& /*x_in*/,
                            const math::Matrix& grad_out,
                            math::Matrix& grad_in) {
  if (mask_.empty()) {
    grad_in = grad_out;
    return;
  }
  grad_in.resize(grad_out.rows(), grad_out.cols());
  const auto gd = grad_out.data();
  const auto md = mask_.data();
  const auto od = grad_in.data();
  for (std::size_t i = 0; i < gd.size(); ++i) od[i] = gd[i] * md[i];
}

}  // namespace rt::nn
