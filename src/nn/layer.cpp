#include "nn/layer.hpp"

#include <cmath>

namespace rt::nn {

Dense::Dense(std::size_t in, std::size_t out, stats::Rng& rng)
    : Dense(in, out) {
  const double scale = std::sqrt(2.0 / static_cast<double>(in));
  for (double& v : w_.data()) v = rng.normal(0.0, scale);
}

Dense::Dense(std::size_t in, std::size_t out)
    : w_(out, in), b_(out, 1), gw_(out, in), gb_(out, 1) {}

math::Matrix Dense::forward(const math::Matrix& x, bool training) {
  if (training) x_cache_ = x;
  math::Matrix y = w_ * x;
  for (std::size_t i = 0; i < y.rows(); ++i) {
    const double bi = b_(i, 0);
    for (std::size_t j = 0; j < y.cols(); ++j) y(i, j) += bi;
  }
  return y;
}

math::Matrix Dense::backward(const math::Matrix& grad_out) {
  gw_ = grad_out * x_cache_.transposed();
  gb_ = math::Matrix(b_.rows(), 1);
  for (std::size_t i = 0; i < grad_out.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < grad_out.cols(); ++j) s += grad_out(i, j);
    gb_(i, 0) = s;
  }
  return w_.transposed() * grad_out;
}

math::Matrix Relu::forward(const math::Matrix& x, bool training) {
  math::Matrix y = x;
  auto yd = y.data();
  if (!training) {
    for (std::size_t i = 0; i < yd.size(); ++i) {
      if (yd[i] < 0.0) yd[i] = 0.0;
    }
    return y;
  }
  mask_ = math::Matrix(x.rows(), x.cols());
  auto md = mask_.data();
  for (std::size_t i = 0; i < yd.size(); ++i) {
    if (yd[i] > 0.0) {
      md[i] = 1.0;
    } else {
      yd[i] = 0.0;
    }
  }
  return y;
}

math::Matrix Relu::backward(const math::Matrix& grad_out) {
  math::Matrix g = grad_out;
  auto gd = g.data();
  auto md = mask_.data();
  for (std::size_t i = 0; i < gd.size(); ++i) gd[i] *= md[i];
  return g;
}

math::Matrix Dropout::forward(const math::Matrix& x, bool training) {
  if (!training) return x;
  if (rate_ <= 0.0) {
    mask_ = math::Matrix();
    return x;
  }
  mask_ = math::Matrix(x.rows(), x.cols());
  math::Matrix y = x;
  const double keep = 1.0 - rate_;
  auto yd = y.data();
  auto md = mask_.data();
  for (std::size_t i = 0; i < yd.size(); ++i) {
    // Inverted dropout: kept units are scaled by 1/keep so inference needs
    // no rescaling.
    md[i] = rng_.bernoulli(keep) ? 1.0 / keep : 0.0;
    yd[i] *= md[i];
  }
  return y;
}

math::Matrix Dropout::backward(const math::Matrix& grad_out) {
  if (mask_.empty()) return grad_out;
  math::Matrix g = grad_out;
  auto gd = g.data();
  auto md = mask_.data();
  for (std::size_t i = 0; i < gd.size(); ++i) gd[i] *= md[i];
  return g;
}

}  // namespace rt::nn
