#include "nn/layer.hpp"

#include <algorithm>
#include <cmath>

namespace rt::nn {

namespace {

/// Minimum number of multiply-accumulate operations before a product is
/// worth fanning over the pool (below this the queue round-trip dominates).
/// Purely a performance heuristic: the row-sliced and serial kernels are
/// bit-identical, so the threshold can never change results.
constexpr std::size_t kParallelMinOps = 16 * 1024;

/// Fans output rows [0, rows) over the pool as contiguous pre-assigned
/// slots; falls back to one serial slot when the pool is absent or the
/// product is too small.
template <typename Fn>
void for_row_slots(runtime::ThreadPool* pool, std::size_t rows,
                   std::size_t ops, const Fn& fn) {
  if (pool == nullptr || pool->size() < 2 || rows < 2 ||
      ops < kParallelMinOps) {
    fn(0, rows);
    return;
  }
  const std::size_t slots = std::min<std::size_t>(pool->size(), rows);
  const std::size_t chunk = (rows + slots - 1) / slots;
  pool->parallel_for(static_cast<int>(slots), [&](int s) {
    const std::size_t begin = static_cast<std::size_t>(s) * chunk;
    const std::size_t end = std::min(rows, begin + chunk);
    if (begin < end) fn(begin, end);
  });
}

}  // namespace

Dense::Dense(std::size_t in, std::size_t out, stats::Rng& rng)
    : Dense(in, out) {
  const double scale = std::sqrt(2.0 / static_cast<double>(in));
  for (double& v : w_.data()) v = rng.normal(0.0, scale);
}

Dense::Dense(std::size_t in, std::size_t out)
    : w_(out, in), b_(out, 1), gw_(out, in), gb_(out, 1) {}

void Dense::forward_into(const math::Matrix& x, math::Matrix& y,
                         bool /*training*/) {
  if (pool_ == nullptr) {
    math::affine_into(w_, x, b_, y);
    return;
  }
  y.resize(w_.rows(), x.cols());
  const std::size_t ops = w_.rows() * w_.cols() * x.cols();
  for_row_slots(pool_, w_.rows(), ops,
                [&](std::size_t r0, std::size_t r1) {
                  math::affine_rows_into(w_, x, b_, y, r0, r1);
                });
}

void Dense::backward_into(const math::Matrix& x_in,
                          const math::Matrix& grad_out,
                          math::Matrix& grad_in) {
  if (pool_ == nullptr) {
    math::multiply_transposed_into(grad_out, x_in, gw_);
  } else {
    gw_.resize(grad_out.rows(), x_in.rows());
    const std::size_t gw_ops = grad_out.rows() * grad_out.cols() * x_in.rows();
    for_row_slots(pool_, grad_out.rows(), gw_ops,
                  [&](std::size_t r0, std::size_t r1) {
                    math::multiply_transposed_rows_into(grad_out, x_in, gw_,
                                                        r0, r1);
                  });
  }
  gb_.resize(b_.rows(), 1);
  for (std::size_t i = 0; i < grad_out.rows(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < grad_out.cols(); ++j) s += grad_out(i, j);
    gb_(i, 0) = s;
  }
  if (pool_ == nullptr) {
    math::transposed_multiply_into(w_, grad_out, grad_in);
    return;
  }
  grad_in.resize(w_.cols(), grad_out.cols());
  const std::size_t gi_ops = w_.cols() * w_.rows() * grad_out.cols();
  for_row_slots(pool_, w_.cols(), gi_ops,
                [&](std::size_t r0, std::size_t r1) {
                  math::transposed_multiply_rows_into(w_, grad_out, grad_in,
                                                      r0, r1);
                });
}

void Relu::forward_into(const math::Matrix& x, math::Matrix& y,
                        bool training) {
  y.resize(x.rows(), x.cols());
  const auto xd = x.data();
  const auto yd = y.data();
  if (!training) {
    // Inference clamps only strict negatives (preserves -0.0 bit patterns,
    // exactly like the historical copy-then-clamp loop).
    for (std::size_t i = 0; i < xd.size(); ++i) {
      yd[i] = xd[i] < 0.0 ? 0.0 : xd[i];
    }
    return;
  }
  // Training keeps strict positives (a -0.0 input becomes +0.0, matching
  // the historical mask-building loop bit for bit).
  for (std::size_t i = 0; i < xd.size(); ++i) {
    yd[i] = xd[i] > 0.0 ? xd[i] : 0.0;
  }
}

void Relu::backward_into(const math::Matrix& x_in,
                         const math::Matrix& grad_out,
                         math::Matrix& grad_in) {
  grad_in.resize(grad_out.rows(), grad_out.cols());
  const auto xd = x_in.data();
  const auto gd = grad_out.data();
  const auto od = grad_in.data();
  for (std::size_t i = 0; i < gd.size(); ++i) {
    od[i] = gd[i] * (xd[i] > 0.0 ? 1.0 : 0.0);
  }
}

void Dropout::forward_into(const math::Matrix& x, math::Matrix& y,
                           bool training) {
  if (!training) {
    y = x;
    return;
  }
  if (rate_ <= 0.0) {
    mask_ = math::Matrix();
    y = x;
    return;
  }
  mask_.resize(x.rows(), x.cols());
  y.resize(x.rows(), x.cols());
  const double keep = 1.0 - rate_;
  const auto xd = x.data();
  const auto yd = y.data();
  const auto md = mask_.data();
  for (std::size_t i = 0; i < xd.size(); ++i) {
    // Inverted dropout: kept units are scaled by 1/keep so inference needs
    // no rescaling.
    md[i] = rng_.bernoulli(keep) ? 1.0 / keep : 0.0;
    yd[i] = xd[i] * md[i];
  }
}

void Dropout::backward_into(const math::Matrix& /*x_in*/,
                            const math::Matrix& grad_out,
                            math::Matrix& grad_in) {
  if (mask_.empty()) {
    grad_in = grad_out;
    return;
  }
  grad_in.resize(grad_out.rows(), grad_out.cols());
  const auto gd = grad_out.data();
  const auto md = mask_.data();
  const auto od = grad_in.data();
  for (std::size_t i = 0; i < gd.size(); ++i) od[i] = gd[i] * md[i];
}

}  // namespace rt::nn
