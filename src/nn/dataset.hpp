#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "math/matrix.hpp"
#include "stats/rng.hpp"

namespace rt::nn {

/// A supervised dataset: inputs X (features x N) and targets Y
/// (outputs x N), column per sample.
struct Dataset {
  math::Matrix x;
  math::Matrix y;

  [[nodiscard]] std::size_t size() const { return x.cols(); }

  /// Appends one sample (feature vector + scalar target). O(N) rebuild —
  /// fine for tests; bulk construction should use `from_samples`.
  void add(const std::vector<double>& features, double target);

  /// Bulk constructor from parallel sample/target vectors.
  [[nodiscard]] static Dataset from_samples(
      const std::vector<std::vector<double>>& features,
      const std::vector<double>& targets);

  /// Extracts the columns listed in `idx`.
  [[nodiscard]] Dataset subset(const std::vector<std::size_t>& idx) const;

  /// Random train/validation split. `train_fraction` in (0, 1); the paper
  /// uses a 60/40 split.
  [[nodiscard]] std::pair<Dataset, Dataset> split(double train_fraction,
                                                  stats::Rng& rng) const;

  /// Seeded train/holdout split: same shuffle-based contract as `split`,
  /// but a pure function of (train_fraction, seed, size) — no caller-held
  /// Rng state is consumed, so repeated and concurrent callers always agree
  /// on which samples are held out. `train_fraction` is clamped to [0, 1].
  [[nodiscard]] std::pair<Dataset, Dataset> split_seeded(
      double train_fraction, std::uint64_t seed) const;

  /// Column-wise (sample-wise) concatenation in `parts` order. Empty parts
  /// are skipped; non-empty parts must agree on feature/target dimensions.
  [[nodiscard]] static Dataset concat(const std::vector<Dataset>& parts);

  /// Order-sensitive bit-exact digest (FNV-1a over the dimensions and every
  /// double's bit pattern). Golden tests pin dataset-generation pipelines
  /// on this: any change to sample order, count or a single bit of content
  /// changes the hash.
  [[nodiscard]] std::uint64_t content_hash() const;
};

/// Per-feature standardization (fit on train, apply everywhere). The
/// safety-hijacker inputs mix meters, m/s and frame counts, so without this
/// the wide-range features dominate the early gradient steps.
class StandardScaler {
 public:
  void fit(const math::Matrix& x);
  [[nodiscard]] math::Matrix transform(const math::Matrix& x) const;
  [[nodiscard]] std::vector<double> transform(
      const std::vector<double>& features) const;
  /// In-place standardization of a (features x batch) matrix — the batch-1
  /// inference hot path uses this on a reused scratch column. Same
  /// arithmetic as `transform`.
  void transform_in_place(math::Matrix& x) const;

  [[nodiscard]] const std::vector<double>& means() const { return mean_; }
  [[nodiscard]] const std::vector<double>& stddevs() const { return std_; }
  void set(std::vector<double> means, std::vector<double> stds) {
    mean_ = std::move(means);
    std_ = std::move(stds);
  }

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

}  // namespace rt::nn
