#pragma once

#include <cstddef>
#include <vector>

#include "math/matrix.hpp"
#include "stats/rng.hpp"

namespace rt::nn {

/// A supervised dataset: inputs X (features x N) and targets Y
/// (outputs x N), column per sample.
struct Dataset {
  math::Matrix x;
  math::Matrix y;

  [[nodiscard]] std::size_t size() const { return x.cols(); }

  /// Appends one sample (feature vector + scalar target). O(N) rebuild —
  /// fine for tests; bulk construction should use `from_samples`.
  void add(const std::vector<double>& features, double target);

  /// Bulk constructor from parallel sample/target vectors.
  [[nodiscard]] static Dataset from_samples(
      const std::vector<std::vector<double>>& features,
      const std::vector<double>& targets);

  /// Extracts the columns listed in `idx`.
  [[nodiscard]] Dataset subset(const std::vector<std::size_t>& idx) const;

  /// Random train/validation split. `train_fraction` in (0, 1); the paper
  /// uses a 60/40 split.
  [[nodiscard]] std::pair<Dataset, Dataset> split(double train_fraction,
                                                  stats::Rng& rng) const;
};

/// Per-feature standardization (fit on train, apply everywhere). The
/// safety-hijacker inputs mix meters, m/s and frame counts, so without this
/// the wide-range features dominate the early gradient steps.
class StandardScaler {
 public:
  void fit(const math::Matrix& x);
  [[nodiscard]] math::Matrix transform(const math::Matrix& x) const;
  [[nodiscard]] std::vector<double> transform(
      const std::vector<double>& features) const;

  [[nodiscard]] const std::vector<double>& means() const { return mean_; }
  [[nodiscard]] const std::vector<double>& stddevs() const { return std_; }
  void set(std::vector<double> means, std::vector<double> stds) {
    mean_ = std::move(means);
    std_ = std::move(stds);
  }

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

}  // namespace rt::nn
