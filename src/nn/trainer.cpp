#include "nn/trainer.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "nn/loss.hpp"

namespace rt::nn {

TrainResult Trainer::train(Mlp& net, const Dataset& data,
                           StandardScaler& scaler) {
  TrainResult result;
  stats::Rng rng(config_.seed);
  auto [train_set, val_set] = data.split(config_.train_fraction, rng);
  scaler.fit(train_set.x);
  const math::Matrix x_train = scaler.transform(train_set.x);
  const math::Matrix x_val = scaler.transform(val_set.x);

  Adam optimizer({config_.lr, 0.9, 0.999, 1e-8});
  const std::size_t n = x_train.cols();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  double best_val = std::numeric_limits<double>::infinity();
  int since_best = 0;

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    double train_loss_sum = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < n; start += config_.batch_size) {
      const std::size_t end = std::min(n, start + config_.batch_size);
      math::Matrix xb(x_train.rows(), end - start);
      math::Matrix yb(train_set.y.rows(), end - start);
      for (std::size_t j = start; j < end; ++j) {
        for (std::size_t i = 0; i < xb.rows(); ++i) {
          xb(i, j - start) = x_train(i, order[j]);
        }
        for (std::size_t i = 0; i < yb.rows(); ++i) {
          yb(i, j - start) = train_set.y(i, order[j]);
        }
      }
      const math::Matrix pred = net.forward(xb, /*training=*/true);
      train_loss_sum += MseLoss::value(pred, yb);
      ++batches;
      net.backward(MseLoss::gradient(pred, yb));
      optimizer.step(net.parameters(), net.gradients());
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss =
        batches > 0 ? train_loss_sum / static_cast<double>(batches) : 0.0;
    if (x_val.cols() > 0) {
      const math::Matrix val_pred = net.predict(x_val);
      stats.val_loss = MseLoss::value(val_pred, val_set.y);
      stats.val_mae = MseLoss::mae(val_pred, val_set.y);
    }
    result.history.push_back(stats);

    if (config_.patience > 0 && x_val.cols() > 0) {
      if (stats.val_loss < best_val - 1e-9) {
        best_val = stats.val_loss;
        since_best = 0;
      } else if (++since_best >= config_.patience) {
        break;
      }
    }
  }
  if (!result.history.empty()) {
    result.final_val_loss = result.history.back().val_loss;
    result.final_val_mae = result.history.back().val_mae;
  }
  return result;
}

}  // namespace rt::nn
