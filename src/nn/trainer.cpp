#include "nn/trainer.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "nn/loss.hpp"

namespace rt::nn {

TrainResult Trainer::train(Mlp& net, const Dataset& data,
                           StandardScaler& scaler) {
  // Minibatch-level parallelism: the layers fan their products' output rows
  // over this pool for the duration of the run (bit-identical to serial at
  // any thread count — see TrainConfig::threads). The guard clears the
  // layer pool pointers on every exit path so a trained network never
  // escapes with a dangling pool.
  runtime::ThreadPool pool(config_.threads);
  struct ParallelGuard {
    Mlp& net;
    ~ParallelGuard() { net.set_parallel(nullptr); }
  } guard{net};
  net.set_parallel(pool.size() > 1 ? &pool : nullptr);

  TrainResult result;
  stats::Rng rng(config_.seed);
  auto [train_set, val_set] = data.split(config_.train_fraction, rng);
  scaler.fit(train_set.x);
  const math::Matrix x_train = scaler.transform(train_set.x);
  const math::Matrix x_val = scaler.transform(val_set.x);

  Adam optimizer({config_.lr, 0.9, 0.999, 1e-8});
  const std::size_t n = x_train.cols();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);

  double best_val = std::numeric_limits<double>::infinity();
  int since_best = 0;

  // Minibatch gather buffers, loss gradient, and the network workspace are
  // hoisted out of the epoch loop: after the first epoch warms their
  // capacity up, an epoch performs no per-batch heap allocations. The
  // parameter/gradient pointer lists are likewise stable across steps.
  math::Matrix xb;
  math::Matrix yb;
  math::Matrix grad;
  Mlp::Workspace ws;
  const std::vector<math::Matrix*> params = net.parameters();
  const std::vector<math::Matrix*> grads = net.gradients();

  for (int epoch = 0; epoch < config_.epochs; ++epoch) {
    std::shuffle(order.begin(), order.end(), rng.engine());
    double train_loss_sum = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start < n; start += config_.batch_size) {
      const std::size_t end = std::min(n, start + config_.batch_size);
      xb.resize(x_train.rows(), end - start);
      yb.resize(train_set.y.rows(), end - start);
      for (std::size_t j = start; j < end; ++j) {
        for (std::size_t i = 0; i < xb.rows(); ++i) {
          xb(i, j - start) = x_train(i, order[j]);
        }
        for (std::size_t i = 0; i < yb.rows(); ++i) {
          yb(i, j - start) = train_set.y(i, order[j]);
        }
      }
      const math::Matrix& pred = net.forward_into(xb, ws, /*training=*/true);
      train_loss_sum += MseLoss::value(pred, yb);
      ++batches;
      MseLoss::gradient_into(pred, yb, grad);
      net.backward_into(grad, ws);
      optimizer.step(params, grads);
    }

    EpochStats stats;
    stats.epoch = epoch;
    stats.train_loss =
        batches > 0 ? train_loss_sum / static_cast<double>(batches) : 0.0;
    if (x_val.cols() > 0) {
      const math::Matrix& val_pred = net.predict_into(x_val, ws);
      stats.val_loss = MseLoss::value(val_pred, val_set.y);
      stats.val_mae = MseLoss::mae(val_pred, val_set.y);
    }
    result.history.push_back(stats);

    if (config_.patience > 0 && x_val.cols() > 0) {
      if (stats.val_loss < best_val - 1e-9) {
        best_val = stats.val_loss;
        since_best = 0;
      } else if (++since_best >= config_.patience) {
        break;
      }
    }
  }
  if (!result.history.empty()) {
    result.final_val_loss = result.history.back().val_loss;
    result.final_val_mae = result.history.back().val_mae;
  }
  return result;
}

}  // namespace rt::nn
