#pragma once

#include <iosfwd>
#include <string>

#include "nn/dataset.hpp"
#include "nn/mlp.hpp"

namespace rt::nn {

/// Text (de)serialization of an MLP together with its input scaler.
///
/// Used to cache trained safety-hijacker oracles under data/ so the
/// benchmark binaries do not retrain on every invocation. The format is a
/// line-oriented text format:
///   robotack-nn 1
///   scaler <dim> <means...> <stds...>
///   layers <count>
///   dense <in> <out> <weights row-major...> <bias...>
///   relu
///   dropout <rate>
void save_model(std::ostream& os, Mlp& net, const StandardScaler& scaler);
void save_model_file(const std::string& path, Mlp& net,
                     const StandardScaler& scaler);

/// Loads a model saved with `save_model`. Throws std::runtime_error on
/// format errors.
void load_model(std::istream& is, Mlp& net, StandardScaler& scaler);
/// Returns false if the file does not exist; throws on corrupt content.
bool load_model_file(const std::string& path, Mlp& net,
                     StandardScaler& scaler);

}  // namespace rt::nn
