#include "nn/serialize.hpp"

#include <fstream>
#include <memory>
#include <stdexcept>

namespace rt::nn {

namespace {
constexpr const char* kMagic = "robotack-nn";
constexpr int kVersion = 1;
}  // namespace

void save_model(std::ostream& os, Mlp& net, const StandardScaler& scaler) {
  os.precision(17);
  os << kMagic << ' ' << kVersion << '\n';
  os << "scaler " << scaler.means().size();
  for (double m : scaler.means()) os << ' ' << m;
  for (double s : scaler.stddevs()) os << ' ' << s;
  os << '\n';
  os << "layers " << net.layers().size() << '\n';
  for (const auto& layer : net.layers()) {
    if (layer->kind() == "dense") {
      auto* dense = dynamic_cast<Dense*>(layer.get());
      os << "dense " << dense->input_size() << ' ' << dense->output_size();
      for (double v : dense->weights().data()) os << ' ' << v;
      for (double v : dense->bias().data()) os << ' ' << v;
      os << '\n';
    } else if (layer->kind() == "relu") {
      os << "relu\n";
    } else if (layer->kind() == "dropout") {
      auto* drop = dynamic_cast<Dropout*>(layer.get());
      os << "dropout " << drop->rate() << '\n';
    } else {
      throw std::runtime_error("save_model: unknown layer kind " +
                               layer->kind());
    }
  }
}

void save_model_file(const std::string& path, Mlp& net,
                     const StandardScaler& scaler) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("save_model_file: cannot open " + path);
  save_model(os, net, scaler);
}

void load_model(std::istream& is, Mlp& net, StandardScaler& scaler) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != kMagic || version != kVersion) {
    throw std::runtime_error("load_model: bad header");
  }
  std::string tag;
  std::size_t dim = 0;
  if (!(is >> tag >> dim) || tag != "scaler") {
    throw std::runtime_error("load_model: bad scaler header");
  }
  std::vector<double> means(dim), stds(dim);
  for (double& v : means) is >> v;
  for (double& v : stds) is >> v;
  scaler.set(std::move(means), std::move(stds));

  std::size_t n_layers = 0;
  if (!(is >> tag >> n_layers) || tag != "layers") {
    throw std::runtime_error("load_model: bad layers header");
  }
  net = Mlp();
  for (std::size_t i = 0; i < n_layers; ++i) {
    std::string kind;
    if (!(is >> kind)) throw std::runtime_error("load_model: truncated");
    if (kind == "dense") {
      std::size_t in = 0;
      std::size_t out = 0;
      is >> in >> out;
      auto dense = std::make_unique<Dense>(in, out);
      for (double& v : dense->weights().data()) is >> v;
      for (double& v : dense->bias().data()) is >> v;
      net.add(std::move(dense));
    } else if (kind == "relu") {
      net.add(std::make_unique<Relu>());
    } else if (kind == "dropout") {
      double rate = 0.0;
      is >> rate;
      net.add(std::make_unique<Dropout>(rate, stats::Rng(1)));
    } else {
      throw std::runtime_error("load_model: unknown layer kind " + kind);
    }
  }
  if (!is) throw std::runtime_error("load_model: truncated model file");
}

bool load_model_file(const std::string& path, Mlp& net,
                     StandardScaler& scaler) {
  std::ifstream is(path);
  if (!is) return false;
  load_model(is, net, scaler);
  return true;
}

}  // namespace rt::nn
