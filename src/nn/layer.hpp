#pragma once

#include <memory>
#include <string>
#include <vector>

#include "math/matrix.hpp"
#include "stats/rng.hpp"

namespace rt::nn {

/// Base class of all network layers.
///
/// Data layout: activations are (features x batch) matrices; a batch of B
/// input vectors of dimension D is a D x B matrix. Layers cache whatever
/// they need in `forward` for the subsequent `backward`.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass. `training` enables stochastic behaviour (dropout) and
  /// caching for `backward`. Contract: with `training == false` a layer
  /// must not mutate any member state — inference over a shared network
  /// (e.g. one oracle queried by many parallel campaign runs) relies on
  /// read-only forwards being concurrency-safe.
  virtual math::Matrix forward(const math::Matrix& x, bool training) = 0;
  /// Backward pass: receives dL/d(output), returns dL/d(input), and
  /// accumulates parameter gradients internally.
  virtual math::Matrix backward(const math::Matrix& grad_out) = 0;

  /// Trainable parameters and their gradients (parallel vectors).
  virtual std::vector<math::Matrix*> parameters() { return {}; }
  virtual std::vector<math::Matrix*> gradients() { return {}; }

  [[nodiscard]] virtual std::string kind() const = 0;
};

/// Fully-connected layer: y = W x + b.
class Dense : public Layer {
 public:
  /// He-normal initialization (suits the ReLU activations the paper uses).
  Dense(std::size_t in, std::size_t out, stats::Rng& rng);
  /// Uninitialized (weights loaded afterwards, e.g. by the deserializer).
  Dense(std::size_t in, std::size_t out);

  math::Matrix forward(const math::Matrix& x, bool training) override;
  math::Matrix backward(const math::Matrix& grad_out) override;
  std::vector<math::Matrix*> parameters() override { return {&w_, &b_}; }
  std::vector<math::Matrix*> gradients() override { return {&gw_, &gb_}; }
  [[nodiscard]] std::string kind() const override { return "dense"; }

  [[nodiscard]] std::size_t input_size() const { return w_.cols(); }
  [[nodiscard]] std::size_t output_size() const { return w_.rows(); }
  [[nodiscard]] math::Matrix& weights() { return w_; }
  [[nodiscard]] math::Matrix& bias() { return b_; }

 private:
  math::Matrix w_, b_, gw_, gb_, x_cache_;
};

/// Rectified linear unit.
class Relu : public Layer {
 public:
  math::Matrix forward(const math::Matrix& x, bool training) override;
  math::Matrix backward(const math::Matrix& grad_out) override;
  [[nodiscard]] std::string kind() const override { return "relu"; }

 private:
  math::Matrix mask_;
};

/// Inverted dropout (active only during training). The paper uses a 0.1
/// dropout rate in the safety hijacker's network.
class Dropout : public Layer {
 public:
  Dropout(double rate, stats::Rng rng) : rate_(rate), rng_(rng) {}

  math::Matrix forward(const math::Matrix& x, bool training) override;
  math::Matrix backward(const math::Matrix& grad_out) override;
  [[nodiscard]] std::string kind() const override { return "dropout"; }
  [[nodiscard]] double rate() const { return rate_; }

 private:
  double rate_;
  stats::Rng rng_;
  math::Matrix mask_;
};

}  // namespace rt::nn
