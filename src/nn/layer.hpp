#pragma once

#include <memory>
#include <string>
#include <vector>

#include "math/matrix.hpp"
#include "runtime/thread_pool.hpp"
#include "stats/rng.hpp"

namespace rt::nn {

/// Base class of all network layers.
///
/// Data layout: activations are (features x batch) matrices; a batch of B
/// input vectors of dimension D is a D x B matrix.
///
/// The primitives are destination-passing (`forward_into` / `backward_into`)
/// so the hot paths — batch-1 oracle inference inside campaign runs, and the
/// trainer's minibatch loop — run over caller-owned workspace buffers with
/// zero per-call heap allocations (see Mlp::Workspace). The allocating
/// `forward` / `backward` wrappers keep the historical API: `forward` caches
/// the input when training so a later `backward` can run without an
/// externally managed workspace.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Forward pass into `y` (resized in place). `training` enables
  /// stochastic behaviour (dropout) and cache writes for `backward`.
  /// Contract: with `training == false` a layer must not mutate any member
  /// state — inference over a shared network (e.g. one oracle queried by
  /// many parallel campaign runs) relies on read-only forwards being
  /// concurrency-safe. `y` must not alias `x`.
  virtual void forward_into(const math::Matrix& x, math::Matrix& y,
                            bool training) = 0;

  /// Backward pass into `grad_in` (resized in place): receives this layer's
  /// forward input `x_in` and dL/d(output), writes dL/d(input), and
  /// accumulates parameter gradients internally. `grad_in` must alias
  /// neither input.
  virtual void backward_into(const math::Matrix& x_in,
                             const math::Matrix& grad_out,
                             math::Matrix& grad_in) = 0;

  /// Allocating wrapper over `forward_into`; caches `x` when training so
  /// `backward` can be called afterwards.
  math::Matrix forward(const math::Matrix& x, bool training) {
    if (training) x_cache_ = x;
    math::Matrix y;
    forward_into(x, y, training);
    return y;
  }

  /// Allocating wrapper over `backward_into` using the input cached by the
  /// last training-mode `forward`.
  math::Matrix backward(const math::Matrix& grad_out) {
    math::Matrix g;
    backward_into(x_cache_, grad_out, g);
    return g;
  }

  /// True when the layer's inference-mode forward is an exact copy of its
  /// input (dropout). `Mlp::forward_into` skips such layers at inference,
  /// feeding the previous activation straight to the next layer — the
  /// values are bit-identical, the copy just never happens.
  [[nodiscard]] virtual bool inference_identity() const { return false; }

  /// Trainable parameters and their gradients (parallel vectors).
  virtual std::vector<math::Matrix*> parameters() { return {}; }
  virtual std::vector<math::Matrix*> gradients() { return {}; }

  [[nodiscard]] virtual std::string kind() const = 0;

  /// Installs (or clears, with nullptr) a worker pool for this layer's
  /// matrix products. Layers fan their output *rows* over the pool as
  /// pre-assigned disjoint slots — no floating-point accumulation crosses a
  /// slot boundary — so results are BIT-IDENTICAL to the serial kernels at
  /// any pool size (see the row-range kernels in math/matrix.hpp). The
  /// trainer sets this for the duration of a training run and always clears
  /// it afterwards; the pool must outlive every forward/backward issued
  /// while set.
  void set_parallel(runtime::ThreadPool* pool) { pool_ = pool; }

 protected:
  /// Input cached by the allocating `forward(x, training=true)` wrapper.
  math::Matrix x_cache_;
  /// Optional worker pool (nullptr = serial kernels).
  runtime::ThreadPool* pool_{nullptr};
};

/// Fully-connected layer: y = W x + b.
class Dense : public Layer {
 public:
  /// He-normal initialization (suits the ReLU activations the paper uses).
  Dense(std::size_t in, std::size_t out, stats::Rng& rng);
  /// Uninitialized (weights loaded afterwards, e.g. by the deserializer).
  Dense(std::size_t in, std::size_t out);

  void forward_into(const math::Matrix& x, math::Matrix& y,
                    bool training) override;
  void backward_into(const math::Matrix& x_in, const math::Matrix& grad_out,
                     math::Matrix& grad_in) override;
  std::vector<math::Matrix*> parameters() override { return {&w_, &b_}; }
  std::vector<math::Matrix*> gradients() override { return {&gw_, &gb_}; }
  [[nodiscard]] std::string kind() const override { return "dense"; }

  [[nodiscard]] std::size_t input_size() const { return w_.cols(); }
  [[nodiscard]] std::size_t output_size() const { return w_.rows(); }
  [[nodiscard]] math::Matrix& weights() { return w_; }
  [[nodiscard]] math::Matrix& bias() { return b_; }

 private:
  math::Matrix w_, b_, gw_, gb_;
};

/// Rectified linear unit.
class Relu : public Layer {
 public:
  void forward_into(const math::Matrix& x, math::Matrix& y,
                    bool training) override;
  void backward_into(const math::Matrix& x_in, const math::Matrix& grad_out,
                     math::Matrix& grad_in) override;
  [[nodiscard]] std::string kind() const override { return "relu"; }
};

/// Inverted dropout (active only during training). The paper uses a 0.1
/// dropout rate in the safety hijacker's network.
class Dropout : public Layer {
 public:
  Dropout(double rate, stats::Rng rng) : rate_(rate), rng_(rng) {}

  void forward_into(const math::Matrix& x, math::Matrix& y,
                    bool training) override;
  void backward_into(const math::Matrix& x_in, const math::Matrix& grad_out,
                     math::Matrix& grad_in) override;
  [[nodiscard]] std::string kind() const override { return "dropout"; }
  [[nodiscard]] bool inference_identity() const override { return true; }
  [[nodiscard]] double rate() const { return rate_; }

 private:
  double rate_;
  stats::Rng rng_;
  math::Matrix mask_;
};

}  // namespace rt::nn
