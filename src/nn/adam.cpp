#include "nn/adam.hpp"

#include <cmath>
#include <stdexcept>

namespace rt::nn {

void Adam::step(const std::vector<math::Matrix*>& params,
                const std::vector<math::Matrix*>& grads) {
  if (params.size() != grads.size()) {
    throw std::invalid_argument("Adam::step: params/grads size mismatch");
  }
  if (m_.empty()) {
    for (auto* p : params) {
      m_.emplace_back(p->rows(), p->cols());
      v_.emplace_back(p->rows(), p->cols());
    }
  }
  ++t_;
  const double b1 = config_.beta1;
  const double b2 = config_.beta2;
  const double bias1 = 1.0 - std::pow(b1, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(b2, static_cast<double>(t_));
  for (std::size_t i = 0; i < params.size(); ++i) {
    auto p = params[i]->data();
    auto g = grads[i]->data();
    auto m = m_[i].data();
    auto v = v_[i].data();
    for (std::size_t j = 0; j < p.size(); ++j) {
      m[j] = b1 * m[j] + (1.0 - b1) * g[j];
      v[j] = b2 * v[j] + (1.0 - b2) * g[j] * g[j];
      const double mhat = m[j] / bias1;
      const double vhat = v[j] / bias2;
      p[j] -= config_.lr * mhat / (std::sqrt(vhat) + config_.eps);
    }
  }
}

}  // namespace rt::nn
