#pragma once

#include "math/matrix.hpp"

namespace rt::nn {

/// Mean-squared-error loss (the paper's Eq. 3: mean L2 distance between the
/// predicted and ground-truth safety potential).
struct MseLoss {
  /// L = mean over samples of ||pred_j - target_j||^2.
  [[nodiscard]] static double value(const math::Matrix& pred,
                                    const math::Matrix& target) {
    double s = 0.0;
    for (std::size_t i = 0; i < pred.rows(); ++i) {
      for (std::size_t j = 0; j < pred.cols(); ++j) {
        const double d = pred(i, j) - target(i, j);
        s += d * d;
      }
    }
    return pred.cols() > 0 ? s / static_cast<double>(pred.cols()) : 0.0;
  }

  /// dL/dpred for the batch.
  [[nodiscard]] static math::Matrix gradient(const math::Matrix& pred,
                                             const math::Matrix& target) {
    math::Matrix g;
    gradient_into(pred, target, g);
    return g;
  }

  /// dL/dpred into a caller-owned buffer (allocation-free at steady state).
  static void gradient_into(const math::Matrix& pred,
                            const math::Matrix& target, math::Matrix& g) {
    const double scale =
        pred.cols() > 0 ? 2.0 / static_cast<double>(pred.cols()) : 0.0;
    g.resize(pred.rows(), pred.cols());
    const auto pd = pred.data();
    const auto td = target.data();
    const auto gd = g.data();
    for (std::size_t i = 0; i < pd.size(); ++i) {
      gd[i] = (pd[i] - td[i]) * scale;
    }
  }

  /// Mean absolute error — the "prediction within X meters" metric of
  /// §IV-B / Fig. 8.
  [[nodiscard]] static double mae(const math::Matrix& pred,
                                  const math::Matrix& target) {
    double s = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < pred.rows(); ++i) {
      for (std::size_t j = 0; j < pred.cols(); ++j) {
        s += pred(i, j) > target(i, j) ? pred(i, j) - target(i, j)
                                       : target(i, j) - pred(i, j);
        ++n;
      }
    }
    return n > 0 ? s / static_cast<double>(n) : 0.0;
  }
};

}  // namespace rt::nn
