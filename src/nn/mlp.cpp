#include "nn/mlp.hpp"

#include "stats/hash.hpp"

namespace rt::nn {

math::Matrix Mlp::forward(const math::Matrix& x, bool training) {
  math::Matrix h = x;
  for (auto& layer : layers_) h = layer->forward(h, training);
  return h;
}

const math::Matrix& Mlp::forward_into(const math::Matrix& x, Workspace& ws,
                                      bool training) {
  ws.acts.resize(layers_.size() + 1);
  if (!training) {
    // Inference: no backward will read ws.acts, so the input copy into
    // acts[0] is skipped and identity layers (dropout) forward their input
    // pointer instead of copying a matrix per layer. Bit-identical values.
    const math::Matrix* cur = &x;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
      if (layers_[i]->inference_identity()) continue;
      layers_[i]->forward_into(*cur, ws.acts[i + 1], false);
      cur = &ws.acts[i + 1];
    }
    if (cur == &x) {
      // Empty (or all-identity) stack: keep the "valid until next use of
      // ws" lifetime contract by materializing the pass-through.
      ws.acts[0] = x;
      return ws.acts[0];
    }
    return *cur;
  }
  ws.acts[0] = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    layers_[i]->forward_into(ws.acts[i], ws.acts[i + 1], training);
  }
  return ws.acts.back();
}

void Mlp::backward(const math::Matrix& grad_out) {
  math::Matrix g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
}

void Mlp::backward_into(const math::Matrix& grad_out, Workspace& ws) {
  const math::Matrix* g = &grad_out;
  math::Matrix* dst = &ws.grad_a;
  math::Matrix* other = &ws.grad_b;
  for (std::size_t i = layers_.size(); i-- > 0;) {
    layers_[i]->backward_into(ws.acts[i], *g, *dst);
    g = dst;
    std::swap(dst, other);
  }
}

const math::Matrix& Mlp::predict(const math::Matrix& x) {
  // Thread-local: predict stays safe to call concurrently on one shared
  // trained network (each thread forwards over its own buffers).
  thread_local Workspace ws;
  return forward_into(x, ws, false);
}

std::vector<math::Matrix*> Mlp::parameters() {
  std::vector<math::Matrix*> out;
  for (auto& layer : layers_) {
    for (auto* p : layer->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<math::Matrix*> Mlp::gradients() {
  std::vector<math::Matrix*> out;
  for (auto& layer : layers_) {
    for (auto* g : layer->gradients()) out.push_back(g);
  }
  return out;
}

std::size_t Mlp::parameter_count() {
  std::size_t n = 0;
  for (auto* p : parameters()) n += p->rows() * p->cols();
  return n;
}

std::uint64_t Mlp::content_hash() {
  std::uint64_t h = stats::kFnv1aOffset;
  for (auto* p : parameters()) {
    h = stats::fnv1a_u64(h, p->rows());
    h = stats::fnv1a_u64(h, p->cols());
    for (const double v : p->data()) h = stats::fnv1a_double(h, v);
  }
  return h;
}

Mlp make_safety_hijacker_net(stats::Rng& rng, std::size_t input_dim,
                             double dropout_rate) {
  Mlp net;
  const std::size_t hidden[] = {100, 100, 50};
  std::size_t in = input_dim;
  std::uint64_t stream = 101;
  for (std::size_t h : hidden) {
    net.add(std::make_unique<Dense>(in, h, rng));
    net.add(std::make_unique<Relu>());
    net.add(std::make_unique<Dropout>(dropout_rate, rng.derive(stream++)));
    in = h;
  }
  net.add(std::make_unique<Dense>(in, 1, rng));
  return net;
}

}  // namespace rt::nn
