#include "nn/mlp.hpp"

namespace rt::nn {

math::Matrix Mlp::forward(const math::Matrix& x, bool training) {
  math::Matrix h = x;
  for (auto& layer : layers_) h = layer->forward(h, training);
  return h;
}

void Mlp::backward(const math::Matrix& grad_out) {
  math::Matrix g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = (*it)->backward(g);
  }
}

std::vector<math::Matrix*> Mlp::parameters() {
  std::vector<math::Matrix*> out;
  for (auto& layer : layers_) {
    for (auto* p : layer->parameters()) out.push_back(p);
  }
  return out;
}

std::vector<math::Matrix*> Mlp::gradients() {
  std::vector<math::Matrix*> out;
  for (auto& layer : layers_) {
    for (auto* g : layer->gradients()) out.push_back(g);
  }
  return out;
}

std::size_t Mlp::parameter_count() {
  std::size_t n = 0;
  for (auto* p : parameters()) n += p->rows() * p->cols();
  return n;
}

Mlp make_safety_hijacker_net(stats::Rng& rng, std::size_t input_dim,
                             double dropout_rate) {
  Mlp net;
  const std::size_t hidden[] = {100, 100, 50};
  std::size_t in = input_dim;
  std::uint64_t stream = 101;
  for (std::size_t h : hidden) {
    net.add(std::make_unique<Dense>(in, h, rng));
    net.add(std::make_unique<Relu>());
    net.add(std::make_unique<Dropout>(dropout_rate, rng.derive(stream++)));
    in = h;
  }
  net.add(std::make_unique<Dense>(in, 1, rng));
  return net;
}

}  // namespace rt::nn
