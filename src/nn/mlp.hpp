#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace rt::nn {

/// A feed-forward network: an ordered stack of layers.
///
/// The paper's safety hijacker uses exactly this shape: three hidden dense
/// layers (100, 100, 50) with ReLU activations and 0.1 dropout, and a
/// single linear output predicting the safety potential delta_{t+k}
/// (see `make_safety_hijacker_net`).
class Mlp {
 public:
  /// Caller-owned forward/backward buffers: one activation matrix per layer
  /// boundary plus two ping-pong gradient buffers. After a warm-up pass at
  /// a given batch shape, forwards and backwards through a workspace
  /// allocate nothing. A workspace belongs to one caller at a time (the
  /// trainer keeps one; `predict` uses a thread-local one).
  struct Workspace {
    std::vector<math::Matrix> acts;
    math::Matrix grad_a;
    math::Matrix grad_b;
  };

  Mlp() = default;

  void add(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
  }

  /// Forward pass over the whole stack (allocating wrapper; layers cache
  /// their inputs when `training` so `backward` works afterwards).
  math::Matrix forward(const math::Matrix& x, bool training);

  /// Workspace forward: activations land in `ws.acts` (acts[i] is layer i's
  /// input, acts.back() the network output, which is also returned). The
  /// returned reference is valid until the next use of `ws`.
  const math::Matrix& forward_into(const math::Matrix& x, Workspace& ws,
                                   bool training);

  /// Backpropagates dL/d(output); parameter gradients accumulate in layers.
  void backward(const math::Matrix& grad_out);

  /// Workspace backward over the activations of the last `forward_into`
  /// on `ws`.
  void backward_into(const math::Matrix& grad_out, Workspace& ws);

  /// Inference-mode forward (no dropout, no caching). Mutation-free per
  /// the Layer contract, hence safe to call concurrently from multiple
  /// threads on one shared network. Runs over a thread-local workspace
  /// that is shared by every Mlp on the calling thread — zero allocations
  /// at steady state, but the returned reference is invalidated by the
  /// next `predict` on *any* network on this thread: copy the result (or
  /// use `predict_into` with your own workspace) before invoking another
  /// network.
  [[nodiscard]] const math::Matrix& predict(const math::Matrix& x);

  /// Inference-mode forward over an explicit workspace.
  [[nodiscard]] const math::Matrix& predict_into(const math::Matrix& x,
                                                 Workspace& ws) {
    return forward_into(x, ws, false);
  }

  /// Batched inference: `x` packs B query columns into one (D x B) matrix
  /// and the whole stack runs as matrix-matrix products — one kernel call
  /// per layer for the entire batch instead of B matrix-vector forwards.
  /// Column j of the result is BIT-IDENTICAL to `predict` on column j
  /// alone: every kernel accumulates each output element as an ordered
  /// ascending-k sum with the same skip-exact-zero shortcut regardless of
  /// batch width (see the kernel contract in math/matrix.hpp), so batching
  /// is a pure throughput lever, never a semantics change. Same
  /// thread-local workspace and concurrency contract as `predict`.
  [[nodiscard]] const math::Matrix& predict_batch(const math::Matrix& x) {
    return predict(x);
  }

  /// Batched inference over an explicit workspace (zero allocations once
  /// `ws` has seen the batch shape).
  [[nodiscard]] const math::Matrix& predict_batch_into(const math::Matrix& x,
                                                       Workspace& ws) {
    return forward_into(x, ws, false);
  }

  /// Installs (nullptr clears) a worker pool on every layer — see
  /// Layer::set_parallel. Results are bit-identical with or without a pool;
  /// the trainer scopes this to a training run.
  void set_parallel(runtime::ThreadPool* pool) {
    for (auto& layer : layers_) layer->set_parallel(pool);
  }

  [[nodiscard]] std::vector<math::Matrix*> parameters();
  [[nodiscard]] std::vector<math::Matrix*> gradients();
  [[nodiscard]] const std::vector<std::unique_ptr<Layer>>& layers() const {
    return layers_;
  }
  [[nodiscard]] std::size_t parameter_count();

  /// Order-sensitive bit-exact digest of every parameter matrix (shape +
  /// each double's bit pattern), FNV-1a like Dataset::content_hash. Golden
  /// tests pin trained networks on this: any change to a single weight bit
  /// changes the hash.
  [[nodiscard]] std::uint64_t content_hash();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Builds the paper's safety-hijacker architecture (§IV-B): input
/// [delta_t, v_rel(2), a_rel(2), k] -> 100 -> 100 -> 50 -> 1, ReLU
/// activations, dropout 0.1 after each hidden layer.
[[nodiscard]] Mlp make_safety_hijacker_net(stats::Rng& rng,
                                           std::size_t input_dim = 6,
                                           double dropout_rate = 0.1);

}  // namespace rt::nn
