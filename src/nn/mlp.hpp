#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace rt::nn {

/// A feed-forward network: an ordered stack of layers.
///
/// The paper's safety hijacker uses exactly this shape: three hidden dense
/// layers (100, 100, 50) with ReLU activations and 0.1 dropout, and a
/// single linear output predicting the safety potential delta_{t+k}
/// (see `make_safety_hijacker_net`).
class Mlp {
 public:
  Mlp() = default;

  void add(std::unique_ptr<Layer> layer) {
    layers_.push_back(std::move(layer));
  }

  /// Forward pass over the whole stack.
  math::Matrix forward(const math::Matrix& x, bool training);
  /// Inference-mode forward (no dropout, no caching). Mutation-free per
  /// the Layer contract, hence safe to call concurrently from multiple
  /// threads on one shared network.
  [[nodiscard]] math::Matrix predict(const math::Matrix& x) {
    return forward(x, false);
  }
  /// Backpropagates dL/d(output); parameter gradients accumulate in layers.
  void backward(const math::Matrix& grad_out);

  [[nodiscard]] std::vector<math::Matrix*> parameters();
  [[nodiscard]] std::vector<math::Matrix*> gradients();
  [[nodiscard]] const std::vector<std::unique_ptr<Layer>>& layers() const {
    return layers_;
  }
  [[nodiscard]] std::size_t parameter_count();

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// Builds the paper's safety-hijacker architecture (§IV-B): input
/// [delta_t, v_rel(2), a_rel(2), k] -> 100 -> 100 -> 50 -> 1, ReLU
/// activations, dropout 0.1 after each hidden layer.
[[nodiscard]] Mlp make_safety_hijacker_net(stats::Rng& rng,
                                           std::size_t input_dim = 6,
                                           double dropout_rate = 0.1);

}  // namespace rt::nn
