#pragma once

#include <vector>

#include "nn/adam.hpp"
#include "nn/dataset.hpp"
#include "nn/mlp.hpp"

namespace rt::nn {

/// Training hyper-parameters (paper: Adam optimizer, 60/40 train/validation
/// split).
struct TrainConfig {
  int epochs{80};
  std::size_t batch_size{64};
  double lr{1e-3};
  double train_fraction{0.6};
  std::uint64_t seed{7};
  /// Stop early if validation loss has not improved for this many epochs
  /// (0 disables).
  int patience{15};
  /// Worker threads for the minibatch step (0 = one per hardware core,
  /// 1 = serial). Each layer product fans its output rows over the pool as
  /// pre-assigned disjoint slots, so trained weights are BIT-IDENTICAL at
  /// any thread count — including to the historical serial path (see the
  /// row-range kernels in math/matrix.hpp). Dropout masks, the shuffle and
  /// the optimizer stay serial, preserving the RNG stream exactly.
  unsigned threads{1};
};

/// Per-epoch record.
struct EpochStats {
  int epoch{0};
  double train_loss{0.0};
  double val_loss{0.0};
  double val_mae{0.0};
};

/// Training outcome.
struct TrainResult {
  std::vector<EpochStats> history;
  double final_val_loss{0.0};
  double final_val_mae{0.0};
};

/// Minibatch trainer: standardizes inputs with the returned scaler (fit on
/// the training split), optimizes MSE with Adam, tracks validation metrics.
class Trainer {
 public:
  explicit Trainer(TrainConfig config = {}) : config_(config) {}

  /// Trains `net` in place on `data`; `scaler` receives the fitted input
  /// standardization (callers must apply it at inference time).
  TrainResult train(Mlp& net, const Dataset& data, StandardScaler& scaler);

  [[nodiscard]] const TrainConfig& config() const { return config_; }

 private:
  TrainConfig config_;
};

}  // namespace rt::nn
