#pragma once

#include <algorithm>

namespace rt::ads {

/// Textbook PID controller (Astrom & Hagglund [17]).
///
/// The ADS uses it to smooth the planner's acceleration request into the
/// actuation command (§II-A: "commands are smoothed out using a PID
/// controller... ensures that the AV does not make any sudden changes").
/// Includes output clamping with integrator anti-windup.
class PidController {
 public:
  struct Gains {
    double kp{0.0};
    double ki{0.0};
    double kd{0.0};
  };

  PidController(Gains gains, double out_min, double out_max)
      : gains_(gains), out_min_(out_min), out_max_(out_max) {}

  /// One control step on the given error; returns the clamped output.
  double step(double error, double dt) {
    integral_ += error * dt;
    const double derivative = has_prev_ ? (error - prev_error_) / dt : 0.0;
    prev_error_ = error;
    has_prev_ = true;
    double u = gains_.kp * error + gains_.ki * integral_ +
               gains_.kd * derivative;
    if (u > out_max_) {
      // Anti-windup: stop integrating into the saturation.
      if (gains_.ki != 0.0) integral_ -= error * dt;
      u = out_max_;
    } else if (u < out_min_) {
      if (gains_.ki != 0.0) integral_ -= error * dt;
      u = out_min_;
    }
    return u;
  }

  void reset() {
    integral_ = 0.0;
    prev_error_ = 0.0;
    has_prev_ = false;
  }

  [[nodiscard]] double integral() const { return integral_; }

 private:
  Gains gains_;
  double out_min_;
  double out_max_;
  double integral_{0.0};
  double prev_error_{0.0};
  bool has_prev_{false};
};

}  // namespace rt::ads
