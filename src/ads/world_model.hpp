#pragma once

#include <vector>

#include "perception/fusion.hpp"

namespace rt::ads {

/// The ADS's belief about the world ("W_t" in §II-A): the fused perception
/// output plus the ego's own speed (from wheel odometry / GPS-IMU, which the
/// threat model leaves untouched).
struct WorldModel {
  double time{0.0};
  double ego_speed{0.0};
  std::vector<perception::FusedObject> objects;
};

}  // namespace rt::ads
