#pragma once

#include <cmath>

#include "ads/world_model.hpp"
#include "sim/road.hpp"
#include "sim/types.hpp"

namespace rt::ads {

/// Short-horizon trajectory prediction over fused objects (the "Prediction"
/// stage of Fig. 1): constant-velocity extrapolation, plus the derived
/// predicates the planner consumes.
///
/// These predicates are precisely what the attack vectors manipulate:
/// Move_Out forges "will be outside the corridor", Move_In forges "will be
/// inside", Disappear removes the object before prediction sees it.
struct Prediction {
  /// Lateral half-width of the corridor the EV sweeps, for an object of the
  /// given class (object and ego half-widths plus a small margin).
  [[nodiscard]] static double corridor_half_width(sim::ActorType cls,
                                                  double ego_width) {
    const double obj_width = sim::default_dimensions(cls).width;
    return (obj_width + ego_width) / 2.0 + 0.1;
  }

  /// Predicted relative position after `horizon` seconds (constant
  /// relative velocity).
  [[nodiscard]] static math::Vec2 position_in(
      const perception::FusedObject& o, double horizon) {
    return o.rel_position + o.rel_velocity * horizon;
  }

  /// True if the object currently overlaps the EV corridor.
  [[nodiscard]] static bool in_corridor_now(const perception::FusedObject& o,
                                            double ego_width) {
    return std::abs(o.rel_position.y) <
           corridor_half_width(o.cls, ego_width);
  }

  /// True if the object is predicted to overlap the corridor within
  /// `horizon` seconds (evaluated at the horizon end and midpoint).
  /// The horizon is additionally capped by the time the EV needs to *reach*
  /// the object at `ego_speed` — an object the EV passes in 0.3 s cannot
  /// become a threat by drifting laterally for 1.5 s.
  [[nodiscard]] static bool enters_corridor_within(
      const perception::FusedObject& o, double ego_width, double horizon,
      double ego_speed) {
    const double time_to_reach =
        o.rel_position.x / std::max(1.0, ego_speed);
    const double h = std::min(horizon, time_to_reach);
    const double half = corridor_half_width(o.cls, ego_width);
    const auto mid = position_in(o, h / 2.0);
    const auto end = position_in(o, h);
    return std::abs(mid.y) < half || std::abs(end.y) < half;
  }

  /// True for a pedestrian anywhere on the roadway (|y| within the paved
  /// width) — the planner treats those with extra caution (DS-4 behaviour).
  [[nodiscard]] static bool pedestrian_on_road(
      const perception::FusedObject& o) {
    return o.cls == sim::ActorType::kPedestrian &&
           std::abs(o.rel_position.y) <
               sim::Road::kLaneWidth * 1.5;  // ~5.55 m
  }

  /// True for an on-road pedestrian walking laterally *toward* the EV lane
  /// (the DS-2 "illegal crossing" signature). The planner yields to these
  /// well before the corridor-entry prediction fires — and this is exactly
  /// the belief the Move_Out/Disappear vectors erase.
  [[nodiscard]] static bool pedestrian_crossing(
      const perception::FusedObject& o, double ego_width,
      double min_lateral_speed = 0.5) {
    if (!pedestrian_on_road(o)) return false;
    const double y = o.rel_position.y;
    if (std::abs(y) < corridor_half_width(o.cls, ego_width)) {
      return false;  // already in the corridor: handled as a lead obstacle
    }
    const double toward = y > 0.0 ? -o.rel_velocity.y : o.rel_velocity.y;
    return toward > min_lateral_speed;
  }

  /// True when an on-road pedestrian is clearly walking *away* from the EV
  /// lane — the release condition for a latched yield.
  [[nodiscard]] static bool pedestrian_receding(
      const perception::FusedObject& o, double min_lateral_speed = 0.3) {
    const double y = o.rel_position.y;
    const double toward = y > 0.0 ? -o.rel_velocity.y : o.rel_velocity.y;
    return toward < -min_lateral_speed;
  }
};

}  // namespace rt::ads
