#pragma once

#include <optional>
#include <unordered_map>

#include "ads/world_model.hpp"

namespace rt::ads {

/// Planner tunables. Defaults reproduce the golden-run behaviours the paper
/// describes per scenario (§V-C): 45 kph cruise, ~20 m following gap behind
/// a 25 kph lead, a >= 10 m stop short of a crossing pedestrian, a 35 kph
/// slowdown near an on-road pedestrian.
struct PlannerConfig {
  double cruise_speed{12.5};        ///< m/s (45 kph), per-scenario override
  double max_accel{1.8};            ///< IDM a_max
  double comfort_decel{2.0};        ///< IDM b
  double time_headway{1.5};         ///< IDM T
  double min_gap_vehicle{8.0};      ///< IDM s0 for vehicles
  double min_gap_pedestrian{10.0};  ///< stop margin for pedestrians (>=10 m)
  double prediction_horizon{1.5};   ///< corridor-entry lookahead (s)
  /// Required decel beyond this triggers emergency braking...
  double eb_trigger_decel{2.8};
  /// ...but an obstacle that *newly appears* as a threat already needing
  /// more than this triggers EB immediately (panic response to surprise —
  /// the reaction Disappear / Move_In attacks provoke).
  double eb_surprise_decel{2.5};
  /// Frames since an object was last a threat for its reappearance to count
  /// as a surprise.
  int surprise_memory_frames{5};
  /// Cut-in reflex: an object observed *entering* the corridor (or a newly
  /// registered object already inside it) within this range while the EV is
  /// at speed triggers emergency braking outright — the uncomfortable
  /// reaction the paper's Move_In vector provokes (and AEB systems exhibit).
  double cut_in_panic_range{45.0};
  double cut_in_min_required_decel{1.5};
  double cut_in_min_speed{7.0};
  /// ...and EB releases once the required decel falls below this.
  double eb_release_decel{1.5};
  double eb_command_decel{6.0};     ///< what EB commands
  /// On-road pedestrian caution: cap speed within this range.
  double ped_caution_range{55.0};
  double ped_caution_speed{9.72};   ///< m/s (35 kph)
  /// Proportional gain of the cruise speed loop.
  double cruise_gain{0.6};
  /// Safety-envelope speed cap: never drive faster than what allows a
  /// comfortable stop (at `envelope_decel`) within the perceived gap minus
  /// `envelope_buffer`. This is the planner-side mirror of the safety
  /// model's d_stop <= d_safe invariant.
  double envelope_decel{2.0};
  double envelope_buffer{8.0};
  /// An out-of-corridor object must be predicted to enter the corridor for
  /// this many consecutive frames before it is treated as a lead obstacle
  /// (multi-frame consistency filters perception noise spurts).
  int threat_persistence{3};
  /// Velocity-based threat predicates (corridor-entry prediction, crossing
  /// pedestrian) only apply to tracks at least this old; an in-corridor
  /// object is a threat regardless of age.
  int mature_hits{6};
};

/// Planner output for one frame.
struct PlanOutput {
  double accel_command{0.0};
  bool eb_active{false};
  /// The fused object the planner is reacting to, if any.
  std::optional<int> lead_id;
  /// Deceleration needed to stop short of the lead (0 when receding).
  double required_decel{0.0};
};

/// Longitudinal planner + behaviour layer (the "Planning & control" stage).
///
/// Behaviour per frame:
///  1. select the nearest fused object that is in (or predicted to enter)
///     the EV corridor -> lead obstacle;
///  2. IDM car-following toward the lead (stop margin depends on class);
///  3. emergency braking (with hysteresis) when the kinematically required
///     deceleration exceeds the comfortable envelope — this flag is the
///     paper's "forced emergency braking" metric;
///  4. on-road-pedestrian caution: speed cap while a pedestrian is on the
///     pavement nearby (DS-4 golden behaviour);
///  5. otherwise cruise at the scenario speed.
class LongitudinalPlanner {
 public:
  explicit LongitudinalPlanner(PlannerConfig config = {})
      : config_(config) {}

  [[nodiscard]] PlanOutput plan(const WorldModel& world, double ego_width,
                                double ego_length);

  [[nodiscard]] const PlannerConfig& config() const { return config_; }
  [[nodiscard]] bool eb_latched() const { return eb_latched_; }

 private:
  PlannerConfig config_;
  bool eb_latched_{false};
  /// Consecutive frames each fused object satisfied the predicted
  /// corridor-entry condition (keyed by fused object id).
  std::unordered_map<int, int> entry_streak_;
  /// Latched yield decision per crossing pedestrian (fused object id).
  std::unordered_map<int, bool> yield_latch_;
  /// Lateral position-trend tracker per on-road pedestrian: |y| sampled
  /// every `kTrendFrames`; a consistent decrease marks a crossing even when
  /// the instantaneous velocity estimate is too noisy to clear a threshold.
  struct YTrend {
    double anchor_abs_y{0.0};
    int anchor_frame{0};
    bool valid{false};
  };
  std::unordered_map<int, YTrend> y_trend_;
  /// Last frame each object counted as a threat (for surprise detection).
  std::unordered_map<int, int> last_threat_frame_;
  /// Corridor membership of each object in the previous frame.
  std::unordered_map<int, bool> was_in_corridor_;
  /// First frame each fused id was observed.
  std::unordered_map<int, int> first_seen_frame_;
  int frame_{0};
};

}  // namespace rt::ads
