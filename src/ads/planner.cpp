#include "ads/planner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "ads/prediction.hpp"
#include "sim/types.hpp"

namespace rt::ads {

namespace {

/// IDM desired-gap term.
double idm_desired_gap(double v, double dv, const PlannerConfig& c,
                       double s0) {
  const double dynamic = v * c.time_headway +
                         v * dv / (2.0 * std::sqrt(c.max_accel *
                                                   c.comfort_decel));
  return s0 + std::max(0.0, dynamic);
}

}  // namespace

PlanOutput LongitudinalPlanner::plan(const WorldModel& world,
                                     double ego_width, double ego_length) {
  PlanOutput out;
  const double v = world.ego_speed;
  ++frame_;
  constexpr int kTrendFrames = 9;
  constexpr double kTrendDisplacement = 0.55;  // meters toward the lane

  // 1. Lead selection: nearest object ahead that is in, or predicted to
  //    enter, the EV corridor.
  const perception::FusedObject* lead = nullptr;
  double lead_gap = 0.0;
  bool lead_surprise = false;
  bool lead_cut_in = false;
  bool ped_caution = false;
  for (const auto& o : world.objects) {
    if (o.rel_position.x <= 0.0) continue;
    // Predicted corridor entry / pedestrian crossing must persist for
    // several consecutive frames before it counts (perception noise
    // produces 1-2 frame spurts).
    int& streak = entry_streak_[o.id];
    // Velocity-based predicates need a mature track AND non-contradicted
    // evidence: a camera-only track the LiDAR should corroborate (but does
    // not) is most likely a mislocalized detection streak.
    const bool velocity_trustworthy =
        o.camera_hits >= config_.mature_hits &&
        (o.lidar_corroborated || !o.lidar_expected);
    streak = velocity_trustworthy &&
                     (Prediction::enters_corridor_within(
                          o, ego_width, config_.prediction_horizon, v) ||
                      Prediction::pedestrian_crossing(o, ego_width))
                 ? streak + 1
                 : 0;
    // A pedestrian that committed to crossing stays a yield target until it
    // leaves the roadway or clearly walks away (latched — the momentary vy
    // dips of a noisy estimate must not toggle the brake).
    bool latched = yield_latch_[o.id];
    if (streak >= config_.threat_persistence) latched = true;
    // Position-trend crossing detector: a sustained decrease of |y| over
    // ~0.8 s is crossing evidence robust to velocity-estimate noise.
    if (Prediction::pedestrian_on_road(o) &&
        o.camera_hits >= config_.mature_hits) {
      YTrend& trend = y_trend_[o.id];
      const double abs_y = std::abs(o.rel_position.y);
      if (!trend.valid) {
        trend = {abs_y, frame_, true};
      } else if (frame_ - trend.anchor_frame >= kTrendFrames) {
        if (abs_y - trend.anchor_abs_y <= -kTrendDisplacement) {
          latched = true;
        }
        trend = {abs_y, frame_, true};
      }
    }
    if (latched && (!Prediction::pedestrian_on_road(o) ||
                    Prediction::pedestrian_receding(o))) {
      latched = false;
    }
    yield_latch_[o.id] = latched;
    // Coasting ghosts (no fresh camera evidence) do not *start* a reaction;
    // they only exist to bridge one-or-two-frame dropouts.
    const bool threat = (!o.coasting &&
                         Prediction::in_corridor_now(o, ego_width)) ||
                        streak >= config_.threat_persistence || latched;
    if (Prediction::pedestrian_on_road(o) &&
        o.rel_position.x < config_.ped_caution_range) {
      ped_caution = true;
    }
    if (!threat) continue;
    const bool was_recent_threat =
        last_threat_frame_.contains(o.id) &&
        frame_ - last_threat_frame_[o.id] <= config_.surprise_memory_frames;
    last_threat_frame_[o.id] = frame_;
    const double obj_len = sim::default_dimensions(o.cls).length;
    const double gap =
        std::max(0.1, o.rel_position.x - obj_len / 2.0 - ego_length / 2.0);
    const bool in_corridor = Prediction::in_corridor_now(o, ego_width);
    const bool newly_seen = !first_seen_frame_.contains(o.id);
    if (newly_seen) first_seen_frame_[o.id] = frame_;
    // Cut-in: crossed the corridor boundary this frame, or materialized
    // inside the corridor, close ahead.
    const bool entered = in_corridor && !o.coasting &&
                         was_in_corridor_.contains(o.id) &&
                         !was_in_corridor_[o.id];
    const bool materialized = in_corridor && !o.coasting && newly_seen;
    was_in_corridor_[o.id] = in_corridor;
    if (lead == nullptr || gap < lead_gap) {
      lead = &o;
      lead_gap = gap;
      lead_surprise = !was_recent_threat;
      lead_cut_in = (entered || materialized) &&
                    o.rel_position.x < config_.cut_in_panic_range;
    }
  }

  // 2.+3. Car following / emergency braking against the lead.
  double accel = config_.max_accel;
  if (lead != nullptr) {
    out.lead_id = lead->id;
    const double lead_speed = std::max(0.0, v + lead->rel_velocity.x);
    const double dv = v - lead_speed;  // closing speed (>0 approaching)
    const double s0 = lead->cls == sim::ActorType::kPedestrian
                          ? config_.min_gap_pedestrian
                          : config_.min_gap_vehicle;

    // Kinematically required constant deceleration to avoid closing the
    // remaining gap (beyond half the margin).
    const double usable = std::max(0.5, lead_gap - s0 / 2.0);
    if (dv > 0.0 || lead_speed < 0.3) {
      out.required_decel =
          std::max(0.0, (v * v - lead_speed * lead_speed) / (2.0 * usable));
    }

    // IDM following term. The gap ratio is squared explicitly rather than
    // via std::pow(., 2.0): gcc folds that pow to this exact multiply at -O2
    // but emits a libm call at -O0, and glibc pow can land one ulp off the
    // single-rounded square — an optimization-level divergence that made
    // dataset pins unstable across the Release and Debug/ASan suites. The
    // quartic pow stays a libm call at every level, so it is consistent.
    const double s_star = idm_desired_gap(v, dv, config_, s0);
    const double gap_ratio = s_star / lead_gap;
    const double idm =
        config_.max_accel *
        (1.0 - std::pow(v / std::max(config_.cruise_speed, 0.1), 4.0) -
         gap_ratio * gap_ratio);
    accel = std::min(accel, idm);

    // Safety-envelope cap: keep the comfortable stopping distance inside
    // the perceived gap (with a buffer) even while the IDM is converging.
    const double v_cap = std::sqrt(
        2.0 * config_.envelope_decel *
        std::max(0.1, lead_gap - config_.envelope_buffer));
    if (v > v_cap) {
      accel = std::min(accel, 2.0 * config_.cruise_gain * (v_cap - v));
    }

    // Cut-in reflex: hard braking for objects that enter (or materialize
    // inside) the corridor close ahead while the EV is at speed.
    if (lead_cut_in && v > config_.cut_in_min_speed &&
        out.required_decel > config_.cut_in_min_required_decel) {
      eb_latched_ = true;
    }
    // EB hysteresis. A *newly appeared* threat already demanding more than
    // the comfortable envelope triggers the panic response immediately.
    const double trigger = lead_surprise ? config_.eb_surprise_decel
                                         : config_.eb_trigger_decel;
    if (out.required_decel > trigger) {
      if (!eb_latched_ && std::getenv("ROBOTACK_DEBUG_EB") != nullptr) {
        std::fprintf(stderr,
                     "[planner] EB: lead id=%d cls=%d pos=(%.1f, %.2f) "
                     "vel=(%.2f, %.2f) gap=%.1f req=%.2f v=%.2f lidar=%d "
                     "coast=%d\n",
                     lead->id, static_cast<int>(lead->cls),
                     lead->rel_position.x, lead->rel_position.y,
                     lead->rel_velocity.x, lead->rel_velocity.y, lead_gap,
                     out.required_decel, v, lead->lidar_corroborated,
                     lead->coasting);
      }
      eb_latched_ = true;
    } else if (out.required_decel < config_.eb_release_decel) {
      eb_latched_ = false;
    }
  } else {
    eb_latched_ = false;
    // 5. Free-road cruise.
    accel = std::min(accel,
                     config_.cruise_gain * (config_.cruise_speed - v));
  }

  // 4. On-road pedestrian caution (speed cap).
  if (ped_caution && v > config_.ped_caution_speed) {
    accel = std::min(accel,
                     config_.cruise_gain *
                         (config_.ped_caution_speed - v));
  }

  if (eb_latched_) {
    out.eb_active = true;
    accel = -config_.eb_command_decel;
  }
  out.accel_command = std::clamp(accel, -config_.eb_command_decel,
                                 config_.max_accel);
  return out;
}

}  // namespace rt::ads
