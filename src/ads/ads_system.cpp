#include "ads/ads_system.hpp"

#include "sim/types.hpp"

namespace rt::ads {

AdsSystem::AdsSystem(perception::CameraModel camera, double camera_dt,
                     double lidar_dt, PlannerConfig planner_config,
                     perception::MotConfig mot_config,
                     perception::FusionConfig fusion_config,
                     perception::LidarConfig lidar_config,
                     perception::DetectorNoiseModel noise)
    : camera_dt_(camera_dt),
      perception_(camera, camera_dt, lidar_dt, mot_config, fusion_config,
                  lidar_config, noise),
      planner_(planner_config),
      // PID on the acceleration request; the plant's jerk limiter provides
      // further smoothing downstream.
      pid_({/*kp=*/0.9, /*ki=*/0.15, /*kd=*/0.0},
           -planner_config.eb_command_decel, 3.0) {
  const auto dims = sim::default_dimensions(sim::ActorType::kVehicle);
  ego_width_ = dims.width;
  ego_length_ = dims.length;
}

void AdsSystem::ingest_lidar(
    const std::vector<perception::LidarMeasurement>& scan) {
  perception_.ingest_lidar(scan);
}

AdsOutput AdsSystem::step(const perception::CameraFrame& frame,
                          double ego_speed, double ego_accel) {
  AdsOutput out;
  step_into(frame, ego_speed, ego_accel, out);
  return out;
}

void AdsSystem::step_into(const perception::CameraFrame& frame,
                          double ego_speed, double ego_accel, AdsOutput& out) {
  perception_.step_into(frame, out.perception);
  out.world.time = frame.time;
  out.world.ego_speed = ego_speed;
  out.world.objects = out.perception.world;
  out.plan = planner_.plan(out.world, ego_width_, ego_length_);
  out.eb_active = out.plan.eb_active;
  if (out.eb_active) {
    // Emergency braking bypasses the comfort smoothing (AEB semantics).
    pid_.reset();
    out.accel_command = out.plan.accel_command;
  } else {
    // Acceleration-tracking loop: the PID drives the measured plant
    // acceleration toward the planner's request, smoothing step changes.
    const double u =
        pid_.step(out.plan.accel_command - ego_accel, camera_dt_);
    out.accel_command = out.plan.accel_command + u;
  }
}

}  // namespace rt::ads
