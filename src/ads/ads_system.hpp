#pragma once

#include <optional>

#include "ads/pid.hpp"
#include "ads/planner.hpp"
#include "ads/world_model.hpp"
#include "perception/perception_system.hpp"

namespace rt::ads {

/// Result of one ADS control cycle.
struct AdsOutput {
  double accel_command{0.0};    ///< actuation A_t sent to the plant
  bool eb_active{false};
  WorldModel world;             ///< the fused belief W_t this cycle acted on
  perception::PerceptionOutput perception;
  PlanOutput plan;
};

/// The end-to-end ADS stack: perception -> prediction -> planning -> PID.
///
/// This is the production-software stand-in for Apollo: it consumes raw
/// sensor data (the camera frame arriving over the attackable link, plus
/// truthful LiDAR scans) and produces the actuation command for the ego
/// plant. The control loop runs at the camera rate (15 Hz).
class AdsSystem {
 public:
  AdsSystem(perception::CameraModel camera, double camera_dt,
            double lidar_dt, PlannerConfig planner_config = {},
            perception::MotConfig mot_config = {},
            perception::FusionConfig fusion_config = {},
            perception::LidarConfig lidar_config = {},
            perception::DetectorNoiseModel noise =
                perception::DetectorNoiseModel::paper_defaults());

  /// Feeds a LiDAR scan (10 Hz schedule, driven by the closed loop).
  void ingest_lidar(const std::vector<perception::LidarMeasurement>& scan);

  /// One control cycle on a camera frame. `ego_accel` is the measured plant
  /// acceleration the PID closes its loop on.
  AdsOutput step(const perception::CameraFrame& frame, double ego_speed,
                 double ego_accel = 0.0);
  /// Same, into a caller-owned output whose vectors are reused across
  /// control cycles (the closed loop's per-frame hot path).
  void step_into(const perception::CameraFrame& frame, double ego_speed,
                 double ego_accel, AdsOutput& out);

  [[nodiscard]] const LongitudinalPlanner& planner() const {
    return planner_;
  }

  /// Installs a passive tap on the perception pipeline (nullptr = none) —
  /// the hook the `rt::defense` runtime attack monitors attach through.
  void set_perception_observer(perception::PerceptionObserver* observer) {
    perception_.set_observer(observer);
  }

 private:
  double camera_dt_;
  perception::PerceptionSystem perception_;
  LongitudinalPlanner planner_;
  PidController pid_;
  double ego_width_;
  double ego_length_;
};

}  // namespace rt::ads
