#pragma once

#include <span>
#include <string>
#include <vector>

namespace rt::stats {

/// Five-number summary + mean, as rendered in the paper's boxplot figures
/// (Fig. 6: min safety potential; Fig. 7: K' shift time).
struct BoxplotStats {
  std::size_t n{0};
  double min{0.0};
  double q1{0.0};
  double median{0.0};
  double q3{0.0};
  double max{0.0};
  double mean{0.0};

  /// One-line rendering, e.g. "n=151 min=3.1 q1=5.2 med=8.9 q3=14.1 max=40.2".
  [[nodiscard]] std::string to_string() const;
};

/// Arithmetic mean; 0 for empty input.
[[nodiscard]] double mean(std::span<const double> xs);

/// Population standard deviation; 0 for empty input.
[[nodiscard]] double stddev(std::span<const double> xs);

/// Percentile with linear interpolation between order statistics,
/// p in [0, 100]. Throws on empty input.
[[nodiscard]] double percentile(std::span<const double> xs, double p);

/// Median (50th percentile). Throws on empty input.
[[nodiscard]] double median(std::span<const double> xs);

/// Full boxplot summary. Throws on empty input.
[[nodiscard]] BoxplotStats boxplot(std::span<const double> xs);

}  // namespace rt::stats
