#include "stats/fit.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

namespace rt::stats {

double normal_quantile(double p) {
  if (p <= 0.0 || p >= 1.0) {
    throw std::invalid_argument("normal_quantile: p must be in (0, 1)");
  }
  // Acklam's algorithm: rational approximations in three regions.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  constexpr double p_high = 1.0 - p_low;

  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= p_high) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double NormalFit::quantile(double p) const {
  return mu + sigma * normal_quantile(p);
}

double NormalFit::pdf(double x) const {
  if (sigma <= 0.0) return 0.0;
  const double z = (x - mu) / sigma;
  return std::exp(-0.5 * z * z) /
         (sigma * std::sqrt(2.0 * std::numbers::pi));
}

double ExponentialFit::quantile(double p) const {
  if (p <= 0.0 || p >= 1.0) {
    throw std::invalid_argument("ExponentialFit::quantile: p must be in (0,1)");
  }
  if (lambda <= 0.0) return loc;
  return loc - std::log(1.0 - p) / lambda;
}

NormalFit fit_normal(std::span<const double> samples) {
  if (samples.empty()) return {};
  double sum = 0.0;
  for (double x : samples) sum += x;
  const double mu = sum / static_cast<double>(samples.size());
  double ss = 0.0;
  for (double x : samples) ss += (x - mu) * (x - mu);
  const double sigma = std::sqrt(ss / static_cast<double>(samples.size()));
  return {mu, sigma};
}

ExponentialFit fit_exponential(std::span<const double> samples, double loc) {
  if (samples.empty()) return {loc, 0.0};
  double sum = 0.0;
  for (double x : samples) sum += x;
  const double mean = sum / static_cast<double>(samples.size());
  if (mean <= loc) return {loc, 0.0};
  return {loc, 1.0 / (mean - loc)};
}

}  // namespace rt::stats
