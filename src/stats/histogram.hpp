#pragma once

#include <span>
#include <string>
#include <vector>

namespace rt::stats {

/// Fixed-width-bin histogram used for the textual renderings of Fig. 5
/// (log-count misdetection histograms and density plots).
class Histogram {
 public:
  /// Builds `bins` equal-width bins spanning [lo, hi). Values outside the
  /// range are clamped into the first/last bin.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  [[nodiscard]] std::size_t bin_count() const { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bin) const {
    return counts_.at(bin);
  }
  [[nodiscard]] std::size_t total() const { return total_; }
  /// Center of the given bin.
  [[nodiscard]] double bin_center(std::size_t bin) const;
  /// Empirical density of the given bin (count / (total * width)).
  [[nodiscard]] double density(std::size_t bin) const;

  /// Multi-line ASCII rendering with one row per bin; `log_scale` draws bar
  /// lengths proportional to log10(1+count), matching the paper's log axes.
  [[nodiscard]] std::string render(std::size_t width = 50,
                                   bool log_scale = false) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_{0};
};

}  // namespace rt::stats
