#pragma once

#include <cstdint>
#include <cstring>
#include <string_view>

namespace rt::stats {

/// FNV-1a folding helpers shared by every content hash in the repository
/// (dataset digests, oracle cache fingerprints). All folds are
/// order-sensitive; u64/double values fold byte-wise in little-endian
/// order, strings fold their bytes plus a terminator so {"a","b"} and
/// {"ab"} stay distinct.

inline constexpr std::uint64_t kFnv1aOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ULL;

[[nodiscard]] inline std::uint64_t fnv1a_u64(std::uint64_t h,
                                             std::uint64_t v) {
  for (int b = 0; b < 8; ++b) {
    h ^= (v >> (8 * b)) & 0xffULL;
    h *= kFnv1aPrime;
  }
  return h;
}

[[nodiscard]] inline std::uint64_t fnv1a_double(std::uint64_t h, double d) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &d, sizeof bits);
  return fnv1a_u64(h, bits);
}

[[nodiscard]] inline std::uint64_t fnv1a_str(std::uint64_t h,
                                             std::string_view s) {
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnv1aPrime;
  }
  h ^= 0xffULL;
  h *= kFnv1aPrime;
  return h;
}

}  // namespace rt::stats
