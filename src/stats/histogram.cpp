#include "stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace rt::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (bins == 0 || hi <= lo) {
    throw std::invalid_argument("Histogram: need hi > lo and bins > 0");
  }
}

void Histogram::add(double x) {
  auto bin = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  bin = std::clamp<std::ptrdiff_t>(
      bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_center(std::size_t bin) const {
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

double Histogram::density(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_.at(bin)) /
         (static_cast<double>(total_) * width_);
}

std::string Histogram::render(std::size_t width, bool log_scale) const {
  double max_v = 0.0;
  for (std::size_t c : counts_) {
    const double v =
        log_scale ? std::log10(1.0 + static_cast<double>(c))
                  : static_cast<double>(c);
    max_v = std::max(max_v, v);
  }
  std::string out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const double v =
        log_scale ? std::log10(1.0 + static_cast<double>(counts_[i]))
                  : static_cast<double>(counts_[i]);
    const auto bar =
        max_v > 0.0 ? static_cast<std::size_t>(v / max_v *
                                               static_cast<double>(width))
                    : 0;
    char head[64];
    std::snprintf(head, sizeof(head), "%10.2f | %6zu | ", bin_center(i),
                  counts_[i]);
    out += head;
    out.append(bar, '#');
    out += '\n';
  }
  return out;
}

}  // namespace rt::stats
