#pragma once

#include <span>

namespace rt::stats {

/// Maximum-likelihood fit of a Normal distribution.
///
/// Used to reproduce Fig. 5(c)-(f): the normalized bounding-box center error
/// of the object detector is Gaussian, and the attacker bounds its per-frame
/// perturbation by [mu - sigma, mu + sigma] of this fit.
struct NormalFit {
  double mu{0.0};
  double sigma{0.0};

  /// Quantile (inverse CDF) of the fitted distribution.
  [[nodiscard]] double quantile(double p) const;
  /// 99th percentile, as reported under each panel of Fig. 5.
  [[nodiscard]] double p99() const { return quantile(0.99); }
  /// Probability density at x.
  [[nodiscard]] double pdf(double x) const;
};

/// Maximum-likelihood fit of a shifted Exponential distribution
/// `X ~ loc + Exp(lambda)`.
///
/// Used to reproduce Fig. 5(a)-(b): the length of *continuous misdetection
/// streaks* follows Exp(loc=1, lambda) — a streak is at least one frame long.
/// The 99th percentile of this fit defines K_max, the longest camera-frame
/// corruption the malware allows itself (§IV-B).
struct ExponentialFit {
  double loc{0.0};
  double lambda{0.0};

  [[nodiscard]] double quantile(double p) const;
  [[nodiscard]] double p99() const { return quantile(0.99); }
};

/// MLE Normal fit: sample mean and (population) standard deviation.
/// Returns {0, 0} for empty input.
[[nodiscard]] NormalFit fit_normal(std::span<const double> samples);

/// MLE shifted-Exponential fit with a *fixed* location parameter:
/// lambda = 1 / (mean(x) - loc). The paper fixes loc = 1 frame.
/// Returns {loc, 0} if the sample mean does not exceed loc.
[[nodiscard]] ExponentialFit fit_exponential(std::span<const double> samples,
                                             double loc);

/// Standard normal inverse CDF (Acklam's rational approximation,
/// |relative error| < 1.2e-9 over (0, 1)).
[[nodiscard]] double normal_quantile(double p);

}  // namespace rt::stats
