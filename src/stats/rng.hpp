#pragma once

#include <cstdint>
#include <random>

namespace rt::stats {

/// Seeded pseudo-random source used by every stochastic component.
///
/// All randomness in the repository flows through `Rng` so that simulation
/// campaigns are exactly reproducible: a campaign seed deterministically
/// derives per-run seeds (`derive`), and a run seed derives per-subsystem
/// seeds (detector noise, actor jitter, attack baseline choices, ...).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Deterministically derives an independent child generator. `stream`
  /// selects the child; the same (seed, stream) pair always yields the same
  /// child sequence.
  [[nodiscard]] Rng derive(std::uint64_t stream) const;

  /// Counter-based stream splitting: a pure function of (seed, stream) with
  /// no parent engine to construct or advance, so any stream of a campaign
  /// can be opened directly — and concurrently — from its run index. The
  /// parallel campaign engine relies on this for bit-identical results at
  /// any thread count.
  [[nodiscard]] static Rng from_stream(std::uint64_t seed,
                                       std::uint64_t stream);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Gaussian with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Exponential with the given rate (mean 1/rate).
  double exponential(double rate);
  /// Bernoulli trial.
  bool bernoulli(double p);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace rt::stats
