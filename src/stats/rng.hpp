#pragma once

#include <cstdint>
#include <random>

namespace rt::stats {

/// Seeded pseudo-random source used by every stochastic component.
///
/// All randomness in the repository flows through `Rng` so that simulation
/// campaigns are exactly reproducible: a campaign seed deterministically
/// derives per-run seeds (`derive`), and a run seed derives per-subsystem
/// seeds (detector noise, actor jitter, attack baseline choices, ...).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Deterministically derives an independent child generator. `stream`
  /// selects the child; the same (seed, stream) pair always yields the same
  /// child sequence.
  [[nodiscard]] Rng derive(std::uint64_t stream) const;

  /// Counter-based stream splitting: a pure function of (seed, stream) with
  /// no parent engine to construct or advance, so any stream of a campaign
  /// can be opened directly — and concurrently — from its run index. The
  /// parallel campaign engine relies on this for bit-identical results at
  /// any thread count.
  [[nodiscard]] static Rng from_stream(std::uint64_t seed,
                                       std::uint64_t stream);

  /// Uniform double in [lo, hi). Throws `std::invalid_argument` on NaN
  /// bounds (the std distribution underneath has undefined behaviour
  /// there, and a NaN bound is always an upstream bug).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Gaussian with the given mean and standard deviation.
  ///
  /// Counter-based draw: consumes exactly ONE engine word per call — the
  /// word's top 53 bits map to u in (0, 1), which feeds the standard-normal
  /// inverse CDF (stats::normal_quantile). Compared to the historical
  /// `std::normal_distribution` (a fresh Marsaglia-polar rejection loop per
  /// call), this is both cheaper and *stream-pure*: the engine advance per
  /// draw is a constant, independent of the values drawn, so interleaving
  /// normal draws with other draws is reproducible by construction. Throws
  /// `std::invalid_argument` on NaN parameters. (The PR 8 migration window
  /// and its RT_LEGACY_NOISE escape hatch are over; the legacy
  /// `std::normal_distribution` path is gone — see README "Performance".)
  double normal(double mean, double stddev);
  /// Exponential with the given rate (mean 1/rate). Throws on NaN rate.
  double exponential(double rate);
  /// Bernoulli trial. Throws `std::invalid_argument` on NaN p (the std
  /// distribution would be undefined behaviour).
  bool bernoulli(double p);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace rt::stats
