#include "stats/summary.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace rt::stats {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(xs.size()));
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty input");
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile: p out of [0, 100]");
  }
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

BoxplotStats boxplot(std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("boxplot: empty input");
  BoxplotStats s;
  s.n = xs.size();
  s.min = percentile(xs, 0.0);
  s.q1 = percentile(xs, 25.0);
  s.median = percentile(xs, 50.0);
  s.q3 = percentile(xs, 75.0);
  s.max = percentile(xs, 100.0);
  s.mean = mean(xs);
  return s;
}

std::string BoxplotStats::to_string() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "n=%zu min=%.2f q1=%.2f med=%.2f q3=%.2f max=%.2f mean=%.2f",
                n, min, q1, median, q3, max, mean);
  return buf;
}

}  // namespace rt::stats
