#include "stats/rng.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "stats/fit.hpp"

namespace rt::stats {

namespace {
/// splitmix64 finalizer: decorrelates derived seeds.
std::uint64_t mix(std::uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

[[noreturn]] void throw_nan(const char* what) {
  throw std::invalid_argument(std::string("Rng::") + what +
                              ": NaN parameter");
}
}  // namespace

Rng Rng::from_stream(std::uint64_t seed, std::uint64_t stream) {
  // Two rounds of the splitmix64 finalizer over (seed, stream). Unlike
  // derive(), no mt19937_64 parent state is initialised, so opening stream k
  // of a campaign costs a handful of multiplies and is safe to do from any
  // thread.
  return Rng(mix(mix(seed) ^ mix(stream ^ 0x5851f42d4c957f2dULL)));
}

Rng Rng::derive(std::uint64_t stream) const {
  // Derivation depends only on the original seed and stream id, not on how
  // many draws have been made from this generator: copy the engine, pull one
  // value, and mix it with the stream id.
  std::mt19937_64 copy = engine_;
  const std::uint64_t base = copy();
  return Rng(mix(base ^ mix(stream)));
}

double Rng::uniform(double lo, double hi) {
  if (std::isnan(lo) || std::isnan(hi)) throw_nan("uniform");
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

double Rng::normal(double mean, double stddev) {
  if (std::isnan(mean) || std::isnan(stddev)) throw_nan("normal");
  // Counter-based draw: one engine word -> u strictly inside (0, 1) (the
  // top 53 bits, centered on the half-ulp grid so u can reach neither
  // endpoint) -> inverse CDF. Acklam's approximation stays in its central
  // rational branch for ~95% of draws, so the common case is a handful of
  // multiplies — no rejection loop, no log/sqrt.
  const std::uint64_t word = engine_();
  const double u =
      (static_cast<double>(word >> 11) + 0.5) * 0x1.0p-53;
  return mean + stddev * normal_quantile(u);
}

double Rng::exponential(double rate) {
  if (std::isnan(rate)) throw_nan("exponential");
  std::exponential_distribution<double> d(rate);
  return d(engine_);
}

bool Rng::bernoulli(double p) {
  if (std::isnan(p)) throw_nan("bernoulli");
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  std::bernoulli_distribution d(p);
  return d(engine_);
}

}  // namespace rt::stats
