#include "math/bbox.hpp"

#include <algorithm>

namespace rt::math {

double intersection_area(const Bbox& a, const Bbox& b) {
  const double ix =
      std::min(a.right(), b.right()) - std::max(a.left(), b.left());
  const double iy =
      std::min(a.bottom(), b.bottom()) - std::max(a.top(), b.top());
  if (ix <= 0.0 || iy <= 0.0) return 0.0;
  return ix * iy;
}

double iou(const Bbox& a, const Bbox& b) {
  const double inter = intersection_area(a, b);
  if (inter <= 0.0) return 0.0;
  const double uni = a.area() + b.area() - inter;
  if (uni <= 0.0) return 0.0;
  return inter / uni;
}

}  // namespace rt::math
