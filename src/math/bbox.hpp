#pragma once

#include "math/vec2.hpp"

namespace rt::math {

/// An axis-aligned bounding box in *pixel* (image) coordinates.
///
/// Stored in center format: `(cx, cy)` is the box center, `w`/`h` the full
/// width/height in pixels. Image convention: x grows rightward, y grows
/// downward, origin at the top-left corner of the frame.
///
/// This is the currency of the perception pipeline: the detector emits
/// `Bbox`es, the Kalman trackers predict them, the Hungarian matcher
/// associates them by IoU, and the trajectory hijacker perturbs them.
struct Bbox {
  double cx{0.0};
  double cy{0.0};
  double w{0.0};
  double h{0.0};

  constexpr Bbox() = default;
  constexpr Bbox(double cx_, double cy_, double w_, double h_)
      : cx(cx_), cy(cy_), w(w_), h(h_) {}

  /// Builds a box from corner coordinates (x1,y1)=(left,top),
  /// (x2,y2)=(right,bottom).
  [[nodiscard]] static constexpr Bbox from_corners(double x1, double y1,
                                                   double x2, double y2) {
    return Bbox{(x1 + x2) / 2.0, (y1 + y2) / 2.0, x2 - x1, y2 - y1};
  }

  [[nodiscard]] constexpr double left() const { return cx - w / 2.0; }
  [[nodiscard]] constexpr double right() const { return cx + w / 2.0; }
  [[nodiscard]] constexpr double top() const { return cy - h / 2.0; }
  [[nodiscard]] constexpr double bottom() const { return cy + h / 2.0; }
  [[nodiscard]] constexpr double area() const { return w * h; }
  [[nodiscard]] constexpr Vec2 center() const { return {cx, cy}; }
  [[nodiscard]] constexpr bool valid() const { return w > 0.0 && h > 0.0; }

  /// Returns a copy translated by (dx, dy) pixels.
  [[nodiscard]] constexpr Bbox translated(double dx, double dy) const {
    return {cx + dx, cy + dy, w, h};
  }

  constexpr bool operator==(const Bbox& o) const = default;
};

/// Area of the intersection of two boxes (0 if disjoint).
[[nodiscard]] double intersection_area(const Bbox& a, const Bbox& b);

/// Intersection-over-Union of two boxes in [0, 1].
///
/// The paper uses IoU both as the association cost inside the Hungarian
/// matcher ("M") and as the misdetection criterion (IoU < 0.6 between the
/// predicted and ground-truth boxes counts as a misdetection, §VI-A).
[[nodiscard]] double iou(const Bbox& a, const Bbox& b);

}  // namespace rt::math
