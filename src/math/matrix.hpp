#pragma once

#include <algorithm>
#include <cstddef>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <vector>

namespace rt::math {

/// A small dense row-major matrix of doubles.
///
/// Sized dynamically because the same type backs both the Kalman filters
/// (4x4..8x8) and the neural-network layers (up to a few hundred rows).
/// All operations validate dimensions and throw `std::invalid_argument` on
/// mismatch — in this codebase a dimension mismatch is always a programming
/// error, and failing loudly is preferred over UB.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a `rows x cols` matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Creates a matrix from a nested initializer list, e.g.
  /// `Matrix m{{1.0, 2.0}, {3.0, 4.0}};`. All rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] static Matrix identity(std::size_t n);
  /// Diagonal matrix from the given entries.
  [[nodiscard]] static Matrix diagonal(std::span<const double> entries);
  /// Column vector (n x 1) from the given entries.
  [[nodiscard]] static Matrix column(std::span<const double> entries);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Flat row-major access to the underlying storage.
  [[nodiscard]] std::span<const double> data() const { return data_; }
  [[nodiscard]] std::span<double> data() { return data_; }

  /// Reshapes in place to `rows x cols`, preserving the underlying vector's
  /// capacity (no deallocation on shrink; at most one growth allocation,
  /// after which same-or-smaller resizes are allocation-free). Element
  /// values are unspecified afterwards — this exists for the `*_into`
  /// kernels and workspaces, which overwrite every entry. Inline with a
  /// same-shape early return: steady-state kernel calls re-resize scratch
  /// to the shape it already has millions of times per campaign.
  void resize(std::size_t rows, std::size_t cols) {
    if (rows == rows_ && cols == cols_) return;
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  Matrix operator+(const Matrix& o) const;
  Matrix operator-(const Matrix& o) const;
  Matrix operator*(const Matrix& o) const;
  Matrix operator*(double s) const;
  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(double s);

  [[nodiscard]] Matrix transposed() const;

  /// Matrix inverse via Gauss-Jordan elimination with partial pivoting.
  /// Throws `std::domain_error` if the matrix is singular (pivot < 1e-12).
  [[nodiscard]] Matrix inverse() const;

  /// Cholesky factor L (lower triangular, A = L * L^T).
  /// Throws `std::domain_error` if the matrix is not positive definite.
  [[nodiscard]] Matrix cholesky() const;

  /// Frobenius norm.
  [[nodiscard]] double norm() const;

  /// Max |a_ij - b_ij|; useful in tests.
  [[nodiscard]] double max_abs_diff(const Matrix& o) const;

  bool operator==(const Matrix& o) const = default;

 private:
  void require_same_shape(const Matrix& o) const;

  std::size_t rows_{0};
  std::size_t cols_{0};
  std::vector<double> data_;
};

/// Destination-passing kernels.
///
/// Each writes its result into a caller-owned `out`, reusing `out`'s storage
/// (allocation-free once `out` has seen the shape's footprint) — the hot
/// loops (Kalman steps, NN forwards) call these with per-object or workspace
/// scratch instead of chaining the allocating operators above.
///
/// Contract: every kernel reproduces the corresponding allocating-operator
/// expression *bit for bit* — same i-k-j accumulation order, same
/// skip-zero-lhs shortcut, transposes folded into the index order rather
/// than materialized — so the pinned golden aggregates and dataset hashes
/// are invariant under the rewrite. `out` must not alias an input
/// (`std::invalid_argument` otherwise); shape mismatches throw like the
/// operators they mirror.

/// out = a * b. Mirrors `a * b`. Defined inline below: the Kalman hot loop
/// issues millions of these on 4x4..8x8 operands, where the call itself is
/// measurable.
inline void multiply_into(const Matrix& a, const Matrix& b, Matrix& out);
/// out = a * b^T. Mirrors `a * b.transposed()` without materializing b^T.
inline void multiply_transposed_into(const Matrix& a, const Matrix& b,
                                     Matrix& out);
/// out = a^T * b. Mirrors `a.transposed() * b` without materializing a^T.
void transposed_multiply_into(const Matrix& a, const Matrix& b, Matrix& out);
/// out = a + b. Mirrors `a + b`.
void add_into(const Matrix& a, const Matrix& b, Matrix& out);
/// out = a - b. Mirrors `a - b`.
void subtract_into(const Matrix& a, const Matrix& b, Matrix& out);
/// Fused dense-layer affine map: out = w * x + bias, with `bias` a column
/// (rows(w) x 1) added to every column of the product. Mirrors the NN dense
/// forward (`w * x` then a per-row bias add).
void affine_into(const Matrix& w, const Matrix& x, const Matrix& bias,
                 Matrix& out);
/// out = a^-1 via the same Gauss-Jordan elimination as `a.inverse()`;
/// `scratch` holds the working copy of `a`. Throws `std::domain_error` on a
/// singular matrix, like `inverse()`.
void invert_into(const Matrix& a, Matrix& scratch, Matrix& out);

/// Row-range kernels (the minibatch trainer's parallel slots).
///
/// Each computes only output rows [row_begin, row_end) of the matching full
/// kernel; `out` must already be sized to the full result shape (its other
/// rows are untouched). Because every kernel above runs an independent
/// serial accumulation per output element — the outer loop is over output
/// rows — covering [0, rows) with disjoint ranges reproduces the full
/// kernel BIT FOR BIT regardless of how the ranges are partitioned or on
/// which thread each range runs. That is what makes the trainer's `threads`
/// knob both thread-count-invariant and golden-preserving: there is no
/// floating-point reordering to begin with, only a partition of the output.
void affine_rows_into(const Matrix& w, const Matrix& x, const Matrix& bias,
                      Matrix& out, std::size_t row_begin,
                      std::size_t row_end);
/// Row range of `multiply_transposed_into` (out = a * b^T).
void multiply_transposed_rows_into(const Matrix& a, const Matrix& b,
                                   Matrix& out, std::size_t row_begin,
                                   std::size_t row_end);
/// Row range of `transposed_multiply_into` (out = a^T * b).
void transposed_multiply_rows_into(const Matrix& a, const Matrix& b,
                                   Matrix& out, std::size_t row_begin,
                                   std::size_t row_end);

namespace detail {
[[noreturn]] void throw_kernel_alias();
[[noreturn]] void throw_inner_mismatch();

/// Fixed-dimension kernel bodies (PR 8). The campaign hot loop is dominated
/// by the bbox tracker's 6-state/4-measurement Kalman algebra — a handful
/// of shapes issued millions of times — where the generic kernels pay for
/// runtime trip counts on every call. These templates run the SAME
/// element-order contract with compile-time bounds so the compiler fully
/// unrolls them and keeps each output row's accumulators in registers.
///
/// Bit-identity: per output element the terms still sum in ascending k with
/// the identical skip-exact-zero-lhs shortcut, and no element's sum ever
/// mixes with another's — accumulating in a local `acc` array instead of
/// the output memory reorders nothing. Every pinned golden is invariant
/// under this dispatch by construction.

/// out = a * b with compile-time shape (R x K) * (K x C).
template <std::size_t R, std::size_t K, std::size_t C>
inline void multiply_fixed(const double* a, const double* b, double* out) {
  for (std::size_t i = 0; i < R; ++i) {
    double acc[C] = {};
    for (std::size_t k = 0; k < K; ++k) {
      const double v = a[i * K + k];
      if (v == 0.0) continue;
      for (std::size_t j = 0; j < C; ++j) acc[j] += v * b[k * C + j];
    }
    for (std::size_t j = 0; j < C; ++j) out[i * C + j] = acc[j];
  }
}

/// out = a * b^T with compile-time shape (R x K) * (C x K)^T.
template <std::size_t R, std::size_t K, std::size_t C>
inline void multiply_transposed_fixed(const double* a, const double* b,
                                      double* out) {
  for (std::size_t i = 0; i < R; ++i) {
    double acc[C] = {};
    for (std::size_t k = 0; k < K; ++k) {
      const double v = a[i * K + k];
      if (v == 0.0) continue;
      for (std::size_t j = 0; j < C; ++j) acc[j] += v * b[j * K + k];
    }
    for (std::size_t j = 0; j < C; ++j) out[i * C + j] = acc[j];
  }
}
}  // namespace detail

inline void multiply_into(const Matrix& a, const Matrix& b, Matrix& out) {
  if (&out == &a || &out == &b) detail::throw_kernel_alias();
  if (a.cols() != b.rows()) detail::throw_inner_mismatch();
  const std::size_t rows = a.rows();
  const std::size_t inner = a.cols();
  const std::size_t cols = b.cols();
  out.resize(rows, cols);
  {
    // Fixed-shape dispatch for the tracker KF's product set (n = 6 states,
    // m = 4 measurements): F*P / (I-KH)*P (6,6,6), H*P (4,6,6), K*H
    // (6,4,6), (P H^T)*S^-1 (6,4,4), and the column products F*x, H*x,
    // K*y, (y^T S^-1)*y. Same element order as the generic paths below —
    // see detail::multiply_fixed.
    const double* ad = a.data().data();
    const double* bd = b.data().data();
    double* od = out.data().data();
    if (inner == 6) {
      if (rows == 6) {
        if (cols == 6) return detail::multiply_fixed<6, 6, 6>(ad, bd, od);
        if (cols == 1) return detail::multiply_fixed<6, 6, 1>(ad, bd, od);
      } else if (rows == 4) {
        if (cols == 6) return detail::multiply_fixed<4, 6, 6>(ad, bd, od);
        if (cols == 1) return detail::multiply_fixed<4, 6, 1>(ad, bd, od);
      }
    } else if (inner == 4) {
      if (rows == 6) {
        if (cols == 4) return detail::multiply_fixed<6, 4, 4>(ad, bd, od);
        if (cols == 6) return detail::multiply_fixed<6, 4, 6>(ad, bd, od);
        if (cols == 1) return detail::multiply_fixed<6, 4, 1>(ad, bd, od);
      } else if (rows == 1 && cols == 1) {
        return detail::multiply_fixed<1, 4, 1>(ad, bd, od);
      }
    }
  }
  if (cols == 1) {
    // Column fast path (Kalman column updates, batch-1 NN inference): each
    // output element is an ordered dot product, so accumulate in registers
    // — four independent row chains at a time to hide FP-add latency.
    // Every element still sums its terms in ascending k with the same
    // skip-exact-zero shortcut, hence bit-identical to the general loop,
    // which would drag a serial load-add-store chain through memory here.
    const auto bd = b.data();
    const auto od = out.data();
    std::size_t i = 0;
    for (; i + 4 <= rows; i += 4) {
      double s0 = 0.0;
      double s1 = 0.0;
      double s2 = 0.0;
      double s3 = 0.0;
      for (std::size_t k = 0; k < inner; ++k) {
        const double x = bd[k];
        const double a0 = a(i, k);
        const double a1 = a(i + 1, k);
        const double a2 = a(i + 2, k);
        const double a3 = a(i + 3, k);
        if (a0 != 0.0) s0 += a0 * x;
        if (a1 != 0.0) s1 += a1 * x;
        if (a2 != 0.0) s2 += a2 * x;
        if (a3 != 0.0) s3 += a3 * x;
      }
      od[i] = s0;
      od[i + 1] = s1;
      od[i + 2] = s2;
      od[i + 3] = s3;
    }
    for (; i < rows; ++i) {
      double s = 0.0;
      for (std::size_t k = 0; k < inner; ++k) {
        const double v = a(i, k);
        if (v != 0.0) s += v * bd[k];
      }
      od[i] = s;
    }
    return;
  }
  // Register-tiled wide path (batched NN forwards, PR 8): accumulate each
  // output row in fixed-width column tiles held in a local array, so the
  // compiler keeps the whole tile in registers instead of dragging a
  // load-add-store chain through `out`, whose aliasing it cannot prove.
  // Per output element the terms still sum in ascending k with the same
  // skip-exact-zero-lhs shortcut — bit-identical to the plain i-k-j loop
  // this replaces.
  constexpr std::size_t kTile = 16;
  const double* ad = a.data().data();
  const double* bd = b.data().data();
  double* od = out.data().data();
  for (std::size_t i = 0; i < rows; ++i) {
    const double* arow = ad + i * inner;
    for (std::size_t j0 = 0; j0 < cols; j0 += kTile) {
      const std::size_t width = std::min(kTile, cols - j0);
      double acc[kTile] = {};
      if (width == kTile) {
        for (std::size_t k = 0; k < inner; ++k) {
          const double v = arow[k];
          if (v == 0.0) continue;
          const double* brow = bd + k * cols + j0;
          for (std::size_t j = 0; j < kTile; ++j) acc[j] += v * brow[j];
        }
      } else {
        for (std::size_t k = 0; k < inner; ++k) {
          const double v = arow[k];
          if (v == 0.0) continue;
          const double* brow = bd + k * cols + j0;
          for (std::size_t j = 0; j < width; ++j) acc[j] += v * brow[j];
        }
      }
      double* orow = od + i * cols + j0;
      for (std::size_t j = 0; j < width; ++j) orow[j] = acc[j];
    }
  }
}

inline void multiply_transposed_into(const Matrix& a, const Matrix& b,
                                     Matrix& out) {
  if (&out == &a || &out == &b) detail::throw_kernel_alias();
  if (a.cols() != b.cols()) detail::throw_inner_mismatch();
  const std::size_t rows = a.rows();
  const std::size_t inner = a.cols();
  const std::size_t cols = b.rows();
  out.resize(rows, cols);
  if (inner == 6) {
    // Fixed-shape dispatch for the KF's B^T products: (F P)*F^T (6,6,6),
    // (H P)*H^T (4,6,4), P*H^T (6,6,4). Same element order — see
    // detail::multiply_transposed_fixed.
    const double* ad = a.data().data();
    const double* bd = b.data().data();
    double* od = out.data().data();
    if (rows == 6 && cols == 6) {
      return detail::multiply_transposed_fixed<6, 6, 6>(ad, bd, od);
    }
    if (rows == 4 && cols == 4) {
      return detail::multiply_transposed_fixed<4, 6, 4>(ad, bd, od);
    }
    if (rows == 6 && cols == 4) {
      return detail::multiply_transposed_fixed<6, 6, 4>(ad, bd, od);
    }
  }
  // out(i, j) = sum_k a(i, k) * b(j, k): rows of both operands stream
  // sequentially, and register accumulation (four independent j chains)
  // replaces the historical `a * b.transposed()` materialization. Per
  // element the terms still sum in ascending k, skipping exact-zero a —
  // bit-identical to the allocating expression.
  for (std::size_t i = 0; i < rows; ++i) {
    std::size_t j = 0;
    for (; j + 4 <= cols; j += 4) {
      double s0 = 0.0;
      double s1 = 0.0;
      double s2 = 0.0;
      double s3 = 0.0;
      for (std::size_t k = 0; k < inner; ++k) {
        const double v = a(i, k);
        if (v == 0.0) continue;
        s0 += v * b(j, k);
        s1 += v * b(j + 1, k);
        s2 += v * b(j + 2, k);
        s3 += v * b(j + 3, k);
      }
      out(i, j) = s0;
      out(i, j + 1) = s1;
      out(i, j + 2) = s2;
      out(i, j + 3) = s3;
    }
    for (; j < cols; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < inner; ++k) {
        const double v = a(i, k);
        if (v == 0.0) continue;
        s += v * b(j, k);
      }
      out(i, j) = s;
    }
  }
}

}  // namespace rt::math
