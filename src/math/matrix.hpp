#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <vector>

namespace rt::math {

/// A small dense row-major matrix of doubles.
///
/// Sized dynamically because the same type backs both the Kalman filters
/// (4x4..8x8) and the neural-network layers (up to a few hundred rows).
/// All operations validate dimensions and throw `std::invalid_argument` on
/// mismatch — in this codebase a dimension mismatch is always a programming
/// error, and failing loudly is preferred over UB.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a `rows x cols` matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Creates a matrix from a nested initializer list, e.g.
  /// `Matrix m{{1.0, 2.0}, {3.0, 4.0}};`. All rows must have equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  [[nodiscard]] static Matrix identity(std::size_t n);
  /// Diagonal matrix from the given entries.
  [[nodiscard]] static Matrix diagonal(std::span<const double> entries);
  /// Column vector (n x 1) from the given entries.
  [[nodiscard]] static Matrix column(std::span<const double> entries);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Flat row-major access to the underlying storage.
  [[nodiscard]] std::span<const double> data() const { return data_; }
  [[nodiscard]] std::span<double> data() { return data_; }

  Matrix operator+(const Matrix& o) const;
  Matrix operator-(const Matrix& o) const;
  Matrix operator*(const Matrix& o) const;
  Matrix operator*(double s) const;
  Matrix& operator+=(const Matrix& o);
  Matrix& operator-=(const Matrix& o);
  Matrix& operator*=(double s);

  [[nodiscard]] Matrix transposed() const;

  /// Matrix inverse via Gauss-Jordan elimination with partial pivoting.
  /// Throws `std::domain_error` if the matrix is singular (pivot < 1e-12).
  [[nodiscard]] Matrix inverse() const;

  /// Cholesky factor L (lower triangular, A = L * L^T).
  /// Throws `std::domain_error` if the matrix is not positive definite.
  [[nodiscard]] Matrix cholesky() const;

  /// Frobenius norm.
  [[nodiscard]] double norm() const;

  /// Max |a_ij - b_ij|; useful in tests.
  [[nodiscard]] double max_abs_diff(const Matrix& o) const;

  bool operator==(const Matrix& o) const = default;

 private:
  void require_same_shape(const Matrix& o) const;

  std::size_t rows_{0};
  std::size_t cols_{0};
  std::vector<double> data_;
};

}  // namespace rt::math
