#include "math/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace rt::math {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(std::span<const double> entries) {
  Matrix m(entries.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) m(i, i) = entries[i];
  return m;
}

Matrix Matrix::column(std::span<const double> entries) {
  Matrix m(entries.size(), 1);
  std::copy(entries.begin(), entries.end(), m.data_.begin());
  return m;
}

void Matrix::require_same_shape(const Matrix& o) const {
  if (rows_ != o.rows_ || cols_ != o.cols_) {
    throw std::invalid_argument("Matrix: shape mismatch");
  }
}

Matrix Matrix::operator+(const Matrix& o) const {
  Matrix r = *this;
  r += o;
  return r;
}

Matrix Matrix::operator-(const Matrix& o) const {
  Matrix r = *this;
  r -= o;
  return r;
}

Matrix& Matrix::operator+=(const Matrix& o) {
  require_same_shape(o);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  require_same_shape(o);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix Matrix::operator*(const Matrix& o) const {
  if (cols_ != o.rows_) {
    throw std::invalid_argument("Matrix: inner dimension mismatch");
  }
  Matrix r(rows_, o.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < o.cols_; ++j) {
        r(i, j) += a * o(k, j);
      }
    }
  }
  return r;
}

Matrix Matrix::operator*(double s) const {
  Matrix r = *this;
  r *= s;
  return r;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix Matrix::transposed() const {
  Matrix r(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      r(j, i) = (*this)(i, j);
    }
  }
  return r;
}

Matrix Matrix::inverse() const {
  if (rows_ != cols_) {
    throw std::invalid_argument("Matrix::inverse: matrix not square");
  }
  const std::size_t n = rows_;
  Matrix a = *this;
  Matrix inv = identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: find the largest-magnitude entry in this column.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > std::abs(a(pivot, col))) pivot = r;
    }
    if (std::abs(a(pivot, col)) < 1e-12) {
      throw std::domain_error("Matrix::inverse: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a(col, j), a(pivot, j));
        std::swap(inv(col, j), inv(pivot, j));
      }
    }
    const double d = a(col, col);
    for (std::size_t j = 0; j < n; ++j) {
      a(col, j) /= d;
      inv(col, j) /= d;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = a(r, col);
      if (f == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        a(r, j) -= f * a(col, j);
        inv(r, j) -= f * inv(col, j);
      }
    }
  }
  return inv;
}

Matrix Matrix::cholesky() const {
  if (rows_ != cols_) {
    throw std::invalid_argument("Matrix::cholesky: matrix not square");
  }
  const std::size_t n = rows_;
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = (*this)(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0) {
          throw std::domain_error("Matrix::cholesky: not positive definite");
        }
        l(i, j) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return l;
}

double Matrix::norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::max_abs_diff(const Matrix& o) const {
  require_same_shape(o);
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::abs(data_[i] - o.data_[i]));
  }
  return m;
}

}  // namespace rt::math
