#include "math/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace rt::math {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) {
      throw std::invalid_argument("Matrix: ragged initializer list");
    }
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(std::span<const double> entries) {
  Matrix m(entries.size(), entries.size());
  for (std::size_t i = 0; i < entries.size(); ++i) m(i, i) = entries[i];
  return m;
}

Matrix Matrix::column(std::span<const double> entries) {
  Matrix m(entries.size(), 1);
  std::copy(entries.begin(), entries.end(), m.data_.begin());
  return m;
}

void Matrix::require_same_shape(const Matrix& o) const {
  if (rows_ != o.rows_ || cols_ != o.cols_) {
    throw std::invalid_argument("Matrix: shape mismatch");
  }
}

Matrix Matrix::operator+(const Matrix& o) const {
  Matrix r = *this;
  r += o;
  return r;
}

Matrix Matrix::operator-(const Matrix& o) const {
  Matrix r = *this;
  r -= o;
  return r;
}

namespace detail {

void throw_kernel_alias() {
  throw std::invalid_argument("Matrix kernel: out aliases an input");
}

void throw_inner_mismatch() {
  throw std::invalid_argument("Matrix: inner dimension mismatch");
}

}  // namespace detail

namespace {

void require_no_alias(const Matrix& a, const Matrix& b, const Matrix& out) {
  if (&out == &a || &out == &b) detail::throw_kernel_alias();
}

}  // namespace

void transposed_multiply_into(const Matrix& a, const Matrix& b, Matrix& out) {
  require_no_alias(a, b, out);
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("Matrix: inner dimension mismatch");
  }
  out.resize(a.cols(), b.cols());
  std::fill(out.data().begin(), out.data().end(), 0.0);
  // a^T(i, k) = a(k, i); the loop order matches `a.transposed() * b`.
  for (std::size_t i = 0; i < a.cols(); ++i) {
    for (std::size_t k = 0; k < a.rows(); ++k) {
      const double v = a(k, i);
      if (v == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        out(i, j) += v * b(k, j);
      }
    }
  }
}

void add_into(const Matrix& a, const Matrix& b, Matrix& out) {
  require_no_alias(a, b, out);
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("Matrix: shape mismatch");
  }
  out.resize(a.rows(), a.cols());
  const auto ad = a.data();
  const auto bd = b.data();
  const auto od = out.data();
  for (std::size_t i = 0; i < ad.size(); ++i) od[i] = ad[i] + bd[i];
}

void subtract_into(const Matrix& a, const Matrix& b, Matrix& out) {
  require_no_alias(a, b, out);
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("Matrix: shape mismatch");
  }
  out.resize(a.rows(), a.cols());
  const auto ad = a.data();
  const auto bd = b.data();
  const auto od = out.data();
  for (std::size_t i = 0; i < ad.size(); ++i) od[i] = ad[i] - bd[i];
}

void affine_into(const Matrix& w, const Matrix& x, const Matrix& bias,
                 Matrix& out) {
  if (bias.rows() != w.rows() || bias.cols() != 1) {
    throw std::invalid_argument("affine_into: bias must be rows(w) x 1");
  }
  multiply_into(w, x, out);
  for (std::size_t i = 0; i < out.rows(); ++i) {
    const double bi = bias(i, 0);
    for (std::size_t j = 0; j < out.cols(); ++j) out(i, j) += bi;
  }
}

namespace {

void require_row_range(const Matrix& out, std::size_t rows, std::size_t cols,
                       std::size_t row_begin, std::size_t row_end) {
  if (out.rows() != rows || out.cols() != cols) {
    throw std::invalid_argument("Matrix row kernel: out not pre-sized");
  }
  if (row_begin > row_end || row_end > rows) {
    throw std::invalid_argument("Matrix row kernel: bad row range");
  }
}

}  // namespace

void affine_rows_into(const Matrix& w, const Matrix& x, const Matrix& bias,
                      Matrix& out, std::size_t row_begin,
                      std::size_t row_end) {
  require_no_alias(w, x, out);
  if (&out == &bias) detail::throw_kernel_alias();
  if (w.cols() != x.rows()) detail::throw_inner_mismatch();
  if (bias.rows() != w.rows() || bias.cols() != 1) {
    throw std::invalid_argument("affine_rows_into: bias must be rows(w) x 1");
  }
  require_row_range(out, w.rows(), x.cols(), row_begin, row_end);
  const std::size_t inner = w.cols();
  const std::size_t cols = x.cols();
  if (cols == 1) {
    // Mirrors multiply_into's column fast path: each element is an ordered
    // dot product (ascending k, skip exact-zero lhs), so restricting the
    // row range cannot change any value.
    const auto xd = x.data();
    for (std::size_t i = row_begin; i < row_end; ++i) {
      double s = 0.0;
      for (std::size_t k = 0; k < inner; ++k) {
        const double v = w(i, k);
        if (v != 0.0) s += v * xd[k];
      }
      out(i, 0) = s;
      out(i, 0) += bias(i, 0);
    }
    return;
  }
  // Register-tiled wide path, mirroring multiply_into's: per output row,
  // fixed-width column tiles accumulate in a local array (registers), then
  // the bias adds once per element. Ascending-k sums with the same
  // skip-exact-zero shortcut — bit-identical to the memory-accumulating
  // loop this replaces, for any row partition.
  constexpr std::size_t kTile = 16;
  const double* wd = w.data().data();
  const double* xd2 = x.data().data();
  double* od = out.data().data();
  for (std::size_t i = row_begin; i < row_end; ++i) {
    const double* wrow = wd + i * inner;
    const double bi = bias(i, 0);
    for (std::size_t j0 = 0; j0 < cols; j0 += kTile) {
      const std::size_t width = std::min(kTile, cols - j0);
      double acc[kTile] = {};
      if (width == kTile) {
        for (std::size_t k = 0; k < inner; ++k) {
          const double v = wrow[k];
          if (v == 0.0) continue;
          const double* xrow = xd2 + k * cols + j0;
          for (std::size_t j = 0; j < kTile; ++j) acc[j] += v * xrow[j];
        }
      } else {
        for (std::size_t k = 0; k < inner; ++k) {
          const double v = wrow[k];
          if (v == 0.0) continue;
          const double* xrow = xd2 + k * cols + j0;
          for (std::size_t j = 0; j < width; ++j) acc[j] += v * xrow[j];
        }
      }
      double* orow = od + i * cols + j0;
      for (std::size_t j = 0; j < width; ++j) orow[j] = acc[j] + bi;
    }
  }
}

void multiply_transposed_rows_into(const Matrix& a, const Matrix& b,
                                   Matrix& out, std::size_t row_begin,
                                   std::size_t row_end) {
  require_no_alias(a, b, out);
  if (a.cols() != b.cols()) detail::throw_inner_mismatch();
  require_row_range(out, a.rows(), b.rows(), row_begin, row_end);
  const std::size_t inner = a.cols();
  const std::size_t cols = b.rows();
  // Same per-element ordered sums as multiply_transposed_into (the 4-chain
  // register grouping there never mixes elements, so a plain per-element
  // loop is bit-identical).
  for (std::size_t i = row_begin; i < row_end; ++i) {
    for (std::size_t j = 0; j < cols; ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < inner; ++k) {
        const double v = a(i, k);
        if (v == 0.0) continue;
        s += v * b(j, k);
      }
      out(i, j) = s;
    }
  }
}

void transposed_multiply_rows_into(const Matrix& a, const Matrix& b,
                                   Matrix& out, std::size_t row_begin,
                                   std::size_t row_end) {
  require_no_alias(a, b, out);
  if (a.rows() != b.rows()) {
    throw std::invalid_argument("Matrix: inner dimension mismatch");
  }
  require_row_range(out, a.cols(), b.cols(), row_begin, row_end);
  for (std::size_t i = row_begin; i < row_end; ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) out(i, j) = 0.0;
  }
  for (std::size_t i = row_begin; i < row_end; ++i) {
    for (std::size_t k = 0; k < a.rows(); ++k) {
      const double v = a(k, i);
      if (v == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        out(i, j) += v * b(k, j);
      }
    }
  }
}

namespace {

/// Gauss-Jordan with partial pivoting over compile-time N — the SAME
/// statement sequence as the generic loop below with the trip counts fixed,
/// so every divide/subtract happens in the identical order and the result
/// is bit-identical. N=4 serves the KF innovation covariance S, the single
/// inversion on the per-frame tracker path.
template <std::size_t N>
void invert_fixed(double* s, double* o) {
  for (std::size_t i = 0; i < N * N; ++i) o[i] = 0.0;
  for (std::size_t i = 0; i < N; ++i) o[i * N + i] = 1.0;
  for (std::size_t col = 0; col < N; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < N; ++r) {
      if (std::abs(s[r * N + col]) > std::abs(s[pivot * N + col])) pivot = r;
    }
    if (std::abs(s[pivot * N + col]) < 1e-12) {
      throw std::domain_error("Matrix::inverse: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t j = 0; j < N; ++j) {
        std::swap(s[col * N + j], s[pivot * N + j]);
        std::swap(o[col * N + j], o[pivot * N + j]);
      }
    }
    const double d = s[col * N + col];
    for (std::size_t j = 0; j < N; ++j) {
      s[col * N + j] /= d;
      o[col * N + j] /= d;
    }
    for (std::size_t r = 0; r < N; ++r) {
      if (r == col) continue;
      const double f = s[r * N + col];
      if (f == 0.0) continue;
      for (std::size_t j = 0; j < N; ++j) {
        s[r * N + j] -= f * s[col * N + j];
        o[r * N + j] -= f * o[col * N + j];
      }
    }
  }
}

}  // namespace

void invert_into(const Matrix& a, Matrix& scratch, Matrix& out) {
  require_no_alias(a, scratch, out);
  if (&scratch == &a || &scratch == &out) {
    throw std::invalid_argument("Matrix kernel: scratch aliases another");
  }
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("Matrix::inverse: matrix not square");
  }
  const std::size_t n = a.rows();
  scratch = a;
  out.resize(n, n);
  if (n == 4) {
    return invert_fixed<4>(scratch.data().data(), out.data().data());
  }
  std::fill(out.data().begin(), out.data().end(), 0.0);
  for (std::size_t i = 0; i < n; ++i) out(i, i) = 1.0;
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: find the largest-magnitude entry in this column.
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(scratch(r, col)) > std::abs(scratch(pivot, col))) pivot = r;
    }
    if (std::abs(scratch(pivot, col)) < 1e-12) {
      throw std::domain_error("Matrix::inverse: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(scratch(col, j), scratch(pivot, j));
        std::swap(out(col, j), out(pivot, j));
      }
    }
    const double d = scratch(col, col);
    for (std::size_t j = 0; j < n; ++j) {
      scratch(col, j) /= d;
      out(col, j) /= d;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = scratch(r, col);
      if (f == 0.0) continue;
      for (std::size_t j = 0; j < n; ++j) {
        scratch(r, j) -= f * scratch(col, j);
        out(r, j) -= f * out(col, j);
      }
    }
  }
}

Matrix& Matrix::operator+=(const Matrix& o) {
  require_same_shape(o);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += o.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& o) {
  require_same_shape(o);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= o.data_[i];
  return *this;
}

Matrix Matrix::operator*(const Matrix& o) const {
  Matrix r;
  multiply_into(*this, o, r);
  return r;
}

Matrix Matrix::operator*(double s) const {
  Matrix r = *this;
  r *= s;
  return r;
}

Matrix& Matrix::operator*=(double s) {
  for (double& v : data_) v *= s;
  return *this;
}

Matrix Matrix::transposed() const {
  Matrix r(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      r(j, i) = (*this)(i, j);
    }
  }
  return r;
}

Matrix Matrix::inverse() const {
  Matrix scratch;
  Matrix inv;
  invert_into(*this, scratch, inv);
  return inv;
}

Matrix Matrix::cholesky() const {
  if (rows_ != cols_) {
    throw std::invalid_argument("Matrix::cholesky: matrix not square");
  }
  const std::size_t n = rows_;
  Matrix l(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = (*this)(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 0.0) {
          throw std::domain_error("Matrix::cholesky: not positive definite");
        }
        l(i, j) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  return l;
}

double Matrix::norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::max_abs_diff(const Matrix& o) const {
  require_same_shape(o);
  double m = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    m = std::max(m, std::abs(data_[i] - o.data_[i]));
  }
  return m;
}

}  // namespace rt::math
