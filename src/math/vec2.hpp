#pragma once

#include <cmath>

namespace rt::math {

/// A 2-D vector in the road frame.
///
/// Convention used throughout the repository: `x` is the *longitudinal* axis
/// (direction of ego travel, increasing ahead of the vehicle) and `y` is the
/// *lateral* axis (increasing to the left of travel). Units are meters unless
/// a function documents otherwise.
struct Vec2 {
  double x{0.0};
  double y{0.0};

  constexpr Vec2() = default;
  constexpr Vec2(double x_, double y_) : x(x_), y(y_) {}

  constexpr Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  constexpr Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  constexpr Vec2 operator*(double s) const { return {x * s, y * s}; }
  constexpr Vec2 operator/(double s) const { return {x / s, y / s}; }
  constexpr Vec2& operator+=(const Vec2& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Vec2& operator-=(const Vec2& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr Vec2 operator-() const { return {-x, -y}; }

  constexpr bool operator==(const Vec2& o) const = default;

  [[nodiscard]] constexpr double dot(const Vec2& o) const {
    return x * o.x + y * o.y;
  }
  [[nodiscard]] double norm() const { return std::hypot(x, y); }
  [[nodiscard]] constexpr double squared_norm() const { return x * x + y * y; }

  /// Euclidean distance to another point.
  [[nodiscard]] double distance_to(const Vec2& o) const {
    return (*this - o).norm();
  }
};

constexpr Vec2 operator*(double s, const Vec2& v) { return v * s; }

}  // namespace rt::math
