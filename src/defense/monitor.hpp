#pragma once

#include <string>
#include <utility>

#include "perception/camera_model.hpp"
#include "perception/detection.hpp"
#include "perception/fusion.hpp"
#include "perception/lidar_model.hpp"
#include "perception/mot_tracker.hpp"
#include "perception/noise_model.hpp"
#include "perception/perception_system.hpp"

namespace rt::defense {

/// Tunables of the innovation-gate monitor (see InnovationGateMonitor).
struct InnovationGateConfig {
  /// Squared-Mahalanobis gate on the matched detection's innovation. The
  /// measurement is 4-dimensional (u, v, w, h); 13.28 is the chi-square(4)
  /// 99 % quantile, so natural noise exceeds it on ~1 % of frames.
  double gate_m2{13.28};
  /// Consecutive over-gate innovations on one track before flagging. A
  /// benign association switch in dense traffic (track ID jumps to the
  /// neighbouring object) leaves a *decaying* innovation tail while the
  /// filter re-locks — the gate-ward half of that tail measures up to 4
  /// frames, so the streak requirement sits above it; a hijack that keeps
  /// pulling the track sustains spikes for as long as it acts.
  int spike_consecutive{6};
  /// Two-sided CUSUM on the sigma-normalized center-x innovation: per frame
  /// g+ <- max(0, g+ + e - slack), g- <- max(0, g- - e - slack); an alert
  /// fires when either side exceeds `cusum_threshold`. Zero-mean natural
  /// noise keeps both sides near zero; the malware's *biased* sub-sigma
  /// drift (§III-B) accumulates ~(1 - slack) per attacked frame.
  double cusum_slack{0.6};
  double cusum_threshold{10.0};
  /// Per-frame |e| is clipped here before entering the CUSUM: the detector
  /// population's heavy outlier tail is zero-mean and must not dominate
  /// the drift statistic.
  double cusum_clip{2.5};
  /// Tracks younger than this are exempt (velocity still locking in).
  int min_hits{4};
  /// Tracks closer than this (back-projected range, m) are exempt: bearing
  /// rate explodes as an object passes the camera and the CV filter lags
  /// naturally (measured: Mahalanobis climbs past the gate below ~18 m on
  /// golden DS-3 passes). Attacks launch far outside this radius
  /// (delta_inject 8-34 m means ~45+ m gaps at cruise speed).
  double min_range_m{20.0};
};

/// Tunables of the sensor-consistency monitor (SensorConsistencyMonitor).
struct SensorConsistencyConfig {
  /// Camera/LiDAR pairing gate: tight laterally (both sensors localize
  /// sideways well — the lateral departure IS the Move_* breakaway
  /// signature), generous and range-proportional longitudinally (monocular
  /// depth error reaches ~15 % of range on the simulated detector).
  double pair_gate_lateral{2.0};
  double pair_gate_longitudinal_frac{0.35};
  double pair_gate_longitudinal_min{8.0};
  /// Camera tracks younger than this are not judged.
  int min_camera_hits{4};
  /// Frames of LiDAR corroboration before the breakaway test arms.
  int min_paired_frames{6};
  /// Consecutive unpaired-but-in-coverage frames on a previously
  /// corroborated track before a breakaway alert fires.
  int breakaway_consecutive{8};
  /// A camera track that spent this many *in-coverage* frames without a
  /// single LiDAR corroboration is a ghost (appear anomaly). Frames spent
  /// beyond LiDAR range do not count.
  int ghost_frames{45};
  /// Multiplier on the characterized vehicle misdetection-streak p99: a
  /// LiDAR track with no nearby camera track for longer is a disappear
  /// anomaly. The paper's attacker budgets K below exactly this tail.
  double absence_p99_mult{1.0};
  /// Teleport anomaly: per-frame jump of a matched mature track beyond
  /// these bounds, sustained for `teleport_consecutive` frames. Lateral
  /// localization is sharp at every range, so the lateral bound is
  /// absolute; monocular depth error grows with range, so the longitudinal
  /// bound is range-proportional. The consecutive requirement absorbs the
  /// single-frame jumps of benign track ID switches in dense traffic.
  double teleport_lateral_m{3.0};
  double teleport_longitudinal_frac{0.35};
  double teleport_longitudinal_min{6.0};
  int teleport_consecutive{2};
  /// Breakaway/ghost judged only beyond this range (m): pairing geometry
  /// degrades on close passes, and no attack operates there.
  double min_range_m{15.0};
  /// Fraction of the LiDAR class range considered reliable coverage. The
  /// coverage test runs on the camera's own range estimate, whose monocular
  /// depth error reaches ~25 % on pedestrians — the margin must absorb the
  /// worst underestimate, or an object truly beyond LiDAR range is judged
  /// "covered but unpaired" and false-fires the breakaway test.
  double coverage_margin{0.7};
  int min_lidar_hits{3};
};

/// Tunables of the kinematics-plausibility monitor (KinematicsMonitor).
///
/// The monitor judges *lateral* kinematics only: monocular range recovery
/// is far too noisy for longitudinal acceleration to mean anything, while
/// lateral localization is sharp. The bounds are deliberately generous —
/// they sit above the measured natural envelope of the camera velocity
/// pipeline (EMA max ~11-12 m/s^2 across all eight families), so the
/// monitor is the backstop that catches kinematically absurd streams, and
/// a sub-sigma attacker evades it *by design* (the paper's stealth claim,
/// made measurable).
struct KinematicsConfig {
  double vehicle_lat_accel_max{16.0};
  double pedestrian_lat_accel_max{12.0};
  /// Jerk bound (m/s^3) on the smoothed lateral-acceleration derivative.
  double jerk_max{250.0};
  /// Consecutive violating frames before flagging.
  int consecutive{5};
  /// Tracks younger than this are exempt.
  int min_hits{8};
  /// EMA weight of the per-frame raw acceleration estimate.
  double accel_ema_alpha{0.25};
  /// Judged range window (m): close passes distort bearing geometry, far
  /// tracks carry meter-scale projection noise.
  double min_range_m{10.0};
  double max_range_m{60.0};
};

/// Per-monitor tuning bundle carried by the loop configuration.
struct MonitorTuning {
  InnovationGateConfig innovation{};
  SensorConsistencyConfig consistency{};
  KinematicsConfig kinematics{};
};

/// Everything a monitor factory may read when instantiating a monitor for
/// one run: the perception stack's own configuration (the defender knows
/// its ADS) plus the tuning bundle. Mirrors how `sim::ScenarioSpec`
/// generators receive `ScenarioParams`.
struct MonitorContext {
  double dt{1.0 / 15.0};
  perception::CameraModel camera{};
  perception::DetectorNoiseModel noise{
      perception::DetectorNoiseModel::paper_defaults()};
  perception::MotConfig mot{};
  perception::FusionConfig fusion{};
  perception::LidarConfig lidar{};
  MonitorTuning tuning{};
};

/// What one monitor concluded about a run so far. `alarms` counts alarm
/// frames (including after the first alert); `fired` latches on the first.
struct MonitorReport {
  bool fired{false};
  double first_alert_time{-1.0};
  std::string reason;
  int alarms{0};
};

/// Base class of all runtime attack monitors.
///
/// A monitor is a stateful per-run observer of the perception stream: it is
/// built fresh for every closed-loop run (via the MonitorRegistry), sees
/// each cycle's consumed camera frame + perception output, and accumulates
/// a MonitorReport. Monitors are passive — they never feed back into the
/// ADS — so enabling them cannot change a run's driving outcome, and every
/// pinned campaign golden is invariant under any monitor stack.
///
/// Steady-state zero-allocation contract (the campaign hot path): after the
/// tracked-object set stabilizes, `observe` must not allocate. Per-track
/// state lives in id-keyed maps whose nodes are reused across frames (the
/// same pattern as the fusion stage and the track projector).
class AttackMonitor {
 public:
  explicit AttackMonitor(std::string key) : key_(std::move(key)) {}
  virtual ~AttackMonitor() = default;

  AttackMonitor(const AttackMonitor&) = delete;
  AttackMonitor& operator=(const AttackMonitor&) = delete;

  /// Observes one perception cycle: `frame` is the (possibly attacked)
  /// camera frame the ADS consumed, `out` the perception output it
  /// produced.
  virtual void observe(const perception::CameraFrame& frame,
                       const perception::PerceptionOutput& out) = 0;

  [[nodiscard]] const std::string& key() const { return key_; }
  [[nodiscard]] const MonitorReport& report() const { return report_; }

 protected:
  /// Records an alarm frame; the first one latches `fired`, the alert time
  /// and the reason (a string literal — no allocation on later frames).
  void raise(double time, const char* reason) {
    ++report_.alarms;
    if (!report_.fired) {
      report_.fired = true;
      report_.first_alert_time = time;
      report_.reason = reason;
    }
  }

 private:
  std::string key_;
  MonitorReport report_;
};

}  // namespace rt::defense
