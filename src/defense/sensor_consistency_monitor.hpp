#pragma once

#include <unordered_map>

#include "defense/monitor.hpp"

namespace rt::defense {

/// Sensor-consistency monitor ("sensor-consistency").
///
/// Cross-checks the (attackable) camera track stream against the LiDAR
/// model, which the threat model leaves truthful. Four anomaly tests, all
/// evaluated in the road frame:
///
///  - breakaway: a camera track that was LiDAR-corroborated for a while and
///    then departs the LiDAR evidence while still inside LiDAR coverage.
///    This is the geometric signature of the Move_* vectors — the faked
///    camera trajectory walks away from the victim's true position until
///    the pairing gate breaks.
///  - disappear: a mature LiDAR track with no camera track nearby for
///    longer than the characterized misdetection-streak tail (the paper's
///    K_max budget is calibrated against exactly this tail, so a compliant
///    Disappear attack ducks under; over-long blackouts are caught).
///  - ghost (appear): a camera track inside LiDAR coverage that LiDAR has
///    never corroborated, older than `ghost_frames`.
///  - teleport: a physically impossible per-frame jump of a matched camera
///    track's road-frame position.
class SensorConsistencyMonitor final : public AttackMonitor {
 public:
  SensorConsistencyMonitor(const SensorConsistencyConfig& config,
                           perception::CameraModel camera,
                           perception::DetectorNoiseModel noise,
                           perception::LidarConfig lidar)
      : AttackMonitor("sensor-consistency"),
        config_(config),
        camera_(camera),
        noise_(noise),
        lidar_(lidar) {}

  void observe(const perception::CameraFrame& frame,
               const perception::PerceptionOutput& out) override;

 private:
  struct CameraState {
    int paired_frames{0};
    int unpaired_streak{0};
    int uncorroborated_in_coverage{0};
    int teleport_streak{0};
    math::Vec2 last_position;
    bool has_last{false};
  };
  struct LidarState {
    int absent_streak{0};
  };

  /// The shared elliptical pairing gate: lateral bound absolute, the
  /// longitudinal one proportional to `range`. Used by the breakaway and
  /// absence tests so both judge the same geometry.
  [[nodiscard]] bool within_pair_gate(const math::Vec2& a,
                                      const math::Vec2& b,
                                      double range) const;
  [[nodiscard]] bool paired_with_lidar(
      const perception::WorldTrack& track,
      const perception::PerceptionOutput& out) const;
  [[nodiscard]] bool in_lidar_coverage(
      const perception::WorldTrack& track) const;

  SensorConsistencyConfig config_;
  perception::CameraModel camera_;
  perception::DetectorNoiseModel noise_;
  perception::LidarConfig lidar_;
  std::unordered_map<int, CameraState> camera_state_;
  std::unordered_map<int, LidarState> lidar_state_;
};

}  // namespace rt::defense
