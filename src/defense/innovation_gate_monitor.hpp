#pragma once

#include <unordered_map>

#include "defense/monitor.hpp"

namespace rt::defense {

/// Innovation-gate monitor ("innovation-gate").
///
/// Watches the Kalman innovation of every matched camera-track update —
/// exactly the statistic §III-B says a biased-noise attacker slides under —
/// with two complementary tests:
///
///  1. Spike test: the squared Mahalanobis distance of the matched
///     detection against the track's predicted measurement must not exceed
///     the chi-square gate for `spike_consecutive` frames in a row. This is
///     the classic innovation gate; it catches crude perturbations (the
///     random baseline, the no-noise-bound ablation).
///
///  2. Drift test: a two-sided CUSUM on the sigma-normalized center-x
///     innovation. Natural detector noise is zero-mean, so the statistic
///     hovers near zero; RoboTack's Move_* vectors inject a *persistently
///     biased* sub-sigma shift, which a per-frame gate cannot see but a
///     cumulative-sum statistic integrates frame over frame. Detection
///     latency trades off against false alarms via `cusum_threshold`.
class InnovationGateMonitor final : public AttackMonitor {
 public:
  InnovationGateMonitor(const InnovationGateConfig& config,
                        perception::CameraModel camera,
                        perception::DetectorNoiseModel noise)
      : AttackMonitor("innovation-gate"),
        config_(config),
        camera_(camera),
        noise_(noise) {}

  void observe(const perception::CameraFrame& frame,
               const perception::PerceptionOutput& out) override;

 private:
  struct State {
    int spike_streak{0};
    double cusum_pos{0.0};
    double cusum_neg{0.0};
  };

  InnovationGateConfig config_;
  perception::CameraModel camera_;
  perception::DetectorNoiseModel noise_;
  std::unordered_map<int, State> state_;
};

}  // namespace rt::defense
