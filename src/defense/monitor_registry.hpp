#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "defense/monitor.hpp"

namespace rt::defense {

/// One registered monitor family: a string key, a human description, and
/// the factory that instantiates a fresh per-run monitor from the context.
struct MonitorSpec {
  using Factory =
      std::function<std::unique_ptr<AttackMonitor>(const MonitorContext&)>;

  std::string key;
  std::string description;
  Factory make;
};

/// Process-wide registry of runtime attack monitors, mirroring
/// `sim::ScenarioRegistry`: the three built-in monitors (innovation-gate,
/// sensor-consistency, kinematics) are pre-registered in that order, and
/// user code can append its own monitors at startup and drive them through
/// the same campaign machinery (`CampaignSpec::monitors`,
/// `CampaignGridBuilder::monitors`).
///
/// Lookup/instantiation is const and safe to call concurrently (every
/// campaign run builds its own monitor stack); registration is not
/// synchronized and belongs in single-threaded startup code.
class MonitorRegistry {
 public:
  /// Registers a new monitor family. Throws std::invalid_argument on an
  /// empty key, a missing factory, or a duplicate key.
  void register_monitor(MonitorSpec spec);

  [[nodiscard]] bool contains(const std::string& key) const;

  /// Throws std::out_of_range (listing the known keys) when absent.
  [[nodiscard]] const MonitorSpec& get(const std::string& key) const;

  /// Registration-stable index of the monitor (builtins are 0..2).
  [[nodiscard]] std::size_t index_of(const std::string& key) const;

  /// Keys in registration order — stable for the lifetime of the registry.
  [[nodiscard]] std::vector<std::string> keys() const;

  [[nodiscard]] std::size_t size() const { return specs_.size(); }

  /// Instantiates a fresh monitor for one run.
  [[nodiscard]] std::unique_ptr<AttackMonitor> make(
      const std::string& key, const MonitorContext& ctx) const;

  /// The process-wide registry, with all built-in monitors registered.
  [[nodiscard]] static MonitorRegistry& global();

 private:
  std::vector<MonitorSpec> specs_;
  std::unordered_map<std::string, std::size_t> index_;
};

}  // namespace rt::defense
