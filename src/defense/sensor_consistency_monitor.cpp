#include "defense/sensor_consistency_monitor.hpp"

#include <algorithm>
#include <cmath>

#include "perception/track_liveness.hpp"

namespace rt::defense {

bool SensorConsistencyMonitor::within_pair_gate(const math::Vec2& a,
                                                const math::Vec2& b,
                                                double range) const {
  const double gate_lon =
      std::max(config_.pair_gate_longitudinal_min,
               config_.pair_gate_longitudinal_frac * range);
  return std::abs(a.y - b.y) <= config_.pair_gate_lateral &&
         std::abs(a.x - b.x) <= gate_lon;
}

bool SensorConsistencyMonitor::paired_with_lidar(
    const perception::WorldTrack& track,
    const perception::PerceptionOutput& out) const {
  for (const auto& l : out.lidar_tracks) {
    // Gate on the larger of the two range estimates: monocular depth error
    // scales with the TRUE range, so when the camera underestimates depth
    // (worst exactly for close crossing pedestrians) a camera-range gate
    // shrinks while the error grows, and legitimate pairs break apart.
    const double range =
        std::max(l.rel_position.x, track.rel_position.x);
    if (within_pair_gate(l.rel_position, track.rel_position, range)) {
      return true;
    }
  }
  return false;
}

bool SensorConsistencyMonitor::in_lidar_coverage(
    const perception::WorldTrack& track) const {
  return track.rel_position.x <
             lidar_.range_for(track.cls) * config_.coverage_margin &&
         std::abs(track.rel_position.y) < lidar_.lateral_coverage;
}

void SensorConsistencyMonitor::observe(
    const perception::CameraFrame& /*frame*/,
    const perception::PerceptionOutput& out) {
  // Camera-side tests: breakaway, ghost, teleport.
  for (const auto& w : out.camera_world) {
    CameraState& s = camera_state_[w.track_id];

    // Teleport test: judged only on mature matched tracks; the lateral
    // bound is absolute (sharp localization at any range), the
    // longitudinal one range-proportional (monocular depth noise). A
    // single over-bound jump is forgiven — benign track ID switches in
    // dense traffic produce exactly one — a *sustained* jumping stream is
    // not.
    if (w.matched_this_frame && s.has_last &&
        w.hits >= config_.min_camera_hits) {
      const double lat_jump = std::abs(w.rel_position.y - s.last_position.y);
      const double lon_jump = std::abs(w.rel_position.x - s.last_position.x);
      // Gate on the larger of the two range estimates, for the same reason
      // the LiDAR pair gate does: monocular depth error scales with the
      // TRUE range, so when the camera underestimates depth on one frame
      // and corrects on the next, a gate keyed to the underestimate shrinks
      // exactly when the legitimate correction is largest.
      const double lon_gate =
          std::max(config_.teleport_longitudinal_min,
                   config_.teleport_longitudinal_frac *
                       std::max(s.last_position.x, w.rel_position.x));
      if (lat_jump > config_.teleport_lateral_m || lon_jump > lon_gate) {
        if (++s.teleport_streak >= config_.teleport_consecutive) {
          raise(out.time, "camera track teleported between frames");
        }
      } else {
        s.teleport_streak = 0;
      }
    }
    if (w.matched_this_frame) {
      s.last_position = w.rel_position;
      s.has_last = true;
    }

    if (w.hits < config_.min_camera_hits ||
        w.rel_position.x < config_.min_range_m) {
      s.unpaired_streak = 0;
      continue;
    }
    const bool covered = in_lidar_coverage(w);
    if (paired_with_lidar(w, out)) {
      ++s.paired_frames;
      s.unpaired_streak = 0;
    } else if (covered) {
      ++s.unpaired_streak;
      if (s.paired_frames >= config_.min_paired_frames &&
          s.unpaired_streak >= config_.breakaway_consecutive) {
        raise(out.time, "corroborated camera track broke away from LiDAR");
      } else if (s.paired_frames < config_.min_paired_frames &&
                 ++s.uncorroborated_in_coverage >= config_.ghost_frames) {
        // Still judged a ghost below the corroboration-maturity bar: a
        // handful of spurious pairing frames (passing clutter inside the
        // generous gate) must not whitelist an injected object forever.
        raise(out.time, "persistent camera-only object inside LiDAR coverage");
      }
    } else {
      // Outside coverage there is nothing to disagree with.
      s.unpaired_streak = 0;
    }
  }
  perception::erase_dead_tracks(
      camera_state_, out.camera_world,
      [](const perception::WorldTrack& w) { return w.track_id; });

  // LiDAR-side test: disappear. LiDAR carries no class, so the streak
  // budget uses the longer (vehicle) tail — the same conservative choice
  // the attacker calibrates K_max against.
  const int absence_limit = static_cast<int>(
      noise_.vehicle.streak_p99 * config_.absence_p99_mult);
  for (const auto& l : out.lidar_tracks) {
    if (l.hits < config_.min_lidar_hits) continue;
    // Only judge objects the camera should currently see.
    sim::GroundTruthObject probe;
    probe.rel_position = l.rel_position;
    probe.dims = sim::default_dimensions(sim::ActorType::kVehicle);
    if (!camera_.project(probe)) {
      lidar_state_.erase(l.track_id);
      continue;
    }
    bool seen = false;
    for (const auto& w : out.camera_world) {
      const double range =
          std::max(w.rel_position.x, l.rel_position.x);
      if (within_pair_gate(w.rel_position, l.rel_position, range)) {
        seen = true;
        break;
      }
    }
    LidarState& s = lidar_state_[l.track_id];
    s.absent_streak = seen ? 0 : s.absent_streak + 1;
    if (s.absent_streak > absence_limit) {
      raise(out.time, "LiDAR object missing from camera for too long");
    }
  }
  perception::erase_dead_tracks(
      lidar_state_, out.lidar_tracks,
      [](const perception::LidarTrack& l) { return l.track_id; });
}

}  // namespace rt::defense
