#pragma once

#include <memory>
#include <string>
#include <vector>

#include "defense/monitor.hpp"
#include "perception/perception_observer.hpp"

namespace rt::defense {

/// Per-monitor slice of a run's defense outcome.
struct MonitorOutcome {
  std::string monitor;
  bool fired{false};
  double first_alert_time{-1.0};
  int alarms{0};
  std::string reason;
};

/// Everything one closed-loop run's monitor stack concluded.
struct DefenseReport {
  bool flagged{false};             ///< any monitor fired
  double first_alert_time{-1.0};   ///< earliest alert across monitors
  std::string first_monitor;       ///< who fired first
  std::vector<MonitorOutcome> monitors;
  /// Filled by the evaluation harness (ground-truth launch knowledge):
  /// true when the run's attack triggered and ANY monitor's first alert
  /// came at or after launch — judged per monitor, so a pre-launch false
  /// alarm from one monitor cannot mask another monitor's genuine
  /// detection. `detected_by` is the earliest such monitor and
  /// `frames_to_detection` its launch-to-alert latency in camera frames
  /// (-1 when not detected).
  bool detected{false};
  int frames_to_detection{-1};
  std::string detected_by;
};

/// An instantiated set of runtime attack monitors attached to one run.
///
/// Implements the perception observer hook: each perception cycle is
/// forwarded to every monitor. The stack is passive — detection outcomes
/// are evaluation data, never fed back into the ADS — so enabling any stack
/// leaves the driving outcome (and every pinned golden) bit-identical.
class MonitorStack final : public perception::PerceptionObserver {
 public:
  MonitorStack() = default;

  /// Builds the stack from global-registry keys. Throws std::out_of_range
  /// on an unknown key (listing the known ones).
  MonitorStack(const std::vector<std::string>& keys,
               const MonitorContext& ctx);

  /// Appends a custom monitor (ownership transferred).
  void add(std::unique_ptr<AttackMonitor> monitor);

  void on_perception(const perception::CameraFrame& frame,
                     const perception::PerceptionOutput& out) override;

  [[nodiscard]] bool empty() const { return monitors_.empty(); }
  [[nodiscard]] std::size_t size() const { return monitors_.size(); }

  /// Assembles the run-level report (detected / frames_to_detection are
  /// left for the harness, which knows the ground-truth launch time).
  [[nodiscard]] DefenseReport report() const;

 private:
  std::vector<std::unique_ptr<AttackMonitor>> monitors_;
};

}  // namespace rt::defense
