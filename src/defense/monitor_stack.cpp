#include "defense/monitor_stack.hpp"

#include "defense/monitor_registry.hpp"

namespace rt::defense {

MonitorStack::MonitorStack(const std::vector<std::string>& keys,
                           const MonitorContext& ctx) {
  monitors_.reserve(keys.size());
  for (const auto& key : keys) {
    monitors_.push_back(MonitorRegistry::global().make(key, ctx));
  }
}

void MonitorStack::add(std::unique_ptr<AttackMonitor> monitor) {
  monitors_.push_back(std::move(monitor));
}

void MonitorStack::on_perception(const perception::CameraFrame& frame,
                                 const perception::PerceptionOutput& out) {
  for (const auto& m : monitors_) m->observe(frame, out);
}

DefenseReport MonitorStack::report() const {
  DefenseReport report;
  report.monitors.reserve(monitors_.size());
  for (const auto& m : monitors_) {
    const MonitorReport& r = m->report();
    report.monitors.push_back(
        {m->key(), r.fired, r.first_alert_time, r.alarms, r.reason});
    if (r.fired && (!report.flagged ||
                    r.first_alert_time < report.first_alert_time)) {
      report.flagged = true;
      report.first_alert_time = r.first_alert_time;
      report.first_monitor = m->key();
    }
  }
  return report;
}

}  // namespace rt::defense
