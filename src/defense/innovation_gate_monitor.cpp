#include "defense/innovation_gate_monitor.hpp"

#include <algorithm>
#include <cmath>

#include "perception/track_liveness.hpp"

namespace rt::defense {

void InnovationGateMonitor::observe(const perception::CameraFrame& /*frame*/,
                                    const perception::PerceptionOutput& out) {
  for (const auto& t : out.camera_tracks) {
    State& s = state_[t.track_id];
    if (!t.matched_this_frame || t.hits < config_.min_hits) {
      // No measurement (or velocity still locking in): the spike streak
      // breaks; the CUSUM holds its value — a Move_* attacker that ducks
      // behind occasional misses must still pay off its accumulated drift.
      s.spike_streak = 0;
      continue;
    }
    // Skip the close-pass regime: bearing rate diverges as an object passes
    // the camera and the CV filter lags naturally (no attack launches
    // there; see InnovationGateConfig::min_range_m).
    const auto range = camera_.back_project(t.predicted_bbox);
    if (!range || range->x < config_.min_range_m) {
      s.spike_streak = 0;
      continue;
    }

    if (t.innovation_m2 > config_.gate_m2) {
      if (++s.spike_streak >= config_.spike_consecutive) {
        raise(out.time, "sustained Mahalanobis innovation spikes");
      }
    } else {
      s.spike_streak = 0;
    }

    const auto& fit = noise_.for_class(t.cls).center_x;
    const double e = std::clamp(
        (t.innovation_x - fit.mu) / std::max(1e-6, fit.sigma),
        -config_.cusum_clip, config_.cusum_clip);
    s.cusum_pos = std::max(0.0, s.cusum_pos + e - config_.cusum_slack);
    s.cusum_neg = std::max(0.0, s.cusum_neg - e - config_.cusum_slack);
    if (s.cusum_pos > config_.cusum_threshold ||
        s.cusum_neg > config_.cusum_threshold) {
      raise(out.time, "biased innovation drift (CUSUM over threshold)");
    }
  }

  perception::erase_dead_tracks(
      state_, out.camera_tracks,
      [](const perception::TrackView& t) { return t.track_id; });
}

}  // namespace rt::defense
