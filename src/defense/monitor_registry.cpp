#include "defense/monitor_registry.hpp"

#include <stdexcept>

#include "defense/innovation_gate_monitor.hpp"
#include "defense/kinematics_monitor.hpp"
#include "defense/sensor_consistency_monitor.hpp"

namespace rt::defense {

namespace {

[[noreturn]] void throw_unknown(const std::string& key,
                                const std::vector<MonitorSpec>& specs) {
  std::string message = "MonitorRegistry: unknown monitor '" + key +
                        "'; known monitors:";
  for (const auto& spec : specs) message += " " + spec.key;
  throw std::out_of_range(message);
}

}  // namespace

void MonitorRegistry::register_monitor(MonitorSpec spec) {
  if (spec.key.empty()) {
    throw std::invalid_argument("MonitorRegistry: empty monitor key");
  }
  if (!spec.make) {
    throw std::invalid_argument("MonitorRegistry: monitor '" + spec.key +
                                "' has no factory");
  }
  if (index_.count(spec.key) != 0) {
    throw std::invalid_argument("MonitorRegistry: duplicate monitor key '" +
                                spec.key + "'");
  }
  index_.emplace(spec.key, specs_.size());
  specs_.push_back(std::move(spec));
}

bool MonitorRegistry::contains(const std::string& key) const {
  return index_.count(key) != 0;
}

const MonitorSpec& MonitorRegistry::get(const std::string& key) const {
  const auto it = index_.find(key);
  if (it == index_.end()) throw_unknown(key, specs_);
  return specs_[it->second];
}

std::size_t MonitorRegistry::index_of(const std::string& key) const {
  const auto it = index_.find(key);
  if (it == index_.end()) throw_unknown(key, specs_);
  return it->second;
}

std::vector<std::string> MonitorRegistry::keys() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& spec : specs_) out.push_back(spec.key);
  return out;
}

std::unique_ptr<AttackMonitor> MonitorRegistry::make(
    const std::string& key, const MonitorContext& ctx) const {
  return get(key).make(ctx);
}

MonitorRegistry& MonitorRegistry::global() {
  static MonitorRegistry registry = [] {
    MonitorRegistry r;
    r.register_monitor(
        {"innovation-gate",
         "Kalman innovation gate: Mahalanobis spike streaks + CUSUM on "
         "biased sub-sigma drift",
         [](const MonitorContext& ctx) -> std::unique_ptr<AttackMonitor> {
           return std::make_unique<InnovationGateMonitor>(
               ctx.tuning.innovation, ctx.camera, ctx.noise);
         }});
    r.register_monitor(
        {"sensor-consistency",
         "camera-vs-LiDAR cross-check: appear (ghost), disappear "
         "(absence), breakaway and teleport anomalies",
         [](const MonitorContext& ctx) -> std::unique_ptr<AttackMonitor> {
           return std::make_unique<SensorConsistencyMonitor>(
               ctx.tuning.consistency, ctx.camera, ctx.noise, ctx.lidar);
         }});
    r.register_monitor(
        {"kinematics",
         "physical plausibility bounds on per-track acceleration and jerk",
         [](const MonitorContext& ctx) -> std::unique_ptr<AttackMonitor> {
           return std::make_unique<KinematicsMonitor>(ctx.tuning.kinematics,
                                                      ctx.dt);
         }});
    return r;
  }();
  return registry;
}

}  // namespace rt::defense
