#include "defense/kinematics_monitor.hpp"

#include <algorithm>
#include <cmath>

#include "perception/track_liveness.hpp"

namespace rt::defense {

void KinematicsMonitor::observe(const perception::CameraFrame& /*frame*/,
                                const perception::PerceptionOutput& out) {
  for (const auto& w : out.camera_world) {
    State& s = state_[w.track_id];
    if (!s.has_prev) {
      s.prev_vy = w.rel_velocity.y;
      s.has_prev = true;
      continue;
    }
    const double raw = (w.rel_velocity.y - s.prev_vy) / dt_;
    s.prev_vy = w.rel_velocity.y;
    s.prev_accel_ema = s.accel_ema;
    s.accel_ema = s.accel_ema * (1.0 - config_.accel_ema_alpha) +
                  raw * config_.accel_ema_alpha;
    const bool had_accel = s.has_accel;
    s.has_accel = true;

    if (w.hits < config_.min_hits || w.rel_position.x < config_.min_range_m ||
        w.rel_position.x > config_.max_range_m) {
      s.streak = 0;
      continue;
    }
    const double accel_max = w.cls == sim::ActorType::kVehicle
                                 ? config_.vehicle_lat_accel_max
                                 : config_.pedestrian_lat_accel_max;
    const double jerk =
        had_accel ? std::abs(s.accel_ema - s.prev_accel_ema) / dt_ : 0.0;
    const bool violated =
        std::abs(s.accel_ema) > accel_max || jerk > config_.jerk_max;
    s.streak = violated ? s.streak + 1 : 0;
    if (s.streak >= config_.consecutive) {
      raise(out.time, "physically implausible lateral acceleration/jerk");
    }
  }

  perception::erase_dead_tracks(
      state_, out.camera_world,
      [](const perception::WorldTrack& w) { return w.track_id; });
}

}  // namespace rt::defense
