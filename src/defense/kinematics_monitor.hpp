#pragma once

#include <unordered_map>

#include "defense/monitor.hpp"

namespace rt::defense {

/// Kinematics-plausibility monitor ("kinematics").
///
/// Bounds the per-frame *lateral* acceleration and jerk of every road-frame
/// camera track against physical limits: real vehicles and pedestrians
/// cannot out-accelerate their tires or legs, but a hijacked detection
/// stream can imply arbitrary kinematics. The raw per-frame acceleration
/// estimate (finite difference of the projector's EMA lateral velocity) is
/// smoothed with its own EMA before the comparison, and a violation must
/// persist for `consecutive` frames inside the judged range window.
///
/// RoboTack's sub-sigma perturbations imply modest lateral accelerations
/// and stay under the (generous, above-natural-envelope) bounds — this
/// monitor is the backstop that catches kinematically absurd streams, and
/// its near-empty column in the attack-vs-defense matrix is the paper's
/// stealth claim made measurable.
class KinematicsMonitor final : public AttackMonitor {
 public:
  KinematicsMonitor(const KinematicsConfig& config, double dt)
      : AttackMonitor("kinematics"), config_(config), dt_(dt) {}

  void observe(const perception::CameraFrame& frame,
               const perception::PerceptionOutput& out) override;

 private:
  struct State {
    double prev_vy{0.0};
    double accel_ema{0.0};
    double prev_accel_ema{0.0};
    bool has_prev{false};
    bool has_accel{false};
    int streak{0};
  };

  KinematicsConfig config_;
  double dt_;
  std::unordered_map<int, State> state_;
};

}  // namespace rt::defense
