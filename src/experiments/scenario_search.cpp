#include "experiments/scenario_search.hpp"

#include <algorithm>
#include <cmath>

#include "experiments/reporting.hpp"
#include "experiments/transfer_matrix.hpp"
#include "stats/hash.hpp"

namespace rt::experiments {

namespace {

/// Seed of the n-th sample drawn for a template: a pure function of
/// (search seed, template name, counter) so the search is reproducible and
/// immune to registry reordering.
std::uint64_t sample_seed_for(std::uint64_t search_seed,
                              const std::string& template_key,
                              std::uint64_t counter) {
  std::uint64_t h = stats::fnv1a_u64(stats::kFnv1aOffset, search_seed);
  h = stats::fnv1a_str(h, template_key);
  return stats::fnv1a_u64(h, counter);
}

double score_campaign(const CampaignResult& result, SearchObjective objective) {
  if (result.runs.empty()) return 0.0;
  switch (objective) {
    case SearchObjective::kAttackSuccess:
      return result.crash_rate() + 0.5 * result.eb_rate();
    case SearchObjective::kEvadeMonitors: {
      int evading = 0;
      for (const RunResult& r : result.runs) {
        const bool damaging = r.crash || r.eb;
        if (r.attack.triggered && damaging && !r.defense.detected) ++evading;
      }
      return static_cast<double>(evading) /
             static_cast<double>(result.runs.size());
    }
  }
  return 0.0;
}

}  // namespace

CleanRunCheck check_clean_run(const sim::SampledScenario& sample,
                              const LoopConfig& base) {
  CleanRunCheck check;
  const sim::Scenario scenario = sample.make();
  check.report = sim::check_scenario(scenario);

  LoopConfig cfg = base;
  cfg.keep_timeline = true;
  const std::uint64_t loop_seed = stats::fnv1a_u64(
      stats::fnv1a_str(stats::kFnv1aOffset, "clean-run"), sample.seed);
  ClosedLoop loop(scenario, cfg, loop_seed);
  check.golden = loop.run();
  const RunResult& r = check.golden;

  if (r.collision) {
    check.report.add("golden-collision",
                     "unattacked run ends in a physical collision (min "
                     "delta " + fmt(r.min_delta, 2) + " m)");
  }
  if (r.crash) {
    check.report.add("golden-crash",
                     "unattacked run earns the accident label (min delta " +
                         fmt(r.min_delta, 2) + " m)");
  }
  if (r.defense.flagged) {
    std::string detail = r.defense.first_monitor + " fires at t=" +
                         fmt(r.defense.first_alert_time, 2) +
                         " s on a clean run";
    for (const auto& m : r.defense.monitors) {
      if (m.fired) detail += "; " + m.monitor + ": " + m.reason;
    }
    check.report.add("monitor-false-positive", detail);
  }
  // Ego actuation envelope over the recorded timeline: speed bounds plus
  // finite-difference acceleration against the plant limits (0.1 m/s^2
  // tolerance absorbs the discrete reconstruction).
  const sim::EgoLimits limits = scenario.ego.limits();
  const double dt = cfg.camera_dt();
  bool speed_flagged = false;
  bool accel_flagged = false;
  for (std::size_t i = 0; i < r.timeline.size(); ++i) {
    const auto& s = r.timeline[i];
    if (!speed_flagged &&
        (s.ego_speed < -1e-6 || s.ego_speed > limits.max_speed + 1e-6)) {
      speed_flagged = true;
      check.report.add("ego-speed", "speed " + fmt(s.ego_speed, 2) +
                                        " m/s outside [0, " +
                                        fmt(limits.max_speed, 2) +
                                        "] at t=" + fmt(s.time, 2));
    }
    if (i == 0) continue;
    const double accel = (s.ego_speed - r.timeline[i - 1].ego_speed) / dt;
    if (!accel_flagged && (accel > limits.max_accel + 0.1 ||
                           accel < -limits.max_decel - 0.1)) {
      accel_flagged = true;
      check.report.add("ego-accel", "accel " + fmt(accel, 2) +
                                        " m/s^2 outside [-" +
                                        fmt(limits.max_decel, 2) + ", " +
                                        fmt(limits.max_accel, 2) +
                                        "] at t=" + fmt(s.time, 2));
    }
  }
  return check;
}

std::vector<std::string> ScenarioSearchResult::csv_header() {
  return {"template", "seed",           "score", "crash_rate",
          "eb_rate",  "detection_rate", "runs",  "spec"};
}

std::vector<std::vector<std::string>> ScenarioSearchResult::csv_rows() const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(frontier.size());
  for (const auto& e : frontier) {
    rows.push_back({e.template_key, std::to_string(e.sample_seed),
                    fmt(e.score, 4), fmt(e.crash_rate, 4), fmt(e.eb_rate, 4),
                    fmt(e.detection_rate, 4), std::to_string(e.runs),
                    e.spec});
  }
  return rows;
}

ScenarioSearchResult run_scenario_search(const ScenarioSearchConfig& cfg,
                                         const LoopConfig& base,
                                         const OracleSet& oracles) {
  const auto& registry = sim::ScenarioRegistry::global();
  const sim::ScenarioSampler sampler(registry);
  const std::vector<std::string> templates =
      cfg.templates.empty() ? registry.keys() : cfg.templates;

  ScenarioSearchResult out;
  out.objective = cfg.objective;
  if (templates.empty() || cfg.rounds <= 0 || cfg.samples_per_round <= 0 ||
      cfg.runs_per_sample <= 0) {
    return out;
  }

  CampaignRunner runner(base, oracles);
  CampaignScheduler scheduler(runner, cfg.threads);

  std::vector<double> best_score(templates.size(), 0.0);
  std::vector<std::uint64_t> drawn(templates.size(), 0);

  for (int round = 0; round < cfg.rounds; ++round) {
    // Deterministic bandit allocation: weight = exploration floor + best
    // score seen, largest-remainder rounding with template-order
    // tie-breaks. Every template keeps drawing; promising ones draw more.
    std::vector<double> weight(templates.size());
    double total_weight = 0.0;
    for (std::size_t t = 0; t < templates.size(); ++t) {
      weight[t] = 0.25 + best_score[t];
      total_weight += weight[t];
    }
    std::vector<int> alloc(templates.size(), 0);
    std::vector<std::pair<double, std::size_t>> remainders;
    int allocated = 0;
    for (std::size_t t = 0; t < templates.size(); ++t) {
      const double share =
          cfg.samples_per_round * (weight[t] / total_weight);
      alloc[t] = static_cast<int>(std::floor(share));
      allocated += alloc[t];
      remainders.emplace_back(share - std::floor(share), t);
    }
    std::stable_sort(remainders.begin(), remainders.end(),
                     [](const auto& a, const auto& b) {
                       return a.first > b.first;
                     });
    for (std::size_t i = 0; allocated < cfg.samples_per_round; ++i) {
      ++alloc[remainders[i % remainders.size()].second];
      ++allocated;
    }

    // Draw this round's samples; reject structurally broken ones before
    // spending closed-loop runs on them.
    std::vector<sim::SampledScenario> samples;
    std::vector<std::size_t> sample_template;
    std::vector<CampaignSpec> specs;
    for (std::size_t t = 0; t < templates.size(); ++t) {
      for (int i = 0; i < alloc[t]; ++i) {
        const std::uint64_t seed =
            sample_seed_for(cfg.seed, templates[t], drawn[t]++);
        sim::SampledScenario sample = sampler.sample(templates[t], seed);
        if (!sim::check_scenario_structure(sample.make()).ok()) {
          ++out.rejected_samples;
          continue;
        }
        CampaignSpec spec;
        spec.name = "fuzz-" + sample.template_key + "-" +
                    std::to_string(sample.seed);
        spec.scenario = sample.template_key;
        spec.vector = transfer_vector_for(sample.template_key);
        spec.mode = cfg.mode;
        spec.runs = cfg.runs_per_sample;
        spec.seed = sample.seed;
        spec.params = sample.params;
        spec.monitors = cfg.monitors;
        samples.push_back(std::move(sample));
        sample_template.push_back(t);
        specs.push_back(std::move(spec));
      }
    }
    if (specs.empty()) continue;

    const std::vector<CampaignResult> results =
        cfg.executor ? cfg.executor(specs) : scheduler.run_all(specs);
    for (std::size_t i = 0; i < results.size(); ++i) {
      const CampaignResult& result = results[i];
      SearchFrontierEntry entry;
      entry.template_key = samples[i].template_key;
      entry.sample_seed = samples[i].seed;
      entry.score = score_campaign(result, cfg.objective);
      entry.crash_rate = result.crash_rate();
      entry.eb_rate = result.eb_rate();
      entry.detection_rate = result.detection_rate();
      entry.runs = result.n();
      entry.spec = samples[i].spec_string();
      out.total_runs += result.n();
      best_score[sample_template[i]] =
          std::max(best_score[sample_template[i]], entry.score);
      out.evaluated.push_back(std::move(entry));
    }
  }

  // Frontier: the best evaluated sample of each template, score-descending
  // (ties broken by template name for stable output).
  for (const auto& key : templates) {
    const SearchFrontierEntry* best = nullptr;
    for (const auto& e : out.evaluated) {
      if (e.template_key != key) continue;
      if (best == nullptr || e.score > best->score) best = &e;
    }
    if (best != nullptr) out.frontier.push_back(*best);
  }
  std::stable_sort(out.frontier.begin(), out.frontier.end(),
                   [](const SearchFrontierEntry& a,
                      const SearchFrontierEntry& b) {
                     if (a.score != b.score) return a.score > b.score;
                     return a.template_key < b.template_key;
                   });
  return out;
}

}  // namespace rt::experiments
