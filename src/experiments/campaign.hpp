#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "experiments/closed_loop.hpp"
#include "sim/scenario_registry.hpp"

namespace rt::experiments {

/// Attack condition of a campaign (a set of runs sharing one scenario and
/// one condition) — Table II's row structure.
enum class AttackMode : std::uint8_t {
  kGolden,          ///< no malware (baseline behaviour / sanity)
  kRobotack,        ///< full RoboTack ("R")
  kNoSh,            ///< RoboTack without the safety hijacker ("R w/o SH")
  kRandomBaseline,  ///< DS-5 style random attack ("Baseline-Random")
};

[[nodiscard]] constexpr const char* to_string(AttackMode m) {
  switch (m) {
    case AttackMode::kGolden:
      return "Golden";
    case AttackMode::kRobotack:
      return "R";
    case AttackMode::kNoSh:
      return "R w/o SH";
    case AttackMode::kRandomBaseline:
      return "Baseline-Random";
  }
  return "?";
}

/// One experimental campaign: N seeded runs of <scenario, vector, mode>.
/// `scenario` is a ScenarioRegistry key; `params`, when set, overrides the
/// family defaults for every run (nullopt = paper defaults).
struct CampaignSpec {
  std::string name;  ///< e.g. "DS-1-Disappear-R"
  std::string scenario{"DS-1"};
  core::AttackVector vector{core::AttackVector::kDisappear};
  AttackMode mode{AttackMode::kRobotack};
  int runs{120};
  std::uint64_t seed{1234};
  std::optional<sim::ScenarioParams> params{};
  /// Runtime attack monitors deployed on every run of the campaign
  /// (defense::MonitorRegistry keys; empty = undefended, the historical
  /// behaviour). Monitors are passive, so the driving outcomes of a
  /// campaign are identical with or without them.
  std::vector<std::string> monitors{};
};

/// Aggregated campaign outcome (plus every per-run result).
struct CampaignResult {
  CampaignSpec spec;
  std::vector<RunResult> runs;

  [[nodiscard]] int n() const { return static_cast<int>(runs.size()); }
  [[nodiscard]] int eb_count() const;
  [[nodiscard]] int crash_count() const;
  [[nodiscard]] int triggered_count() const;
  [[nodiscard]] int ids_flagged_count() const;
  [[nodiscard]] double eb_rate() const;
  [[nodiscard]] double crash_rate() const;
  /// Median planned K over triggered runs (Table II's "K" column).
  [[nodiscard]] double median_k() const;
  /// K' samples (shift frames) over triggered Move_* runs (Fig. 7).
  [[nodiscard]] std::vector<double> k_primes() const;
  /// Min safety potential since attack start, per triggered run (Fig. 6).
  [[nodiscard]] std::vector<double> min_deltas() const;

  // Defense outcomes (all zero / empty when the spec deployed no monitors).
  /// Runs whose triggered attack was flagged at/after launch.
  [[nodiscard]] int detected_count() const;
  /// detected / triggered (0 when nothing triggered) — the headline
  /// detection rate of the attack-vs-defense matrix.
  [[nodiscard]] double detection_rate() const;
  /// Runs the stack flagged without a post-launch attack to blame: golden
  /// runs, untriggered runs, or alerts that predate the launch.
  [[nodiscard]] int false_alarm_count() const;
  /// false alarms / n — the false-positive rate on no-attack baselines.
  [[nodiscard]] double false_alarm_rate() const;
  /// Launch-to-first-alert latency (camera frames) per detected run.
  [[nodiscard]] std::vector<double> frames_to_detection() const;
  /// Median detection latency; -1 when nothing was detected.
  [[nodiscard]] double median_frames_to_detection() const;
};

/// Why a campaign in a grid request could not be completed. Typed so
/// clients can branch on the cause without parsing prose; the message is
/// diagnostic detail only.
enum class CampaignErrorCode : std::uint8_t {
  kDeadlineExceeded,  ///< the request deadline expired at a cell boundary
  kExecutionFailed,   ///< a run raised; retries/fallback could not finish
};

[[nodiscard]] constexpr const char* to_string(CampaignErrorCode c) {
  switch (c) {
    case CampaignErrorCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case CampaignErrorCode::kExecutionFailed:
      return "execution-failed";
  }
  return "?";
}

/// Per-campaign typed error record: spec `spec_index` of the request could
/// not be completed. A campaign either appears complete in the results or
/// carries one of these — never a silently partial result.
struct CampaignError {
  std::size_t spec_index{0};
  CampaignErrorCode code{CampaignErrorCode::kExecutionFailed};
  std::string message;
};

/// The trained per-vector oracles RoboTack deploys with.
using OracleSet =
    std::map<core::AttackVector, std::shared_ptr<core::SafetyOracle>>;

/// Runs campaigns over a shared loop configuration and oracle set.
///
/// Every run's randomness is a pure function of (spec.seed, run_index) via
/// `stats::Rng::from_stream`, so `run_one` is thread-safe and a campaign's
/// results are identical whether its runs execute serially, out of order,
/// or on any number of threads (see CampaignScheduler). The oracles are
/// shared (not cloned) across concurrent runs; that is safe because
/// inference forwards mutate nothing (see SafetyOracle::predict).
class CampaignRunner {
 public:
  CampaignRunner(LoopConfig base, OracleSet oracles)
      : base_(std::move(base)), oracles_(std::move(oracles)) {}

  [[nodiscard]] CampaignResult run(const CampaignSpec& spec) const;

  /// One run of the campaign: run_index in [0, spec.runs). Const and
  /// re-entrant; callable concurrently for distinct (spec, index) pairs.
  [[nodiscard]] RunResult run_one(const CampaignSpec& spec,
                                  int run_index) const;

  /// Builds the attacker for one run of a campaign (exposed for tests).
  [[nodiscard]] std::unique_ptr<core::Robotack> make_attacker(
      const CampaignSpec& spec, std::uint64_t run_seed) const;

  [[nodiscard]] const LoopConfig& loop_config() const { return base_; }

 private:
  LoopConfig base_;
  OracleSet oracles_;
};

/// Per-run completion callback: (spec index in the batch, runs finished in
/// that campaign so far, spec.runs). Invoked under a scheduler-internal
/// mutex — callbacks never race each other but must stay cheap.
using CampaignProgressFn =
    std::function<void(std::size_t spec_index, int done, int total)>;

/// One <spec, run_index> cell of a campaign grid — the unit the in-process
/// scheduler, the multi-process sharder (rt::service) and the result cache
/// all operate on.
struct GridCell {
  std::size_t spec{0};
  int run{0};
};

/// Flattens a grid into its cell list, spec-major (all runs of spec 0, then
/// spec 1, ...) — the enumeration order run_all has always used, so a cell
/// index addresses the same <spec, run> pair in every process of a sharded
/// run.
[[nodiscard]] std::vector<GridCell> grid_cells(
    const std::vector<CampaignSpec>& specs);

/// Runs the listed cells serially (in list order) and hands each finished
/// result to `sink` with its index into `cells`. This is the sharded
/// worker's entry point: because it calls CampaignRunner::run_one exactly
/// like the in-process scheduler, any partition of the cell list across
/// processes reassembles into bit-identical campaign results.
void run_cells(const CampaignRunner& runner,
               const std::vector<CampaignSpec>& specs,
               const std::vector<GridCell>& cells,
               const std::vector<std::size_t>& indices,
               const std::function<void(std::size_t cell_index,
                                        const RunResult& run)>& sink);

/// Convenience: the contiguous half-open cell range [begin, end).
void run_cell_range(const CampaignRunner& runner,
                    const std::vector<CampaignSpec>& specs,
                    const std::vector<GridCell>& cells, std::size_t begin,
                    std::size_t end,
                    const std::function<void(std::size_t cell_index,
                                             const RunResult& run)>& sink);

/// Pluggable campaign-batch executor: runs every spec and returns results
/// in spec order. Grid harnesses (defense grid, scenario search) accept one
/// so the service layer can substitute cached and/or multi-process
/// execution (rt::service::CampaignService::executor()) for the default
/// in-process CampaignScheduler without the harness knowing.
using GridExecutor = std::function<std::vector<CampaignResult>(
    const std::vector<CampaignSpec>&)>;

/// Batches whole campaign grids (e.g. all of Table II) over a fixed thread
/// pool. Every <spec, run_index> cell becomes one task; each task writes
/// its RunResult into a pre-assigned slot, so aggregates are bit-identical
/// at any thread count and specs of very different sizes still pack the
/// pool densely (no per-campaign barrier).
class CampaignScheduler {
 public:
  /// `threads == 0` means ThreadPool::default_threads().
  explicit CampaignScheduler(const CampaignRunner& runner,
                             unsigned threads = 0);

  /// Runs every spec to completion and returns results in spec order.
  [[nodiscard]] std::vector<CampaignResult> run_all(
      const std::vector<CampaignSpec>& specs,
      const CampaignProgressFn& on_progress = nullptr) const;

  /// Convenience: single-spec batch.
  [[nodiscard]] CampaignResult run(const CampaignSpec& spec) const;

  [[nodiscard]] unsigned threads() const { return threads_; }

 private:
  const CampaignRunner& runner_;
  unsigned threads_;
};

/// The seven campaigns of Table II (see campaign_grid.hpp for the builder
/// these are defined with).
[[nodiscard]] std::vector<CampaignSpec> table2_campaigns(int runs_per,
                                                         std::uint64_t seed);

/// The "R w/o SH" twins of the six attack campaigns (Fig. 6 comparison).
[[nodiscard]] std::vector<CampaignSpec> no_sh_campaigns(int runs_per,
                                                        std::uint64_t seed);

}  // namespace rt::experiments
