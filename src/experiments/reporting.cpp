#include "experiments/reporting.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace rt::experiments {

std::string fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string fmt_pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

std::string format_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) {
    widths[c] = header[c].size();
  }
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      line += ' ' + cell + std::string(widths[c] - cell.size(), ' ') + " |";
    }
    return line + '\n';
  };
  std::string sep = "+";
  for (const std::size_t w : widths) sep += std::string(w + 2, '-') + '+';
  sep += '\n';

  std::string out = sep + render_row(header) + sep;
  for (const auto& row : rows) out += render_row(row);
  out += sep;
  return out;
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (const auto& part : parts) {
    if (!out.empty()) out += sep;
    out += part;
  }
  return out;
}

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\r\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (const char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void write_csv(const std::string& path,
               const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_csv: cannot open " + path);
  const auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ',';
      os << csv_escape(row[i]);
    }
    os << '\n';
  };
  write_row(header);
  for (const auto& row : rows) write_row(row);
}

std::string bench_json(const std::vector<BenchJsonRecord>& records) {
  // The bench names are plain identifiers (benchmark symbol names, CLI
  // driver tags); escape quotes/backslashes anyway so exotic names cannot
  // produce invalid JSON.
  const auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
    return out;
  };
  std::string out = "[\n";
  for (std::size_t i = 0; i < records.size(); ++i) {
    const BenchJsonRecord& r = records[i];
    char numbers[160];
    std::snprintf(numbers, sizeof numbers,
                  "\"runs_per_sec\": %.3f, \"wall_ms\": %.3f, "
                  "\"threads\": %u, \"seed\": %llu",
                  r.runs_per_sec, r.wall_ms, r.threads,
                  static_cast<unsigned long long>(r.seed));
    out += "  {\"bench\": \"" + escape(r.bench) + "\", " + numbers + "}";
    if (i + 1 < records.size()) out += ',';
    out += '\n';
  }
  out += "]\n";
  return out;
}

void write_bench_json(const std::string& path,
                      const std::vector<BenchJsonRecord>& records) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("write_bench_json: cannot open " + path);
  os << bench_json(records);
}

}  // namespace rt::experiments
