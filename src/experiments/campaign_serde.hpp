#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "experiments/campaign.hpp"

namespace rt::experiments {

/// Wire/cache format version of the campaign serialization. Bump on ANY
/// schema change (field added, reordered, retyped): readers reject other
/// versions loudly instead of misinterpreting fields.
inline constexpr std::uint64_t kCampaignSerdeVersion = 1;

/// Thrown on any malformed, truncated or version-mismatched input. The
/// contract is fail-loudly: a damaged cache file or pipe frame must never
/// deserialize as zeros — every strict prefix of a valid serialization and
/// every trailing-garbage suffix raises this.
class SerdeError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Text serialization of campaign data, designed for two consumers that
/// both demand bit-exactness:
///  - the content-hash result cache (rt::service::CampaignCellCache), whose
///    hits must be indistinguishable from re-running the campaign;
///  - the sharded scheduler's pipe protocol, whose reassembled grids must
///    be bit-identical to the in-process scheduler at any worker count.
/// Doubles are therefore encoded as their raw IEEE-754 bit pattern
/// (`d<16 hex digits>`), never via decimal round-trips; strings are
/// netstrings (`<len>:<raw bytes>`), so embedded newlines/commas/quotes in
/// monitor reasons survive unmangled. Each top-level payload carries a
/// magic + version header and a closing `end` sentinel.
[[nodiscard]] std::string serialize_spec(const CampaignSpec& spec);
[[nodiscard]] CampaignSpec deserialize_spec(std::string_view text);

[[nodiscard]] std::string serialize_run_result(const RunResult& run);
[[nodiscard]] RunResult deserialize_run_result(std::string_view text);

[[nodiscard]] std::string serialize_campaign_result(const CampaignResult& r);
[[nodiscard]] CampaignResult deserialize_campaign_result(
    std::string_view text);

}  // namespace rt::experiments
