#include "experiments/campaign.hpp"

#include <algorithm>
#include <mutex>

#include "experiments/campaign_grid.hpp"
#include "experiments/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "stats/summary.hpp"

namespace rt::experiments {

namespace {

/// Registered once per process; the handle itself is a trivially copyable
/// pointer wrapper, so the per-cell cost is one relaxed fetch_add.
const obs::Counter& campaign_cells_counter() {
  static const obs::Counter c = obs::MetricsRegistry::global().counter(
      "rt_campaign_cells_total",
      "Campaign cells (individual closed-loop runs) executed in-process");
  return c;
}

}  // namespace

int CampaignResult::eb_count() const {
  return static_cast<int>(
      std::count_if(runs.begin(), runs.end(),
                    [](const RunResult& r) { return r.eb; }));
}

int CampaignResult::crash_count() const {
  return static_cast<int>(
      std::count_if(runs.begin(), runs.end(),
                    [](const RunResult& r) { return r.crash; }));
}

int CampaignResult::triggered_count() const {
  return static_cast<int>(
      std::count_if(runs.begin(), runs.end(),
                    [](const RunResult& r) { return r.attack.triggered; }));
}

int CampaignResult::ids_flagged_count() const {
  return static_cast<int>(
      std::count_if(runs.begin(), runs.end(),
                    [](const RunResult& r) { return r.ids_flagged; }));
}

double CampaignResult::eb_rate() const {
  return runs.empty() ? 0.0
                      : static_cast<double>(eb_count()) /
                            static_cast<double>(runs.size());
}

double CampaignResult::crash_rate() const {
  return runs.empty() ? 0.0
                      : static_cast<double>(crash_count()) /
                            static_cast<double>(runs.size());
}

double CampaignResult::median_k() const {
  std::vector<double> ks;
  for (const auto& r : runs) {
    if (r.attack.triggered) ks.push_back(r.attack.planned_k);
  }
  return ks.empty() ? 0.0 : stats::median(ks);
}

std::vector<double> CampaignResult::k_primes() const {
  std::vector<double> out;
  for (const auto& r : runs) {
    if (r.attack.triggered && r.attack.k_prime >= 0 &&
        r.attack.vector != core::AttackVector::kDisappear) {
      out.push_back(r.attack.k_prime);
    }
  }
  return out;
}

std::vector<double> CampaignResult::min_deltas() const {
  std::vector<double> out;
  for (const auto& r : runs) {
    if (r.attack.triggered) out.push_back(r.min_delta_since_attack);
  }
  return out;
}

int CampaignResult::detected_count() const {
  return static_cast<int>(
      std::count_if(runs.begin(), runs.end(),
                    [](const RunResult& r) { return r.defense.detected; }));
}

double CampaignResult::detection_rate() const {
  const int triggered = triggered_count();
  return triggered == 0 ? 0.0
                        : static_cast<double>(detected_count()) /
                              static_cast<double>(triggered);
}

int CampaignResult::false_alarm_count() const {
  return static_cast<int>(std::count_if(
      runs.begin(), runs.end(), [](const RunResult& r) {
        return r.defense.flagged && !r.defense.detected;
      }));
}

double CampaignResult::false_alarm_rate() const {
  return runs.empty() ? 0.0
                      : static_cast<double>(false_alarm_count()) /
                            static_cast<double>(runs.size());
}

std::vector<double> CampaignResult::frames_to_detection() const {
  std::vector<double> out;
  for (const auto& r : runs) {
    if (r.defense.detected) {
      out.push_back(static_cast<double>(r.defense.frames_to_detection));
    }
  }
  return out;
}

double CampaignResult::median_frames_to_detection() const {
  const auto frames = frames_to_detection();
  return frames.empty() ? -1.0 : stats::median(frames);
}

std::unique_ptr<core::Robotack> CampaignRunner::make_attacker(
    const CampaignSpec& spec, std::uint64_t run_seed) const {
  if (spec.mode == AttackMode::kGolden) return nullptr;

  core::TimingPolicy timing = core::TimingPolicy::kSafetyHijacker;
  switch (spec.mode) {
    case AttackMode::kRobotack:
      timing = core::TimingPolicy::kSafetyHijacker;
      break;
    case AttackMode::kNoSh:
      timing = core::TimingPolicy::kRandomAfterMatch;
      break;
    case AttackMode::kRandomBaseline:
      timing = core::TimingPolicy::kRandomUnconditional;
      break;
    case AttackMode::kGolden:
      break;
  }

  core::RobotackConfig cfg =
      make_attacker_config(base_, spec.vector, timing);
  if (spec.mode == AttackMode::kRandomBaseline) {
    cfg.randomize_vector = true;
    cfg.randomize_target = true;
  }
  auto attacker = std::make_unique<core::Robotack>(
      cfg, base_.camera, base_.noise, base_.mot, run_seed);
  if (spec.mode == AttackMode::kRobotack) {
    for (const auto& [v, oracle] : oracles_) {
      attacker->set_oracle(v, oracle);
    }
  }
  return attacker;
}

RunResult CampaignRunner::run_one(const CampaignSpec& spec,
                                  int run_index) const {
  RT_TRACE_SPAN("campaign_cell", "campaign",
                static_cast<std::uint64_t>(run_index), "run");
  campaign_cells_counter().inc();
  // Counter-based: stream k is a pure function of (spec.seed, k), with no
  // parent generator shared between runs. This is what makes the parallel
  // scheduler's results independent of thread count and execution order.
  stats::Rng run_rng = stats::Rng::from_stream(
      spec.seed, static_cast<std::uint64_t>(run_index) + 1);
  const auto scenario_seed = run_rng.engine()();
  const auto loop_seed = run_rng.engine()();
  const auto attacker_seed = run_rng.engine()();

  stats::Rng scenario_rng(scenario_seed);
  const auto& registry = sim::ScenarioRegistry::global();
  sim::Scenario scenario =
      spec.params ? registry.make(spec.scenario, *spec.params, scenario_rng)
                  : registry.make(spec.scenario, scenario_rng);

  LoopConfig cfg = base_;
  cfg.keep_timeline = false;
  cfg.monitors = spec.monitors;
  ClosedLoop loop(scenario, cfg, loop_seed);
  loop.set_attacker(make_attacker(spec, attacker_seed));
  return loop.run();
}

CampaignResult CampaignRunner::run(const CampaignSpec& spec) const {
  CampaignResult result;
  result.spec = spec;
  result.runs.reserve(static_cast<std::size_t>(spec.runs));
  for (int i = 0; i < spec.runs; ++i) {
    result.runs.push_back(run_one(spec, i));
  }
  return result;
}

CampaignScheduler::CampaignScheduler(const CampaignRunner& runner,
                                     unsigned threads)
    : runner_(runner),
      threads_(threads == 0 ? ThreadPool::default_threads() : threads) {}

std::vector<GridCell> grid_cells(const std::vector<CampaignSpec>& specs) {
  std::vector<GridCell> cells;
  for (std::size_t s = 0; s < specs.size(); ++s) {
    for (int i = 0; i < specs[s].runs; ++i) cells.push_back({s, i});
  }
  return cells;
}

void run_cells(const CampaignRunner& runner,
               const std::vector<CampaignSpec>& specs,
               const std::vector<GridCell>& cells,
               const std::vector<std::size_t>& indices,
               const std::function<void(std::size_t cell_index,
                                        const RunResult& run)>& sink) {
  for (const std::size_t ci : indices) {
    const GridCell& cell = cells.at(ci);
    sink(ci, runner.run_one(specs.at(cell.spec), cell.run));
  }
}

void run_cell_range(const CampaignRunner& runner,
                    const std::vector<CampaignSpec>& specs,
                    const std::vector<GridCell>& cells, std::size_t begin,
                    std::size_t end,
                    const std::function<void(std::size_t cell_index,
                                             const RunResult& run)>& sink) {
  std::vector<std::size_t> indices;
  indices.reserve(end > begin ? end - begin : 0);
  for (std::size_t i = begin; i < end && i < cells.size(); ++i) {
    indices.push_back(i);
  }
  run_cells(runner, specs, cells, indices, sink);
}

std::vector<CampaignResult> CampaignScheduler::run_all(
    const std::vector<CampaignSpec>& specs,
    const CampaignProgressFn& on_progress) const {
  std::vector<CampaignResult> results(specs.size());
  for (std::size_t s = 0; s < specs.size(); ++s) {
    results[s].spec = specs[s];
    results[s].runs.resize(
        static_cast<std::size_t>(std::max(0, specs[s].runs)));
  }
  const std::vector<GridCell> cells = grid_cells(specs);

  std::vector<int> done(specs.size(), 0);
  std::mutex progress_mutex;
  ThreadPool pool(threads_);
  pool.parallel_for(static_cast<int>(cells.size()), [&](int c) {
    const GridCell cell = cells[static_cast<std::size_t>(c)];
    results[cell.spec].runs[static_cast<std::size_t>(cell.run)] =
        runner_.run_one(specs[cell.spec], cell.run);
    if (on_progress) {
      std::lock_guard<std::mutex> lock(progress_mutex);
      on_progress(cell.spec, ++done[cell.spec], specs[cell.spec].runs);
    }
  });
  return results;
}

CampaignResult CampaignScheduler::run(const CampaignSpec& spec) const {
  return run_all({spec}).front();
}

std::vector<CampaignSpec> table2_campaigns(int runs_per,
                                           std::uint64_t seed) {
  using core::AttackVector;
  return CampaignGridBuilder()
      .runs(runs_per)
      .seed(seed)
      .vectors({AttackVector::kDisappear, AttackVector::kMoveOut})
      .scenarios({"DS-1", "DS-2"})
      .add_grid()
      .vectors({AttackVector::kMoveIn})
      .scenarios({"DS-3", "DS-4"})
      .add_grid()
      .modes({AttackMode::kRandomBaseline})
      .vectors({AttackVector::kMoveOut})
      .scenarios({"DS-5"})
      .build();
}

std::vector<CampaignSpec> no_sh_campaigns(int runs_per, std::uint64_t seed) {
  using core::AttackVector;
  return CampaignGridBuilder()
      .runs(runs_per)
      .seed(seed)
      .modes({AttackMode::kNoSh})
      .vectors({AttackVector::kDisappear, AttackVector::kMoveOut})
      .scenarios({"DS-1", "DS-2"})
      .add_grid()
      .vectors({AttackVector::kMoveIn})
      .scenarios({"DS-3", "DS-4"})
      .build();
}

}  // namespace rt::experiments
