#pragma once

#include <string>
#include <utility>
#include <vector>

#include "experiments/campaign.hpp"

namespace rt::experiments {

/// Fluent builder for campaign grids: the cross product of scenario keys ×
/// attack vectors × modes × monitors × parameter sweeps, with per-spec
/// seeds derived
/// from a base seed exactly as the historical hand-rolled tables did
/// (`seed + spec_index * 1000`).
///
///   auto specs = CampaignGridBuilder()
///                    .runs(60).seed(20200613)
///                    .scenarios({"DS-1", "cut-in"})
///                    .vectors({core::AttackVector::kMoveOut})
///                    .sweep("target_speed_kph", {20.0, 25.0, 30.0})
///                    .build();
///
/// `add_grid()` flushes the current axes into the spec list and lets the
/// next axis calls define a further block (seeds keep counting across
/// blocks), so heterogeneous tables like Table II are a chain of small
/// grids. `build()` flushes any pending block and returns everything.
///
/// Names follow the established convention: "<scenario>-<vector>-R",
/// "...-RwoSH", "<scenario>-Golden", "<scenario>-Baseline-Random", with
/// "-<param>=<value>" appended per sweep axis.
class CampaignGridBuilder {
 public:
  CampaignGridBuilder& scenarios(std::vector<std::string> keys);
  CampaignGridBuilder& vectors(std::vector<core::AttackVector> vectors);
  CampaignGridBuilder& modes(std::vector<AttackMode> modes);
  /// Monitor axis: one spec per key, each deploying that single runtime
  /// attack monitor, named "...-<monitor>". The empty string "" is the
  /// undefended cell (no suffix — the historical naming). Non-empty keys
  /// are validated eagerly against defense::MonitorRegistry::global().
  /// All monitor variants of one campaign cell share the cell's seed —
  /// monitors are passive, so their runs are driving-wise bit-identical
  /// and detection rates compare the exact same attacks. Default: one
  /// undefended cell, so existing grids are unchanged.
  CampaignGridBuilder& monitors(std::vector<std::string> keys);
  CampaignGridBuilder& runs(int n);
  CampaignGridBuilder& seed(std::uint64_t s);
  /// Base parameter overrides for the block; sweeps are applied on top.
  /// Without this (and without sweeps) specs use the family defaults.
  CampaignGridBuilder& params(sim::ScenarioParams base);
  /// Adds a sweep axis over a named ScenarioParams field (see
  /// sim::scenario_param_names). Multiple sweeps form a cross product.
  CampaignGridBuilder& sweep(std::string param, std::vector<double> values);

  /// Flushes the current axes as one grid block and starts the next.
  CampaignGridBuilder& add_grid();

  /// Flushes any pending block and returns all specs built so far.
  [[nodiscard]] std::vector<CampaignSpec> build();

 private:
  void flush();

  std::vector<std::string> scenarios_;
  std::vector<core::AttackVector> vectors_{core::AttackVector::kMoveOut};
  std::vector<AttackMode> modes_{AttackMode::kRobotack};
  std::vector<std::string> monitors_{std::string{}};
  int runs_{60};
  std::uint64_t seed_{1234};
  std::optional<sim::ScenarioParams> base_params_{};
  std::vector<std::pair<std::string, std::vector<double>>> sweeps_;
  bool dirty_{false};
  /// Campaign cells seeded so far (monitor variants share one cell seed;
  /// equals specs_.size() for the default single-variant monitor axis).
  std::size_t seeded_cells_{0};
  std::vector<CampaignSpec> specs_;
};

}  // namespace rt::experiments
