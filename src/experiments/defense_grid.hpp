#pragma once

#include <string>
#include <vector>

#include "experiments/campaign.hpp"

namespace rt::experiments {

/// Configuration of the attack-vs-defense evaluation grid: every cell is a
/// <scenario family, natural vector, attack mode, monitor> campaign.
struct DefenseGridConfig {
  /// Scenario families (registry keys). Empty = every registered family.
  std::vector<std::string> scenarios{};
  /// Monitors (defense registry keys; "" = the undefended cell). Empty =
  /// every registered monitor.
  std::vector<std::string> monitors{};
  /// Attack conditions per cell. Golden rows measure the false-positive
  /// rate on no-attack baselines; R rows need trained oracles.
  std::vector<AttackMode> modes{AttackMode::kRobotack, AttackMode::kNoSh,
                                AttackMode::kGolden};
  int runs{8};
  std::uint64_t seed{20200613};
  /// 0 = one thread per core. Results are thread-count-invariant.
  unsigned threads{0};
  /// Optional campaign-batch executor (e.g. a cached / multi-process
  /// rt::service::CampaignService). Unset = the in-process scheduler with
  /// `threads` threads. Any conforming executor yields identical grids.
  GridExecutor executor{};
};

/// One aggregated cell of the matrix.
struct DefenseCell {
  std::string campaign;  ///< full spec name
  std::string scenario;
  std::string vector_name;
  std::string mode;
  std::string monitor;  ///< "" for the undefended cell
  int n{0};
  int triggered{0};
  int detected{0};
  int false_alarms{0};
  double detection_rate{0.0};
  double false_alarm_rate{0.0};
  /// Median launch-to-first-alert latency (camera frames); -1 = none.
  double median_frames_to_detection{-1.0};
  double eb_rate{0.0};
  double crash_rate{0.0};
};

/// The full grid, in campaign-spec order (scenario-major, then mode,
/// then monitor).
struct DefenseGrid {
  std::vector<DefenseCell> cells;

  /// Stable CSV schema (matches `csv_rows` column for column).
  [[nodiscard]] static std::vector<std::string> csv_header();
  [[nodiscard]] std::vector<std::vector<std::string>> csv_rows() const;
};

/// Builds and runs the attack-vs-defense matrix on the parallel campaign
/// engine: for every scenario family its natural attack vector (from the
/// victim-geometry metadata, see transfer_vector_for) is crossed with the
/// configured modes and monitors. Deterministic for a fixed config at any
/// thread count — monitors consume no randomness and every run's streams
/// are counter-based.
[[nodiscard]] DefenseGrid run_defense_grid(const DefenseGridConfig& cfg,
                                           const LoopConfig& base,
                                           const OracleSet& oracles);

}  // namespace rt::experiments
