#pragma once

#include <vector>

#include "perception/camera_model.hpp"
#include "perception/noise_model.hpp"
#include "stats/fit.hpp"

namespace rt::experiments {

/// Configuration of the detector characterization drive (§VI-A: "we
/// generated a sequence of images and labels by manually driving the
/// vehicle ... for 10 minutes in simulation").
struct CharacterizationConfig {
  double duration_s{600.0};
  double camera_hz{15.0};
  std::uint64_t seed{20200613};
  /// IoU below this (or a missing detection) counts as a misdetection.
  double iou_threshold{0.6};
};

/// Fig. 5 artefacts for one object class.
struct ClassCharacterization {
  stats::NormalFit fit_x;           ///< normalized center error, image x
  stats::NormalFit fit_y;           ///< normalized center error, image y
  stats::ExponentialFit streak_fit; ///< misdetection streak length (loc 1)
  std::vector<double> deltas_x;
  std::vector<double> deltas_y;
  std::vector<double> streaks;
  std::size_t object_frames{0};
  std::size_t misdetections{0};

  [[nodiscard]] double misdetection_rate() const {
    return object_frames > 0 ? static_cast<double>(misdetections) /
                                   static_cast<double>(object_frames)
                             : 0.0;
  }
};

/// Full Fig. 5 characterization: per-class fits + raw samples.
struct CharacterizationResult {
  ClassCharacterization vehicle;
  ClassCharacterization pedestrian;

  [[nodiscard]] const ClassCharacterization& for_class(
      sim::ActorType t) const {
    return t == sim::ActorType::kVehicle ? vehicle : pedestrian;
  }
};

/// Runs the characterization drive against the detector model and fits the
/// paper's distributions. The drive places vehicles and pedestrians at a
/// spread of ranges in the camera frustum and records, per object-frame,
/// whether the detection counts as a misdetection (absent or IoU < 0.6)
/// and, if matched, the size-normalized bbox-center error.
[[nodiscard]] CharacterizationResult characterize_detector(
    const CharacterizationConfig& config,
    const perception::CameraModel& camera,
    const perception::DetectorNoiseModel& noise);

}  // namespace rt::experiments
