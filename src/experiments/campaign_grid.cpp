#include "experiments/campaign_grid.hpp"

#include <cstdio>
#include <stdexcept>

#include "defense/monitor_registry.hpp"

namespace rt::experiments {

namespace {

std::string fmt_value(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::string spec_name(const std::string& scenario, core::AttackVector v,
                      AttackMode m) {
  switch (m) {
    case AttackMode::kGolden:
      return scenario + "-Golden";
    case AttackMode::kRandomBaseline:
      return scenario + "-Baseline-Random";
    case AttackMode::kRobotack:
      return scenario + "-" + core::to_string(v) + "-R";
    case AttackMode::kNoSh:
      return scenario + "-" + core::to_string(v) + "-RwoSH";
  }
  return scenario;
}

}  // namespace

CampaignGridBuilder& CampaignGridBuilder::scenarios(
    std::vector<std::string> keys) {
  scenarios_ = std::move(keys);
  dirty_ = true;
  return *this;
}

CampaignGridBuilder& CampaignGridBuilder::vectors(
    std::vector<core::AttackVector> vectors) {
  vectors_ = std::move(vectors);
  dirty_ = true;
  return *this;
}

CampaignGridBuilder& CampaignGridBuilder::modes(std::vector<AttackMode> modes) {
  modes_ = std::move(modes);
  dirty_ = true;
  return *this;
}

CampaignGridBuilder& CampaignGridBuilder::monitors(
    std::vector<std::string> keys) {
  if (keys.empty()) {
    throw std::invalid_argument("CampaignGridBuilder: empty monitor axis");
  }
  // Validate eagerly so a typo fails at grid-definition time ("" is the
  // undefended cell and always valid).
  for (const auto& key : keys) {
    if (!key.empty()) (void)defense::MonitorRegistry::global().get(key);
  }
  monitors_ = std::move(keys);
  dirty_ = true;
  return *this;
}

CampaignGridBuilder& CampaignGridBuilder::runs(int n) {
  runs_ = n;
  return *this;
}

CampaignGridBuilder& CampaignGridBuilder::seed(std::uint64_t s) {
  seed_ = s;
  return *this;
}

CampaignGridBuilder& CampaignGridBuilder::params(sim::ScenarioParams base) {
  base_params_ = base;
  dirty_ = true;
  return *this;
}

CampaignGridBuilder& CampaignGridBuilder::sweep(std::string param,
                                                std::vector<double> values) {
  if (values.empty()) {
    throw std::invalid_argument("CampaignGridBuilder: empty sweep for '" +
                                param + "'");
  }
  // Validate the name eagerly so a typo fails at grid-definition time, not
  // mid-campaign.
  sim::ScenarioParams probe;
  sim::set_scenario_param(probe, param, values.front());
  sweeps_.emplace_back(std::move(param), std::move(values));
  dirty_ = true;
  return *this;
}

void CampaignGridBuilder::flush() {
  if (scenarios_.empty()) {
    throw std::invalid_argument(
        "CampaignGridBuilder: no scenarios in the current grid block");
  }
  if (vectors_.empty() || modes_.empty()) {
    throw std::invalid_argument(
        "CampaignGridBuilder: empty vector or mode axis");
  }
  const auto& registry = sim::ScenarioRegistry::global();
  for (const AttackMode mode : modes_) {
    // Golden runs have no attacker and Baseline-Random randomizes its own
    // vector, so the vector axis collapses for them — otherwise a
    // multi-vector grid would emit duplicate-named, redundant campaigns.
    const bool vector_matters =
        mode == AttackMode::kRobotack || mode == AttackMode::kNoSh;
    const std::vector<core::AttackVector> mode_vectors =
        vector_matters ? vectors_
                       : std::vector<core::AttackVector>{vectors_.front()};
    for (const core::AttackVector vector : mode_vectors) {
      for (const std::string& scenario : scenarios_) {
        (void)registry.get(scenario);  // unknown keys fail at build time
        // Cross product over the sweep axes (one pass with no axes).
        std::vector<std::size_t> idx(sweeps_.size(), 0);
        while (true) {
          // Every monitor variant of one campaign cell shares the cell's
          // seed: their runs are bit-identical driving-wise and differ only
          // in what the monitor stack observed, so detection rates across
          // monitors (and the undefended control) compare the exact same
          // attacks. With the default single undefended variant this
          // reduces to the historical seed-per-spec convention.
          const std::uint64_t cell_seed = seed_ + seeded_cells_ * 1000;
          ++seeded_cells_;
          for (const std::string& monitor : monitors_) {
            CampaignSpec spec;
            spec.name = spec_name(scenario, vector, mode);
            spec.scenario = scenario;
            spec.vector = vector;
            spec.mode = mode;
            spec.runs = runs_;
            spec.seed = cell_seed;
            if (!monitor.empty()) {
              spec.monitors = {monitor};
              spec.name += "-" + monitor;
            }
            if (base_params_ || !sweeps_.empty()) {
              sim::ScenarioParams p =
                  base_params_ ? *base_params_ : registry.defaults(scenario);
              for (std::size_t a = 0; a < sweeps_.size(); ++a) {
                const double value = sweeps_[a].second[idx[a]];
                sim::set_scenario_param(p, sweeps_[a].first, value);
                spec.name += "-" + sweeps_[a].first + "=" + fmt_value(value);
              }
              spec.params = p;
            }
            specs_.push_back(std::move(spec));
          }
          // Advance the sweep odometer (innermost axis fastest).
          bool wrapped = sweeps_.empty();
          for (std::size_t a = sweeps_.size(); !wrapped && a > 0;) {
            --a;
            if (++idx[a] < sweeps_[a].second.size()) break;
            idx[a] = 0;
            wrapped = a == 0;
          }
          if (wrapped) break;
        }
      }
    }
  }
  // Block-local state resets; scenario/vector/mode axes and runs/seed
  // persist so chained blocks only restate what changes.
  sweeps_.clear();
  base_params_.reset();
  dirty_ = false;
}

CampaignGridBuilder& CampaignGridBuilder::add_grid() {
  flush();
  return *this;
}

std::vector<CampaignSpec> CampaignGridBuilder::build() {
  if (dirty_ || specs_.empty()) flush();  // empty build throws in flush()
  return std::move(specs_);
}

}  // namespace rt::experiments
