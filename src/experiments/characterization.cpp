#include "experiments/characterization.hpp"

#include <cmath>
#include <unordered_map>

#include "perception/detector_model.hpp"
#include "sim/road.hpp"
#include "sim/world.hpp"

namespace rt::experiments {

namespace {

/// The characterization "drive": a static ego observing a population of
/// vehicles and pedestrians spread over ranges and lateral offsets (the
/// statistics of interest — center-error and miss streaks — depend on the
/// detector, not on ego motion).
std::vector<sim::Actor> characterization_actors() {
  using sim::Actor;
  using sim::ActorType;
  std::vector<Actor> actors;
  sim::ActorId id = 1;
  // Vehicles at a spread of ranges, ego lane and adjacent lane.
  for (const double x : {15.0, 25.0, 40.0, 60.0, 90.0}) {
    actors.emplace_back(id++, ActorType::kVehicle,
                        math::Vec2{x, (id % 2 == 0)
                                          ? sim::Road::kEgoLaneCenter
                                          : sim::Road::kAdjacentLaneCenter});
  }
  // Pedestrians on the curb and in the parking lane.
  for (const double x : {12.0, 20.0, 30.0, 45.0, 65.0}) {
    actors.emplace_back(id++, ActorType::kPedestrian,
                        math::Vec2{x, (id % 2 == 0) ? -5.0 : -3.0});
  }
  return actors;
}

void finish_streak(ClassCharacterization& c, int& streak) {
  if (streak > 0) {
    c.streaks.push_back(static_cast<double>(streak));
    streak = 0;
  }
}

}  // namespace

CharacterizationResult characterize_detector(
    const CharacterizationConfig& config,
    const perception::CameraModel& camera,
    const perception::DetectorNoiseModel& noise) {
  const double dt = 1.0 / config.camera_hz;
  sim::World world(sim::EgoVehicle(0.0, 0.0), characterization_actors());
  perception::DetectorModel detector(camera, noise,
                                     stats::Rng(config.seed));

  CharacterizationResult result;
  std::unordered_map<sim::ActorId, int> active_streak;

  const int frames = static_cast<int>(config.duration_s * config.camera_hz);
  for (int f = 0; f < frames; ++f) {
    const auto gt = world.ground_truth();
    const auto frame = detector.detect(gt, f * dt);

    for (const auto& obj : gt) {
      const auto truth_box = camera.project(obj);
      if (!truth_box) continue;
      ClassCharacterization& c = obj.type == sim::ActorType::kVehicle
                                     ? result.vehicle
                                     : result.pedestrian;
      ++c.object_frames;

      const perception::Detection* match = nullptr;
      for (const auto& d : frame.detections) {
        if (d.truth_id == obj.id) {
          match = &d;
          break;
        }
      }
      const bool misdetected =
          match == nullptr ||
          math::iou(match->bbox, *truth_box) < config.iou_threshold;
      int& streak = active_streak[obj.id];
      if (misdetected) {
        ++c.misdetections;
        ++streak;
      } else {
        finish_streak(c, streak);
      }
      if (match != nullptr) {
        // Only boxes overlapping the ground truth enter the center-error
        // population (§VI-A).
        if (math::iou(match->bbox, *truth_box) > 0.0) {
          c.deltas_x.push_back((match->bbox.cx - truth_box->cx) /
                               truth_box->w);
          c.deltas_y.push_back((match->bbox.cy - truth_box->cy) /
                               truth_box->h);
        }
      }
    }
  }
  // Close any streaks still open at the end of the drive.
  for (auto& [id, streak] : active_streak) {
    const auto obj = world.ground_truth_for(id);
    if (!obj) continue;
    ClassCharacterization& c = obj->type == sim::ActorType::kVehicle
                                   ? result.vehicle
                                   : result.pedestrian;
    finish_streak(c, streak);
  }

  for (ClassCharacterization* c : {&result.vehicle, &result.pedestrian}) {
    c->fit_x = stats::fit_normal(c->deltas_x);
    c->fit_y = stats::fit_normal(c->deltas_y);
    c->streak_fit = stats::fit_exponential(c->streaks, /*loc=*/1.0);
  }
  return result;
}

}  // namespace rt::experiments
