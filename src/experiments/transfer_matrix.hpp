#pragma once

#include <string>
#include <vector>

#include "experiments/campaign.hpp"
#include "experiments/sh_training.hpp"

namespace rt::experiments {

/// One training cell of the transfer matrix: a named scenario curriculum.
struct TransferTrainSet {
  std::string name;                   ///< row label (default: the family)
  std::vector<std::string> families;  ///< ScenarioRegistry keys
};

/// Configuration of a train-on-X / eval-on-Y oracle transfer study.
struct TransferConfig {
  /// Row cells. Empty = one single-family train set per eval family.
  std::vector<TransferTrainSet> train_sets{};
  /// Column families. Empty = every family in the global registry.
  std::vector<std::string> eval_families{};
  /// Launch grid + nn hyper-parameters shared by every cell (`curricula`
  /// and `threads` are managed per cell by the harness).
  ShTrainingConfig sh{};
  /// Fraction of each family's launches held out for evaluation (the
  /// remainder trains the oracles of the train sets containing the family).
  double holdout_fraction{0.4};
  /// |predicted - ground-truth| <= tolerance counts as accurate (§IV-B:
  /// ~5 m for vehicles, ~1.5 m for pedestrians).
  double tolerance_m{5.0};
  /// Closed-loop R-mode runs per (train set, eval family) cell with the
  /// trained oracle deployed through the CampaignScheduler (0 disables the
  /// behavioral columns).
  int campaign_runs{8};
  /// 0 = one thread per core. Results are thread-count-invariant.
  unsigned threads{0};
};

/// One (train set, eval family) cell of the matrix.
struct TransferCell {
  std::string train_set;
  std::string eval_family;
  // Predictive transfer over the family's held-out launches.
  int n_eval{0};          ///< held-out launches scored
  double accuracy{0.0};   ///< fraction within tolerance_m
  double mae_m{0.0};      ///< mean |predicted - ground-truth| delta (m)
  double ttc_err_s{0.0};  ///< mae divided by the launch closing speed (s)
  // Behavioral transfer: the oracle deployed in full R mode on the family.
  int campaign_n{0};
  double triggered_rate{0.0};
  double eb_rate{0.0};
  double crash_rate{0.0};
};

/// Full matrix, row-major over (train_sets × eval_families).
struct TransferMatrix {
  std::vector<std::string> train_sets;
  std::vector<std::string> eval_families;
  std::vector<TransferCell> cells;

  /// Throws std::out_of_range when either label is unknown.
  [[nodiscard]] const TransferCell& at(const std::string& train_set,
                                       const std::string& eval_family) const;

  /// Stable CSV schema (matches `csv_rows` column for column).
  [[nodiscard]] static std::vector<std::string> csv_header();
  [[nodiscard]] std::vector<std::vector<std::string>> csv_rows() const;
};

/// The attack vector a family's launches are scripted (and its campaigns
/// attacked) with, read from the family's `sim::ScenarioSpec` victim-
/// geometry metadata: out-of-corridor victims (DS-3/DS-4's parking-lane
/// "keep" geometries, per Table I) take Move_In, in-corridor victims take
/// Move_Out. User-registered families resolve automatically at
/// registration — no key string-matching.
[[nodiscard]] core::AttackVector transfer_vector_for(
    const std::string& family);

/// Trains one oracle per train set (on the train split of each member
/// family's launch grid), scores every oracle on the held-out split of
/// every eval family, and — when `campaign_runs > 0` — deploys each oracle
/// in closed-loop R-mode campaigns on every eval family through the
/// CampaignScheduler. Deterministic for a fixed config at any thread count.
[[nodiscard]] TransferMatrix run_transfer_matrix(const TransferConfig& cfg,
                                                 const LoopConfig& loop);

}  // namespace rt::experiments
