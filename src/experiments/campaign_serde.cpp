#include "experiments/campaign_serde.hpp"

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "sim/scenario_registry.hpp"

namespace rt::experiments {

namespace {

// ----------------------------------------------------------------- Writer

class Writer {
 public:
  void tag(std::string_view t) {
    out_.append(t);
    out_ += '\n';
  }
  void u64(std::uint64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRIu64, v);
    out_ += buf;
    out_ += '\n';
  }
  void i64(std::int64_t v) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%" PRId64, v);
    out_ += buf;
    out_ += '\n';
  }
  void b(bool v) { out_ += v ? "1\n" : "0\n"; }
  void d(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    char buf[24];
    std::snprintf(buf, sizeof buf, "d%016" PRIx64, bits);
    out_ += buf;
    out_ += '\n';
  }
  void str(std::string_view s) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%zu:", s.size());
    out_ += buf;
    out_.append(s);
    out_ += '\n';
  }
  [[nodiscard]] std::string take() { return std::move(out_); }

 private:
  std::string out_;
};

// ----------------------------------------------------------------- Reader

class Reader {
 public:
  explicit Reader(std::string_view text) : text_(text) {}

  void expect(std::string_view tag) {
    const std::string_view got = token();
    if (got != tag) {
      fail("expected '" + std::string(tag) + "', got '" + std::string(got) +
           "'");
    }
  }

  std::uint64_t u64() {
    const std::string t(token());
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(t.c_str(), &end, 10);
    if (t.empty() || *end != '\0' || errno != 0 || t.front() == '-') {
      fail("expected unsigned integer, got '" + t + "'");
    }
    return v;
  }

  std::int64_t i64() {
    const std::string t(token());
    char* end = nullptr;
    errno = 0;
    const long long v = std::strtoll(t.c_str(), &end, 10);
    if (t.empty() || *end != '\0' || errno != 0) {
      fail("expected integer, got '" + t + "'");
    }
    return v;
  }

  int i32() {
    const std::int64_t v = i64();
    if (v < INT32_MIN || v > INT32_MAX) fail("integer out of 32-bit range");
    return static_cast<int>(v);
  }

  bool b() {
    const std::string_view t = token();
    if (t == "1") return true;
    if (t == "0") return false;
    fail("expected bool 0/1, got '" + std::string(t) + "'");
  }

  double d() {
    const std::string_view t = token();
    if (t.size() != 17 || t.front() != 'd') {
      fail("expected double d<16 hex>, got '" + std::string(t) + "'");
    }
    std::uint64_t bits = 0;
    for (std::size_t i = 1; i < t.size(); ++i) {
      const char c = t[i];
      int nibble = 0;
      if (c >= '0' && c <= '9') {
        nibble = c - '0';
      } else if (c >= 'a' && c <= 'f') {
        nibble = c - 'a' + 10;
      } else {
        fail("bad hex digit in double token '" + std::string(t) + "'");
      }
      bits = (bits << 4) | static_cast<std::uint64_t>(nibble);
    }
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  std::string str() {
    skip_ws();
    std::size_t len = 0;
    bool any_digit = false;
    while (pos_ < text_.size() && std::isdigit(
               static_cast<unsigned char>(text_[pos_]))) {
      len = len * 10 + static_cast<std::size_t>(text_[pos_] - '0');
      if (len > text_.size()) fail("netstring length overflows input");
      ++pos_;
      any_digit = true;
    }
    if (!any_digit) fail("expected netstring <len>:<bytes>");
    if (pos_ >= text_.size() || text_[pos_] != ':') {
      fail("netstring missing ':' after length");
    }
    ++pos_;
    if (text_.size() - pos_ < len) fail("truncated netstring payload");
    std::string out(text_.substr(pos_, len));
    pos_ += len;
    return out;
  }

  /// Succeeds only when nothing follows the 'end' sentinel and the payload
  /// keeps its final newline — so EVERY strict prefix of a serialization
  /// is invalid, including the one that only drops the terminator (and so
  /// is any whitespace-padded copy: payloads are canonical bytes).
  void done() {
    if (pos_ != text_.size() - 1 || text_.empty() || text_.back() != '\n') {
      fail("payload truncated or trailing garbage after 'end'");
    }
    ++pos_;
  }

  [[noreturn]] void fail(const std::string& what) {
    throw SerdeError("campaign serde: " + what + " (at byte " +
                     std::to_string(pos_) + " of " +
                     std::to_string(text_.size()) + ")");
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::string_view token() {
    skip_ws();
    if (pos_ >= text_.size()) fail("truncated input");
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           !std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  std::string_view text_;
  std::size_t pos_{0};
};

// ------------------------------------------------------------ spec body

void write_spec_body(Writer& w, const CampaignSpec& s) {
  w.tag("spec");
  w.str(s.name);
  w.str(s.scenario);
  w.u64(static_cast<std::uint64_t>(s.vector));
  w.u64(static_cast<std::uint64_t>(s.mode));
  w.i64(s.runs);
  w.u64(s.seed);
  w.b(s.params.has_value());
  if (s.params) {
    // Self-describing name/value pairs via the registry's named-parameter
    // table: a reader from a build whose ScenarioParams lost a field fails
    // loudly on the unknown name instead of shifting every later field.
    const auto names = sim::scenario_param_names();
    w.u64(names.size());
    for (const auto& name : names) {
      w.str(name);
      w.d(sim::get_scenario_param(*s.params, name));
    }
  }
  w.u64(s.monitors.size());
  for (const auto& m : s.monitors) w.str(m);
}

CampaignSpec read_spec_body(Reader& r) {
  r.expect("spec");
  CampaignSpec s;
  s.name = r.str();
  s.scenario = r.str();
  const std::uint64_t vec = r.u64();
  if (vec > 2) r.fail("attack vector out of range");
  s.vector = static_cast<core::AttackVector>(vec);
  const std::uint64_t mode = r.u64();
  if (mode > 3) r.fail("attack mode out of range");
  s.mode = static_cast<AttackMode>(mode);
  s.runs = r.i32();
  s.seed = r.u64();
  if (r.b()) {
    sim::ScenarioParams p;
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::string name = r.str();
      const double value = r.d();
      try {
        sim::set_scenario_param(p, name, value);
      } catch (const std::invalid_argument& e) {
        r.fail(std::string("unknown scenario param: ") + e.what());
      }
    }
    s.params = p;
  }
  const std::uint64_t nm = r.u64();
  if (nm > 1024) r.fail("implausible monitor count");
  s.monitors.clear();
  for (std::uint64_t i = 0; i < nm; ++i) s.monitors.push_back(r.str());
  return s;
}

// ------------------------------------------------------------- run body

void write_run_body(Writer& w, const RunResult& run) {
  w.tag("run");
  w.b(run.eb);
  w.i64(run.eb_episodes);
  w.b(run.crash);
  w.b(run.collision);
  w.d(run.min_delta);
  w.d(run.min_delta_since_attack);
  w.d(run.end_time);
  w.b(run.halted_early);

  w.tag("attack");
  const core::AttackLog& a = run.attack;
  w.b(a.triggered);
  w.i64(a.triggers);
  w.u64(static_cast<std::uint64_t>(a.vector));
  w.d(a.start_time);
  w.d(a.delta_at_launch);
  w.d(a.v_rel_at_launch.x);
  w.d(a.v_rel_at_launch.y);
  w.d(a.a_rel_at_launch.x);
  w.d(a.a_rel_at_launch.y);
  w.d(a.predicted_delta);
  w.i64(a.planned_k);
  w.i64(a.frames_perturbed);
  w.i64(a.k_prime);
  w.d(a.omega_target);
  w.u64(static_cast<std::uint64_t>(a.victim_cls));
  w.i64(a.victim_truth_id);

  w.tag("ids");
  w.b(run.ids_flagged);
  w.str(run.ids_reason);

  w.tag("defense");
  const defense::DefenseReport& def = run.defense;
  w.b(def.flagged);
  w.d(def.first_alert_time);
  w.str(def.first_monitor);
  w.u64(def.monitors.size());
  for (const defense::MonitorOutcome& m : def.monitors) {
    w.str(m.monitor);
    w.b(m.fired);
    w.d(m.first_alert_time);
    w.i64(m.alarms);
    w.str(m.reason);
  }
  w.b(def.detected);
  w.i64(def.frames_to_detection);
  w.str(def.detected_by);

  w.tag("timeline");
  w.u64(run.timeline.size());
  for (const safety::SafetySample& t : run.timeline) {
    w.d(t.time);
    w.d(t.delta);
    w.d(t.d_safe);
    w.d(t.target_delta);
    w.d(t.ego_speed);
    w.b(t.eb_active);
    w.b(t.attack_active);
  }
}

RunResult read_run_body(Reader& r) {
  r.expect("run");
  RunResult run;
  run.eb = r.b();
  run.eb_episodes = r.i32();
  run.crash = r.b();
  run.collision = r.b();
  run.min_delta = r.d();
  run.min_delta_since_attack = r.d();
  run.end_time = r.d();
  run.halted_early = r.b();

  r.expect("attack");
  core::AttackLog& a = run.attack;
  a.triggered = r.b();
  a.triggers = r.i32();
  const std::uint64_t vec = r.u64();
  if (vec > 2) r.fail("attack vector out of range");
  a.vector = static_cast<core::AttackVector>(vec);
  a.start_time = r.d();
  a.delta_at_launch = r.d();
  a.v_rel_at_launch.x = r.d();
  a.v_rel_at_launch.y = r.d();
  a.a_rel_at_launch.x = r.d();
  a.a_rel_at_launch.y = r.d();
  a.predicted_delta = r.d();
  a.planned_k = r.i32();
  a.frames_perturbed = r.i32();
  a.k_prime = r.i32();
  a.omega_target = r.d();
  const std::uint64_t cls = r.u64();
  if (cls > 1) r.fail("victim class out of range");
  a.victim_cls = static_cast<sim::ActorType>(cls);
  a.victim_truth_id = r.i32();

  r.expect("ids");
  run.ids_flagged = r.b();
  run.ids_reason = r.str();

  r.expect("defense");
  defense::DefenseReport& def = run.defense;
  def.flagged = r.b();
  def.first_alert_time = r.d();
  def.first_monitor = r.str();
  const std::uint64_t nm = r.u64();
  if (nm > 1024) r.fail("implausible monitor count");
  for (std::uint64_t i = 0; i < nm; ++i) {
    defense::MonitorOutcome m;
    m.monitor = r.str();
    m.fired = r.b();
    m.first_alert_time = r.d();
    m.alarms = r.i32();
    m.reason = r.str();
    def.monitors.push_back(std::move(m));
  }
  def.detected = r.b();
  def.frames_to_detection = r.i32();
  def.detected_by = r.str();

  r.expect("timeline");
  const std::uint64_t nt = r.u64();
  if (nt > (1ull << 24)) r.fail("implausible timeline length");
  run.timeline.reserve(nt);
  for (std::uint64_t i = 0; i < nt; ++i) {
    safety::SafetySample t;
    t.time = r.d();
    t.delta = r.d();
    t.d_safe = r.d();
    t.target_delta = r.d();
    t.ego_speed = r.d();
    t.eb_active = r.b();
    t.attack_active = r.b();
    run.timeline.push_back(t);
  }
  return run;
}

void write_header(Writer& w, std::string_view magic) {
  w.tag(magic);
  w.u64(kCampaignSerdeVersion);
}

void read_header(Reader& r, std::string_view magic) {
  r.expect(magic);
  const std::uint64_t version = r.u64();
  if (version != kCampaignSerdeVersion) {
    r.fail("unsupported " + std::string(magic) + " version " +
           std::to_string(version) + " (this build reads " +
           std::to_string(kCampaignSerdeVersion) + ")");
  }
}

}  // namespace

std::string serialize_spec(const CampaignSpec& spec) {
  Writer w;
  write_header(w, "RTSPEC");
  write_spec_body(w, spec);
  w.tag("end");
  return w.take();
}

CampaignSpec deserialize_spec(std::string_view text) {
  Reader r(text);
  read_header(r, "RTSPEC");
  CampaignSpec spec = read_spec_body(r);
  r.expect("end");
  r.done();
  return spec;
}

std::string serialize_run_result(const RunResult& run) {
  Writer w;
  write_header(w, "RTRUN");
  write_run_body(w, run);
  w.tag("end");
  return w.take();
}

RunResult deserialize_run_result(std::string_view text) {
  Reader r(text);
  read_header(r, "RTRUN");
  RunResult run = read_run_body(r);
  r.expect("end");
  r.done();
  return run;
}

std::string serialize_campaign_result(const CampaignResult& result) {
  Writer w;
  write_header(w, "RTCAMPAIGN");
  write_spec_body(w, result.spec);
  w.tag("nruns");
  w.u64(result.runs.size());
  for (const RunResult& run : result.runs) write_run_body(w, run);
  w.tag("end");
  return w.take();
}

CampaignResult deserialize_campaign_result(std::string_view text) {
  Reader r(text);
  read_header(r, "RTCAMPAIGN");
  CampaignResult result;
  result.spec = read_spec_body(r);
  r.expect("nruns");
  const std::uint64_t n = r.u64();
  if (n > (1ull << 24)) r.fail("implausible run count");
  result.runs.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    result.runs.push_back(read_run_body(r));
  }
  r.expect("end");
  r.done();
  return result;
}

}  // namespace rt::experiments
