#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ads/ads_system.hpp"
#include "core/robotack.hpp"
#include "defense/monitor_stack.hpp"
#include "perception/detector_model.hpp"
#include "perception/lidar_model.hpp"
#include "safety/ids.hpp"
#include "safety/safety_monitor.hpp"
#include "sim/scenario.hpp"

namespace rt::experiments {

/// Shared configuration of a closed-loop simulation (the stand-in for the
/// paper's LGSVL + Apollo rig).
struct LoopConfig {
  double camera_hz{15.0};  ///< master control rate (paper: 15 Hz camera)
  double lidar_hz{10.0};
  bool keep_timeline{false};
  bool enable_ids{false};
  /// LGSVL halts the simulation when the EV gets closer than 4 m to an
  /// obstacle; we reproduce that (the run ends, the accident label comes
  /// from the safety monitor).
  double halt_gap{4.0};

  perception::CameraModel camera{};
  perception::DetectorNoiseModel noise{
      perception::DetectorNoiseModel::paper_defaults()};
  perception::MotConfig mot{};
  perception::FusionConfig fusion{};
  perception::LidarConfig lidar{};
  ads::PlannerConfig planner{};
  safety::SafetyModelConfig safety{};
  safety::IdsConfig ids{};

  /// Runtime attack monitors deployed on this run (defense::MonitorRegistry
  /// keys; empty = no defense). Monitors are passive observers, so any
  /// stack leaves the driving outcome bit-identical.
  std::vector<std::string> monitors{};
  defense::MonitorTuning defense{};

  [[nodiscard]] double camera_dt() const { return 1.0 / camera_hz; }
  [[nodiscard]] double lidar_dt() const { return 1.0 / lidar_hz; }

  /// The context the loop hands monitor factories: the perception stack's
  /// own configuration plus the tuning bundle.
  [[nodiscard]] defense::MonitorContext monitor_context() const {
    return {camera_dt(), camera, noise, mot, fusion, lidar, defense};
  }
};

/// Everything one simulation run produced.
struct RunResult {
  bool eb{false};                  ///< any forced emergency braking
  int eb_episodes{0};
  bool crash{false};               ///< paper's accident label (delta < 4 m)
  bool collision{false};           ///< physical footprint overlap
  double min_delta{0.0};
  double min_delta_since_attack{0.0};
  double end_time{0.0};
  bool halted_early{false};
  core::AttackLog attack;
  bool ids_flagged{false};
  std::string ids_reason;
  /// What the deployed monitor stack concluded (empty stack = all-clear).
  defense::DefenseReport defense;
  std::vector<safety::SafetySample> timeline;
};

/// One closed-loop run: ground-truth world + sensor models + (optional)
/// malware on the camera link + the ADS + the ground-truth safety monitor.
class ClosedLoop {
 public:
  /// `seed` derives all per-run randomness (detector noise, LiDAR noise,
  /// attacker draws). The attacker, if any, must have been built with the
  /// same MOT config as `config.mot` (it replicates the ADS tracker).
  ClosedLoop(sim::Scenario scenario, LoopConfig config, std::uint64_t seed);

  /// Installs the malware on the camera link (nullptr = golden run).
  void set_attacker(std::unique_ptr<core::Robotack> attacker);

  /// Runs the scenario to completion (or early halt) and returns the
  /// result. Single-shot: build a new ClosedLoop per run.
  [[nodiscard]] RunResult run();

  [[nodiscard]] const LoopConfig& config() const { return config_; }
  [[nodiscard]] const sim::Scenario& scenario() const { return scenario_; }

 private:
  sim::Scenario scenario_;
  LoopConfig config_;
  std::uint64_t seed_;
  std::unique_ptr<core::Robotack> attacker_;
};

/// Convenience: a RobotackConfig pre-wired for this loop config (dt, MOT
/// replica settings, safety-model constants).
[[nodiscard]] core::RobotackConfig make_attacker_config(
    const LoopConfig& loop, core::AttackVector vector,
    core::TimingPolicy timing);

}  // namespace rt::experiments
