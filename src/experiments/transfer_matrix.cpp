#include "experiments/transfer_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>
#include <utility>

#include "experiments/reporting.hpp"
#include "experiments/thread_pool.hpp"

namespace rt::experiments {

const TransferCell& TransferMatrix::at(const std::string& train_set,
                                       const std::string& eval_family) const {
  for (const auto& cell : cells) {
    if (cell.train_set == train_set && cell.eval_family == eval_family) {
      return cell;
    }
  }
  throw std::out_of_range("TransferMatrix::at: no cell (" + train_set +
                          ", " + eval_family + ")");
}

std::vector<std::string> TransferMatrix::csv_header() {
  return {"train_set", "eval_family", "n_eval",       "accuracy",
          "mae_m",     "ttc_err_s",   "campaign_runs", "triggered",
          "eb_rate",   "crash_rate"};
}

std::vector<std::vector<std::string>> TransferMatrix::csv_rows() const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(cells.size());
  for (const auto& c : cells) {
    rows.push_back({c.train_set, c.eval_family, std::to_string(c.n_eval),
                    fmt(c.accuracy, 3), fmt(c.mae_m, 2), fmt(c.ttc_err_s, 2),
                    std::to_string(c.campaign_n), fmt(c.triggered_rate, 3),
                    fmt(c.eb_rate, 3), fmt(c.crash_rate, 3)});
  }
  return rows;
}

core::AttackVector transfer_vector_for(const std::string& family) {
  // Registry metadata, not key string-matching: user-registered families
  // with out-of-corridor geometry get Move_In rows automatically (the
  // registry resolves `VictimGeometry::kAuto` from the canonical world at
  // registration — DS-3/DS-4 resolve out-of-corridor, every other builtin
  // in-corridor).
  const sim::ScenarioSpec& spec = sim::ScenarioRegistry::global().get(family);
  return spec.victim_geometry == sim::VictimGeometry::kOutOfCorridor
             ? core::AttackVector::kMoveIn
             : core::AttackVector::kMoveOut;
}

TransferMatrix run_transfer_matrix(const TransferConfig& cfg,
                                   const LoopConfig& loop) {
  const auto& registry = sim::ScenarioRegistry::global();

  TransferMatrix out;
  out.eval_families =
      cfg.eval_families.empty() ? registry.keys() : cfg.eval_families;
  std::vector<TransferTrainSet> train_sets = cfg.train_sets;
  if (train_sets.empty()) {
    for (const auto& family : out.eval_families) {
      train_sets.push_back({family, {family}});
    }
  }
  for (const auto& t : train_sets) out.train_sets.push_back(t.name);

  // 1. One launch dataset per involved family, generated with the family's
  //    natural vector and split into train/holdout parts. The split seed is
  //    decorrelated per family via the dataset fingerprint. The per-family
  //    pipelines are independent — each one's randomness is a pure function
  //    of (cfg.sh.seed, family grid) — so they fan out across the pool with
  //    results identical at any thread count; with a parallel outer fan-out
  //    each family's inner launch grid runs serially instead of
  //    oversubscribing the machine.
  std::set<std::string> family_set(out.eval_families.begin(),
                                   out.eval_families.end());
  for (const auto& t : train_sets) {
    family_set.insert(t.families.begin(), t.families.end());
  }
  const std::vector<std::string> families(family_set.begin(),
                                          family_set.end());
  const unsigned total_threads =
      cfg.threads == 0 ? ThreadPool::default_threads() : cfg.threads;
  std::vector<std::pair<nn::Dataset, nn::Dataset>> family_splits(
      families.size());
  {
    const unsigned outer = std::min<unsigned>(
        static_cast<unsigned>(std::max<std::size_t>(1, families.size())),
        total_threads);
    ThreadPool pool(outer);
    pool.parallel_for(static_cast<int>(families.size()), [&](int i) {
      const std::string& family = families[static_cast<std::size_t>(i)];
      const core::AttackVector v = transfer_vector_for(family);
      ShTrainingConfig fam_cfg = cfg.sh;
      fam_cfg.threads = std::max(1u, total_threads / outer);
      fam_cfg.curricula[v] = {family};
      nn::Dataset all = generate_sh_dataset(v, loop, fam_cfg);
      family_splits[static_cast<std::size_t>(i)] = all.split_seeded(
          1.0 - cfg.holdout_fraction,
          cfg.sh.seed ^ sh_dataset_fingerprint(v, fam_cfg));
    });
  }
  std::map<std::string, const std::pair<nn::Dataset, nn::Dataset>*> splits;
  for (std::size_t i = 0; i < families.size(); ++i) {
    splits[families[i]] = &family_splits[i];
  }

  // 2. One oracle per train set, on the concatenated train splits of its
  //    member families. Every oracle starts from the same seeded weights so
  //    rows differ only by curriculum; each training is self-seeded
  //    (Trainer derives its Rng from the config), so the per-train-set
  //    trainings fan out across the pool with thread-count-invariant
  //    weights.
  std::vector<std::shared_ptr<core::SafetyOracle>> oracles(train_sets.size());
  {
    const unsigned outer = std::min<unsigned>(
        static_cast<unsigned>(std::max<std::size_t>(1, train_sets.size())),
        total_threads);
    ThreadPool pool(outer);
    pool.parallel_for(static_cast<int>(train_sets.size()), [&](int ti) {
      const TransferTrainSet& t = train_sets[static_cast<std::size_t>(ti)];
      std::vector<nn::Dataset> parts;
      parts.reserve(t.families.size());
      for (const auto& family : t.families) {
        parts.push_back(splits.at(family)->first);
      }
      const nn::Dataset train_data = nn::Dataset::concat(parts);
      auto oracle = std::make_shared<core::SafetyOracle>(cfg.sh.seed ^ 0xabcd);
      if (train_data.size() > 0) {
        oracle->train(train_data, cfg.sh.train);
        oracle->set_provenance({"transfer", join(t.families, ","), 0});
      }
      oracles[static_cast<std::size_t>(ti)] = std::move(oracle);
    });
  }

  // 3. Predictive transfer: score each oracle on every family's held-out
  //    launches.
  for (std::size_t ti = 0; ti < train_sets.size(); ++ti) {
    for (const auto& family : out.eval_families) {
      TransferCell cell;
      cell.train_set = train_sets[ti].name;
      cell.eval_family = family;
      const nn::Dataset& eval = splits.at(family)->second;
      if (oracles[ti]->trained() && eval.size() > 0) {
        int within = 0;
        double abs_err_sum = 0.0;
        double ttc_err_sum = 0.0;
        // Batched serving: gather held-out samples into 32-query flushes so
        // each one is a single matrix-matrix forward. Predictions — and
        // because the accumulators below consume them in push order, the
        // cell aggregates too — are bit-identical to the per-sample loop
        // this replaced.
        core::OracleBatchBuffer batch;
        std::size_t j0 = 0;
        const auto consume = [&](std::span<const double> preds) {
          for (std::size_t i = 0; i < preds.size(); ++i) {
            const std::size_t j = j0 + i;
            const double err = std::abs(preds[i] - eval.y(0, j));
            within += err <= cfg.tolerance_m ? 1 : 0;
            abs_err_sum += err;
            // Meters-to-seconds via the launch's longitudinal closing
            // speed (floored at 1 m/s so stationary victims stay finite).
            ttc_err_sum += err / std::max(1.0, std::abs(eval.x(1, j)));
          }
          j0 += preds.size();
        };
        for (std::size_t j = 0; j < eval.size(); ++j) {
          batch.push({eval.x(0, j),
                      {eval.x(1, j), eval.x(2, j)},
                      {eval.x(3, j), eval.x(4, j)},
                      eval.x(5, j)});
          if (batch.full()) consume(batch.flush(*oracles[ti]));
        }
        if (!batch.empty()) consume(batch.flush(*oracles[ti]));
        cell.n_eval = static_cast<int>(eval.size());
        cell.accuracy = static_cast<double>(within) /
                        static_cast<double>(eval.size());
        cell.mae_m = abs_err_sum / static_cast<double>(eval.size());
        cell.ttc_err_s = ttc_err_sum / static_cast<double>(eval.size());
      }
      out.cells.push_back(std::move(cell));
    }
  }

  // 4. Behavioral transfer: deploy each train set's oracle (for every
  //    vector) in R-mode campaigns over the eval families, one scheduler
  //    batch per row. Campaign seeds follow the grid convention
  //    (base + column * 1000) so every row replays the same eval runs.
  if (cfg.campaign_runs > 0) {
    for (std::size_t ti = 0; ti < train_sets.size(); ++ti) {
      if (!oracles[ti]->trained()) continue;
      OracleSet set;
      for (const auto v :
           {core::AttackVector::kMoveOut, core::AttackVector::kMoveIn,
            core::AttackVector::kDisappear}) {
        set[v] = oracles[ti];
      }
      CampaignRunner runner(loop, set);
      CampaignScheduler scheduler(runner, cfg.threads);
      std::vector<CampaignSpec> specs;
      specs.reserve(out.eval_families.size());
      for (std::size_t ei = 0; ei < out.eval_families.size(); ++ei) {
        const auto& family = out.eval_families[ei];
        specs.push_back({train_sets[ti].name + "->" + family, family,
                         transfer_vector_for(family), AttackMode::kRobotack,
                         cfg.campaign_runs, cfg.sh.seed + ei * 1000,
                         std::nullopt});
      }
      const auto results = scheduler.run_all(specs);
      for (std::size_t ei = 0; ei < results.size(); ++ei) {
        TransferCell& cell =
            out.cells[ti * out.eval_families.size() + ei];
        const auto& r = results[ei];
        cell.campaign_n = r.n();
        cell.triggered_rate =
            r.n() > 0 ? static_cast<double>(r.triggered_count()) /
                            static_cast<double>(r.n())
                      : 0.0;
        cell.eb_rate = r.eb_rate();
        cell.crash_rate = r.crash_rate();
      }
    }
  }
  return out;
}

}  // namespace rt::experiments
