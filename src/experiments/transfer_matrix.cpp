#include "experiments/transfer_matrix.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <stdexcept>
#include <utility>

#include "experiments/reporting.hpp"

namespace rt::experiments {

const TransferCell& TransferMatrix::at(const std::string& train_set,
                                       const std::string& eval_family) const {
  for (const auto& cell : cells) {
    if (cell.train_set == train_set && cell.eval_family == eval_family) {
      return cell;
    }
  }
  throw std::out_of_range("TransferMatrix::at: no cell (" + train_set +
                          ", " + eval_family + ")");
}

std::vector<std::string> TransferMatrix::csv_header() {
  return {"train_set", "eval_family", "n_eval",       "accuracy",
          "mae_m",     "ttc_err_s",   "campaign_runs", "triggered",
          "eb_rate",   "crash_rate"};
}

std::vector<std::vector<std::string>> TransferMatrix::csv_rows() const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(cells.size());
  for (const auto& c : cells) {
    rows.push_back({c.train_set, c.eval_family, std::to_string(c.n_eval),
                    fmt(c.accuracy, 3), fmt(c.mae_m, 2), fmt(c.ttc_err_s, 2),
                    std::to_string(c.campaign_n), fmt(c.triggered_rate, 3),
                    fmt(c.eb_rate, 3), fmt(c.crash_rate, 3)});
  }
  return rows;
}

core::AttackVector transfer_vector_for(const std::string& family) {
  if (family == "DS-3" || family == "DS-4") {
    return core::AttackVector::kMoveIn;
  }
  return core::AttackVector::kMoveOut;
}

TransferMatrix run_transfer_matrix(const TransferConfig& cfg,
                                   const LoopConfig& loop) {
  const auto& registry = sim::ScenarioRegistry::global();

  TransferMatrix out;
  out.eval_families =
      cfg.eval_families.empty() ? registry.keys() : cfg.eval_families;
  std::vector<TransferTrainSet> train_sets = cfg.train_sets;
  if (train_sets.empty()) {
    for (const auto& family : out.eval_families) {
      train_sets.push_back({family, {family}});
    }
  }
  for (const auto& t : train_sets) out.train_sets.push_back(t.name);

  // 1. One launch dataset per involved family, generated with the family's
  //    natural vector and split into train/holdout parts. The split seed is
  //    decorrelated per family via the dataset fingerprint, and the
  //    generation itself fans over cfg.threads with thread-count-invariant
  //    results.
  std::set<std::string> families(out.eval_families.begin(),
                                 out.eval_families.end());
  for (const auto& t : train_sets) {
    families.insert(t.families.begin(), t.families.end());
  }
  std::map<std::string, std::pair<nn::Dataset, nn::Dataset>> splits;
  for (const auto& family : families) {
    const core::AttackVector v = transfer_vector_for(family);
    ShTrainingConfig fam_cfg = cfg.sh;
    fam_cfg.threads = cfg.threads;
    fam_cfg.curricula[v] = {family};
    nn::Dataset all = generate_sh_dataset(v, loop, fam_cfg);
    splits[family] = all.split_seeded(
        1.0 - cfg.holdout_fraction,
        cfg.sh.seed ^ sh_dataset_fingerprint(v, fam_cfg));
  }

  // 2. One oracle per train set, on the concatenated train splits of its
  //    member families. Every oracle starts from the same seeded weights so
  //    rows differ only by curriculum.
  std::vector<std::shared_ptr<core::SafetyOracle>> oracles;
  for (const auto& t : train_sets) {
    std::vector<nn::Dataset> parts;
    parts.reserve(t.families.size());
    for (const auto& family : t.families) {
      parts.push_back(splits.at(family).first);
    }
    const nn::Dataset train_data = nn::Dataset::concat(parts);
    auto oracle = std::make_shared<core::SafetyOracle>(cfg.sh.seed ^ 0xabcd);
    if (train_data.size() > 0) {
      oracle->train(train_data, cfg.sh.train);
      oracle->set_provenance({"transfer", join(t.families, ","), 0});
    }
    oracles.push_back(std::move(oracle));
  }

  // 3. Predictive transfer: score each oracle on every family's held-out
  //    launches.
  for (std::size_t ti = 0; ti < train_sets.size(); ++ti) {
    for (const auto& family : out.eval_families) {
      TransferCell cell;
      cell.train_set = train_sets[ti].name;
      cell.eval_family = family;
      const nn::Dataset& eval = splits.at(family).second;
      if (oracles[ti]->trained() && eval.size() > 0) {
        int within = 0;
        double abs_err_sum = 0.0;
        double ttc_err_sum = 0.0;
        for (std::size_t j = 0; j < eval.size(); ++j) {
          const double pred = oracles[ti]->predict(
              eval.x(0, j), {eval.x(1, j), eval.x(2, j)},
              {eval.x(3, j), eval.x(4, j)}, eval.x(5, j));
          const double err = std::abs(pred - eval.y(0, j));
          within += err <= cfg.tolerance_m ? 1 : 0;
          abs_err_sum += err;
          // Meters-to-seconds via the launch's longitudinal closing speed
          // (floored at 1 m/s so stationary victims stay finite).
          ttc_err_sum += err / std::max(1.0, std::abs(eval.x(1, j)));
        }
        cell.n_eval = static_cast<int>(eval.size());
        cell.accuracy = static_cast<double>(within) /
                        static_cast<double>(eval.size());
        cell.mae_m = abs_err_sum / static_cast<double>(eval.size());
        cell.ttc_err_s = ttc_err_sum / static_cast<double>(eval.size());
      }
      out.cells.push_back(std::move(cell));
    }
  }

  // 4. Behavioral transfer: deploy each train set's oracle (for every
  //    vector) in R-mode campaigns over the eval families, one scheduler
  //    batch per row. Campaign seeds follow the grid convention
  //    (base + column * 1000) so every row replays the same eval runs.
  if (cfg.campaign_runs > 0) {
    for (std::size_t ti = 0; ti < train_sets.size(); ++ti) {
      if (!oracles[ti]->trained()) continue;
      OracleSet set;
      for (const auto v :
           {core::AttackVector::kMoveOut, core::AttackVector::kMoveIn,
            core::AttackVector::kDisappear}) {
        set[v] = oracles[ti];
      }
      CampaignRunner runner(loop, set);
      CampaignScheduler scheduler(runner, cfg.threads);
      std::vector<CampaignSpec> specs;
      specs.reserve(out.eval_families.size());
      for (std::size_t ei = 0; ei < out.eval_families.size(); ++ei) {
        const auto& family = out.eval_families[ei];
        specs.push_back({train_sets[ti].name + "->" + family, family,
                         transfer_vector_for(family), AttackMode::kRobotack,
                         cfg.campaign_runs, cfg.sh.seed + ei * 1000,
                         std::nullopt});
      }
      const auto results = scheduler.run_all(specs);
      for (std::size_t ei = 0; ei < results.size(); ++ei) {
        TransferCell& cell =
            out.cells[ti * out.eval_families.size() + ei];
        const auto& r = results[ei];
        cell.campaign_n = r.n();
        cell.triggered_rate =
            r.n() > 0 ? static_cast<double>(r.triggered_count()) /
                            static_cast<double>(r.n())
                      : 0.0;
        cell.eb_rate = r.eb_rate();
        cell.crash_rate = r.crash_rate();
      }
    }
  }
  return out;
}

}  // namespace rt::experiments
