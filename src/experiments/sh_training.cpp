#include "experiments/sh_training.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "experiments/reporting.hpp"
#include "experiments/thread_pool.hpp"
#include "stats/hash.hpp"

namespace rt::experiments {

namespace {

std::string legacy_cache_path(const std::string& cache_dir,
                              core::AttackVector v) {
  namespace fs = std::filesystem;
  return (fs::path(cache_dir) /
          (std::string("sh_oracle_") + core::to_string(v) + ".txt"))
      .string();
}

}  // namespace

std::vector<std::string> scenarios_for(core::AttackVector v) {
  switch (v) {
    case core::AttackVector::kMoveOut:
    case core::AttackVector::kDisappear:
      return {"DS-1", "DS-2"};
    case core::AttackVector::kMoveIn:
      return {"DS-3", "DS-4"};
  }
  return {};
}

std::vector<std::string> scenarios_for(core::AttackVector v,
                                       const ShTrainingConfig& cfg) {
  const auto it = cfg.curricula.find(v);
  if (it != cfg.curricula.end() && !it->second.empty()) return it->second;
  return scenarios_for(v);
}

std::uint64_t sh_dataset_fingerprint(core::AttackVector v,
                                     const ShTrainingConfig& cfg) {
  std::uint64_t h = stats::kFnv1aOffset;
  h = stats::fnv1a_str(h, core::to_string(v));
  for (const auto& key : scenarios_for(v, cfg)) h = stats::fnv1a_str(h, key);
  for (const double d : cfg.delta_triggers) h = stats::fnv1a_double(h, d);
  for (const int k : cfg.ks) {
    h = stats::fnv1a_u64(h, static_cast<std::uint64_t>(k));
  }
  h = stats::fnv1a_u64(h, static_cast<std::uint64_t>(cfg.repeats));
  h = stats::fnv1a_u64(h, cfg.seed);
  return h;
}

std::string oracle_cache_path(const std::string& cache_dir,
                              core::AttackVector v,
                              const ShTrainingConfig& cfg) {
  namespace fs = std::filesystem;
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(sh_dataset_fingerprint(v, cfg)));
  return (fs::path(cache_dir) / (std::string("sh_oracle_") +
                                 core::to_string(v) + "-" + hex + ".txt"))
      .string();
}

nn::Dataset generate_sh_dataset(core::AttackVector v, const LoopConfig& base,
                                const ShTrainingConfig& cfg) {
  const auto& registry = sim::ScenarioRegistry::global();

  // Enumerate the launch grid in the canonical (scenario, delta, k, repeat)
  // order — the dataset's sample order regardless of how many threads run
  // the launches.
  struct Cell {
    std::uint64_t scenario_index;
    const std::string* key;
    double delta_trigger;
    int k;
    int rep;
  };
  const std::vector<std::string> curriculum = scenarios_for(v, cfg);
  std::vector<Cell> cells;
  cells.reserve(curriculum.size() * cfg.delta_triggers.size() *
                cfg.ks.size() * static_cast<std::size_t>(cfg.repeats));
  for (const std::string& key : curriculum) {
    // The registration-stable index keeps the derived streams identical to
    // the ScenarioId-enum era (DS-1..DS-5 are indices 0..4), so cached
    // oracles and pinned aggregates survive the registry redesign.
    const auto scenario_index =
        static_cast<std::uint64_t>(registry.index_of(key));
    for (const double delta_trigger : cfg.delta_triggers) {
      for (const int k : cfg.ks) {
        for (int rep = 0; rep < cfg.repeats; ++rep) {
          cells.push_back({scenario_index, &key, delta_trigger, k, rep});
        }
      }
    }
  }

  // One slot per cell; launches that never trigger leave theirs empty and
  // the compaction below preserves grid order — exactly the samples (and
  // order) the historical serial loop produced.
  struct Sample {
    std::vector<double> features;
    double target{0.0};
    bool valid{false};
  };
  std::vector<Sample> slots(cells.size());

  // `derive` never advances the parent engine, so each launch's stream is a
  // pure function of (cfg.seed, grid coordinates) and the grid parallelizes
  // with bit-identical results at any thread count.
  const stats::Rng root(cfg.seed);
  ThreadPool pool(cfg.threads);
  pool.parallel_for(static_cast<int>(cells.size()), [&](int c) {
    const Cell& cell = cells[static_cast<std::size_t>(c)];
    stats::Rng run_rng = root.derive(
        (cell.scenario_index << 40) ^
        (static_cast<std::uint64_t>(
             std::llround(cell.delta_trigger * 16.0))
         << 24) ^
        (static_cast<std::uint64_t>(cell.k) << 8) ^
        static_cast<std::uint64_t>(cell.rep));
    const auto scenario_seed = run_rng.engine()();
    const auto loop_seed = run_rng.engine()();
    const auto attacker_seed = run_rng.engine()();

    stats::Rng scenario_rng(scenario_seed);
    sim::Scenario scenario = registry.make(*cell.key, scenario_rng);

    LoopConfig loop_cfg = base;
    loop_cfg.keep_timeline = true;

    core::RobotackConfig acfg = make_attacker_config(
        loop_cfg, v, core::TimingPolicy::kAtDeltaThreshold);
    acfg.delta_trigger = cell.delta_trigger;
    acfg.fixed_k = cell.k;

    ClosedLoop loop(scenario, loop_cfg, loop_seed);
    loop.set_attacker(std::make_unique<core::Robotack>(
        acfg, loop_cfg.camera, loop_cfg.noise, loop_cfg.mot,
        attacker_seed));
    const RunResult r = loop.run();
    if (!r.attack.triggered || r.timeline.empty()) return;

    // Label: ground-truth delta exactly k frames after the launch
    // (clamped to the last sample if the run halted earlier — the
    // halt itself is the safety outcome).
    const auto launch_idx = static_cast<std::size_t>(
        std::llround(r.attack.start_time / loop_cfg.camera_dt()));
    const std::size_t label_idx =
        std::min(r.timeline.size() - 1,
                 launch_idx + static_cast<std::size_t>(cell.k));
    Sample& slot = slots[static_cast<std::size_t>(c)];
    slot.features = core::SafetyOracle::features(
        r.attack.delta_at_launch, r.attack.v_rel_at_launch,
        r.attack.a_rel_at_launch, static_cast<double>(cell.k));
    slot.target = r.timeline[label_idx].target_delta;
    slot.valid = true;
  });

  std::vector<std::vector<double>> features;
  std::vector<double> targets;
  features.reserve(slots.size());
  targets.reserve(slots.size());
  for (Sample& s : slots) {
    if (!s.valid) continue;
    features.push_back(std::move(s.features));
    targets.push_back(s.target);
  }
  return nn::Dataset::from_samples(features, targets);
}

std::shared_ptr<core::SafetyOracle> train_oracle(
    core::AttackVector v, const LoopConfig& base,
    const ShTrainingConfig& cfg, nn::TrainResult* out_result) {
  auto oracle = std::make_shared<core::SafetyOracle>(cfg.seed ^ 0xabcd);
  const nn::Dataset data = generate_sh_dataset(v, base, cfg);
  const nn::TrainResult result = oracle->train(data, cfg.train);
  oracle->set_provenance({core::to_string(v),
                          join(scenarios_for(v, cfg), ","),
                          sh_dataset_fingerprint(v, cfg)});
  if (out_result != nullptr) *out_result = result;
  return oracle;
}

std::string default_cache_dir() {
  if (const char* env = std::getenv("ROBOTACK_DATA_DIR")) return env;
  namespace fs = std::filesystem;
  // Prefer an existing source-tree data/ directory (benches run from the
  // build tree); otherwise use ./data.
  for (const char* candidate : {"data", "../data", "../../data"}) {
    if (fs::exists(candidate) && fs::is_directory(candidate)) {
      return candidate;
    }
  }
  return "data";
}

std::shared_ptr<core::SafetyOracle> load_or_train_oracle(
    core::AttackVector v, const std::string& cache_dir,
    const LoopConfig& base, const ShTrainingConfig& cfg) {
  namespace fs = std::filesystem;
  fs::create_directories(cache_dir);
  const std::string path = oracle_cache_path(cache_dir, v, cfg);
  auto oracle = std::make_shared<core::SafetyOracle>();
  if (oracle->load(path)) return oracle;
  // Pre-curriculum cache files carry no fingerprint in the name and were
  // only ever written by the default configuration — honor them for that
  // configuration alone, so a changed curriculum or grid always retrains.
  if (sh_dataset_fingerprint(v, cfg) ==
      sh_dataset_fingerprint(v, ShTrainingConfig{})) {
    if (oracle->load(legacy_cache_path(cache_dir, v))) return oracle;
  }
  oracle = train_oracle(v, base, cfg);
  oracle->save(path);
  return oracle;
}

OracleSet load_or_train_oracles(const std::string& cache_dir,
                                const LoopConfig& base,
                                const ShTrainingConfig& cfg) {
  // The three per-vector pipelines (dataset generation + training) are
  // independent, so they fan out across the pool; each one's randomness is
  // a pure function of cfg.seed (datasets are grid-derived, the trainer
  // seeds its own Rng), so the trained weights are identical at any thread
  // count. When the outer fan-out is parallel, each pipeline's inner
  // dataset grid gets a proportional slice of the threads instead of
  // oversubscribing the machine three-fold.
  constexpr core::AttackVector kVectors[] = {core::AttackVector::kMoveOut,
                                             core::AttackVector::kMoveIn,
                                             core::AttackVector::kDisappear};
  const unsigned total_threads =
      cfg.threads == 0 ? ThreadPool::default_threads() : cfg.threads;
  const unsigned outer = std::min<unsigned>(3, total_threads);
  ThreadPool pool(outer);
  std::array<std::shared_ptr<core::SafetyOracle>, 3> slots;
  pool.parallel_for(3, [&](int i) {
    ShTrainingConfig inner = cfg;
    inner.threads = std::max(1u, total_threads / outer);
    slots[static_cast<std::size_t>(i)] =
        load_or_train_oracle(kVectors[i], cache_dir, base, inner);
  });
  OracleSet set;
  for (int i = 0; i < 3; ++i) set[kVectors[i]] = slots[static_cast<std::size_t>(i)];
  return set;
}

}  // namespace rt::experiments
