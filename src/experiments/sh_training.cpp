#include "experiments/sh_training.hpp"

#include <cmath>
#include <cstdlib>
#include <filesystem>

namespace rt::experiments {

std::vector<std::string> scenarios_for(core::AttackVector v) {
  switch (v) {
    case core::AttackVector::kMoveOut:
    case core::AttackVector::kDisappear:
      return {"DS-1", "DS-2"};
    case core::AttackVector::kMoveIn:
      return {"DS-3", "DS-4"};
  }
  return {};
}

nn::Dataset generate_sh_dataset(core::AttackVector v, const LoopConfig& base,
                                const ShTrainingConfig& cfg) {
  std::vector<std::vector<double>> features;
  std::vector<double> targets;
  stats::Rng root(cfg.seed);

  const auto& registry = sim::ScenarioRegistry::global();
  for (const std::string& key : scenarios_for(v)) {
    // The registration-stable index keeps the derived streams identical to
    // the ScenarioId-enum era (DS-1..DS-5 are indices 0..4), so cached
    // oracles and pinned aggregates survive the registry redesign.
    const auto scenario_index =
        static_cast<std::uint64_t>(registry.index_of(key));
    for (const double delta_trigger : cfg.delta_triggers) {
      for (const int k : cfg.ks) {
        for (int rep = 0; rep < cfg.repeats; ++rep) {
          stats::Rng run_rng = root.derive(
              (scenario_index << 40) ^
              (static_cast<std::uint64_t>(
                   std::llround(delta_trigger * 16.0))
               << 24) ^
              (static_cast<std::uint64_t>(k) << 8) ^
              static_cast<std::uint64_t>(rep));
          const auto scenario_seed = run_rng.engine()();
          const auto loop_seed = run_rng.engine()();
          const auto attacker_seed = run_rng.engine()();

          stats::Rng scenario_rng(scenario_seed);
          sim::Scenario scenario = registry.make(key, scenario_rng);

          LoopConfig loop_cfg = base;
          loop_cfg.keep_timeline = true;

          core::RobotackConfig acfg = make_attacker_config(
              loop_cfg, v, core::TimingPolicy::kAtDeltaThreshold);
          acfg.delta_trigger = delta_trigger;
          acfg.fixed_k = k;

          ClosedLoop loop(scenario, loop_cfg, loop_seed);
          loop.set_attacker(std::make_unique<core::Robotack>(
              acfg, loop_cfg.camera, loop_cfg.noise, loop_cfg.mot,
              attacker_seed));
          const RunResult r = loop.run();
          if (!r.attack.triggered || r.timeline.empty()) continue;

          // Label: ground-truth delta exactly k frames after the launch
          // (clamped to the last sample if the run halted earlier — the
          // halt itself is the safety outcome).
          const auto launch_idx = static_cast<std::size_t>(
              std::llround(r.attack.start_time / loop_cfg.camera_dt()));
          const std::size_t label_idx =
              std::min(r.timeline.size() - 1,
                       launch_idx + static_cast<std::size_t>(k));
          features.push_back(core::SafetyOracle::features(
              r.attack.delta_at_launch, r.attack.v_rel_at_launch,
              r.attack.a_rel_at_launch, static_cast<double>(k)));
          targets.push_back(r.timeline[label_idx].target_delta);
        }
      }
    }
  }
  return nn::Dataset::from_samples(features, targets);
}

std::shared_ptr<core::SafetyOracle> train_oracle(
    core::AttackVector v, const LoopConfig& base,
    const ShTrainingConfig& cfg, nn::TrainResult* out_result) {
  auto oracle = std::make_shared<core::SafetyOracle>(cfg.seed ^ 0xabcd);
  const nn::Dataset data = generate_sh_dataset(v, base, cfg);
  const nn::TrainResult result = oracle->train(data, cfg.train);
  if (out_result != nullptr) *out_result = result;
  return oracle;
}

std::string default_cache_dir() {
  if (const char* env = std::getenv("ROBOTACK_DATA_DIR")) return env;
  namespace fs = std::filesystem;
  // Prefer an existing source-tree data/ directory (benches run from the
  // build tree); otherwise use ./data.
  for (const char* candidate : {"data", "../data", "../../data"}) {
    if (fs::exists(candidate) && fs::is_directory(candidate)) {
      return candidate;
    }
  }
  return "data";
}

std::shared_ptr<core::SafetyOracle> load_or_train_oracle(
    core::AttackVector v, const std::string& cache_dir,
    const LoopConfig& base, const ShTrainingConfig& cfg) {
  namespace fs = std::filesystem;
  fs::create_directories(cache_dir);
  const std::string path =
      (fs::path(cache_dir) /
       (std::string("sh_oracle_") + core::to_string(v) + ".txt"))
          .string();
  auto oracle = std::make_shared<core::SafetyOracle>();
  if (oracle->load(path)) return oracle;
  oracle = train_oracle(v, base, cfg);
  oracle->save(path);
  return oracle;
}

OracleSet load_or_train_oracles(const std::string& cache_dir,
                                const LoopConfig& base,
                                const ShTrainingConfig& cfg) {
  OracleSet set;
  for (const auto v :
       {core::AttackVector::kMoveOut, core::AttackVector::kMoveIn,
        core::AttackVector::kDisappear}) {
    set[v] = load_or_train_oracle(v, cache_dir, base, cfg);
  }
  return set;
}

}  // namespace rt::experiments
