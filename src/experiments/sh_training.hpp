#pragma once

#include <memory>
#include <string>
#include <vector>

#include "experiments/campaign.hpp"
#include "nn/dataset.hpp"

namespace rt::experiments {

/// Configuration of the safety-hijacker training-data sweep (§IV-B: "each
/// simulation had a predefined delta_inject and a k, i.e., an attack
/// started as soon as delta_t = delta_inject, and continued for k
/// consecutive time-steps").
struct ShTrainingConfig {
  std::vector<double> delta_triggers{8.0, 12.0, 16.0, 20.0, 26.0, 34.0};
  std::vector<int> ks{4, 8, 12, 18, 24, 32, 42, 55, 68};
  int repeats{3};
  std::uint64_t seed{424242};
  nn::TrainConfig train{};
};

/// Which driving scenarios exercise a given attack vector (the paper's
/// campaign mapping: Move_Out/Disappear on DS-1/DS-2; Move_In on DS-3/DS-4).
/// Returned as ScenarioRegistry keys.
[[nodiscard]] std::vector<std::string> scenarios_for(core::AttackVector v);

/// Generates the oracle's dataset for one vector by running scripted
/// attacks over the (delta_inject, k) grid and labeling each launch with
/// the *ground-truth* safety potential k frames later.
[[nodiscard]] nn::Dataset generate_sh_dataset(core::AttackVector v,
                                              const LoopConfig& base,
                                              const ShTrainingConfig& cfg);

/// Trains a fresh oracle for the vector (dataset generation + training).
[[nodiscard]] std::shared_ptr<core::SafetyOracle> train_oracle(
    core::AttackVector v, const LoopConfig& base,
    const ShTrainingConfig& cfg, nn::TrainResult* out_result = nullptr);

/// Loads the oracle from `cache_dir` if a cached model exists, otherwise
/// trains and caches it. This keeps repeated benchmark invocations fast.
[[nodiscard]] std::shared_ptr<core::SafetyOracle> load_or_train_oracle(
    core::AttackVector v, const std::string& cache_dir,
    const LoopConfig& base, const ShTrainingConfig& cfg);

/// All three oracles, cached under `cache_dir`.
[[nodiscard]] OracleSet load_or_train_oracles(const std::string& cache_dir,
                                              const LoopConfig& base,
                                              const ShTrainingConfig& cfg);

/// Default on-disk cache directory (overridable with the ROBOTACK_DATA_DIR
/// environment variable; defaults to "data" relative to the working
/// directory, falling back to the source-tree data/ directory when run
/// from the build tree).
[[nodiscard]] std::string default_cache_dir();

}  // namespace rt::experiments
