#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "experiments/campaign.hpp"
#include "nn/dataset.hpp"

namespace rt::experiments {

/// Configuration of the safety-hijacker training-data sweep (§IV-B: "each
/// simulation had a predefined delta_inject and a k, i.e., an attack
/// started as soon as delta_t = delta_inject, and continued for k
/// consecutive time-steps").
struct ShTrainingConfig {
  std::vector<double> delta_triggers{8.0, 12.0, 16.0, 20.0, 26.0, 34.0};
  std::vector<int> ks{4, 8, 12, 18, 24, 32, 42, 55, 68};
  int repeats{3};
  std::uint64_t seed{424242};
  nn::TrainConfig train{};

  /// Per-vector scenario curricula (ScenarioRegistry keys). A vector with
  /// no entry — or an empty list — trains on the paper mapping
  /// (`scenarios_for(v)`), so a default-constructed config reproduces the
  /// pre-curriculum pipeline bit for bit and existing cached oracles keep
  /// loading. Unknown keys are rejected when the dataset is generated.
  std::map<core::AttackVector, std::vector<std::string>> curricula{};

  /// Threads for the launch grid of `generate_sh_dataset` and for the
  /// pooled per-vector pipelines of `load_or_train_oracles` (0 = one per
  /// hardware core). Results are bit-identical at any thread count: every
  /// launch's randomness is a pure function of (seed, grid coordinates),
  /// and every training self-seeds from the config.
  unsigned threads{0};
};

/// Which driving scenarios exercise a given attack vector (the paper's
/// campaign mapping: Move_Out/Disappear on DS-1/DS-2; Move_In on DS-3/DS-4).
/// Returned as ScenarioRegistry keys. This is the documented default
/// curriculum for every vector.
[[nodiscard]] std::vector<std::string> scenarios_for(core::AttackVector v);

/// Curriculum-aware overload: the curriculum registered for `v` in
/// `cfg.curricula`, falling back to the paper mapping above when the vector
/// has no (or an empty) entry.
[[nodiscard]] std::vector<std::string> scenarios_for(
    core::AttackVector v, const ShTrainingConfig& cfg);

/// Content hash of the effective curriculum + launch grid for a vector
/// (scenario keys, delta_inject sweep, k sweep, repeats, dataset seed) —
/// everything that determines which launches `generate_sh_dataset` runs.
/// Keys the on-disk oracle cache: equal fingerprints mean the cached model
/// was trained on the same launches. The nn hyper-parameters (`cfg.train`)
/// are deliberately NOT part of the key — see `load_or_train_oracle`.
[[nodiscard]] std::uint64_t sh_dataset_fingerprint(core::AttackVector v,
                                                   const ShTrainingConfig& cfg);

/// Curriculum-keyed cache filename:
/// `<cache_dir>/sh_oracle_<vector>-<fingerprint hex>.txt`.
[[nodiscard]] std::string oracle_cache_path(const std::string& cache_dir,
                                            core::AttackVector v,
                                            const ShTrainingConfig& cfg);

/// Generates the oracle's dataset for one vector by running scripted
/// attacks over the (scenario × delta_inject × k × repeat) grid — fanned
/// over `cfg.threads` — and labeling each launch with the *ground-truth*
/// safety potential k frames later. Sample order and content are
/// independent of the thread count.
[[nodiscard]] nn::Dataset generate_sh_dataset(core::AttackVector v,
                                              const LoopConfig& base,
                                              const ShTrainingConfig& cfg);

/// Trains a fresh oracle for the vector (dataset generation + training).
/// The oracle's provenance records the curriculum and fingerprint.
[[nodiscard]] std::shared_ptr<core::SafetyOracle> train_oracle(
    core::AttackVector v, const LoopConfig& base,
    const ShTrainingConfig& cfg, nn::TrainResult* out_result = nullptr);

/// Loads the oracle from `cache_dir` if a model cached under this
/// curriculum's fingerprint exists, otherwise trains and caches it. For
/// the default (paper) curriculum + grid, pre-curriculum cache files
/// (`sh_oracle_<vector>.txt`, no fingerprint in the name) still load.
/// Caveat: the cache key covers curriculum + grid only, so changing just
/// `cfg.train` (epochs, lr, ...) reuses a cached model trained with the
/// old hyper-parameters — delete the cache file (or use `train_oracle`)
/// when sweeping nn hyper-parameters.
[[nodiscard]] std::shared_ptr<core::SafetyOracle> load_or_train_oracle(
    core::AttackVector v, const std::string& cache_dir,
    const LoopConfig& base, const ShTrainingConfig& cfg);

/// All three oracles, cached under `cache_dir`. The per-vector pipelines
/// (generation + training) fan out across `cfg.threads`; trained weights
/// are bit-identical at any thread count.
[[nodiscard]] OracleSet load_or_train_oracles(const std::string& cache_dir,
                                              const LoopConfig& base,
                                              const ShTrainingConfig& cfg);

/// Default on-disk cache directory (overridable with the ROBOTACK_DATA_DIR
/// environment variable; defaults to "data" relative to the working
/// directory, falling back to the source-tree data/ directory when run
/// from the build tree).
[[nodiscard]] std::string default_cache_dir();

}  // namespace rt::experiments
