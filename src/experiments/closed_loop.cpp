#include "experiments/closed_loop.hpp"

#include <cmath>

#include "obs/metrics.hpp"

namespace rt::experiments {

ClosedLoop::ClosedLoop(sim::Scenario scenario, LoopConfig config,
                       std::uint64_t seed)
    : scenario_(std::move(scenario)), config_(config), seed_(seed) {}

void ClosedLoop::set_attacker(std::unique_ptr<core::Robotack> attacker) {
  attacker_ = std::move(attacker);
}

core::RobotackConfig make_attacker_config(const LoopConfig& loop,
                                          core::AttackVector vector,
                                          core::TimingPolicy timing) {
  core::RobotackConfig cfg;
  cfg.vector = vector;
  cfg.timing = timing;
  cfg.dt = loop.camera_dt();
  cfg.comfort_decel = loop.safety.comfort_decel;
  cfg.ego_length =
      sim::default_dimensions(sim::ActorType::kVehicle).length;
  cfg.breakaway_gate = loop.fusion.pair_gate_lateral;
  // The association gate the ADS tracker uses; the hijacker must stay
  // strictly inside it.
  cfg.th.association_iou_min = (1.0 - loop.mot.max_cost) + 0.05;
  return cfg;
}

RunResult ClosedLoop::run() {
  const double dt = config_.camera_dt();
  stats::Rng root(seed_);

  sim::World world = scenario_.make_world();
  perception::DetectorModel detector(config_.camera, config_.noise,
                                     root.derive(1));
  perception::LidarModel lidar(config_.lidar, root.derive(2));

  ads::PlannerConfig planner_cfg = config_.planner;
  planner_cfg.cruise_speed = scenario_.ego_cruise_speed;
  ads::AdsSystem ads(config_.camera, dt, config_.lidar_dt(), planner_cfg,
                     config_.mot, config_.fusion, config_.lidar,
                     config_.noise);

  safety::SafetyMonitor monitor(safety::SafetyModel(config_.safety),
                                config_.keep_timeline);
  safety::AttackIds ids(config_.ids, config_.noise, config_.camera);

  // Runtime attack monitors: a fresh per-run stack observing the perception
  // pipeline from inside the ADS. Passive by contract — wiring it up never
  // changes the driving outcome.
  defense::MonitorStack monitors;
  if (!config_.monitors.empty()) {
    monitors =
        defense::MonitorStack(config_.monitors, config_.monitor_context());
    ads.set_perception_observer(&monitors);
  }

  RunResult result;
  double next_lidar = 0.0;
  const int steps =
      static_cast<int>(std::ceil(scenario_.duration / dt));
  // Per-frame buffers hoisted out of the loop: ground truth, LiDAR scan,
  // camera frame, and the full ADS output reuse their capacity across the
  // ~600 frames of a run instead of reallocating every cycle.
  std::vector<sim::GroundTruthObject> gt;
  std::vector<perception::LidarMeasurement> scan;
  perception::CameraFrame frame;
  ads::AdsOutput out;
  for (int i = 0; i < steps; ++i) {
    const double t = world.time();
    world.ground_truth_into(gt);

    if (t + 1e-9 >= next_lidar) {
      lidar.scan_into(gt, scan);
      ads.ingest_lidar(scan);
      next_lidar += config_.lidar_dt();
    }

    detector.detect_into(gt, t, frame);
    if (attacker_) {
      // In place on the hoisted frame buffer: the malware's man-in-the-
      // middle step copies nothing on the per-frame hot path.
      attacker_->process_in_place(frame, world.ego().speed());
    }

    ads.step_into(frame, world.ego().speed(), world.ego().acceleration(),
                  out);

    if (config_.enable_ids) {
      ids.observe(frame, out.perception.camera_tracks,
                  out.perception.lidar_tracks);
    }
    monitor.record(world, out.eb_active,
                   attacker_ && attacker_->attack_active(),
                   scenario_.target_id);

    // LGSVL-style halt: physically collided or within the 4 m envelope.
    const auto nearest = world.nearest_in_path();
    const bool too_close =
        nearest &&
        nearest->longitudinal_gap(world.ego().dims().length) <
            config_.halt_gap &&
        world.ego().speed() > 0.5;
    if (world.collision() || too_close) {
      result.halted_early = true;
      break;
    }

    world.step(dt, out.accel_command);
  }

  result.eb = monitor.emergency_braking_occurred();
  result.eb_episodes = monitor.eb_episodes();
  result.collision = monitor.collision_occurred();
  result.min_delta = monitor.min_delta();
  result.min_delta_since_attack = monitor.min_delta_since_attack();
  result.crash = monitor.accident();
  result.end_time = world.time();
  if (attacker_) result.attack = attacker_->log();
  result.ids_flagged = ids.report().flagged;
  result.ids_reason = ids.report().reason;
  if (!monitors.empty()) {
    result.defense = monitors.report();
    static const obs::Counter monitor_alarms =
        obs::MetricsRegistry::global().counter(
            "rt_monitor_alarms_total",
            "Alarm frames raised by runtime attack monitors");
    std::uint64_t alarms = 0;
    for (const auto& m : result.defense.monitors) {
      if (m.alarms > 0) alarms += static_cast<std::uint64_t>(m.alarms);
    }
    if (alarms > 0) monitor_alarms.inc(alarms);
    // Ground-truth detection labels, judged PER MONITOR: an alert at/after
    // the launch of a triggered attack counts as a detection even when a
    // different monitor false-alarmed earlier (a stack-wide earliest-alert
    // test would let one noisy monitor mask another's genuine detection).
    // A run that only alerted pre-launch stays a false alarm.
    if (result.attack.triggered) {
      const double launch = result.attack.start_time;
      double best_time = 0.0;
      for (const auto& m : result.defense.monitors) {
        if (!m.fired || m.first_alert_time < launch - 1e-9) continue;
        if (result.defense.detected && m.first_alert_time >= best_time) {
          continue;
        }
        best_time = m.first_alert_time;
        result.defense.detected = true;
        result.defense.frames_to_detection =
            static_cast<int>(std::lround((best_time - launch) / dt));
        result.defense.detected_by = m.monitor;
      }
    }
  }
  result.timeline = monitor.timeline();
  return result;
}

}  // namespace rt::experiments
