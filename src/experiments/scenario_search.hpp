#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "experiments/campaign.hpp"
#include "sim/invariants.hpp"
#include "sim/scenario_sampler.hpp"

namespace rt::experiments {

/// What run_scenario_search maximizes per sampled configuration.
enum class SearchObjective : std::uint8_t {
  /// crash_rate + 0.5 * eb_rate under attack: the classic "find the corner
  /// where the malware does the most damage".
  kAttackSuccess,
  /// Fraction of runs whose attack triggered, did damage (EB or crash) and
  /// still evaded every deployed monitor: corners where the defense stack
  /// of cfg.monitors is blind.
  kEvadeMonitors,
};

[[nodiscard]] constexpr const char* to_string(SearchObjective o) {
  switch (o) {
    case SearchObjective::kAttackSuccess:
      return "attack-success";
    case SearchObjective::kEvadeMonitors:
      return "evade-monitors";
  }
  return "?";
}

/// Clean-run verdict of one sampled scenario: the full invariant suite on
/// the canonical world plus one golden closed-loop pass.
struct CleanRunCheck {
  /// Structural + cruise-replay + closed-loop violations (empty = clean).
  sim::InvariantReport report;
  /// The golden run that was judged (timeline retained).
  RunResult golden;

  [[nodiscard]] bool ok() const { return report.ok(); }
};

/// Judges one sampled scenario as a *clean* world: structural and
/// cruise-replay invariants (sim/invariants.hpp), then one golden
/// (unattacked) closed-loop run with `base.monitors` deployed, which must
/// end collision-free, crash-free, inside the ego actuation envelope, and
/// without a single monitor alert (zero false positives on clean worlds).
/// Every violation carries the sample's spec string, so a failure is
/// replayable from `(template, seed)` alone.
[[nodiscard]] CleanRunCheck check_clean_run(const sim::SampledScenario& sample,
                                            const LoopConfig& base);

/// Configuration of the coverage-guided scenario search.
struct ScenarioSearchConfig {
  /// Templates to fuzz (registry keys). Empty = every registered family.
  std::vector<std::string> templates{};
  SearchObjective objective{SearchObjective::kAttackSuccess};
  /// Bandit rounds: each round allocates `samples_per_round` fresh samples
  /// across templates proportionally to the best score seen per template
  /// (plus a uniform exploration floor), then scores them on the parallel
  /// campaign engine.
  int rounds{4};
  int samples_per_round{12};
  /// Closed-loop runs per sampled configuration (one CampaignSpec each).
  int runs_per_sample{6};
  std::uint64_t seed{20200613};
  /// 0 = one thread per core. Results are thread-count-invariant.
  unsigned threads{0};
  /// Optional campaign-batch executor (e.g. a cached / multi-process
  /// rt::service::CampaignService) for scoring each round's specs. Unset =
  /// the in-process scheduler with `threads` threads.
  GridExecutor executor{};
  /// Attack condition scored by the search. kNoSh works with an empty
  /// oracle set (no training), which keeps the bench driver hermetic.
  AttackMode mode{AttackMode::kNoSh};
  /// Monitor stack deployed on every scored run (defense registry keys).
  /// Required for kEvadeMonitors; optional context otherwise.
  std::vector<std::string> monitors{};
};

/// One evaluated sample on the search frontier.
struct SearchFrontierEntry {
  std::string template_key;
  std::uint64_t sample_seed{0};
  double score{0.0};
  double crash_rate{0.0};
  double eb_rate{0.0};
  double detection_rate{0.0};
  int runs{0};
  /// Full registrable spec (sim::SampledScenario::spec_string()).
  std::string spec;

  [[nodiscard]] std::string corpus_line() const {
    return template_key + " " + std::to_string(sample_seed);
  }
};

/// Outcome of a search: the per-template frontier (best sample each,
/// score-descending) plus every evaluated sample.
struct ScenarioSearchResult {
  SearchObjective objective{SearchObjective::kAttackSuccess};
  std::vector<SearchFrontierEntry> frontier;
  std::vector<SearchFrontierEntry> evaluated;
  /// Samples rejected by the structural pre-check before scoring.
  int rejected_samples{0};
  int total_runs{0};

  /// Stable CSV schema for the frontier (matches csv_rows).
  [[nodiscard]] static std::vector<std::string> csv_header();
  [[nodiscard]] std::vector<std::vector<std::string>> csv_rows() const;
};

/// Coverage-guided search over the sampled scenario space: a deterministic
/// multi-armed bandit over templates (allocation follows the best score
/// seen per template, with a uniform floor so no family starves) whose
/// every evaluation is a seeded campaign on the parallel engine. Fully
/// reproducible: sample seeds derive from (cfg.seed, template, counter)
/// via FNV-1a, so the result is identical at any thread count, and every
/// frontier entry is replayable from its corpus line.
[[nodiscard]] ScenarioSearchResult run_scenario_search(
    const ScenarioSearchConfig& cfg, const LoopConfig& base,
    const OracleSet& oracles);

}  // namespace rt::experiments
