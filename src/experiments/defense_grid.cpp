#include "experiments/defense_grid.hpp"

#include "defense/monitor_registry.hpp"
#include "experiments/campaign_grid.hpp"
#include "experiments/reporting.hpp"
#include "experiments/transfer_matrix.hpp"
#include "sim/scenario_registry.hpp"

namespace rt::experiments {

std::vector<std::string> DefenseGrid::csv_header() {
  return {"campaign",       "scenario",    "vector",
          "mode",           "monitor",     "runs",
          "triggered",      "detected",    "false_alarms",
          "detection_rate", "fp_rate",     "median_frames_to_detection",
          "eb_rate",        "crash_rate"};
}

std::vector<std::vector<std::string>> DefenseGrid::csv_rows() const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(cells.size());
  for (const auto& c : cells) {
    rows.push_back({c.campaign, c.scenario, c.vector_name, c.mode,
                    c.monitor.empty() ? "none" : c.monitor,
                    std::to_string(c.n), std::to_string(c.triggered),
                    std::to_string(c.detected),
                    std::to_string(c.false_alarms),
                    fmt(c.detection_rate, 4), fmt(c.false_alarm_rate, 4),
                    fmt(c.median_frames_to_detection, 1), fmt(c.eb_rate, 4),
                    fmt(c.crash_rate, 4)});
  }
  return rows;
}

DefenseGrid run_defense_grid(const DefenseGridConfig& cfg,
                             const LoopConfig& base,
                             const OracleSet& oracles) {
  const std::vector<std::string> scenarios =
      cfg.scenarios.empty() ? sim::ScenarioRegistry::global().keys()
                            : cfg.scenarios;
  const std::vector<std::string> monitors =
      cfg.monitors.empty() ? defense::MonitorRegistry::global().keys()
                           : cfg.monitors;

  // One grid block per family: the attack vector is the family's natural
  // one, read from the victim-geometry metadata, so per-family vectors can
  // differ inside one seed-continuous grid.
  CampaignGridBuilder builder;
  builder.runs(cfg.runs).seed(cfg.seed).modes(cfg.modes).monitors(monitors);
  for (const auto& family : scenarios) {
    builder.scenarios({family})
        .vectors({transfer_vector_for(family)})
        .add_grid();
  }
  const auto specs = builder.build();

  CampaignRunner runner(base, oracles);
  CampaignScheduler scheduler(runner, cfg.threads);
  const auto results =
      cfg.executor ? cfg.executor(specs) : scheduler.run_all(specs);

  DefenseGrid grid;
  grid.cells.reserve(results.size());
  for (const auto& r : results) {
    DefenseCell cell;
    cell.campaign = r.spec.name;
    cell.scenario = r.spec.scenario;
    cell.vector_name = core::to_string(r.spec.vector);
    cell.mode = to_string(r.spec.mode);
    cell.monitor = r.spec.monitors.empty() ? "" : r.spec.monitors.front();
    cell.n = r.n();
    cell.triggered = r.triggered_count();
    cell.detected = r.detected_count();
    cell.false_alarms = r.false_alarm_count();
    cell.detection_rate = r.detection_rate();
    cell.false_alarm_rate = r.false_alarm_rate();
    cell.median_frames_to_detection = r.median_frames_to_detection();
    cell.eb_rate = r.eb_rate();
    cell.crash_rate = r.crash_rate();
    grid.cells.push_back(std::move(cell));
  }
  return grid;
}

}  // namespace rt::experiments
