#pragma once

// The pool moved to the dependency-free rt::runtime layer so lower layers
// (nn's minibatch trainer) can parallelize without depending on
// rt::experiments. This forwarding header keeps the historical include path
// and name alive for the campaign engine and its callers.

#include "runtime/thread_pool.hpp"

namespace rt::experiments {

using runtime::ThreadPool;

}  // namespace rt::experiments
