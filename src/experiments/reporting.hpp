#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace rt::experiments {

/// Renders an aligned ASCII table (header + rows) — the textual stand-in
/// for the paper's tables and figure axes.
[[nodiscard]] std::string format_table(
    const std::vector<std::string>& header,
    const std::vector<std::vector<std::string>>& rows);

/// Fixed-precision double formatting.
[[nodiscard]] std::string fmt(double value, int precision = 1);

/// Percentage formatting: fmt_pct(0.526) == "52.6%".
[[nodiscard]] std::string fmt_pct(double fraction, int precision = 1);

/// Joins parts with a separator ("DS-1,DS-2" for the curriculum labels).
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               const std::string& sep);

/// RFC-4180 cell quoting: cells containing commas, double quotes, CR or LF
/// are wrapped in double quotes with embedded quotes doubled; clean cells
/// pass through unchanged.
[[nodiscard]] std::string csv_escape(const std::string& cell);

/// Writes rows as CSV with RFC-4180 quoting applied per cell.
void write_csv(const std::string& path,
               const std::vector<std::string>& header,
               const std::vector<std::vector<std::string>>& rows);

/// One machine-readable performance record emitted by a bench driver's
/// `--json` flag. `runs_per_sec` is the driver's primary throughput metric
/// (campaign runs/sec for grid drivers, iterations or items per second for
/// microbenchmarks); `wall_ms` the measured wall time of one unit.
struct BenchJsonRecord {
  std::string bench;        ///< stable record name, e.g. "table2_campaign_grid"
  double runs_per_sec{0.0};
  double wall_ms{0.0};
  unsigned threads{1};
  std::uint64_t seed{0};
};

/// Serializes records as a JSON array of flat objects (stable field order:
/// bench, runs_per_sec, wall_ms, threads, seed). CI appends these files to
/// the repository's perf trajectory (BENCH_campaign.json).
[[nodiscard]] std::string bench_json(const std::vector<BenchJsonRecord>& records);

/// Writes `bench_json(records)` to `path`.
void write_bench_json(const std::string& path,
                      const std::vector<BenchJsonRecord>& records);

}  // namespace rt::experiments
