#include "sim/ego_vehicle.hpp"

#include <algorithm>

namespace rt::sim {

EgoVehicle::EgoVehicle(double x, double speed, EgoLimits limits)
    : x_(x), v_(speed), limits_(limits) {}

void EgoVehicle::step(double dt, double accel_command) {
  const double target =
      std::clamp(accel_command, -limits_.max_decel, limits_.max_accel);
  // Jerk-limited actuator: the achieved acceleration slews toward the
  // command, so a sudden EB command still takes ~0.5 s to reach full force.
  const double max_delta = limits_.max_jerk * dt;
  a_ += std::clamp(target - a_, -max_delta, max_delta);

  double v_next = v_ + a_ * dt;
  if (v_next < 0.0) {
    // The vehicle does not roll backward: braking saturates at standstill.
    v_next = 0.0;
    a_ = 0.0;
  }
  if (v_next > limits_.max_speed) {
    v_next = limits_.max_speed;
    a_ = std::min(a_, 0.0);
  }
  x_ += (v_ + v_next) / 2.0 * dt;
  v_ = v_next;
}

}  // namespace rt::sim
