#include "sim/actor.hpp"

#include <algorithm>

namespace rt::sim {

Actor::Actor(ActorId id, ActorType type, math::Vec2 position,
             StartTrigger trigger, std::vector<Waypoint> route)
    : id_(id),
      type_(type),
      dims_(default_dimensions(type)),
      trigger_(trigger),
      route_(std::move(route)) {
  state_.position = position;
}

void Actor::maybe_start(double sim_time, double ego_x) {
  if (started_) return;
  switch (trigger_.kind) {
    case StartTrigger::Kind::kImmediate:
      started_ = true;
      break;
    case StartTrigger::Kind::kAtTime:
      started_ = sim_time >= trigger_.value;
      break;
    case StartTrigger::Kind::kEgoWithin:
      started_ = (state_.position.x - ego_x) <= trigger_.value;
      break;
  }
}

void Actor::step(double dt, double sim_time, double ego_x) {
  maybe_start(sim_time, ego_x);
  const math::Vec2 old_velocity = state_.velocity;
  if (!started_ || route_finished()) {
    state_.velocity = {0.0, 0.0};
    state_.acceleration = (state_.velocity - old_velocity) / dt;
    return;
  }
  // Consume distance along the route; a fast actor may pass several
  // waypoints within one step.
  double budget = route_[next_waypoint_].speed * dt;
  while (budget > 0.0 && !route_finished()) {
    const Waypoint& wp = route_[next_waypoint_];
    const math::Vec2 delta = wp.target - state_.position;
    const double dist = delta.norm();
    if (dist <= budget) {
      state_.position = wp.target;
      budget -= dist;
      ++next_waypoint_;
      if (!route_finished()) {
        // Re-scale the leftover distance budget to the next leg's speed.
        budget = budget / std::max(wp.speed, 1e-9) *
                 route_[next_waypoint_].speed;
      }
    } else {
      state_.position += delta * (budget / dist);
      budget = 0.0;
    }
  }
  if (route_finished()) {
    state_.velocity = {0.0, 0.0};
  } else {
    const Waypoint& wp = route_[next_waypoint_];
    const math::Vec2 delta = wp.target - state_.position;
    const double dist = delta.norm();
    state_.velocity =
        dist > 1e-9 ? delta * (wp.speed / dist) : math::Vec2{0.0, 0.0};
  }
  state_.acceleration = (state_.velocity - old_velocity) / dt;
}

}  // namespace rt::sim
