#include "sim/invariants.hpp"

#include <cmath>
#include <set>
#include <sstream>
#include <string>

namespace rt::sim {

namespace {

std::string fmt(double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

double speed_cap(ActorType type, const ActorEnvelope& env) {
  return type == ActorType::kPedestrian ? env.max_pedestrian_speed
                                        : env.max_vehicle_speed;
}

bool footprints_overlap(const math::Vec2& pa, const Dimensions& da,
                        const math::Vec2& pb, const Dimensions& db) {
  return std::abs(pa.x - pb.x) < (da.length + db.length) / 2.0 &&
         std::abs(pa.y - pb.y) < (da.width + db.width) / 2.0;
}

}  // namespace

std::string InvariantReport::to_string() const {
  std::string out;
  for (const auto& v : violations) {
    if (!out.empty()) out += '\n';
    out += v.invariant + ": " + v.detail;
  }
  return out;
}

InvariantReport check_scenario_structure(const Scenario& sc,
                                         const ActorEnvelope& env) {
  InvariantReport report;
  if (sc.key.empty()) report.add("identity", "empty scenario key");
  if (!(sc.duration > 0.0) || !std::isfinite(sc.duration) ||
      sc.duration > 600.0) {
    report.add("duration", "duration " + fmt(sc.duration) +
                               " outside (0, 600] s");
  }
  if (sc.actors.empty()) report.add("actors", "scenario has no actors");

  std::set<ActorId> ids;
  bool target_found = false;
  for (const Actor& a : sc.actors) {
    const std::string who = "actor " + std::to_string(a.id());
    if (a.id() <= 0) report.add("actor-ids", who + " has non-positive id");
    if (!ids.insert(a.id()).second) {
      report.add("actor-ids", who + " id is duplicated");
    }
    if (a.id() == sc.target_id) target_found = true;

    const math::Vec2 pos = a.state().position;
    if (std::abs(pos.y) > env.max_abs_y || pos.x < env.min_x ||
        pos.x > env.max_x) {
      report.add("spawn-bounds", who + " spawns at (" + fmt(pos.x) + ", " +
                                     fmt(pos.y) + ") outside the road");
    }
  }
  if (!target_found) {
    report.add("target", "target id " + std::to_string(sc.target_id) +
                             " matches no actor");
  }

  // Footprint overlaps at spawn: the ego against every actor, and static
  // actor pairs against each other (a world born interpenetrating is not a
  // scenario any generator should emit).
  const World world = sc.make_world();
  if (world.collision()) {
    report.add("spawn-overlap", "an actor spawns overlapping the ego");
  }
  for (std::size_t i = 0; i < sc.actors.size(); ++i) {
    for (std::size_t j = i + 1; j < sc.actors.size(); ++j) {
      const Actor& a = sc.actors[i];
      const Actor& b = sc.actors[j];
      if (footprints_overlap(a.state().position, a.dims(),
                             b.state().position, b.dims())) {
        report.add("spawn-overlap",
                   "actors " + std::to_string(a.id()) + " and " +
                       std::to_string(b.id()) + " spawn overlapping at (" +
                       fmt(a.state().position.x) + ", " +
                       fmt(a.state().position.y) + ")");
      }
    }
  }
  return report;
}

InvariantReport check_cruise_replay(const Scenario& sc,
                                    const ActorEnvelope& env, double dt) {
  InvariantReport report;
  World world = sc.make_world();
  EgoEnvelopeChecker ego_checker(sc.ego.limits());
  const int steps = static_cast<int>(std::ceil(sc.duration / dt));

  struct Track {
    math::Vec2 prev_pos;
    double prev_speed{0.0};
    bool speed_flagged{false};
    bool teleport_flagged{false};
    bool bounds_flagged{false};
  };
  std::vector<Track> tracks;
  tracks.reserve(world.actors().size());
  for (const Actor& a : world.actors()) {
    tracks.push_back({a.state().position, a.state().velocity.norm()});
  }

  for (int i = 0; i < steps; ++i) {
    world.step(dt, 0.0);
    const double t = world.time();
    ego_checker.observe(t, world.ego().speed(), world.ego().acceleration(),
                        dt, report);
    for (std::size_t k = 0; k < world.actors().size(); ++k) {
      const Actor& a = world.actors()[k];
      Track& track = tracks[k];
      const std::string who = "actor " + std::to_string(a.id());
      const math::Vec2 pos = a.state().position;
      const double speed = a.state().velocity.norm();
      const double cap = speed_cap(a.type(), env);

      if (!track.speed_flagged && speed > cap + 1e-9) {
        track.speed_flagged = true;
        report.add("speed-cap", who + " reaches " + fmt(speed) +
                                    " m/s (cap " + fmt(cap) + ") at t=" +
                                    fmt(t));
      }
      // Velocity/displacement consistency: a step may straddle one waypoint
      // switch, so the bound is the larger of the straddled speeds.
      const double bound =
          std::max(track.prev_speed, speed) * dt + 1e-6;
      const double moved = (pos - track.prev_pos).norm();
      if (!track.teleport_flagged && moved > bound) {
        track.teleport_flagged = true;
        report.add("teleport", who + " moves " + fmt(moved) + " m in one " +
                                   fmt(dt) + " s step at t=" + fmt(t));
      }
      if (!track.bounds_flagged &&
          (std::abs(pos.y) > env.max_abs_y || pos.x < env.min_x ||
           pos.x > env.max_x)) {
        track.bounds_flagged = true;
        report.add("road-bounds", who + " leaves the road at (" +
                                      fmt(pos.x) + ", " + fmt(pos.y) +
                                      ") at t=" + fmt(t));
      }
      track.prev_pos = pos;
      track.prev_speed = speed;
    }
  }

  // Reachability: the replaying ego crosses every x it ever will, so any
  // trigger still pending here can never fire in any run of this scenario.
  for (const Actor& a : world.actors()) {
    if (!a.started()) {
      report.add("trigger-unreachable",
                 "actor " + std::to_string(a.id()) +
                     " never starts within duration " + fmt(sc.duration) +
                     " s (ego ends at x=" + fmt(world.ego().x()) + ")");
    }
  }
  return report;
}

InvariantReport check_scenario(const Scenario& sc, const ActorEnvelope& env) {
  InvariantReport report = check_scenario_structure(sc, env);
  InvariantReport replay = check_cruise_replay(sc, env);
  for (auto& v : replay.violations) report.violations.push_back(std::move(v));
  return report;
}

void EgoEnvelopeChecker::observe(double time, double speed, double accel,
                                 double dt, InvariantReport& report) {
  if (!speed_flagged_ &&
      (speed < -tol_ || speed > limits_.max_speed + tol_)) {
    speed_flagged_ = true;
    report.add("ego-speed", "speed " + fmt(speed) + " m/s outside [0, " +
                                fmt(limits_.max_speed) + "] at t=" +
                                fmt(time));
  }
  if (!accel_flagged_ && (accel > limits_.max_accel + tol_ ||
                          accel < -limits_.max_decel - tol_)) {
    accel_flagged_ = true;
    report.add("ego-accel", "accel " + fmt(accel) + " m/s^2 outside [-" +
                                fmt(limits_.max_decel) + ", " +
                                fmt(limits_.max_accel) + "] at t=" +
                                fmt(time));
  }
  if (has_prev_ && dt > 0.0) {
    const double jerk = std::abs(accel - prev_accel_) / dt;
    if (!jerk_flagged_ && jerk > limits_.max_jerk + tol_) {
      jerk_flagged_ = true;
      report.add("ego-jerk", "jerk " + fmt(jerk) + " m/s^3 exceeds " +
                                 fmt(limits_.max_jerk) + " at t=" +
                                 fmt(time));
    }
  }
  prev_accel_ = accel;
  has_prev_ = true;
}

}  // namespace rt::sim
