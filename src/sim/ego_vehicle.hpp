#pragma once

#include "sim/types.hpp"

namespace rt::sim {

/// Actuation limits of the ego vehicle's longitudinal dynamics.
///
/// `comfort_decel` parameterizes the safety model's stopping distance
/// (Def. 3: "maximum comfortable deceleration"); `max_decel` is what
/// emergency braking can command.
struct EgoLimits {
  double max_accel{2.5};      ///< m/s^2
  double comfort_decel{2.0};  ///< m/s^2, used for d_stop
  double max_decel{6.0};      ///< m/s^2, emergency braking
  double max_jerk{12.0};      ///< m/s^3, actuator slew rate
  double max_speed{kph_to_mps(50.0)};  ///< road speed limit
};

/// The ego vehicle (EV) plant model.
///
/// Only longitudinal dynamics are modeled (the paper's safety model and all
/// five driving scenarios are longitudinal; the EV lane-keeps at y == 0).
/// The ADS commands a desired acceleration; a jerk-limited first-order
/// actuator tracks it, mimicking the smoothing role of Apollo's PID +
/// mechanical lag described in §II-A.
class EgoVehicle {
 public:
  EgoVehicle() = default;
  EgoVehicle(double x, double speed, EgoLimits limits = {});

  [[nodiscard]] double x() const { return x_; }
  [[nodiscard]] double speed() const { return v_; }
  [[nodiscard]] double acceleration() const { return a_; }
  [[nodiscard]] const Dimensions& dims() const { return dims_; }
  [[nodiscard]] const EgoLimits& limits() const { return limits_; }
  /// Longitudinal position of the front bumper.
  [[nodiscard]] double front_x() const { return x_ + dims_.length / 2.0; }

  /// Advances the plant by `dt` under the commanded acceleration
  /// (clamped into [-max_decel, max_accel], slew-limited by max_jerk).
  void step(double dt, double accel_command);

 private:
  double x_{0.0};
  double v_{0.0};
  double a_{0.0};
  Dimensions dims_{default_dimensions(ActorType::kVehicle)};
  EgoLimits limits_{};
};

}  // namespace rt::sim
