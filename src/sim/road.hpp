#pragma once

namespace rt::sim {

/// A straight two-lane road with a parking lane, modeled after the paper's
/// "Borregas Avenue" test road (speed limit 50 kph).
///
/// Geometry (y = lateral, meters):
///   +3.7 : center of the opposite/adjacent traffic lane
///    0.0 : center of the ego lane (the EV drives along y == 0)
///   -3.0 : center of the parking lane (DS-3 parked vehicle, DS-4 pedestrian)
struct Road {
  static constexpr double kLaneWidth = 3.7;
  static constexpr double kEgoLaneCenter = 0.0;
  static constexpr double kAdjacentLaneCenter = 3.7;
  static constexpr double kParkingLaneCenter = -3.0;
  static constexpr double kSpeedLimitKph = 50.0;

  /// True if an object of the given width centered at lateral offset `y`
  /// overlaps the ego lane corridor swept by an EV of width `ego_width`.
  /// This is the ground-truth "in-path" notion used by the safety model.
  [[nodiscard]] static constexpr bool overlaps_ego_corridor(
      double y, double width, double ego_width) {
    const double half = (width + ego_width) / 2.0;
    return y > -half && y < half;
  }

  /// True if the lateral offset lies within the ego *lane* boundaries
  /// (used by the scenario matcher's "TO in EV-lane" predicate, Table I).
  [[nodiscard]] static constexpr bool in_ego_lane(double y) {
    return y > -kLaneWidth / 2.0 && y < kLaneWidth / 2.0;
  }
};

}  // namespace rt::sim
