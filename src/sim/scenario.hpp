#pragma once

#include <string>
#include <vector>

#include "sim/actor.hpp"
#include "sim/ego_vehicle.hpp"
#include "sim/world.hpp"
#include "stats/rng.hpp"

namespace rt::sim {

/// Tunable knobs of a scenario family. Every registered generator reads the
/// subset that makes sense for its family and ignores the rest; each
/// `ScenarioSpec` carries the family defaults that reproduce the paper's
/// hand-scripted LGSVL world exactly, so instantiating a family without
/// overrides is bit-identical to the historical factory.
struct ScenarioParams {
  double duration{40.0};          ///< seconds of simulated time
  double ego_speed_kph{45.0};     ///< EV cruise speed
  double target_speed_kph{25.0};  ///< scripted speed of the target vehicle
  double target_gap{60.0};        ///< initial ego->target longitudinal gap, m
  double pedestrian_gait{1.05};   ///< walking speed of scripted pedestrians, m/s
  double trigger_distance{70.0};  ///< ego-within distance that starts motion
  double walk_distance{5.0};      ///< approach distance before standing, m
  int npc_vehicles{3};            ///< NPC vehicle density (random families)
  int npc_pedestrians{3};         ///< sidewalk pedestrian count (random families)
};

/// A fully-specified driving scenario: ego start state + scripted actors.
///
/// Mirrors the LGSVL Python scenario scripts the paper describes: all five
/// take place on a straight 50 kph road ("Borregas Avenue"); the EV cruises
/// at 45 kph unless the scenario says otherwise.
struct Scenario {
  std::string key;  ///< registry key of the family this was built from
  std::string name;
  std::string description;
  double duration{40.0};            ///< seconds of simulated time
  double ego_cruise_speed{kph_to_mps(45.0)};
  EgoVehicle ego{0.0, kph_to_mps(45.0)};
  std::vector<Actor> actors;
  /// The scripted actor the paper designates as the attack target
  /// (TV in DS-1/3/5, the pedestrian in DS-2/4).
  ActorId target_id{0};

  /// Instantiates the ground-truth world for one run.
  [[nodiscard]] World make_world() const { return World(ego, actors); }
};

/// DS-1: EV follows a target vehicle driving at 25 kph that starts 60 m
/// ahead in the ego lane. Evaluates Disappear / Move_Out on a vehicle.
[[nodiscard]] Scenario make_ds1(const ScenarioParams& p);

/// DS-2: a pedestrian illegally crosses the street ahead of the EV; the
/// golden run stops >= 10 m short. Evaluates Disappear / Move_Out on a
/// pedestrian.
[[nodiscard]] Scenario make_ds2(const ScenarioParams& p);

/// DS-3: a target vehicle is parked in the parking lane; the golden run
/// lane-keeps. Evaluates Move_In on a vehicle.
[[nodiscard]] Scenario make_ds3(const ScenarioParams& p);

/// DS-4: a pedestrian walks longitudinally toward the EV in the parking
/// lane for 5 m, then stands still; the golden run slows to 35 kph.
/// Evaluates Move_In on a pedestrian.
[[nodiscard]] Scenario make_ds4(const ScenarioParams& p);

/// DS-5: EV follows a target vehicle as in DS-1 with additional NPC
/// vehicles at randomized speeds/positions. Baseline-random scenario.
[[nodiscard]] Scenario make_ds5(const ScenarioParams& p, stats::Rng& rng);

/// cut-in: a faster vehicle in the adjacent lane overtakes-and-merges into
/// the ego lane ahead of the EV, then slows to target speed. Not in the
/// paper; exercises Move_* on a laterally moving vehicle victim.
[[nodiscard]] Scenario make_cut_in(const ScenarioParams& p);

/// staggered-crossing: two pedestrians cross the street from opposite
/// curbs, the second offset further down the road so the EV meets them in
/// sequence. Not in the paper; stresses multi-victim selection.
[[nodiscard]] Scenario make_staggered_crossing(const ScenarioParams& p);

/// dense-follow: DS-1-style car following inside randomized dense traffic —
/// NPC vehicles drawn into random lanes (oncoming or parked) plus sidewalk
/// pedestrians. Not in the paper; a harder, noisier DS-1.
[[nodiscard]] Scenario make_dense_follow(const ScenarioParams& p,
                                         stats::Rng& rng);

/// intersection-turn: a vehicle waits at a side-street mouth on the right
/// curb, pulls out when the EV comes within the trigger distance, turns
/// into the ego lane ahead and proceeds at target speed; an oncoming NPC
/// occupies the adjacent lane. Composite: lateral crossing + car following.
[[nodiscard]] Scenario make_intersection_turn(const ScenarioParams& p);

/// occlusion-reveal: a pedestrian waits between a parked vehicle and the
/// right curb (occluded from the EV's line of sight) and crosses the street
/// when the EV comes within the trigger distance; further parked vehicles
/// clutter the parking lane ahead. Composite: static occluder + crossing.
[[nodiscard]] Scenario make_occlusion_reveal(const ScenarioParams& p,
                                             stats::Rng& rng);

/// multi-lane-overtake: the EV follows a slow lead vehicle while a faster
/// NPC comes up from behind in the adjacent lane, overtakes both, and
/// merges into the ego lane ahead of the lead. Composite: car following +
/// adjacent-lane pass + merge across the corridor.
[[nodiscard]] Scenario make_multi_lane_overtake(const ScenarioParams& p);

}  // namespace rt::sim
