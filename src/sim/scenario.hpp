#pragma once

#include <string>
#include <vector>

#include "sim/actor.hpp"
#include "sim/ego_vehicle.hpp"
#include "sim/world.hpp"
#include "stats/rng.hpp"

namespace rt::sim {

/// Identifier of the five driving scenarios of §V-C.
enum class ScenarioId : std::uint8_t { kDs1, kDs2, kDs3, kDs4, kDs5 };

[[nodiscard]] constexpr const char* to_string(ScenarioId id) {
  switch (id) {
    case ScenarioId::kDs1:
      return "DS-1";
    case ScenarioId::kDs2:
      return "DS-2";
    case ScenarioId::kDs3:
      return "DS-3";
    case ScenarioId::kDs4:
      return "DS-4";
    case ScenarioId::kDs5:
      return "DS-5";
  }
  return "?";
}

/// A fully-specified driving scenario: ego start state + scripted actors.
///
/// Mirrors the LGSVL Python scenario scripts the paper describes: all five
/// take place on a straight 50 kph road ("Borregas Avenue"); the EV cruises
/// at 45 kph unless the scenario says otherwise.
struct Scenario {
  ScenarioId id{ScenarioId::kDs1};
  std::string name;
  std::string description;
  double duration{40.0};            ///< seconds of simulated time
  double ego_cruise_speed{kph_to_mps(45.0)};
  EgoVehicle ego{0.0, kph_to_mps(45.0)};
  std::vector<Actor> actors;
  /// The scripted actor the paper designates as the attack target
  /// (TV in DS-1/3/5, the pedestrian in DS-2/4).
  ActorId target_id{0};

  /// Instantiates the ground-truth world for one run.
  [[nodiscard]] World make_world() const { return World(ego, actors); }
};

/// DS-1: EV follows a target vehicle driving at 25 kph that starts 60 m
/// ahead in the ego lane. Evaluates Disappear / Move_Out on a vehicle.
[[nodiscard]] Scenario make_ds1();

/// DS-2: a pedestrian illegally crosses the street ahead of the EV; the
/// golden run stops >= 10 m short. Evaluates Disappear / Move_Out on a
/// pedestrian.
[[nodiscard]] Scenario make_ds2();

/// DS-3: a target vehicle is parked in the parking lane; the golden run
/// lane-keeps. Evaluates Move_In on a vehicle.
[[nodiscard]] Scenario make_ds3();

/// DS-4: a pedestrian walks longitudinally toward the EV in the parking
/// lane for 5 m, then stands still; the golden run slows to 35 kph.
/// Evaluates Move_In on a pedestrian.
[[nodiscard]] Scenario make_ds4();

/// DS-5: EV follows a target vehicle as in DS-1 with additional NPC
/// vehicles at randomized speeds/positions. Baseline-random scenario.
[[nodiscard]] Scenario make_ds5(stats::Rng& rng);

/// Builds the scenario with the given id (DS-5 consumes randomness).
[[nodiscard]] Scenario make_scenario(ScenarioId id, stats::Rng& rng);

}  // namespace rt::sim
