#pragma once

#include <string>
#include <vector>

#include "sim/scenario.hpp"

namespace rt::sim {

/// One violated invariant: a stable short key (what broke) plus the
/// concrete evidence (ids, values, timestamps) needed to debug it.
struct InvariantViolation {
  std::string invariant;
  std::string detail;
};

/// Result of an invariant sweep over one scenario. Checks append; a clean
/// scenario produces an empty report.
struct InvariantReport {
  std::vector<InvariantViolation> violations;

  [[nodiscard]] bool ok() const { return violations.empty(); }
  void add(std::string invariant, std::string detail) {
    violations.push_back({std::move(invariant), std::move(detail)});
  }
  /// "invariant: detail" lines joined by '\n' (empty when ok).
  [[nodiscard]] std::string to_string() const;
};

/// Envelope limits scripted actors must respect at every step. The caps are
/// generous relative to anything a generator legitimately scripts (road
/// limit 50 kph; the fastest composite NPC overtakes at ego + 20 kph) so a
/// breach always means a generator bug, never a tight tolerance.
struct ActorEnvelope {
  double max_vehicle_speed{kph_to_mps(80.0)};
  double max_pedestrian_speed{2.5};  ///< m/s; sampled gaits stay below 1.8
  double max_abs_y{7.0};             ///< road reservation half-width, m
  double min_x{-500.0};              ///< oncoming NPCs script down to -200
  double max_x{3001.0};              ///< generators aim at kFarAhead = 3000
};

/// Structural invariants of a freshly generated scenario (t = 0): positive
/// finite duration, unique positive actor ids, a resolvable target actor,
/// waypoint speeds/targets inside the actor envelope, actors inside the
/// road reservation, and no footprint overlapping the ego at spawn.
[[nodiscard]] InvariantReport check_scenario_structure(
    const Scenario& sc, const ActorEnvelope& env = {});

/// Kinematic/reachability invariants over a cruise replay: the ego holds
/// its cruise speed and never reacts (the same replay the registry uses to
/// resolve victim geometry), so every EgoWithin trigger the scenario can
/// ever fire, fires here. Checks, at every step: per-class speed caps,
/// velocity/displacement consistency across waypoint switches, road-bounds
/// containment; and at the end of the replay, that every actor's trigger
/// fired and its route made progress. Collisions are deliberately NOT
/// checked — the replaying ego never brakes, so contact is expected in
/// crossing families; collision-freedom is a *closed-loop* property checked
/// by experiments::check_clean_run.
[[nodiscard]] InvariantReport check_cruise_replay(
    const Scenario& sc, const ActorEnvelope& env = {},
    double dt = 1.0 / 15.0);

/// Both structural and cruise-replay invariants.
[[nodiscard]] InvariantReport check_scenario(const Scenario& sc,
                                             const ActorEnvelope& env = {});

/// Streaming checker of the ego plant's actuation envelope, for closed-loop
/// harnesses: feed (speed, accel) after every world step and it validates
/// speed bounds, accel clamps, and the jerk slew limit between consecutive
/// observations. Tolerance absorbs the discrete integrator.
class EgoEnvelopeChecker {
 public:
  explicit EgoEnvelopeChecker(EgoLimits limits = {}, double tol = 1e-6)
      : limits_(limits), tol_(tol) {}

  /// Validates one post-step sample; appends violations to `report`. Each
  /// envelope kind reports only its first breach (a broken plant breaks it
  /// every step; one dated line is the useful evidence).
  void observe(double time, double speed, double accel, double dt,
               InvariantReport& report);

 private:
  EgoLimits limits_;
  double tol_;
  double prev_accel_{0.0};
  bool has_prev_{false};
  bool speed_flagged_{false};
  bool accel_flagged_{false};
  bool jerk_flagged_{false};
};

}  // namespace rt::sim
