#include "sim/scenario_registry.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

#include "sim/road.hpp"

namespace rt::sim {

namespace {

/// Resolves `VictimGeometry::kAuto` by replaying the family's canonical
/// world (defaults, fixed resolution seed, ego cruising without reacting)
/// and checking whether the designated victim ever overlaps the ego
/// corridor. A family without a resolvable victim defaults to in-corridor,
/// preserving Move_Out as the natural vector for unknown geometries.
VictimGeometry resolve_victim_geometry(const ScenarioSpec& spec) {
  stats::Rng rng(0x9e0);  // local seed: resolution is registration-order-free
  const Scenario sc = spec.generate(spec.defaults, rng);
  World world = sc.make_world();
  const double dt = 1.0 / 15.0;
  const int steps = static_cast<int>(std::ceil(sc.duration / dt));
  bool victim_seen = false;
  for (int i = 0; i <= steps; ++i) {
    const auto g = world.ground_truth_for(sc.target_id);
    if (g) {
      victim_seen = true;
      if (Road::overlaps_ego_corridor(g->rel_position.y, g->dims.width,
                                      world.ego().dims().width)) {
        return VictimGeometry::kInCorridor;
      }
    }
    world.step(dt, 0.0);
  }
  return victim_seen ? VictimGeometry::kOutOfCorridor
                     : VictimGeometry::kInCorridor;
}

}  // namespace

void ScenarioRegistry::register_scenario(ScenarioSpec spec) {
  if (spec.key.empty()) {
    throw std::invalid_argument("ScenarioRegistry: empty scenario key");
  }
  if (!spec.generate) {
    throw std::invalid_argument("ScenarioRegistry: scenario '" + spec.key +
                                "' has no generator");
  }
  if (index_.count(spec.key) != 0) {
    throw std::invalid_argument("ScenarioRegistry: duplicate scenario key '" +
                                spec.key + "'");
  }
  if (spec.victim_geometry == VictimGeometry::kAuto) {
    spec.victim_geometry = resolve_victim_geometry(spec);
  }
  index_.emplace(spec.key, specs_.size());
  specs_.push_back(std::move(spec));
}

bool ScenarioRegistry::contains(const std::string& key) const {
  return index_.count(key) != 0;
}

const ScenarioSpec& ScenarioRegistry::get(const std::string& key) const {
  const auto it = index_.find(key);
  if (it == index_.end()) {
    std::string known;
    for (const auto& spec : specs_) {
      if (!known.empty()) known += ", ";
      known += spec.key;
    }
    throw std::out_of_range("ScenarioRegistry: unknown scenario '" + key +
                            "' (known: " + known + ")");
  }
  return specs_[it->second];
}

std::size_t ScenarioRegistry::index_of(const std::string& key) const {
  get(key);  // throws with the full key list when absent
  return index_.at(key);
}

std::vector<std::string> ScenarioRegistry::keys() const {
  std::vector<std::string> out;
  out.reserve(specs_.size());
  for (const auto& spec : specs_) out.push_back(spec.key);
  return out;
}

ScenarioParams ScenarioRegistry::defaults(const std::string& key) const {
  return get(key).defaults;
}

Scenario ScenarioRegistry::make(const std::string& key,
                                stats::Rng& rng) const {
  const ScenarioSpec& spec = get(key);
  return spec.generate(spec.defaults, rng);
}

Scenario ScenarioRegistry::make(const std::string& key,
                                const ScenarioParams& params,
                                stats::Rng& rng) const {
  return get(key).generate(params, rng);
}

namespace {

/// Wraps a deterministic generator (one that takes no Rng).
ScenarioSpec::Generator deterministic(Scenario (*fn)(const ScenarioParams&)) {
  return [fn](const ScenarioParams& p, stats::Rng&) { return fn(p); };
}

void register_builtins(ScenarioRegistry& reg) {
  // The paper's five scenarios, in enum-era order — their registry indices
  // (0..4) seed the SH-training RNG streams and must never change.
  {
    ScenarioParams p;  // struct defaults are the DS-1 paper values
    reg.register_scenario(
        {"DS-1",
         "EV follows a 25 kph target vehicle starting 60 m ahead in the ego "
         "lane",
         p, deterministic(&make_ds1)});
  }
  {
    ScenarioParams p;
    p.duration = 35.0;
    reg.register_scenario(
        {"DS-2", "pedestrian illegally crosses the street ahead of the EV",
         p, deterministic(&make_ds2)});
  }
  {
    ScenarioParams p;
    p.duration = 25.0;
    p.target_gap = 120.0;
    reg.register_scenario({"DS-3", "target vehicle parked in the parking lane",
                           p, deterministic(&make_ds3)});
  }
  {
    ScenarioParams p;
    p.duration = 25.0;
    p.target_gap = 110.0;
    p.trigger_distance = 90.0;
    p.pedestrian_gait = 1.4;
    reg.register_scenario(
        {"DS-4",
         "pedestrian walks toward the EV in the parking lane for 5 m, then "
         "stands still",
         p, deterministic(&make_ds4)});
  }
  {
    ScenarioParams p;
    p.pedestrian_gait = 1.3;
    reg.register_scenario(
        {"DS-5",
         "EV follows a target vehicle; NPC vehicles with randomized speeds "
         "and positions share the road",
         p, &make_ds5});
  }
  // Extended families (not in the paper).
  {
    ScenarioParams p;
    p.duration = 35.0;
    p.target_gap = 50.0;
    p.target_speed_kph = 32.0;
    p.trigger_distance = 45.0;
    reg.register_scenario(
        {"cut-in",
         "vehicle in the adjacent lane overtakes and merges into the ego "
         "lane ahead of the EV, then slows to target speed",
         p, deterministic(&make_cut_in)});
  }
  {
    ScenarioParams p;
    p.duration = 40.0;
    reg.register_scenario(
        {"staggered-crossing",
         "two pedestrians cross from opposite curbs, the second staggered "
         "further down the road",
         p, deterministic(&make_staggered_crossing)});
  }
  {
    ScenarioParams p;
    p.npc_vehicles = 5;
    p.pedestrian_gait = 1.3;
    reg.register_scenario(
        {"dense-follow",
         "DS-1-style car following inside randomized dense traffic: NPCs "
         "drawn into random lanes plus sidewalk pedestrians",
         p, &make_dense_follow});
  }
  // Composite families (PR 6): seeds for the procedural scenario sampler.
  {
    ScenarioParams p;
    p.duration = 35.0;
    p.target_gap = 40.0;
    p.target_speed_kph = 30.0;
    p.trigger_distance = 70.0;
    reg.register_scenario(
        {"intersection-turn",
         "vehicle pulls out of a side street and turns into the ego lane "
         "ahead of the EV; oncoming NPC in the adjacent lane",
         p, deterministic(&make_intersection_turn)});
  }
  {
    ScenarioParams p;
    p.duration = 35.0;
    p.target_gap = 80.0;
    p.trigger_distance = 75.0;
    p.pedestrian_gait = 1.2;
    p.npc_vehicles = 2;
    p.npc_pedestrians = 2;
    reg.register_scenario(
        {"occlusion-reveal",
         "pedestrian steps out from between a parked vehicle and the curb "
         "and crosses the street; parked NPC clutter ahead",
         p, &make_occlusion_reveal});
  }
  {
    ScenarioParams p;
    p.duration = 40.0;
    p.target_speed_kph = 28.0;
    p.target_gap = 55.0;
    p.trigger_distance = 60.0;
    reg.register_scenario(
        {"multi-lane-overtake",
         "EV follows a slow lead while a faster NPC overtakes both in the "
         "adjacent lane and merges ahead of the lead",
         p, deterministic(&make_multi_lane_overtake)});
  }
}

}  // namespace

ScenarioRegistry& ScenarioRegistry::global() {
  static ScenarioRegistry* reg = [] {
    auto* r = new ScenarioRegistry();
    register_builtins(*r);
    return r;
  }();
  return *reg;
}

Scenario make_scenario(const std::string& key, stats::Rng& rng) {
  return ScenarioRegistry::global().make(key, rng);
}

namespace {

struct ParamField {
  const char* name;
  double ScenarioParams::*dfield;
  int ScenarioParams::*ifield;
};

constexpr ParamField kParamFields[] = {
    {"duration", &ScenarioParams::duration, nullptr},
    {"ego_speed_kph", &ScenarioParams::ego_speed_kph, nullptr},
    {"target_speed_kph", &ScenarioParams::target_speed_kph, nullptr},
    {"target_gap", &ScenarioParams::target_gap, nullptr},
    {"pedestrian_gait", &ScenarioParams::pedestrian_gait, nullptr},
    {"trigger_distance", &ScenarioParams::trigger_distance, nullptr},
    {"walk_distance", &ScenarioParams::walk_distance, nullptr},
    {"npc_vehicles", nullptr, &ScenarioParams::npc_vehicles},
    {"npc_pedestrians", nullptr, &ScenarioParams::npc_pedestrians},
};

const ParamField& find_param(const std::string& name) {
  for (const ParamField& f : kParamFields) {
    if (name == f.name) return f;
  }
  std::string known;
  for (const ParamField& f : kParamFields) {
    if (!known.empty()) known += ", ";
    known += f.name;
  }
  throw std::invalid_argument("unknown scenario parameter '" + name +
                              "' (known: " + known + ")");
}

}  // namespace

std::vector<std::string> scenario_param_names() {
  std::vector<std::string> out;
  for (const ParamField& f : kParamFields) out.emplace_back(f.name);
  return out;
}

void set_scenario_param(ScenarioParams& params, const std::string& name,
                        double value) {
  const ParamField& f = find_param(name);
  if (f.dfield != nullptr) {
    params.*(f.dfield) = value;
  } else {
    params.*(f.ifield) = static_cast<int>(std::llround(value));
  }
}

double get_scenario_param(const ScenarioParams& params,
                          const std::string& name) {
  const ParamField& f = find_param(name);
  return f.dfield != nullptr ? params.*(f.dfield)
                             : static_cast<double>(params.*(f.ifield));
}

}  // namespace rt::sim
