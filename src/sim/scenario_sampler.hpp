#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/scenario_registry.hpp"

namespace rt::sim {

/// One procedurally sampled scenario configuration.
///
/// A sample is a *pure function* of `(template_key, seed)`: the parameter
/// draw uses a counter-based RNG stream keyed on the template name (not on
/// registry order, so registering further families never changes existing
/// samples), and stochastic families draw their NPC topology from a second
/// stream derived the same way. Two consequences the fuzz layer relies on:
/// a failing sample is fully reproduced by its corpus line
/// ("<template> <seed>"), and sampling is safe from any number of threads.
struct SampledScenario {
  std::string template_key;
  std::uint64_t seed{0};
  /// The sampled parameter overrides (starts from the family defaults).
  ScenarioParams params{};

  /// The canonical world of this sample: instantiates the family with the
  /// sampled params and the sample's own topology stream. Every call
  /// returns a bit-identical scenario.
  [[nodiscard]] Scenario make() const;

  /// Registrable spec string: "template=<key> seed=<n> <param>=<value>...".
  /// Printed whenever a sample violates an invariant, so a fuzz finding can
  /// be re-registered (or pinned in the corpus) verbatim.
  [[nodiscard]] std::string spec_string() const;

  /// The corpus line of this sample: "<template> <seed>".
  [[nodiscard]] std::string corpus_line() const;
};

/// Sampling range of one named ScenarioParams field.
struct ParamRange {
  std::string name;
  double lo{0.0};
  double hi{0.0};
  bool integer{false};
};

/// Seeded procedural generator of scenario configurations over the families
/// of a ScenarioRegistry.
///
/// Each registered family gets a per-template table of parameter ranges:
/// plausible bands around the family defaults, clamped so that a correct
/// (unattacked) ADS survives every sample — the sampler generates the
/// *valid* scenario space, and the invariant suite (sim/invariants.hpp,
/// experiments/scenario_search.hpp) is what makes that claim enforceable
/// without per-scenario goldens. Range tables can be overridden per
/// template for targeted fuzzing.
class ScenarioSampler {
 public:
  explicit ScenarioSampler(
      const ScenarioRegistry& registry = ScenarioRegistry::global());

  /// The registry keys this sampler draws from (registration order).
  [[nodiscard]] std::vector<std::string> templates() const;

  /// The range table of one template. Throws std::out_of_range (listing
  /// known templates) when absent.
  [[nodiscard]] const std::vector<ParamRange>& ranges(
      const std::string& template_key) const;

  /// Replaces the range table of one template (targeted fuzzing).
  void set_ranges(const std::string& template_key,
                  std::vector<ParamRange> ranges);

  /// The pure function (template, seed) -> sampled configuration.
  [[nodiscard]] SampledScenario sample(const std::string& template_key,
                                       std::uint64_t seed) const;

 private:
  const ScenarioRegistry* registry_;
  std::unordered_map<std::string, std::vector<ParamRange>> ranges_;
};

/// One corpus entry: a (template, seed) pair, the full identity of a
/// sampled scenario.
struct CorpusEntry {
  std::string template_key;
  std::uint64_t seed{0};
};

/// Parses corpus text: one "<template> <seed>" per line; blank lines and
/// '#' comments are skipped. Throws std::invalid_argument on a malformed
/// line (naming the line number).
[[nodiscard]] std::vector<CorpusEntry> parse_corpus(const std::string& text);

/// Reads and parses a corpus file. Throws std::runtime_error when the file
/// cannot be opened.
[[nodiscard]] std::vector<CorpusEntry> load_corpus(const std::string& path);

/// Shrinks a failing parameter set toward the family defaults while the
/// predicate keeps failing: per-field default substitution, then bisection
/// toward the default. Returns a minimal failing configuration (the
/// predicate is guaranteed to fail on the result). `still_fails` must be
/// deterministic; it is called O(fields * passes * bisect_iters) times.
[[nodiscard]] ScenarioParams shrink_params(
    const ScenarioParams& failing, const ScenarioParams& defaults,
    const std::function<bool(const ScenarioParams&)>& still_fails,
    int bisect_iters = 8);

}  // namespace rt::sim
