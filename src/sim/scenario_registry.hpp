#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/scenario.hpp"

namespace rt::sim {

/// Where a family's designated victim sits relative to the ego corridor —
/// which decides the natural attack vector against it (paper Table I: the
/// Move_In vector only launches against victims that *stay out* of the
/// corridor, every in-corridor victim is attacked with Move_Out/Disappear).
enum class VictimGeometry : std::uint8_t {
  /// Resolve from the family's canonical world at registration time: the
  /// registry replays the defaults-built scenario (ego cruising) and checks
  /// whether the victim ever overlaps the ego corridor.
  kAuto,
  /// Victim occupies or enters the ego corridor (DS-1/DS-2/DS-5, cut-in,
  /// crossings) — Move_Out is the natural vector.
  kInCorridor,
  /// Victim keeps out of the corridor for the whole scenario (DS-3/DS-4
  /// parking-lane geometries) — Move_In is the natural vector.
  kOutOfCorridor,
};

[[nodiscard]] constexpr const char* to_string(VictimGeometry g) {
  switch (g) {
    case VictimGeometry::kAuto:
      return "auto";
    case VictimGeometry::kInCorridor:
      return "in-corridor";
    case VictimGeometry::kOutOfCorridor:
      return "out-of-corridor";
  }
  return "?";
}

/// One registered scenario family: a string key, a human description, the
/// parameter defaults that reproduce the family's canonical world, and the
/// generator that instantiates a `Scenario` from parameters (+ randomness
/// for stochastic families; deterministic families simply ignore the Rng).
struct ScenarioSpec {
  using Generator =
      std::function<Scenario(const ScenarioParams&, stats::Rng&)>;

  std::string key;
  std::string description;
  ScenarioParams defaults{};
  Generator generate;
  /// Victim-corridor metadata. Leave `kAuto` (the default) to have the
  /// registry derive it from the canonical world at registration, or set
  /// explicitly to override. After registration `get(key).victim_geometry`
  /// is always a resolved (non-auto) value, so downstream consumers (e.g.
  /// the transfer matrix's natural-vector choice) never string-match on
  /// family keys.
  VictimGeometry victim_geometry{VictimGeometry::kAuto};
};

/// Process-wide registry of scenario families. The paper's DS-1..DS-5 are
/// pre-registered (in that order, so their indices are stable across
/// releases), followed by the extended families; user code can append its
/// own families at startup and drive them through the same campaign
/// machinery.
///
/// Lookup/instantiation is const and safe to call concurrently (the
/// parallel campaign engine does); registration is not synchronized and
/// belongs in single-threaded startup code.
class ScenarioRegistry {
 public:
  /// Registers a new family. Throws std::invalid_argument on an empty key,
  /// a missing generator, or a duplicate key.
  void register_scenario(ScenarioSpec spec);

  [[nodiscard]] bool contains(const std::string& key) const;

  /// Throws std::out_of_range (listing the known keys) when absent.
  [[nodiscard]] const ScenarioSpec& get(const std::string& key) const;

  /// Registration-stable index of the family (DS-1..DS-5 are 0..4). Used
  /// to derive deterministic RNG streams from a scenario choice.
  [[nodiscard]] std::size_t index_of(const std::string& key) const;

  /// Keys in registration order — stable for the lifetime of the registry
  /// (appending new families never reorders existing ones).
  [[nodiscard]] std::vector<std::string> keys() const;

  [[nodiscard]] std::size_t size() const { return specs_.size(); }

  /// The family defaults (a copy — tweak and pass back to `make`).
  [[nodiscard]] ScenarioParams defaults(const std::string& key) const;

  /// Instantiates the family with its paper-default parameters.
  [[nodiscard]] Scenario make(const std::string& key, stats::Rng& rng) const;

  /// Instantiates the family with explicit parameter overrides.
  [[nodiscard]] Scenario make(const std::string& key,
                              const ScenarioParams& params,
                              stats::Rng& rng) const;

  /// The process-wide registry, with all built-in families registered.
  [[nodiscard]] static ScenarioRegistry& global();

 private:
  std::vector<ScenarioSpec> specs_;
  std::unordered_map<std::string, std::size_t> index_;
};

/// Builds a scenario from the global registry with family defaults.
/// (Deterministic families ignore `rng`.)
[[nodiscard]] Scenario make_scenario(const std::string& key, stats::Rng& rng);

/// Named access to ScenarioParams fields, for CLI flags and grid sweeps.
/// Unknown names throw std::invalid_argument listing the valid ones.
[[nodiscard]] std::vector<std::string> scenario_param_names();
void set_scenario_param(ScenarioParams& params, const std::string& name,
                        double value);
[[nodiscard]] double get_scenario_param(const ScenarioParams& params,
                                        const std::string& name);

}  // namespace rt::sim
