#include "sim/scenario.hpp"

#include "sim/road.hpp"

namespace rt::sim {

namespace {
/// Far-away x used as "drive straight ahead forever".
constexpr double kFarAhead = 3000.0;
}  // namespace

Scenario make_ds1() {
  Scenario s;
  s.id = ScenarioId::kDs1;
  s.name = "DS-1";
  s.description =
      "EV follows a 25 kph target vehicle starting 60 m ahead in the ego "
      "lane";
  s.duration = 40.0;
  s.ego = EgoVehicle(0.0, kph_to_mps(45.0));
  s.target_id = 1;
  s.actors.emplace_back(
      1, ActorType::kVehicle, math::Vec2{60.0, Road::kEgoLaneCenter},
      StartTrigger::immediately(),
      std::vector<Waypoint>{{{kFarAhead, Road::kEgoLaneCenter},
                             kph_to_mps(25.0)}});
  return s;
}

Scenario make_ds2() {
  Scenario s;
  s.id = ScenarioId::kDs2;
  s.name = "DS-2";
  s.description = "pedestrian illegally crosses the street ahead of the EV";
  s.duration = 35.0;
  s.ego = EgoVehicle(0.0, kph_to_mps(45.0));
  s.target_id = 1;
  // The pedestrian waits at the right curb and begins the crossing when the
  // EV is 60 m away, walking at 1.2 m/s all the way to the opposite curb.
  const double start_y = -6.5;
  const double cross_x = 70.0;
  s.actors.emplace_back(
      1, ActorType::kPedestrian, math::Vec2{cross_x, start_y},
      StartTrigger::ego_within(70.0),
      std::vector<Waypoint>{{{cross_x, 6.5}, 1.05}});
  return s;
}

Scenario make_ds3() {
  Scenario s;
  s.id = ScenarioId::kDs3;
  s.name = "DS-3";
  s.description = "target vehicle parked in the parking lane";
  s.duration = 25.0;
  s.ego = EgoVehicle(0.0, kph_to_mps(45.0));
  s.target_id = 1;
  // Parked: no route, never moves.
  s.actors.emplace_back(1, ActorType::kVehicle,
                        math::Vec2{120.0, Road::kParkingLaneCenter});
  return s;
}

Scenario make_ds4() {
  Scenario s;
  s.id = ScenarioId::kDs4;
  s.name = "DS-4";
  s.description =
      "pedestrian walks toward the EV in the parking lane for 5 m, then "
      "stands still";
  s.duration = 25.0;
  s.ego = EgoVehicle(0.0, kph_to_mps(45.0));
  s.target_id = 1;
  s.actors.emplace_back(
      1, ActorType::kPedestrian, math::Vec2{110.0, Road::kParkingLaneCenter},
      StartTrigger::ego_within(90.0),
      std::vector<Waypoint>{{{105.0, Road::kParkingLaneCenter}, 1.4}});
  return s;
}

Scenario make_ds5(stats::Rng& rng) {
  Scenario s;
  s.id = ScenarioId::kDs5;
  s.name = "DS-5";
  s.description =
      "EV follows a target vehicle; NPC vehicles with randomized speeds and "
      "positions share the road";
  s.duration = 40.0;
  s.ego = EgoVehicle(0.0, kph_to_mps(45.0));
  s.target_id = 1;
  s.actors.emplace_back(
      1, ActorType::kVehicle, math::Vec2{60.0, Road::kEgoLaneCenter},
      StartTrigger::immediately(),
      std::vector<Waypoint>{{{kFarAhead, Road::kEgoLaneCenter},
                             kph_to_mps(25.0)}});
  // NPC vehicles in the adjacent (oncoming) lane at random speeds.
  ActorId next_id = 2;
  const int n_oncoming = static_cast<int>(rng.uniform_int(2, 3));
  for (int i = 0; i < n_oncoming; ++i) {
    const double x0 = rng.uniform(120.0, 400.0);
    const double speed = kph_to_mps(rng.uniform(20.0, 45.0));
    s.actors.emplace_back(
        next_id++, ActorType::kVehicle,
        math::Vec2{x0, Road::kAdjacentLaneCenter},
        StartTrigger::immediately(),
        std::vector<Waypoint>{{{-200.0, Road::kAdjacentLaneCenter}, speed}});
  }
  // A trailing NPC in the ego lane, far behind the EV.
  const double trail_speed = kph_to_mps(rng.uniform(25.0, 40.0));
  s.actors.emplace_back(
      next_id++, ActorType::kVehicle, math::Vec2{-40.0, Road::kEgoLaneCenter},
      StartTrigger::immediately(),
      std::vector<Waypoint>{{{kFarAhead, Road::kEgoLaneCenter},
                             trail_speed}});
  // Parked vehicles on the parking lane ahead.
  for (int i = 0; i < 2; ++i) {
    s.actors.emplace_back(next_id++, ActorType::kVehicle,
                          math::Vec2{rng.uniform(120.0, 320.0),
                                     Road::kParkingLaneCenter});
  }
  // Pedestrians walking along the sidewalks (never entering the road).
  for (int i = 0; i < 3; ++i) {
    const double side = rng.bernoulli(0.5) ? 6.3 : -6.3;
    const double x0 = rng.uniform(40.0, 260.0);
    s.actors.emplace_back(
        next_id++, ActorType::kPedestrian, math::Vec2{x0, side},
        StartTrigger::immediately(),
        std::vector<Waypoint>{{{x0 + rng.uniform(-60.0, 60.0), side}, 1.3}});
  }
  return s;
}

Scenario make_scenario(ScenarioId id, stats::Rng& rng) {
  switch (id) {
    case ScenarioId::kDs1:
      return make_ds1();
    case ScenarioId::kDs2:
      return make_ds2();
    case ScenarioId::kDs3:
      return make_ds3();
    case ScenarioId::kDs4:
      return make_ds4();
    case ScenarioId::kDs5:
      return make_ds5(rng);
  }
  return make_ds1();
}

}  // namespace rt::sim
