#include "sim/scenario.hpp"

#include <algorithm>
#include <cmath>

#include "sim/road.hpp"

namespace rt::sim {

namespace {
/// Far-away x used as "drive straight ahead forever".
constexpr double kFarAhead = 3000.0;

Scenario base_scenario(const ScenarioParams& p) {
  Scenario s;
  s.duration = p.duration;
  s.ego_cruise_speed = kph_to_mps(p.ego_speed_kph);
  s.ego = EgoVehicle(0.0, kph_to_mps(p.ego_speed_kph));
  return s;
}

/// Slides a drawn spawn x forward until the footprint at (x, y) clears every
/// actor already placed in the scenario, with a safety margin between
/// bumpers. Pure post-processing of the drawn value — it consumes no RNG and
/// returns the input unchanged when the draw is already clear, so layouts
/// that never collided are bit-identical with or without it.
double clear_spawn_x(const Scenario& s, double x, double y, ActorType type) {
  const Dimensions dims = default_dimensions(type);
  constexpr double kMargin = 1.0;
  bool moved = true;
  while (moved) {
    moved = false;
    for (const Actor& a : s.actors) {
      const math::Vec2 other = a.state().position;
      const Dimensions od = a.dims();
      const double min_dy = 0.5 * (dims.width + od.width);
      if (std::abs(y - other.y) >= min_dy) continue;
      const double min_dx = 0.5 * (dims.length + od.length) + kMargin;
      if (std::abs(x - other.x) >= min_dx) continue;
      // Strict-progress guard: other.x + min_dx can round to a value whose
      // recomputed separation is a hair under min_dx, which would re-trigger
      // this branch forever with the same x.
      const double candidate = other.x + min_dx;
      if (candidate <= x) continue;
      x = candidate;
      moved = true;
    }
  }
  return x;
}
}  // namespace

Scenario make_ds1(const ScenarioParams& p) {
  Scenario s = base_scenario(p);
  s.key = "DS-1";
  s.name = "DS-1";
  s.description =
      "EV follows a 25 kph target vehicle starting 60 m ahead in the ego "
      "lane";
  s.target_id = 1;
  s.actors.emplace_back(
      1, ActorType::kVehicle, math::Vec2{p.target_gap, Road::kEgoLaneCenter},
      StartTrigger::immediately(),
      std::vector<Waypoint>{{{kFarAhead, Road::kEgoLaneCenter},
                             kph_to_mps(p.target_speed_kph)}});
  return s;
}

Scenario make_ds2(const ScenarioParams& p) {
  Scenario s = base_scenario(p);
  s.key = "DS-2";
  s.name = "DS-2";
  s.description = "pedestrian illegally crosses the street ahead of the EV";
  s.target_id = 1;
  // The pedestrian waits at the right curb and begins the crossing when the
  // EV comes within the trigger distance, walking at gait speed all the way
  // to the opposite curb.
  const double start_y = -6.5;
  const double cross_x = p.trigger_distance;
  s.actors.emplace_back(
      1, ActorType::kPedestrian, math::Vec2{cross_x, start_y},
      StartTrigger::ego_within(p.trigger_distance),
      std::vector<Waypoint>{{{cross_x, 6.5}, p.pedestrian_gait}});
  return s;
}

Scenario make_ds3(const ScenarioParams& p) {
  Scenario s = base_scenario(p);
  s.key = "DS-3";
  s.name = "DS-3";
  s.description = "target vehicle parked in the parking lane";
  s.target_id = 1;
  // Parked: no route, never moves.
  s.actors.emplace_back(1, ActorType::kVehicle,
                        math::Vec2{p.target_gap, Road::kParkingLaneCenter});
  return s;
}

Scenario make_ds4(const ScenarioParams& p) {
  Scenario s = base_scenario(p);
  s.key = "DS-4";
  s.name = "DS-4";
  s.description =
      "pedestrian walks toward the EV in the parking lane for 5 m, then "
      "stands still";
  s.target_id = 1;
  s.actors.emplace_back(
      1, ActorType::kPedestrian,
      math::Vec2{p.target_gap, Road::kParkingLaneCenter},
      StartTrigger::ego_within(p.trigger_distance),
      std::vector<Waypoint>{{{p.target_gap - p.walk_distance,
                              Road::kParkingLaneCenter},
                             p.pedestrian_gait}});
  return s;
}

Scenario make_ds5(const ScenarioParams& p, stats::Rng& rng) {
  Scenario s = base_scenario(p);
  s.key = "DS-5";
  s.name = "DS-5";
  s.description =
      "EV follows a target vehicle; NPC vehicles with randomized speeds and "
      "positions share the road";
  s.target_id = 1;
  s.actors.emplace_back(
      1, ActorType::kVehicle, math::Vec2{p.target_gap, Road::kEgoLaneCenter},
      StartTrigger::immediately(),
      std::vector<Waypoint>{{{kFarAhead, Road::kEgoLaneCenter},
                             kph_to_mps(p.target_speed_kph)}});
  // NPC vehicles in the adjacent (oncoming) lane at random speeds. The
  // density knob sets the upper count; the paper default (3) draws 2-3.
  ActorId next_id = 2;
  const int n_oncoming = static_cast<int>(
      rng.uniform_int(std::max(0, p.npc_vehicles - 1), p.npc_vehicles));
  for (int i = 0; i < n_oncoming; ++i) {
    const double x0 = clear_spawn_x(s, rng.uniform(120.0, 400.0),
                                    Road::kAdjacentLaneCenter,
                                    ActorType::kVehicle);
    const double speed = kph_to_mps(rng.uniform(20.0, 45.0));
    s.actors.emplace_back(
        next_id++, ActorType::kVehicle,
        math::Vec2{x0, Road::kAdjacentLaneCenter},
        StartTrigger::immediately(),
        std::vector<Waypoint>{{{-200.0, Road::kAdjacentLaneCenter}, speed}});
  }
  // A trailing NPC in the ego lane, far behind the EV. Capped at the slower
  // of the ego cruise and the lead's speed so the scripted route never
  // rear-ends the EV once it settles behind the lead.
  const double trail_speed = std::min(
      kph_to_mps(rng.uniform(25.0, 40.0)),
      kph_to_mps(std::min(p.ego_speed_kph, p.target_speed_kph)));
  s.actors.emplace_back(
      next_id++, ActorType::kVehicle, math::Vec2{-40.0, Road::kEgoLaneCenter},
      StartTrigger::immediately(),
      std::vector<Waypoint>{{{kFarAhead, Road::kEgoLaneCenter},
                             trail_speed}});
  // Parked vehicles on the parking lane ahead.
  for (int i = 0; i < 2; ++i) {
    s.actors.emplace_back(next_id++, ActorType::kVehicle,
                          math::Vec2{clear_spawn_x(s, rng.uniform(120.0, 320.0),
                                                   Road::kParkingLaneCenter,
                                                   ActorType::kVehicle),
                                     Road::kParkingLaneCenter});
  }
  // Pedestrians walking along the sidewalks (never entering the road).
  for (int i = 0; i < p.npc_pedestrians; ++i) {
    const double side = rng.bernoulli(0.5) ? 6.3 : -6.3;
    const double x0 =
        clear_spawn_x(s, rng.uniform(40.0, 260.0), side,
                      ActorType::kPedestrian);
    s.actors.emplace_back(
        next_id++, ActorType::kPedestrian, math::Vec2{x0, side},
        StartTrigger::immediately(),
        std::vector<Waypoint>{{{x0 + rng.uniform(-60.0, 60.0), side},
                               p.pedestrian_gait}});
  }
  return s;
}

Scenario make_cut_in(const ScenarioParams& p) {
  Scenario s = base_scenario(p);
  s.key = "cut-in";
  s.name = "cut-in";
  s.description =
      "vehicle in the adjacent lane overtakes and merges into the ego lane "
      "ahead of the EV, then slows to target speed";
  s.target_id = 1;
  // The lead drives ahead in the adjacent lane, merges over one lane width
  // past the trigger point, then settles to the (slower) target speed in
  // the ego lane. All legs are position-scripted, so the family is fully
  // deterministic.
  const double merge_start_x = p.target_gap + p.trigger_distance;
  const double merge_end_x = merge_start_x + 35.0;
  const double fast = kph_to_mps(p.target_speed_kph + 15.0);
  const double slow = kph_to_mps(p.target_speed_kph);
  s.actors.emplace_back(
      1, ActorType::kVehicle,
      math::Vec2{p.target_gap, Road::kAdjacentLaneCenter},
      StartTrigger::immediately(),
      std::vector<Waypoint>{
          {{merge_start_x, Road::kAdjacentLaneCenter}, fast},
          {{merge_end_x, Road::kEgoLaneCenter}, fast},
          {{kFarAhead, Road::kEgoLaneCenter}, slow}});
  return s;
}

Scenario make_staggered_crossing(const ScenarioParams& p) {
  Scenario s = base_scenario(p);
  s.key = "staggered-crossing";
  s.name = "staggered-crossing";
  s.description =
      "two pedestrians cross from opposite curbs, the second staggered "
      "further down the road";
  s.target_id = 1;
  // Both pedestrians wait on their curb beyond the trigger distance, so the
  // ego-within gate genuinely fires mid-approach (unlike DS-2, whose
  // historical trigger is satisfied at t = 0 and kept so for bit-identity).
  // First pedestrian: crosses from the right curb.
  const double first_x = p.trigger_distance + 20.0;
  s.actors.emplace_back(
      1, ActorType::kPedestrian, math::Vec2{first_x, -6.5},
      StartTrigger::ego_within(p.trigger_distance),
      std::vector<Waypoint>{{{first_x, 6.5}, p.pedestrian_gait}});
  // Second pedestrian: crosses from the left curb, 25 m further ahead, on
  // the same ego-distance trigger — it fires ~25 m of ego travel later.
  const double second_x = first_x + 25.0;
  s.actors.emplace_back(
      2, ActorType::kPedestrian, math::Vec2{second_x, 6.5},
      StartTrigger::ego_within(p.trigger_distance),
      std::vector<Waypoint>{{{second_x, -6.5}, 0.9 * p.pedestrian_gait}});
  return s;
}

Scenario make_dense_follow(const ScenarioParams& p, stats::Rng& rng) {
  Scenario s = base_scenario(p);
  s.key = "dense-follow";
  s.name = "dense-follow";
  s.description =
      "DS-1-style car following inside randomized dense traffic: NPCs drawn "
      "into random lanes plus sidewalk pedestrians";
  s.target_id = 1;
  s.actors.emplace_back(
      1, ActorType::kVehicle, math::Vec2{p.target_gap, Road::kEgoLaneCenter},
      StartTrigger::immediately(),
      std::vector<Waypoint>{{{kFarAhead, Road::kEgoLaneCenter},
                             kph_to_mps(p.target_speed_kph)}});
  // NPC vehicles with randomized lane assignment: oncoming traffic in the
  // adjacent lane or parked in the parking lane.
  ActorId next_id = 2;
  for (int i = 0; i < p.npc_vehicles; ++i) {
    const double x0 = rng.uniform(110.0, 420.0);
    if (rng.bernoulli(0.6)) {
      const double speed = kph_to_mps(rng.uniform(20.0, 45.0));
      s.actors.emplace_back(
          next_id++, ActorType::kVehicle,
          math::Vec2{clear_spawn_x(s, x0, Road::kAdjacentLaneCenter,
                                   ActorType::kVehicle),
                     Road::kAdjacentLaneCenter},
          StartTrigger::immediately(),
          std::vector<Waypoint>{
              {{-200.0, Road::kAdjacentLaneCenter}, speed}});
    } else {
      s.actors.emplace_back(next_id++, ActorType::kVehicle,
                            math::Vec2{clear_spawn_x(
                                           s, x0, Road::kParkingLaneCenter,
                                           ActorType::kVehicle),
                                       Road::kParkingLaneCenter});
    }
  }
  // Sidewalk pedestrians as in DS-5.
  for (int i = 0; i < p.npc_pedestrians; ++i) {
    const double side = rng.bernoulli(0.5) ? 6.3 : -6.3;
    const double x0 =
        clear_spawn_x(s, rng.uniform(40.0, 260.0), side,
                      ActorType::kPedestrian);
    s.actors.emplace_back(
        next_id++, ActorType::kPedestrian, math::Vec2{x0, side},
        StartTrigger::immediately(),
        std::vector<Waypoint>{{{x0 + rng.uniform(-60.0, 60.0), side},
                               p.pedestrian_gait}});
  }
  return s;
}

Scenario make_intersection_turn(const ScenarioParams& p) {
  Scenario s = base_scenario(p);
  s.key = "intersection-turn";
  s.name = "intersection-turn";
  s.description =
      "vehicle pulls out of a side street and turns into the ego lane ahead "
      "of the EV; oncoming NPC in the adjacent lane";
  s.target_id = 1;
  // The turner waits at the side-street mouth on the right curb line and
  // pulls out when the EV comes within the trigger distance: a short
  // lateral crossing leg through the corridor, then a turn onto the ego
  // lane driving ahead at target speed (the classic unprotected right-turn
  // conflict). The crossing leg is driven at a low maneuvering speed so the
  // turn stays kinematically plausible.
  const double mouth_x = p.target_gap + p.trigger_distance;
  const double turn_speed = kph_to_mps(15.0);
  s.actors.emplace_back(
      1, ActorType::kVehicle, math::Vec2{mouth_x, -6.0},
      StartTrigger::ego_within(p.trigger_distance),
      std::vector<Waypoint>{
          {{mouth_x + 4.0, Road::kEgoLaneCenter}, turn_speed},
          {{kFarAhead, Road::kEgoLaneCenter},
           kph_to_mps(p.target_speed_kph)}});
  // Oncoming traffic in the adjacent lane, timed to pass the intersection
  // around the turn.
  s.actors.emplace_back(
      2, ActorType::kVehicle, math::Vec2{mouth_x + 120.0,
                                         Road::kAdjacentLaneCenter},
      StartTrigger::immediately(),
      std::vector<Waypoint>{{{-200.0, Road::kAdjacentLaneCenter},
                             kph_to_mps(35.0)}});
  return s;
}

Scenario make_occlusion_reveal(const ScenarioParams& p, stats::Rng& rng) {
  Scenario s = base_scenario(p);
  s.key = "occlusion-reveal";
  s.name = "occlusion-reveal";
  s.description =
      "pedestrian steps out from between a parked vehicle and the curb and "
      "crosses the street; parked NPC clutter ahead";
  s.target_id = 1;
  // The occluder: parked in the parking lane at the reveal point.
  const double reveal_x = p.target_gap;
  // The pedestrian waits curbside of the occluder and crosses the full
  // street once the EV comes within the trigger distance.
  s.actors.emplace_back(
      1, ActorType::kPedestrian, math::Vec2{reveal_x + 2.5, -4.6},
      StartTrigger::ego_within(p.trigger_distance),
      std::vector<Waypoint>{{{reveal_x + 2.5, 6.5}, p.pedestrian_gait}});
  s.actors.emplace_back(2, ActorType::kVehicle,
                        math::Vec2{reveal_x, Road::kParkingLaneCenter});
  // Parking-lane clutter beyond the reveal point (randomized density).
  ActorId next_id = 3;
  for (int i = 0; i < p.npc_vehicles; ++i) {
    s.actors.emplace_back(
        next_id++, ActorType::kVehicle,
        math::Vec2{clear_spawn_x(s, reveal_x + rng.uniform(25.0, 160.0),
                                 Road::kParkingLaneCenter,
                                 ActorType::kVehicle),
                   Road::kParkingLaneCenter});
  }
  // Sidewalk pedestrians as benign distractors.
  for (int i = 0; i < p.npc_pedestrians; ++i) {
    const double side = rng.bernoulli(0.5) ? 6.3 : -6.3;
    const double x0 =
        clear_spawn_x(s, rng.uniform(30.0, 220.0), side,
                      ActorType::kPedestrian);
    s.actors.emplace_back(
        next_id++, ActorType::kPedestrian, math::Vec2{x0, side},
        StartTrigger::immediately(),
        std::vector<Waypoint>{{{x0 + rng.uniform(-50.0, 50.0), side},
                               p.pedestrian_gait}});
  }
  return s;
}

Scenario make_multi_lane_overtake(const ScenarioParams& p) {
  Scenario s = base_scenario(p);
  s.key = "multi-lane-overtake";
  s.name = "multi-lane-overtake";
  s.description =
      "EV follows a slow lead while a faster NPC overtakes both in the "
      "adjacent lane and merges ahead of the lead";
  s.target_id = 1;
  // The slow lead the EV follows (the attack target, as in DS-1).
  s.actors.emplace_back(
      1, ActorType::kVehicle, math::Vec2{p.target_gap, Road::kEgoLaneCenter},
      StartTrigger::immediately(),
      std::vector<Waypoint>{{{kFarAhead, Road::kEgoLaneCenter},
                             kph_to_mps(p.target_speed_kph)}});
  // The overtaker: starts behind the EV in the adjacent lane, passes both
  // vehicles, then merges into the ego lane well ahead of the lead and
  // settles slightly faster than it (the gap keeps opening after the merge).
  const double pass_x = p.target_gap + p.trigger_distance;
  const double fast = kph_to_mps(p.ego_speed_kph + 20.0);
  s.actors.emplace_back(
      2, ActorType::kVehicle, math::Vec2{-30.0, Road::kAdjacentLaneCenter},
      StartTrigger::immediately(),
      std::vector<Waypoint>{
          {{pass_x, Road::kAdjacentLaneCenter}, fast},
          {{pass_x + 30.0, Road::kEgoLaneCenter}, fast},
          {{kFarAhead, Road::kEgoLaneCenter},
           kph_to_mps(p.target_speed_kph + 8.0)}});
  return s;
}

}  // namespace rt::sim
