#include "sim/scenario.hpp"

#include <algorithm>

#include "sim/road.hpp"

namespace rt::sim {

namespace {
/// Far-away x used as "drive straight ahead forever".
constexpr double kFarAhead = 3000.0;

Scenario base_scenario(const ScenarioParams& p) {
  Scenario s;
  s.duration = p.duration;
  s.ego_cruise_speed = kph_to_mps(p.ego_speed_kph);
  s.ego = EgoVehicle(0.0, kph_to_mps(p.ego_speed_kph));
  return s;
}
}  // namespace

Scenario make_ds1(const ScenarioParams& p) {
  Scenario s = base_scenario(p);
  s.key = "DS-1";
  s.name = "DS-1";
  s.description =
      "EV follows a 25 kph target vehicle starting 60 m ahead in the ego "
      "lane";
  s.target_id = 1;
  s.actors.emplace_back(
      1, ActorType::kVehicle, math::Vec2{p.target_gap, Road::kEgoLaneCenter},
      StartTrigger::immediately(),
      std::vector<Waypoint>{{{kFarAhead, Road::kEgoLaneCenter},
                             kph_to_mps(p.target_speed_kph)}});
  return s;
}

Scenario make_ds2(const ScenarioParams& p) {
  Scenario s = base_scenario(p);
  s.key = "DS-2";
  s.name = "DS-2";
  s.description = "pedestrian illegally crosses the street ahead of the EV";
  s.target_id = 1;
  // The pedestrian waits at the right curb and begins the crossing when the
  // EV comes within the trigger distance, walking at gait speed all the way
  // to the opposite curb.
  const double start_y = -6.5;
  const double cross_x = p.trigger_distance;
  s.actors.emplace_back(
      1, ActorType::kPedestrian, math::Vec2{cross_x, start_y},
      StartTrigger::ego_within(p.trigger_distance),
      std::vector<Waypoint>{{{cross_x, 6.5}, p.pedestrian_gait}});
  return s;
}

Scenario make_ds3(const ScenarioParams& p) {
  Scenario s = base_scenario(p);
  s.key = "DS-3";
  s.name = "DS-3";
  s.description = "target vehicle parked in the parking lane";
  s.target_id = 1;
  // Parked: no route, never moves.
  s.actors.emplace_back(1, ActorType::kVehicle,
                        math::Vec2{p.target_gap, Road::kParkingLaneCenter});
  return s;
}

Scenario make_ds4(const ScenarioParams& p) {
  Scenario s = base_scenario(p);
  s.key = "DS-4";
  s.name = "DS-4";
  s.description =
      "pedestrian walks toward the EV in the parking lane for 5 m, then "
      "stands still";
  s.target_id = 1;
  s.actors.emplace_back(
      1, ActorType::kPedestrian,
      math::Vec2{p.target_gap, Road::kParkingLaneCenter},
      StartTrigger::ego_within(p.trigger_distance),
      std::vector<Waypoint>{{{p.target_gap - p.walk_distance,
                              Road::kParkingLaneCenter},
                             p.pedestrian_gait}});
  return s;
}

Scenario make_ds5(const ScenarioParams& p, stats::Rng& rng) {
  Scenario s = base_scenario(p);
  s.key = "DS-5";
  s.name = "DS-5";
  s.description =
      "EV follows a target vehicle; NPC vehicles with randomized speeds and "
      "positions share the road";
  s.target_id = 1;
  s.actors.emplace_back(
      1, ActorType::kVehicle, math::Vec2{p.target_gap, Road::kEgoLaneCenter},
      StartTrigger::immediately(),
      std::vector<Waypoint>{{{kFarAhead, Road::kEgoLaneCenter},
                             kph_to_mps(p.target_speed_kph)}});
  // NPC vehicles in the adjacent (oncoming) lane at random speeds. The
  // density knob sets the upper count; the paper default (3) draws 2-3.
  ActorId next_id = 2;
  const int n_oncoming = static_cast<int>(
      rng.uniform_int(std::max(0, p.npc_vehicles - 1), p.npc_vehicles));
  for (int i = 0; i < n_oncoming; ++i) {
    const double x0 = rng.uniform(120.0, 400.0);
    const double speed = kph_to_mps(rng.uniform(20.0, 45.0));
    s.actors.emplace_back(
        next_id++, ActorType::kVehicle,
        math::Vec2{x0, Road::kAdjacentLaneCenter},
        StartTrigger::immediately(),
        std::vector<Waypoint>{{{-200.0, Road::kAdjacentLaneCenter}, speed}});
  }
  // A trailing NPC in the ego lane, far behind the EV.
  const double trail_speed = kph_to_mps(rng.uniform(25.0, 40.0));
  s.actors.emplace_back(
      next_id++, ActorType::kVehicle, math::Vec2{-40.0, Road::kEgoLaneCenter},
      StartTrigger::immediately(),
      std::vector<Waypoint>{{{kFarAhead, Road::kEgoLaneCenter},
                             trail_speed}});
  // Parked vehicles on the parking lane ahead.
  for (int i = 0; i < 2; ++i) {
    s.actors.emplace_back(next_id++, ActorType::kVehicle,
                          math::Vec2{rng.uniform(120.0, 320.0),
                                     Road::kParkingLaneCenter});
  }
  // Pedestrians walking along the sidewalks (never entering the road).
  for (int i = 0; i < p.npc_pedestrians; ++i) {
    const double side = rng.bernoulli(0.5) ? 6.3 : -6.3;
    const double x0 = rng.uniform(40.0, 260.0);
    s.actors.emplace_back(
        next_id++, ActorType::kPedestrian, math::Vec2{x0, side},
        StartTrigger::immediately(),
        std::vector<Waypoint>{{{x0 + rng.uniform(-60.0, 60.0), side},
                               p.pedestrian_gait}});
  }
  return s;
}

Scenario make_cut_in(const ScenarioParams& p) {
  Scenario s = base_scenario(p);
  s.key = "cut-in";
  s.name = "cut-in";
  s.description =
      "vehicle in the adjacent lane overtakes and merges into the ego lane "
      "ahead of the EV, then slows to target speed";
  s.target_id = 1;
  // The lead drives ahead in the adjacent lane, merges over one lane width
  // past the trigger point, then settles to the (slower) target speed in
  // the ego lane. All legs are position-scripted, so the family is fully
  // deterministic.
  const double merge_start_x = p.target_gap + p.trigger_distance;
  const double merge_end_x = merge_start_x + 35.0;
  const double fast = kph_to_mps(p.target_speed_kph + 15.0);
  const double slow = kph_to_mps(p.target_speed_kph);
  s.actors.emplace_back(
      1, ActorType::kVehicle,
      math::Vec2{p.target_gap, Road::kAdjacentLaneCenter},
      StartTrigger::immediately(),
      std::vector<Waypoint>{
          {{merge_start_x, Road::kAdjacentLaneCenter}, fast},
          {{merge_end_x, Road::kEgoLaneCenter}, fast},
          {{kFarAhead, Road::kEgoLaneCenter}, slow}});
  return s;
}

Scenario make_staggered_crossing(const ScenarioParams& p) {
  Scenario s = base_scenario(p);
  s.key = "staggered-crossing";
  s.name = "staggered-crossing";
  s.description =
      "two pedestrians cross from opposite curbs, the second staggered "
      "further down the road";
  s.target_id = 1;
  // Both pedestrians wait on their curb beyond the trigger distance, so the
  // ego-within gate genuinely fires mid-approach (unlike DS-2, whose
  // historical trigger is satisfied at t = 0 and kept so for bit-identity).
  // First pedestrian: crosses from the right curb.
  const double first_x = p.trigger_distance + 20.0;
  s.actors.emplace_back(
      1, ActorType::kPedestrian, math::Vec2{first_x, -6.5},
      StartTrigger::ego_within(p.trigger_distance),
      std::vector<Waypoint>{{{first_x, 6.5}, p.pedestrian_gait}});
  // Second pedestrian: crosses from the left curb, 25 m further ahead, on
  // the same ego-distance trigger — it fires ~25 m of ego travel later.
  const double second_x = first_x + 25.0;
  s.actors.emplace_back(
      2, ActorType::kPedestrian, math::Vec2{second_x, 6.5},
      StartTrigger::ego_within(p.trigger_distance),
      std::vector<Waypoint>{{{second_x, -6.5}, 0.9 * p.pedestrian_gait}});
  return s;
}

Scenario make_dense_follow(const ScenarioParams& p, stats::Rng& rng) {
  Scenario s = base_scenario(p);
  s.key = "dense-follow";
  s.name = "dense-follow";
  s.description =
      "DS-1-style car following inside randomized dense traffic: NPCs drawn "
      "into random lanes plus sidewalk pedestrians";
  s.target_id = 1;
  s.actors.emplace_back(
      1, ActorType::kVehicle, math::Vec2{p.target_gap, Road::kEgoLaneCenter},
      StartTrigger::immediately(),
      std::vector<Waypoint>{{{kFarAhead, Road::kEgoLaneCenter},
                             kph_to_mps(p.target_speed_kph)}});
  // NPC vehicles with randomized lane assignment: oncoming traffic in the
  // adjacent lane or parked in the parking lane.
  ActorId next_id = 2;
  for (int i = 0; i < p.npc_vehicles; ++i) {
    const double x0 = rng.uniform(110.0, 420.0);
    if (rng.bernoulli(0.6)) {
      const double speed = kph_to_mps(rng.uniform(20.0, 45.0));
      s.actors.emplace_back(
          next_id++, ActorType::kVehicle,
          math::Vec2{x0, Road::kAdjacentLaneCenter},
          StartTrigger::immediately(),
          std::vector<Waypoint>{
              {{-200.0, Road::kAdjacentLaneCenter}, speed}});
    } else {
      s.actors.emplace_back(next_id++, ActorType::kVehicle,
                            math::Vec2{x0, Road::kParkingLaneCenter});
    }
  }
  // Sidewalk pedestrians as in DS-5.
  for (int i = 0; i < p.npc_pedestrians; ++i) {
    const double side = rng.bernoulli(0.5) ? 6.3 : -6.3;
    const double x0 = rng.uniform(40.0, 260.0);
    s.actors.emplace_back(
        next_id++, ActorType::kPedestrian, math::Vec2{x0, side},
        StartTrigger::immediately(),
        std::vector<Waypoint>{{{x0 + rng.uniform(-60.0, 60.0), side},
                               p.pedestrian_gait}});
  }
  return s;
}

}  // namespace rt::sim
