#pragma once

#include <cstdint>
#include <string>

#include "math/vec2.hpp"

namespace rt::sim {

/// Classes of road users the perception system distinguishes.
///
/// The paper's central asymmetry (finding #4: pedestrians are easier to
/// attack than vehicles) is rooted in per-class differences of the detector
/// noise model and the LiDAR registration range, so the class travels with
/// every object through the entire pipeline.
enum class ActorType : std::uint8_t { kVehicle, kPedestrian };

[[nodiscard]] constexpr const char* to_string(ActorType t) {
  switch (t) {
    case ActorType::kVehicle:
      return "Vehicle";
    case ActorType::kPedestrian:
      return "Pedestrian";
  }
  return "?";
}

/// Physical footprint used for projection (camera), occupancy (collision
/// checks) and gap computation. `length` is along the travel axis (x),
/// `width` lateral (y), `height` vertical (camera image only).
struct Dimensions {
  double length{0.0};
  double width{0.0};
  double height{0.0};
};

/// Default footprints: a mid-size sedan and an adult pedestrian.
[[nodiscard]] constexpr Dimensions default_dimensions(ActorType t) {
  switch (t) {
    case ActorType::kVehicle:
      return {4.6, 1.8, 1.5};
    case ActorType::kPedestrian:
      return {0.5, 0.5, 1.7};
  }
  return {};
}

/// Kinematic state in the road frame (x longitudinal, y lateral).
struct KinematicState {
  math::Vec2 position;
  math::Vec2 velocity;
  math::Vec2 acceleration;
};

/// Unique id for actors within a scenario. The ego vehicle is not an actor
/// and has no id.
using ActorId = std::int32_t;

[[nodiscard]] constexpr double kph_to_mps(double kph) { return kph / 3.6; }
[[nodiscard]] constexpr double mps_to_kph(double mps) { return mps * 3.6; }

}  // namespace rt::sim
