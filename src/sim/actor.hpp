#pragma once

#include <optional>
#include <string>
#include <vector>

#include "math/vec2.hpp"
#include "sim/types.hpp"

namespace rt::sim {

/// Condition that starts an actor's scripted motion. Until the trigger
/// fires the actor holds its initial pose (e.g. the DS-2 pedestrian waits at
/// the curb until the EV is close enough for an "illegal crossing").
struct StartTrigger {
  enum class Kind : std::uint8_t {
    kImmediate,       ///< starts at t = 0
    kAtTime,          ///< starts when sim time >= value
    kEgoWithin,       ///< starts when (actor.x - ego.x) <= value
  };
  Kind kind{Kind::kImmediate};
  double value{0.0};

  [[nodiscard]] static StartTrigger immediately() { return {}; }
  [[nodiscard]] static StartTrigger at_time(double t) {
    return {Kind::kAtTime, t};
  }
  [[nodiscard]] static StartTrigger ego_within(double dist) {
    return {Kind::kEgoWithin, dist};
  }
};

/// One leg of an actor's scripted route: drive/walk toward `target` at
/// constant `speed`. Legs execute in order; after the last leg the actor
/// stands still.
struct Waypoint {
  math::Vec2 target;
  double speed{0.0};
};

/// A scripted (non-ego) road user: target vehicles, NPC vehicles and
/// pedestrians. Actors follow their waypoint script kinematically — the
/// paper's LGSVL scenarios script all non-ego motion the same way.
class Actor {
 public:
  Actor(ActorId id, ActorType type, math::Vec2 position,
        StartTrigger trigger = StartTrigger::immediately(),
        std::vector<Waypoint> route = {});

  [[nodiscard]] ActorId id() const { return id_; }
  [[nodiscard]] ActorType type() const { return type_; }
  [[nodiscard]] const Dimensions& dims() const { return dims_; }
  [[nodiscard]] const KinematicState& state() const { return state_; }
  [[nodiscard]] bool started() const { return started_; }
  [[nodiscard]] bool route_finished() const {
    return next_waypoint_ >= route_.size();
  }

  /// Advances the actor by `dt` seconds. `sim_time` is the time *after* the
  /// step; `ego_x` the ego's longitudinal position (for EgoWithin triggers).
  void step(double dt, double sim_time, double ego_x);

 private:
  void maybe_start(double sim_time, double ego_x);

  ActorId id_;
  ActorType type_;
  Dimensions dims_;
  KinematicState state_;
  StartTrigger trigger_;
  std::vector<Waypoint> route_;
  std::size_t next_waypoint_{0};
  bool started_{false};
};

}  // namespace rt::sim
