#pragma once

#include <optional>
#include <vector>

#include "sim/actor.hpp"
#include "sim/ego_vehicle.hpp"
#include "sim/road.hpp"
#include "sim/types.hpp"

namespace rt::sim {

/// Ground-truth snapshot of one actor relative to the ego vehicle, as
/// consumed by the sensor models and the (evaluation-side) safety monitor.
struct GroundTruthObject {
  ActorId id{0};
  ActorType type{ActorType::kVehicle};
  Dimensions dims;
  /// Position of the object's center relative to the ego center
  /// (x: ahead, y: left).
  math::Vec2 rel_position;
  /// Velocity relative to the ego (object velocity minus ego velocity on x).
  math::Vec2 rel_velocity;
  /// Absolute velocity in the road frame.
  math::Vec2 abs_velocity;
  /// Absolute acceleration in the road frame.
  math::Vec2 abs_acceleration;

  /// Bumper-to-bumper longitudinal gap (>= 0; 0 means touching/overlap).
  [[nodiscard]] double longitudinal_gap(double ego_length) const {
    const double gap =
        rel_position.x - dims.length / 2.0 - ego_length / 2.0;
    return gap > 0.0 ? gap : 0.0;
  }
};

/// The ground-truth world: the ego plant plus all scripted actors.
///
/// This is the substrate replacing the LGSVL simulator: it advances
/// kinematics at a fixed rate and answers the ground-truth queries that the
/// sensor models (camera, LiDAR) and the safety monitor need. Nothing in
/// here is visible to the ADS directly — the ADS only sees sensor output.
class World {
 public:
  World(EgoVehicle ego, std::vector<Actor> actors);

  [[nodiscard]] double time() const { return time_; }
  [[nodiscard]] const EgoVehicle& ego() const { return ego_; }
  [[nodiscard]] const std::vector<Actor>& actors() const { return actors_; }

  /// Advances the world by `dt` with the given ego acceleration command.
  void step(double dt, double ego_accel_command);

  /// Ground truth for all actors, relative to the ego.
  [[nodiscard]] std::vector<GroundTruthObject> ground_truth() const;
  /// Snapshot into a caller-owned buffer (cleared first; capacity reused by
  /// per-frame callers).
  void ground_truth_into(std::vector<GroundTruthObject>& out) const;

  /// Ground truth for one actor by id; nullopt if the id is unknown.
  [[nodiscard]] std::optional<GroundTruthObject> ground_truth_for(
      ActorId id) const;

  /// True if the ego's footprint overlaps any actor's footprint.
  [[nodiscard]] bool collision() const;

  /// The nearest actor ahead of the ego whose footprint overlaps the ego
  /// travel corridor (ground-truth in-path object); nullopt if none.
  [[nodiscard]] std::optional<GroundTruthObject> nearest_in_path() const;

 private:
  [[nodiscard]] GroundTruthObject snapshot(const Actor& a) const;

  double time_{0.0};
  EgoVehicle ego_;
  std::vector<Actor> actors_;
};

}  // namespace rt::sim
