#include "sim/scenario_sampler.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "stats/hash.hpp"

namespace rt::sim {

namespace {

/// Stream id of a template's parameter draw: keyed on the template *name*,
/// not its registry index, so registering further families never perturbs
/// existing samples.
std::uint64_t param_stream(const std::string& key) {
  return stats::fnv1a_str(stats::kFnv1aOffset, key);
}

/// Stream id of a sample's canonical NPC topology (stochastic families).
std::uint64_t topology_stream(const std::string& key) {
  return stats::fnv1a_str(param_stream(key), "topology");
}

bool is_integer_param(const std::string& name) {
  return name == "npc_vehicles" || name == "npc_pedestrians";
}

}  // namespace

Scenario SampledScenario::make() const {
  stats::Rng rng =
      stats::Rng::from_stream(topology_stream(template_key), seed);
  return ScenarioRegistry::global().make(template_key, params, rng);
}

std::string SampledScenario::spec_string() const {
  std::ostringstream os;
  os << "template=" << template_key << " seed=" << seed;
  for (const auto& name : scenario_param_names()) {
    const double v = get_scenario_param(params, name);
    os << ' ' << name << '=';
    if (is_integer_param(name)) {
      os << static_cast<long long>(std::llround(v));
    } else {
      char buf[32];
      std::snprintf(buf, sizeof buf, "%.6g", v);
      os << buf;
    }
  }
  return os.str();
}

std::string SampledScenario::corpus_line() const {
  return template_key + " " + std::to_string(seed);
}

ScenarioSampler::ScenarioSampler(const ScenarioRegistry& registry)
    : registry_(&registry) {
  // Generic plausible bands around each family's defaults, clamped into
  // absolute sanity bounds. The bands are deliberately conservative along
  // the axes that decide whether an *unattacked* ADS can physically keep
  // the run safe (crossing trigger distance vs. ego speed): the sampler
  // generates the valid scenario space, and the clean-run invariants
  // (golden collision-freedom, monitor zero-FP) enforce that property on
  // every draw.
  for (const auto& key : registry_->keys()) {
    const ScenarioParams d = registry_->defaults(key);
    std::vector<ParamRange> table;
    table.push_back({"duration", 0.75 * d.duration, 1.3 * d.duration});
    table.push_back({"ego_speed_kph", 30.0, 50.0});
    table.push_back({"target_speed_kph",
                     std::max(8.0, 0.6 * d.target_speed_kph),
                     std::min(45.0, 1.3 * d.target_speed_kph)});
    table.push_back({"target_gap", std::max(30.0, 0.75 * d.target_gap),
                     std::min(170.0, 1.5 * d.target_gap)});
    table.push_back({"pedestrian_gait", 0.8, 1.8});
    table.push_back({"trigger_distance",
                     std::max(40.0, 0.8 * d.trigger_distance),
                     std::min(120.0, 1.3 * d.trigger_distance)});
    table.push_back({"walk_distance", 2.0, 10.0});
    table.push_back({"npc_vehicles", 0.0,
                     std::min(8.0, std::max(4.0, 2.0 * d.npc_vehicles)),
                     true});
    table.push_back({"npc_pedestrians", 0.0, 6.0, true});
    ranges_.emplace(key, std::move(table));
  }

  // Built-in refinements: pedestrian-crossing families need the trigger
  // far enough out (and the crossing slow enough) that a stopping-distance-
  // correct golden run survives the worst sampled corner; the side-street
  // turn needs the pull-out gap to respect the same bound.
  const auto refine = [this](const std::string& key, const std::string& name,
                             double lo, double hi) {
    auto it = ranges_.find(key);
    if (it == ranges_.end()) return;  // family not registered in this registry
    for (auto& range : it->second) {
      if (range.name == name) {
        range.lo = lo;
        range.hi = hi;
      }
    }
  };
  for (const char* crossing :
       {"DS-2", "staggered-crossing", "occlusion-reveal"}) {
    refine(crossing, "trigger_distance", 60.0, 110.0);
    refine(crossing, "pedestrian_gait", 0.8, 1.6);
  }
  refine("intersection-turn", "trigger_distance", 60.0, 110.0);
}

std::vector<std::string> ScenarioSampler::templates() const {
  return registry_->keys();
}

const std::vector<ParamRange>& ScenarioSampler::ranges(
    const std::string& template_key) const {
  const auto it = ranges_.find(template_key);
  if (it == ranges_.end()) {
    std::string known;
    for (const auto& key : registry_->keys()) {
      if (!known.empty()) known += ", ";
      known += key;
    }
    throw std::out_of_range("ScenarioSampler: unknown template '" +
                            template_key + "' (known: " + known + ")");
  }
  return it->second;
}

void ScenarioSampler::set_ranges(const std::string& template_key,
                                 std::vector<ParamRange> ranges) {
  (void)this->ranges(template_key);  // throws on unknown templates
  for (const auto& range : ranges) {
    (void)get_scenario_param(ScenarioParams{}, range.name);  // validate name
    if (!(range.lo <= range.hi)) {
      throw std::invalid_argument("ScenarioSampler: empty range for '" +
                                  range.name + "' on template '" +
                                  template_key + "'");
    }
  }
  ranges_[template_key] = std::move(ranges);
}

SampledScenario ScenarioSampler::sample(const std::string& template_key,
                                        std::uint64_t seed) const {
  const auto& table = ranges(template_key);
  SampledScenario out;
  out.template_key = template_key;
  out.seed = seed;
  out.params = registry_->defaults(template_key);
  stats::Rng rng = stats::Rng::from_stream(param_stream(template_key), seed);
  for (const auto& range : table) {
    double value;
    if (range.integer) {
      value = static_cast<double>(
          rng.uniform_int(static_cast<std::int64_t>(std::llround(range.lo)),
                          static_cast<std::int64_t>(std::llround(range.hi))));
    } else {
      value = range.lo == range.hi ? range.lo
                                   : rng.uniform(range.lo, range.hi);
    }
    set_scenario_param(out.params, range.name, value);
  }
  return out;
}

std::vector<CorpusEntry> parse_corpus(const std::string& text) {
  std::vector<CorpusEntry> entries;
  std::istringstream is(text);
  std::string line;
  int line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;  // blank / comment-only line
    unsigned long long seed = 0;
    std::string extra;
    if (!(ls >> seed) || (ls >> extra)) {
      throw std::invalid_argument(
          "parse_corpus: malformed line " + std::to_string(line_no) +
          " (expected '<template> <seed>'): " + line);
    }
    entries.push_back({key, static_cast<std::uint64_t>(seed)});
  }
  return entries;
}

std::vector<CorpusEntry> load_corpus(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("load_corpus: cannot open " + path);
  std::ostringstream buffer;
  buffer << is.rdbuf();
  return parse_corpus(buffer.str());
}

ScenarioParams shrink_params(
    const ScenarioParams& failing, const ScenarioParams& defaults,
    const std::function<bool(const ScenarioParams&)>& still_fails,
    int bisect_iters) {
  ScenarioParams current = failing;
  const auto names = scenario_param_names();
  // Pass 1..3: substitute each field's default while the failure persists.
  // Fixed-point: a pass that changes nothing ends the substitution phase.
  for (int pass = 0; pass < 3; ++pass) {
    bool changed = false;
    for (const auto& name : names) {
      const double def = get_scenario_param(defaults, name);
      if (get_scenario_param(current, name) == def) continue;
      ScenarioParams candidate = current;
      set_scenario_param(candidate, name, def);
      if (still_fails(candidate)) {
        current = candidate;
        changed = true;
      }
    }
    if (!changed) break;
  }
  // Bisect the surviving non-default fields toward the default: the failing
  // endpoint moves inward while the failure persists.
  for (const auto& name : names) {
    const double def = get_scenario_param(defaults, name);
    double bad = get_scenario_param(current, name);
    if (bad == def) continue;
    double good = def;  // substitution proved the default side passes
    for (int i = 0; i < bisect_iters; ++i) {
      double mid = (good + bad) / 2.0;
      if (is_integer_param(name)) {
        mid = std::llround(mid);
        if (mid == bad || mid == good) break;
      }
      ScenarioParams candidate = current;
      set_scenario_param(candidate, name, mid);
      if (still_fails(candidate)) {
        bad = mid;
      } else {
        good = mid;
      }
    }
    set_scenario_param(current, name, bad);
  }
  return current;
}

}  // namespace rt::sim
