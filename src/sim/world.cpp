#include "sim/world.hpp"

#include <algorithm>
#include <cmath>

namespace rt::sim {

World::World(EgoVehicle ego, std::vector<Actor> actors)
    : ego_(ego), actors_(std::move(actors)) {}

void World::step(double dt, double ego_accel_command) {
  time_ += dt;
  for (Actor& a : actors_) {
    a.step(dt, time_, ego_.x());
  }
  ego_.step(dt, ego_accel_command);
}

GroundTruthObject World::snapshot(const Actor& a) const {
  GroundTruthObject g;
  g.id = a.id();
  g.type = a.type();
  g.dims = a.dims();
  g.rel_position = {a.state().position.x - ego_.x(), a.state().position.y};
  g.abs_velocity = a.state().velocity;
  g.rel_velocity = {a.state().velocity.x - ego_.speed(),
                    a.state().velocity.y};
  g.abs_acceleration = a.state().acceleration;
  return g;
}

std::vector<GroundTruthObject> World::ground_truth() const {
  std::vector<GroundTruthObject> out;
  ground_truth_into(out);
  return out;
}

void World::ground_truth_into(std::vector<GroundTruthObject>& out) const {
  out.clear();
  out.reserve(actors_.size());
  for (const Actor& a : actors_) out.push_back(snapshot(a));
}

std::optional<GroundTruthObject> World::ground_truth_for(ActorId id) const {
  for (const Actor& a : actors_) {
    if (a.id() == id) return snapshot(a);
  }
  return std::nullopt;
}

bool World::collision() const {
  const double ego_half_len = ego_.dims().length / 2.0;
  const double ego_half_wid = ego_.dims().width / 2.0;
  for (const Actor& a : actors_) {
    const double dx = std::abs(a.state().position.x - ego_.x());
    const double dy = std::abs(a.state().position.y);
    if (dx < ego_half_len + a.dims().length / 2.0 &&
        dy < ego_half_wid + a.dims().width / 2.0) {
      return true;
    }
  }
  return false;
}

std::optional<GroundTruthObject> World::nearest_in_path() const {
  std::optional<GroundTruthObject> best;
  for (const Actor& a : actors_) {
    const GroundTruthObject g = snapshot(a);
    if (g.rel_position.x <= 0.0) continue;  // behind or alongside
    if (!Road::overlaps_ego_corridor(g.rel_position.y, g.dims.width,
                                     ego_.dims().width)) {
      continue;
    }
    if (!best || g.rel_position.x < best->rel_position.x) best = g;
  }
  return best;
}

}  // namespace rt::sim
