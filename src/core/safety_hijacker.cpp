#include "core/safety_hijacker.hpp"

#include <cmath>

namespace rt::core {

SafetyHijacker::SafetyHijacker(Config config,
                               perception::DetectorNoiseModel noise)
    : config_(config), noise_(noise) {}

void SafetyHijacker::set_oracle(AttackVector v,
                                std::shared_ptr<SafetyOracle> oracle) {
  oracles_[v] = std::move(oracle);
}

bool SafetyHijacker::has_oracle(AttackVector v) const {
  const auto it = oracles_.find(v);
  return it != oracles_.end() && it->second && it->second->trained();
}

int SafetyHijacker::k_max(AttackVector v, sim::ActorType cls) const {
  if (v == AttackVector::kDisappear) {
    // The paper calibrates against the *empirical* 99th percentile of the
    // characterized streak distribution (31 ped / 59.4 veh frames).
    const double p99 = noise_.for_class(cls).streak_p99;
    return std::max(config_.k_min,
                    static_cast<int>(std::floor(
                        p99 * config_.disappear_p99_mult)));
  }
  return config_.k_max_move;
}

ShDecision SafetyHijacker::decide(AttackVector v, sim::ActorType cls,
                                  double delta, math::Vec2 v_rel,
                                  math::Vec2 a_rel) const {
  ShDecision out;
  const auto it = oracles_.find(v);
  if (it == oracles_.end() || !it->second || !it->second->trained()) {
    return out;
  }
  SafetyOracle& oracle = *it->second;
  const int kmax = k_max(v, cls);
  const bool move_in = v == AttackVector::kMoveIn;
  if (move_in && delta > config_.max_launch_delta_move_in) return out;
  const double gamma =
      move_in ? config_.gamma_launch_move_in : config_.gamma_launch;

  const auto predict = [&](int k) {
    return oracle.predict(delta, v_rel, a_rel, static_cast<double>(k));
  };

  // No k can push the EV below the launch threshold -> stay dormant.
  const double best = predict(kmax);
  if (best > gamma) return out;

  // Binary search for the minimal sufficient k (f_alpha non-increasing).
  int lo = config_.k_min;
  int hi = kmax;
  if (predict(lo) <= gamma) {
    hi = lo;
  } else {
    while (lo + 1 < hi) {
      const int mid = (lo + hi) / 2;
      if (predict(mid) <= gamma) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
  }
  out.attack = true;
  out.k = hi;
  out.predicted_delta = predict(hi);
  return out;
}

}  // namespace rt::core
