#include "core/robotack.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rt::core {

Robotack::Robotack(RobotackConfig config, perception::CameraModel camera,
                   perception::DetectorNoiseModel noise,
                   perception::MotConfig mot_config, std::uint64_t seed)
    : config_(config),
      camera_(camera),
      noise_(noise),
      rng_(seed),
      mot_truth_(config.dt, mot_config, noise),
      projector_truth_(camera, config.dt),
      mot_ads_(config.dt, mot_config, noise),
      sm_(config.sm),
      sh_(config.sh, noise),
      th_(config.th, camera, noise) {
  log_.vector = config.vector;
}

void Robotack::set_oracle(AttackVector v,
                          std::shared_ptr<SafetyOracle> oracle) {
  sh_.set_oracle(v, std::move(oracle));
}

void Robotack::update_kinematics(
    const std::vector<perception::WorldTrack>& world) {
  constexpr double kAccelEmaAlpha = 0.3;
  for (const auto& w : world) {
    Kinematics& k = kinematics_[w.track_id];
    if (k.has_prev) {
      const math::Vec2 raw =
          (w.rel_velocity - k.prev_velocity) / config_.dt;
      k.accel_ema = k.accel_ema * (1.0 - kAccelEmaAlpha) +
                    raw * kAccelEmaAlpha;
    }
    k.prev_velocity = w.rel_velocity;
    k.has_prev = true;
  }
}

math::Vec2 Robotack::accel_estimate(int track_id) const {
  const auto it = kinematics_.find(track_id);
  return it != kinematics_.end() ? it->second.accel_ema : math::Vec2{};
}

double Robotack::malware_delta(const perception::WorldTrack& target,
                               double ego_speed) const {
  const double obj_len = sim::default_dimensions(target.cls).length;
  const double gap = target.rel_position.x - obj_len / 2.0 -
                     config_.ego_length / 2.0;
  const double d_stop =
      ego_speed * ego_speed / (2.0 * config_.comfort_decel);
  return gap - d_stop;
}

const perception::WorldTrack* Robotack::pick_target(
    const std::vector<perception::WorldTrack>& world) {
  const bool random_pick =
      config_.timing == TimingPolicy::kRandomUnconditional &&
      config_.randomize_target;
  // Candidate list reuses member scratch: this runs on every dormant frame.
  auto& candidates = candidates_scratch_;
  candidates.clear();
  for (const auto& w : world) {
    if (w.rel_position.x < config_.sm.min_target_range) continue;
    if (w.rel_position.x > config_.sm.max_target_range) continue;
    candidates.push_back(&w);
  }
  if (candidates.empty()) return nullptr;
  if (random_pick) {
    const auto i = static_cast<std::size_t>(rng_.uniform_int(
        0, static_cast<std::int64_t>(candidates.size()) - 1));
    return candidates[i];
  }
  // The victim is the object closest to the EV (§III-D phase 2).
  const auto* best = candidates.front();
  for (const auto* c : candidates) {
    if (c->rel_position.norm() < best->rel_position.norm()) best = c;
  }
  return best;
}

void Robotack::arm(const perception::WorldTrack& target, int k, double time,
                   double delta, double predicted_delta) {
  // Resolve the victim's track in the ADS-view replica: highest-IoU live
  // track of the same class.
  const auto truth_view = mot_truth_.track(target.track_id);
  if (!truth_view) return;
  int ads_id = -1;
  double best_iou = 0.05;
  for (const auto& t : mot_ads_.live_tracks()) {
    if (t.cls != target.cls) continue;
    const double o = math::iou(t.bbox, truth_view->bbox);
    if (o > best_iou) {
      best_iou = o;
      ads_id = t.track_id;
    }
  }
  if (ads_id < 0) return;  // the ADS does not track the victim (yet)

  AttackVector v = config_.vector;
  if (config_.timing == TimingPolicy::kRandomUnconditional &&
      config_.randomize_vector) {
    const std::int64_t pick = rng_.uniform_int(0, 2);
    v = pick == 0   ? AttackVector::kMoveOut
        : pick == 1 ? AttackVector::kMoveIn
                    : AttackVector::kDisappear;
  }

  const double y = target.rel_position.y;
  double direction = 1.0;
  double omega = 0.0;
  switch (v) {
    case AttackVector::kMoveOut:
      // Push away from the lane center, far enough to both leave the EV
      // corridor and break the camera/LiDAR pairing.
      direction = y >= 0.0 ? 1.0 : -1.0;
      omega = config_.breakaway_gate + config_.omega_margin;
      break;
    case AttackVector::kMoveIn:
      // Pull to the lane center.
      direction = y >= 0.0 ? -1.0 : 1.0;
      omega = std::max(std::abs(y), config_.breakaway_gate) +
              config_.omega_margin;
      break;
    case AttackVector::kDisappear:
      break;
  }

  th_.begin(v, direction, omega);
  k_left_ = k;
  victim_truth_track_ = target.track_id;
  victim_ads_track_ = ads_id;
  last_victim_range_ = target.rel_position.x;

  log_.triggered = true;
  ++log_.triggers;
  log_.vector = v;
  log_.start_time = time;
  log_.delta_at_launch = delta;
  log_.v_rel_at_launch = target.rel_velocity;
  log_.a_rel_at_launch = accel_estimate(target.track_id);
  log_.predicted_delta = predicted_delta;
  log_.planned_k = k;
  log_.omega_target = omega;
  log_.victim_cls = target.cls;
  log_.victim_truth_id = target.last_truth_id;
}

void Robotack::maybe_arm(const std::vector<perception::WorldTrack>& world,
                         double ego_speed, double time) {
  if (log_.triggers >= config_.max_triggers) return;
  const auto* target = pick_target(world);
  if (target == nullptr) return;

  const double delta = malware_delta(*target, ego_speed);
  const math::Vec2 v_rel = target->rel_velocity;
  const math::Vec2 a_rel = accel_estimate(target->track_id);

  switch (config_.timing) {
    case TimingPolicy::kSafetyHijacker: {
      if (!sm_.matches(*target, config_.vector)) return;
      const ShDecision d =
          sh_.decide(config_.vector, target->cls, delta, v_rel, a_rel);
      if (d.attack) arm(*target, d.k, time, delta, d.predicted_delta);
      return;
    }
    case TimingPolicy::kRandomAfterMatch: {
      if (!sm_.matches(*target, config_.vector)) return;
      if (!first_match_time_) {
        first_match_time_ = time;
        random_delay_ = rng_.uniform(0.0, config_.random_delay_max);
      }
      if (time >= *first_match_time_ + random_delay_) {
        const int k = static_cast<int>(rng_.uniform_int(
            config_.random_k_min, config_.random_k_max));
        arm(*target, k, time, delta, 0.0);
      }
      return;
    }
    case TimingPolicy::kRandomUnconditional: {
      if (!random_params_drawn_) {
        random_params_drawn_ = true;
        random_start_time_ = rng_.uniform(config_.random_start_min,
                                          config_.random_start_max);
      }
      if (time >= random_start_time_) {
        const int k = static_cast<int>(rng_.uniform_int(
            config_.random_k_min, config_.random_k_max));
        arm(*target, k, time, delta, 0.0);
      }
      return;
    }
    case TimingPolicy::kAtDeltaThreshold: {
      if (!sm_.matches(*target, config_.vector)) return;
      if (delta <= config_.delta_trigger) {
        arm(*target, config_.fixed_k, time, delta, 0.0);
      }
      return;
    }
  }
}

void Robotack::process_in_place(perception::CameraFrame& frame,
                                double ego_speed) {
  // Phase 2: reconstruct the world from the hacked camera feed. The truth
  // replica consumes the frame *before* any perturbation is applied.
  mot_truth_.update_into(frame, truth_tracks_scratch_);
  projector_truth_.project_into(truth_tracks_scratch_, world_scratch_);
  const auto& world = world_scratch_;
  update_kinematics(world);

  if (!attack_active()) {
    maybe_arm(world, ego_speed, frame.time);
  }

  // Phase 3: trigger the trajectory hijacker.
  if (attack_active()) {
    // Victim's current true state (range + where its detection should be).
    std::optional<math::Bbox> victim_box;
    for (const auto& w : world) {
      if (w.track_id != victim_truth_track_) continue;
      last_victim_range_ = w.rel_position.x;
      break;
    }
    if (const auto tv = mot_truth_.track(victim_truth_track_)) {
      victim_box = tv->bbox;
    }

    // Find the victim's detection in the outgoing frame.
    std::optional<std::size_t> det_index;
    if (victim_box) {
      double best = 0.1;
      for (std::size_t i = 0; i < frame.detections.size(); ++i) {
        const double o = math::iou(frame.detections[i].bbox, *victim_box);
        if (o > best) {
          best = o;
          det_index = i;
        }
      }
    }

    const auto ads_pred = mot_ads_.predict_next_bbox(victim_ads_track_);
    const auto res =
        th_.apply(frame, det_index, ads_pred, last_victim_range_);
    if (res.perturbed) ++log_.frames_perturbed;
    --k_left_;
    if (k_left_ == 0) {
      log_.k_prime = th_.k_prime();
    }
  }

  // Keep the ADS-view replica in lockstep with what the ADS receives.
  mot_ads_.update_into(frame, ads_tracks_scratch_);
}

perception::CameraFrame Robotack::process(
    const perception::CameraFrame& true_frame, double ego_speed) {
  perception::CameraFrame out = true_frame;
  process_in_place(out, ego_speed);
  return out;
}

}  // namespace rt::core
