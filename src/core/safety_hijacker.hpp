#pragma once

#include <map>
#include <memory>
#include <optional>

#include "core/attack_vector.hpp"
#include "core/safety_oracle.hpp"
#include "perception/noise_model.hpp"
#include "sim/types.hpp"

namespace rt::core {

/// Safety-hijacker decision for one time step.
struct ShDecision {
  bool attack{false};
  int k{0};                    ///< attack duration in frames (K)
  double predicted_delta{0.0}; ///< oracle's delta_{t+K}
};

/// The safety hijacker ("SH", §IV-B): decides *when* to attack and for how
/// long, by querying the per-vector NN oracle.
///
/// Policy (Eq. 2): find the minimal k <= K_max whose predicted delta_{t+k}
/// drops below the launch threshold gamma; attack with K = k if it exists.
/// Because f_alpha is non-increasing in k for the scenarios considered
/// (longer deception only erodes safety further), the minimal k is found by
/// binary search in O(log K_max) oracle calls — the paper's trick for
/// keeping the malware's decision latency negligible.
///
/// K_max encodes stealth: for Disappear it is the 99th percentile of the
/// class's natural misdetection-streak distribution (a longer blackout
/// would be statistically implausible, §VI-A); for Move_In/Move_Out it is
/// the generic 1-60-frame window of §III-B (we allow a small margin).
class SafetyHijacker {
 public:
  struct Config {
    /// Launch threshold gamma: attack only if some k drives the predicted
    /// safety potential below this (the paper chooses ~10 m via simulation;
    /// our calibration lands at 8 m for the same "EB is now forced"
    /// semantics).
    double gamma_launch{6.0};
    /// Smallest attack worth launching.
    int k_min{3};
    /// K_max for Move_In / Move_Out.
    int k_max_move{70};
    /// Move_In only: do not launch while the malware-estimated delta is
    /// still above this (a cut-in forged too far ahead merely slows the EV;
    /// forged close, it forces the panic brake).
    double max_launch_delta_move_in{14.0};
    /// Move_In only: looser prediction threshold — the comfortable-stop
    /// plateau sits near the vehicle stop margin, and EB-grade outcomes
    /// live just below it.
    double gamma_launch_move_in{9.5};
    /// Multiplier on the streak p99 for Disappear's K_max (1.0 = paper).
    double disappear_p99_mult{1.0};
  };

  SafetyHijacker(Config config, perception::DetectorNoiseModel noise);

  /// Installs the trained oracle for a vector.
  void set_oracle(AttackVector v, std::shared_ptr<SafetyOracle> oracle);
  [[nodiscard]] bool has_oracle(AttackVector v) const;

  /// K_max for the given vector and victim class.
  [[nodiscard]] int k_max(AttackVector v, sim::ActorType cls) const;

  /// The decision of Algorithm 1 line 10.
  [[nodiscard]] ShDecision decide(AttackVector v, sim::ActorType cls,
                                  double delta, math::Vec2 v_rel,
                                  math::Vec2 a_rel) const;

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
  perception::DetectorNoiseModel noise_;
  std::map<AttackVector, std::shared_ptr<SafetyOracle>> oracles_;
};

}  // namespace rt::core
