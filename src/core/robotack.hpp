#pragma once

#include <memory>
#include <optional>
#include <unordered_map>

#include "core/attack_vector.hpp"
#include "core/safety_hijacker.hpp"
#include "core/scenario_matcher.hpp"
#include "core/trajectory_hijacker.hpp"
#include "perception/camera_model.hpp"
#include "perception/detection.hpp"
#include "perception/mot_tracker.hpp"
#include "perception/track_projection.hpp"
#include "stats/rng.hpp"

namespace rt::core {

/// When the malware pulls the trigger. `kSafetyHijacker` is RoboTack
/// proper; the others realize the paper's comparison conditions.
enum class TimingPolicy : std::uint8_t {
  /// Full RoboTack: NN-timed launch (Table II "R" rows).
  kSafetyHijacker,
  /// "R w/o SH" (§VI-B/D): scenario matcher + trajectory hijacker, but the
  /// launch time is random (uniform delay after the first SM match) and K
  /// is random in [15, 85].
  kRandomAfterMatch,
  /// "Baseline-Random" (Table II last row): random target, random vector,
  /// random start time, random K — no SM, no SH.
  kRandomUnconditional,
  /// Scripted launch at a delta threshold with a fixed K — used to generate
  /// the safety hijacker's training data (§IV-B's delta_inject sweeps).
  kAtDeltaThreshold,
};

[[nodiscard]] constexpr const char* to_string(TimingPolicy p) {
  switch (p) {
    case TimingPolicy::kSafetyHijacker:
      return "R";
    case TimingPolicy::kRandomAfterMatch:
      return "R w/o SH";
    case TimingPolicy::kRandomUnconditional:
      return "Baseline-Random";
    case TimingPolicy::kAtDeltaThreshold:
      return "Scripted";
  }
  return "?";
}

/// Everything the deployed malware is configured with (Phase 1 of §III-D).
struct RobotackConfig {
  AttackVector vector{AttackVector::kMoveOut};
  TimingPolicy timing{TimingPolicy::kSafetyHijacker};
  /// Attack bursts allowed per run (Table II campaigns use one).
  int max_triggers{1};

  /// Lateral drift target Omega: breakaway gate + margin for Move_Out;
  /// |y| (to lane center) for Move_In.
  double breakaway_gate{2.5};
  double omega_margin{0.4};

  /// kRandomAfterMatch: launch delay ~ U[0, random_delay_max] seconds after
  /// the first SM match.
  double random_delay_max{8.0};
  /// kRandomUnconditional: start time ~ U[min, max] seconds.
  double random_start_min{1.0};
  double random_start_max{20.0};
  /// Random-policy attack duration ~ U[k_min, k_max] frames (paper: 15-85).
  int random_k_min{15};
  int random_k_max{85};
  bool randomize_vector{false};  ///< kRandomUnconditional picks the vector
  bool randomize_target{false};  ///< kRandomUnconditional picks the victim

  /// kAtDeltaThreshold: launch when delta_t <= delta_trigger, for fixed_k.
  double delta_trigger{20.0};
  int fixed_k{30};

  /// Safety-model parameters the malware replicates (ADS source access).
  double comfort_decel{2.0};
  double ego_length{4.6};

  double dt{1.0 / 15.0};

  TrajectoryHijacker::Config th{};
  SafetyHijacker::Config sh{};
  ScenarioMatcher::Config sm{};
};

/// Everything the evaluation needs to know about one run's attack.
struct AttackLog {
  bool triggered{false};
  int triggers{0};
  AttackVector vector{AttackVector::kMoveOut};
  double start_time{0.0};
  double delta_at_launch{0.0};
  /// Malware-estimated relative velocity/acceleration of the victim at
  /// launch (the oracle's input features).
  math::Vec2 v_rel_at_launch;
  math::Vec2 a_rel_at_launch;
  double predicted_delta{0.0};  ///< SH's delta_{t+K} (0 for random policies)
  int planned_k{0};
  int frames_perturbed{0};
  int k_prime{-1};
  double omega_target{0.0};
  sim::ActorType victim_cls{sim::ActorType::kVehicle};
  sim::ActorId victim_truth_id{-1};
};

/// RoboTack: the smart malware on the camera link (Algorithm 1).
///
/// Sits man-in-the-middle between the camera's detector output and the ADS.
/// Each camera frame flows through `process`, which
///  1. updates the malware's *truth replica* of the perception stack (its
///     own MOT + projection on the unperturbed feed — the paper's
///     "Perception(I_t)" giving O_t and S_hat_t);
///  2. while dormant, picks the victim (object closest to the EV), runs the
///     scenario matcher (Table I) and the timing policy (safety hijacker
///     for RoboTack proper) to decide whether to arm;
///  3. while armed, runs the trajectory hijacker on the outgoing frame and
///     keeps a second *ADS-view replica* tracker in sync with what the ADS
///     actually received — the state Eq. 4's association constraint is
///     evaluated against.
///
/// The malware never touches LiDAR, never reads ground truth, and derives
/// everything (delta_t, relative velocity/acceleration) from its camera-only
/// world reconstruction plus the ego's own speed.
class Robotack {
 public:
  Robotack(RobotackConfig config, perception::CameraModel camera,
           perception::DetectorNoiseModel noise,
           perception::MotConfig mot_config, std::uint64_t seed);

  /// Installs a trained oracle for an attack vector.
  void set_oracle(AttackVector v, std::shared_ptr<SafetyOracle> oracle);

  /// Intercepts one camera frame *in place*: `frame` arrives as the true
  /// detector output and leaves as what the ADS will receive. This is the
  /// campaign hot path — zero heap allocations at steady state (the malware
  /// reuses member scratch for its replica trackers and world buffers).
  void process_in_place(perception::CameraFrame& frame, double ego_speed);

  /// Copying wrapper over `process_in_place` (historical API).
  [[nodiscard]] perception::CameraFrame process(
      const perception::CameraFrame& true_frame, double ego_speed);

  [[nodiscard]] bool attack_active() const { return k_left_ > 0; }
  [[nodiscard]] const AttackLog& log() const { return log_; }
  [[nodiscard]] const RobotackConfig& config() const { return config_; }
  [[nodiscard]] const SafetyHijacker& safety_hijacker() const { return sh_; }

 private:
  struct Kinematics {
    math::Vec2 prev_velocity;
    math::Vec2 accel_ema;
    bool has_prev{false};
  };

  void maybe_arm(const std::vector<perception::WorldTrack>& world,
                 double ego_speed, double time);
  void arm(const perception::WorldTrack& target, int k, double time,
           double delta, double predicted_delta);
  [[nodiscard]] const perception::WorldTrack* pick_target(
      const std::vector<perception::WorldTrack>& world);
  [[nodiscard]] double malware_delta(const perception::WorldTrack& target,
                                     double ego_speed) const;
  [[nodiscard]] math::Vec2 accel_estimate(int track_id) const;
  void update_kinematics(const std::vector<perception::WorldTrack>& world);

  RobotackConfig config_;
  perception::CameraModel camera_;
  perception::DetectorNoiseModel noise_;
  stats::Rng rng_;

  // Truth replica (fed with unperturbed frames).
  perception::MotTracker mot_truth_;
  perception::TrackProjector projector_truth_;
  // ADS-view replica (fed with exactly what the ADS receives).
  perception::MotTracker mot_ads_;

  ScenarioMatcher sm_;
  SafetyHijacker sh_;
  TrajectoryHijacker th_;

  std::unordered_map<int, Kinematics> kinematics_;

  // Per-frame buffers reused across `process_in_place` calls so the attack
  // path allocates nothing at steady state (pinned in test_alloc).
  std::vector<perception::TrackView> truth_tracks_scratch_;
  std::vector<perception::WorldTrack> world_scratch_;
  std::vector<perception::TrackView> ads_tracks_scratch_;
  std::vector<const perception::WorldTrack*> candidates_scratch_;

  // Armed-attack state.
  int k_left_{0};
  int victim_truth_track_{-1};
  int victim_ads_track_{-1};
  double last_victim_range_{30.0};

  // Timing-policy state.
  std::optional<double> first_match_time_;
  double random_delay_{0.0};
  double random_start_time_{0.0};
  bool random_params_drawn_{false};

  AttackLog log_;
};

}  // namespace rt::core
