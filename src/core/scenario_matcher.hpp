#pragma once

#include <vector>

#include "core/attack_vector.hpp"
#include "perception/track_projection.hpp"

namespace rt::core {

/// Lateral trajectory classification of the target object relative to the
/// EV lane, as used by Table I.
enum class LateralTrajectory : std::uint8_t {
  kMovingIn,   ///< approaching the EV lane from outside
  kKeep,       ///< holding its lateral position
  kMovingOut,  ///< leaving the EV lane / receding from it
};

[[nodiscard]] constexpr const char* to_string(LateralTrajectory t) {
  switch (t) {
    case LateralTrajectory::kMovingIn:
      return "Moving-In";
    case LateralTrajectory::kKeep:
      return "Keep";
    case LateralTrajectory::kMovingOut:
      return "Moving-Out";
  }
  return "?";
}

/// The rule-based scenario matcher ("SM", §IV-A).
///
/// Implements Table I verbatim:
///
///   TO trajectory | TO in EV-lane        | TO not in EV-lane
///   Moving In     | —                    | Move_Out / Disappear
///   Keep          | Move_Out / Disappear | Move_In
///   Moving Out    | Move_In              | —
///
/// Deliberately rule-based (no learning) to keep its execution time — and
/// hence the malware's runtime footprint — negligible.
class ScenarioMatcher {
 public:
  struct Config {
    /// Lateral speeds below this are classified "Keep".
    double lateral_speed_threshold{0.25};
    /// Targets further ahead than this are not worth attacking.
    double max_target_range{100.0};
    /// Targets closer than this are already past the point of attack.
    double min_target_range{3.0};
  };

  ScenarioMatcher() : ScenarioMatcher(Config{}) {}
  explicit ScenarioMatcher(Config config) : config_(config) {}

  /// Classifies the target's lateral trajectory w.r.t. the EV lane.
  [[nodiscard]] LateralTrajectory classify(
      const perception::WorldTrack& target) const;

  /// Admissible attack vectors for the target per Table I (empty when the
  /// target is out of attack range or the table row is "—").
  [[nodiscard]] std::vector<AttackVector> admissible(
      const perception::WorldTrack& target) const;

  /// Convenience: true if `v` is admissible for the target.
  [[nodiscard]] bool matches(const perception::WorldTrack& target,
                             AttackVector v) const;

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
};

}  // namespace rt::core
