#pragma once

#include <optional>

#include "math/bbox.hpp"

namespace rt::core {

/// Feasibility model of the pixel-level adversarial patch (Jia et al. [15],
/// the "how" of the attack).
///
/// We do not render pixels; what the downstream system observes is only the
/// *detector output* the patch induces. This class models the achievable-
/// output feasible set that Eq. 4's third constraint encodes:
/// `IoU(o_t + omega_t, patch) >= gamma` — the faked box must stay attached
/// to the painted patch region. Since the patch the attacker painted last
/// frame is (approximately) where last frame's faked box was, the
/// operational consequence is a bound on the *frame-to-frame jump* of the
/// faked box. `max_shift` computes that bound.
class PatchModel {
 public:
  explicit PatchModel(double min_iou = 0.30) : min_iou_(min_iou) {}

  /// Registers where the patch was painted this frame (the faked box).
  void set_patch(const math::Bbox& faked_box) { patch_ = faked_box; }
  void reset() { patch_.reset(); }
  [[nodiscard]] bool has_patch() const { return patch_.has_value(); }
  [[nodiscard]] double min_iou() const { return min_iou_; }

  /// True if a faked box at `candidate` keeps the required overlap with the
  /// current patch. Vacuously true before the first frame of an attack
  /// (the patch can be painted anywhere initially).
  [[nodiscard]] bool feasible(const math::Bbox& candidate) const {
    return !patch_ || math::iou(candidate, *patch_) >= min_iou_;
  }

  /// Largest |dx| such that `base.translated(dir * dx, 0)` stays feasible.
  /// `dir` is +-1. Monotone in |dx|, solved by bisection.
  [[nodiscard]] double max_shift(const math::Bbox& base, double dir,
                                 double upper_bound) const;

 private:
  double min_iou_;
  std::optional<math::Bbox> patch_;
};

}  // namespace rt::core
