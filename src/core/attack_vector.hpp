#pragma once

#include <cstdint>

namespace rt::core {

/// The three attack vectors of §III-C.
enum class AttackVector : std::uint8_t {
  /// Fool the EV into believing the target object is leaving (or staying
  /// out of) the EV's lane -> EV keeps speed / accelerates -> collision.
  kMoveOut,
  /// Fool the EV into believing the target object is entering the EV's
  /// lane -> forced emergency braking.
  kMoveIn,
  /// Fool the EV into believing the target object vanished -> same effect
  /// as Move_Out.
  kDisappear,
};

[[nodiscard]] constexpr const char* to_string(AttackVector v) {
  switch (v) {
    case AttackVector::kMoveOut:
      return "Move_Out";
    case AttackVector::kMoveIn:
      return "Move_In";
    case AttackVector::kDisappear:
      return "Disappear";
  }
  return "?";
}

}  // namespace rt::core
