#include "core/trajectory_hijacker.hpp"

#include <algorithm>
#include <cmath>

namespace rt::core {

TrajectoryHijacker::TrajectoryHijacker(Config config,
                                       perception::CameraModel camera,
                                       perception::DetectorNoiseModel noise)
    : config_(config),
      camera_(camera),
      noise_(noise),
      patch_(config.patch_iou_min) {}

void TrajectoryHijacker::begin(AttackVector vector, double direction,
                               double omega_target_m) {
  vector_ = vector;
  direction_ = direction;
  omega_target_m_ = omega_target_m;
  offset_m_ = 0.0;
  k_prime_ = 0;
  hold_phase_ = vector == AttackVector::kDisappear;
  patch_.reset();
}

TrajectoryHijacker::FrameResult TrajectoryHijacker::apply(
    perception::CameraFrame& frame,
    std::optional<std::size_t> victim_detection_index,
    const std::optional<math::Bbox>& ads_predicted_bbox, double range_m) {
  FrameResult result;
  result.hold_phase = hold_phase_;

  if (vector_ == AttackVector::kDisappear) {
    if (victim_detection_index) {
      frame.detections.erase(frame.detections.begin() +
                             static_cast<std::ptrdiff_t>(
                                 *victim_detection_index));
      result.perturbed = true;
    }
    return result;
  }

  if (!victim_detection_index) return result;  // natural miss this frame
  perception::Detection& det =
      frame.detections[*victim_detection_index];
  const double true_u = det.bbox.cx;
  // Signed pixel offset corresponding to the full Omega at current range.
  const double target_px_offset =
      camera_.lateral_m_to_px(direction_ * omega_target_m_, range_m);

  double u_fake = true_u;
  if (hold_phase_) {
    // Hold the achieved world offset: the faked box follows the real
    // object's motion plus the constant lateral displacement.
    u_fake = true_u + camera_.lateral_m_to_px(offset_m_, range_m);
  } else {
    // The stealth budget is an *innovation* budget: the dragged tracker's
    // prediction is where the KF expects the measurement, so the faked box
    // may deviate from it by at most the characterized Gaussian noise band
    // (Eq. 4's omega in [mu - sigma, mu + sigma]). Drift accumulates
    // because the prediction itself follows the previous faked positions.
    const double base_u =
        ads_predicted_bbox ? ads_predicted_bbox->cx : true_u;
    const double u_target = true_u + target_px_offset;
    double step = u_target - base_u;
    if (config_.enforce_noise_bound) {
      const auto& fit = noise_.for_class(det.cls).center_x;
      const double bound =
          (std::abs(fit.mu) + config_.sigma_mult * fit.sigma) * det.bbox.w;
      step = std::clamp(step, -bound, bound);
    }
    // Association (M <= lambda) and patch (IoU >= gamma) feasibility:
    // shrink the step toward the prediction until both hold.
    const auto candidate = [&](double t) {
      math::Bbox b = det.bbox;
      b.cx = base_u + t * step;
      return b;
    };
    const auto ok = [&](double t) {
      const math::Bbox b = candidate(t);
      const bool assoc_ok =
          !ads_predicted_bbox ||
          math::iou(b, *ads_predicted_bbox) >= config_.association_iou_min;
      return assoc_ok && patch_.feasible(b);
    };
    double t_best = 0.0;
    if (ok(1.0)) {
      t_best = 1.0;
    } else if (ok(0.0)) {
      double lo = 0.0;
      double hi = 1.0;
      for (int i = 0; i < 25; ++i) {
        const double mid = (lo + hi) / 2.0;
        (ok(mid) ? lo : hi) = mid;
      }
      t_best = lo;
    }
    u_fake = base_u + t_best * step;
    ++k_prime_;
    offset_m_ = camera_.lateral_px_to_m(u_fake - true_u, range_m);
    if (std::abs(offset_m_) >= omega_target_m_ - 1e-6) {
      hold_phase_ = true;
      // Snap to the exact target so the hold phase presents a constant
      // offset.
      offset_m_ = direction_ * omega_target_m_;
    }
  }

  result.shift_px = u_fake - true_u;
  det.bbox.cx = u_fake;
  patch_.set_patch(det.bbox);
  result.perturbed = true;
  result.hold_phase = hold_phase_;
  return result;
}

}  // namespace rt::core
