#include "core/scenario_matcher.hpp"

#include <algorithm>
#include <cmath>

#include "sim/road.hpp"

namespace rt::core {

LateralTrajectory ScenarioMatcher::classify(
    const perception::WorldTrack& target) const {
  const double y = target.rel_position.y;
  const double vy = target.rel_velocity.y;
  if (std::abs(vy) < config_.lateral_speed_threshold) {
    return LateralTrajectory::kKeep;
  }
  if (sim::Road::in_ego_lane(y)) {
    // Inside the EV lane, any sustained motion toward a lane boundary is
    // "moving out"; drifting across the center is effectively keeping.
    const bool toward_boundary = (y >= 0.0 && vy > 0.0) ||
                                 (y < 0.0 && vy < 0.0) ||
                                 std::abs(y) < 0.3;
    return toward_boundary ? LateralTrajectory::kMovingOut
                           : LateralTrajectory::kKeep;
  }
  // Outside the EV lane: approaching the lane center is "moving in".
  const bool approaching = (y > 0.0 && vy < 0.0) || (y < 0.0 && vy > 0.0);
  return approaching ? LateralTrajectory::kMovingIn
                     : LateralTrajectory::kMovingOut;
}

std::vector<AttackVector> ScenarioMatcher::admissible(
    const perception::WorldTrack& target) const {
  const double range = target.rel_position.x;
  if (range < config_.min_target_range || range > config_.max_target_range) {
    return {};
  }
  const bool in_lane = sim::Road::in_ego_lane(target.rel_position.y);
  switch (classify(target)) {
    case LateralTrajectory::kMovingIn:
      // Only defined for targets outside the lane (Table I row 1).
      return in_lane ? std::vector<AttackVector>{}
                     : std::vector<AttackVector>{AttackVector::kMoveOut,
                                                 AttackVector::kDisappear};
    case LateralTrajectory::kKeep:
      return in_lane ? std::vector<AttackVector>{AttackVector::kMoveOut,
                                                 AttackVector::kDisappear}
                     : std::vector<AttackVector>{AttackVector::kMoveIn};
    case LateralTrajectory::kMovingOut:
      return in_lane ? std::vector<AttackVector>{AttackVector::kMoveIn}
                     : std::vector<AttackVector>{};
  }
  return {};
}

bool ScenarioMatcher::matches(const perception::WorldTrack& target,
                              AttackVector v) const {
  const auto vs = admissible(target);
  return std::find(vs.begin(), vs.end(), v) != vs.end();
}

}  // namespace rt::core
