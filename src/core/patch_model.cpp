#include "core/patch_model.hpp"

namespace rt::core {

double PatchModel::max_shift(const math::Bbox& base, double dir,
                             double upper_bound) const {
  if (!patch_) return upper_bound;
  if (!feasible(base)) return 0.0;
  if (feasible(base.translated(dir * upper_bound, 0.0))) return upper_bound;
  double lo = 0.0;
  double hi = upper_bound;
  for (int i = 0; i < 30; ++i) {
    const double mid = (lo + hi) / 2.0;
    if (feasible(base.translated(dir * mid, 0.0))) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace rt::core
