#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "math/vec2.hpp"
#include "nn/dataset.hpp"
#include "nn/mlp.hpp"
#include "nn/trainer.hpp"

namespace rt::core {

/// One oracle query — the argument tuple of SafetyOracle::predict, as a
/// value so query sets can be gathered and served in one batch.
struct OracleQuery {
  double delta{0.0};
  math::Vec2 v_rel{};
  math::Vec2 a_rel{};
  double k{0.0};
};

/// The learned oracle f_alpha of §IV-B: predicts the safety potential
/// delta_{t+k} the EV will have after being attacked for k consecutive
/// frames, from the state observable at time t.
///
/// Input feature vector (dimension 6):
///   [delta_t, v_rel.x, v_rel.y, a_rel.x, a_rel.y, k]
/// Output: predicted delta_{t+k} in meters.
///
/// One oracle is trained per attack vector ("the malware uses a uniquely
/// trained NN for each attack vector"), on data collected by running
/// attacks with scripted (delta_inject, k) grids — see
/// experiments/sh_training.
class SafetyOracle {
 public:
  static constexpr std::size_t kInputDim = 6;

  /// Training provenance, serialized alongside the weights so a cached
  /// model states which curriculum produced it. Legacy cache files carry
  /// none — `load` then leaves every field empty/zero. The cache format is
  /// token-based, so any whitespace in the string fields is mapped to '_'
  /// on save; the curriculum is a comma-joined list of ScenarioRegistry
  /// keys.
  struct Provenance {
    std::string vector;            ///< e.g. "Move_Out"
    std::string curriculum;        ///< e.g. "DS-1,DS-2" or "cut-in"
    std::uint64_t fingerprint{0};  ///< sh_dataset_fingerprint at train time
  };

  /// Fresh (untrained) oracle with the paper's architecture.
  explicit SafetyOracle(std::uint64_t seed = 11);

  /// Assembles the feature vector.
  [[nodiscard]] static std::vector<double> features(double delta,
                                                    math::Vec2 v_rel,
                                                    math::Vec2 a_rel,
                                                    double k);

  /// Predicted delta_{t+k}. Read-only (inference forward mutates nothing),
  /// so one trained oracle may be shared across parallel campaign runs.
  [[nodiscard]] double predict(double delta, math::Vec2 v_rel,
                               math::Vec2 a_rel, double k);

  /// Batched inference: serves all queries through ONE matrix-matrix
  /// forward (Mlp::predict_batch_into) instead of |queries| matrix-vector
  /// forwards. `out[i]` is BIT-IDENTICAL to `predict(queries[i])` — the
  /// kernel contract guarantees per-column accumulation order is
  /// independent of batch width — and `out.size()` must equal
  /// `queries.size()`. Zero allocations at steady state for a given batch
  /// capacity (thread-local gather matrix + workspace), and safe to call
  /// concurrently on one shared trained oracle.
  void predict_batch(std::span<const OracleQuery> queries,
                     std::span<double> out);

  /// Trains on the dataset (features per `features()`, target ground-truth
  /// delta_{t+k}); fits the input scaler internally.
  nn::TrainResult train(const nn::Dataset& data, nn::TrainConfig config = {});

  /// Weight caching for the benchmark harness.
  void save(const std::string& path);
  [[nodiscard]] bool load(const std::string& path);

  [[nodiscard]] bool trained() const { return trained_; }
  [[nodiscard]] nn::Mlp& net() { return net_; }

  /// Bit-exact digest of the trained model: network weights
  /// (Mlp::content_hash) folded with the fitted scaler's means and stddevs.
  /// Golden tests pin training pipelines on this.
  [[nodiscard]] std::uint64_t content_hash();

  [[nodiscard]] const Provenance& provenance() const { return provenance_; }
  void set_provenance(Provenance p) { provenance_ = std::move(p); }

 private:
  nn::Mlp net_;
  nn::StandardScaler scaler_;
  Provenance provenance_{};
  bool trained_{false};
};

/// Per-thread gather buffer for batched oracle serving.
///
/// Scan loops that issue many independent oracle queries (the transfer
/// matrix's held-out eval sweep, fig8's k sweep, any campaign-side consumer
/// with query-level parallelism) push queries as they discover them and
/// flush a full buffer through `SafetyOracle::predict_batch` — turning B
/// matrix-vector forwards into one matrix-matrix forward. Lock-free by
/// construction: each worker thread (e.g. each CampaignScheduler or
/// transfer-matrix pool worker) owns its own buffer and nothing is shared,
/// so concurrent threads batch against one shared oracle without any
/// synchronization. Predictions are bit-identical to unbatched calls in
/// push order.
class OracleBatchBuffer {
 public:
  /// `capacity` is the flush threshold (32 is the measured sweet spot for
  /// the paper's small-MLP shape; see BM_OracleBatchInference).
  explicit OracleBatchBuffer(std::size_t capacity = 32);

  void push(const OracleQuery& q) { pending_.push_back(q); }
  [[nodiscard]] bool full() const { return pending_.size() >= capacity_; }
  [[nodiscard]] bool empty() const { return pending_.empty(); }
  [[nodiscard]] std::size_t size() const { return pending_.size(); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  void clear() { pending_.clear(); }

  /// Serves every pending query through one batched forward and clears the
  /// buffer. The returned span (one prediction per pushed query, in push
  /// order) points at internal storage valid until the next `flush`.
  std::span<const double> flush(SafetyOracle& oracle);

 private:
  std::size_t capacity_;
  std::vector<OracleQuery> pending_;
  std::vector<double> results_;
};

}  // namespace rt::core
