#pragma once

#include <optional>

#include "core/attack_vector.hpp"
#include "core/patch_model.hpp"
#include "math/bbox.hpp"
#include "perception/camera_model.hpp"
#include "perception/detection.hpp"
#include "perception/noise_model.hpp"

namespace rt::core {

/// The trajectory hijacker ("TH", §IV-C): per-frame perturbation of the
/// camera stream so that the victim object's *perceived* trajectory matches
/// the chosen attack vector, while every perturbation stays inside the
/// detector's natural noise envelope.
///
/// For Move_Out / Move_In it implements Eq. 4: each frame it shifts the
/// victim's detection as far as allowed toward the target offset Omega,
/// where "allowed" is the minimum of
///  - the noise bound: |shift| <= (|mu| + sigma_mult * sigma) * bbox_width,
///    the paper's "within one standard deviation of the modeled Gaussian";
///  - the association bound: IoU(shifted box, victim track prediction) must
///    stay above the Hungarian gate (Eq. 4's "M <= lambda");
///  - the patch bound: the faked box must overlap the painted patch region
///    (Eq. 4's "IoU(o_t + omega_t, patch) >= gamma").
/// Once the accumulated offset reaches Omega (after K' frames — Fig. 7),
/// the hijacker *holds* the faked trajectory for the remaining K - K'
/// frames (§VI-E).
///
/// For Disappear it suppresses the victim's detection outright; duration
/// budgeting against the misdetection-streak tail is the safety hijacker's
/// job (K <= K_max).
class TrajectoryHijacker {
 public:
  struct Config {
    /// Minimum IoU between the shifted detection and the victim's (ADS-side)
    /// track prediction to keep the association alive. Must exceed
    /// 1 - MotConfig::max_cost.
    double association_iou_min{0.25};
    /// Minimum IoU between consecutive faked boxes (patch constraint).
    double patch_iou_min{0.30};
    /// Multiplier on sigma of the per-frame noise bound (1.0 = the paper's
    /// stealth rule; raised/removed only in ablations).
    double sigma_mult{1.0};
    /// When false, the noise bound is ignored entirely (ablation).
    bool enforce_noise_bound{true};
  };

  /// Outcome of perturbing one frame.
  struct FrameResult {
    bool perturbed{false};    ///< a detection was shifted or suppressed
    double shift_px{0.0};     ///< applied pixel shift (Move_* only)
    bool hold_phase{false};   ///< true once Omega has been reached
  };

  TrajectoryHijacker(Config config, perception::CameraModel camera,
                     perception::DetectorNoiseModel noise);

  /// Arms the hijacker for a new attack burst.
  /// `direction` is the world-frame lateral shift sign (+1 left, -1 right);
  /// `omega_target_m` the total lateral offset to reach (0 for Disappear).
  void begin(AttackVector vector, double direction, double omega_target_m);

  /// Perturbs `frame` in place for this attack step.
  /// `victim_detection_index`: which detection belongs to the victim
  /// (nullopt if the detector naturally missed it this frame);
  /// `ads_predicted_bbox`: the victim track's one-step prediction in the
  /// *ADS's* tracker (the thing Eq. 4 pushes away from);
  /// `range_m`: current estimated range to the victim.
  FrameResult apply(perception::CameraFrame& frame,
                    std::optional<std::size_t> victim_detection_index,
                    const std::optional<math::Bbox>& ads_predicted_bbox,
                    double range_m);

  /// Frames spent actively shifting (K'), valid once the hold phase began
  /// or the attack ended.
  [[nodiscard]] int k_prime() const { return k_prime_; }
  [[nodiscard]] bool in_hold_phase() const { return hold_phase_; }
  [[nodiscard]] double accumulated_offset_m() const { return offset_m_; }
  [[nodiscard]] AttackVector vector() const { return vector_; }
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
  perception::CameraModel camera_;
  perception::DetectorNoiseModel noise_;
  PatchModel patch_;
  AttackVector vector_{AttackVector::kDisappear};
  double direction_{1.0};
  double omega_target_m_{0.0};
  double offset_m_{0.0};
  int k_prime_{0};
  bool hold_phase_{false};
};

}  // namespace rt::core
