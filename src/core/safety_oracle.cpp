#include "core/safety_oracle.hpp"

#include <cctype>
#include <fstream>
#include <stdexcept>

#include "nn/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "stats/hash.hpp"

namespace rt::core {

namespace {

/// Batch-width distribution of oracle flushes: the capacity sweet spot is
/// 32 (see BM_OracleBatchInference), so a healthy run's mass sits in the
/// 17-32 bucket; a drift toward 1-2 means callers are flushing early and
/// the matrix-matrix win is gone.
const obs::Histogram& batch_width_histogram() {
  static const obs::Histogram h = obs::MetricsRegistry::global().histogram(
      "rt_oracle_batch_width", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0},
      "Queries served per OracleBatchBuffer flush");
  return h;
}

}  // namespace

SafetyOracle::SafetyOracle(std::uint64_t seed) {
  stats::Rng rng(seed);
  net_ = nn::make_safety_hijacker_net(rng, kInputDim);
}

std::vector<double> SafetyOracle::features(double delta, math::Vec2 v_rel,
                                           math::Vec2 a_rel, double k) {
  return {delta, v_rel.x, v_rel.y, a_rel.x, a_rel.y, k};
}

double SafetyOracle::predict(double delta, math::Vec2 v_rel,
                             math::Vec2 a_rel, double k) {
  // Thread-local scratch column: the whole inference path (feature fill,
  // standardization, network forward) allocates nothing at steady state,
  // and stays safe on a shared oracle (each thread owns its scratch).
  thread_local math::Matrix x;
  x.resize(kInputDim, 1);
  x(0, 0) = delta;
  x(1, 0) = v_rel.x;
  x(2, 0) = v_rel.y;
  x(3, 0) = a_rel.x;
  x(4, 0) = a_rel.y;
  x(5, 0) = k;
  scaler_.transform_in_place(x);
  return net_.predict(x)(0, 0);
}

void SafetyOracle::predict_batch(std::span<const OracleQuery> queries,
                                 std::span<double> out) {
  if (out.size() != queries.size()) {
    throw std::invalid_argument(
        "SafetyOracle::predict_batch: out.size() != queries.size()");
  }
  if (queries.empty()) return;
  // Thread-local gather matrix + workspace, mirroring predict's scratch:
  // once a thread has seen a batch width, serving that width allocates
  // nothing, and a shared trained oracle stays safe under concurrent
  // callers (forward mutates only the caller-thread workspace).
  thread_local math::Matrix x;
  thread_local nn::Mlp::Workspace ws;
  x.resize(kInputDim, queries.size());
  for (std::size_t j = 0; j < queries.size(); ++j) {
    const OracleQuery& q = queries[j];
    x(0, j) = q.delta;
    x(1, j) = q.v_rel.x;
    x(2, j) = q.v_rel.y;
    x(3, j) = q.a_rel.x;
    x(4, j) = q.a_rel.y;
    x(5, j) = q.k;
  }
  scaler_.transform_in_place(x);
  const math::Matrix& y = net_.predict_batch_into(x, ws);
  for (std::size_t j = 0; j < queries.size(); ++j) out[j] = y(0, j);
}

OracleBatchBuffer::OracleBatchBuffer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  pending_.reserve(capacity_);
  results_.reserve(capacity_);
}

std::span<const double> OracleBatchBuffer::flush(SafetyOracle& oracle) {
  RT_TRACE_SPAN("oracle_batch_flush", "oracle",
                static_cast<std::uint64_t>(pending_.size()), "width");
  if (!pending_.empty()) {
    batch_width_histogram().observe(static_cast<double>(pending_.size()));
  }
  results_.resize(pending_.size());
  oracle.predict_batch(pending_, results_);
  pending_.clear();
  return results_;
}

std::uint64_t SafetyOracle::content_hash() {
  std::uint64_t h = net_.content_hash();
  for (const double v : scaler_.means()) h = stats::fnv1a_double(h, v);
  for (const double v : scaler_.stddevs()) h = stats::fnv1a_double(h, v);
  return h;
}

nn::TrainResult SafetyOracle::train(const nn::Dataset& data,
                                    nn::TrainConfig config) {
  nn::Trainer trainer(config);
  const nn::TrainResult result = trainer.train(net_, data, scaler_);
  trained_ = true;
  return result;
}

void SafetyOracle::save(const std::string& path) {
  std::ofstream os(path);
  if (!os) {
    throw std::runtime_error("SafetyOracle::save: cannot open " + path);
  }
  nn::save_model(os, net_, scaler_);
  // Provenance trailer (token-based; "-" marks an empty field, embedded
  // whitespace is mapped to '_' so exotic scenario keys cannot derail the
  // token parser). Legacy readers never consumed past the last layer, so
  // the trailer is backward-compatible.
  const auto tokenize = [](std::string s) {
    if (s.empty()) return std::string("-");
    for (char& c : s) {
      if (std::isspace(static_cast<unsigned char>(c))) c = '_';
    }
    return s;
  };
  os << "oracle-meta " << tokenize(provenance_.vector) << ' '
     << provenance_.fingerprint << ' ' << tokenize(provenance_.curriculum)
     << '\n';
}

bool SafetyOracle::load(const std::string& path) {
  std::ifstream is(path);
  if (!is) return false;
  nn::load_model(is, net_, scaler_);
  provenance_ = Provenance{};
  std::string tag;
  if (is >> tag && tag == "oracle-meta") {
    std::string vector;
    std::string curriculum;
    std::uint64_t fingerprint = 0;
    if (is >> vector >> fingerprint >> curriculum) {
      provenance_.vector = vector == "-" ? std::string{} : vector;
      provenance_.curriculum =
          curriculum == "-" ? std::string{} : curriculum;
      provenance_.fingerprint = fingerprint;
    }
  }
  trained_ = true;
  return true;
}

}  // namespace rt::core
