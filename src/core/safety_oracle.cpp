#include "core/safety_oracle.hpp"

#include "nn/serialize.hpp"

namespace rt::core {

SafetyOracle::SafetyOracle(std::uint64_t seed) {
  stats::Rng rng(seed);
  net_ = nn::make_safety_hijacker_net(rng, kInputDim);
}

std::vector<double> SafetyOracle::features(double delta, math::Vec2 v_rel,
                                           math::Vec2 a_rel, double k) {
  return {delta, v_rel.x, v_rel.y, a_rel.x, a_rel.y, k};
}

double SafetyOracle::predict(double delta, math::Vec2 v_rel,
                             math::Vec2 a_rel, double k) {
  const std::vector<double> f =
      scaler_.transform(features(delta, v_rel, a_rel, k));
  math::Matrix x(kInputDim, 1);
  for (std::size_t i = 0; i < kInputDim; ++i) x(i, 0) = f[i];
  return net_.predict(x)(0, 0);
}

nn::TrainResult SafetyOracle::train(const nn::Dataset& data,
                                    nn::TrainConfig config) {
  nn::Trainer trainer(config);
  const nn::TrainResult result = trainer.train(net_, data, scaler_);
  trained_ = true;
  return result;
}

void SafetyOracle::save(const std::string& path) {
  nn::save_model_file(path, net_, scaler_);
}

bool SafetyOracle::load(const std::string& path) {
  if (!nn::load_model_file(path, net_, scaler_)) return false;
  trained_ = true;
  return true;
}

}  // namespace rt::core
