#include "obs/metrics.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace rt::obs {

namespace detail {

std::uint32_t metric_shard_index() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t idx =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return idx;
}

}  // namespace detail

namespace {

using detail::kMetricShards;
using detail::Metric;
using detail::MetricKind;

/// Histogram sums are accumulated in fixed-point milli-units so the
/// cross-shard merge is integer addition (order-independent, hence
/// deterministic across thread interleavings). Observations are clamped to
/// the representable non-negative range; all current histograms measure
/// sizes and latencies, which are non-negative by construction.
std::uint64_t to_milli_units(double v) {
  if (!(v > 0.0)) return 0;
  const double milli = v * 1000.0;
  if (milli >= 9.22e18) return UINT64_C(9220000000000000000);
  return static_cast<std::uint64_t>(std::llround(milli));
}

const char* kind_name(MetricKind k) {
  switch (k) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "unknown";
}

/// %.17g prints doubles round-trip-exactly without trailing-zero noise for
/// the common short values (bucket bounds like 0.5, sums like 12.25).
void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  out += buf;
}

}  // namespace

void Histogram::observe(double v) const {
  if (m_ == nullptr) return;
  const auto& bounds = m_->bounds;
  // Linear scan: bucket lists are short (<= ~16) and the branch-predictable
  // walk beats binary search at that size.
  std::size_t bucket = bounds.size();  // +Inf overflow by default
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    if (v <= bounds[i]) {
      bucket = i;
      break;
    }
  }
  const std::uint32_t shard = detail::metric_shard_index();
  m_->cell(shard, bucket).fetch_add(1, std::memory_order_relaxed);
  m_->cell(shard, bounds.size() + 1)
      .fetch_add(to_milli_units(v), std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

detail::Metric* MetricsRegistry::find_or_create(const std::string& name,
                                                MetricKind kind,
                                                const std::string& help,
                                                std::vector<double> bounds) {
  if (name.empty()) throw std::invalid_argument("metric name is empty");
  if (kind == MetricKind::kHistogram) {
    if (bounds.empty()) {
      throw std::invalid_argument("histogram '" + name + "' has no buckets");
    }
    if (!std::is_sorted(bounds.begin(), bounds.end()) ||
        std::adjacent_find(bounds.begin(), bounds.end()) != bounds.end()) {
      throw std::invalid_argument("histogram '" + name +
                                  "' bounds must be strictly ascending");
    }
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& m : metrics_) {
    if (m->name != name) continue;
    if (m->kind != kind) {
      throw std::logic_error("metric '" + name + "' already registered as " +
                             kind_name(m->kind) + ", requested " +
                             kind_name(kind));
    }
    if (kind == MetricKind::kHistogram && m->bounds != bounds) {
      throw std::logic_error("histogram '" + name +
                             "' re-registered with different bounds");
    }
    return m.get();
  }
  auto m = std::make_unique<Metric>();
  m->name = name;
  m->help = help;
  m->kind = kind;
  m->bounds = std::move(bounds);
  m->width = kind == MetricKind::kHistogram ? m->bounds.size() + 2 : 1;
  if (kind != MetricKind::kGauge) {
    const std::size_t cells =
        static_cast<std::size_t>(kMetricShards) * m->width;
    m->cells = std::make_unique<std::atomic<std::uint64_t>[]>(cells);
    for (std::size_t i = 0; i < cells; ++i) {
      m->cells[i].store(0, std::memory_order_relaxed);
    }
  }
  metrics_.push_back(std::move(m));
  return metrics_.back().get();
}

Counter MetricsRegistry::counter(const std::string& name,
                                 const std::string& help) {
  return Counter(find_or_create(name, MetricKind::kCounter, help, {}));
}

Gauge MetricsRegistry::gauge(const std::string& name,
                             const std::string& help) {
  return Gauge(find_or_create(name, MetricKind::kGauge, help, {}));
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     std::vector<double> bounds,
                                     const std::string& help) {
  return Histogram(
      find_or_create(name, MetricKind::kHistogram, help, std::move(bounds)));
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.metrics.reserve(metrics_.size());
  for (const auto& m : metrics_) {
    MetricSnapshot s;
    s.name = m->name;
    s.help = m->help;
    s.kind = m->kind;
    switch (m->kind) {
      case MetricKind::kCounter: {
        std::uint64_t total = 0;
        for (std::uint32_t sh = 0; sh < kMetricShards; ++sh) {
          total += m->cell(sh, 0).load(std::memory_order_relaxed);
        }
        s.counter = total;
        break;
      }
      case MetricKind::kGauge:
        s.gauge = m->gauge_value.load(std::memory_order_relaxed);
        break;
      case MetricKind::kHistogram: {
        s.histogram.bounds = m->bounds;
        s.histogram.buckets.assign(m->bounds.size() + 1, 0);
        std::uint64_t sum_milli = 0;
        for (std::uint32_t sh = 0; sh < kMetricShards; ++sh) {
          for (std::size_t b = 0; b <= m->bounds.size(); ++b) {
            s.histogram.buckets[b] +=
                m->cell(sh, b).load(std::memory_order_relaxed);
          }
          sum_milli +=
              m->cell(sh, m->bounds.size() + 1).load(std::memory_order_relaxed);
        }
        for (const std::uint64_t b : s.histogram.buckets) {
          s.histogram.count += b;
        }
        s.histogram.sum = static_cast<double>(sum_milli) / 1000.0;
        break;
      }
    }
    snap.metrics.push_back(std::move(s));
  }
  return snap;
}

const MetricSnapshot* MetricsSnapshot::find(const std::string& name) const {
  for (const auto& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter(const std::string& name) const {
  const MetricSnapshot* m = find(name);
  return m != nullptr && m->kind == detail::MetricKind::kCounter ? m->counter
                                                                 : 0;
}

std::int64_t MetricsSnapshot::gauge(const std::string& name) const {
  const MetricSnapshot* m = find(name);
  return m != nullptr && m->kind == detail::MetricKind::kGauge ? m->gauge : 0;
}

std::string render_prometheus(const MetricsSnapshot& snap) {
  std::string out;
  out.reserve(snap.metrics.size() * 96);
  for (const auto& m : snap.metrics) {
    if (!m.help.empty()) {
      out += "# HELP " + m.name + " " + m.help + "\n";
    }
    out += "# TYPE " + m.name + " ";
    out += kind_name(m.kind);
    out += "\n";
    switch (m.kind) {
      case detail::MetricKind::kCounter:
        out += m.name + " ";
        append_u64(out, m.counter);
        out += "\n";
        break;
      case detail::MetricKind::kGauge:
        out += m.name + " ";
        append_i64(out, m.gauge);
        out += "\n";
        break;
      case detail::MetricKind::kHistogram: {
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < m.histogram.bounds.size(); ++b) {
          cumulative += m.histogram.buckets[b];
          out += m.name + "_bucket{le=\"";
          append_double(out, m.histogram.bounds[b]);
          out += "\"} ";
          append_u64(out, cumulative);
          out += "\n";
        }
        out += m.name + "_bucket{le=\"+Inf\"} ";
        append_u64(out, m.histogram.count);
        out += "\n" + m.name + "_sum ";
        append_double(out, m.histogram.sum);
        out += "\n" + m.name + "_count ";
        append_u64(out, m.histogram.count);
        out += "\n";
        break;
      }
    }
  }
  return out;
}

std::string render_json(const MetricsSnapshot& snap) {
  std::string out = "{";
  bool first = true;
  for (const auto& m : snap.metrics) {
    if (!first) out += ", ";
    first = false;
    out += "\"" + m.name + "\": ";
    switch (m.kind) {
      case detail::MetricKind::kCounter:
        append_u64(out, m.counter);
        break;
      case detail::MetricKind::kGauge:
        append_i64(out, m.gauge);
        break;
      case detail::MetricKind::kHistogram: {
        out += "{\"count\": ";
        append_u64(out, m.histogram.count);
        out += ", \"sum\": ";
        append_double(out, m.histogram.sum);
        out += ", \"buckets\": {";
        for (std::size_t b = 0; b < m.histogram.bounds.size(); ++b) {
          out += "\"";
          append_double(out, m.histogram.bounds[b]);
          out += "\": ";
          append_u64(out, m.histogram.buckets[b]);
          out += ", ";
        }
        out += "\"+Inf\": ";
        append_u64(out, m.histogram.buckets.empty()
                            ? 0
                            : m.histogram.buckets.back());
        out += "}}";
        break;
      }
    }
  }
  out += "}";
  return out;
}

}  // namespace rt::obs
