#pragma once

/// The one clock the repository measures time with.
///
/// Every wall_ms in the stack — request stats, bench drivers, trace
/// timestamps — reads std::chrono::steady_clock through this header, so
/// timings are monotonic (immune to NTP steps) and mutually comparable.
/// On Linux steady_clock is CLOCK_MONOTONIC, which is system-wide: parent
/// and forked worker timestamps share an epoch, which is what lets the
/// tracer merge worker spans onto the parent timeline without offset
/// bookkeeping. std::chrono::system_clock is reserved for human-facing log
/// timestamps only (see examples/campaign_server.cpp) and must never feed
/// a duration.

#include <chrono>
#include <cstdint>

namespace rt::obs {

struct MonotonicClock {
  using clock = std::chrono::steady_clock;
  using time_point = clock::time_point;

  static time_point now() { return clock::now(); }

  /// Nanoseconds since the (arbitrary, per-boot) steady epoch.
  static std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            now().time_since_epoch())
            .count());
  }

  static double ms_between(time_point a, time_point b) {
    return std::chrono::duration<double, std::milli>(b - a).count();
  }

  static double s_between(time_point a, time_point b) {
    return std::chrono::duration<double>(b - a).count();
  }
};

/// Started-at-construction timer for the common "how long did this block
/// take" measurement. Replaces the per-driver steady_clock::now() pairs.
class Stopwatch {
 public:
  Stopwatch() : t0_(MonotonicClock::now()) {}

  void reset() { t0_ = MonotonicClock::now(); }

  double elapsed_ms() const {
    return MonotonicClock::ms_between(t0_, MonotonicClock::now());
  }
  double elapsed_s() const {
    return MonotonicClock::s_between(t0_, MonotonicClock::now());
  }
  std::uint64_t start_ns() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            t0_.time_since_epoch())
            .count());
  }

 private:
  MonotonicClock::time_point t0_;
};

}  // namespace rt::obs
