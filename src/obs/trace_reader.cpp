#include "obs/trace_reader.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>

namespace rt::obs {

namespace {

/// Minimal JSON document model — small traces only ever reach the tests
/// and trace_lint, so a DOM keeps the validation code straight-line.
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind{Kind::kNull};
  bool boolean{false};
  double number{0.0};
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing bytes after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw TraceParseError("trace JSON: " + why + " at byte " +
                          std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': return parse_bool();
      case 'n': return parse_null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      if (std::any_of(v.object.begin(), v.object.end(),
                      [&](const auto& kv) { return kv.first == key; })) {
        fail("duplicate object key '" + key + "'");
      }
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // The exporter only writes \u00XX control escapes; reject
          // anything needing surrogate handling rather than mis-decode it.
          if (code > 0xff) fail("unsupported \\u escape above U+00FF");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape character");
      }
    }
  }

  JsonValue parse_bool() {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    if (text_.compare(pos_, 4, "true") == 0) {
      v.boolean = true;
      pos_ += 4;
    } else if (text_.compare(pos_, 5, "false") == 0) {
      v.boolean = false;
      pos_ += 5;
    } else {
      fail("bad literal");
    }
    return v;
  }

  JsonValue parse_null() {
    if (text_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    JsonValue v;
    v.kind = JsonValue::Kind::kNull;
    return v;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    const auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("bad number");
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("bad number: no digits after '.'");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) fail("bad number: empty exponent");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                           nullptr);
    return v;
  }

  std::string_view text_;
  std::size_t pos_{0};
};

const JsonValue& require(const JsonValue& obj, std::string_view key,
                         JsonValue::Kind kind, const char* what) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) {
    throw TraceParseError(std::string("trace JSON: ") + what + " missing '" +
                          std::string(key) + "'");
  }
  if (v->kind != kind) {
    throw TraceParseError(std::string("trace JSON: ") + what + " field '" +
                          std::string(key) + "' has wrong type");
  }
  return *v;
}

std::uint64_t as_u64(const JsonValue& v, const char* what) {
  if (v.number < 0.0 || v.number != std::floor(v.number)) {
    throw TraceParseError(std::string("trace JSON: ") + what +
                          " is not a non-negative integer");
  }
  return static_cast<std::uint64_t>(v.number);
}

}  // namespace

bool ParsedTrace::has_span(std::string_view name) const {
  return count_spans(name) > 0;
}

std::size_t ParsedTrace::count_spans(std::string_view name) const {
  std::size_t n = 0;
  for (const auto& e : events) {
    if (e.ph == "X" && e.name == name) ++n;
  }
  return n;
}

std::vector<std::uint64_t> ParsedTrace::span_pids() const {
  std::vector<std::uint64_t> pids;
  for (const auto& e : events) {
    if (e.ph != "X") continue;
    if (std::find(pids.begin(), pids.end(), e.pid) == pids.end()) {
      pids.push_back(e.pid);
    }
  }
  std::sort(pids.begin(), pids.end());
  return pids;
}

ParsedTrace parse_chrome_trace(std::string_view json) {
  Parser parser(json);
  const JsonValue doc = parser.parse_document();
  if (doc.kind != JsonValue::Kind::kObject) {
    throw TraceParseError("trace JSON: top level is not an object");
  }
  for (const auto& [key, value] : doc.object) {
    if (key != "traceEvents" && key != "displayTimeUnit" &&
        key != "otherData") {
      throw TraceParseError("trace JSON: unexpected top-level key '" + key +
                            "'");
    }
    (void)value;
  }

  ParsedTrace out;
  if (const JsonValue* other = doc.find("otherData")) {
    if (other->kind != JsonValue::Kind::kObject) {
      throw TraceParseError("trace JSON: otherData is not an object");
    }
    if (const JsonValue* d = other->find("dropped_spans")) {
      out.dropped_spans = as_u64(*d, "dropped_spans");
    }
    if (const JsonValue* f = other->find("absorb_failures")) {
      out.absorb_failures = as_u64(*f, "absorb_failures");
    }
  }

  const JsonValue& events =
      require(doc, "traceEvents", JsonValue::Kind::kArray, "document");
  out.events.reserve(events.array.size());
  for (const JsonValue& ev : events.array) {
    if (ev.kind != JsonValue::Kind::kObject) {
      throw TraceParseError("trace JSON: traceEvents entry is not an object");
    }
    TraceEvent e;
    e.name = require(ev, "name", JsonValue::Kind::kString, "event").string;
    e.ph = require(ev, "ph", JsonValue::Kind::kString, "event").string;
    if (e.ph == "X") {
      e.ts_us = require(ev, "ts", JsonValue::Kind::kNumber, "span").number;
      e.dur_us = require(ev, "dur", JsonValue::Kind::kNumber, "span").number;
      e.pid = as_u64(require(ev, "pid", JsonValue::Kind::kNumber, "span"),
                     "pid");
      e.tid = as_u64(require(ev, "tid", JsonValue::Kind::kNumber, "span"),
                     "tid");
      e.cat = require(ev, "cat", JsonValue::Kind::kString, "span").string;
      if (e.ts_us < 0.0 || e.dur_us < 0.0) {
        throw TraceParseError("trace JSON: span with negative ts/dur");
      }
    } else if (e.ph == "M") {
      // Metadata events carry pid + args only; nothing further to check
      // beyond JSON well-formedness.
    } else {
      throw TraceParseError("trace JSON: unsupported event phase '" + e.ph +
                            "'");
    }
    out.events.push_back(std::move(e));
  }
  return out;
}

ParsedTrace parse_chrome_trace_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw TraceParseError("trace JSON: cannot open '" + path + "'");
  }
  std::string text;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    text.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    throw TraceParseError("trace JSON: read error on '" + path + "'");
  }
  return parse_chrome_trace(text);
}

}  // namespace rt::obs
