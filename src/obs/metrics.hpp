#pragma once

/// Process-wide metrics registry: counters, gauges, and fixed-bucket
/// histograms, designed for the campaign stack's two contracts.
///
/// * Lock-free increments. Every counter/histogram owns a small array of
///   shards (one cache line of atomics per shard); a thread increments the
///   shard picked by its stable thread index with a relaxed fetch_add and
///   never takes a lock or allocates. Shards are merged only on scrape.
/// * Deterministic merges. All shard cells are u64 (counts, bucket counts,
///   and histogram sums in fixed-point milli-units), so the scrape-time
///   merge is a sum of integers — independent of thread interleaving and
///   of the order shards are visited. Two runs that observe the same
///   multiset of values snapshot to identical bytes.
///
/// Registration is idempotent by name: constructing the same counter twice
/// (e.g. one per CampaignCellCache instance) returns the same underlying
/// metric. Registering one name with two different kinds (or a histogram
/// with different bounds) throws — silent aliasing would corrupt both.
///
/// Naming convention (see README "Observability"): `rt_<area>_<what>` with
/// a `_total` suffix for monotonic counters and the unit spelled out for
/// histograms (`rt_server_request_latency_ms`).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rt::obs {

namespace detail {

/// Threads are assigned a stable small index on first use; two threads only
/// share a shard once more than kMetricShards threads have ever existed,
/// which keeps the hot path contention-free without per-thread shard
/// lifetime bookkeeping (a shard is just a stripe of the metric's cells).
inline constexpr std::uint32_t kMetricShards = 64;

std::uint32_t metric_shard_index();

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

struct Metric {
  std::string name;
  std::string help;
  MetricKind kind;
  std::vector<double> bounds;  ///< histogram upper bounds (le), ascending
  std::size_t width{1};        ///< cells per shard
  /// kMetricShards * width relaxed-atomic cells; layout [shard][cell].
  /// Counter: cell 0 = count. Histogram: cells [0, bounds.size()] are the
  /// buckets (last = +Inf overflow), cell bounds.size()+1 accumulates the
  /// observed sum in milli-units. Gauge: single signed cell, shard 0 only.
  std::unique_ptr<std::atomic<std::uint64_t>[]> cells;
  std::atomic<std::int64_t> gauge_value{0};

  std::atomic<std::uint64_t>& cell(std::uint32_t shard, std::size_t idx) {
    return cells[static_cast<std::size_t>(shard) * width + idx];
  }
  const std::atomic<std::uint64_t>& cell(std::uint32_t shard,
                                         std::size_t idx) const {
    return cells[static_cast<std::size_t>(shard) * width + idx];
  }
};

}  // namespace detail

/// Handle to a monotonically increasing counter. Default-constructed
/// handles are inert no-ops, so instrumentation never needs null checks.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t n = 1) const {
    if (m_ == nullptr) return;
    m_->cell(detail::metric_shard_index(), 0)
        .fetch_add(n, std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(detail::Metric* m) : m_(m) {}
  detail::Metric* m_{nullptr};
};

/// Handle to a settable signed gauge (single atomic cell — gauges are
/// last-writer-wins, so sharding them would be meaningless).
class Gauge {
 public:
  Gauge() = default;
  void set(std::int64_t v) const {
    if (m_) m_->gauge_value.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t d) const {
    if (m_) m_->gauge_value.fetch_add(d, std::memory_order_relaxed);
  }
  std::int64_t value() const {
    return m_ ? m_->gauge_value.load(std::memory_order_relaxed) : 0;
  }

 private:
  friend class MetricsRegistry;
  explicit Gauge(detail::Metric* m) : m_(m) {}
  detail::Metric* m_{nullptr};
};

/// Handle to a fixed-bucket histogram. Bucket semantics match Prometheus:
/// an observation v lands in the first bucket with v <= bound; values
/// above every bound land in the implicit +Inf bucket.
class Histogram {
 public:
  Histogram() = default;
  void observe(double v) const;

 private:
  friend class MetricsRegistry;
  explicit Histogram(detail::Metric* m) : m_(m) {}
  detail::Metric* m_{nullptr};
};

struct HistogramSnapshot {
  std::vector<double> bounds;         ///< upper bounds, ascending
  std::vector<std::uint64_t> buckets; ///< bounds.size()+1 counts (+Inf last)
  std::uint64_t count{0};
  double sum{0.0};  ///< merged from fixed-point milli-units: deterministic
};

struct MetricSnapshot {
  std::string name;
  std::string help;
  detail::MetricKind kind;
  std::uint64_t counter{0};
  std::int64_t gauge{0};
  HistogramSnapshot histogram;
};

struct MetricsSnapshot {
  std::vector<MetricSnapshot> metrics;  ///< registration order

  const MetricSnapshot* find(const std::string& name) const;
  /// Counter value by name; 0 when absent (scrape code stays branch-light).
  std::uint64_t counter(const std::string& name) const;
  std::int64_t gauge(const std::string& name) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry all runtime instrumentation registers into.
  static MetricsRegistry& global();

  Counter counter(const std::string& name, const std::string& help = "");
  Gauge gauge(const std::string& name, const std::string& help = "");
  Histogram histogram(const std::string& name, std::vector<double> bounds,
                      const std::string& help = "");

  MetricsSnapshot snapshot() const;

 private:
  detail::Metric* find_or_create(const std::string& name,
                                 detail::MetricKind kind,
                                 const std::string& help,
                                 std::vector<double> bounds);

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<detail::Metric>> metrics_;
};

/// Prometheus text exposition (format 0.0.4): HELP/TYPE headers, cumulative
/// `_bucket{le=...}` rows, `_sum`/`_count`. Suitable for scraping or for
/// persisting next to BENCH_*.json.
std::string render_prometheus(const MetricsSnapshot& snap);

/// One-line JSON object keyed by metric name — the `stats` verb payload of
/// campaign_server and the --metrics JSONL record body.
std::string render_json(const MetricsSnapshot& snap);

}  // namespace rt::obs
