#pragma once

/// Zero-allocation tracing for the campaign stack.
///
/// Spans are recorded into per-thread fixed-capacity ring buffers of POD
/// records: a `const char*` static name/category, steady-clock start and
/// duration in nanoseconds, and one optional integer argument. Recording a
/// span performs no heap allocation and takes no lock (the only lock is a
/// one-time-per-thread buffer acquisition, amortized away by the first
/// span and warm-up friendly for tests/test_alloc.cpp). When a ring wraps,
/// the oldest spans are overwritten and counted in `dropped_spans()` — the
/// tracer never grows and never blocks the traced path.
///
/// Fork-worker merging: `serialize_and_clear()` produces a compact binary
/// payload a forked shard worker ships to its parent over the existing
/// framed pipe; `absorb()` strictly parses it (a malformed payload is
/// rejected whole and counted, never partially merged). CLOCK_MONOTONIC is
/// system-wide on Linux, so worker timestamps land on the parent timeline
/// with no offset bookkeeping.
///
/// Export is Chrome trace-event JSON (`render_chrome_trace()` /
/// `write_chrome_trace()`), loadable in Perfetto (ui.perfetto.dev) or
/// chrome://tracing. Parent spans appear as pid 0, each forked worker as
/// its own named process.
///
/// The tracer is disarmed by default and every instrumentation macro
/// checks one relaxed atomic before touching anything; configuring CMake
/// with -DRT_TRACING=OFF compiles the macros away entirely.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/clock.hpp"

#ifndef RT_OBS_TRACING
#define RT_OBS_TRACING 1
#endif

namespace rt::obs {

struct TraceConfig {
  /// Spans retained per thread; older spans are dropped on wrap.
  std::size_t buffer_capacity{1 << 14};
};

/// One completed span. `name`, `category` and `arg_name` must point to
/// storage that outlives the tracer — in practice string literals — which
/// is what keeps recording allocation-free.
struct SpanRecord {
  const char* name;
  const char* category;
  std::uint64_t start_ns;
  std::uint64_t dur_ns;
  std::uint64_t arg;
  const char* arg_name;  ///< nullptr = no argument
};

/// A span absorbed from a serialized payload (typically a forked worker).
/// Strings are owned: the sender's pointers mean nothing here.
struct RemoteSpan {
  std::string name;
  std::string category;
  std::string arg_name;  ///< empty = no argument
  std::uint64_t start_ns{0};
  std::uint64_t dur_ns{0};
  std::uint64_t arg{0};
  std::uint32_t tid{0};
  std::uint64_t worker{0};  ///< pid lane in the exported trace
};

class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// The process-wide tracer every span macro records into.
  static Tracer& global();

  void arm(TraceConfig config = {});
  void disarm();
  bool armed() const { return armed_.load(std::memory_order_relaxed); }

  /// Arms iff the environment variable (default RT_TRACE) is set non-empty;
  /// its value is remembered as the requested output path (`env_path()`).
  bool arm_from_env(const char* var = "RT_TRACE");
  const std::string& env_path() const { return env_path_; }

  static std::uint64_t now_ns() { return MonotonicClock::now_ns(); }

  /// Record a completed span. No-op when disarmed. Zero-allocation after
  /// the calling thread's first span. All pointer arguments must be
  /// string literals (or otherwise outlive the tracer).
  void record(const char* name, const char* category, std::uint64_t start_ns,
              std::uint64_t dur_ns, std::uint64_t arg = 0,
              const char* arg_name = nullptr);

  /// Spans currently held (local rings + absorbed), oldest-dropped
  /// excluded.
  std::size_t span_count() const;
  /// Spans lost to ring wrap-around, locally and in absorbed payloads.
  std::uint64_t dropped_spans() const;
  /// Payloads absorb() rejected as malformed.
  std::uint64_t absorb_failures() const {
    return absorb_failures_.load(std::memory_order_relaxed);
  }

  /// Drain local spans into a self-describing binary payload (and reset
  /// the local rings). The inverse of absorb(); used by forked shard
  /// workers to ship their buffers to the parent.
  std::string serialize_and_clear();

  /// Strictly parse a serialize_and_clear() payload and merge its spans,
  /// tagged with `worker` for the exported pid lane. Returns false (and
  /// counts an absorb failure) on any malformation; a bad payload is
  /// never partially merged.
  bool absorb(const std::string& payload, std::uint64_t worker);

  /// Chrome trace-event JSON of everything held (local + absorbed).
  std::string render_chrome_trace() const;
  bool write_chrome_trace(const std::string& path) const;

  /// Reset all spans, drop counters, and absorb state. Also the first
  /// thing a forked worker does: fork duplicates the parent's buffers,
  /// and the worker must not re-ship the parent's pre-fork spans.
  void clear();

  /// Collect local spans in export order (per-thread rings, oldest first).
  /// Snapshot/export calls assume recording threads are quiescent, which
  /// holds at every call site (end of grid / end of request / test body).
  std::vector<std::pair<std::uint32_t, SpanRecord>> collect_local() const;
  const std::vector<RemoteSpan>& remote_spans() const { return remote_; }

 private:
  struct ThreadBuffer {
    std::vector<SpanRecord> ring;  ///< sized once at acquisition
    std::size_t head{0};           ///< next write slot = total % capacity
    std::uint64_t total{0};        ///< spans ever pushed
    std::uint32_t tid{0};          ///< small stable id for the export
    std::atomic<bool> in_use{true};
  };

  ThreadBuffer* local_buffer();

  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> absorb_failures_{0};
  std::size_t capacity_{1 << 14};
  std::string env_path_;

  mutable std::mutex mutex_;  ///< guards buffers_/remote_ structure
  std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
  std::vector<RemoteSpan> remote_;
  std::uint64_t remote_dropped_{0};
};

#if RT_OBS_TRACING

/// RAII span against the global tracer. Captures the start timestamp only
/// when the tracer is armed; the destructor records. Never allocates.
class Span {
 public:
  explicit Span(const char* name, const char* category = "rt",
                std::uint64_t arg = 0, const char* arg_name = nullptr)
      : name_(name), category_(category), arg_(arg), arg_name_(arg_name) {
    if (Tracer::global().armed()) start_ns_ = Tracer::now_ns();
  }
  ~Span() {
    if (start_ns_ != 0) {
      Tracer::global().record(name_, category_, start_ns_,
                              Tracer::now_ns() - start_ns_, arg_, arg_name_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* category_;
  std::uint64_t arg_;
  const char* arg_name_;
  std::uint64_t start_ns_{0};
};

/// Record a span whose endpoints were measured manually (e.g. a queue-wait
/// interval whose start lived on another thread).
inline void record_span(const char* name, const char* category,
                        std::uint64_t start_ns, std::uint64_t end_ns,
                        std::uint64_t arg = 0,
                        const char* arg_name = nullptr) {
  Tracer& t = Tracer::global();
  if (t.armed() && end_ns >= start_ns) {
    t.record(name, category, start_ns, end_ns - start_ns, arg, arg_name);
  }
}

#define RT_OBS_CONCAT_INNER(a, b) a##b
#define RT_OBS_CONCAT(a, b) RT_OBS_CONCAT_INNER(a, b)
/// RT_TRACE_SPAN("name"[, "category"[, arg, "arg_name"]]): RAII span for
/// the enclosing scope.
#define RT_TRACE_SPAN(...)                                \
  ::rt::obs::Span RT_OBS_CONCAT(rt_obs_span_, __LINE__) { \
    __VA_ARGS__                                           \
  }

#else  // !RT_OBS_TRACING — tracing compiled out: spans cost nothing.

class Span {
 public:
  explicit Span(const char*, const char* = "rt", std::uint64_t = 0,
                const char* = nullptr) {}
};

inline void record_span(const char*, const char*, std::uint64_t,
                        std::uint64_t, std::uint64_t = 0,
                        const char* = nullptr) {}

#define RT_TRACE_SPAN(...) \
  do {                     \
  } while (false)

#endif  // RT_OBS_TRACING

}  // namespace rt::obs
