#include "obs/trace.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>

namespace rt::obs {

namespace {

constexpr char kPayloadMagic[8] = {'R', 'T', 'O', 'B', 'S', 'T', 'R', '1'};
/// A worker payload is bounded by ring capacity x thread count; anything
/// claiming more records than this is garbage, not a big trace.
constexpr std::uint32_t kMaxPayloadRecords = 1u << 22;

void put_u16(std::string& out, std::uint16_t v) {
  char b[2];
  std::memcpy(b, &v, 2);
  out.append(b, 2);
}
void put_u32(std::string& out, std::uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out.append(b, 4);
}
void put_u64(std::string& out, std::uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out.append(b, 8);
}
void put_str(std::string& out, const char* s) {
  const std::size_t n = s != nullptr ? std::strlen(s) : 0;
  put_u16(out, static_cast<std::uint16_t>(n < 0xffff ? n : 0xffff));
  out.append(s != nullptr ? s : "", n < 0xffff ? n : 0xffff);
}

/// Bounds-checked little-endian reader for absorb(); every get_ returns
/// false instead of reading past the payload.
struct Reader {
  const char* p;
  std::size_t left;

  bool get(void* dst, std::size_t n) {
    if (left < n) return false;
    std::memcpy(dst, p, n);
    p += n;
    left -= n;
    return true;
  }
  bool get_u16(std::uint16_t& v) { return get(&v, 2); }
  bool get_u32(std::uint32_t& v) { return get(&v, 4); }
  bool get_u64(std::uint64_t& v) { return get(&v, 8); }
  bool get_str(std::string& out) {
    std::uint16_t n = 0;
    if (!get_u16(n)) return false;
    if (left < n) return false;
    out.assign(p, n);
    p += n;
    left -= n;
    return true;
  }
};

void append_json_escaped(std::string& out, const char* s) {
  for (; s != nullptr && *s != '\0'; ++s) {
    const unsigned char c = static_cast<unsigned char>(*s);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
}

void append_us(std::string& out, std::uint64_t ns) {
  char buf[40];
  // Microseconds with nanosecond precision, the native unit of the
  // trace-event format.
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

}  // namespace

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

void Tracer::arm(TraceConfig config) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    capacity_ = config.buffer_capacity > 0 ? config.buffer_capacity : 1;
  }
  clear();
  armed_.store(true, std::memory_order_relaxed);
}

void Tracer::disarm() { armed_.store(false, std::memory_order_relaxed); }

bool Tracer::arm_from_env(const char* var) {
  const char* v = std::getenv(var);
  if (v == nullptr || *v == '\0') return false;
  env_path_ = v;
  arm();
  return true;
}

Tracer::ThreadBuffer* Tracer::local_buffer() {
  struct Entry {
    const Tracer* tracer;
    std::shared_ptr<ThreadBuffer> buffer;
  };
  // On thread exit the buffer lane is released for reuse, so a pool that
  // spins up fresh threads per grid keeps a bounded buffer set (max
  // concurrent threads, not total threads ever). The shared_ptr keeps the
  // release safe even if the tracer itself died first.
  struct Slot {
    std::vector<Entry> entries;
    ~Slot() {
      for (auto& e : entries) {
        e.buffer->in_use.store(false, std::memory_order_release);
      }
    }
  };
  thread_local Slot slot;
  for (const auto& e : slot.entries) {
    if (e.tracer == this) return e.buffer.get();
  }

  std::lock_guard<std::mutex> lock(mutex_);
  std::shared_ptr<ThreadBuffer> buf;
  for (const auto& b : buffers_) {
    if (!b->in_use.load(std::memory_order_acquire)) {
      b->in_use.store(true, std::memory_order_relaxed);
      buf = b;
      break;
    }
  }
  if (buf == nullptr) {
    buf = std::make_shared<ThreadBuffer>();
    buf->tid = static_cast<std::uint32_t>(buffers_.size()) + 1;
    buffers_.push_back(buf);
  }
  if (buf->ring.size() != capacity_) {
    buf->ring.resize(capacity_);
    buf->head = 0;
    buf->total = 0;
  }
  slot.entries.push_back(Entry{this, buf});
  return buf.get();
}

void Tracer::record(const char* name, const char* category,
                    std::uint64_t start_ns, std::uint64_t dur_ns,
                    std::uint64_t arg, const char* arg_name) {
  if (!armed()) return;
  ThreadBuffer* b = local_buffer();
  b->ring[b->head] = SpanRecord{name, category, start_ns, dur_ns, arg,
                                arg_name};
  ++b->total;
  b->head = (b->head + 1) % b->ring.size();
}

std::vector<std::pair<std::uint32_t, SpanRecord>> Tracer::collect_local()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::pair<std::uint32_t, SpanRecord>> out;
  for (const auto& b : buffers_) {
    const std::size_t cap = b->ring.size();
    if (cap == 0 || b->total == 0) continue;
    const std::size_t kept =
        b->total < cap ? static_cast<std::size_t>(b->total) : cap;
    // Oldest retained span first: the ring's write head is also where the
    // oldest record lives once the buffer has wrapped.
    const std::size_t begin = b->total < cap ? 0 : b->head;
    for (std::size_t i = 0; i < kept; ++i) {
      out.emplace_back(b->tid, b->ring[(begin + i) % cap]);
    }
  }
  return out;
}

std::size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = remote_.size();
  for (const auto& b : buffers_) {
    const std::size_t cap = b->ring.size();
    n += b->total < cap ? static_cast<std::size_t>(b->total) : cap;
  }
  return n;
}

std::uint64_t Tracer::dropped_spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t dropped = remote_dropped_;
  for (const auto& b : buffers_) {
    const std::size_t cap = b->ring.size();
    if (b->total > cap) dropped += b->total - cap;
  }
  return dropped;
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& b : buffers_) {
    if (b->ring.size() != capacity_) b->ring.resize(capacity_);
    b->head = 0;
    b->total = 0;
  }
  remote_.clear();
  remote_dropped_ = 0;
  absorb_failures_.store(0, std::memory_order_relaxed);
}

std::string Tracer::serialize_and_clear() {
  const auto spans = collect_local();
  const std::uint64_t dropped = dropped_spans() - remote_dropped_;

  std::string out;
  out.reserve(24 + spans.size() * 64);
  out.append(kPayloadMagic, sizeof kPayloadMagic);
  put_u32(out, static_cast<std::uint32_t>(spans.size()));
  put_u64(out, dropped);
  for (const auto& [tid, s] : spans) {
    put_u32(out, tid);
    put_u64(out, s.start_ns);
    put_u64(out, s.dur_ns);
    put_u64(out, s.arg);
    put_str(out, s.name);
    put_str(out, s.category);
    put_str(out, s.arg_name);
  }

  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& b : buffers_) {
    b->head = 0;
    b->total = 0;
  }
  return out;
}

bool Tracer::absorb(const std::string& payload, std::uint64_t worker) {
  const auto fail = [this] {
    absorb_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  };
  Reader r{payload.data(), payload.size()};
  char magic[sizeof kPayloadMagic];
  if (!r.get(magic, sizeof magic) ||
      std::memcmp(magic, kPayloadMagic, sizeof magic) != 0) {
    return fail();
  }
  std::uint32_t count = 0;
  std::uint64_t dropped = 0;
  if (!r.get_u32(count) || !r.get_u64(dropped)) return fail();
  if (count > kMaxPayloadRecords) return fail();

  std::vector<RemoteSpan> spans;
  spans.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    RemoteSpan s;
    s.worker = worker;
    if (!r.get_u32(s.tid) || !r.get_u64(s.start_ns) || !r.get_u64(s.dur_ns) ||
        !r.get_u64(s.arg) || !r.get_str(s.name) || !r.get_str(s.category) ||
        !r.get_str(s.arg_name)) {
      return fail();
    }
  // A record with an empty name would export as an anonymous event —
  // treat it as corruption, nothing in the stack emits one.
    if (s.name.empty()) return fail();
    spans.push_back(std::move(s));
  }
  if (r.left != 0) return fail();  // trailing bytes: not our payload

  std::lock_guard<std::mutex> lock(mutex_);
  remote_.insert(remote_.end(), std::make_move_iterator(spans.begin()),
                 std::make_move_iterator(spans.end()));
  remote_dropped_ += dropped;
  return true;
}

std::string Tracer::render_chrome_trace() const {
  const auto local = collect_local();
  std::vector<RemoteSpan> remote;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    remote = remote_;
  }
  const std::uint64_t dropped = dropped_spans();
  const std::uint64_t failures =
      absorb_failures_.load(std::memory_order_relaxed);

  std::string out = "{\"displayTimeUnit\": \"ms\", \"otherData\": ";
  out += "{\"dropped_spans\": ";
  {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(dropped));
    out += buf;
    out += ", \"absorb_failures\": ";
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(failures));
    out += buf;
  }
  out += "}, \"traceEvents\": [\n";

  bool first = true;
  const auto emit_meta = [&](std::uint64_t pid, const std::string& pname) {
    if (!first) out += ",\n";
    first = false;
    char buf[64];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(pid));
    out += "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": ";
    out += buf;
    out += ", \"tid\": 0, \"ts\": 0, \"args\": {\"name\": \"";
    append_json_escaped(out, pname.c_str());
    out += "\"}}";
  };
  emit_meta(0, "parent");
  std::set<std::uint64_t> workers;
  for (const auto& s : remote) workers.insert(s.worker);
  for (const std::uint64_t w : workers) {
    emit_meta(w, "worker " + std::to_string(w));
  }

  const auto emit_event = [&](const char* name, const char* cat,
                              std::uint64_t pid, std::uint32_t tid,
                              std::uint64_t start_ns, std::uint64_t dur_ns,
                              std::uint64_t arg, const char* arg_name) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\": \"";
    append_json_escaped(out, name);
    out += "\", \"cat\": \"";
    append_json_escaped(out, cat != nullptr && *cat != '\0' ? cat : "rt");
    out += "\", \"ph\": \"X\", \"ts\": ";
    append_us(out, start_ns);
    out += ", \"dur\": ";
    append_us(out, dur_ns);
    char buf[64];
    std::snprintf(buf, sizeof buf, ", \"pid\": %llu, \"tid\": %u",
                  static_cast<unsigned long long>(pid), tid);
    out += buf;
    if (arg_name != nullptr && *arg_name != '\0') {
      out += ", \"args\": {\"";
      append_json_escaped(out, arg_name);
      std::snprintf(buf, sizeof buf, "\": %llu}",
                    static_cast<unsigned long long>(arg));
      out += buf;
    }
    out += "}";
  };

  for (const auto& [tid, s] : local) {
    emit_event(s.name, s.category, 0, tid, s.start_ns, s.dur_ns, s.arg,
               s.arg_name);
  }
  for (const auto& s : remote) {
    emit_event(s.name.c_str(), s.category.c_str(), s.worker, s.tid,
               s.start_ns, s.dur_ns, s.arg,
               s.arg_name.empty() ? nullptr : s.arg_name.c_str());
  }

  out += "\n]}\n";
  return out;
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  const std::string json = render_chrome_trace();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace rt::obs
