#pragma once

/// Strict reader for the Chrome trace-event JSON the tracer exports.
///
/// "Strict" is the point: the exporter's output is consumed by external
/// tools (Perfetto), so CI and tests must fail on any malformation —
/// trailing bytes, unterminated strings, bad numbers, events missing
/// required fields — rather than shrug like a lenient parser would. The
/// grammar is full JSON; the schema is the subset the exporter writes
/// (top-level object with `traceEvents`, `ph: "X"` spans with ts/dur/
/// pid/tid, `ph: "M"` metadata).

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace rt::obs {

class TraceParseError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct TraceEvent {
  std::string name;
  std::string cat;
  std::string ph;        ///< "X" span or "M" metadata
  double ts_us{0.0};
  double dur_us{0.0};
  std::uint64_t pid{0};
  std::uint64_t tid{0};
};

struct ParsedTrace {
  std::vector<TraceEvent> events;
  std::uint64_t dropped_spans{0};
  std::uint64_t absorb_failures{0};

  bool has_span(std::string_view name) const;
  std::size_t count_spans(std::string_view name) const;
  /// Distinct pids among ph=="X" span events (parent is pid 0, forked
  /// workers their worker id).
  std::vector<std::uint64_t> span_pids() const;
};

/// Parse a full trace document. Throws TraceParseError on any syntax or
/// schema violation, including bytes after the closing brace.
ParsedTrace parse_chrome_trace(std::string_view json);
ParsedTrace parse_chrome_trace_file(const std::string& path);

}  // namespace rt::obs
