#include "safety/safety_monitor.hpp"

#include <algorithm>

namespace rt::safety {

void SafetyMonitor::record(const sim::World& world, bool eb_active,
                           bool attack_active, sim::ActorId target_id) {
  const SafetyAssessment a = model_.assess(world);
  double target_delta = model_.config().clear_path_dsafe;
  if (target_id >= 0) {
    if (const auto gt = world.ground_truth_for(target_id)) {
      target_delta = model_.delta(
          gt->longitudinal_gap(world.ego().dims().length),
          world.ego().speed());
    }
  }
  min_delta_ = std::min(min_delta_, a.delta);
  if (attack_active) attack_seen_ = true;
  if (attack_seen_) {
    min_delta_since_attack_ = std::min(min_delta_since_attack_, a.delta);
  }
  if (eb_active) {
    eb_seen_ = true;
    if (!prev_eb_) ++eb_episodes_;
  }
  prev_eb_ = eb_active;
  if (world.collision()) collision_ = true;
  if (keep_timeline_) {
    timeline_.push_back({world.time(), a.delta, a.d_safe, target_delta,
                         world.ego().speed(), eb_active, attack_active});
  }
}

}  // namespace rt::safety
