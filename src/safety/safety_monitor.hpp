#pragma once

#include <optional>
#include <vector>

#include "safety/safety_model.hpp"

namespace rt::safety {

/// One sample of the per-run safety timeline.
struct SafetySample {
  double time{0.0};
  double delta{0.0};
  double d_safe{0.0};
  /// Safety potential computed against the scenario's designated target
  /// actor regardless of whether it is in the EV path — the quantity the
  /// malware's SafetyModel(S_hat_t) estimates and the SH oracle predicts.
  double target_delta{0.0};
  double ego_speed{0.0};
  bool eb_active{false};
  bool attack_active{false};
};

/// Run-level ground-truth recorder.
///
/// Evaluates the safety model on the true world each frame and accumulates
/// the quantities the paper's tables and figures report: whether emergency
/// braking occurred, the minimum safety potential from attack start to
/// scenario end (Fig. 6), and the accident label (min delta < 4 m, §VI-C).
class SafetyMonitor {
 public:
  explicit SafetyMonitor(SafetyModel model = SafetyModel{},
                         bool keep_timeline = false)
      : model_(model), keep_timeline_(keep_timeline) {}

  /// Records one frame. `eb_active` comes from the planner, `attack_active`
  /// from the attacker (evaluation-side knowledge). `target_id` selects the
  /// actor whose target-delta is recorded (negative: none).
  void record(const sim::World& world, bool eb_active, bool attack_active,
              sim::ActorId target_id = -1);

  /// True once any frame has been recorded with eb_active.
  [[nodiscard]] bool emergency_braking_occurred() const { return eb_seen_; }
  /// Number of distinct EB episodes (rising edges).
  [[nodiscard]] int eb_episodes() const { return eb_episodes_; }
  /// Minimum delta over the whole run.
  [[nodiscard]] double min_delta() const { return min_delta_; }
  /// Minimum delta from the first attacked frame onward; min over the whole
  /// run when no attack was recorded.
  [[nodiscard]] double min_delta_since_attack() const {
    return attack_seen_ ? min_delta_since_attack_ : min_delta_;
  }
  /// True if a physical footprint overlap was ever observed.
  [[nodiscard]] bool collision_occurred() const { return collision_; }
  /// Paper's accident label: delta dropped below the accident threshold
  /// after the attack began (or anywhere, for non-attacked runs).
  [[nodiscard]] bool accident() const {
    return min_delta_since_attack() < model_.config().accident_delta;
  }
  [[nodiscard]] bool attack_observed() const { return attack_seen_; }
  [[nodiscard]] const std::vector<SafetySample>& timeline() const {
    return timeline_;
  }
  [[nodiscard]] const SafetyModel& model() const { return model_; }

 private:
  SafetyModel model_;
  bool keep_timeline_{false};
  std::vector<SafetySample> timeline_;
  bool eb_seen_{false};
  bool prev_eb_{false};
  int eb_episodes_{0};
  bool attack_seen_{false};
  bool collision_{false};
  double min_delta_{1e9};
  double min_delta_since_attack_{1e9};
};

}  // namespace rt::safety
