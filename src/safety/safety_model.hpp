#pragma once

#include <optional>

#include "sim/world.hpp"

namespace rt::safety {

/// The AV safety model of Jha et al. [6], as adopted by the paper (§II-C).
///
/// Definitions (longitudinal only, matching the paper's scenarios):
///  - d_stop (Def. 3): distance the EV travels before a complete stop under
///    the maximum *comfortable* deceleration: v^2 / (2 * a_comfort).
///  - d_safe (Def. 4): maximum distance the EV can travel without colliding
///    with any object — the bumper-to-bumper gap to the nearest in-path
///    obstacle (a large constant when the path is clear).
///  - delta (Def. 5): safety potential, delta = d_safe - d_stop.
///
/// The paper labels a run an *accident* when delta < 4 m at any time after
/// the attack starts (LGSVL halts the simulation below a 4 m distance).
struct SafetyModelConfig {
  /// Maximum comfortable deceleration (Def. 3). Calibrated so the paper's
  /// reported safety potentials reproduce: a 20 m follow gap at 25 kph must
  /// be comfortably safe (delta ~ 11 m), and a 10 m stop margin in front of
  /// a pedestrian yields delta ~ 10 m.
  double comfort_decel{3.5};       ///< a_comfort for d_stop
  double clear_path_dsafe{200.0};  ///< d_safe when no in-path object exists
  double accident_delta{4.0};      ///< delta threshold labeling an accident
};

/// Instantaneous safety assessment.
struct SafetyAssessment {
  double d_stop{0.0};
  double d_safe{0.0};
  double delta{0.0};
  /// Id of the in-path object that bounds d_safe; nullopt if path clear.
  std::optional<sim::ActorId> bounding_object;
};

class SafetyModel {
 public:
  explicit SafetyModel(SafetyModelConfig config = {}) : config_(config) {}

  [[nodiscard]] const SafetyModelConfig& config() const { return config_; }

  /// d_stop for a given speed (Def. 3).
  [[nodiscard]] double stopping_distance(double speed) const {
    return speed * speed / (2.0 * config_.comfort_decel);
  }

  /// delta for an arbitrary (gap, speed) pair. This overload is what the
  /// malware itself evaluates on its camera-only world reconstruction
  /// (line 4 of Algorithm 1).
  [[nodiscard]] double delta(double gap, double speed) const {
    return gap - stopping_distance(speed);
  }

  /// Ground-truth assessment of the current world (evaluation side).
  [[nodiscard]] SafetyAssessment assess(const sim::World& world) const;

 private:
  SafetyModelConfig config_;
};

}  // namespace rt::safety
