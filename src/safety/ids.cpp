#include "safety/ids.hpp"

#include <algorithm>
#include <cmath>

#include "math/bbox.hpp"

namespace rt::safety {

void AttackIds::flag(const std::string& reason) {
  if (!report_.flagged) {
    report_.flagged = true;
    report_.reason = reason;
  }
}

void AttackIds::observe(const perception::CameraFrame& frame,
                        const std::vector<perception::TrackView>& tracks,
                        const std::vector<perception::LidarTrack>& lidar) {
  innovation_test(frame, tracks);
  absence_test(frame, lidar);
}

void AttackIds::innovation_test(
    const perception::CameraFrame& frame,
    const std::vector<perception::TrackView>& tracks) {
  for (const auto& t : tracks) {
    if (!t.matched_this_frame || t.hits < 4) {
      innovation_streak_.erase(t.track_id);
      continue;
    }
    // Recover the matched detection: highest-IoU detection of this class.
    const perception::Detection* best = nullptr;
    double best_iou = 0.0;
    for (const auto& d : frame.detections) {
      if (d.cls != t.cls) continue;
      const double o = math::iou(d.bbox, t.predicted_bbox);
      if (o > best_iou) {
        best_iou = o;
        best = &d;
      }
    }
    if (best == nullptr) continue;
    const auto& fit = noise_.for_class(t.cls).center_x;
    const double e =
        (best->bbox.cx - t.predicted_bbox.cx) / std::max(1.0, best->bbox.w);
    const bool out_of_band =
        std::abs(e - fit.mu) > config_.sigma_mult * fit.sigma;
    int& streak = innovation_streak_[t.track_id];
    streak = out_of_band ? streak + 1 : 0;
    if (out_of_band) ++report_.innovation_alarms;
    if (streak >= config_.innovation_consecutive) {
      flag("sustained out-of-band detection/track innovation");
    }
  }
}

void AttackIds::absence_test(
    const perception::CameraFrame& frame,
    const std::vector<perception::LidarTrack>& lidar) {
  for (const auto& l : lidar) {
    if (l.hits < 3) continue;
    // Would this LiDAR object be visible to the camera right now?
    sim::GroundTruthObject probe;
    probe.rel_position = l.rel_position;
    probe.dims = sim::default_dimensions(sim::ActorType::kVehicle);
    const auto expected_box = camera_.project(probe);
    if (!expected_box) {
      absence_streak_.erase(l.track_id);
      continue;
    }
    // Any camera detection near the expected location?
    bool seen = false;
    for (const auto& d : frame.detections) {
      if (math::iou(d.bbox, *expected_box) > 0.05) {
        seen = true;
        break;
      }
    }
    int& streak = absence_streak_[l.track_id];
    streak = seen ? 0 : streak + 1;
    // LiDAR cannot classify; use the longer (vehicle) streak tail so the
    // test never false-positives on pedestrians.
    const double p99 = noise_.vehicle.streak_p99;
    if (streak > static_cast<int>(p99 * config_.absence_p99_mult)) {
      ++report_.absence_alarms;
      flag("camera-invisible object corroborated by LiDAR for too long");
    }
  }
}

}  // namespace rt::safety
