#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "perception/camera_model.hpp"
#include "perception/detection.hpp"
#include "perception/lidar_tracker.hpp"
#include "perception/mot_tracker.hpp"
#include "perception/noise_model.hpp"

namespace rt::safety {

/// Configuration of the perception intrusion-detection system.
struct IdsConfig {
  /// A matched detection whose normalized center innovation falls outside
  /// mu +- sigma_mult * sigma of the characterized noise is suspicious.
  /// The paper's attacker stays within 1 sigma precisely to duck this test.
  double sigma_mult{1.0};
  /// Consecutive suspicious innovations on one track before flagging.
  int innovation_consecutive{4};
  /// Multiplier on the class's 99th-percentile misdetection streak: a
  /// LiDAR-corroborated object with no camera detection for longer than
  /// p99 * this is flagged (catches over-long Disappear attacks).
  double absence_p99_mult{1.0};
};

/// What the IDS flagged (empty reason = not flagged).
struct IdsReport {
  bool flagged{false};
  std::string reason;
  int innovation_alarms{0};
  int absence_alarms{0};
};

/// Model of the defender's intrusion-detection system (§III-A/§VI-E).
///
/// The paper's stealth argument is that the malware's perturbations are
/// statistically indistinguishable from natural detector noise; this class
/// operationalizes the two tests that argument implies:
///  1. innovation test — per-frame normalized displacement between each
///     matched detection and its track prediction must stay within the
///     characterized Gaussian band;
///  2. absence test — an object corroborated by LiDAR (which the attacker
///     cannot touch) must not stay camera-invisible for longer than the
///     characterized misdetection-streak tail.
///
/// RoboTack's constraints (perturbation within +-1 sigma, K' small, K under
/// the streak p99) are chosen to evade exactly these tests; the random
/// baseline and the no-noise-bound ablation trip them.
class AttackIds {
 public:
  AttackIds(IdsConfig config, perception::DetectorNoiseModel noise,
            perception::CameraModel camera)
      : config_(config), noise_(noise), camera_(camera) {}

  /// Observes one perception frame. `frame` is the (possibly attacked)
  /// camera frame the ADS consumed; `tracks` the post-update camera tracks;
  /// `lidar` the latest LiDAR tracks.
  void observe(const perception::CameraFrame& frame,
               const std::vector<perception::TrackView>& tracks,
               const std::vector<perception::LidarTrack>& lidar);

  [[nodiscard]] const IdsReport& report() const { return report_; }

 private:
  void innovation_test(const perception::CameraFrame& frame,
                       const std::vector<perception::TrackView>& tracks);
  void absence_test(const perception::CameraFrame& frame,
                    const std::vector<perception::LidarTrack>& lidar);
  void flag(const std::string& reason);

  IdsConfig config_;
  perception::DetectorNoiseModel noise_;
  perception::CameraModel camera_;
  IdsReport report_;
  /// Consecutive out-of-band innovations per camera track id.
  std::unordered_map<int, int> innovation_streak_;
  /// Consecutive camera-absent frames per LiDAR track id.
  std::unordered_map<int, int> absence_streak_;
};

}  // namespace rt::safety
