#include "safety/safety_model.hpp"

namespace rt::safety {

SafetyAssessment SafetyModel::assess(const sim::World& world) const {
  SafetyAssessment a;
  a.d_stop = stopping_distance(world.ego().speed());
  const auto nearest = world.nearest_in_path();
  if (nearest) {
    a.d_safe = nearest->longitudinal_gap(world.ego().dims().length);
    a.bounding_object = nearest->id;
  } else {
    a.d_safe = config_.clear_path_dsafe;
  }
  a.delta = a.d_safe - a.d_stop;
  return a;
}

}  // namespace rt::safety
