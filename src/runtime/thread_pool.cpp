#include "runtime/thread_pool.hpp"

#include <atomic>

namespace rt::runtime {

unsigned ThreadPool::default_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(unsigned threads)
    : size_(threads == 0 ? default_threads() : threads) {
  if (size_ < 2) return;  // inline mode
  workers_.reserve(size_);
  for (unsigned i = 0; i < size_; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::record_exception() noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!first_error_) first_error_ = std::current_exception();
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    try {
      task();
    } catch (...) {
      record_exception();
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    try {
      task();
    } catch (...) {
      record_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --in_flight_;
    }
    idle_.notify_all();
  }
}

void ThreadPool::wait_idle() {
  std::exception_ptr error;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    idle_.wait(lock, [this] { return in_flight_ == 0 && queue_.empty(); });
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error) std::rethrow_exception(error);
}

void ThreadPool::parallel_for(int n, const std::function<void(int)>& fn) {
  if (n <= 0) return;
  if (workers_.empty()) {
    // Same error semantics as the threaded path: every index runs, the
    // first exception is rethrown at the end.
    std::exception_ptr first_error;
    for (int i = 0; i < n; ++i) {
      try {
        fn(i);
      } catch (...) {
        if (!first_error) first_error = std::current_exception();
      }
    }
    if (first_error) std::rethrow_exception(first_error);
    return;
  }
  // One counter-draining task per worker instead of n queue nodes. Stack
  // captures are safe: wait_idle() keeps this frame alive until every task
  // finishes.
  std::atomic<int> next{0};
  const unsigned tasks = std::min<unsigned>(size_, static_cast<unsigned>(n));
  for (unsigned t = 0; t < tasks; ++t) {
    submit([&next, n, &fn] {
      for (int i = next.fetch_add(1); i < n; i = next.fetch_add(1)) fn(i);
    });
  }
  wait_idle();
}

}  // namespace rt::runtime
