#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace rt::runtime {

/// Fixed-size thread pool shared by every parallel engine in the stack: the
/// campaign scheduler, the dataset-generation grids, the pooled oracle
/// trainings, and the minibatch trainer.
///
/// Deliberately simple — a single locked queue, no work stealing: the tasks
/// fanned over it are coarse (a campaign run, a layer's row block), so queue
/// contention is negligible and the scheduling order never affects results
/// (every task writes to its own pre-assigned output slot, and all
/// randomness is counter-based per task, see `stats::Rng::from_stream`).
///
/// `ThreadPool(1)` runs every task inline on the calling thread — no worker
/// is spawned — which keeps the serial path trivially deterministic and
/// debuggable.
class ThreadPool {
 public:
  /// `threads == 0` means `default_threads()`.
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of threads that execute work (>= 1; 1 means inline execution).
  [[nodiscard]] unsigned size() const { return size_; }

  /// Enqueues a task. Inline mode (size()==1) executes it immediately.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished. Rethrows the first
  /// exception any task raised (subsequent ones are dropped).
  void wait_idle();

  /// Runs fn(0) .. fn(n-1), blocking until all complete. Equivalent to
  /// submit()ing each index and wait_idle(), but shares one counter instead
  /// of n queue nodes.
  void parallel_for(int n, const std::function<void(int)>& fn);

  /// hardware_concurrency(), clamped to >= 1.
  [[nodiscard]] static unsigned default_threads();

 private:
  void worker_loop();
  void record_exception() noexcept;

  unsigned size_{1};
  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t in_flight_{0};
  bool stopping_{false};
  std::exception_ptr first_error_;
};

}  // namespace rt::runtime
