#include "perception/track_projection.hpp"

#include <algorithm>

#include "perception/track_liveness.hpp"

namespace rt::perception {

std::vector<WorldTrack> TrackProjector::project(
    const std::vector<TrackView>& tracks) {
  std::vector<WorldTrack> out;
  project_into(tracks, out);
  return out;
}

void TrackProjector::project_into(const std::vector<TrackView>& tracks,
                                  std::vector<WorldTrack>& out) {
  out.clear();
  out.reserve(tracks.size());
  for (const TrackView& t : tracks) {
    const auto pos = camera_.back_project(t.bbox);
    if (!pos) continue;

    WorldTrack w;
    w.track_id = t.track_id;
    w.cls = t.cls;
    w.rel_position = *pos;
    w.hits = t.hits;
    w.matched_this_frame = t.matched_this_frame;
    w.last_truth_id = t.last_truth_id;

    History& h = history_[t.track_id];
    if (h.has_velocity) {
      math::Vec2 raw = (*pos - h.last_position) / dt_;
      // Physical plausibility clamp: road users do not exceed ~40 m/s
      // longitudinally or ~5 m/s laterally; larger jumps are estimator
      // noise (range-from-bbox errors), not motion.
      raw.x = std::clamp(raw.x, -40.0, 40.0);
      raw.y = std::clamp(raw.y, -5.0, 5.0);
      h.velocity = h.velocity * (1.0 - alpha_) + raw * alpha_;
    } else {
      h.velocity = {0.0, 0.0};
      h.has_velocity = true;
    }
    h.last_position = *pos;
    w.rel_velocity = h.velocity;
    out.push_back(w);
  }
  // Forget vanished tracks so their stale velocity never leaks into a
  // recycled id.
  erase_dead_tracks(history_, out,
                    [](const WorldTrack& w) { return w.track_id; });
}

}  // namespace rt::perception
