#pragma once

#include <cstddef>
#include <vector>

#include "math/matrix.hpp"

namespace rt::perception {

/// Result of an assignment: `assignment[r]` is the column matched to row r,
/// or -1 if row r is unassigned (possible when rows > cols).
struct AssignmentResult {
  std::vector<int> assignment;
  double total_cost{0.0};
};

/// Kuhn-Munkres (Hungarian) minimum-cost assignment ("M" in Fig. 1).
///
/// The tracker calls this with cost(i, j) = 1 - IoU(detection_i, track_j);
/// the trajectory hijacker reasons about the same cost when keeping its
/// perturbed detection associated with the victim's tracker (Eq. 4's
/// "M <= lambda" constraint).
///
/// Rectangular matrices are handled by padding with a large cost; padded
/// matches are reported as unassigned. O(n^3).
[[nodiscard]] AssignmentResult solve_assignment(const math::Matrix& cost);

}  // namespace rt::perception
