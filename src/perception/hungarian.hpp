#pragma once

#include <cstddef>
#include <vector>

#include "math/matrix.hpp"

namespace rt::perception {

/// Result of an assignment: `assignment[r]` is the column matched to row r,
/// or -1 if row r is unassigned (possible when rows > cols).
struct AssignmentResult {
  std::vector<int> assignment;
  double total_cost{0.0};
};

/// Kuhn-Munkres (Hungarian) minimum-cost assignment ("M" in Fig. 1).
///
/// The tracker calls this with cost(i, j) = 1 - IoU(detection_i, track_j);
/// the trajectory hijacker reasons about the same cost when keeping its
/// perturbed detection associated with the victim's tracker (Eq. 4's
/// "M <= lambda" constraint).
///
/// Reusable working vectors of `solve_assignment` (potentials, matching,
/// augmenting-path bookkeeping). Callers on a hot path keep one per tracker
/// so repeated solves allocate nothing beyond the returned assignment.
struct AssignmentScratch {
  std::vector<double> u, v, minv;
  std::vector<std::size_t> p, way;
  std::vector<char> used;
};

/// Rectangular matrices are handled by padding with a large cost; padded
/// matches are reported as unassigned. O(n^3). The scratch-free overload
/// uses a thread-local scratch, so repeated calls are allocation-free too;
/// results are identical either way.
[[nodiscard]] AssignmentResult solve_assignment(const math::Matrix& cost);
[[nodiscard]] AssignmentResult solve_assignment(const math::Matrix& cost,
                                                AssignmentScratch& scratch);
/// Destination-passing variant: `out.assignment` reuses its capacity, so a
/// caller holding both scratch and result performs zero allocations per
/// solve (the MOT trackers on the campaign hot path do).
void solve_assignment_into(const math::Matrix& cost,
                           AssignmentScratch& scratch, AssignmentResult& out);

}  // namespace rt::perception
