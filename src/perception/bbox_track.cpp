#include "perception/bbox_track.hpp"

#include <algorithm>

namespace rt::perception {

namespace {

constexpr double kMeasSigmaFloorPx = 2.0;
/// Robust fraction of the population sigma used as the KF's measurement
/// sigma (the population fit includes outliers; the filter calibrates to
/// the typical noise and *gates* the tail — see MotTracker).
constexpr double kRobustFraction = 0.35;
constexpr double kMeasSigmaFracMin = 0.06;
constexpr double kMeasSigmaFracMax = 0.50;

constexpr double kPosProcessSigma = 4.0;   // px / frame
constexpr double kSizeProcessSigma = 2.5;  // px / frame
constexpr double kVelProcessSigma = 14.0;  // px/s / frame

}  // namespace

void BboxTrack::measurement_noise_into(const math::Bbox& b,
                                       math::Matrix& out) const {
  const double su = std::max(kMeasSigmaFloorPx, meas_sigma_x_ * b.w);
  const double sv = std::max(kMeasSigmaFloorPx, meas_sigma_y_ * b.h);
  const double sw = std::max(kMeasSigmaFloorPx, 0.08 * b.w);
  const double sh = std::max(kMeasSigmaFloorPx, 0.08 * b.h);
  const double entries[] = {su * su, sv * sv, sw * sw, sh * sh};
  out.resize(4, 4);
  std::fill(out.data().begin(), out.data().end(), 0.0);
  for (std::size_t i = 0; i < 4; ++i) out(i, i) = entries[i];
}

void BboxTrack::to_measurement_into(const math::Bbox& b, math::Matrix& out) {
  out.resize(4, 1);
  out(0, 0) = b.cx;
  out(1, 0) = b.cy;
  out(2, 0) = b.w;
  out(3, 0) = b.h;
}

BboxTrack::BboxTrack(int id, const Detection& first, double dt,
                     const ClassNoiseModel& noise)
    : id_(id),
      cls_(first.cls),
      meas_sigma_x_(std::clamp(kRobustFraction * noise.center_x.sigma,
                               kMeasSigmaFracMin, kMeasSigmaFracMax)),
      meas_sigma_y_(std::clamp(kRobustFraction * noise.center_y.sigma,
                               kMeasSigmaFracMin, kMeasSigmaFracMax)),
      last_truth_id_(first.truth_id) {
  // State: [u, v, w, h, vu, vv]; constant-velocity center, random-walk size.
  math::Matrix f = math::Matrix::identity(6);
  f(0, 4) = dt;
  f(1, 5) = dt;
  math::Matrix h(4, 6);
  h(0, 0) = h(1, 1) = h(2, 2) = h(3, 3) = 1.0;

  const double qp = kPosProcessSigma * kPosProcessSigma;
  const double qs = kSizeProcessSigma * kSizeProcessSigma;
  const double qv = kVelProcessSigma * kVelProcessSigma;
  const double q_entries[] = {qp, qp, qs, qs, qv, qv};
  math::Matrix q = math::Matrix::diagonal(q_entries);

  const double x0_entries[] = {first.bbox.cx, first.bbox.cy, first.bbox.w,
                               first.bbox.h, 0.0, 0.0};
  math::Matrix x0 = math::Matrix::column(x0_entries);

  // Generous initial velocity uncertainty: the first few updates lock it in.
  const double p0_entries[] = {25.0, 25.0, 25.0, 25.0, 2500.0, 2500.0};
  math::Matrix p0 = math::Matrix::diagonal(p0_entries);

  measurement_noise_into(first.bbox, r_scratch_);
  kf_ = KalmanFilter(f, q, h, r_scratch_, x0, p0);
  predicted_ = first.bbox;
}

math::Bbox BboxTrack::bbox() const {
  const auto& x = kf_.state();
  return {x(0, 0), x(1, 0), std::max(1.0, x(2, 0)), std::max(1.0, x(3, 0))};
}

void BboxTrack::predict() {
  kf_.predict();
  ++age_;
  predicted_ = bbox();
}

void BboxTrack::update(const Detection& det) {
  // Refresh the size-proportional measurement noise before the update.
  measurement_noise_into(det.bbox, r_scratch_);
  kf_.set_measurement_noise(r_scratch_);
  to_measurement_into(det.bbox, z_scratch_);
  // Record the pre-update innovation for the runtime attack monitors. Pure
  // observation: the Mahalanobis distance falls out of the update's own
  // innovation/S^-1 computation (see KalmanFilter::last_update_mahalanobis2),
  // so the filter state (and every pinned golden) is unchanged and the
  // bookkeeping costs one 4x4 quadratic form.
  last_innovation_x_ =
      (det.bbox.cx - predicted_.cx) / std::max(1.0, det.bbox.w);
  last_innovation_y_ =
      (det.bbox.cy - predicted_.cy) / std::max(1.0, det.bbox.h);
  kf_.update(z_scratch_);
  last_innovation_m2_ = kf_.last_update_mahalanobis2();
  ++hits_;
  consecutive_misses_ = 0;
  last_truth_id_ = det.truth_id;
}

void BboxTrack::mark_missed() {
  ++consecutive_misses_;
  last_innovation_m2_ = -1.0;
  last_innovation_x_ = 0.0;
  last_innovation_y_ = 0.0;
}

double BboxTrack::mahalanobis2(const math::Bbox& z) const {
  to_measurement_into(z, z_scratch_);
  return kf_.mahalanobis2(z_scratch_);
}

}  // namespace rt::perception
