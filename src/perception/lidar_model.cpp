#include "perception/lidar_model.hpp"

#include <algorithm>
#include <cmath>

namespace rt::perception {

std::vector<LidarMeasurement> LidarModel::scan(
    const std::vector<sim::GroundTruthObject>& objects) {
  std::vector<LidarMeasurement> out;
  scan_into(objects, out);
  return out;
}

void LidarModel::scan_into(const std::vector<sim::GroundTruthObject>& objects,
                           std::vector<LidarMeasurement>& out) {
  out.clear();
  for (const auto& obj : objects) {
    const double range = obj.rel_position.norm();
    if (obj.rel_position.x < 1.0) continue;  // behind / alongside the sensor
    if (std::abs(obj.rel_position.y) > config_.lateral_coverage) continue;
    if (range > config_.range_for(obj.type)) continue;
    if (!rng_.bernoulli(config_.detect_prob_for(obj.type))) continue;

    LidarMeasurement m;
    m.rel_position = {
        obj.rel_position.x + rng_.normal(0.0, config_.position_sigma),
        obj.rel_position.y + rng_.normal(0.0, config_.position_sigma)};
    // Returned point count falls off with the square of range and scales
    // with the presented area; used by fusion as a confidence proxy.
    const double area = obj.dims.width * obj.dims.height;
    m.point_count = std::max(
        1, static_cast<int>(4000.0 * area / std::max(1.0, range * range)));
    m.truth_id = obj.id;
    out.push_back(m);
  }
}

}  // namespace rt::perception
