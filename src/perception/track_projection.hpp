#pragma once

#include <unordered_map>
#include <vector>

#include "math/vec2.hpp"
#include "perception/camera_model.hpp"
#include "perception/mot_tracker.hpp"

namespace rt::perception {

/// A camera track lifted into the road frame ("T" in Fig. 1): position and
/// velocity of the tracked object *relative to the ego*.
struct WorldTrack {
  int track_id{0};
  sim::ActorType cls{sim::ActorType::kVehicle};
  /// Relative position: x = range ahead, y = lateral (left positive).
  math::Vec2 rel_position;
  /// Relative velocity (road frame, derived from camera only).
  math::Vec2 rel_velocity;
  int hits{0};
  bool matched_this_frame{false};
  sim::ActorId last_truth_id{-1};
};

/// Transforms image-space tracks into road-frame estimates via ground-plane
/// back-projection, and maintains a smoothed relative-velocity estimate per
/// track (EMA over back-projected position differences — camera-only
/// velocity is noisy, which is precisely why the ADS prefers LiDAR velocity
/// when fusion has it).
class TrackProjector {
 public:
  explicit TrackProjector(CameraModel camera, double dt,
                          double velocity_ema_alpha = 0.22)
      : camera_(camera), dt_(dt), alpha_(velocity_ema_alpha) {}

  /// Projects this frame's confirmed tracks; drops tracks that cannot be
  /// grounded (bottom edge above the horizon). Forgets state of vanished
  /// tracks.
  std::vector<WorldTrack> project(const std::vector<TrackView>& tracks);
  /// Same, into a caller-owned buffer (cleared first).
  void project_into(const std::vector<TrackView>& tracks,
                    std::vector<WorldTrack>& out);

 private:
  struct History {
    math::Vec2 last_position;
    math::Vec2 velocity;
    bool has_velocity{false};
  };

  CameraModel camera_;
  double dt_;
  double alpha_;
  std::unordered_map<int, History> history_;
};

}  // namespace rt::perception
