#pragma once

#include <vector>

#include "math/bbox.hpp"
#include "sim/types.hpp"

namespace rt::perception {

/// One detector output box ("o_t^i" in the paper): what YOLOv3 would emit
/// for a single object in a single camera frame.
struct Detection {
  math::Bbox bbox;
  sim::ActorType cls{sim::ActorType::kVehicle};
  double confidence{1.0};
  /// Ground-truth actor id. Carried for *evaluation bookkeeping only*
  /// (characterization, IDS ground truth); no ADS or attack decision logic
  /// reads it.
  sim::ActorId truth_id{-1};
};

/// All detections of one camera frame ("O_t").
struct CameraFrame {
  double time{0.0};
  std::vector<Detection> detections;
};

}  // namespace rt::perception
