#include "perception/hungarian.hpp"

#include <algorithm>
#include <limits>

namespace rt::perception {

namespace {
constexpr double kPadCost = 1e6;
}

AssignmentResult solve_assignment(const math::Matrix& cost) {
  thread_local AssignmentScratch scratch;
  return solve_assignment(cost, scratch);
}

AssignmentResult solve_assignment(const math::Matrix& cost,
                                  AssignmentScratch& scratch) {
  AssignmentResult result;
  solve_assignment_into(cost, scratch, result);
  return result;
}

void solve_assignment_into(const math::Matrix& cost,
                           AssignmentScratch& scratch,
                           AssignmentResult& out) {
  const std::size_t rows = cost.rows();
  const std::size_t cols = cost.cols();
  AssignmentResult& result = out;
  result.assignment.assign(rows, -1);
  result.total_cost = 0.0;
  if (rows == 0 || cols == 0) return;

  // Pad to square; the classic O(n^3) potentials formulation below assumes
  // rows <= cols, which padding guarantees.
  const std::size_t n = std::max(rows, cols);
  auto at = [&](std::size_t r, std::size_t c) -> double {
    if (r < rows && c < cols) return cost(r, c);
    return kPadCost;
  };

  // Potentials-based Hungarian algorithm (e-maxx formulation), 1-indexed.
  // `assign` reuses the scratch vectors' capacity across calls.
  auto& u = scratch.u;
  auto& v = scratch.v;
  auto& p = scratch.p;
  auto& way = scratch.way;
  auto& minv = scratch.minv;
  auto& used = scratch.used;
  u.assign(n + 1, 0.0);
  v.assign(n + 1, 0.0);
  p.assign(n + 1, 0);  // p[col] = row matched to col
  way.assign(n + 1, 0);
  for (std::size_t i = 1; i <= n; ++i) {
    p[0] = i;
    std::size_t j0 = 0;
    minv.assign(n + 1, std::numeric_limits<double>::infinity());
    used.assign(n + 1, false);
    do {
      used[j0] = true;
      const std::size_t i0 = p[j0];
      double delta = std::numeric_limits<double>::infinity();
      std::size_t j1 = 0;
      for (std::size_t j = 1; j <= n; ++j) {
        if (used[j]) continue;
        const double cur = at(i0 - 1, j - 1) - u[i0] - v[j];
        if (cur < minv[j]) {
          minv[j] = cur;
          way[j] = j0;
        }
        if (minv[j] < delta) {
          delta = minv[j];
          j1 = j;
        }
      }
      for (std::size_t j = 0; j <= n; ++j) {
        if (used[j]) {
          u[p[j]] += delta;
          v[j] -= delta;
        } else {
          minv[j] -= delta;
        }
      }
      j0 = j1;
    } while (p[j0] != 0);
    do {
      const std::size_t j1 = way[j0];
      p[j0] = p[j1];
      j0 = j1;
    } while (j0 != 0);
  }

  for (std::size_t j = 1; j <= n; ++j) {
    const std::size_t r = p[j];
    if (r == 0) continue;
    if (r - 1 < rows && j - 1 < cols) {
      result.assignment[r - 1] = static_cast<int>(j - 1);
      result.total_cost += cost(r - 1, j - 1);
    }
  }
}

}  // namespace rt::perception
