#pragma once

#include <optional>
#include <vector>

#include "perception/camera_model.hpp"
#include "perception/noise_model.hpp"
#include "perception/detection.hpp"
#include "perception/fusion.hpp"
#include "perception/lidar_tracker.hpp"
#include "perception/mot_tracker.hpp"
#include "perception/perception_observer.hpp"
#include "perception/track_projection.hpp"

namespace rt::perception {

/// Output of one perception step: the fused world model W_t the planner
/// consumes, plus the intermediate camera-track state (exposed for the IDS
/// and for evaluation).
struct PerceptionOutput {
  double time{0.0};
  std::vector<FusedObject> world;         ///< published objects (W_t)
  std::vector<TrackView> camera_tracks;   ///< confirmed camera tracks
  std::vector<WorldTrack> camera_world;   ///< after "T" back-projection
  std::vector<LidarTrack> lidar_tracks;   ///< latest LiDAR tracker state
};

/// The full camera+LiDAR perception stack of Fig. 1:
/// detections -> MOT ("M" + "F") -> ground-plane transform ("T") -> fusion.
///
/// The camera frame it receives is whatever arrives over the (attackable)
/// camera link; LiDAR input is truthful. Runs at the camera rate; LiDAR
/// scans arrive on their own 10 Hz schedule via `ingest_lidar`.
class PerceptionSystem {
 public:
  PerceptionSystem(CameraModel camera, double camera_dt, double lidar_dt,
                   MotConfig mot_config = {}, FusionConfig fusion_config = {},
                   LidarConfig lidar_config = {},
                   DetectorNoiseModel noise =
                       DetectorNoiseModel::paper_defaults());

  /// Feeds one LiDAR scan (already clustered to object measurements).
  void ingest_lidar(const std::vector<LidarMeasurement>& scan);

  /// Processes one camera frame and produces the fused world model.
  PerceptionOutput step(const CameraFrame& frame);
  /// Same, into a caller-owned output whose vectors are reused across
  /// frames (the closed loop's per-frame hot path).
  void step_into(const CameraFrame& frame, PerceptionOutput& out);

  [[nodiscard]] const MotTracker& tracker() const { return mot_; }

  /// Installs a passive per-step tap (nullptr = none). The observer is
  /// invoked at the end of every `step_into` with the consumed frame and the
  /// produced output; it outlives the pointer set here at the caller's
  /// responsibility.
  void set_observer(PerceptionObserver* observer) { observer_ = observer; }

 private:
  MotTracker mot_;
  TrackProjector projector_;
  LidarTracker lidar_tracker_;
  Fusion fusion_;
  PerceptionObserver* observer_{nullptr};
};

}  // namespace rt::perception
