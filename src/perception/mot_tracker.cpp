#include "perception/mot_tracker.hpp"

#include <algorithm>

#include "perception/hungarian.hpp"

namespace rt::perception {

MotTracker::MotTracker(double dt, MotConfig config, DetectorNoiseModel noise)
    : dt_(dt), config_(config), noise_(noise) {}

TrackView MotTracker::view_of(const BboxTrack& t, bool matched) {
  TrackView v;
  v.track_id = t.id();
  v.cls = t.cls();
  v.bbox = t.bbox();
  v.predicted_bbox = t.predicted_bbox();
  v.vu = t.vu();
  v.vv = t.vv();
  v.hits = t.hits();
  v.consecutive_misses = t.consecutive_misses();
  v.matched_this_frame = matched;
  v.last_truth_id = t.last_truth_id();
  v.innovation_m2 = matched ? t.last_innovation_m2() : -1.0;
  v.innovation_x = matched ? t.last_innovation_x() : 0.0;
  v.innovation_y = matched ? t.last_innovation_y() : 0.0;
  return v;
}

std::vector<TrackView> MotTracker::update(const CameraFrame& frame) {
  std::vector<TrackView> out;
  update_into(frame, out);
  return out;
}

void MotTracker::update_into(const CameraFrame& frame,
                             std::vector<TrackView>& out) {
  // 1. Time update for every live track.
  for (BboxTrack& t : tracks_) t.predict();

  const auto& dets = frame.detections;
  auto& det_to_track = det_to_track_;
  auto& track_matched = track_matched_;
  det_to_track.assign(dets.size(), -1);
  track_matched.assign(tracks_.size(), 0);

  // 2. Hungarian association on IoU cost between detections and predicted
  //    track boxes, with class consistency and the gate from config. The
  //    cost matrix and solver scratch are members reused every frame.
  if (!dets.empty() && !tracks_.empty()) {
    math::Matrix& cost = cost_scratch_;
    cost.resize(dets.size(), tracks_.size());
    for (std::size_t i = 0; i < dets.size(); ++i) {
      for (std::size_t j = 0; j < tracks_.size(); ++j) {
        const double overlap =
            math::iou(dets[i].bbox, tracks_[j].predicted_bbox());
        const bool class_ok = dets[i].cls == tracks_[j].cls();
        cost(i, j) = class_ok ? 1.0 - overlap : 1e3;
      }
    }
    solve_assignment_into(cost, assign_scratch_, assign_result_scratch_);
    const AssignmentResult& res = assign_result_scratch_;
    for (std::size_t i = 0; i < dets.size(); ++i) {
      const int j = res.assignment[i];
      if (j < 0) continue;
      if (cost(i, static_cast<std::size_t>(j)) > config_.max_cost) continue;
      // Innovation gating against the characterized class noise: outlier
      // detections (the population's heavy tail) must not drag the filter.
      const auto& track = tracks_[static_cast<std::size_t>(j)];
      const auto& cls_noise = noise_.for_class(dets[i].cls);
      const math::Bbox& pred = track.predicted_bbox();
      const double ex =
          (dets[i].bbox.cx - pred.cx) / std::max(1.0, dets[i].bbox.w);
      const double ey =
          (dets[i].bbox.cy - pred.cy) / std::max(1.0, dets[i].bbox.h);
      const double gx = config_.innovation_gate_mult *
                        (std::abs(cls_noise.center_x.mu) +
                         cls_noise.center_x.sigma);
      const double gy = config_.innovation_gate_mult *
                        (std::abs(cls_noise.center_y.mu) +
                         cls_noise.center_y.sigma);
      // Skip the gate while the track velocity is still locking in (young
      // tracks legitimately show large innovations).
      if (track.hits() >= 3 &&
          (std::abs(ex) > gx || std::abs(ey) > gy)) {
        continue;
      }
      det_to_track[i] = j;
      track_matched[static_cast<std::size_t>(j)] = 1;
    }
  }

  // 3. Measurement updates and track spawning.
  for (std::size_t i = 0; i < dets.size(); ++i) {
    if (det_to_track[i] >= 0) {
      tracks_[static_cast<std::size_t>(det_to_track[i])].update(dets[i]);
    } else {
      tracks_.emplace_back(next_id_++, dets[i], dt_,
                            noise_.for_class(dets[i].cls));
      track_matched.push_back(1);
    }
  }
  for (std::size_t j = 0; j < tracks_.size(); ++j) {
    if (!track_matched[j]) tracks_[j].mark_missed();
  }

  // 4. Retire stale tracks — compacting in place (moves, not copies: a
  //    BboxTrack carries KF scratch matrices that are expensive to clone).
  std::size_t kept = 0;
  matched_flags_.resize(tracks_.size());
  for (std::size_t j = 0; j < tracks_.size(); ++j) {
    if (tracks_[j].consecutive_misses() <= config_.max_misses) {
      if (kept != j) tracks_[kept] = std::move(tracks_[j]);
      matched_flags_[kept] = track_matched[j];
      ++kept;
    }
  }
  tracks_.erase(tracks_.begin() + static_cast<std::ptrdiff_t>(kept),
                tracks_.end());
  matched_flags_.resize(kept);

  // 5. Report confirmed tracks.
  out.clear();
  out.reserve(tracks_.size());
  for (std::size_t j = 0; j < tracks_.size(); ++j) {
    if (tracks_[j].hits() >= config_.min_hits) {
      out.push_back(view_of(tracks_[j], matched_flags_[j] != 0));
    }
  }
}

std::vector<TrackView> MotTracker::live_tracks() const {
  std::vector<TrackView> out;
  out.reserve(tracks_.size());
  for (std::size_t j = 0; j < tracks_.size(); ++j) {
    const bool matched = j < matched_flags_.size() && matched_flags_[j] != 0;
    out.push_back(view_of(tracks_[j], matched));
  }
  return out;
}

std::optional<math::Bbox> MotTracker::predict_next_bbox(int track_id) const {
  for (const BboxTrack& t : tracks_) {
    if (t.id() != track_id) continue;
    math::Bbox b = t.bbox();
    return b.translated(t.vu() * dt_, t.vv() * dt_);
  }
  return std::nullopt;
}

std::optional<TrackView> MotTracker::track(int track_id) const {
  for (std::size_t j = 0; j < tracks_.size(); ++j) {
    if (tracks_[j].id() == track_id) {
      const bool matched =
          j < matched_flags_.size() && matched_flags_[j] != 0;
      return view_of(tracks_[j], matched);
    }
  }
  return std::nullopt;
}

}  // namespace rt::perception
