#pragma once

#include <unordered_map>
#include <vector>

#include "perception/lidar_tracker.hpp"
#include "perception/track_projection.hpp"

namespace rt::perception {

/// One object of the fused world model ("W_t"): what the ADS planner acts on.
struct FusedObject {
  /// Stable id (the backing camera track id).
  int id{0};
  sim::ActorType cls{sim::ActorType::kVehicle};
  math::Vec2 rel_position;
  math::Vec2 rel_velocity;
  bool lidar_corroborated{false};
  /// True when the object sits inside the LiDAR's class coverage, i.e. the
  /// LiDAR *should* see it. Camera-only evidence for such an object is
  /// sensor disagreement and gets less trust downstream.
  bool lidar_expected{false};
  bool coasting{false};
  /// Age (hits) of the backing camera track — consumers gate velocity-based
  /// decisions on maturity because young tracks have unreliable velocity.
  int camera_hits{0};
  /// Ground-truth bookkeeping only.
  sim::ActorId last_truth_id{-1};
};

/// Tunables of the camera/LiDAR fusion stage.
struct FusionConfig {
  /// Camera/LiDAR pairing uses an *elliptical* gate: monocular
  /// (ground-plane) depth error grows with range, so the longitudinal
  /// tolerance is range-proportional, while both sensors localize well
  /// laterally, so the lateral tolerance is tight. A laterally-hijacked
  /// camera track therefore unpairs once it drifts `pair_gate_lateral`
  /// meters sideways — the "breakaway" the Move_* vectors aim for.
  double pair_gate_lateral{2.0};
  /// Monocular depth error on small objects (pedestrians) is far larger
  /// than on vehicles, so their pairing tolerance is wider.
  double pair_gate_longitudinal_frac_vehicle{0.12};
  double pair_gate_longitudinal_frac_pedestrian{0.22};
  double pair_gate_longitudinal_min{2.5};
  /// Blend weight of the LiDAR estimate when paired, per class. Vehicles
  /// return thousands of points, so LiDAR dominates; pedestrians return a
  /// handful, so the camera keeps most of the weight. This is the fusion
  /// half of the paper's pedestrian/vehicle asymmetry.
  double lidar_weight_vehicle{0.85};
  double lidar_weight_pedestrian{0.45};
  /// Velocity is blended with a LiDAR-dominant weight for *both* classes:
  /// range-rate from LiDAR beats camera finite differences regardless of
  /// how many points the cluster has.
  double lidar_velocity_weight{0.8};
  /// Camera-only publication age (frames) when the object is beyond LiDAR
  /// coverage for its class (nothing to disagree with)...
  int camera_only_age_far{4};
  /// ...and when LiDAR *should* see it but does not (sensor disagreement
  /// delays registration — §VI-C).
  int camera_only_age_near{12};
  /// Published objects whose camera track vanished coast this many frames.
  int coast_frames{4};
  /// Fraction of the LiDAR class range considered reliable coverage.
  double coverage_margin{0.9};
};

/// Camera-primary sensor fusion.
///
/// Publication rules (derived from the paper's observed Apollo behaviour —
/// camera evidence is load-bearing for object existence, LiDAR refines
/// kinematics and corroborates):
///  - camera track paired with a LiDAR track  -> publish once the camera
///    track has >= 2 hits; position/velocity are a per-class blend;
///  - camera-only track -> publish after `camera_only_age_far` frames when
///    beyond LiDAR coverage, after `camera_only_age_near` frames inside it;
///  - LiDAR-only tracks are never published (no class, no camera
///    confirmation) — this is what a camera-channel attacker exploits;
///  - a published object whose camera track disappears coasts briefly on
///    its last velocity, then drops out of the world model.
class Fusion {
 public:
  Fusion(FusionConfig config, LidarConfig lidar_config, double dt)
      : config_(config), lidar_config_(lidar_config), dt_(dt) {}

  /// Fuses this frame's camera world-tracks with the latest LiDAR tracks.
  std::vector<FusedObject> fuse(const std::vector<WorldTrack>& camera,
                                const std::vector<LidarTrack>& lidar);
  /// Same, into a caller-owned buffer (cleared first).
  void fuse_into(const std::vector<WorldTrack>& camera,
                 const std::vector<LidarTrack>& lidar,
                 std::vector<FusedObject>& out);

  [[nodiscard]] const FusionConfig& config() const { return config_; }

 private:
  struct Record {
    bool published{false};
    int coast_left{0};
    FusedObject last;
  };

  FusionConfig config_;
  LidarConfig lidar_config_;
  double dt_;
  std::unordered_map<int, Record> records_;
  /// Per-frame association scratch, reused so a fusion step allocates
  /// nothing at steady state.
  std::vector<char> lidar_used_scratch_;
};

}  // namespace rt::perception
