#pragma once

#include <vector>

#include "math/vec2.hpp"
#include "sim/world.hpp"
#include "stats/rng.hpp"

namespace rt::perception {

/// One LiDAR object-level measurement: the clustered centroid of returns
/// from a single object, relative to the ego.
struct LidarMeasurement {
  math::Vec2 rel_position;
  /// Rough return count — fusion uses it as a confidence proxy.
  int point_count{0};
  /// Ground-truth bookkeeping only.
  sim::ActorId truth_id{-1};
};

/// Class-dependent effective detection ranges.
///
/// The paper attributes its central pedestrian/vehicle asymmetry to exactly
/// this (§VI-C): "LiDAR-based object detection fails to register pedestrians
/// at a higher longitudinal distance, while recognizing vehicles at the same
/// distance". Pedestrians return far fewer points, so clustering fails
/// beyond a much shorter range.
struct LidarConfig {
  double vehicle_range{80.0};
  double pedestrian_range{35.0};
  double lateral_coverage{15.0};     ///< |y| beyond this is not scanned
  double position_sigma{0.12};       ///< centroid noise per axis (m)
  double vehicle_detect_prob{0.97};
  double pedestrian_detect_prob{0.90};

  [[nodiscard]] double range_for(sim::ActorType t) const {
    return t == sim::ActorType::kVehicle ? vehicle_range : pedestrian_range;
  }
  [[nodiscard]] double detect_prob_for(sim::ActorType t) const {
    return t == sim::ActorType::kVehicle ? vehicle_detect_prob
                                         : pedestrian_detect_prob;
  }
};

/// Object-level LiDAR sensor model (10 Hz in the paper's setup).
///
/// Emits noisy centroid measurements for objects inside the class-dependent
/// range. The LiDAR path is *not* attackable in the threat model — the
/// malware only touches the camera link — so these measurements are always
/// truthful; their only weakness is range and latency.
class LidarModel {
 public:
  LidarModel(LidarConfig config, stats::Rng rng)
      : config_(config), rng_(rng) {}

  /// Scan into a caller-owned buffer (cleared first).
  void scan_into(const std::vector<sim::GroundTruthObject>& objects,
                 std::vector<LidarMeasurement>& out);
  [[nodiscard]] std::vector<LidarMeasurement> scan(
      const std::vector<sim::GroundTruthObject>& objects);

  [[nodiscard]] const LidarConfig& config() const { return config_; }

 private:
  LidarConfig config_;
  stats::Rng rng_;
};

}  // namespace rt::perception
