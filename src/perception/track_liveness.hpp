#pragma once

#include <iterator>

namespace rt::perception {

/// Erases entries of an id-keyed per-track state map whose id no longer
/// appears in `tracks` (ids read via `id_of`). The shared liveness sweep of
/// every per-frame state map (projector history, the defense monitors'
/// per-track state): a linear scan over the — small — track list, which,
/// unlike rebuilding a hash set of live ids, costs zero allocations per
/// frame.
template <typename Map, typename TrackList, typename IdOf>
void erase_dead_tracks(Map& state, const TrackList& tracks, IdOf id_of) {
  for (auto it = state.begin(); it != state.end();) {
    bool live = false;
    for (const auto& t : tracks) {
      if (id_of(t) == it->first) {
        live = true;
        break;
      }
    }
    it = live ? std::next(it) : state.erase(it);
  }
}

}  // namespace rt::perception
