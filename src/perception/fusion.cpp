#include "perception/fusion.hpp"

#include <algorithm>
#include <limits>

namespace rt::perception {

std::vector<FusedObject> Fusion::fuse(const std::vector<WorldTrack>& camera,
                                      const std::vector<LidarTrack>& lidar) {
  std::vector<FusedObject> out;
  fuse_into(camera, lidar, out);
  return out;
}

void Fusion::fuse_into(const std::vector<WorldTrack>& camera,
                       const std::vector<LidarTrack>& lidar,
                       std::vector<FusedObject>& out) {
  out.clear();

  lidar_used_scratch_.assign(lidar.size(), 0);
  std::vector<char>& lidar_used = lidar_used_scratch_;
  for (const WorldTrack& cam : camera) {
    // Nearest LiDAR track within the elliptical pairing gate.
    const double frac = cam.cls == sim::ActorType::kVehicle
                            ? config_.pair_gate_longitudinal_frac_vehicle
                            : config_.pair_gate_longitudinal_frac_pedestrian;
    const double gate_x = std::max(config_.pair_gate_longitudinal_min,
                                   frac * cam.rel_position.x);
    const double gate_y = config_.pair_gate_lateral;
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_j = lidar.size();
    for (std::size_t j = 0; j < lidar.size(); ++j) {
      if (lidar_used[j]) continue;
      const double dx =
          (cam.rel_position.x - lidar[j].rel_position.x) / gate_x;
      const double dy =
          (cam.rel_position.y - lidar[j].rel_position.y) / gate_y;
      const double d = dx * dx + dy * dy;
      if (d < best) {
        best = d;
        best_j = j;
      }
    }
    const bool paired = best_j < lidar.size() && best <= 1.0;

    FusedObject obj;
    obj.id = cam.track_id;
    obj.cls = cam.cls;
    obj.camera_hits = cam.hits;
    obj.last_truth_id = cam.last_truth_id;
    obj.lidar_expected =
        cam.rel_position.norm() <=
            lidar_config_.range_for(cam.cls) * config_.coverage_margin &&
        std::abs(cam.rel_position.y) <= lidar_config_.lateral_coverage;
    Record& rec = records_[cam.track_id];

    if (paired) {
      lidar_used[best_j] = 1;
      const double w = cam.cls == sim::ActorType::kVehicle
                           ? config_.lidar_weight_vehicle
                           : config_.lidar_weight_pedestrian;
      const LidarTrack& l = lidar[best_j];
      obj.rel_position = l.rel_position * w + cam.rel_position * (1.0 - w);
      const double wv = config_.lidar_velocity_weight;
      obj.rel_velocity = l.rel_velocity * wv + cam.rel_velocity * (1.0 - wv);
      obj.lidar_corroborated = true;
      if (cam.hits >= 2) rec.published = true;
    } else {
      obj.rel_position = cam.rel_position;
      obj.rel_velocity = cam.rel_velocity;
      obj.lidar_corroborated = false;
      const int needed = obj.lidar_expected ? config_.camera_only_age_near
                                            : config_.camera_only_age_far;
      if (cam.hits >= needed) rec.published = true;
    }

    rec.coast_left = config_.coast_frames;
    rec.last = obj;
    if (rec.published) out.push_back(obj);
  }

  // Coast published objects whose camera track vanished this frame, then
  // forget them. Liveness is a linear scan over the (small) camera list:
  // unlike a rebuilt hash set this costs zero allocations per frame.
  const auto camera_has = [&camera](int id) {
    for (const WorldTrack& cam : camera) {
      if (cam.track_id == id) return true;
    }
    return false;
  };
  for (auto it = records_.begin(); it != records_.end();) {
    if (camera_has(it->first)) {
      ++it;
      continue;
    }
    Record& rec = it->second;
    if (rec.published && rec.coast_left > 0) {
      --rec.coast_left;
      rec.last.rel_position += rec.last.rel_velocity * dt_;
      rec.last.coasting = true;
      out.push_back(rec.last);
      ++it;
    } else {
      it = records_.erase(it);
    }
  }
}

}  // namespace rt::perception
