#pragma once

#include <unordered_map>
#include <vector>

#include "perception/camera_model.hpp"
#include "perception/detection.hpp"
#include "perception/noise_model.hpp"
#include "sim/world.hpp"
#include "stats/rng.hpp"

namespace rt::perception {

/// Statistical stand-in for the YOLOv3 object detector ("D" in Fig. 1).
///
/// Given the ground-truth objects visible to the camera, it produces noisy
/// pixel-space detections whose error statistics reproduce the paper's
/// Fig. 5 characterization: Gaussian center error (normalized by bbox size)
/// and exponentially-distributed continuous misdetection streaks, with
/// per-class parameters. See `ClassNoiseModel` for how the generator keeps
/// the fitted population faithful while remaining trackable.
///
/// The detector keeps per-object streak state, so misdetections are
/// *temporally correlated* exactly as measured — this is what makes the
/// Disappear attack indistinguishable from natural detector behaviour as
/// long as it stays under the streak distribution's 99th percentile.
class DetectorModel {
 public:
  DetectorModel(CameraModel camera, DetectorNoiseModel noise,
                stats::Rng rng);

  /// Runs the detector on the current world snapshot.
  /// `sim_time` stamps the output frame.
  [[nodiscard]] CameraFrame detect(
      const std::vector<sim::GroundTruthObject>& objects, double sim_time);
  /// Same, into a caller-owned frame (detections cleared first).
  void detect_into(const std::vector<sim::GroundTruthObject>& objects,
                   double sim_time, CameraFrame& frame);

  [[nodiscard]] const CameraModel& camera() const { return camera_; }
  [[nodiscard]] const DetectorNoiseModel& noise() const { return noise_; }

  /// True if the object is currently inside a natural misdetection streak
  /// (exposed for tests and for the characterization harness).
  [[nodiscard]] bool in_streak(sim::ActorId id) const;

 private:
  CameraModel camera_;
  DetectorNoiseModel noise_;
  stats::Rng rng_;
  /// Active misdetection streak per actor. Two kinds, matching what the
  /// IoU < 0.6 criterion of §VI-A actually lumps together:
  ///  - kAbsent: the detector fires nothing (short streaks, core of the
  ///    distribution);
  ///  - kDegraded: the detector fires a badly-aligned box (IoU < 0.6
  ///    against truth). The long heavy-tail streaks are of this kind —
  ///    a real detector rarely blacks out for seconds, but it does emit
  ///    poorly-localized boxes for long stretches.
  struct Streak {
    int left{0};
    bool degraded{false};
    /// Persistent localization offset of a degraded streak (fractions of
    /// bbox size): a drifted detector stays drifted the same way for the
    /// whole streak, it does not teleport frame to frame.
    double fx{0.0};
    double fy{0.0};
    double sw{1.0};
    double sh{1.0};
  };
  std::unordered_map<sim::ActorId, Streak> streak_left_;
};

}  // namespace rt::perception
