#pragma once

#include "math/matrix.hpp"

namespace rt::perception {

/// Generic linear Kalman filter ("F" in Fig. 1).
///
/// Maintains state estimate x and covariance P under the usual linear
/// Gaussian model:
///   predict:  x <- F x,          P <- F P F^T + Q
///   update:   y = z - H x,       S = H P H^T + R
///             K = P H^T S^-1,    x <- x + K y,   P <- (I - K H) P
///
/// The paper's threat analysis (§III-B) hinges on exactly this machinery:
/// the KF assumes zero-mean Gaussian measurement noise, so an adversary who
/// injects *biased* noise within +-1 sigma drags the state estimate without
/// ever producing an innovation large enough to flag.
class KalmanFilter {
 public:
  KalmanFilter() = default;

  /// Constructs a filter with the given matrices. Dimensions:
  /// F: n x n, Q: n x n, H: m x n, R: m x m, x0: n x 1, P0: n x n.
  KalmanFilter(math::Matrix f, math::Matrix q, math::Matrix h, math::Matrix r,
               math::Matrix x0, math::Matrix p0);

  /// Time update. Safe to call repeatedly (coasting through missed frames).
  void predict();

  /// Measurement update with z (m x 1).
  void update(const math::Matrix& z);

  /// Innovation z - Hx for a hypothetical measurement (no state change).
  [[nodiscard]] math::Matrix innovation(const math::Matrix& z) const;

  /// Squared Mahalanobis distance of a measurement under the innovation
  /// covariance S = H P H^T + R. Used by gating logic and by the IDS.
  [[nodiscard]] double mahalanobis2(const math::Matrix& z) const;

  /// Squared Mahalanobis distance of the measurement consumed by the last
  /// `update` (-1 before the first). Recorded inside the update from the
  /// already-computed innovation and S^-1, so it is bitwise identical to
  /// calling `mahalanobis2(z)` immediately before the update at a tiny
  /// fraction of the cost (no second S inversion). Consumed by the
  /// runtime attack monitors via BboxTrack/TrackView.
  [[nodiscard]] double last_update_mahalanobis2() const {
    return last_update_m2_;
  }

  [[nodiscard]] const math::Matrix& state() const { return x_; }
  [[nodiscard]] const math::Matrix& covariance() const { return p_; }
  [[nodiscard]] math::Matrix predicted_measurement() const { return h_ * x_; }

  void set_state(const math::Matrix& x) { x_ = x; }

  /// Replaces the measurement-noise covariance R (m x m). Trackers whose
  /// measurement noise scales with the object (e.g. bbox-size-proportional
  /// pixel noise) refresh R before each update.
  void set_measurement_noise(const math::Matrix& r) { r_ = r; }

 private:
  /// Structured fast path for the bbox tracker's constant-velocity model
  /// (n = 6, m = 4, H an exact 0/1 selection block, F identity plus the two
  /// dt couplings). Detected once at construction; F and H are immutable
  /// afterwards. Both bodies replay the generic skip-zero kernels' exact
  /// per-element term sequences (see the derivation comments in the .cpp),
  /// so every result is bit-identical to the generic path.
  void predict_cv_();
  void update_cv_(const math::Matrix& z);

  math::Matrix f_, q_, h_, r_, x_, p_;
  double last_update_m2_{-1.0};
  bool cv_fast_{false};

  // Fixed scratch reused by every predict/update/mahalanobis2 so a filter
  // step performs zero heap allocations at steady state (the campaign hot
  // loop runs millions of them). Sized lazily by the `*_into` kernels;
  // mutable because `mahalanobis2` is logically const. Results are bit-
  // identical to the historical allocating expressions (see the kernel
  // contract in math/matrix.hpp).
  mutable math::Matrix t_x_;       // n x 1: F x, K y
  mutable math::Matrix t_y_;       // m x 1: innovation
  mutable math::Matrix t_hx_;      // m x 1: H x
  mutable math::Matrix t_nn1_;     // n x n
  mutable math::Matrix t_nn2_;     // n x n
  mutable math::Matrix t_mn_;      // m x n: H P
  mutable math::Matrix t_nm_;      // n x m: P H^T
  mutable math::Matrix t_k_;       // n x m: Kalman gain
  mutable math::Matrix t_mm1_;     // m x m: S
  mutable math::Matrix t_mm2_;     // m x m: Gauss-Jordan scratch
  mutable math::Matrix t_s_inv_;   // m x m: S^-1
};

}  // namespace rt::perception
