#include "perception/lidar_tracker.hpp"

#include <algorithm>
#include <limits>

namespace rt::perception {

std::vector<LidarTrack> LidarTracker::update(
    const std::vector<LidarMeasurement>& scan) {
  // Predict every track forward one LiDAR period.
  for (LidarTrack& t : tracks_) {
    t.rel_position += t.rel_velocity * dt_;
  }

  // Greedy nearest-neighbour association (LiDAR centroids are precise
  // enough that global assignment buys nothing here).
  std::vector<char> meas_used(scan.size(), 0);
  std::vector<char> track_hit(tracks_.size(), 0);
  for (std::size_t j = 0; j < tracks_.size(); ++j) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_i = scan.size();
    for (std::size_t i = 0; i < scan.size(); ++i) {
      if (meas_used[i]) continue;
      const double d =
          tracks_[j].rel_position.distance_to(scan[i].rel_position);
      if (d < best) {
        best = d;
        best_i = i;
      }
    }
    if (best_i < scan.size() && best <= config_.gate) {
      meas_used[best_i] = 1;
      track_hit[j] = 1;
      LidarTrack& t = tracks_[j];
      const math::Vec2 residual =
          scan[best_i].rel_position - t.rel_position;
      t.rel_position += residual * config_.alpha;
      // The first residual reflects the unknown initial velocity, not a
      // velocity error; start correcting the velocity from the second hit.
      if (t.hits >= 2) {
        t.rel_velocity += residual * (config_.beta / dt_);
        t.rel_velocity.x = std::clamp(t.rel_velocity.x, -40.0, 40.0);
        t.rel_velocity.y = std::clamp(t.rel_velocity.y, -5.0, 5.0);
      }
      ++t.hits;
      t.consecutive_misses = 0;
      t.last_truth_id = scan[best_i].truth_id;
    }
  }
  for (std::size_t j = 0; j < tracks_.size(); ++j) {
    if (!track_hit[j]) ++tracks_[j].consecutive_misses;
  }
  // Spawn tracks for unclaimed measurements.
  for (std::size_t i = 0; i < scan.size(); ++i) {
    if (meas_used[i]) continue;
    LidarTrack t;
    t.track_id = next_id_++;
    t.rel_position = scan[i].rel_position;
    t.rel_velocity = {0.0, 0.0};
    t.last_truth_id = scan[i].truth_id;
    tracks_.push_back(t);
  }
  // Retire silent tracks.
  std::erase_if(tracks_, [&](const LidarTrack& t) {
    return t.consecutive_misses > config_.max_misses;
  });
  return tracks_;
}

}  // namespace rt::perception
