#pragma once

#include <vector>

#include "perception/lidar_model.hpp"

namespace rt::perception {

/// One tracked LiDAR object (alpha-beta filtered centroid).
struct LidarTrack {
  int track_id{0};
  math::Vec2 rel_position;
  math::Vec2 rel_velocity;
  int hits{1};
  int consecutive_misses{0};
  sim::ActorId last_truth_id{-1};
};

/// Nearest-neighbour LiDAR tracker running at the LiDAR rate (10 Hz).
///
/// Simpler than the camera MOT on purpose: LiDAR centroids are precise, so
/// greedy gating plus an alpha-beta filter suffices. LiDAR tracks carry no
/// class — classification lives in the camera path, which is exactly the
/// structural weakness the fusion rules inherit (see Fusion).
class LidarTracker {
 public:
  struct Config {
    double gate{2.0};        ///< association gate (m)
    int max_misses{3};       ///< scans before a silent track is dropped
    double alpha{0.45};      ///< position correction gain
    double beta{0.18};       ///< velocity correction gain
  };

  explicit LidarTracker(double dt) : LidarTracker(dt, Config{}) {}
  LidarTracker(double dt, Config config) : dt_(dt), config_(config) {}

  /// Processes one scan; returns the live track list after the update.
  std::vector<LidarTrack> update(const std::vector<LidarMeasurement>& scan);

  /// Latest track list without processing a new scan (camera frames arrive
  /// between LiDAR scans; fusion reads the last state).
  [[nodiscard]] const std::vector<LidarTrack>& tracks() const {
    return tracks_;
  }

 private:
  double dt_;
  Config config_;
  std::vector<LidarTrack> tracks_;
  int next_id_{1};
};

}  // namespace rt::perception
