#pragma once

#include "perception/detection.hpp"

namespace rt::perception {

struct PerceptionOutput;

/// Passive tap on the perception pipeline: invoked at the end of every
/// `PerceptionSystem::step_into` with the camera frame the ADS consumed
/// (i.e. whatever arrived over the attackable link) and the full perception
/// output of that cycle.
///
/// This is the integration point of the `rt::defense` runtime attack
/// monitors: the defender sees exactly what the production stack saw — never
/// ground truth — so a monitor's verdict is something a real ADS could have
/// computed online.
///
/// Contract: observers are read-only (they must not mutate the perception
/// state they are handed) and should allocate nothing at steady state — the
/// hook sits on the campaign engine's per-frame hot path.
class PerceptionObserver {
 public:
  virtual ~PerceptionObserver() = default;

  virtual void on_perception(const CameraFrame& frame,
                             const PerceptionOutput& out) = 0;
};

}  // namespace rt::perception
