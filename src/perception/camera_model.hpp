#pragma once

#include <optional>

#include "math/bbox.hpp"
#include "math/vec2.hpp"
#include "sim/types.hpp"
#include "sim/world.hpp"

namespace rt::perception {

/// Pinhole camera mounted at the ego front, looking down the road (+x).
///
/// Matches the paper's main front camera: 1920x1080 at 15 Hz. The camera
/// provides the geometric bridge between road-frame ground truth and the
/// pixel-space bounding boxes the detector (and the attacker) operate on;
/// back-projection assumes a flat ground plane, which is exact in this
/// simulator and is the standard monocular-depth trick production stacks
/// use for camera-only obstacles.
struct CameraModel {
  double image_width{1920.0};
  double image_height{1080.0};
  double focal_px{1600.0};      ///< focal length in pixels
  double height_m{1.5};         ///< mount height above the ground plane
  double min_range{2.0};        ///< objects closer than this are off-frame
  double max_range{150.0};      ///< detector resolution limit

  [[nodiscard]] double cx() const { return image_width / 2.0; }
  [[nodiscard]] double cy() const { return image_height / 2.0; }

  /// Projects a ground-truth object into an image bounding box.
  /// Returns nullopt when the object is out of the camera frustum.
  ///
  /// Image convention: u grows rightward, v grows downward. An object to the
  /// *left* of the ego (y > 0) appears at u < cx.
  [[nodiscard]] std::optional<math::Bbox> project(
      const sim::GroundTruthObject& obj) const {
    const double d = obj.rel_position.x;
    if (d < min_range || d > max_range) return std::nullopt;
    const double u = cx() - focal_px * obj.rel_position.y / d;
    const double w = focal_px * obj.dims.width / d;
    const double h = focal_px * obj.dims.height / d;
    // Bottom edge sits on the ground plane; center is half-height up.
    const double v_bottom = cy() + focal_px * height_m / d;
    const double v = v_bottom - h / 2.0;
    const math::Bbox box{u, v, w, h};
    if (box.right() < 0.0 || box.left() > image_width || box.bottom() < 0.0 ||
        box.top() > image_height) {
      return std::nullopt;
    }
    return box;
  }

  /// Recovers the road-frame position (x: range, y: lateral) from a bbox via
  /// the ground-plane assumption (bottom edge touches the ground).
  /// Returns nullopt for boxes whose bottom edge sits on or above the
  /// horizon (not physically groundable).
  [[nodiscard]] std::optional<math::Vec2> back_project(
      const math::Bbox& box) const {
    const double dv = box.bottom() - cy();
    if (dv <= 1e-6) return std::nullopt;
    const double d = focal_px * height_m / dv;
    const double y = (cx() - box.cx) * d / focal_px;
    return math::Vec2{d, y};
  }

  /// Pixel displacement corresponding to a lateral road-frame displacement
  /// `dy_m` at range `range_m` (used by the trajectory hijacker to convert
  /// its desired world-space shift into a pixel shift).
  [[nodiscard]] double lateral_m_to_px(double dy_m, double range_m) const {
    return -focal_px * dy_m / range_m;
  }

  /// Inverse of `lateral_m_to_px`.
  [[nodiscard]] double lateral_px_to_m(double du_px, double range_m) const {
    return -du_px * range_m / focal_px;
  }
};

}  // namespace rt::perception
