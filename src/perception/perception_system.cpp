#include "perception/perception_system.hpp"

namespace rt::perception {

PerceptionSystem::PerceptionSystem(CameraModel camera, double camera_dt,
                                   double lidar_dt, MotConfig mot_config,
                                   FusionConfig fusion_config,
                                   LidarConfig lidar_config,
                                   DetectorNoiseModel noise)
    : mot_(camera_dt, mot_config, noise),
      projector_(camera, camera_dt),
      lidar_tracker_(lidar_dt),
      fusion_(fusion_config, lidar_config, camera_dt) {}

void PerceptionSystem::ingest_lidar(
    const std::vector<LidarMeasurement>& scan) {
  lidar_tracker_.update(scan);
}

PerceptionOutput PerceptionSystem::step(const CameraFrame& frame) {
  PerceptionOutput out;
  step_into(frame, out);
  return out;
}

void PerceptionSystem::step_into(const CameraFrame& frame,
                                 PerceptionOutput& out) {
  out.time = frame.time;
  mot_.update_into(frame, out.camera_tracks);
  projector_.project_into(out.camera_tracks, out.camera_world);
  out.lidar_tracks = lidar_tracker_.tracks();
  fusion_.fuse_into(out.camera_world, out.lidar_tracks, out.world);
  if (observer_ != nullptr) observer_->on_perception(frame, out);
}

}  // namespace rt::perception
