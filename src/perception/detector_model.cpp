#include "perception/detector_model.hpp"

#include <algorithm>
#include <cmath>

namespace rt::perception {

DetectorModel::DetectorModel(CameraModel camera, DetectorNoiseModel noise,
                             stats::Rng rng)
    : camera_(camera), noise_(noise), rng_(rng) {}

bool DetectorModel::in_streak(sim::ActorId id) const {
  const auto it = streak_left_.find(id);
  return it != streak_left_.end() && it->second.left > 0;
}

CameraFrame DetectorModel::detect(
    const std::vector<sim::GroundTruthObject>& objects, double sim_time) {
  CameraFrame frame;
  detect_into(objects, sim_time, frame);
  return frame;
}

void DetectorModel::detect_into(
    const std::vector<sim::GroundTruthObject>& objects, double sim_time,
    CameraFrame& frame) {
  frame.time = sim_time;
  frame.detections.clear();
  for (const auto& obj : objects) {
    const auto truth_box = camera_.project(obj);
    if (!truth_box) {
      streak_left_.erase(obj.id);  // out of frustum: streak state is moot
      continue;
    }
    const ClassNoiseModel& m = noise_.for_class(obj.type);

    // Advance the misdetection streak process.
    Streak& streak = streak_left_[obj.id];
    bool degraded_frame = false;
    if (streak.left > 0) {
      --streak.left;
      if (!streak.degraded) continue;  // absent this frame
      degraded_frame = true;
    } else if (rng_.bernoulli(m.streak_start_prob)) {
      // Streak length ~ loc + Exp(rate), at least one frame (this one).
      // Heavy-tail streaks (the paper's empirical p99 of 31 ped / 59.4 veh
      // frames) are *degraded-localization* streaks; only the short core
      // streaks are true dropouts.
      const bool tail = rng_.bernoulli(m.streak_tail_weight);
      const double rate =
          tail ? m.streak.lambda * m.streak_tail_rate_mult : m.streak.lambda;
      const double len = m.streak.loc + rng_.exponential(rate);
      streak.left = std::max(0, static_cast<int>(std::lround(len)) - 1);
      streak.degraded = tail;
      if (tail) {
        streak.fx = rng_.uniform(0.30, 0.45) *
                    (rng_.bernoulli(0.5) ? 1.0 : -1.0);
        streak.fy = rng_.uniform(0.08, 0.18) *
                    (rng_.bernoulli(0.5) ? 1.0 : -1.0);
        streak.sw = rng_.uniform(0.90, 1.12);
        streak.sh = rng_.uniform(0.90, 1.12);
      }
      if (!tail) continue;  // absent this frame
      degraded_frame = true;
    }

    if (degraded_frame) {
      // Badly-localized box: the streak's persistent offset (plus small
      // per-frame jitter) keeps IoU with the truth below the 0.6
      // misdetection criterion while the tracker's association survives.
      Detection det;
      const double fx = streak.fx + rng_.normal(0.0, 0.03);
      const double fy = streak.fy + rng_.normal(0.0, 0.02);
      det.bbox = truth_box->translated(fx * truth_box->w,
                                       fy * truth_box->h);
      det.bbox.w = truth_box->w * streak.sw;
      det.bbox.h = truth_box->h * streak.sh;
      det.cls = obj.type;
      det.confidence = std::clamp(rng_.normal(0.5, 0.1), 0.2, 0.9);
      det.truth_id = obj.id;
      frame.detections.push_back(det);
      continue;
    }

    // Center error: two-component Gaussian mixture, normalized by bbox size.
    const bool outlier = rng_.bernoulli(m.outlier_prob);
    const double sx = outlier ? m.outlier_sigma(m.center_x.sigma, m.core_sigma_x)
                              : m.core_sigma_x;
    const double sy = outlier ? m.outlier_sigma(m.center_y.sigma, m.core_sigma_y)
                              : m.core_sigma_y;
    const double dx = rng_.normal(m.center_x.mu, sx) * truth_box->w;
    const double dy = rng_.normal(m.center_y.mu, sy) * truth_box->h;

    Detection det;
    det.bbox = truth_box->translated(dx, dy);
    det.bbox.w = truth_box->w * std::max(0.2, rng_.normal(1.0, m.size_jitter_sigma));
    det.bbox.h = truth_box->h * std::max(0.2, rng_.normal(1.0, m.size_jitter_sigma));
    det.cls = obj.type;
    det.confidence = std::clamp(rng_.normal(0.85, 0.08), 0.3, 1.0);
    det.truth_id = obj.id;
    frame.detections.push_back(det);
  }
}

}  // namespace rt::perception
