#include "perception/kalman_filter.hpp"

#include <stdexcept>
#include <utility>

namespace rt::perception {

KalmanFilter::KalmanFilter(math::Matrix f, math::Matrix q, math::Matrix h,
                           math::Matrix r, math::Matrix x0, math::Matrix p0)
    : f_(std::move(f)),
      q_(std::move(q)),
      h_(std::move(h)),
      r_(std::move(r)),
      x_(std::move(x0)),
      p_(std::move(p0)) {
  const std::size_t n = f_.rows();
  const std::size_t m = h_.rows();
  if (f_.cols() != n || q_.rows() != n || q_.cols() != n || h_.cols() != n ||
      r_.rows() != m || r_.cols() != m || x_.rows() != n || x_.cols() != 1 ||
      p_.rows() != n || p_.cols() != n) {
    throw std::invalid_argument("KalmanFilter: inconsistent dimensions");
  }
}

void KalmanFilter::predict() {
  x_ = f_ * x_;
  p_ = f_ * p_ * f_.transposed() + q_;
}

void KalmanFilter::update(const math::Matrix& z) {
  const math::Matrix y = z - h_ * x_;
  const math::Matrix s = h_ * p_ * h_.transposed() + r_;
  const math::Matrix k = p_ * h_.transposed() * s.inverse();
  x_ = x_ + k * y;
  const math::Matrix i = math::Matrix::identity(p_.rows());
  p_ = (i - k * h_) * p_;
}

math::Matrix KalmanFilter::innovation(const math::Matrix& z) const {
  return z - h_ * x_;
}

double KalmanFilter::mahalanobis2(const math::Matrix& z) const {
  const math::Matrix y = innovation(z);
  const math::Matrix s = h_ * p_ * h_.transposed() + r_;
  const math::Matrix d = y.transposed() * s.inverse() * y;
  return d(0, 0);
}

}  // namespace rt::perception
