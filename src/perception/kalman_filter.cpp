#include "perception/kalman_filter.hpp"

#include <stdexcept>
#include <utility>

namespace rt::perception {

namespace {

/// The exact value a skip-zero kernel accumulates when an element rides
/// through a unit row: `0.0 + 1.0 * v`. Every nonzero bit pattern passes
/// unchanged; -0.0 normalizes to +0.0, exactly as the generic sum does.
inline double through_unit(double v) { return v != 0.0 ? v : 0.0; }

}  // namespace

KalmanFilter::KalmanFilter(math::Matrix f, math::Matrix q, math::Matrix h,
                           math::Matrix r, math::Matrix x0, math::Matrix p0)
    : f_(std::move(f)),
      q_(std::move(q)),
      h_(std::move(h)),
      r_(std::move(r)),
      x_(std::move(x0)),
      p_(std::move(p0)) {
  const std::size_t n = f_.rows();
  const std::size_t m = h_.rows();
  if (f_.cols() != n || q_.rows() != n || q_.cols() != n || h_.cols() != n ||
      r_.rows() != m || r_.cols() != m || x_.rows() != n || x_.cols() != 1 ||
      p_.rows() != n || p_.cols() != n) {
    throw std::invalid_argument("KalmanFilter: inconsistent dimensions");
  }
  // Detect the bbox tracker's constant-velocity structure: H = [I4 | 0] and
  // F = I6 except the two position<-velocity couplings F(0,4), F(1,5). F and
  // H have no setters, so this holds for the filter's lifetime.
  if (n == 6 && m == 4) {
    bool structured = f_(0, 4) != 0.0 && f_(1, 5) != 0.0;
    for (std::size_t i = 0; structured && i < 4; ++i) {
      for (std::size_t j = 0; j < 6; ++j) {
        if (h_(i, j) != (i == j ? 1.0 : 0.0)) structured = false;
      }
    }
    for (std::size_t i = 0; structured && i < 6; ++i) {
      for (std::size_t j = 0; j < 6; ++j) {
        if ((i == 0 && j == 4) || (i == 1 && j == 5)) continue;
        if (f_(i, j) != (i == j ? 1.0 : 0.0)) structured = false;
      }
    }
    cv_fast_ = structured;
  }
}

void KalmanFilter::predict() {
  if (cv_fast_) {
    predict_cv_();
    return;
  }
  // x <- F x;  P <- F P F^T + Q — via the fixed scratch, no allocations.
  math::multiply_into(f_, x_, t_x_);
  std::swap(x_, t_x_);
  math::multiply_into(f_, p_, t_nn1_);
  math::multiply_transposed_into(t_nn1_, f_, t_nn2_);
  t_nn2_ += q_;
  std::swap(p_, t_nn2_);
}

void KalmanFilter::predict_cv_() {
  // Specialized F P F^T + Q for F = I + dt couplings. Bit-identity: per
  // output element this replays the generic kernels' term sequence — each
  // F*[.] row k-sum touches only k = i (weight 1.0) and, for rows 0/1, the
  // coupling column; the [.]*F^T column j-sum likewise only k = j plus the
  // coupling. Terms the generic loop skips (exact-zero lhs) or that
  // contribute v*0.0 (rhs structural zeros) provably never change the
  // accumulator value: adding +-0.0 to a running sum only normalizes a zero
  // accumulator to +0.0, which `through_unit` reproduces.
  const double f04 = f_(0, 4);
  const double f15 = f_(1, 5);
  double* x = x_.data().data();
  const double nx0 = through_unit(x[0]) + f04 * x[4];
  const double nx1 = through_unit(x[1]) + f15 * x[5];
  x[0] = nx0;
  x[1] = nx1;
  for (std::size_t i = 2; i < 6; ++i) x[i] = through_unit(x[i]);

  const double* q = q_.data().data();
  double* p = p_.data().data();
  const double* p4 = p + 4 * 6;
  const double* p5 = p + 5 * 6;
  double fp[6];
  for (std::size_t i = 0; i < 6; ++i) {
    double* pi = p + i * 6;
    // Row i of F*P (reads rows i, 4, 5 of P — rows 4/5 are only
    // overwritten on their own iteration, after this read).
    for (std::size_t j = 0; j < 6; ++j) {
      double v = through_unit(pi[j]);
      if (i == 0) v += f04 * p4[j];
      if (i == 1) v += f15 * p5[j];
      fp[j] = v;
    }
    // Row i of (F P) F^T + Q, written over P in place.
    double c0 = through_unit(fp[0]);
    if (fp[4] != 0.0) c0 += fp[4] * f04;
    double c1 = through_unit(fp[1]);
    if (fp[5] != 0.0) c1 += fp[5] * f15;
    const double* qi = q + i * 6;
    pi[0] = c0 + qi[0];
    pi[1] = c1 + qi[1];
    for (std::size_t j = 2; j < 6; ++j) pi[j] = through_unit(fp[j]) + qi[j];
  }
}

void KalmanFilter::update(const math::Matrix& z) {
  if (cv_fast_ && z.rows() == 4 && z.cols() == 1) {
    update_cv_(z);
    return;
  }
  // y = z - H x
  math::multiply_into(h_, x_, t_hx_);
  math::subtract_into(z, t_hx_, t_y_);
  // S = H P H^T + R
  math::multiply_into(h_, p_, t_mn_);
  math::multiply_transposed_into(t_mn_, h_, t_mm1_);
  t_mm1_ += r_;
  math::invert_into(t_mm1_, t_mm2_, t_s_inv_);
  // Record the innovation's squared Mahalanobis distance while y and S^-1
  // are at hand — the same kernel sequence as `mahalanobis2`, so the value
  // is bitwise identical to a pre-update call (t_mn_/t_hx_ are free here).
  math::transposed_multiply_into(t_y_, t_s_inv_, t_mn_);
  math::multiply_into(t_mn_, t_y_, t_hx_);
  last_update_m2_ = t_hx_(0, 0);
  // K = P H^T S^-1
  math::multiply_transposed_into(p_, h_, t_nm_);
  math::multiply_into(t_nm_, t_s_inv_, t_k_);
  // x <- x + K y
  math::multiply_into(t_k_, t_y_, t_x_);
  x_ += t_x_;
  // P <- (I - K H) P
  math::multiply_into(t_k_, h_, t_nn1_);
  t_nn2_.resize(p_.rows(), p_.cols());
  for (std::size_t i = 0; i < t_nn2_.rows(); ++i) {
    for (std::size_t j = 0; j < t_nn2_.cols(); ++j) {
      t_nn2_(i, j) = (i == j ? 1.0 : 0.0) - t_nn1_(i, j);
    }
  }
  math::multiply_into(t_nn2_, p_, t_nn1_);
  std::swap(p_, t_nn1_);
}

void KalmanFilter::update_cv_(const math::Matrix& z) {
  // Specialized measurement update for H = [I4 | 0]. The selection rows
  // collapse H x / H P / (H P) H^T / P H^T / K H to `through_unit` copies of
  // the corresponding state/covariance/gain blocks — exactly what the
  // generic skip-zero kernels accumulate element by element (see
  // predict_cv_ for the +-0.0 argument). The dense remainders (S^-1
  // products, (I - K H) P) run the same fixed kernels the generic dispatch
  // selects, in the same order.
  const double* zd = z.data().data();
  double* x = x_.data().data();
  const double* p = p_.data().data();
  const double* r = r_.data().data();
  // y = z - H x
  t_y_.resize(4, 1);
  double* y = t_y_.data().data();
  for (std::size_t i = 0; i < 4; ++i) y[i] = zd[i] - through_unit(x[i]);
  // S = H P H^T + R: top-left 4x4 block of P, plus R.
  t_mm1_.resize(4, 4);
  double* s = t_mm1_.data().data();
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      s[i * 4 + j] = through_unit(p[i * 6 + j]) + r[i * 4 + j];
    }
  }
  math::invert_into(t_mm1_, t_mm2_, t_s_inv_);
  // Innovation Mahalanobis bookkeeping — same kernel calls as the generic
  // update, so `last_update_mahalanobis2` keeps its bitwise contract.
  math::transposed_multiply_into(t_y_, t_s_inv_, t_mn_);
  math::multiply_into(t_mn_, t_y_, t_hx_);
  last_update_m2_ = t_hx_(0, 0);
  // K = (P H^T) S^-1: P H^T is the left 6x4 block of P.
  t_nm_.resize(6, 4);
  double* pht = t_nm_.data().data();
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      pht[i * 4 + j] = through_unit(p[i * 6 + j]);
    }
  }
  t_k_.resize(6, 4);
  double* k = t_k_.data().data();
  math::detail::multiply_fixed<6, 4, 4>(pht, t_s_inv_.data().data(), k);
  // x <- x + K y
  t_x_.resize(6, 1);
  double* ky = t_x_.data().data();
  math::detail::multiply_fixed<6, 4, 1>(k, y, ky);
  for (std::size_t i = 0; i < 6; ++i) x[i] += ky[i];
  // P <- (I - K H) P, with K H = [K | 0] through the selection columns.
  t_nn2_.resize(6, 6);
  double* ikh = t_nn2_.data().data();
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 4; ++j) {
      ikh[i * 6 + j] = (i == j ? 1.0 : 0.0) - through_unit(k[i * 4 + j]);
    }
    for (std::size_t j = 4; j < 6; ++j) {
      ikh[i * 6 + j] = (i == j ? 1.0 : 0.0) - 0.0;
    }
  }
  t_nn1_.resize(6, 6);
  math::detail::multiply_fixed<6, 6, 6>(ikh, p, t_nn1_.data().data());
  std::swap(p_, t_nn1_);
}

math::Matrix KalmanFilter::innovation(const math::Matrix& z) const {
  return z - h_ * x_;
}

double KalmanFilter::mahalanobis2(const math::Matrix& z) const {
  // y = z - H x;  d = y^T S^-1 y — same scratch, zero allocations.
  math::multiply_into(h_, x_, t_hx_);
  math::subtract_into(z, t_hx_, t_y_);
  math::multiply_into(h_, p_, t_mn_);
  math::multiply_transposed_into(t_mn_, h_, t_mm1_);
  t_mm1_ += r_;
  math::invert_into(t_mm1_, t_mm2_, t_s_inv_);
  math::transposed_multiply_into(t_y_, t_s_inv_, t_mn_);
  math::multiply_into(t_mn_, t_y_, t_hx_);
  return t_hx_(0, 0);
}

}  // namespace rt::perception
