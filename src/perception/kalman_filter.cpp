#include "perception/kalman_filter.hpp"

#include <stdexcept>
#include <utility>

namespace rt::perception {

KalmanFilter::KalmanFilter(math::Matrix f, math::Matrix q, math::Matrix h,
                           math::Matrix r, math::Matrix x0, math::Matrix p0)
    : f_(std::move(f)),
      q_(std::move(q)),
      h_(std::move(h)),
      r_(std::move(r)),
      x_(std::move(x0)),
      p_(std::move(p0)) {
  const std::size_t n = f_.rows();
  const std::size_t m = h_.rows();
  if (f_.cols() != n || q_.rows() != n || q_.cols() != n || h_.cols() != n ||
      r_.rows() != m || r_.cols() != m || x_.rows() != n || x_.cols() != 1 ||
      p_.rows() != n || p_.cols() != n) {
    throw std::invalid_argument("KalmanFilter: inconsistent dimensions");
  }
}

void KalmanFilter::predict() {
  // x <- F x;  P <- F P F^T + Q — via the fixed scratch, no allocations.
  math::multiply_into(f_, x_, t_x_);
  std::swap(x_, t_x_);
  math::multiply_into(f_, p_, t_nn1_);
  math::multiply_transposed_into(t_nn1_, f_, t_nn2_);
  t_nn2_ += q_;
  std::swap(p_, t_nn2_);
}

void KalmanFilter::update(const math::Matrix& z) {
  // y = z - H x
  math::multiply_into(h_, x_, t_hx_);
  math::subtract_into(z, t_hx_, t_y_);
  // S = H P H^T + R
  math::multiply_into(h_, p_, t_mn_);
  math::multiply_transposed_into(t_mn_, h_, t_mm1_);
  t_mm1_ += r_;
  math::invert_into(t_mm1_, t_mm2_, t_s_inv_);
  // Record the innovation's squared Mahalanobis distance while y and S^-1
  // are at hand — the same kernel sequence as `mahalanobis2`, so the value
  // is bitwise identical to a pre-update call (t_mn_/t_hx_ are free here).
  math::transposed_multiply_into(t_y_, t_s_inv_, t_mn_);
  math::multiply_into(t_mn_, t_y_, t_hx_);
  last_update_m2_ = t_hx_(0, 0);
  // K = P H^T S^-1
  math::multiply_transposed_into(p_, h_, t_nm_);
  math::multiply_into(t_nm_, t_s_inv_, t_k_);
  // x <- x + K y
  math::multiply_into(t_k_, t_y_, t_x_);
  x_ += t_x_;
  // P <- (I - K H) P
  math::multiply_into(t_k_, h_, t_nn1_);
  t_nn2_.resize(p_.rows(), p_.cols());
  for (std::size_t i = 0; i < t_nn2_.rows(); ++i) {
    for (std::size_t j = 0; j < t_nn2_.cols(); ++j) {
      t_nn2_(i, j) = (i == j ? 1.0 : 0.0) - t_nn1_(i, j);
    }
  }
  math::multiply_into(t_nn2_, p_, t_nn1_);
  std::swap(p_, t_nn1_);
}

math::Matrix KalmanFilter::innovation(const math::Matrix& z) const {
  return z - h_ * x_;
}

double KalmanFilter::mahalanobis2(const math::Matrix& z) const {
  // y = z - H x;  d = y^T S^-1 y — same scratch, zero allocations.
  math::multiply_into(h_, x_, t_hx_);
  math::subtract_into(z, t_hx_, t_y_);
  math::multiply_into(h_, p_, t_mn_);
  math::multiply_transposed_into(t_mn_, h_, t_mm1_);
  t_mm1_ += r_;
  math::invert_into(t_mm1_, t_mm2_, t_s_inv_);
  math::transposed_multiply_into(t_y_, t_s_inv_, t_mn_);
  math::multiply_into(t_mn_, t_y_, t_hx_);
  return t_hx_(0, 0);
}

}  // namespace rt::perception
