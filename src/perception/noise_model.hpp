#pragma once

#include <cmath>

#include "sim/types.hpp"
#include "stats/fit.hpp"

namespace rt::perception {

/// Statistical model of YOLOv3's detection errors for one object class,
/// parameterized exactly by the quantities the paper characterizes in
/// Fig. 5:
///  - the bounding-box center error, normalized by bbox size, is Gaussian
///    (`center_x` / `center_y`);
///  - the length of continuous misdetection streaks is shifted-Exponential
///    (`streak`, loc = 1 frame).
///
/// The same object serves two masters:
///  1. the *detector simulation* samples from it to generate realistic noisy
///     detections (see DetectorModel);
///  2. the *attacker* bounds its per-frame perturbation by
///     [mu - sigma, mu + sigma] of `center_x` and its Disappear duration by
///     `streak.p99()` (K_max), exactly as §III-B / §IV-B prescribe.
///
/// To keep the *fitted population* matching the paper while preserving a
/// trackable object stream, the generator uses a two-component Gaussian
/// mixture: a narrow "core" component active most of the time and a wide
/// "outlier" component (weight `outlier_prob`) that supplies the heavy tail.
/// The mixture's total variance equals the paper's sigma^2, so refitting the
/// generated samples recovers the paper's parameters (validated in tests and
/// in bench/fig5_detector_characterization).
struct ClassNoiseModel {
  stats::NormalFit center_x;   ///< normalized center error, image x
  stats::NormalFit center_y;   ///< normalized center error, image y
  stats::ExponentialFit streak;  ///< misdetection streak length (frames)
  /// Empirical 99th percentile of the streak length in frames. The paper
  /// reports 31 (pedestrian) / 59.4 (vehicle) — far beyond the fitted
  /// exponential's analytic p99, i.e. the real streak data is heavy-tailed.
  /// The attacker calibrates K_max for Disappear against THIS number
  /// (§IV-B), and the generator reproduces the tail via a two-rate mixture.
  double streak_p99{30.0};
  double streak_start_prob{0.02};  ///< per-frame probability a streak begins
  /// Heavy-tail mixture of the streak generator: with probability
  /// `streak_tail_weight` the streak length is drawn at rate
  /// `lambda * streak_tail_rate_mult` (a much longer blackout).
  double streak_tail_weight{0.08};
  double streak_tail_rate_mult{0.13};
  double outlier_prob{0.05};       ///< weight of the wide mixture component
  double core_sigma_x{0.1};        ///< narrow-component sigma, x
  double core_sigma_y{0.1};        ///< narrow-component sigma, y
  double size_jitter_sigma{0.03};  ///< multiplicative w/h jitter

  /// Sigma of the wide component such that the mixture variance matches the
  /// target population sigma: sigma^2 = (1-p) * core^2 + p * outlier^2.
  [[nodiscard]] double outlier_sigma(double population_sigma,
                                     double core_sigma) const {
    const double var = population_sigma * population_sigma -
                       (1.0 - outlier_prob) * core_sigma * core_sigma;
    return var > 0.0 ? std::sqrt(var / outlier_prob) : 0.0;
  }
};

/// Per-class detector noise model with the paper's Fig. 5 fits as defaults.
struct DetectorNoiseModel {
  ClassNoiseModel vehicle;
  ClassNoiseModel pedestrian;

  [[nodiscard]] const ClassNoiseModel& for_class(sim::ActorType t) const {
    return t == sim::ActorType::kVehicle ? vehicle : pedestrian;
  }
  [[nodiscard]] ClassNoiseModel& for_class(sim::ActorType t) {
    return t == sim::ActorType::kVehicle ? vehicle : pedestrian;
  }

  /// The fits reported in Fig. 5 of the paper:
  ///  vehicle:    x ~ N(0.023, 0.464), y ~ N(0.094, 0.586), streak Exp(1, 0.327)
  ///  pedestrian: x ~ N(0.254, 2.010), y ~ N(0.186, 0.409), streak Exp(1, 0.717)
  [[nodiscard]] static DetectorNoiseModel paper_defaults() {
    DetectorNoiseModel m;
    m.vehicle.center_x = {0.023, 0.464};
    m.vehicle.center_y = {0.094, 0.586};
    m.vehicle.streak = {1.0, 0.327};
    m.vehicle.streak_p99 = 59.4;
    m.vehicle.streak_start_prob = 0.02;
    m.vehicle.core_sigma_x = 0.10;
    m.vehicle.core_sigma_y = 0.12;
    m.pedestrian.center_x = {0.254, 2.010};
    m.pedestrian.center_y = {0.186, 0.409};
    m.pedestrian.streak = {1.0, 0.717};
    m.pedestrian.streak_p99 = 31.0;
    m.pedestrian.streak_start_prob = 0.035;
    m.pedestrian.core_sigma_x = 0.25;
    m.pedestrian.core_sigma_y = 0.12;
    return m;
  }
};

}  // namespace rt::perception
