#pragma once

#include "math/bbox.hpp"
#include "perception/detection.hpp"
#include "perception/kalman_filter.hpp"
#include "perception/noise_model.hpp"

namespace rt::perception {

/// One SORT-style tracked object: a Kalman filter over the image-space state
/// [u, v, w, h, vu, vv] (bbox center, size, and pixel velocity) plus the
/// lifecycle bookkeeping (hits / misses / age) the MOT manager needs.
///
/// This per-object KF is the paper's "F" — and the component §III-B singles
/// out as the vulnerable link: it happily integrates biased measurements as
/// long as each one stays within its Gaussian noise budget.
class BboxTrack {
 public:
  /// `noise` is the characterized detector noise for this object's class:
  /// the KF's measurement covariance is calibrated against it (a robust
  /// fraction of the population sigma), exactly the calibration the paper
  /// says production stacks perform — and the calibration the attacker
  /// hides under.
  BboxTrack(int id, const Detection& first, double dt,
            const ClassNoiseModel& noise);

  [[nodiscard]] int id() const { return id_; }
  [[nodiscard]] sim::ActorType cls() const { return cls_; }
  [[nodiscard]] int hits() const { return hits_; }
  [[nodiscard]] int consecutive_misses() const { return consecutive_misses_; }
  [[nodiscard]] int age() const { return age_; }
  /// Ground-truth actor id of the *last matched detection* (bookkeeping).
  [[nodiscard]] sim::ActorId last_truth_id() const { return last_truth_id_; }

  /// Current (post-update or post-predict) bbox estimate.
  [[nodiscard]] math::Bbox bbox() const;
  /// Bbox predicted for this frame before any update — what the Hungarian
  /// matcher associates against, and what the attacker pushes away from.
  [[nodiscard]] math::Bbox predicted_bbox() const { return predicted_; }
  /// Image-space velocity estimate (px/frame-rate units: px/s).
  [[nodiscard]] double vu() const { return kf_.state()(4, 0); }
  [[nodiscard]] double vv() const { return kf_.state()(5, 0); }

  /// Advances the KF one frame and caches the predicted bbox.
  void predict();
  /// Consumes the matched detection.
  void update(const Detection& det);
  /// Records a missed frame (no matched detection).
  void mark_missed();

  /// Squared Mahalanobis distance of a candidate measurement (gating/IDS).
  [[nodiscard]] double mahalanobis2(const math::Bbox& z) const;

  /// Innovation of the *last matched* detection against the pre-update
  /// prediction, recorded by `update` for the runtime attack monitors:
  /// squared Mahalanobis distance (-1 while unmatched) and the
  /// size-normalized center displacement per axis (the units the detector
  /// noise is characterized in, Fig. 5).
  [[nodiscard]] double last_innovation_m2() const {
    return last_innovation_m2_;
  }
  [[nodiscard]] double last_innovation_x() const { return last_innovation_x_; }
  [[nodiscard]] double last_innovation_y() const { return last_innovation_y_; }

 private:
  /// Fills `out` (4 x 1) with the measurement vector for `b`.
  static void to_measurement_into(const math::Bbox& b, math::Matrix& out);

  /// Fills `out` (4 x 4) with the size-proportional measurement covariance.
  void measurement_noise_into(const math::Bbox& b, math::Matrix& out) const;

  int id_;
  sim::ActorType cls_;
  double meas_sigma_x_;  ///< robust measurement sigma, fraction of bbox w
  double meas_sigma_y_;  ///< robust measurement sigma, fraction of bbox h
  KalmanFilter kf_;
  /// Scratch for the per-update measurement vector/covariance, reused so a
  /// track step allocates nothing; mutable because `mahalanobis2` is const.
  mutable math::Matrix z_scratch_;
  mutable math::Matrix r_scratch_;
  math::Bbox predicted_;
  int hits_{1};
  int consecutive_misses_{0};
  int age_{1};
  sim::ActorId last_truth_id_{-1};
  double last_innovation_m2_{-1.0};
  double last_innovation_x_{0.0};
  double last_innovation_y_{0.0};
};

}  // namespace rt::perception
