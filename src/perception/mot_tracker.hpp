#pragma once

#include <optional>
#include <vector>

#include "perception/bbox_track.hpp"
#include "perception/detection.hpp"
#include "perception/hungarian.hpp"

namespace rt::perception {

/// Read-only snapshot of one confirmed track after a tracker step.
struct TrackView {
  int track_id{0};
  sim::ActorType cls{sim::ActorType::kVehicle};
  math::Bbox bbox;            ///< post-update estimate
  math::Bbox predicted_bbox;  ///< pre-update prediction for this frame
  double vu{0.0};             ///< image-x velocity, px/s
  double vv{0.0};             ///< image-y velocity, px/s
  int hits{0};
  int consecutive_misses{0};
  bool matched_this_frame{false};
  sim::ActorId last_truth_id{-1};
  /// Pre-update innovation of the matched detection (see BboxTrack): squared
  /// Mahalanobis distance (-1 while unmatched) and size-normalized center
  /// displacement per axis. Consumed by the runtime attack monitors.
  double innovation_m2{-1.0};
  double innovation_x{0.0};
  double innovation_y{0.0};
};

/// Configuration of the tracking-by-detection manager.
struct MotConfig {
  /// Association gate on IoU cost: a (detection, track) pair with
  /// 1 - IoU > max_cost is never matched. The paper's lambda plays this role
  /// in Eq. 4 — the attacker must keep its shifted detection *inside* this
  /// gate to stay attached to the victim track.
  double max_cost{0.8};
  /// Innovation gate: a matched detection whose size-normalized center
  /// displacement from the track prediction exceeds
  /// `innovation_gate_mult * (|mu| + sigma)` of the characterized class
  /// noise is rejected as an outlier (treated as a miss). This is the
  /// filter-side calibration the paper's stealth bound dances under: the
  /// attacker's <= 1.0-sigma steps always pass.
  double innovation_gate_mult{1.2};
  /// A track is dropped after this many consecutive missed frames. Sized
  /// to coast through the *core* of the natural dropout-streak distribution
  /// (mean ~2-4 frames) — only abnormal blackouts (or Disappear attacks)
  /// outlast it.
  int max_misses{8};
  /// A track is reported (confirmed) once it has this many hits.
  int min_hits{2};
};

/// Multiple-object tracker ("tracking-by-detection", §II-B): per-frame
/// Hungarian association of detections to per-object Kalman trackers.
class MotTracker {
 public:
  MotTracker(double dt, MotConfig config,
             DetectorNoiseModel noise = DetectorNoiseModel::paper_defaults());
  explicit MotTracker(double dt) : MotTracker(dt, MotConfig{}) {}

  /// Processes one camera frame; returns snapshots of confirmed tracks.
  std::vector<TrackView> update(const CameraFrame& frame);
  /// Same, into a caller-owned buffer (cleared first).
  void update_into(const CameraFrame& frame, std::vector<TrackView>& out);

  /// Snapshot of a live track by id (confirmed or not); nullopt if unknown.
  [[nodiscard]] std::optional<TrackView> track(int track_id) const;

  /// Snapshots of all live tracks (confirmed or not).
  [[nodiscard]] std::vector<TrackView> live_tracks() const;

  /// One-step-ahead bbox prediction for a track: where the KF expects the
  /// *next* measurement. This is the "s_hat_{t-1}" an Eq.-4 attacker pushes
  /// away from before the next frame arrives.
  [[nodiscard]] std::optional<math::Bbox> predict_next_bbox(
      int track_id) const;

  [[nodiscard]] const MotConfig& config() const { return config_; }
  [[nodiscard]] std::size_t live_track_count() const { return tracks_.size(); }

 private:
  [[nodiscard]] static TrackView view_of(const BboxTrack& t, bool matched);

  double dt_;
  MotConfig config_;
  DetectorNoiseModel noise_;
  std::vector<BboxTrack> tracks_;
  std::vector<char> matched_flags_;
  int next_id_{1};

  // Per-frame association scratch, reused across updates so the steady-state
  // tracker step performs no cost-matrix or solver allocations.
  math::Matrix cost_scratch_;
  AssignmentScratch assign_scratch_;
  AssignmentResult assign_result_scratch_;
  std::vector<int> det_to_track_;
  std::vector<char> track_matched_;
};

}  // namespace rt::perception
