#include "service/fault_injection.hpp"

#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "obs/metrics.hpp"
#include "stats/rng.hpp"

namespace rt::service {

namespace {

constexpr const char* kSiteNames[kFaultSiteCount] = {
    "pipe-write", "pipe-read",    "pipe-poll",  "fork",      "cache-write",
    "cache-fsync", "cache-rename", "cache-read", "client-write",
};

struct TypeName {
  FaultType type;
  const char* name;
};
constexpr TypeName kTypeNames[] = {
    {FaultType::kNone, "none"},
    {FaultType::kShortWrite, "short-write"},
    {FaultType::kEintr, "eintr"},
    {FaultType::kIoError, "io-error"},
    {FaultType::kForkEagain, "fork-eagain"},
    {FaultType::kHang, "hang"},
    {FaultType::kTruncateFrame, "truncate-frame"},
    {FaultType::kCorruptFrame, "corrupt-frame"},
    {FaultType::kEnospc, "enospc"},
    {FaultType::kDisconnect, "disconnect"},
};

/// Blocks forever in short sleeps; the peer's timeout (and SIGKILL) is the
/// only way out — exactly what a wedged worker looks like from outside.
[[noreturn]] void hang_forever() {
  struct timespec ts {};
  ts.tv_sec = 0;
  ts.tv_nsec = 50 * 1000 * 1000;
  for (;;) ::nanosleep(&ts, nullptr);
}

}  // namespace

const char* to_string(FaultSite site) {
  const auto i = static_cast<std::size_t>(site);
  return i < kFaultSiteCount ? kSiteNames[i] : "?";
}

const char* to_string(FaultType type) {
  for (const auto& tn : kTypeNames) {
    if (tn.type == type) return tn.name;
  }
  return "?";
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

void FaultInjector::arm(FaultPlan plan) {
  armed_.store(false, std::memory_order_release);
  plan_ = std::move(plan);
  worker_.store(0, std::memory_order_relaxed);
  for (auto& c : ops_) c.store(0, std::memory_order_relaxed);
  for (auto& c : injected_) c.store(0, std::memory_order_relaxed);
  armed_.store(true, std::memory_order_release);
}

void FaultInjector::disarm() { armed_.store(false, std::memory_order_release); }

bool FaultInjector::arm_from_env(const char* var) {
  const char* text = std::getenv(var);
  if (text == nullptr || text[0] == '\0') return false;
  FaultPlan plan;
  FaultRule rule;
  bool have_site = false;
  bool have_type = false;
  std::istringstream in(text);
  std::string word;
  while (in >> word) {
    const std::size_t eq = word.find('=');
    if (eq == std::string::npos) return false;
    const std::string key = word.substr(0, eq);
    const std::string value = word.substr(eq + 1);
    if (key == "seed") {
      plan.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "site") {
      for (std::size_t i = 0; i < kFaultSiteCount; ++i) {
        if (value == kSiteNames[i]) {
          rule.site = static_cast<FaultSite>(i);
          have_site = true;
        }
      }
      if (!have_site) return false;
    } else if (key == "type") {
      for (const auto& tn : kTypeNames) {
        if (value == tn.name) {
          rule.type = tn.type;
          have_type = true;
        }
      }
      if (!have_type) return false;
    } else if (key == "rate") {
      rule.rate = std::strtod(value.c_str(), nullptr);
    } else if (key == "max") {
      rule.max_faults = std::atoi(value.c_str());
    } else if (key == "skip") {
      rule.skip_ops = std::atoi(value.c_str());
    } else {
      return false;
    }
  }
  if (!have_site || !have_type) return false;
  plan.rules.push_back(rule);
  arm(std::move(plan));
  return true;
}

FaultDecision FaultInjector::next(FaultSite site) {
  const auto si = static_cast<std::size_t>(site);
  if (!armed_.load(std::memory_order_acquire)) return {FaultType::kNone, 0};
  const std::uint64_t n = ops_[si].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t worker = worker_.load(std::memory_order_relaxed);
  for (std::size_t r = 0; r < plan_.rules.size(); ++r) {
    const FaultRule& rule = plan_.rules[r];
    if (rule.site != site || rule.type == FaultType::kNone) continue;
    if (n < static_cast<std::uint64_t>(rule.skip_ops)) continue;
    if (rule.max_faults >= 0 &&
        injected_[si].load(std::memory_order_relaxed) >=
            static_cast<std::uint64_t>(rule.max_faults)) {
      continue;
    }
    // Pure function of (seed, site, worker, rule, n): the same chaos seed
    // reproduces the same fault sequence on every run.
    std::uint64_t key = plan_.seed;
    key ^= (static_cast<std::uint64_t>(site) + 1) * 0x9E3779B97F4A7C15ull;
    key ^= (worker + 1) * 0xBF58476D1CE4E5B9ull;
    key ^= (static_cast<std::uint64_t>(r) + 1) * 0x94D049BB133111EBull;
    stats::Rng rng = stats::Rng::from_stream(key, n);
    if (rule.rate >= 1.0 || rng.uniform(0.0, 1.0) < rule.rate) {
      injected_[si].fetch_add(1, std::memory_order_relaxed);
      // Firings also go to the metrics registry so chaos harnesses can
      // assert on a snapshot instead of scraping text. Same caveat as
      // injected_total(): forked workers count in their own process.
      static const obs::Counter fired =
          obs::MetricsRegistry::global().counter(
              "rt_fault_injections_total",
              "Deterministic fault-injection firings in this process");
      fired.inc();
      return {rule.type, n};
    }
  }
  return {FaultType::kNone, n};
}

std::uint64_t FaultInjector::ops(FaultSite site) const {
  return ops_[static_cast<std::size_t>(site)].load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::injected(FaultSite site) const {
  return injected_[static_cast<std::size_t>(site)].load(
      std::memory_order_relaxed);
}

std::uint64_t FaultInjector::injected_total() const {
  std::uint64_t total = 0;
  for (const auto& c : injected_) total += c.load(std::memory_order_relaxed);
  return total;
}

ssize_t sys_read(FaultSite site, int fd, void* buf, std::size_t len) {
  switch (FaultInjector::instance().next(site).type) {
    case FaultType::kEintr:
      errno = EINTR;
      return -1;
    case FaultType::kIoError:
      errno = EIO;
      return -1;
    case FaultType::kHang:
      hang_forever();
    default:
      break;
  }
  return ::read(fd, buf, len);
}

ssize_t sys_write(FaultSite site, int fd, const void* buf, std::size_t len) {
  const FaultDecision d = FaultInjector::instance().next(site);
  switch (d.type) {
    case FaultType::kShortWrite: {
      // A prefix is consumed — a correct caller loops; an incorrect one
      // silently truncates, which the checksummed readers then catch.
      const std::size_t k = len > 1 ? (len + 1) / 2 : len;
      return ::write(fd, buf, k);
    }
    case FaultType::kEintr:
      errno = EINTR;
      return -1;
    case FaultType::kIoError:
      errno = EIO;
      return -1;
    case FaultType::kEnospc:
      errno = ENOSPC;
      return -1;
    case FaultType::kDisconnect:
      errno = EPIPE;
      return -1;
    case FaultType::kHang:
      hang_forever();
    case FaultType::kTruncateFrame: {
      // Mid-frame stream death: a prefix reaches the pipe, then the writer
      // is gone. The reader must see a truncated frame, never a short one
      // that parses.
      if (len > 1) {
        const ssize_t ignored = ::write(fd, buf, (len + 1) / 2);
        (void)ignored;
      }
      errno = EPIPE;
      return -1;
    }
    case FaultType::kCorruptFrame: {
      // One byte flipped at a schedule-determined offset: exercises the
      // frame/entry checksums (without them this would be silent result
      // corruption, the worst failure mode a result service can have).
      std::string copy(static_cast<const char*>(buf), len);
      if (!copy.empty()) {
        copy[static_cast<std::size_t>(d.op * 0x9E3779B1ull + 17) %
             copy.size()] ^= 0x20;
      }
      return ::write(fd, copy.data(), copy.size());
    }
    default:
      break;
  }
  return ::write(fd, buf, len);
}

int sys_poll(FaultSite site, struct pollfd* fds, nfds_t n, int timeout_ms) {
  switch (FaultInjector::instance().next(site).type) {
    case FaultType::kEintr:
      errno = EINTR;
      return -1;
    case FaultType::kIoError:
      errno = EIO;
      return -1;
    default:
      break;
  }
  return ::poll(fds, n, timeout_ms);
}

pid_t sys_fork() {
  if (FaultInjector::instance().next(FaultSite::kFork).type ==
      FaultType::kForkEagain) {
    errno = EAGAIN;
    return -1;
  }
  return ::fork();
}

int sys_fsync(FaultSite site, int fd) {
  switch (FaultInjector::instance().next(site).type) {
    case FaultType::kIoError:
      errno = EIO;
      return -1;
    case FaultType::kEnospc:
      errno = ENOSPC;
      return -1;
    default:
      break;
  }
  return ::fsync(fd);
}

int sys_rename(FaultSite site, const char* from, const char* to) {
  switch (FaultInjector::instance().next(site).type) {
    case FaultType::kIoError:
      errno = EIO;
      return -1;
    case FaultType::kEnospc:
      errno = ENOSPC;
      return -1;
    default:
      break;
  }
  return ::rename(from, to);
}

bool write_all_fd(FaultSite site, int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = sys_write(site, fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace rt::service
