#include "service/cell_cache.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "experiments/campaign_serde.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/fault_injection.hpp"
#include "sim/scenario_registry.hpp"
#include "stats/hash.hpp"

namespace rt::service {

namespace fs = std::filesystem;

namespace {

/// The registry mirror of CacheStats: one counter per field, process-wide
/// across every CampaignCellCache instance. test_service pins that the
/// registry deltas equal the per-instance CacheStats deltas.
struct CacheCounters {
  obs::Counter hits;
  obs::Counter misses;
  obs::Counter stale;
  obs::Counter corrupt;
  obs::Counter evictions;
  obs::Counter stores;
  obs::Counter io_errors;
};

const CacheCounters& cache_counters() {
  static const CacheCounters c = [] {
    auto& reg = obs::MetricsRegistry::global();
    return CacheCounters{
        reg.counter("rt_campaign_cache_hits_total",
                    "Cell-cache lookups served from disk"),
        reg.counter("rt_campaign_cache_misses_total",
                    "Cell-cache lookups that fell through to execution"),
        reg.counter("rt_campaign_cache_stale_total",
                    "Entries ignored for version mismatch"),
        reg.counter("rt_campaign_cache_corrupt_total",
                    "Entries rejected by checksum/parse validation"),
        reg.counter("rt_campaign_cache_evictions_total",
                    "Entries evicted by the LRU size budget"),
        reg.counter("rt_campaign_cache_stores_total",
                    "Entries durably stored"),
        reg.counter("rt_campaign_cache_io_errors_total",
                    "Cache reads/writes declined on I/O failure")};
  }();
  return c;
}

/// Mirrors whatever a cache method did to `live` into the registry when
/// the scope exits, so each early return in lookup() stays one line.
class StatsMirror {
 public:
  explicit StatsMirror(const CacheStats& live)
      : live_(live), before_(live) {}
  ~StatsMirror() {
    const CacheCounters& c = cache_counters();
    const auto bump = [](const obs::Counter& counter, std::uint64_t now,
                         std::uint64_t then) {
      if (now > then) counter.inc(now - then);
    };
    bump(c.hits, live_.hits, before_.hits);
    bump(c.misses, live_.misses, before_.misses);
    bump(c.stale, live_.stale, before_.stale);
    bump(c.corrupt, live_.corrupt, before_.corrupt);
    bump(c.evictions, live_.evictions, before_.evictions);
    bump(c.stores, live_.stores, before_.stores);
    bump(c.io_errors, live_.io_errors, before_.io_errors);
  }

 private:
  const CacheStats& live_;
  CacheStats before_;
};

constexpr const char* kCacheMagic = "RTCACHE";
/// v2 added the content checksum column; v1 entries are counted `stale`
/// (ignored and re-stored), exactly like a code-version bump.
constexpr std::uint64_t kCacheHeaderVersion = 2;

std::string fingerprint_hex(std::uint64_t fp) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, fp);
  return buf;
}

std::uint64_t content_checksum(std::string_view payload) {
  return stats::fnv1a_str(stats::kFnv1aOffset, payload);
}

enum class ReadOutcome { kOk, kNotFound, kIoError };

/// Whole-file read through the fault-injection shims, so a chaos schedule
/// can hit cache lookups with EIO/EINTR like any other syscall site.
ReadOutcome read_file(const fs::path& path, std::string& out) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return errno == ENOENT ? ReadOutcome::kNotFound : ReadOutcome::kIoError;
  }
  out.clear();
  char buf[1 << 16];
  for (;;) {
    const ssize_t n =
        sys_read(FaultSite::kCacheRead, fd, buf, sizeof buf);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return ReadOutcome::kIoError;
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return ReadOutcome::kOk;
}

fs::path touch_sidecar(const fs::path& entry) {
  return fs::path(entry.string() + ".touch");
}

/// Access counter from an entry's `.touch` sidecar; 0 (== "no recorded
/// access, fall back to mtime") when absent or unreadable.
std::uint64_t read_touch(const fs::path& entry) {
  std::ifstream in(touch_sidecar(entry));
  std::uint64_t v = 0;
  if (in >> v) return v;
  return 0;
}

}  // namespace

std::uint64_t campaign_cell_fingerprint(
    const experiments::CampaignSpec& spec, std::uint64_t code_version) {
  std::uint64_t h = stats::kFnv1aOffset;
  h = stats::fnv1a_str(h, "rt.campaign.cell.v1");
  h = stats::fnv1a_u64(h, code_version);
  h = stats::fnv1a_str(h, spec.name);
  h = stats::fnv1a_str(h, spec.scenario);
  h = stats::fnv1a_u64(h, static_cast<std::uint64_t>(spec.vector));
  h = stats::fnv1a_u64(h, static_cast<std::uint64_t>(spec.mode));
  h = stats::fnv1a_u64(h, static_cast<std::uint64_t>(spec.runs));
  h = stats::fnv1a_u64(h, spec.seed);
  h = stats::fnv1a_u64(h, spec.params.has_value() ? 1 : 0);
  if (spec.params) {
    for (const auto& name : sim::scenario_param_names()) {
      h = stats::fnv1a_str(h, name);
      h = stats::fnv1a_double(h, sim::get_scenario_param(*spec.params, name));
    }
  }
  h = stats::fnv1a_u64(h, spec.monitors.size());
  for (const auto& m : spec.monitors) h = stats::fnv1a_str(h, m);
  return h;
}

CampaignCellCache::CampaignCellCache(CacheConfig config)
    : config_(std::move(config)) {
  if (config_.dir.empty()) {
    throw std::invalid_argument("CampaignCellCache: empty cache dir");
  }
  fs::create_directories(config_.dir);
  // Re-seed the monotonic access sequence from the max persisted counter,
  // so a restarted process keeps strictly increasing LRU order.
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(config_.dir, ec)) {
    if (de.path().extension() != ".touch") continue;
    std::ifstream in(de.path());
    std::uint64_t v = 0;
    if (in >> v) touch_seq_ = std::max(touch_seq_, v);
  }
}

void CampaignCellCache::touch_locked(const std::string& entry_path) {
  const fs::path sidecar = touch_sidecar(entry_path);
  const fs::path tmp = sidecar.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    out << ++touch_seq_ << '\n';
    if (!out.good()) {
      std::error_code ec;
      fs::remove(tmp, ec);
      return;  // counter write failed: the entry falls back to mtime order
    }
  }
  std::error_code ec;
  fs::rename(tmp, sidecar, ec);
  if (ec) fs::remove(tmp, ec);
}

std::string CampaignCellCache::entry_path(
    const experiments::CampaignSpec& spec) const {
  const std::uint64_t fp =
      campaign_cell_fingerprint(spec, config_.code_version);
  return (fs::path(config_.dir) / ("cell_" + fingerprint_hex(fp) + ".rtcr"))
      .string();
}

std::optional<experiments::CampaignResult> CampaignCellCache::lookup(
    const experiments::CampaignSpec& spec) {
  RT_TRACE_SPAN("cache_lookup", "cache");
  std::lock_guard<std::mutex> lock(mutex_);
  StatsMirror mirror(stats_);
  const std::uint64_t fp =
      campaign_cell_fingerprint(spec, config_.code_version);
  const fs::path path =
      fs::path(config_.dir) / ("cell_" + fingerprint_hex(fp) + ".rtcr");

  std::string blob;
  switch (read_file(path, blob)) {
    case ReadOutcome::kOk:
      break;
    case ReadOutcome::kNotFound:
      ++stats_.misses;
      return std::nullopt;
    case ReadOutcome::kIoError:
      // Disk trouble reading an entry that exists: absorbed as a miss (the
      // grid re-runs the cell), counted so the service layer can notice.
      ++stats_.io_errors;
      ++stats_.misses;
      return std::nullopt;
  }

  // Header line:
  //   RTCACHE <header version> <code_version> <fingerprint> <content fnv>
  const std::size_t eol = blob.find('\n');
  if (eol == std::string::npos) {
    ++stats_.corrupt;
    return std::nullopt;
  }
  const std::string header = blob.substr(0, eol);
  char magic[16] = {0};
  unsigned long long header_version = 0;
  if (std::sscanf(header.c_str(), "%15s %llu", magic, &header_version) != 2 ||
      std::string(magic) != kCacheMagic) {
    ++stats_.corrupt;
    return std::nullopt;
  }
  if (header_version != kCacheHeaderVersion) {
    // A well-formed entry from another header generation (e.g. pre-checksum
    // v1): stale, not corrupt — nothing is damaged, the format just moved.
    ++stats_.stale;
    return std::nullopt;
  }
  unsigned long long file_code_version = 0;
  unsigned long long file_fp = 0;
  unsigned long long file_checksum = 0;
  if (std::sscanf(header.c_str(), "%15s %llu %llu %llx %llx", magic,
                  &header_version, &file_code_version, &file_fp,
                  &file_checksum) != 5) {
    ++stats_.corrupt;
    return std::nullopt;
  }
  if (file_code_version != config_.code_version) {
    // Written by a build with different simulation semantics: ignore it
    // (it will be overwritten by the store that follows the re-run).
    ++stats_.stale;
    return std::nullopt;
  }
  if (file_fp != fp) {
    ++stats_.corrupt;
    return std::nullopt;
  }
  const std::string_view payload = std::string_view(blob).substr(eol + 1);
  if (content_checksum(payload) != file_checksum) {
    // Byte rot that might still parse (e.g. a flipped bit inside a hex
    // double): without this check it would be served as a wrong result.
    ++stats_.corrupt;
    return std::nullopt;
  }

  experiments::CampaignResult result;
  try {
    result = experiments::deserialize_campaign_result(
        std::string_view(blob).substr(eol + 1));
  } catch (const experiments::SerdeError&) {
    ++stats_.corrupt;
    return std::nullopt;
  }
  // Belt and braces against a fingerprint collision or a renamed file: the
  // stored spec must be the requested one.
  if (result.spec.name != spec.name || result.spec.seed != spec.seed ||
      result.spec.runs != spec.runs ||
      result.spec.scenario != spec.scenario) {
    ++stats_.corrupt;
    return std::nullopt;
  }

  ++stats_.hits;
  // LRU re-touch: the authoritative order is the monotonic counter (mtime
  // has 1 s granularity on some filesystems, which let a hit tie with a
  // cold store and lose to the path tie-break); the mtime refresh stays as
  // the fallback signal for entries handled by older builds.
  touch_locked(path.string());
  std::error_code ec;
  fs::last_write_time(path, fs::file_time_type::clock::now(), ec);
  return result;
}

bool CampaignCellCache::store(const experiments::CampaignSpec& spec,
                              const experiments::CampaignResult& result) {
  RT_TRACE_SPAN("cache_store", "cache");
  std::lock_guard<std::mutex> lock(mutex_);
  StatsMirror mirror(stats_);
  const std::uint64_t fp =
      campaign_cell_fingerprint(spec, config_.code_version);
  const fs::path path =
      fs::path(config_.dir) / ("cell_" + fingerprint_hex(fp) + ".rtcr");
  const fs::path tmp = path.string() + ".tmp";

  const std::string payload = experiments::serialize_campaign_result(result);
  std::string blob = std::string(kCacheMagic) + ' ' +
                     std::to_string(kCacheHeaderVersion) + ' ' +
                     std::to_string(config_.code_version) + ' ' +
                     fingerprint_hex(fp) + ' ' +
                     fingerprint_hex(content_checksum(payload)) + '\n';
  blob += payload;

  // Crash-durable store: write the temp file, fsync IT, then rename over
  // the final name, then (best effort) fsync the directory so the rename
  // itself survives a power cut. Any failure declines the store — the tmp
  // file is removed, the previous entry (if any) is untouched.
  const auto decline = [&](int fd) {
    if (fd >= 0) ::close(fd);
    std::error_code ec;
    fs::remove(tmp, ec);
    ++stats_.io_errors;
    return false;
  };
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return decline(-1);
  if (!write_all_fd(FaultSite::kCacheWrite, fd, blob.data(), blob.size())) {
    return decline(fd);
  }
  if (sys_fsync(FaultSite::kCacheFsync, fd) != 0) return decline(fd);
  if (::close(fd) != 0) return decline(-1);
  if (sys_rename(FaultSite::kCacheRename, tmp.c_str(), path.c_str()) != 0) {
    return decline(-1);
  }
  const int dirfd = ::open(config_.dir.c_str(), O_RDONLY);
  if (dirfd >= 0) {
    // Directory fsync is best-effort: some filesystems refuse it, and the
    // entry itself is already durable and complete either way.
    (void)sys_fsync(FaultSite::kCacheFsync, dirfd);
    ::close(dirfd);
  }
  ++stats_.stores;
  touch_locked(path.string());

  if (config_.max_bytes > 0) {
    stats_.evictions += evict_locked(config_.max_bytes);
  }
  return true;
}

std::size_t CampaignCellCache::evict_to_limit(std::size_t limit_bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  StatsMirror mirror(stats_);
  const std::size_t removed = evict_locked(limit_bytes);
  stats_.evictions += removed;
  return removed;
}

std::size_t CampaignCellCache::evict_to_limit() {
  return config_.max_bytes > 0 ? evict_to_limit(config_.max_bytes) : 0;
}

std::size_t CampaignCellCache::evict_locked(std::size_t limit_bytes) {
  struct Entry {
    std::uint64_t touch;  ///< 0 = no counter, order by mtime
    fs::file_time_type mtime;
    std::uintmax_t size;
    fs::path path;
  };
  std::vector<Entry> entries;
  std::uintmax_t total = 0;
  std::error_code ec;
  for (const auto& de : fs::directory_iterator(config_.dir, ec)) {
    const std::string fname = de.path().filename().string();
    if (fname.rfind("cell_", 0) != 0 ||
        de.path().extension() != ".rtcr") {
      continue;
    }
    std::error_code fec;
    const auto size = fs::file_size(de.path(), fec);
    const auto mtime = fs::last_write_time(de.path(), fec);
    if (fec) continue;
    total += size;
    entries.push_back({read_touch(de.path()), mtime, size, de.path()});
  }
  if (total <= limit_bytes) return 0;

  // Oldest access first. Primary key: the monotonic touch counter (every
  // store and every hit bumps it), immune to the 1 s mtime granularity that
  // used to let a just-hit entry tie with — and evict before — a cold one.
  // Counterless entries sort first among themselves by mtime; path is the
  // final deterministic tie-break.
  std::sort(entries.begin(), entries.end(), [](const Entry& a,
                                               const Entry& b) {
    if (a.touch != b.touch) return a.touch < b.touch;
    if (a.mtime != b.mtime) return a.mtime < b.mtime;
    return a.path < b.path;
  });
  std::size_t removed = 0;
  for (const Entry& e : entries) {
    if (total <= limit_bytes) break;
    std::error_code rec;
    if (fs::remove(e.path, rec)) {
      total -= e.size;
      ++removed;
      fs::remove(touch_sidecar(e.path), rec);  // evicted entry's sidecar too
    }
  }
  return removed;
}

CacheStats CampaignCellCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace rt::service
