#pragma once

#include <poll.h>
#include <sys/types.h>

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace rt::service {

/// Injection sites: every syscall boundary the service layer crosses. Each
/// site has its own operation counter, so a fault schedule names exactly
/// which operation of which site it hits.
enum class FaultSite : std::uint8_t {
  kPipeWrite = 0,  ///< worker streaming a result frame to the parent
  kPipeRead,       ///< parent reading a worker pipe
  kPipePoll,       ///< parent polling a worker pipe
  kFork,           ///< forking a shard worker
  kCacheWrite,     ///< cache store writing the tmp entry
  kCacheFsync,     ///< cache store fsyncing the tmp entry
  kCacheRename,    ///< cache store tmp -> final rename
  kCacheRead,      ///< cache lookup reading an entry
  kClientWrite,    ///< server writing a response to a client
};
inline constexpr std::size_t kFaultSiteCount = 9;
[[nodiscard]] const char* to_string(FaultSite site);

/// The fault taxonomy. Which types are meaningful depends on the site (the
/// chaos suite enumerates the valid pairs); an inapplicable type at a site
/// simply never fires.
enum class FaultType : std::uint8_t {
  kNone = 0,
  kShortWrite,     ///< write consumes only a prefix of the buffer
  kEintr,          ///< op fails with EINTR (storms arise from the schedule)
  kIoError,        ///< op fails with EIO
  kForkEagain,     ///< fork fails with EAGAIN
  kHang,           ///< op blocks forever (until the peer's timeout kills us)
  kTruncateFrame,  ///< a prefix is written, then the op fails with EPIPE
  kCorruptFrame,   ///< one byte of the buffer is flipped before writing
  kEnospc,         ///< op fails with ENOSPC
  kDisconnect,     ///< op fails with EPIPE (peer vanished)
};
[[nodiscard]] const char* to_string(FaultType type);

/// One armed fault: `type` fires at `site` for operations n >= skip_ops,
/// each with probability `rate` (1.0 = always), at most `max_faults` times
/// (-1 = unlimited). Whether operation n faults is a pure function of
/// (plan seed, site, worker id, rule index, n) — see FaultInjector.
struct FaultRule {
  FaultSite site{FaultSite::kPipeWrite};
  FaultType type{FaultType::kNone};
  double rate{1.0};
  int max_faults{-1};
  int skip_ops{0};
};

struct FaultPlan {
  std::uint64_t seed{0};
  std::vector<FaultRule> rules{};
};

/// What `FaultInjector::next` decided for one operation.
struct FaultDecision {
  FaultType type{FaultType::kNone};
  std::uint64_t op{0};  ///< the operation's index at its site
};

/// Process-wide deterministic fault injector.
///
/// Every instrumented syscall wrapper (the `sys_*` shims below) asks
/// `next(site)` before touching the kernel. The answer for the site's n-th
/// operation is a pure, counter-based function of (plan seed, site, worker
/// id, rule index, n) via `stats::Rng::from_stream` — the same idiom the
/// campaign RNG uses — so a chaos run's fault sequence is bit-reproducible:
/// the same seed injects the same faults at the same operations, every run,
/// regardless of wall-clock timing. Forked workers inherit the armed plan;
/// `set_worker` folds the (deterministic) shard id into the stream so
/// distinct workers draw distinct schedules.
///
/// Disarmed (the default), every shim is a single relaxed atomic load away
/// from the raw syscall.
class FaultInjector {
 public:
  static FaultInjector& instance();

  /// Arms `plan` and zeroes all per-site counters.
  void arm(FaultPlan plan);
  void disarm();
  [[nodiscard]] bool armed() const {
    return armed_.load(std::memory_order_acquire);
  }

  /// Arms from the RT_CHAOS environment variable when set (format:
  /// `seed=7 site=client-write type=disconnect rate=0.5 max=4 skip=0`;
  /// site and type use the to_string names). Returns true when armed.
  bool arm_from_env(const char* var = "RT_CHAOS");

  /// Folds a deterministic worker id into the schedule stream (called by
  /// forked shard workers with their shard id, which is itself a pure
  /// function of the grid and worker count).
  void set_worker(std::uint64_t worker) {
    worker_.store(worker, std::memory_order_relaxed);
  }

  /// Decision for the next operation at `site`; advances the site counter.
  FaultDecision next(FaultSite site);

  /// Operations observed / faults injected at `site` since arm().
  [[nodiscard]] std::uint64_t ops(FaultSite site) const;
  [[nodiscard]] std::uint64_t injected(FaultSite site) const;
  /// Total faults injected across all sites since arm().
  [[nodiscard]] std::uint64_t injected_total() const;

 private:
  FaultInjector() = default;

  std::atomic<bool> armed_{false};
  std::atomic<std::uint64_t> worker_{0};
  FaultPlan plan_{};
  std::array<std::atomic<std::uint64_t>, kFaultSiteCount> ops_{};
  std::array<std::atomic<std::uint64_t>, kFaultSiteCount> injected_{};
};

/// RAII arming for tests: arms on construction, disarms on destruction.
struct ArmedFaults {
  explicit ArmedFaults(FaultPlan plan) {
    FaultInjector::instance().arm(std::move(plan));
  }
  ~ArmedFaults() { FaultInjector::instance().disarm(); }
  ArmedFaults(const ArmedFaults&) = delete;
  ArmedFaults& operator=(const ArmedFaults&) = delete;
};

// Syscall shims: identical to the raw calls when the injector is disarmed,
// and the only way service code is allowed to touch these syscalls.
ssize_t sys_read(FaultSite site, int fd, void* buf, std::size_t len);
ssize_t sys_write(FaultSite site, int fd, const void* buf, std::size_t len);
int sys_poll(FaultSite site, struct pollfd* fds, nfds_t n, int timeout_ms);
pid_t sys_fork();
int sys_fsync(FaultSite site, int fd);
int sys_rename(FaultSite site, const char* from, const char* to);

/// Writes all of [data, data+len) through sys_write, absorbing EINTR and
/// short writes. Returns false on any other error (errno preserved).
bool write_all_fd(FaultSite site, int fd, const void* data, std::size_t len);

}  // namespace rt::service
