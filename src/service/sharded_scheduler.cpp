#include "service/sharded_scheduler.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "experiments/campaign_serde.hpp"
#include "runtime/thread_pool.hpp"

namespace rt::service {

namespace {

using experiments::CampaignResult;
using experiments::CampaignRunner;
using experiments::CampaignSpec;
using experiments::GridCell;

constexpr std::uint64_t kFrameMagic = 0x52542d43454c4c31ull;  // "RT-CELL1"
/// A RunResult frame is a few KB; anything near this is stream corruption.
constexpr std::uint64_t kMaxFramePayload = 1ull << 30;

bool write_all(int fd, const void* data, std::size_t len) {
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// Reads exactly `len` bytes, polling (with timeout) before every read.
/// Returns 1 on a full read, 0 on clean EOF at the first byte (nothing
/// read), -1 on error, timeout, or EOF mid-buffer (a truncated frame).
int read_exact(int fd, void* data, std::size_t len, int timeout_ms) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got < len) {
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (pr == 0) return -1;  // worker silent past the timeout
    const ssize_t n = ::read(fd, p + got, len - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) return got == 0 ? 0 : -1;
    got += static_cast<std::size_t>(n);
  }
  return 1;
}

struct Frame {
  std::uint64_t cell{0};
  std::string payload;
};

/// Same return convention as read_exact.
int read_frame(int fd, int timeout_ms, Frame& out) {
  std::uint64_t header[3] = {0, 0, 0};
  const int hr = read_exact(fd, header, sizeof header, timeout_ms);
  if (hr <= 0) return hr;
  if (header[0] != kFrameMagic || header[2] > kMaxFramePayload) return -1;
  out.cell = header[1];
  out.payload.resize(static_cast<std::size_t>(header[2]));
  if (!out.payload.empty() &&
      read_exact(fd, out.payload.data(), out.payload.size(), timeout_ms) !=
          1) {
    return -1;
  }
  return 1;
}

void write_frame(int fd, std::uint64_t cell, const std::string& payload,
                 bool& ok) {
  if (!ok) return;
  const std::uint64_t header[3] = {kFrameMagic, cell, payload.size()};
  ok = write_all(fd, header, sizeof header) &&
       write_all(fd, payload.data(), payload.size());
}

}  // namespace

ShardedCampaignScheduler::ShardedCampaignScheduler(
    const CampaignRunner& runner, ShardOptions opts)
    : runner_(runner), opts_(opts) {}

std::vector<CampaignResult> ShardedCampaignScheduler::run_all(
    const std::vector<CampaignSpec>& specs) const {
  stats_ = ShardStats{};
  std::vector<CampaignResult> results(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    results[i].spec = specs[i];
    results[i].runs.resize(
        static_cast<std::size_t>(std::max(specs[i].runs, 0)));
  }
  const std::vector<GridCell> cells = experiments::grid_cells(specs);
  if (cells.empty()) return results;

  unsigned workers = opts_.workers == 0
                         ? runtime::ThreadPool::default_threads()
                         : opts_.workers;
  workers = std::max(
      1u, std::min(workers, static_cast<unsigned>(cells.size())));
  stats_.workers = workers;

  std::vector<char> filled(cells.size(), 0);
  const auto fill = [&](std::size_t cell_index, experiments::RunResult rr) {
    const GridCell& c = cells[cell_index];
    results[c.spec].runs[static_cast<std::size_t>(c.run)] = std::move(rr);
    filled[cell_index] = 1;
  };

  // Worker body: run the assigned cells, stream one frame per finished
  // cell, then _exit (no atexit/flush: nothing in the parent's state may be
  // touched). Never returns.
  const auto child_main = [&](const std::vector<std::size_t>& indices,
                              int wfd, int crash_after) {
    bool ok = true;
    int sent = 0;
    try {
      experiments::run_cells(
          runner_, specs, cells, indices,
          [&](std::size_t cell_index, const experiments::RunResult& run) {
            if (crash_after >= 0 && sent == crash_after) ::_exit(42);
            write_frame(wfd, cell_index,
                        experiments::serialize_run_result(run), ok);
            ++sent;
          });
    } catch (...) {
      ::_exit(3);
    }
    ::close(wfd);
    ::_exit(ok ? 0 : 4);
  };

  // Forks one worker per shard and drains the pipes sequentially. All
  // pipes are created before the first fork, and each child closes every
  // descriptor except its own write end — otherwise a sibling's surviving
  // write-end copy would keep a dead worker's pipe from ever reaching EOF.
  // The sequential drain cannot deadlock: an undrained worker blocked on
  // pipe backpressure is merely paused, and its turn always comes.
  const auto run_wave = [&](const std::vector<std::vector<std::size_t>>&
                                shards,
                            bool allow_crash_hook) {
    const std::size_t n = shards.size();
    std::vector<int> rfds(n, -1);
    std::vector<int> wfds(n, -1);
    std::vector<pid_t> pids(n, -1);
    for (std::size_t s = 0; s < n; ++s) {
      int fds[2];
      if (::pipe(fds) == 0) {
        rfds[s] = fds[0];
        wfds[s] = fds[1];
      }
    }
    for (std::size_t s = 0; s < n; ++s) {
      if (wfds[s] < 0) continue;  // pipe() failed: shard handled as dead
      const pid_t pid = ::fork();
      if (pid < 0) continue;  // fork() failed: likewise
      if (pid == 0) {
        for (std::size_t t = 0; t < n; ++t) {
          if (rfds[t] >= 0) ::close(rfds[t]);
          if (t != s && wfds[t] >= 0) ::close(wfds[t]);
        }
        const int crash_after =
            (allow_crash_hook && static_cast<int>(s) == opts_.crash_shard)
                ? opts_.crash_after_cells
                : -1;
        child_main(shards[s], wfds[s], crash_after);
      }
      pids[s] = pid;
    }
    for (std::size_t s = 0; s < n; ++s) {
      if (wfds[s] >= 0) ::close(wfds[s]);
    }
    for (std::size_t s = 0; s < n; ++s) {
      bool dead = pids[s] < 0;
      if (!dead) {
        while (true) {
          Frame f;
          const int fr = read_frame(rfds[s], opts_.read_timeout_ms, f);
          if (fr == 0) break;  // clean EOF: worker finished its stream
          if (fr < 0) {
            dead = true;
            break;
          }
          if (f.cell >= cells.size() || filled[f.cell]) {
            dead = true;  // out-of-range or duplicate cell: corrupt stream
            break;
          }
          try {
            fill(f.cell, experiments::deserialize_run_result(f.payload));
          } catch (const experiments::SerdeError&) {
            dead = true;
            break;
          }
        }
      }
      if (rfds[s] >= 0) ::close(rfds[s]);
      if (pids[s] >= 0) {
        if (dead) ::kill(pids[s], SIGKILL);
        int status = 0;
        while (::waitpid(pids[s], &status, 0) < 0 && errno == EINTR) {
        }
        if (!dead && !(WIFEXITED(status) && WEXITSTATUS(status) == 0)) {
          dead = true;
        }
      }
      if (dead) ++stats_.worker_deaths;
    }
  };

  // First wave: contiguous [size*s/W, size*(s+1)/W) shards over the cell
  // list. Any partition yields identical results; contiguous ranges keep
  // each worker's cells mostly within one spec (cache-friendly configs).
  std::vector<std::vector<std::size_t>> shards(workers);
  for (unsigned s = 0; s < workers; ++s) {
    const std::size_t begin = cells.size() * s / workers;
    const std::size_t end = cells.size() * (s + 1) / workers;
    for (std::size_t i = begin; i < end; ++i) shards[s].push_back(i);
  }
  run_wave(shards, /*allow_crash_hook=*/true);

  // Shard retries: everything still missing goes to one recovery worker
  // per attempt (the crash hook never fires on retries).
  for (int attempt = 0; attempt < opts_.max_retries; ++attempt) {
    std::vector<std::size_t> missing;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (!filled[i]) missing.push_back(i);
    }
    if (missing.empty()) break;
    ++stats_.shard_retries;
    run_wave({std::move(missing)}, /*allow_crash_hook=*/false);
  }

  // Last resort: the parent runs whatever is still missing itself, so
  // run_all always returns a complete (and still bit-identical) grid.
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!filled[i]) missing.push_back(i);
  }
  if (!missing.empty()) {
    stats_.cells_recovered_in_process += static_cast<int>(missing.size());
    experiments::run_cells(
        runner_, specs, cells, missing,
        [&](std::size_t cell_index, const experiments::RunResult& run) {
          fill(cell_index, run);
        });
  }
  return results;
}

}  // namespace rt::service
