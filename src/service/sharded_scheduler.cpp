#include "service/sharded_scheduler.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstddef>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "experiments/campaign_serde.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"
#include "service/fault_injection.hpp"
#include "stats/hash.hpp"

namespace rt::service {

namespace {

using experiments::CampaignError;
using experiments::CampaignErrorCode;
using experiments::CampaignResult;
using experiments::CampaignRunner;
using experiments::CampaignSpec;
using experiments::GridCell;

using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kFrameMagic = 0x52542d43454c4c32ull;  // "RT-CELL2"
/// A RunResult frame is a few KB; anything near this is stream corruption.
constexpr std::uint64_t kMaxFramePayload = 1ull << 30;
/// Sentinel cell index for the one trailing frame a worker sends when the
/// tracer is armed: its payload is the worker's serialized span buffers,
/// not a RunResult. Cell indices are bounded by the grid size, so the
/// sentinel can never collide with a real cell.
constexpr std::uint64_t kTraceFrameCell = ~0ull;

/// Registry mirror of ShardStats, accumulated across every grid this
/// process runs. The chaos pass in bench/table_service asserts on these
/// instead of scraping stderr text.
struct ShardCounters {
  obs::Counter waves;
  obs::Counter worker_deaths;
  obs::Counter retry_waves;
  obs::Counter fork_failures;
  obs::Counter cells_recovered;
  obs::Counter deadline_expirations;
};

const ShardCounters& shard_counters() {
  static const ShardCounters c = [] {
    auto& reg = obs::MetricsRegistry::global();
    return ShardCounters{
        reg.counter("rt_shard_waves_total",
                    "Fork waves launched (first wave + retries)"),
        reg.counter("rt_shard_worker_deaths_total",
                    "Forked workers that died or corrupted their stream"),
        reg.counter("rt_shard_retry_waves_total",
                    "Recovery waves forked after worker deaths"),
        reg.counter("rt_shard_fork_failures_total",
                    "fork()/pipe() failures absorbed by degradation"),
        reg.counter("rt_shard_cells_recovered_in_process_total",
                    "Cells recovered by the threaded in-process fallback"),
        reg.counter("rt_shard_deadline_expirations_total",
                    "Grids cut short by a request deadline")};
  }();
  return c;
}

std::uint64_t payload_checksum(const std::string& payload) {
  return stats::fnv1a_str(stats::kFnv1aOffset, payload);
}

/// Milliseconds until `t`, clamped to [0, ~2^30].
int ms_until(Clock::time_point t) {
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      t - Clock::now())
                      .count();
  if (ms <= 0) return 0;
  return static_cast<int>(std::min<long long>(ms, 1ll << 30));
}

bool expired(const RunControl& ctl) {
  return ctl.deadline && Clock::now() >= *ctl.deadline;
}

void sleep_ms(int ms) {
  struct timespec ts {};
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = static_cast<long>(ms % 1000) * 1000000L;
  while (::nanosleep(&ts, &ts) != 0 && errno == EINTR) {
  }
}

/// Reads exactly `len` bytes, polling before every read. The whole call
/// shares ONE `timeout_ms` budget (an EINTR storm retries but cannot extend
/// it), further clamped by the request deadline when one is set. Returns 1
/// on a full read, 0 on clean EOF at the first byte (nothing read), -1 on
/// error, timeout, deadline, or EOF mid-buffer (a truncated frame).
int read_exact(int fd, void* data, std::size_t len, int timeout_ms,
               const RunControl& ctl) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  const Clock::time_point budget_end =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (got < len) {
    Clock::time_point wait_end = budget_end;
    if (ctl.deadline && *ctl.deadline < wait_end) wait_end = *ctl.deadline;
    const int remaining = ms_until(wait_end);
    if (remaining <= 0) return -1;
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int pr = sys_poll(FaultSite::kPipePoll, &pfd, 1, remaining);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (pr == 0) return -1;  // worker silent past the timeout / deadline
    const ssize_t n = sys_read(FaultSite::kPipeRead, fd, p + got, len - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    if (n == 0) return got == 0 ? 0 : -1;
    got += static_cast<std::size_t>(n);
  }
  return 1;
}

struct Frame {
  std::uint64_t cell{0};
  std::string payload;
};

/// Same return convention as read_exact. Header: {magic, cell index,
/// payload length, payload FNV-1a}. The checksum is what turns a corrupted
/// pipe byte from silent result corruption into a detected worker death
/// (and thus a re-run of the affected cells).
int read_frame(int fd, int timeout_ms, const RunControl& ctl, Frame& out) {
  std::uint64_t header[4] = {0, 0, 0, 0};
  const int hr = read_exact(fd, header, sizeof header, timeout_ms, ctl);
  if (hr <= 0) return hr;
  if (header[0] != kFrameMagic || header[2] > kMaxFramePayload) return -1;
  out.cell = header[1];
  out.payload.resize(static_cast<std::size_t>(header[2]));
  if (!out.payload.empty() &&
      read_exact(fd, out.payload.data(), out.payload.size(), timeout_ms,
                 ctl) != 1) {
    return -1;
  }
  if (payload_checksum(out.payload) != header[3]) return -1;
  return 1;
}

void write_frame(int fd, std::uint64_t cell, const std::string& payload,
                 bool& ok) {
  if (!ok) return;
  const std::uint64_t header[4] = {kFrameMagic, cell, payload.size(),
                                   payload_checksum(payload)};
  ok = write_all_fd(FaultSite::kPipeWrite, fd, header, sizeof header) &&
       write_all_fd(FaultSite::kPipeWrite, fd, payload.data(),
                    payload.size());
}

const char* exception_message(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "unknown exception";
  }
}

}  // namespace

ShardedCampaignScheduler::ShardedCampaignScheduler(
    const CampaignRunner& runner, ShardOptions opts)
    : runner_(runner), opts_(opts) {}

GridOutcome ShardedCampaignScheduler::run_all_checked(
    const std::vector<CampaignSpec>& specs, const RunControl& ctl) const {
  stats_ = ShardStats{};
  GridOutcome out;
  out.results.resize(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    out.results[i].spec = specs[i];
    out.results[i].runs.resize(
        static_cast<std::size_t>(std::max(specs[i].runs, 0)));
  }
  const std::vector<GridCell> cells = experiments::grid_cells(specs);
  if (cells.empty()) return out;

  unsigned workers = opts_.workers == 0
                         ? runtime::ThreadPool::default_threads()
                         : opts_.workers;
  workers = std::max(
      1u, std::min(workers, static_cast<unsigned>(cells.size())));
  stats_.workers = workers;

  std::vector<char> filled(cells.size(), 0);
  const auto fill = [&](std::size_t cell_index, experiments::RunResult rr) {
    const GridCell& c = cells[cell_index];
    out.results[c.spec].runs[static_cast<std::size_t>(c.run)] =
        std::move(rr);
    filled[cell_index] = 1;
  };

  // Deterministic worker ids (fork order), folded into the fault-injection
  // schedule stream so distinct workers draw distinct — but reproducible —
  // fault sequences.
  std::uint64_t worker_seq = 0;

  // Worker body: run the assigned cells, stream one frame per finished
  // cell, then _exit (no atexit/flush: nothing in the parent's state may be
  // touched). Never returns.
  const auto child_main = [&](const std::vector<std::size_t>& indices,
                              int wfd, int crash_after,
                              std::uint64_t worker_id) {
    FaultInjector::instance().set_worker(worker_id);
    // fork() duplicated the parent's span buffers; drop them or this
    // worker would ship the parent's pre-fork spans back as its own.
    obs::Tracer::global().clear();
    const std::uint64_t span_start = obs::Tracer::now_ns();
    bool ok = true;
    int sent = 0;
    try {
      experiments::run_cells(
          runner_, specs, cells, indices,
          [&](std::size_t cell_index, const experiments::RunResult& run) {
            if (crash_after >= 0 && sent == crash_after) ::_exit(42);
            write_frame(wfd, cell_index,
                        experiments::serialize_run_result(run), ok);
            ++sent;
          });
    } catch (...) {
      ::_exit(3);
    }
    if (obs::Tracer::global().armed()) {
      // One trailing sentinel frame carries this worker's span buffers to
      // the parent. A worker that dies mid-stream simply never sends it —
      // its spans are lost, its results re-run; observation stays passive.
      obs::record_span("shard_worker", "shard", span_start,
                       obs::Tracer::now_ns(), worker_id, "worker");
      write_frame(wfd, kTraceFrameCell,
                  obs::Tracer::global().serialize_and_clear(), ok);
    }
    ::close(wfd);
    ::_exit(ok ? 0 : 4);
  };

  // Forks one worker per shard and drains the pipes sequentially. All
  // pipes are created before the first fork, and each child closes every
  // descriptor except its own write end — otherwise a sibling's surviving
  // write-end copy would keep a dead worker's pipe from ever reaching EOF.
  // The sequential drain cannot deadlock: an undrained worker blocked on
  // pipe backpressure is merely paused, and its turn always comes. A
  // deadline expiry mid-drain kills every remaining worker instead of
  // waiting out its stream.
  const auto run_wave = [&](const std::vector<std::vector<std::size_t>>&
                                shards,
                            bool allow_crash_hook) {
    RT_TRACE_SPAN("shard_wave", "shard",
                  static_cast<std::uint64_t>(shards.size()), "shards");
    shard_counters().waves.inc();
    const std::size_t n = shards.size();
    std::vector<int> rfds(n, -1);
    std::vector<int> wfds(n, -1);
    std::vector<pid_t> pids(n, -1);
    std::vector<std::uint64_t> wids(n, 0);
    for (std::size_t s = 0; s < n; ++s) {
      int fds[2];
      if (::pipe(fds) == 0) {
        rfds[s] = fds[0];
        wfds[s] = fds[1];
      }
    }
    for (std::size_t s = 0; s < n; ++s) {
      if (wfds[s] < 0) continue;  // pipe() failed: shard handled as dead
      const std::uint64_t worker_id = ++worker_seq;
      wids[s] = worker_id;
      const pid_t pid = sys_fork();
      if (pid < 0) {
        // fork() failed (EAGAIN under pressure): shard handled as dead;
        // the retry waves (with backoff) and the threaded in-process
        // fallback below are the degradation path.
        ++stats_.fork_failures;
        continue;
      }
      if (pid == 0) {
        for (std::size_t t = 0; t < n; ++t) {
          if (rfds[t] >= 0) ::close(rfds[t]);
          if (t != s && wfds[t] >= 0) ::close(wfds[t]);
        }
        const int crash_after =
            (allow_crash_hook && static_cast<int>(s) == opts_.crash_shard)
                ? opts_.crash_after_cells
                : -1;
        child_main(shards[s], wfds[s], crash_after, worker_id);
      }
      pids[s] = pid;
    }
    for (std::size_t s = 0; s < n; ++s) {
      if (wfds[s] >= 0) ::close(wfds[s]);
    }
    for (std::size_t s = 0; s < n; ++s) {
      bool dead = pids[s] < 0;
      if (!dead) {
        RT_TRACE_SPAN("shard_drain", "shard", wids[s], "worker");
        while (true) {
          if (expired(ctl)) {
            stats_.deadline_expired = true;
            dead = true;
            break;
          }
          Frame f;
          const int fr = read_frame(rfds[s], opts_.read_timeout_ms, ctl, f);
          if (fr == 0) break;  // clean EOF: worker finished its stream
          if (fr < 0) {
            dead = true;
            break;
          }
          if (f.cell == kTraceFrameCell) {
            // The worker's span buffers. Absorption is strict but failure
            // is absorbed observability-side (counted on the tracer) —
            // a bad trace frame must never invalidate good results.
            obs::Tracer::global().absorb(f.payload, wids[s]);
            continue;
          }
          if (f.cell >= cells.size() || filled[f.cell]) {
            dead = true;  // out-of-range or duplicate cell: corrupt stream
            break;
          }
          try {
            fill(f.cell, experiments::deserialize_run_result(f.payload));
          } catch (const experiments::SerdeError&) {
            dead = true;
            break;
          }
        }
      }
      if (rfds[s] >= 0) ::close(rfds[s]);
      if (pids[s] >= 0) {
        if (dead) ::kill(pids[s], SIGKILL);
        int status = 0;
        while (::waitpid(pids[s], &status, 0) < 0 && errno == EINTR) {
        }
        if (!dead && !(WIFEXITED(status) && WEXITSTATUS(status) == 0)) {
          dead = true;
        }
      }
      if (dead) ++stats_.worker_deaths;
    }
  };

  // First wave: contiguous [size*s/W, size*(s+1)/W) shards over the cell
  // list. Any partition yields identical results; contiguous ranges keep
  // each worker's cells mostly within one spec (cache-friendly configs).
  std::vector<std::vector<std::size_t>> shards(workers);
  for (unsigned s = 0; s < workers; ++s) {
    const std::size_t begin = cells.size() * s / workers;
    const std::size_t end = cells.size() * (s + 1) / workers;
    for (std::size_t i = begin; i < end; ++i) shards[s].push_back(i);
  }
  run_wave(shards, /*allow_crash_hook=*/true);

  // Shard retries: everything still missing goes to one recovery worker
  // per attempt (the crash hook never fires on retries), after a capped
  // exponential backoff — a worker killed by resource pressure gets
  // breathing room instead of an immediate re-fork into the same pressure.
  for (int attempt = 0; attempt < opts_.max_retries; ++attempt) {
    std::vector<std::size_t> missing;
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (!filled[i]) missing.push_back(i);
    }
    if (missing.empty()) break;
    if (expired(ctl)) break;
    int backoff = opts_.retry_backoff_ms > 0
                      ? std::min(opts_.retry_backoff_ms << attempt,
                                 opts_.retry_backoff_max_ms)
                      : 0;
    if (ctl.deadline) backoff = std::min(backoff, ms_until(*ctl.deadline));
    if (backoff > 0) sleep_ms(backoff);
    if (expired(ctl)) break;
    ++stats_.shard_retries;
    RT_TRACE_SPAN("shard_retry_wave", "shard",
                  static_cast<std::uint64_t>(attempt) + 1, "attempt");
    run_wave({std::move(missing)}, /*allow_crash_hook=*/false);
  }

  // Last resort: the parent runs whatever is still missing itself, fanned
  // over a thread pool (so total fork failure degrades to threaded, not
  // serial, execution). Each cell writes its pre-assigned slot, so the
  // results are still bit-identical; a cell that throws or misses the
  // deadline stays unfilled and becomes a typed error below.
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!filled[i]) missing.push_back(i);
  }
  if (!missing.empty() && !expired(ctl)) {
    RT_TRACE_SPAN("shard_fallback", "shard",
                  static_cast<std::uint64_t>(missing.size()), "cells");
    stats_.cells_recovered_in_process += static_cast<int>(missing.size());
    unsigned threads = opts_.fallback_threads == 0 ? workers
                                                   : opts_.fallback_threads;
    threads = std::max(
        1u, std::min(threads, static_cast<unsigned>(missing.size())));
    stats_.fallback_threads = threads;
    std::mutex failure_mutex;
    runtime::ThreadPool pool(threads);
    pool.parallel_for(static_cast<int>(missing.size()), [&](int i) {
      const std::size_t ci = missing[static_cast<std::size_t>(i)];
      if (expired(ctl)) return;  // cancel cleanly at the cell boundary
      try {
        const GridCell& c = cells[ci];
        experiments::RunResult rr = runner_.run_one(specs[c.spec], c.run);
        fill(ci, std::move(rr));  // distinct slot per cell: no lock needed
      } catch (...) {
        std::lock_guard<std::mutex> lock(failure_mutex);
        if (!out.first_failure) out.first_failure = std::current_exception();
      }
    });
  }
  if (expired(ctl)) stats_.deadline_expired = true;

  // Mirror this grid's ShardStats into the process-wide registry (the
  // wave counter is bumped live inside run_wave). Forked workers keep
  // their metric increments to themselves — only their trace buffers are
  // shipped back — so registry counts are parent-process events, matching
  // FaultInjector::injected_total() semantics.
  {
    const ShardCounters& c = shard_counters();
    if (stats_.worker_deaths > 0) c.worker_deaths.inc(stats_.worker_deaths);
    if (stats_.shard_retries > 0) c.retry_waves.inc(stats_.shard_retries);
    if (stats_.fork_failures > 0) c.fork_failures.inc(stats_.fork_failures);
    if (stats_.cells_recovered_in_process > 0) {
      c.cells_recovered.inc(
          static_cast<std::uint64_t>(stats_.cells_recovered_in_process));
    }
    if (stats_.deadline_expired) c.deadline_expirations.inc();
  }

  // Typed per-campaign error records for anything incomplete. An errored
  // campaign's runs are cleared: a result is complete or absent, never
  // silently partial (zero-filled RunResults would parse as real data).
  std::vector<int> spec_missing(specs.size(), 0);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!filled[i]) ++spec_missing[cells[i].spec];
  }
  for (std::size_t s = 0; s < specs.size(); ++s) {
    if (spec_missing[s] == 0) continue;
    const std::size_t total = out.results[s].runs.size();
    out.results[s].runs.clear();
    CampaignError err;
    err.spec_index = s;
    if (stats_.deadline_expired) {
      err.code = CampaignErrorCode::kDeadlineExceeded;
      err.message = "deadline expired with " +
                    std::to_string(spec_missing[s]) + "/" +
                    std::to_string(total) + " cells missing";
    } else {
      err.code = CampaignErrorCode::kExecutionFailed;
      err.message = out.first_failure
                        ? exception_message(out.first_failure)
                        : "cells missing after retries";
    }
    out.errors.push_back(std::move(err));
  }
  return out;
}

std::vector<CampaignResult> ShardedCampaignScheduler::run_all(
    const std::vector<CampaignSpec>& specs) const {
  GridOutcome out = run_all_checked(specs, RunControl{});
  // Preserve the historical contract: no deadline means the grid either
  // completes in full or the first underlying failure propagates.
  if (out.first_failure) std::rethrow_exception(out.first_failure);
  return std::move(out.results);
}

}  // namespace rt::service
