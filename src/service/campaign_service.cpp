#include "service/campaign_service.hpp"

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <stdexcept>
#include <utility>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "runtime/thread_pool.hpp"

namespace rt::service {

using experiments::CampaignError;
using experiments::CampaignErrorCode;
using experiments::CampaignResult;
using experiments::CampaignSpec;
using experiments::GridCell;

namespace {

using Clock = obs::MonotonicClock::clock;

struct ServiceCounters {
  obs::Counter requests;
  obs::Counter spec_cache_hits;
  obs::Counter spec_errors;
};

const ServiceCounters& service_counters() {
  static const ServiceCounters c = [] {
    auto& reg = obs::MetricsRegistry::global();
    return ServiceCounters{
        reg.counter("rt_service_requests_total",
                    "Grid requests executed by CampaignService"),
        reg.counter("rt_service_spec_cache_hits_total",
                    "Request specs answered from the cell cache"),
        reg.counter("rt_service_spec_errors_total",
                    "Request specs that ended as typed errors")};
  }();
  return c;
}

bool expired(const RunControl& ctl) {
  return ctl.deadline && Clock::now() >= *ctl.deadline;
}

/// In-process (threaded) analogue of the sharder's run_all_checked, for
/// workers == 0: every cell into its pre-assigned slot, expiry skips cells
/// at the boundary, a throwing cell becomes a typed error instead of
/// unwinding the request.
GridOutcome run_threaded_checked(const experiments::CampaignRunner& runner,
                                 const std::vector<CampaignSpec>& specs,
                                 unsigned threads, const RunControl& ctl) {
  GridOutcome out;
  out.results.resize(specs.size());
  for (std::size_t i = 0; i < specs.size(); ++i) {
    out.results[i].spec = specs[i];
    out.results[i].runs.resize(
        static_cast<std::size_t>(std::max(specs[i].runs, 0)));
  }
  const std::vector<GridCell> cells = experiments::grid_cells(specs);
  std::vector<char> filled(cells.size(), 0);
  if (!cells.empty()) {
    std::mutex failure_mutex;
    runtime::ThreadPool pool(threads);
    pool.parallel_for(static_cast<int>(cells.size()), [&](int i) {
      if (expired(ctl)) return;
      const GridCell& c = cells[static_cast<std::size_t>(i)];
      try {
        out.results[c.spec].runs[static_cast<std::size_t>(c.run)] =
            runner.run_one(specs[c.spec], c.run);
        filled[static_cast<std::size_t>(i)] = 1;
      } catch (...) {
        std::lock_guard<std::mutex> lock(failure_mutex);
        if (!out.first_failure) out.first_failure = std::current_exception();
      }
    });
  }
  const bool deadline_expired = expired(ctl);
  std::vector<int> spec_missing(specs.size(), 0);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (!filled[i]) ++spec_missing[cells[i].spec];
  }
  for (std::size_t s = 0; s < specs.size(); ++s) {
    if (spec_missing[s] == 0) continue;
    const std::size_t total = out.results[s].runs.size();
    out.results[s].runs.clear();
    CampaignError err;
    err.spec_index = s;
    if (deadline_expired) {
      err.code = CampaignErrorCode::kDeadlineExceeded;
      err.message = "deadline expired with " +
                    std::to_string(spec_missing[s]) + "/" +
                    std::to_string(total) + " cells missing";
    } else {
      err.code = CampaignErrorCode::kExecutionFailed;
      err.message = "campaign run failed";
      if (out.first_failure) {
        try {
          std::rethrow_exception(out.first_failure);
        } catch (const std::exception& ex) {
          err.message = ex.what();
        } catch (...) {
        }
      }
    }
    out.errors.push_back(std::move(err));
  }
  return out;
}

}  // namespace

CampaignService::CampaignService(const experiments::CampaignRunner& runner,
                                 ServiceConfig config)
    : runner_(runner), config_(std::move(config)) {
  if (config_.cache) {
    cache_ = std::make_unique<CampaignCellCache>(*config_.cache);
  }
}

std::vector<CampaignResult> CampaignService::run_grid(
    const std::vector<CampaignSpec>& specs) {
  GridRequest request;
  request.specs = specs;
  GridResponse response = run_grid_checked(request);
  // Historical contract: an unbounded run_grid either completes in full or
  // throws. Without a deadline, errors always stem from a failure below.
  if (response.first_failure) std::rethrow_exception(response.first_failure);
  if (!response.errors.empty()) {
    throw std::runtime_error("CampaignService::run_grid: " +
                             response.errors.front().message);
  }
  return std::move(response.results);
}

GridResponse CampaignService::run_grid_checked(const GridRequest& request) {
  RT_TRACE_SPAN("grid_request", "service",
                static_cast<std::uint64_t>(request.specs.size()), "specs");
  service_counters().requests.inc();
  const auto t0 = obs::MonotonicClock::now();
  request_stats_ = RequestStats{};
  request_stats_.specs = request.specs.size();
  shard_stats_ = ShardStats{};

  RunControl ctl;
  if (request.deadline_ms > 0.0) {
    ctl.deadline = t0 + std::chrono::duration_cast<Clock::duration>(
                            std::chrono::duration<double, std::milli>(
                                request.deadline_ms));
  }

  GridResponse response;
  response.results.resize(request.specs.size());
  std::vector<std::size_t> miss_indices;
  std::vector<CampaignSpec> miss_specs;
  for (std::size_t i = 0; i < request.specs.size(); ++i) {
    if (cache_ && !cache_degraded_) {
      if (auto cached = cache_->lookup(request.specs[i])) {
        response.results[i] = std::move(*cached);
        ++request_stats_.cache_hits;
        continue;
      }
    }
    miss_indices.push_back(i);
    miss_specs.push_back(request.specs[i]);
  }

  if (!miss_specs.empty()) {
    GridOutcome outcome;
    if (config_.workers >= 1) {
      ShardOptions shard = config_.shard;
      shard.workers = config_.workers;
      const ShardedCampaignScheduler sharded(runner_, shard);
      outcome = sharded.run_all_checked(miss_specs, ctl);
      shard_stats_ = sharded.stats();
    } else {
      outcome = run_threaded_checked(runner_, miss_specs,
                                     config_.threads, ctl);
    }
    response.first_failure = outcome.first_failure;
    for (CampaignError& err : outcome.errors) {
      err.spec_index = miss_indices[err.spec_index];  // request indexing
      response.errors.push_back(std::move(err));
    }
    for (std::size_t m = 0; m < miss_indices.size(); ++m) {
      // Only complete campaigns are cached (an errored one has no runs and
      // must be re-executed next time, not recalled empty).
      const bool complete = !outcome.results[m].runs.empty() ||
                            miss_specs[m].runs <= 0;
      if (cache_ && !cache_degraded_ && complete) {
        if (cache_->store(miss_specs[m], outcome.results[m])) {
          cache_fail_streak_ = 0;
        } else if (++cache_fail_streak_ >= config_.cache_fail_threshold) {
          // Disk is persistently unhealthy: stop adding a failing write +
          // fsync to every future spec. Execution continues uncached.
          cache_degraded_ = true;
        }
      }
      response.results[miss_indices[m]] = std::move(outcome.results[m]);
    }
  }

  request_stats_.errors = response.errors.size();
  request_stats_.wall_ms =
      obs::MonotonicClock::ms_between(t0, obs::MonotonicClock::now());
  if (request_stats_.cache_hits > 0) {
    service_counters().spec_cache_hits.inc(request_stats_.cache_hits);
  }
  if (request_stats_.errors > 0) {
    service_counters().spec_errors.inc(request_stats_.errors);
  }
  return response;
}

CacheStats CampaignService::cache_stats() const {
  return cache_ ? cache_->stats() : CacheStats{};
}

experiments::GridExecutor CampaignService::executor() {
  return [this](const std::vector<CampaignSpec>& specs) {
    return run_grid(specs);
  };
}

}  // namespace rt::service
