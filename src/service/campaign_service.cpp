#include "service/campaign_service.hpp"

#include <chrono>
#include <cstddef>
#include <utility>

namespace rt::service {

using experiments::CampaignResult;
using experiments::CampaignSpec;

CampaignService::CampaignService(const experiments::CampaignRunner& runner,
                                 ServiceConfig config)
    : runner_(runner), config_(std::move(config)) {
  if (config_.cache) {
    cache_ = std::make_unique<CampaignCellCache>(*config_.cache);
  }
}

std::vector<CampaignResult> CampaignService::run_grid(
    const std::vector<CampaignSpec>& specs) {
  const auto t0 = std::chrono::steady_clock::now();
  request_stats_ = RequestStats{};
  request_stats_.specs = specs.size();
  shard_stats_ = ShardStats{};

  std::vector<CampaignResult> results(specs.size());
  std::vector<std::size_t> miss_indices;
  std::vector<CampaignSpec> miss_specs;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    if (cache_) {
      if (auto cached = cache_->lookup(specs[i])) {
        results[i] = std::move(*cached);
        ++request_stats_.cache_hits;
        continue;
      }
    }
    miss_indices.push_back(i);
    miss_specs.push_back(specs[i]);
  }

  if (!miss_specs.empty()) {
    std::vector<CampaignResult> fresh;
    if (config_.workers >= 1) {
      ShardOptions shard = config_.shard;
      shard.workers = config_.workers;
      const ShardedCampaignScheduler sharded(runner_, shard);
      fresh = sharded.run_all(miss_specs);
      shard_stats_ = sharded.stats();
    } else {
      const experiments::CampaignScheduler scheduler(runner_,
                                                     config_.threads);
      fresh = scheduler.run_all(miss_specs);
    }
    for (std::size_t m = 0; m < miss_indices.size(); ++m) {
      if (cache_) cache_->store(miss_specs[m], fresh[m]);
      results[miss_indices[m]] = std::move(fresh[m]);
    }
  }

  request_stats_.wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count();
  return results;
}

CacheStats CampaignService::cache_stats() const {
  return cache_ ? cache_->stats() : CacheStats{};
}

experiments::GridExecutor CampaignService::executor() {
  return [this](const std::vector<CampaignSpec>& specs) {
    return run_grid(specs);
  };
}

}  // namespace rt::service
