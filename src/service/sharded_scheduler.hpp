#pragma once

#include <cstdint>
#include <vector>

#include "experiments/campaign.hpp"

namespace rt::service {

/// Knobs of the multi-process sharder.
struct ShardOptions {
  /// Forked worker processes. Clamped to [1, cell count]; 0 = one worker
  /// per hardware core (runtime::ThreadPool::default_threads()).
  unsigned workers{2};
  /// Re-fork attempts per shard after a worker death before the parent
  /// falls back to running the shard's missing cells in-process (so a
  /// crashing worker degrades to a re-run, never a lost result or a hung
  /// parent).
  int max_retries{2};
  /// Per-read poll timeout on a worker pipe. A worker that goes silent for
  /// longer is declared dead (killed + reaped) and its shard retried.
  int read_timeout_ms{600000};
  /// Test hooks: the first-wave worker for shard `crash_shard` calls
  /// _exit(42) after streaming `crash_after_cells` results. Retries are
  /// never crashed, so the harness can prove death -> retry -> identical
  /// results. -1 = disabled.
  int crash_shard{-1};
  int crash_after_cells{0};
};

/// What a sharded run observed about its workers.
struct ShardStats {
  unsigned workers{0};          ///< workers actually forked in the first wave
  int worker_deaths{0};         ///< abnormal exits / truncated streams / timeouts
  int shard_retries{0};         ///< re-forked recovery workers
  int cells_recovered_in_process{0};  ///< cells the parent ran itself
};

/// Multi-process campaign grid execution: forks N workers over disjoint,
/// contiguous ranges of the grid's cell list (experiments::grid_cells),
/// each worker streaming one serialized RunResult frame per cell back over
/// a pipe, the parent merging frames into pre-assigned slots.
///
/// Because every run's randomness is a pure function of (spec.seed,
/// run_index) — the PR 1 counter-based contract — and doubles cross the
/// pipe as raw bit patterns, a sharded run is bit-identical to the
/// in-process CampaignScheduler at ANY worker count. Worker death (crash,
/// kill, truncated frame, silence past the timeout) is detected per shard;
/// the missing cells are re-forked up to `max_retries` times and finally
/// run in-process, so results are complete and identical even under
/// worker loss.
class ShardedCampaignScheduler {
 public:
  explicit ShardedCampaignScheduler(const experiments::CampaignRunner& runner,
                                    ShardOptions opts = {});

  /// Runs every spec to completion and returns results in spec order.
  [[nodiscard]] std::vector<experiments::CampaignResult> run_all(
      const std::vector<experiments::CampaignSpec>& specs) const;

  /// Stats of the most recent run_all.
  [[nodiscard]] const ShardStats& stats() const { return stats_; }

 private:
  const experiments::CampaignRunner& runner_;
  ShardOptions opts_;
  mutable ShardStats stats_;
};

}  // namespace rt::service
