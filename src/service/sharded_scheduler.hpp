#pragma once

#include <chrono>
#include <cstdint>
#include <exception>
#include <optional>
#include <vector>

#include "experiments/campaign.hpp"

namespace rt::service {

/// Knobs of the multi-process sharder.
struct ShardOptions {
  /// Forked worker processes. Clamped to [1, cell count]; 0 = one worker
  /// per hardware core (runtime::ThreadPool::default_threads()).
  unsigned workers{2};
  /// Re-fork attempts per shard after a worker death before the parent
  /// falls back to running the shard's missing cells in-process (so a
  /// crashing worker degrades to a re-run, never a lost result or a hung
  /// parent).
  int max_retries{2};
  /// Per-read poll timeout on a worker pipe. A worker that goes silent for
  /// longer is declared dead (killed + reaped) and its shard retried. The
  /// budget covers the whole read — EINTR storms cannot extend it.
  int read_timeout_ms{600000};
  /// Capped exponential backoff before each retry wave: attempt k sleeps
  /// min(retry_backoff_ms << k, retry_backoff_max_ms). A worker killed by
  /// resource pressure (fork EAGAIN, OOM) gets breathing room instead of an
  /// immediate re-fork into the same pressure.
  int retry_backoff_ms{25};
  int retry_backoff_max_ms{2000};
  /// Threads of the in-process fallback that finishes cells no worker
  /// delivered (fork exhaustion, retries exhausted). 0 = same as the
  /// (clamped) worker count. Fork failure thereby degrades to threaded
  /// execution rather than a serial crawl.
  unsigned fallback_threads{0};
  /// Test hooks: the first-wave worker for shard `crash_shard` calls
  /// _exit(42) after streaming `crash_after_cells` results. Retries are
  /// never crashed, so the harness can prove death -> retry -> identical
  /// results. -1 = disabled.
  int crash_shard{-1};
  int crash_after_cells{0};
};

/// Per-request execution controls (deadline today; cancellation later).
struct RunControl {
  /// Hard deadline: execution stops at the next cell/frame boundary once
  /// passed. Campaigns with missing cells become typed error records.
  std::optional<std::chrono::steady_clock::time_point> deadline{};
};

/// What a sharded run observed about its workers.
struct ShardStats {
  unsigned workers{0};          ///< workers actually forked in the first wave
  int worker_deaths{0};         ///< abnormal exits / truncated streams / timeouts
  int shard_retries{0};         ///< re-forked recovery workers
  int fork_failures{0};         ///< fork() calls that failed (EAGAIN etc.)
  int cells_recovered_in_process{0};  ///< cells the parent ran itself
  unsigned fallback_threads{0};  ///< threads of the in-process fallback (0 = unused)
  bool deadline_expired{false};  ///< the RunControl deadline fired mid-grid
};

/// A checked grid run: complete campaigns in `results` (spec order; an
/// errored spec's `runs` is left empty, never partially filled), one typed
/// error per incomplete campaign in `errors` (spec_index ascending).
struct GridOutcome {
  std::vector<experiments::CampaignResult> results;
  std::vector<experiments::CampaignError> errors;
  /// First exception a fallback cell raised (run_all rethrows it to keep
  /// its always-complete contract; run_all_checked types it instead).
  std::exception_ptr first_failure{};
};

/// Multi-process campaign grid execution: forks N workers over disjoint,
/// contiguous ranges of the grid's cell list (experiments::grid_cells),
/// each worker streaming one serialized RunResult frame per cell back over
/// a pipe, the parent merging frames into pre-assigned slots.
///
/// Because every run's randomness is a pure function of (spec.seed,
/// run_index) — the PR 1 counter-based contract — and doubles cross the
/// pipe as raw bit patterns, a sharded run is bit-identical to the
/// in-process CampaignScheduler at ANY worker count. Every frame carries an
/// FNV-1a payload checksum, so a corrupted pipe (bit flips, interposed
/// garbage) is detected and re-run, never merged. Worker death (crash,
/// kill, truncated frame, silence past the timeout) is detected per shard;
/// the missing cells are re-forked up to `max_retries` times (with capped
/// exponential backoff) and finally run in-process over a thread pool, so
/// results are complete and identical even under worker loss or total fork
/// failure. All syscalls go through the rt::service fault-injection shims
/// (service/fault_injection.hpp); the chaos suite drives every failure path
/// above deterministically.
class ShardedCampaignScheduler {
 public:
  explicit ShardedCampaignScheduler(const experiments::CampaignRunner& runner,
                                    ShardOptions opts = {});

  /// Runs every spec to completion and returns results in spec order.
  /// (Rethrows a runner exception, like the in-process scheduler.)
  [[nodiscard]] std::vector<experiments::CampaignResult> run_all(
      const std::vector<experiments::CampaignSpec>& specs) const;

  /// Like run_all, but honours `ctl` and converts failures into typed
  /// per-campaign error records instead of throwing or hanging.
  [[nodiscard]] GridOutcome run_all_checked(
      const std::vector<experiments::CampaignSpec>& specs,
      const RunControl& ctl) const;

  /// Stats of the most recent run.
  [[nodiscard]] const ShardStats& stats() const { return stats_; }

 private:
  const experiments::CampaignRunner& runner_;
  ShardOptions opts_;
  mutable ShardStats stats_;
};

}  // namespace rt::service
