#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "experiments/campaign.hpp"
#include "service/cell_cache.hpp"
#include "service/sharded_scheduler.hpp"

namespace rt::service {

/// How a CampaignService executes and caches grids.
struct ServiceConfig {
  /// Content-hash result cache; nullopt = always re-run.
  std::optional<CacheConfig> cache{};
  /// Forked worker processes for cache-miss execution. 0 = in-process
  /// CampaignScheduler (with `threads` threads); >= 1 = the multi-process
  /// ShardedCampaignScheduler with this many workers.
  unsigned workers{0};
  /// Thread count of the in-process scheduler when workers == 0
  /// (0 = one per hardware core).
  unsigned threads{0};
  /// Sharder knobs (its `workers` field is overridden by `workers` above).
  ShardOptions shard{};
};

/// What the most recent run_grid did.
struct RequestStats {
  std::size_t specs{0};        ///< specs in the request
  std::size_t cache_hits{0};   ///< specs served from the cache
  double wall_ms{0.0};         ///< end-to-end request wall time
};

/// The campaign-as-a-service facade: one long-lived object that answers
/// grid requests, consulting the content-hash cache first and executing
/// only the misses (in-process or via forked shards), then storing fresh
/// results back. Because cache entries round-trip bit-exactly and both
/// executors honour the counter-based seeding contract, any mix of cached
/// and freshly-computed cells is indistinguishable from a cold in-process
/// run of the whole grid.
class CampaignService {
 public:
  CampaignService(const experiments::CampaignRunner& runner,
                  ServiceConfig config);

  /// Runs (or recalls) every spec; results in spec order.
  [[nodiscard]] std::vector<experiments::CampaignResult> run_grid(
      const std::vector<experiments::CampaignSpec>& specs);

  /// Stats of the most recent run_grid.
  [[nodiscard]] const RequestStats& last_request() const {
    return request_stats_;
  }

  /// Cumulative cache counters (all zero when caching is off).
  [[nodiscard]] CacheStats cache_stats() const;

  /// Sharder stats of the most recent run_grid (empty when workers == 0
  /// or every spec was a cache hit).
  [[nodiscard]] const ShardStats& shard_stats() const {
    return shard_stats_;
  }

  /// The cache, or nullptr when caching is off.
  [[nodiscard]] CampaignCellCache* cache() { return cache_.get(); }

  /// This service as a pluggable experiments::GridExecutor, for dropping
  /// cached / sharded execution into grid harnesses (defense grid,
  /// scenario search) that know nothing about rt::service.
  [[nodiscard]] experiments::GridExecutor executor();

  [[nodiscard]] const ServiceConfig& config() const { return config_; }

 private:
  const experiments::CampaignRunner& runner_;
  ServiceConfig config_;
  std::unique_ptr<CampaignCellCache> cache_;
  RequestStats request_stats_;
  ShardStats shard_stats_;
};

}  // namespace rt::service
