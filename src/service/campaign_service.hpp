#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "experiments/campaign.hpp"
#include "service/cell_cache.hpp"
#include "service/sharded_scheduler.hpp"

namespace rt::service {

/// How a CampaignService executes and caches grids.
struct ServiceConfig {
  /// Content-hash result cache; nullopt = always re-run.
  std::optional<CacheConfig> cache{};
  /// Forked worker processes for cache-miss execution. 0 = in-process
  /// CampaignScheduler (with `threads` threads); >= 1 = the multi-process
  /// ShardedCampaignScheduler with this many workers.
  unsigned workers{0};
  /// Thread count of the in-process scheduler when workers == 0
  /// (0 = one per hardware core).
  unsigned threads{0};
  /// Sharder knobs (its `workers` field is overridden by `workers` above).
  ShardOptions shard{};
  /// Consecutive failed cache stores before the service latches the cache
  /// off for its remaining lifetime (a full disk would otherwise add a
  /// failing write + fsync to every spec of every request, forever).
  /// Lookups and stores both stop; execution continues undegraded.
  int cache_fail_threshold{3};
};

/// What the most recent run_grid / run_grid_checked did.
struct RequestStats {
  std::size_t specs{0};        ///< specs in the request
  std::size_t cache_hits{0};   ///< specs served from the cache
  std::size_t errors{0};       ///< specs that became typed error records
  double wall_ms{0.0};         ///< end-to-end request wall time
};

/// One grid request with per-request execution controls.
struct GridRequest {
  std::vector<experiments::CampaignSpec> specs;
  /// Wall-clock budget for the whole request; 0 = unbounded. On expiry,
  /// execution stops at the next cell boundary and every unfinished
  /// campaign becomes a kDeadlineExceeded error record.
  double deadline_ms{0.0};
};

/// The answer: complete campaigns in `results` (spec order; an errored
/// spec's `runs` is empty), one typed error per incomplete campaign in
/// `errors` (spec_index ascending, indexing into the request's specs).
struct GridResponse {
  std::vector<experiments::CampaignResult> results;
  std::vector<experiments::CampaignError> errors;
  /// First underlying exception, when one caused the errors (run_grid
  /// rethrows it; checked callers may log `errors` and move on).
  std::exception_ptr first_failure{};
};

/// The campaign-as-a-service facade: one long-lived object that answers
/// grid requests, consulting the content-hash cache first and executing
/// only the misses (in-process or via forked shards), then storing fresh
/// results back. Because cache entries round-trip bit-exactly and both
/// executors honour the counter-based seeding contract, any mix of cached
/// and freshly-computed cells is indistinguishable from a cold in-process
/// run of the whole grid.
///
/// The service degrades, never dies: fork failure falls back to threaded
/// execution (inside the sharder), cache IO errors are absorbed and — after
/// a streak of failed stores — latch the cache off, and a request deadline
/// turns unfinished campaigns into typed error records (run_grid_checked).
class CampaignService {
 public:
  CampaignService(const experiments::CampaignRunner& runner,
                  ServiceConfig config);

  /// Runs (or recalls) every spec; results in spec order. Throws on an
  /// execution failure (historical contract — use run_grid_checked for
  /// typed degradation instead).
  [[nodiscard]] std::vector<experiments::CampaignResult> run_grid(
      const std::vector<experiments::CampaignSpec>& specs);

  /// Like run_grid, but honours the request deadline and degrades instead
  /// of throwing: campaigns that cannot be completed come back as typed
  /// error records next to the completed results.
  [[nodiscard]] GridResponse run_grid_checked(const GridRequest& request);

  /// Stats of the most recent run_grid.
  [[nodiscard]] const RequestStats& last_request() const {
    return request_stats_;
  }

  /// Cumulative cache counters (all zero when caching is off).
  [[nodiscard]] CacheStats cache_stats() const;

  /// Sharder stats of the most recent run_grid (empty when workers == 0
  /// or every spec was a cache hit).
  [[nodiscard]] const ShardStats& shard_stats() const {
    return shard_stats_;
  }

  /// The cache, or nullptr when caching is off.
  [[nodiscard]] CampaignCellCache* cache() { return cache_.get(); }

  /// True once `cache_fail_threshold` consecutive stores failed and the
  /// service latched the cache off (see ServiceConfig).
  [[nodiscard]] bool cache_degraded() const { return cache_degraded_; }

  /// This service as a pluggable experiments::GridExecutor, for dropping
  /// cached / sharded execution into grid harnesses (defense grid,
  /// scenario search) that know nothing about rt::service.
  [[nodiscard]] experiments::GridExecutor executor();

  [[nodiscard]] const ServiceConfig& config() const { return config_; }

 private:
  const experiments::CampaignRunner& runner_;
  ServiceConfig config_;
  std::unique_ptr<CampaignCellCache> cache_;
  RequestStats request_stats_;
  ShardStats shard_stats_;
  int cache_fail_streak_{0};
  bool cache_degraded_{false};
};

}  // namespace rt::service
