#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "experiments/campaign.hpp"

namespace rt::service {

/// Simulation-semantics version baked into every cache key and cache-file
/// header. Bump whenever a change anywhere in the stack alters campaign
/// results for an unchanged spec (scenario generators, sensor/noise models,
/// planner, attacker, per-run seed derivation): entries written by another
/// code version are ignored — counted as `stale`, never served.
inline constexpr std::uint64_t kCampaignCodeVersion = 1;

/// Content hash of one campaign cell — the generalization of the PR 3
/// oracle-cache fingerprint to whole campaigns. Folds the code version plus
/// every result-determining field of the spec: scenario key, attack vector,
/// mode, runs, seed, explicit scenario params (so every sweep value gets
/// its own key) and the monitor stack; `name` is folded too (it is derived
/// from the axes, and keeping it in means a cached result's spec is exactly
/// the requested spec). Equal fingerprints at equal code versions imply
/// bit-identical CampaignResults.
[[nodiscard]] std::uint64_t campaign_cell_fingerprint(
    const experiments::CampaignSpec& spec,
    std::uint64_t code_version = kCampaignCodeVersion);

/// Hit/miss/hygiene counters of one cache instance.
struct CacheStats {
  std::uint64_t hits{0};
  std::uint64_t misses{0};     ///< no entry on disk (or unreadable)
  std::uint64_t stale{0};      ///< entry ignored: other code/header version
  std::uint64_t corrupt{0};    ///< entry ignored: malformed/truncated/mismatched
  std::uint64_t evictions{0};  ///< files removed by the LRU size sweep
  std::uint64_t stores{0};     ///< entries durably written (store() == true)
  /// IO failures (write/fsync/rename on store, read errors on lookup). The
  /// cache absorbs these — a failed store declines, a failed read misses —
  /// and the service layer watches this counter to latch the cache off
  /// after repeated failures (see CampaignService).
  std::uint64_t io_errors{0};

  [[nodiscard]] std::uint64_t lookups() const {
    return hits + misses + stale + corrupt;
  }
};

struct CacheConfig {
  std::string dir;
  /// LRU byte budget: after each store the oldest entries (by access time —
  /// hits re-touch their file) are evicted until the directory is back
  /// under this. 0 = unbounded.
  std::size_t max_bytes{256ull * 1024 * 1024};
  std::uint64_t code_version{kCampaignCodeVersion};
};

/// Content-addressed on-disk cache of campaign results:
/// `<dir>/cell_<fingerprint hex16>.rtcr`, each file one header line
/// (`RTCACHE 2 <code_version> <fingerprint> <content fnv64>`) plus the
/// serialized CampaignResult (experiments::serialize_campaign_result).
/// Damaged, stale or mismatched files are counted misses — never wrong
/// results: the header's FNV-1a content checksum catches byte corruption
/// that would still parse (a flipped bit inside a hex-encoded double), and
/// the serde layer underneath throws on any truncation, so a partial write
/// can never load as zeros. Stores are crash-durable: write-temp, fsync,
/// rename, then a best-effort fsync of the directory, so a power cut leaves
/// either the old entry or the complete new one. All file IO goes through
/// the rt::service fault-injection shims; IO failures are absorbed (a store
/// declines, a lookup misses) and counted in CacheStats::io_errors, never
/// thrown. Instance methods are mutex-serialized, safe from concurrent
/// threads.
class CampaignCellCache {
 public:
  explicit CampaignCellCache(CacheConfig config);

  /// The cached result for this exact spec (at this cache's code version),
  /// or nullopt. A hit re-touches the entry for LRU: its `.touch` sidecar
  /// gets the next monotonic access counter (and the mtime is refreshed as
  /// a best-effort fallback).
  [[nodiscard]] std::optional<experiments::CampaignResult> lookup(
      const experiments::CampaignSpec& spec);

  /// Serializes and stores the result under the spec's fingerprint, then
  /// runs the LRU sweep if a byte budget is configured. Returns false (and
  /// counts an io_error) when the entry could not be durably written; the
  /// cache is unchanged in that case and the caller may decide to stop
  /// trying (see CampaignService's cache-off latch).
  bool store(const experiments::CampaignSpec& spec,
             const experiments::CampaignResult& result);

  /// Evicts oldest entries until the directory is within `limit_bytes`
  /// (pass the configured budget via the no-arg overload). Returns the
  /// number of files removed.
  std::size_t evict_to_limit(std::size_t limit_bytes);
  std::size_t evict_to_limit();

  /// On-disk path an entry for this spec would use.
  [[nodiscard]] std::string entry_path(
      const experiments::CampaignSpec& spec) const;

  [[nodiscard]] CacheStats stats() const;
  [[nodiscard]] const CacheConfig& config() const { return config_; }

 private:
  /// Sweep body; caller holds mutex_. Returns files removed.
  std::size_t evict_locked(std::size_t limit_bytes);

  /// Writes `cell_<hash>.rtcr.touch` with the next access counter; caller
  /// holds mutex_.
  void touch_locked(const std::string& entry_path);

  CacheConfig config_;
  mutable std::mutex mutex_;
  CacheStats stats_;
  /// Monotonic access sequence for LRU ordering. fs::last_write_time has
  /// 1 s granularity on some filesystems, so a hit and a cold store within
  /// the same second used to tie and fall through to the path tie-break —
  /// which could evict the just-hit entry before a cold one. Counters are
  /// persisted in per-entry `.touch` sidecars and re-seeded from their max
  /// at construction, so ordering survives process restarts; entries
  /// without a sidecar (legacy, or a lost write) fall back to mtime and
  /// sort before any counter-bearing entry.
  std::uint64_t touch_seq_{0};
};

}  // namespace rt::service
