// Defense-monitor walkthrough: one attacked and one clean campaign on the
// same scenario, both observed by the full runtime monitor stack, with the
// per-monitor detection summary printed side by side.
//
// This is the "deploying a defense is one key list" workflow from README
// "Defense monitors". It uses the no-oracle NoSh attack mode so it runs
// hermetically (no training, no cache); bench/table_defense is the
// full-scale version with the trained-oracle R rows.

#include <cstdio>
#include <cstdlib>

#include "defense/monitor_registry.hpp"
#include "experiments/campaign.hpp"
#include "experiments/reporting.hpp"

using namespace rt;

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 12;

  const auto& registry = defense::MonitorRegistry::global();
  std::printf("registered runtime attack monitors:\n");
  for (const auto& key : registry.keys()) {
    std::printf("  %-20s %s\n", key.c_str(),
                registry.get(key).description.c_str());
  }

  // Two campaigns on the same scenario and seed: monitors are passive, so
  // the attacked pair and the clean pair differ ONLY in the attacker — the
  // clean campaign is the false-positive baseline.
  experiments::LoopConfig loop;
  experiments::CampaignRunner runner(loop, {});
  experiments::CampaignSpec attacked;
  attacked.name = "DS-1-Move_Out-RwoSH (defended)";
  attacked.scenario = "DS-1";
  attacked.vector = core::AttackVector::kMoveOut;
  attacked.mode = experiments::AttackMode::kNoSh;
  attacked.runs = n;
  attacked.seed = 4242;
  attacked.monitors = registry.keys();  // the full stack

  experiments::CampaignSpec clean = attacked;
  clean.name = "DS-1-Golden (defended)";
  clean.mode = experiments::AttackMode::kGolden;

  std::printf("\nrunning %d attacked + %d clean runs on DS-1...\n", n, n);
  const auto attacked_result = runner.run(attacked);
  const auto clean_result = runner.run(clean);

  std::vector<std::string> head{"campaign", "#runs",     "triggered",
                                "detected", "det rate",  "median frames",
                                "false alarms"};
  std::vector<std::vector<std::string>> rows;
  for (const auto* r : {&attacked_result, &clean_result}) {
    rows.push_back(
        {r->spec.name, std::to_string(r->n()),
         std::to_string(r->triggered_count()),
         std::to_string(r->detected_count()),
         experiments::fmt_pct(r->detection_rate()),
         r->median_frames_to_detection() < 0.0
             ? "-"
             : experiments::fmt(r->median_frames_to_detection(), 0),
         std::to_string(r->false_alarm_count())});
  }
  std::printf("%s", experiments::format_table(head, rows).c_str());

  // Which monitor the detection is credited to, per detected run.
  std::printf("\ndetecting monitor per detected run:\n");
  for (int i = 0; i < attacked_result.n(); ++i) {
    const auto& r = attacked_result.runs[static_cast<std::size_t>(i)];
    if (!r.defense.detected) continue;
    std::printf("  run %2d: launch t=%5.2f s -> %s after %d frames\n", i,
                r.attack.start_time, r.defense.detected_by.c_str(),
                r.defense.frames_to_detection);
  }
  std::printf(
      "\nmonitors are passive observers: the attacked runs' EB/crash\n"
      "outcomes are identical with or without the stack. The clean\n"
      "campaign is the false-positive baseline (expected: 0 alarms).\n"
      "bench/table_defense sweeps this over every scenario family,\n"
      "attack mode and monitor.\n");
  return 0;
}
