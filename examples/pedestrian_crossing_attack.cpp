// Domain example: DS-2, the pedestrian-crossing scenario, attacked with the
// full RoboTack pipeline. Prints the per-frame safety timeline around the
// attack so you can watch the deception unfold: the safety hijacker fires
// when the predicted post-attack safety potential collapses, the trajectory
// hijacker erases the crossing belief, and the EV discovers the pedestrian
// too late.

#include <cstdio>

#include "experiments/campaign.hpp"
#include "experiments/sh_training.hpp"

using namespace rt;

int main() {
  experiments::LoopConfig loop;
  loop.keep_timeline = true;

  std::printf("training/loading safety-hijacker oracles...\n");
  const auto oracles = experiments::load_or_train_oracles(
      experiments::default_cache_dir(), loop, {});

  stats::Rng rng(7);
  sim::Scenario ds2 = sim::make_scenario("DS-2", rng);
  std::printf("\nscenario: %s — %s\n", ds2.name.c_str(),
              ds2.description.c_str());

  experiments::ClosedLoop cl(ds2, loop, 4243);
  auto cfg = experiments::make_attacker_config(
      loop, core::AttackVector::kMoveOut,
      core::TimingPolicy::kSafetyHijacker);
  auto attacker = std::make_unique<core::Robotack>(
      cfg, loop.camera, loop.noise, loop.mot, 777);
  for (const auto& [v, o] : oracles) attacker->set_oracle(v, o);
  cl.set_attacker(std::move(attacker));

  const auto r = cl.run();

  if (r.attack.triggered) {
    std::printf(
        "\nattack: vector=%s victim=%s launch t=%.2fs\n"
        "        delta at launch=%.1fm  SH-predicted delta_{t+K}=%.1fm\n"
        "        K=%d frames (K'=%d shift + %d hold)\n",
        core::to_string(r.attack.vector), sim::to_string(r.attack.victim_cls),
        r.attack.start_time, r.attack.delta_at_launch,
        r.attack.predicted_delta, r.attack.planned_k, r.attack.k_prime,
        r.attack.planned_k - r.attack.k_prime);
  } else {
    std::printf("\nthe safety hijacker never saw a profitable moment.\n");
  }

  std::printf("\n   t      delta   d_safe   ego v   EB  attack\n");
  for (std::size_t i = 0; i < r.timeline.size(); i += 4) {
    const auto& s = r.timeline[i];
    if (s.time < r.attack.start_time - 1.5) continue;
    if (s.time > r.attack.start_time + 8.0) break;
    std::printf("  %5.2f  %6.1f  %6.1f  %6.2f   %s   %s\n", s.time,
                s.delta > 150 ? 999.9 : s.delta,
                s.d_safe > 150 ? 999.9 : s.d_safe, s.ego_speed,
                s.eb_active ? "*" : " ", s.attack_active ? "*" : " ");
  }

  std::printf("\noutcome: EB=%s  accident=%s  min delta=%.2f m%s\n",
              r.eb ? "yes" : "no", r.crash ? "yes" : "no",
              r.min_delta_since_attack,
              r.crash ? "  (below the 4 m accident threshold)" : "");
  return 0;
}
