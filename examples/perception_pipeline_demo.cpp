// Domain example: the perception stack in isolation, watching the Kalman
// vulnerability the paper exploits. Feeds the tracking-by-detection pipeline
// (detector noise -> Hungarian -> per-object KF -> ground-plane transform ->
// camera/LiDAR fusion) with a hand-driven scene, then replays the same scene
// with an Eq.-4-style biased-noise injection and prints how the fused world
// model diverges from the truth without any single frame looking anomalous.

#include <cstdio>

#include "core/trajectory_hijacker.hpp"
#include "perception/detector_model.hpp"
#include "perception/perception_system.hpp"
#include "sim/types.hpp"

using namespace rt;

namespace {

sim::GroundTruthObject lead_vehicle(double range) {
  sim::GroundTruthObject g;
  g.id = 1;
  g.type = sim::ActorType::kVehicle;
  g.dims = sim::default_dimensions(g.type);
  g.rel_position = {range, 0.0};
  return g;
}

}  // namespace

int main() {
  const perception::CameraModel cam;
  const auto noise = perception::DetectorNoiseModel::paper_defaults();
  const double dt = 1.0 / 15.0;

  std::printf("frame | clean fused y | attacked fused y | per-frame shift\n");
  std::printf("      |   (meters)    |    (meters)      |  (fraction of sigma)\n");

  perception::PerceptionSystem clean(cam, dt, 0.1);
  perception::PerceptionSystem attacked(cam, dt, 0.1);
  perception::DetectorModel det_clean(cam, noise, stats::Rng(12));
  perception::DetectorModel det_attacked(cam, noise, stats::Rng(12));
  perception::LidarModel lidar(perception::LidarConfig{}, stats::Rng(6));

  core::TrajectoryHijacker th(core::TrajectoryHijacker::Config{}, cam, noise);
  th.begin(core::AttackVector::kMoveOut, +1.0, 2.4);

  const double sigma_band =
      (noise.vehicle.center_x.mu + noise.vehicle.center_x.sigma);

  perception::MotTracker ads_replica(dt, perception::MotConfig{}, noise);
  const double range = 30.0;
  for (int f = 0; f < 60; ++f) {
    const auto gt = lead_vehicle(range);
    if (f % 2 == 0) {
      const auto scan = lidar.scan({gt});
      clean.ingest_lidar(scan);
      attacked.ingest_lidar(scan);
    }
    const auto clean_out = clean.step(det_clean.detect({gt}, f * dt));

    auto frame = det_attacked.detect({gt}, f * dt);
    double shift_frac = 0.0;
    if (f >= 15 && !frame.detections.empty()) {
      const auto pred = ads_replica.predict_next_bbox(1);
      const auto res = th.apply(frame, 0, pred, range);
      shift_frac = pred && !frame.detections.empty()
                       ? (frame.detections[0].bbox.cx - pred->cx) /
                             (sigma_band * frame.detections[0].bbox.w)
                       : 0.0;
      (void)res;
    }
    ads_replica.update(frame);
    const auto attacked_out = attacked.step(frame);

    if (f % 4 == 0) {
      const double cy = clean_out.world.empty()
                            ? 0.0
                            : clean_out.world[0].rel_position.y;
      const double ay = attacked_out.world.empty()
                            ? 0.0
                            : attacked_out.world[0].rel_position.y;
      std::printf(" %4d | %12.2f | %15.2f | %10.2f\n", f, cy, ay, shift_frac);
    }
  }

  std::printf(
      "\nEvery attacked frame deviates from the tracker's prediction by at\n"
      "most 1.0 of the characterized noise band (last column <= 1): the\n"
      "Kalman filter cannot distinguish biased noise from motion (the\n"
      "paper's central vulnerability, SIII-B). Natural degraded-detection\n"
      "streaks can evict the dragged track, which is one reason vehicle\n"
      "attacks succeed less often than pedestrian ones end to end.\n");
  return 0;
}
