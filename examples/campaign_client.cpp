// Minimal line-protocol client for examples/campaign_server --socket mode.
// Each trailing argument is one request line sent verbatim; after a `run`
// line the client echoes the server's response to stdout until the `end`
// (or `busy`) terminator arrives. Used by CI to drive several simultaneous
// clients against one server and byte-compare their outputs against a
// serial run:
//
//   campaign_client --socket /tmp/rt.sock \
//       'run scenarios=DS-1 modes=Golden runs=2 seed=5'
//
// Exits non-zero if the server cannot be reached, a response times out
// (--timeout-ms, default 120000), or the connection dies mid-response.

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "service/fault_injection.hpp"

namespace {

[[noreturn]] void usage(const char* argv0, int code) {
  std::fprintf(code == 0 ? stdout : stderr,
               "usage: %s --socket PATH [--timeout-ms N] REQUEST...\n",
               argv0);
  std::exit(code);
}

/// Reads until a lone `end` or `busy` line arrives; echoes every line to
/// stdout. Returns false on disconnect, error or timeout.
bool read_response(int fd, int timeout_ms) {
  std::string buffer;
  for (;;) {
    std::size_t eol = 0;
    while ((eol = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, eol);
      buffer.erase(0, eol + 1);
      std::fprintf(stdout, "%s\n", line.c_str());
      if (line == "end" || line == "busy") {
        std::fflush(stdout);
        return true;
      }
    }
    struct pollfd pfd {};
    pfd.fd = fd;
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, timeout_ms);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (pr == 0) {
      std::fprintf(stderr, "error: response timed out\n");
      return false;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) {
      std::fprintf(stderr, "error: server closed the connection\n");
      return false;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  int timeout_ms = 120000;
  std::vector<std::string> requests;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0 && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (std::strcmp(argv[i], "--timeout-ms") == 0 && i + 1 < argc) {
      timeout_ms = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      usage(argv[0], 0);
    } else {
      requests.emplace_back(argv[i]);
    }
  }
  if (socket_path.empty() || requests.empty()) usage(argv[0], 2);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::perror("socket");
    return 1;
  }
  struct sockaddr_un addr {};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "error: socket path too long\n");
    return 1;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    std::perror("connect");
    return 1;
  }

  int rc = 0;
  for (const std::string& request : requests) {
    const std::string line = request + "\n";
    if (!rt::service::write_all_fd(rt::service::FaultSite::kClientWrite, fd,
                                   line.data(), line.size())) {
      std::perror("write");
      rc = 1;
      break;
    }
    // Only `run` lines are answered; control verbs are fire-and-forget.
    if (request.rfind("run", 0) == 0 && !read_response(fd, timeout_ms)) {
      rc = 1;
      break;
    }
  }
  ::close(fd);
  return rc;
}
