// Temporary debugging harness (not part of the public examples).
#include <algorithm>
#include <cstdio>
#include <map>

#include "defense/monitor_registry.hpp"
#include "experiments/campaign.hpp"
#include "experiments/sh_training.hpp"

using namespace rt;

static void run_timeline(const std::string& key, core::AttackVector v,
                         core::TimingPolicy timing, double delta_trigger,
                         int fixed_k) {
  experiments::LoopConfig loop;
  loop.keep_timeline = true;
  stats::Rng rng(7);
  sim::Scenario sc = sim::make_scenario(key, rng);
  experiments::ClosedLoop cl(sc, loop, 1001);
  if (timing != core::TimingPolicy::kSafetyHijacker || true) {
    auto cfg = experiments::make_attacker_config(loop, v, timing);
    cfg.delta_trigger = delta_trigger;
    cfg.fixed_k = fixed_k;
    cl.set_attacker(std::make_unique<core::Robotack>(cfg, loop.camera,
                                                     loop.noise, loop.mot,
                                                     2002));
  }
  auto r = cl.run();
  std::printf("%s %s: EB=%d crash=%d coll=%d minD=%.2f trig=%d t=%.2f K=%d K'=%d pert=%d\n",
              key.c_str(), core::to_string(v), r.eb, r.crash,
              r.collision, r.min_delta_since_attack, r.attack.triggered,
              r.attack.start_time, r.attack.planned_k, r.attack.k_prime,
              r.attack.frames_perturbed);
  for (std::size_t i = 0; i < r.timeline.size(); i += 8) {
    const auto& s = r.timeline[i];
    std::printf("  t=%5.2f delta=%7.2f dsafe=%7.2f v=%5.2f eb=%d atk=%d\n",
                s.time, s.delta, s.d_safe, s.ego_speed, s.eb_active,
                s.attack_active);
  }
}

static void golden_timeline(const std::string& key) {
  experiments::LoopConfig loop;
  loop.keep_timeline = true;
  stats::Rng rng(7);
  sim::Scenario sc = sim::make_scenario(key, rng);
  experiments::ClosedLoop cl(sc, loop, 1001);
  auto r = cl.run();
  std::printf("GOLDEN %s: EB=%d crash=%d coll=%d minD=%.2f end=%.1f\n",
              key.c_str(), r.eb, r.crash, r.collision, r.min_delta,
              r.end_time);
  for (std::size_t i = 0; i < r.timeline.size(); i += 8) {
    const auto& s = r.timeline[i];
    std::printf("  t=%5.2f delta=%7.2f dsafe=%7.2f v=%5.2f eb=%d\n", s.time,
                s.delta, s.d_safe, s.ego_speed, s.eb_active);
  }
}

static void defense_forensics() {
  // Per-monitor alarm forensics: golden + NoSh runs per family with every
  // monitor deployed, printing who fired, when and why.
  for (const char* key : {"DS-1", "DS-2", "DS-3", "DS-4", "DS-5", "cut-in",
                          "staggered-crossing", "dense-follow"}) {
    for (const auto mode : {experiments::AttackMode::kGolden,
                            experiments::AttackMode::kNoSh}) {
      experiments::LoopConfig loop;
      experiments::CampaignRunner runner(loop, {});
      experiments::CampaignSpec spec{
          std::string(key) + (mode == experiments::AttackMode::kGolden
                                  ? "-Golden"
                                  : "-NoSh"),
          key,
          core::AttackVector::kMoveOut,
          mode,
          8,
          4242};
      spec.monitors = {"innovation-gate", "sensor-consistency", "kinematics"};
      const auto result = runner.run(spec);
      for (int i = 0; i < result.n(); ++i) {
        const auto& r = result.runs[static_cast<std::size_t>(i)];
        for (const auto& m : r.defense.monitors) {
          if (!m.fired) continue;
          std::printf("%-28s run %d trig=%d t_atk=%6.2f  %-18s t=%6.2f n=%3d %s\n",
                      spec.name.c_str(), i, r.attack.triggered,
                      r.attack.triggered ? r.attack.start_time : -1.0,
                      m.monitor.c_str(), m.first_alert_time, m.alarms,
                      m.reason.c_str());
        }
      }
    }
  }
}

namespace {

// Probe of the natural (golden-run) lateral kinematics envelope: the max
// EMA-smoothed |lateral accel| / |jerk| per class, by range band.
struct KinProbeStats {
  double max_acc_vehicle{0.0}, max_jerk_vehicle{0.0};
  double max_acc_ped{0.0}, max_jerk_ped{0.0};
};
KinProbeStats g_kin_stats;

class KinProbe final : public defense::AttackMonitor {
 public:
  KinProbe(double dt, double min_r, double max_r)
      : AttackMonitor("kin-probe"), dt_(dt), min_r_(min_r), max_r_(max_r) {}
  void observe(const perception::CameraFrame&,
               const perception::PerceptionOutput& out) override {
    for (const auto& w : out.camera_world) {
      auto& s = state_[w.track_id];
      if (!s.has_prev) {
        s.prev_v = w.rel_velocity.y;
        s.has_prev = true;
        continue;
      }
      const double raw = (w.rel_velocity.y - s.prev_v) / dt_;
      s.prev_v = w.rel_velocity.y;
      const double prev_a = s.acc;
      s.acc = s.acc * 0.65 + raw * 0.35;
      const double jerk = s.seen ? std::abs(s.acc - prev_a) / dt_ : 0.0;
      s.seen = true;
      if (w.hits < 6) continue;
      const double r = w.rel_position.x;
      if (r < min_r_ || r > max_r_) continue;
      const bool veh = w.cls == sim::ActorType::kVehicle;
      double& acc = veh ? g_kin_stats.max_acc_vehicle : g_kin_stats.max_acc_ped;
      double& jrk = veh ? g_kin_stats.max_jerk_vehicle : g_kin_stats.max_jerk_ped;
      acc = std::max(acc, std::abs(s.acc));
      jrk = std::max(jrk, jerk);
    }
  }

 private:
  struct S {
    double prev_v{0.0}, acc{0.0};
    bool has_prev{false}, seen{false};
  };
  double dt_, min_r_, max_r_;
  std::map<int, S> state_;
};

double g_probe_min_r = 0.0;
double g_probe_max_r = 1e9;

void kin_probe(double min_r, double max_r, bool attacked) {
  g_kin_stats = {};
  g_probe_min_r = min_r;
  g_probe_max_r = max_r;
  for (const char* key : {"DS-1", "DS-2", "DS-3", "DS-4", "DS-5", "cut-in",
                          "staggered-crossing", "dense-follow"}) {
    for (int i = 0; i < 12; ++i) {
      experiments::LoopConfig loop;
      loop.monitors = {"kin-probe"};
      stats::Rng rng = stats::Rng::from_stream(991, i);
      sim::Scenario sc = sim::make_scenario(key, rng);
      experiments::ClosedLoop cl(sc, loop, 7700 + i * 31);
      if (attacked) {
        auto cfg = experiments::make_attacker_config(
            loop, core::AttackVector::kMoveOut,
            core::TimingPolicy::kAtDeltaThreshold);
        cfg.delta_trigger = 24.0;
        cfg.fixed_k = 60;
        cl.set_attacker(std::make_unique<core::Robotack>(
            cfg, loop.camera, loop.noise, loop.mot, 911 + i));
      }
      (void)cl.run();
    }
  }
  std::printf(
      "kin probe [%4.1f, %4.1f] %s: veh acc=%6.2f jerk=%7.1f  ped acc=%6.2f "
      "jerk=%7.1f\n",
      min_r, max_r, attacked ? "ATK" : "GLD", g_kin_stats.max_acc_vehicle,
      g_kin_stats.max_jerk_vehicle, g_kin_stats.max_acc_ped,
      g_kin_stats.max_jerk_ped);
}

}  // namespace

int main(int argc, char** argv) {
  const int mode = argc > 1 ? std::atoi(argv[1]) : 0;
  if (mode == 9) {
    defense_forensics();
  } else if (mode == 12) {
    // CUSUM envelope probe: max two-sided CUSUM (slack 0.3) per run, golden
    // vs Move_Out-attacked, across families.
    static double g_max_cusum;
    defense::MonitorRegistry::global().register_monitor(
        {"cusum-probe", "debug: max CUSUM statistic",
         [](const defense::MonitorContext& ctx)
             -> std::unique_ptr<defense::AttackMonitor> {
           class P final : public defense::AttackMonitor {
            public:
             P(perception::CameraModel cam, perception::DetectorNoiseModel n)
                 : AttackMonitor("cusum-probe"), cam_(cam), noise_(n) {}
             void observe(const perception::CameraFrame&,
                          const perception::PerceptionOutput& out) override {
               for (const auto& t : out.camera_tracks) {
                 auto& s = st_[t.track_id];
                 if (!t.matched_this_frame || t.hits < 4) continue;
                 const auto r = cam_.back_project(t.predicted_bbox);
                 if (!r || r->x < 20.0) continue;
                 const auto& fit = noise_.for_class(t.cls).center_x;
                 const double e = std::clamp(
                     (t.innovation_x - fit.mu) / std::max(1e-6, fit.sigma),
                     -2.5, 2.5);
                 s.p = std::max(0.0, s.p + e - 0.3);
                 s.n = std::max(0.0, s.n - e - 0.3);
                 g_max_cusum = std::max({g_max_cusum, s.p, s.n});
               }
             }
            private:
             struct S { double p{0.0}, n{0.0}; };
             perception::CameraModel cam_;
             perception::DetectorNoiseModel noise_;
             std::map<int, S> st_;
           };
           return std::make_unique<P>(ctx.camera, ctx.noise);
         }});
    for (const bool attacked : {false, true}) {
      for (const char* key : {"DS-1", "DS-2", "DS-3", "DS-5", "cut-in",
                              "dense-follow"}) {
        double worst = 0.0;
        for (int i = 0; i < 10; ++i) {
          g_max_cusum = 0.0;
          experiments::LoopConfig loop;
          loop.monitors = {"cusum-probe"};
          stats::Rng rng = stats::Rng::from_stream(991, i);
          sim::Scenario sc = sim::make_scenario(key, rng);
          experiments::ClosedLoop cl(sc, loop, 7700 + i * 31);
          if (attacked) {
            auto cfg = experiments::make_attacker_config(
                loop, core::AttackVector::kMoveOut,
                core::TimingPolicy::kAtDeltaThreshold);
            cfg.delta_trigger = 24.0;
            cfg.fixed_k = 60;
            cl.set_attacker(std::make_unique<core::Robotack>(
                cfg, loop.camera, loop.noise, loop.mot, 911 + i));
          }
          (void)cl.run();
          worst = std::max(worst, g_max_cusum);
        }
        std::printf("cusum %-14s %s max=%6.2f\n", key,
                    attacked ? "ATK" : "GLD", worst);
      }
    }
  } else if (mode == 11) {
    // Innovation spike forensics on one golden scenario.
    defense::MonitorRegistry::global().register_monitor(
        {"spike-probe", "debug: print every over-gate innovation",
         [](const defense::MonitorContext& ctx)
             -> std::unique_ptr<defense::AttackMonitor> {
           class P final : public defense::AttackMonitor {
            public:
             explicit P(perception::CameraModel cam)
                 : AttackMonitor("spike-probe"), cam_(cam) {}
             void observe(const perception::CameraFrame&,
                          const perception::PerceptionOutput& out) override {
               for (const auto& t : out.camera_tracks) {
                 if (!t.matched_this_frame || t.innovation_m2 < 13.28) continue;
                 const auto r = cam_.back_project(t.predicted_bbox);
                 std::printf(
                     "  t=%6.2f trk=%d cls=%d hits=%d m2=%8.1f ex=%6.2f "
                     "bbox=(%.0f,%.0f %0.fx%.0f) r=%s\n",
                     out.time, t.track_id, static_cast<int>(t.cls), t.hits,
                     t.innovation_m2, t.innovation_x, t.bbox.cx, t.bbox.cy,
                     t.bbox.w, t.bbox.h,
                     r ? std::to_string(r->x).c_str() : "-");
               }
             }
            private:
             perception::CameraModel cam_;
           };
           return std::make_unique<P>(ctx.camera);
         }});
    const char* key = argc > 2 ? argv[2] : "DS-3";
    for (int i = 0; i < 3; ++i) {
      experiments::LoopConfig loop;
      loop.monitors = {"spike-probe"};
      stats::Rng rng = stats::Rng::from_stream(4242, i + 1);
      const auto scenario_seed = rng.engine()();
      const auto loop_seed = rng.engine()();
      stats::Rng srng(scenario_seed);
      sim::Scenario sc = sim::make_scenario(key, srng);
      experiments::ClosedLoop cl(sc, loop, loop_seed);
      std::printf("%s golden run %d:\n", key, i);
      (void)cl.run();
    }
  } else if (mode == 10) {
    defense::MonitorRegistry::global().register_monitor(
        {"kin-probe", "debug: natural lateral kinematics envelope",
         [](const defense::MonitorContext& ctx)
             -> std::unique_ptr<defense::AttackMonitor> {
           return std::make_unique<KinProbe>(ctx.dt, g_probe_min_r,
                                             g_probe_max_r);
         }});
    for (const bool attacked : {false, true}) {
      kin_probe(8.0, 150.0, attacked);
      kin_probe(8.0, 45.0, attacked);
      kin_probe(12.0, 45.0, attacked);
      kin_probe(12.0, 35.0, attacked);
    }
  } else if (mode == 0) {
    for (const char* key : {"DS-1", "DS-2", "DS-3", "DS-4"}) {
      golden_timeline(key);
    }
  } else if (mode == 1) {
    run_timeline("DS-2", core::AttackVector::kDisappear,
                 core::TimingPolicy::kAtDeltaThreshold, 20.0, 30);
    run_timeline("DS-2", core::AttackVector::kMoveOut,
                 core::TimingPolicy::kAtDeltaThreshold, 20.0, 40);
    run_timeline("DS-1", core::AttackVector::kDisappear,
                 core::TimingPolicy::kAtDeltaThreshold, 14.0, 50);
    run_timeline("DS-1", core::AttackVector::kMoveOut,
                 core::TimingPolicy::kAtDeltaThreshold, 14.0, 65);
    run_timeline("DS-3", core::AttackVector::kMoveIn,
                 core::TimingPolicy::kAtDeltaThreshold, 30.0, 48);
    run_timeline("DS-4", core::AttackVector::kMoveIn,
                 core::TimingPolicy::kAtDeltaThreshold, 30.0, 24);
  } else if (mode == 3) {
    // Golden sweep across seeds.
    for (const char* key : {"DS-1", "DS-2", "DS-3", "DS-4",
                         "DS-5"}) {
      int eb = 0, crash = 0;
      double worst = 1e9;
      const int N = 40;
      for (int i = 0; i < N; ++i) {
        experiments::LoopConfig loop;
        stats::Rng rng(100 + i);
        sim::Scenario sc = sim::make_scenario(key, rng);
        experiments::ClosedLoop cl(sc, loop, 5000 + i * 13);
        auto r = cl.run();
        eb += r.eb;
        crash += r.crash;
        worst = std::min(worst, r.min_delta);
      }
      std::printf("GOLDEN-SWEEP %s: EB=%d/%d crash=%d/%d worst_minD=%.2f\n",
                  key, eb, N, crash, N, worst);
    }
  } else if (mode == 8) {
    for (double dt2 : {12.0, 16.0, 20.0}) {
      for (int k : {20, 31}) {
        int crash = 0, eb = 0;
        for (int i = 0; i < 8; ++i) {
          experiments::LoopConfig loop;
          stats::Rng rng(7);
          sim::Scenario sc = sim::make_scenario("DS-2", rng);
          experiments::ClosedLoop cl(sc, loop, 1001 + i);
          auto cfg = experiments::make_attacker_config(
              loop, core::AttackVector::kDisappear,
              core::TimingPolicy::kAtDeltaThreshold);
          cfg.delta_trigger = dt2;
          cfg.fixed_k = k;
          cl.set_attacker(std::make_unique<core::Robotack>(
              cfg, loop.camera, loop.noise, loop.mot, 2002 + i));
          auto r = cl.run();
          crash += r.crash;
          eb += r.eb;
        }
        std::printf("DS2 disappear trig=%.0f k=%d crash=%d/8 eb=%d/8\n", dt2,
                    k, crash, eb);
      }
    }
  } else if (mode == 7) {
    // Mini Table II: train/load oracles, run reduced campaigns.
    experiments::LoopConfig loop;
    experiments::ShTrainingConfig sh_cfg;
    auto oracles = experiments::load_or_train_oracles(
        experiments::default_cache_dir(), loop, sh_cfg);
    experiments::CampaignRunner runner(loop, oracles);
    const int N = argc > 2 ? std::atoi(argv[2]) : 30;
    for (auto spec : experiments::table2_campaigns(N, 777)) {
      auto r = runner.run(spec);
      std::printf("%-24s n=%d trig=%d K=%.0f EB=%d (%.1f%%) crash=%d (%.1f%%)\n",
                  spec.name.c_str(), r.n(), r.triggered_count(), r.median_k(),
                  r.eb_count(), 100.0 * r.eb_rate(), r.crash_count(),
                  100.0 * r.crash_rate());
    }
  } else if (mode == 6) {
    // EB forensics for a given scenario id (argv[2]).
    for (int i = 0; i < 40; ++i) {
      experiments::LoopConfig loop;
      stats::Rng rng(100 + i);
      sim::Scenario sc = sim::make_scenario("DS-4", rng);
      experiments::ClosedLoop cl(sc, loop, 5000 + i * 13);
      auto r = cl.run();
      if (r.eb) std::printf("EB run seed=%d\n", i);
    }
  } else if (mode == 5) {
    // Forensics: find failing DS-1 golden seeds, dump dense timeline.
    for (int i = 0; i < 40; ++i) {
      experiments::LoopConfig loop;
      loop.keep_timeline = true;
      stats::Rng rng(100 + i);
      sim::Scenario sc = sim::make_scenario(
          argc > 2 && std::atoi(argv[2]) == 2 ? "DS-2" : "DS-1", rng);
      experiments::ClosedLoop cl(sc, loop, 5000 + i * 13);
      auto r = cl.run();
      if (!r.crash) continue;
      std::printf("FAIL seed=%d minD=%.2f end=%.2f\n", i, r.min_delta,
                  r.end_time);
      // find first index where delta < 6
      std::size_t first = 0;
      for (std::size_t j = 0; j < r.timeline.size(); ++j) {
        if (r.timeline[j].delta < 6.0) { first = j > 30 ? j - 30 : 0; break; }
      }
      for (std::size_t j = first;
           j < r.timeline.size() && j < first + 90; j += 2) {
        const auto& s2 = r.timeline[j];
        std::printf("  t=%5.2f delta=%6.2f dsafe=%6.2f v=%5.2f eb=%d\n",
                    s2.time, s2.delta, s2.d_safe, s2.ego_speed, s2.eb_active);
      }
      break;
    }
  } else if (mode == 2) {
    experiments::LoopConfig loop;
    experiments::ShTrainingConfig cfg;
    cfg.repeats = 1;
    auto ds = experiments::generate_sh_dataset(core::AttackVector::kDisappear,
                                               loop, cfg);
    std::printf("Disappear dataset: %zu samples\n", ds.size());
    for (std::size_t j = 0; j < ds.size() && j < 12; ++j) {
      std::printf("  delta=%6.2f vx=%6.2f vy=%6.2f ax=%6.2f ay=%6.2f k=%4.0f -> %6.2f\n",
                  ds.x(0, j), ds.x(1, j), ds.x(2, j), ds.x(3, j), ds.x(4, j),
                  ds.x(5, j), ds.y(0, j));
    }
  }
  return 0;
}
