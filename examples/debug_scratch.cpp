// Temporary debugging harness (not part of the public examples).
#include <algorithm>
#include <cstdio>

#include "experiments/campaign.hpp"
#include "experiments/sh_training.hpp"

using namespace rt;

static void run_timeline(const std::string& key, core::AttackVector v,
                         core::TimingPolicy timing, double delta_trigger,
                         int fixed_k) {
  experiments::LoopConfig loop;
  loop.keep_timeline = true;
  stats::Rng rng(7);
  sim::Scenario sc = sim::make_scenario(key, rng);
  experiments::ClosedLoop cl(sc, loop, 1001);
  if (timing != core::TimingPolicy::kSafetyHijacker || true) {
    auto cfg = experiments::make_attacker_config(loop, v, timing);
    cfg.delta_trigger = delta_trigger;
    cfg.fixed_k = fixed_k;
    cl.set_attacker(std::make_unique<core::Robotack>(cfg, loop.camera,
                                                     loop.noise, loop.mot,
                                                     2002));
  }
  auto r = cl.run();
  std::printf("%s %s: EB=%d crash=%d coll=%d minD=%.2f trig=%d t=%.2f K=%d K'=%d pert=%d\n",
              key.c_str(), core::to_string(v), r.eb, r.crash,
              r.collision, r.min_delta_since_attack, r.attack.triggered,
              r.attack.start_time, r.attack.planned_k, r.attack.k_prime,
              r.attack.frames_perturbed);
  for (std::size_t i = 0; i < r.timeline.size(); i += 8) {
    const auto& s = r.timeline[i];
    std::printf("  t=%5.2f delta=%7.2f dsafe=%7.2f v=%5.2f eb=%d atk=%d\n",
                s.time, s.delta, s.d_safe, s.ego_speed, s.eb_active,
                s.attack_active);
  }
}

static void golden_timeline(const std::string& key) {
  experiments::LoopConfig loop;
  loop.keep_timeline = true;
  stats::Rng rng(7);
  sim::Scenario sc = sim::make_scenario(key, rng);
  experiments::ClosedLoop cl(sc, loop, 1001);
  auto r = cl.run();
  std::printf("GOLDEN %s: EB=%d crash=%d coll=%d minD=%.2f end=%.1f\n",
              key.c_str(), r.eb, r.crash, r.collision, r.min_delta,
              r.end_time);
  for (std::size_t i = 0; i < r.timeline.size(); i += 8) {
    const auto& s = r.timeline[i];
    std::printf("  t=%5.2f delta=%7.2f dsafe=%7.2f v=%5.2f eb=%d\n", s.time,
                s.delta, s.d_safe, s.ego_speed, s.eb_active);
  }
}

int main(int argc, char** argv) {
  const int mode = argc > 1 ? std::atoi(argv[1]) : 0;
  if (mode == 0) {
    for (const char* key : {"DS-1", "DS-2", "DS-3", "DS-4"}) {
      golden_timeline(key);
    }
  } else if (mode == 1) {
    run_timeline("DS-2", core::AttackVector::kDisappear,
                 core::TimingPolicy::kAtDeltaThreshold, 20.0, 30);
    run_timeline("DS-2", core::AttackVector::kMoveOut,
                 core::TimingPolicy::kAtDeltaThreshold, 20.0, 40);
    run_timeline("DS-1", core::AttackVector::kDisappear,
                 core::TimingPolicy::kAtDeltaThreshold, 14.0, 50);
    run_timeline("DS-1", core::AttackVector::kMoveOut,
                 core::TimingPolicy::kAtDeltaThreshold, 14.0, 65);
    run_timeline("DS-3", core::AttackVector::kMoveIn,
                 core::TimingPolicy::kAtDeltaThreshold, 30.0, 48);
    run_timeline("DS-4", core::AttackVector::kMoveIn,
                 core::TimingPolicy::kAtDeltaThreshold, 30.0, 24);
  } else if (mode == 3) {
    // Golden sweep across seeds.
    for (const char* key : {"DS-1", "DS-2", "DS-3", "DS-4",
                         "DS-5"}) {
      int eb = 0, crash = 0;
      double worst = 1e9;
      const int N = 40;
      for (int i = 0; i < N; ++i) {
        experiments::LoopConfig loop;
        stats::Rng rng(100 + i);
        sim::Scenario sc = sim::make_scenario(key, rng);
        experiments::ClosedLoop cl(sc, loop, 5000 + i * 13);
        auto r = cl.run();
        eb += r.eb;
        crash += r.crash;
        worst = std::min(worst, r.min_delta);
      }
      std::printf("GOLDEN-SWEEP %s: EB=%d/%d crash=%d/%d worst_minD=%.2f\n",
                  key, eb, N, crash, N, worst);
    }
  } else if (mode == 8) {
    for (double dt2 : {12.0, 16.0, 20.0}) {
      for (int k : {20, 31}) {
        int crash = 0, eb = 0;
        for (int i = 0; i < 8; ++i) {
          experiments::LoopConfig loop;
          stats::Rng rng(7);
          sim::Scenario sc = sim::make_scenario("DS-2", rng);
          experiments::ClosedLoop cl(sc, loop, 1001 + i);
          auto cfg = experiments::make_attacker_config(
              loop, core::AttackVector::kDisappear,
              core::TimingPolicy::kAtDeltaThreshold);
          cfg.delta_trigger = dt2;
          cfg.fixed_k = k;
          cl.set_attacker(std::make_unique<core::Robotack>(
              cfg, loop.camera, loop.noise, loop.mot, 2002 + i));
          auto r = cl.run();
          crash += r.crash;
          eb += r.eb;
        }
        std::printf("DS2 disappear trig=%.0f k=%d crash=%d/8 eb=%d/8\n", dt2,
                    k, crash, eb);
      }
    }
  } else if (mode == 7) {
    // Mini Table II: train/load oracles, run reduced campaigns.
    experiments::LoopConfig loop;
    experiments::ShTrainingConfig sh_cfg;
    auto oracles = experiments::load_or_train_oracles(
        experiments::default_cache_dir(), loop, sh_cfg);
    experiments::CampaignRunner runner(loop, oracles);
    const int N = argc > 2 ? std::atoi(argv[2]) : 30;
    for (auto spec : experiments::table2_campaigns(N, 777)) {
      auto r = runner.run(spec);
      std::printf("%-24s n=%d trig=%d K=%.0f EB=%d (%.1f%%) crash=%d (%.1f%%)\n",
                  spec.name.c_str(), r.n(), r.triggered_count(), r.median_k(),
                  r.eb_count(), 100.0 * r.eb_rate(), r.crash_count(),
                  100.0 * r.crash_rate());
    }
  } else if (mode == 6) {
    // EB forensics for a given scenario id (argv[2]).
    for (int i = 0; i < 40; ++i) {
      experiments::LoopConfig loop;
      stats::Rng rng(100 + i);
      sim::Scenario sc = sim::make_scenario("DS-4", rng);
      experiments::ClosedLoop cl(sc, loop, 5000 + i * 13);
      auto r = cl.run();
      if (r.eb) std::printf("EB run seed=%d\n", i);
    }
  } else if (mode == 5) {
    // Forensics: find failing DS-1 golden seeds, dump dense timeline.
    for (int i = 0; i < 40; ++i) {
      experiments::LoopConfig loop;
      loop.keep_timeline = true;
      stats::Rng rng(100 + i);
      sim::Scenario sc = sim::make_scenario(
          argc > 2 && std::atoi(argv[2]) == 2 ? "DS-2" : "DS-1", rng);
      experiments::ClosedLoop cl(sc, loop, 5000 + i * 13);
      auto r = cl.run();
      if (!r.crash) continue;
      std::printf("FAIL seed=%d minD=%.2f end=%.2f\n", i, r.min_delta,
                  r.end_time);
      // find first index where delta < 6
      std::size_t first = 0;
      for (std::size_t j = 0; j < r.timeline.size(); ++j) {
        if (r.timeline[j].delta < 6.0) { first = j > 30 ? j - 30 : 0; break; }
      }
      for (std::size_t j = first;
           j < r.timeline.size() && j < first + 90; j += 2) {
        const auto& s2 = r.timeline[j];
        std::printf("  t=%5.2f delta=%6.2f dsafe=%6.2f v=%5.2f eb=%d\n",
                    s2.time, s2.delta, s2.d_safe, s2.ego_speed, s2.eb_active);
      }
      break;
    }
  } else if (mode == 2) {
    experiments::LoopConfig loop;
    experiments::ShTrainingConfig cfg;
    cfg.repeats = 1;
    auto ds = experiments::generate_sh_dataset(core::AttackVector::kDisappear,
                                               loop, cfg);
    std::printf("Disappear dataset: %zu samples\n", ds.size());
    for (std::size_t j = 0; j < ds.size() && j < 12; ++j) {
      std::printf("  delta=%6.2f vx=%6.2f vy=%6.2f ax=%6.2f ay=%6.2f k=%4.0f -> %6.2f\n",
                  ds.x(0, j), ds.x(1, j), ds.x(2, j), ds.x(3, j), ds.x(4, j),
                  ds.x(5, j), ds.y(0, j));
    }
  }
  return 0;
}
