// Trace linter: strictly parses a Chrome trace-event JSON file written by
// the obs tracer and (optionally) requires named spans to be present.
//
//   trace_lint FILE [span ...]
//
// Exit 0: the file parses under the strict reader (full JSON grammar, no
// trailing bytes, schema-checked events) and every required span name
// occurs at least once. Exit 1 with a diagnostic otherwise. CI runs this
// on the traces its smoke passes produce, so a regression in the exporter
// (or a silently empty trace) fails the build instead of shipping a file
// Perfetto rejects.

#include <cstdio>
#include <string>

#include "obs/trace_reader.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE [required-span-name ...]\n",
                 argv[0]);
    return 2;
  }
  rt::obs::ParsedTrace trace;
  try {
    trace = rt::obs::parse_chrome_trace_file(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s: %s\n", argv[1], e.what());
    return 1;
  }

  std::size_t spans = 0;
  for (const auto& ev : trace.events) {
    if (ev.ph == "X") ++spans;
  }
  const auto pids = trace.span_pids();
  std::printf("%s: %zu events, %zu spans, %zu pids, dropped=%llu, "
              "absorb_failures=%llu\n",
              argv[1], trace.events.size(), spans, pids.size(),
              static_cast<unsigned long long>(trace.dropped_spans),
              static_cast<unsigned long long>(trace.absorb_failures));

  bool ok = true;
  for (int i = 2; i < argc; ++i) {
    const std::size_t n = trace.count_spans(argv[i]);
    if (n == 0) {
      std::fprintf(stderr, "%s: required span '%s' not found\n", argv[1],
                   argv[i]);
      ok = false;
    } else {
      std::printf("  span '%s': %zu\n", argv[i], n);
    }
  }
  return ok ? 0 : 1;
}
