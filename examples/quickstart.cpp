// Quickstart: one golden run and one attacked run of DS-2 (pedestrian
// illegally crossing), printed as a timeline.
//
// Demonstrates the core public API:
//   sim::ScenarioRegistry   -> driving scenario families (ground truth)
//   experiments::ClosedLoop -> the simulated LGSVL+Apollo rig
//   core::Robotack          -> the malware on the camera link
//   experiments oracles     -> training/caching the safety hijacker NN

#include <cstdio>

#include "experiments/campaign.hpp"
#include "experiments/sh_training.hpp"

using namespace rt;

namespace {

void print_result(const char* label, const experiments::RunResult& r) {
  std::printf("%-18s EB=%s crash=%s collision=%s min_delta=%.2fm", label,
              r.eb ? "yes" : "no ", r.crash ? "yes" : "no ",
              r.collision ? "yes" : "no ", r.min_delta_since_attack);
  if (r.attack.triggered) {
    std::printf("  [attack t=%.2fs K=%d K'=%d vector=%s victim=%s]",
                r.attack.start_time, r.attack.planned_k, r.attack.k_prime,
                core::to_string(r.attack.vector),
                sim::to_string(r.attack.victim_cls));
  }
  std::printf("\n");
}

}  // namespace

int main() {
  experiments::LoopConfig loop;

  std::printf("== RoboTack quickstart: DS-2 (pedestrian crossing) ==\n\n");

  // Train (or load cached) safety-hijacker oracles.
  std::printf("loading/training safety-hijacker oracles...\n");
  experiments::ShTrainingConfig sh_cfg;
  const auto oracles = experiments::load_or_train_oracles(
      experiments::default_cache_dir(), loop, sh_cfg);
  std::printf("oracles ready.\n\n");

  // Golden run: no malware.
  {
    stats::Rng rng(7);
    sim::Scenario ds2 = sim::make_scenario("DS-2", rng);
    experiments::ClosedLoop golden(ds2, loop, /*seed=*/1001);
    print_result("golden:", golden.run());
  }

  // Attacked run: RoboTack with the Move_Out vector.
  {
    stats::Rng rng(7);
    sim::Scenario ds2 = sim::make_scenario("DS-2", rng);
    experiments::ClosedLoop attacked(ds2, loop, /*seed=*/1001);
    auto cfg = experiments::make_attacker_config(
        loop, core::AttackVector::kMoveOut,
        core::TimingPolicy::kSafetyHijacker);
    auto attacker = std::make_unique<core::Robotack>(
        cfg, loop.camera, loop.noise, loop.mot, /*seed=*/2002);
    for (const auto& [v, o] : oracles) attacker->set_oracle(v, o);
    attacked.set_attacker(std::move(attacker));
    print_result("Move_Out attack:", attacked.run());
  }

  // Attacked run: Disappear.
  {
    stats::Rng rng(7);
    sim::Scenario ds2 = sim::make_scenario("DS-2", rng);
    experiments::ClosedLoop attacked(ds2, loop, /*seed=*/1001);
    auto cfg = experiments::make_attacker_config(
        loop, core::AttackVector::kDisappear,
        core::TimingPolicy::kSafetyHijacker);
    auto attacker = std::make_unique<core::Robotack>(
        cfg, loop.camera, loop.noise, loop.mot, /*seed=*/2002);
    for (const auto& [v, o] : oracles) attacker->set_oracle(v, o);
    attacked.set_attacker(std::move(attacker));
    print_result("Disappear attack:", attacked.run());
  }

  std::printf(
      "\nThe golden run brakes comfortably and stops short; the attacked\n"
      "runs hide or displace the pedestrian at the worst moment, forcing\n"
      "late emergency braking and (usually) an accident (min delta < 4 m).\n");
  return 0;
}
