// Domain example: the attacker's offline phase (§III-D phase 1 / §IV-B).
// Generates the (delta_inject, k) training sweeps for each attack vector,
// trains the 100/100/50 feed-forward oracle with Adam on a 60/40 split, and
// caches the weights under data/ for the benchmark harness.

#include <cstdio>

#include "experiments/sh_training.hpp"
#include "nn/loss.hpp"

using namespace rt;

int main() {
  experiments::LoopConfig loop;
  experiments::ShTrainingConfig cfg;

  for (const auto v : {core::AttackVector::kMoveOut,
                       core::AttackVector::kDisappear,
                       core::AttackVector::kMoveIn}) {
    std::printf("=== oracle for %s ===\n", core::to_string(v));
    std::printf("scenarios: ");
    for (const auto& key : experiments::scenarios_for(v)) {
      std::printf("%s ", key.c_str());
    }
    std::printf("\ngenerating (delta_inject, k) sweep: %zu x %zu x %d runs...\n",
                cfg.delta_triggers.size(), cfg.ks.size(), cfg.repeats);
    const nn::Dataset data = experiments::generate_sh_dataset(v, loop, cfg);
    std::printf("dataset: %zu labeled launches\n", data.size());

    auto oracle = std::make_shared<core::SafetyOracle>();
    const nn::TrainResult result = oracle->train(data, cfg.train);
    std::printf("trained %zu epochs; val MSE %.2f; val MAE %.2f m\n",
                result.history.size(), result.final_val_loss,
                result.final_val_mae);

    const std::string path = experiments::default_cache_dir() +
                             std::string("/sh_oracle_") + core::to_string(v) +
                             ".txt";
    oracle->save(path);
    std::printf("saved -> %s\n\n", path.c_str());
  }
  std::printf(
      "paper reference: prediction within ~5 m (vehicles) / ~1.5 m\n"
      "(pedestrians) of the ground-truth post-attack safety potential.\n");
  return 0;
}
