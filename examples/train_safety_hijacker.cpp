// Domain example: the attacker's offline phase (§III-D phase 1 / §IV-B).
// Generates the (delta_inject, k) training sweeps for each attack vector —
// the launch grid fans over every core — trains the 100/100/50 feed-forward
// oracle with Adam on a 60/40 split, and caches the weights under data/
// (curriculum-keyed filename) for the benchmark harness.

#include <cstdio>

#include "experiments/reporting.hpp"
#include "experiments/sh_training.hpp"
#include "nn/loss.hpp"

using namespace rt;

int main() {
  experiments::LoopConfig loop;
  experiments::ShTrainingConfig cfg;
  // The default curriculum is the paper mapping (DS-1/DS-2 for
  // Move_Out/Disappear, DS-3/DS-4 for Move_In). To train on other
  // registered families instead, set e.g.
  //   cfg.curricula[core::AttackVector::kMoveOut] = {"DS-1", "cut-in"};

  for (const auto v : {core::AttackVector::kMoveOut,
                       core::AttackVector::kDisappear,
                       core::AttackVector::kMoveIn}) {
    std::printf("=== oracle for %s ===\n", core::to_string(v));
    const std::string curriculum =
        experiments::join(experiments::scenarios_for(v, cfg), ",");
    std::printf("curriculum: %s", curriculum.c_str());
    std::printf("\ngenerating (delta_inject, k) sweep: %zu x %zu x %d runs...\n",
                cfg.delta_triggers.size(), cfg.ks.size(), cfg.repeats);
    const nn::Dataset data = experiments::generate_sh_dataset(v, loop, cfg);
    std::printf("dataset: %zu labeled launches (hash %016llx)\n", data.size(),
                static_cast<unsigned long long>(data.content_hash()));

    auto oracle = std::make_shared<core::SafetyOracle>(cfg.seed ^ 0xabcd);
    const nn::TrainResult result = oracle->train(data, cfg.train);
    std::printf("trained %zu epochs; val MSE %.2f; val MAE %.2f m\n",
                result.history.size(), result.final_val_loss,
                result.final_val_mae);
    oracle->set_provenance({core::to_string(v), curriculum,
                            experiments::sh_dataset_fingerprint(v, cfg)});

    const std::string path = experiments::oracle_cache_path(
        experiments::default_cache_dir(), v, cfg);
    oracle->save(path);
    std::printf("saved -> %s  (curriculum %s, fingerprint %016llx)\n\n",
                path.c_str(), oracle->provenance().curriculum.c_str(),
                static_cast<unsigned long long>(
                    oracle->provenance().fingerprint));
  }
  std::printf(
      "paper reference: prediction within ~5 m (vehicles) / ~1.5 m\n"
      "(pedestrians) of the ground-truth post-attack safety potential.\n");
  return 0;
}
