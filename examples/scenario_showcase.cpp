// Showcase of the open scenario API: registers a custom scenario family at
// startup, then drives it — together with the built-in extended families —
// through a CampaignGridBuilder grid on the parallel campaign engine.
//
// This is the "adding a scenario is one registration + one grid line"
// workflow from README "Defining a new scenario". It uses the no-oracle
// NoSh/Golden modes so it runs hermetically (no training, no cache).

#include <cstdio>
#include <cstdlib>

#include "experiments/campaign_grid.hpp"
#include "experiments/reporting.hpp"
#include "sim/road.hpp"
#include "sim/scenario_registry.hpp"
#include "stats/summary.hpp"

using namespace rt;

namespace {

// A scenario the paper never had: a vehicle pulls out of the parking lane
// into the ego lane while the EV approaches.
sim::Scenario make_pull_out(const sim::ScenarioParams& p, stats::Rng&) {
  sim::Scenario s;
  s.key = "pull-out";
  s.name = "pull-out";
  s.description = "parked vehicle pulls out into the ego lane ahead of the EV";
  s.duration = p.duration;
  s.ego_cruise_speed = sim::kph_to_mps(p.ego_speed_kph);
  s.ego = sim::EgoVehicle(0.0, sim::kph_to_mps(p.ego_speed_kph));
  s.target_id = 1;
  s.actors.emplace_back(
      1, sim::ActorType::kVehicle,
      math::Vec2{p.target_gap, sim::Road::kParkingLaneCenter},
      sim::StartTrigger::ego_within(p.trigger_distance),
      std::vector<sim::Waypoint>{
          {{p.target_gap + 25.0, sim::Road::kEgoLaneCenter},
           sim::kph_to_mps(0.6 * p.target_speed_kph)},
          {{3000.0, sim::Road::kEgoLaneCenter},
           sim::kph_to_mps(p.target_speed_kph)}});
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 6;

  // 1. Register the custom family (one call; DS-1..DS-5 and the extended
  //    families are pre-registered).
  sim::ScenarioParams defaults;
  defaults.target_gap = 90.0;
  defaults.trigger_distance = 60.0;
  defaults.target_speed_kph = 30.0;
  sim::ScenarioRegistry::global().register_scenario(
      {"pull-out", "parked vehicle pulls out into the ego lane", defaults,
       &make_pull_out});

  std::printf("registered scenario families:\n");
  for (const auto& key : sim::ScenarioRegistry::global().keys()) {
    std::printf("  %-20s %s\n", key.c_str(),
                sim::ScenarioRegistry::global().get(key).description.c_str());
  }

  // 2. One grid over the non-paper families: golden sanity runs plus a
  //    no-oracle attack, with a sweep of the lead/target speed.
  const auto specs =
      experiments::CampaignGridBuilder()
          .runs(n)
          .seed(24680)
          .modes({experiments::AttackMode::kGolden,
                  experiments::AttackMode::kNoSh})
          .vectors({core::AttackVector::kMoveOut})
          .scenarios({"cut-in", "staggered-crossing", "dense-follow",
                      "pull-out"})
          .add_grid()
          .modes({experiments::AttackMode::kNoSh})
          .scenarios({"pull-out"})
          .sweep("target_speed_kph", {24.0, 30.0, 36.0})
          .build();

  experiments::LoopConfig loop;
  experiments::CampaignRunner runner(loop, {});
  experiments::CampaignScheduler scheduler(runner, 0);
  std::printf("\nrunning %zu campaigns x %d runs (%u threads)...\n",
              specs.size(), n, scheduler.threads());
  const auto results = scheduler.run_all(specs);

  std::vector<std::string> head{"campaign", "#runs", "EB", "crash",
                                "min delta (median)"};
  std::vector<std::vector<std::string>> rows;
  for (const auto& r : results) {
    std::vector<double> dmin;
    for (const auto& run : r.runs) dmin.push_back(run.min_delta);
    rows.push_back({r.spec.name, std::to_string(r.n()),
                    experiments::fmt_pct(r.eb_rate()),
                    experiments::fmt_pct(r.crash_rate()),
                    experiments::fmt(stats::median(dmin), 1)});
  }
  std::printf("%s", experiments::format_table(head, rows).c_str());
  std::printf(
      "\ngolden rows stay accident-free; the no-SH attack rows show how\n"
      "vulnerable each new family is even without the learned timing.\n");
  return 0;
}
