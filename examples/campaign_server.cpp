// Campaign-as-a-service front-end: a long-lived process answering
// line-delimited campaign-grid requests against one shared content-hash
// result cache (rt::service::CampaignService). Batch mode reads requests
// from stdin; --socket PATH serves the same protocol on a Unix stream
// socket to MANY concurrent clients: each connection gets a reader thread,
// parsed requests land in a bounded queue (overflow is answered `busy`),
// and a single executor thread runs grids one at a time — so results stay
// bit-deterministic (a repeated request is byte-identical, whatever the
// client interleaving) while parsing and IO overlap execution. Operational
// logs go to stderr as single-line JSONL records ({"ts":...,"event":...})
// so CI can compare result bytes across passes while asserting on the
// structured fields (request ids, hit counts, outcomes) instead of
// scraping free text.
//
// Request language (one request per line; '#' starts a comment):
//   run scenarios=DS-1,DS-2 vectors=Disappear modes=RwoSH,Golden
//       runs=6 seed=11 [monitors=m1,m2] [param=name:value]
//       [sweep=name:v1,v2,...] [deadline_ms=N]      (all on ONE line)
//   stats            # one-line JSON metrics snapshot (obs registry)
//   quit | shutdown
// Vectors: Disappear, Move_Out, Move_In. Modes: R, RwoSH, Golden, Random.
// `param` pins one scenario parameter (repeatable); `sweep` crosses a
// parameter axis exactly like the grid builder's sweep(). `deadline_ms`
// bounds one request (overriding --request-timeout-ms); on expiry the
// response carries `error deadline-exceeded ...` records instead of rows
// for the unfinished campaigns.
//
// Responses (socket mode) end with `end\n`; a request rejected by the full
// queue is answered `busy\n` (and nothing else). A client line `shutdown`
// — or SIGTERM/SIGINT — drains the queued requests, answers them, then
// exits 0. RT_CHAOS arms the deterministic fault injector at startup (see
// service/fault_injection.hpp), which is how the chaos suite drives
// client-write failures through a real server.
//
// Observability: `--trace PATH` (or the RT_TRACE env var, whose value is
// the path) arms the span tracer and writes a Chrome trace-event JSON file
// on exit; requests get queue-wait / execute / serialize spans on top of
// the service- and scheduler-level ones. `--metrics PATH` dumps the final
// registry snapshot as one JSONL line; the `stats` verb serves the same
// snapshot in-band.

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cinttypes>
#include <cmath>
#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <deque>
#include <iostream>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "experiments/campaign_grid.hpp"
#include "experiments/sh_training.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/campaign_service.hpp"
#include "service/fault_injection.hpp"

using namespace rt;

namespace {

struct ServerOptions {
  std::string cache_dir;       ///< empty = no result cache
  std::size_t cache_max_mb{256};
  unsigned workers{0};         ///< forked workers per miss batch
  unsigned threads{0};         ///< in-process threads when workers == 0
  bool json{false};            ///< stream JSONL instead of CSV
  std::string socket_path;     ///< empty = stdin batch mode
  bool no_oracles{false};      ///< skip oracle loading (R requests run
                               ///< without a safety hijacker model)
  int backlog{16};             ///< listen(2) backlog
  int queue_limit{8};          ///< pending requests before `busy` replies
  double request_timeout_ms{0.0};  ///< default per-request deadline; 0 = off
  std::string trace_path;      ///< Chrome trace JSON written on exit
  std::string metrics_path;    ///< final metrics snapshot (one JSONL line)
};

[[noreturn]] void usage(const char* argv0, int code) {
  std::FILE* out = code == 0 ? stdout : stderr;
  std::fprintf(
      out,
      "usage: %s [--cache-dir PATH] [--cache-max-mb N] [--workers N]\n"
      "          [--threads N] [--json] [--socket PATH] [--no-oracles]\n"
      "          [--backlog N] [--queue-limit N] [--request-timeout-ms N]\n"
      "          [--trace PATH] [--metrics PATH]\n"
      "Reads 'run ...' requests from stdin (or the Unix socket) and streams\n"
      "results; see the header of examples/campaign_server.cpp for the\n"
      "request language. RT_CAMPAIGN_CACHE sets the default cache dir;\n"
      "RT_CHAOS arms the deterministic fault injector; RT_TRACE=PATH arms\n"
      "the span tracer (same as --trace PATH). --metrics dumps the final\n"
      "metrics snapshot; the `stats` verb serves it in-band.\n",
      argv0);
  std::exit(code);
}

/// Strict unsigned parse: the WHOLE string must be base-10 digits and the
/// value must land in [lo, hi]. Unlike atoi/strtoull this rejects empty
/// strings, signs, whitespace, trailing junk ("12x") and overflow instead
/// of silently returning 0 or wrapping — a garbled `runs=abc` must be an
/// error reply, not a 0-run campaign.
std::optional<std::uint64_t> parse_uint(const std::string& s,
                                        std::uint64_t lo,
                                        std::uint64_t hi) {
  if (s.empty()) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (v > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return std::nullopt;  // overflow
    }
    v = v * 10 + digit;
  }
  if (v < lo || v > hi) return std::nullopt;
  return v;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(text);
  while (std::getline(in, item, sep)) out.push_back(item);
  return out;
}

/// Parsed key=value arguments of one `run` request.
struct Request {
  std::vector<std::string> scenarios;
  std::vector<core::AttackVector> vectors{core::AttackVector::kDisappear};
  std::vector<experiments::AttackMode> modes{
      experiments::AttackMode::kRobotack};
  std::vector<std::string> monitors;
  int runs{8};
  std::uint64_t seed{20200613};
  double deadline_ms{0.0};  ///< 0 = use the server default
  std::vector<std::pair<std::string, std::vector<double>>> sweeps;
};

std::optional<core::AttackVector> parse_vector(const std::string& name) {
  if (name == "Disappear") return core::AttackVector::kDisappear;
  if (name == "Move_Out") return core::AttackVector::kMoveOut;
  if (name == "Move_In") return core::AttackVector::kMoveIn;
  return std::nullopt;
}

std::optional<experiments::AttackMode> parse_mode(const std::string& name) {
  if (name == "R") return experiments::AttackMode::kRobotack;
  if (name == "RwoSH") return experiments::AttackMode::kNoSh;
  if (name == "Golden") return experiments::AttackMode::kGolden;
  if (name == "Random") return experiments::AttackMode::kRandomBaseline;
  return std::nullopt;
}

/// Parses everything after the `run` verb. Returns nullopt (with a stderr
/// diagnostic) on any unknown key, name or malformed number — a bad
/// request is rejected, never half-run.
std::optional<Request> parse_request(const std::vector<std::string>& words) {
  Request req;
  for (std::size_t w = 1; w < words.size(); ++w) {
    const std::string& word = words[w];
    const std::size_t eq = word.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "error: expected key=value, got '%s'\n",
                   word.c_str());
      return std::nullopt;
    }
    const std::string key = word.substr(0, eq);
    const std::string value = word.substr(eq + 1);
    if (key == "scenarios") {
      req.scenarios = split(value, ',');
    } else if (key == "vectors") {
      req.vectors.clear();
      for (const auto& name : split(value, ',')) {
        const auto v = parse_vector(name);
        if (!v) {
          std::fprintf(stderr, "error: unknown vector '%s'\n", name.c_str());
          return std::nullopt;
        }
        req.vectors.push_back(*v);
      }
    } else if (key == "modes") {
      req.modes.clear();
      for (const auto& name : split(value, ',')) {
        const auto m = parse_mode(name);
        if (!m) {
          std::fprintf(stderr, "error: unknown mode '%s'\n", name.c_str());
          return std::nullopt;
        }
        req.modes.push_back(*m);
      }
    } else if (key == "monitors") {
      req.monitors = split(value, ',');
    } else if (key == "runs") {
      const auto runs = parse_uint(value, 1,
                                   std::numeric_limits<int>::max());
      if (!runs) {
        std::fprintf(stderr, "error: bad runs '%s' (want a positive integer)\n",
                     value.c_str());
        return std::nullopt;
      }
      req.runs = static_cast<int>(*runs);
    } else if (key == "seed") {
      const auto seed = parse_uint(
          value, 0, std::numeric_limits<std::uint64_t>::max());
      if (!seed) {
        std::fprintf(stderr, "error: bad seed '%s'\n", value.c_str());
        return std::nullopt;
      }
      req.seed = *seed;
    } else if (key == "deadline_ms") {
      const auto ms = parse_uint(value, 1, 1ull << 40);
      if (!ms) {
        std::fprintf(stderr, "error: bad deadline_ms '%s'\n", value.c_str());
        return std::nullopt;
      }
      req.deadline_ms = static_cast<double>(*ms);
    } else if (key == "param" || key == "sweep") {
      const std::size_t colon = value.find(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "error: %s expects name:value[,value...]\n",
                     key.c_str());
        return std::nullopt;
      }
      std::vector<double> values;
      for (const auto& tok : split(value.substr(colon + 1), ',')) {
        char* end = nullptr;
        const double d = std::strtod(tok.c_str(), &end);
        if (end == tok.c_str() || *end != '\0' || !std::isfinite(d)) {
          // Unconsumed trailing characters and nan/inf tokens are both
          // rejected — a non-finite scenario parameter is never meaningful.
          std::fprintf(stderr, "error: bad %s value '%s'\n", key.c_str(),
                       tok.c_str());
          return std::nullopt;
        }
        values.push_back(d);
      }
      if (values.empty() || (key == "param" && values.size() != 1)) {
        std::fprintf(stderr, "error: bad %s '%s'\n", key.c_str(),
                     value.c_str());
        return std::nullopt;
      }
      req.sweeps.emplace_back(value.substr(0, colon), std::move(values));
    } else {
      std::fprintf(stderr, "error: unknown key '%s'\n", key.c_str());
      return std::nullopt;
    }
  }
  if (req.scenarios.empty()) {
    std::fprintf(stderr, "error: request needs scenarios=...\n");
    return std::nullopt;
  }
  return req;
}

/// Expands a request into campaign specs via the shared grid builder (a
/// `param` pin is a one-value sweep, so per-family defaults survive for
/// everything unpinned).
std::optional<std::vector<experiments::CampaignSpec>> build_specs(
    const Request& req) {
  experiments::CampaignGridBuilder builder;
  builder.scenarios(req.scenarios)
      .vectors(req.vectors)
      .modes(req.modes)
      .runs(req.runs)
      .seed(req.seed);
  if (!req.monitors.empty()) builder.monitors(req.monitors);
  for (const auto& [name, values] : req.sweeps) builder.sweep(name, values);
  try {
    return builder.build();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return std::nullopt;
  }
}

// ---------------------------------------------------------------------------
// Structured stderr logging: every operational record is one JSON line with
// a wall-clock timestamp (`ts`) and an `event` discriminator. Results stay
// on stdout (or the socket); stderr is machine-parseable.

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

/// Emits {"ts":"...","event":...} with `fields` spliced in after ts.
/// Wall-clock (not monotonic) on purpose: log timestamps are for humans
/// and log collectors; all measured durations use obs::MonotonicClock.
void log_json(const std::string& fields) {
  char ts[32];
  const std::time_t now = std::time(nullptr);
  struct tm tm_utc {};
  ::gmtime_r(&now, &tm_utc);
  std::strftime(ts, sizeof ts, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
  std::fprintf(stderr, "{\"ts\":\"%s\",%s}\n", ts, fields.c_str());
}

/// Request ids are assigned in EXECUTION order (the executor is the single
/// determinism barrier), so id N in the log is the N-th grid actually run,
/// whatever the client interleaving.
std::atomic<std::uint64_t> g_request_id{0};

const obs::Histogram& request_latency_histogram() {
  static const obs::Histogram h = obs::MetricsRegistry::global().histogram(
      "rt_server_request_latency_ms",
      {1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000, 10000},
      "End-to-end grid request wall time in milliseconds");
  return h;
}

const char* kCsvHeader =
    "name,scenario,vector,mode,runs,seed,n,triggered,eb,crash,detected,"
    "false_alarms,eb_rate,crash_rate,detection_rate,median_k\n";

void append_result(const experiments::CampaignResult& r, bool json,
                   std::string& out) {
  const auto& s = r.spec;
  char buf[512];
  if (json) {
    std::snprintf(
        buf, sizeof buf,
        "{\"name\":\"%s\",\"scenario\":\"%s\",\"vector\":\"%s\","
        "\"mode\":\"%s\",\"runs\":%d,\"seed\":%" PRIu64 ",\"n\":%d,"
        "\"triggered\":%d,\"eb\":%d,\"crash\":%d,\"detected\":%d,"
        "\"false_alarms\":%d,\"eb_rate\":%.6f,\"crash_rate\":%.6f,"
        "\"detection_rate\":%.6f,\"median_k\":%.6f}\n",
        s.name.c_str(), s.scenario.c_str(), core::to_string(s.vector),
        to_string(s.mode), s.runs, s.seed, r.n(), r.triggered_count(),
        r.eb_count(), r.crash_count(), r.detected_count(),
        r.false_alarm_count(), r.eb_rate(), r.crash_rate(),
        r.detection_rate(), r.median_k());
  } else {
    std::snprintf(buf, sizeof buf,
                  "%s,%s,%s,%s,%d,%" PRIu64 ",%d,%d,%d,%d,%d,%d,%.6f,%.6f,"
                  "%.6f,%.6f\n",
                  s.name.c_str(), s.scenario.c_str(),
                  core::to_string(s.vector), to_string(s.mode), s.runs,
                  s.seed, r.n(), r.triggered_count(), r.eb_count(),
                  r.crash_count(), r.detected_count(), r.false_alarm_count(),
                  r.eb_rate(), r.crash_rate(), r.detection_rate(),
                  r.median_k());
  }
  out += buf;
}

/// Renders a checked grid response: one row per COMPLETED campaign, one
/// typed `error <code> <name> <message>` line per incomplete one (same in
/// JSON mode, as an error object). Deterministic: the same request against
/// the same cache state renders the same bytes.
std::string render_response(const service::GridResponse& response,
                            bool json) {
  std::string out;
  if (!json && !response.results.empty()) out += kCsvHeader;
  std::vector<char> errored(response.results.size(), 0);
  for (const auto& err : response.errors) {
    if (err.spec_index < errored.size()) errored[err.spec_index] = 1;
  }
  for (std::size_t i = 0; i < response.results.size(); ++i) {
    if (!errored[i]) append_result(response.results[i], json, out);
  }
  for (const auto& err : response.errors) {
    const std::string name = err.spec_index < response.results.size()
                                 ? response.results[err.spec_index].spec.name
                                 : std::string("?");
    char buf[512];
    if (json) {
      std::snprintf(buf, sizeof buf,
                    "{\"error\":\"%s\",\"name\":\"%s\",\"message\":\"%s\"}\n",
                    experiments::to_string(err.code), name.c_str(),
                    err.message.c_str());
    } else {
      std::snprintf(buf, sizeof buf, "error %s %s %s\n",
                    experiments::to_string(err.code), name.c_str(),
                    err.message.c_str());
    }
    out += buf;
  }
  return out;
}

/// One JSONL record per executed request: id, sizes, cache hits, wall time
/// and the outcome ("ok" or the first typed error code). Also feeds the
/// request-latency histogram, so the `stats` verb and the log agree.
void log_request_stats(const service::CampaignService& svc,
                       const service::GridResponse& response,
                       std::uint64_t id) {
  const auto& rs = svc.last_request();
  request_latency_histogram().observe(rs.wall_ms);
  const char* outcome = response.errors.empty()
                            ? "ok"
                            : experiments::to_string(
                                  response.errors.front().code);
  char buf[320];
  std::snprintf(buf, sizeof buf,
                "\"event\":\"request\",\"id\":%llu,\"specs\":%zu,"
                "\"hits\":%zu,\"misses\":%zu,\"errors\":%zu,"
                "\"wall_ms\":%.1f,\"outcome\":\"%s\"",
                static_cast<unsigned long long>(id), rs.specs, rs.cache_hits,
                rs.specs - rs.cache_hits, rs.errors, rs.wall_ms, outcome);
  log_json(buf);
}

void print_cache_summary(const service::CampaignService& svc) {
  const auto cs = svc.cache_stats();
  char buf[384];
  std::snprintf(buf, sizeof buf,
                "\"event\":\"cache_summary\",\"hits\":%llu,\"misses\":%llu,"
                "\"stale\":%llu,\"corrupt\":%llu,\"stores\":%llu,"
                "\"evictions\":%llu,\"io_errors\":%llu,\"degraded\":%s",
                static_cast<unsigned long long>(cs.hits),
                static_cast<unsigned long long>(cs.misses),
                static_cast<unsigned long long>(cs.stale),
                static_cast<unsigned long long>(cs.corrupt),
                static_cast<unsigned long long>(cs.stores),
                static_cast<unsigned long long>(cs.evictions),
                static_cast<unsigned long long>(cs.io_errors),
                svc.cache_degraded() ? "true" : "false");
  log_json(buf);
}

/// The `stats` verb body: the current registry snapshot as one JSON line.
std::string render_stats() {
  return obs::render_json(obs::MetricsRegistry::global().snapshot()) + "\n";
}

/// What one request line asked for.
enum class Verb : std::uint8_t { kNone, kRun, kStats, kQuit, kShutdown };

struct ParsedLine {
  Verb verb{Verb::kNone};
  std::vector<experiments::CampaignSpec> specs;  ///< kRun only
  double deadline_ms{0.0};
};

/// Strips comments, tokenizes, parses. kNone covers blank lines AND
/// malformed requests (which have already logged a diagnostic) — the
/// caller answers `end` either way, so a client never waits on a typo.
ParsedLine parse_line(const std::string& line, const ServerOptions& opts) {
  ParsedLine out;
  std::string text = line;
  const std::size_t hash = text.find('#');
  if (hash != std::string::npos) text.resize(hash);
  std::istringstream in(text);
  std::vector<std::string> words;
  std::string word;
  while (in >> word) words.push_back(word);
  if (words.empty()) return out;
  if (words[0] == "quit") {
    out.verb = Verb::kQuit;
    return out;
  }
  if (words[0] == "shutdown") {
    out.verb = Verb::kShutdown;
    return out;
  }
  if (words[0] == "stats") {
    out.verb = Verb::kStats;
    return out;
  }
  if (words[0] != "run") {
    std::fprintf(stderr, "error: unknown verb '%s'\n", words[0].c_str());
    return out;
  }
  const auto req = parse_request(words);
  if (!req) return out;
  auto specs = build_specs(*req);
  if (!specs) return out;
  out.verb = Verb::kRun;
  out.specs = std::move(*specs);
  out.deadline_ms =
      req->deadline_ms > 0.0 ? req->deadline_ms : opts.request_timeout_ms;
  return out;
}

/// Serves the stdin batch: every line is a request, EOF or quit ends the
/// batch, and the cumulative cache summary is the last stderr line.
int serve_stdin(service::CampaignService& svc, const ServerOptions& opts) {
  std::string line;
  while (std::getline(std::cin, line)) {
    const ParsedLine parsed = parse_line(line, opts);
    if (parsed.verb == Verb::kQuit || parsed.verb == Verb::kShutdown) break;
    if (parsed.verb == Verb::kStats) {
      const std::string body = render_stats();
      std::fwrite(body.data(), 1, body.size(), stdout);
      std::fflush(stdout);
      continue;
    }
    if (parsed.verb != Verb::kRun) continue;
    const std::uint64_t id =
        g_request_id.fetch_add(1, std::memory_order_relaxed) + 1;
    service::GridRequest request{parsed.specs, parsed.deadline_ms};
    service::GridResponse response;
    {
      RT_TRACE_SPAN("request_execute", "server", id, "request");
      response = svc.run_grid_checked(request);
    }
    std::string body;
    {
      RT_TRACE_SPAN("request_serialize", "server", id, "request");
      body = render_response(response, opts.json);
    }
    std::fwrite(body.data(), 1, body.size(), stdout);
    std::fflush(stdout);
    log_request_stats(svc, response, id);
  }
  print_cache_summary(svc);
  return 0;
}

// ---------------------------------------------------------------------------
// Socket mode: accept loop + per-connection reader threads + one executor.

/// Self-pipe written by the SIGTERM/SIGINT handler (and the `shutdown`
/// verb) to wake the accept loop's poll without races.
int g_wake_pipe_w = -1;

void wake_accept_loop() {
  if (g_wake_pipe_w >= 0) {
    const char byte = 'x';
    [[maybe_unused]] const ssize_t n = ::write(g_wake_pipe_w, &byte, 1);
  }
}

void on_terminate_signal(int) { wake_accept_loop(); }

/// One client connection. The reader thread and the executor both write to
/// it (replies vs results), serialized by `write_mu`. A failed write marks
/// the connection dead; queued work for a dead client is skipped. The fd
/// closes when the last reference drops, so the executor can never write
/// into a recycled descriptor.
struct Connection {
  explicit Connection(int fd) : fd(fd) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  /// Writes through the kClientWrite shim; detects (and latches) client
  /// death instead of trusting fputs' ignored return.
  void send(const std::string& bytes) {
    std::lock_guard<std::mutex> lock(write_mu);
    if (!open.load(std::memory_order_relaxed)) return;
    if (!service::write_all_fd(service::FaultSite::kClientWrite, fd,
                               bytes.data(), bytes.size())) {
      open.store(false, std::memory_order_relaxed);
      ::shutdown(fd, SHUT_RDWR);  // unblocks the reader thread's poll
      log_json("\"event\":\"client_drop\",\"error\":\"" +
               json_escape(std::strerror(errno)) + "\"");
    }
  }

  const int fd;
  std::mutex write_mu;
  std::atomic<bool> open{true};
};

struct Job {
  std::shared_ptr<Connection> conn;
  std::vector<experiments::CampaignSpec> specs;
  double deadline_ms{0.0};
  Verb verb{Verb::kRun};        ///< kRun or kStats
  std::uint64_t enqueue_ns{0};  ///< for the request_queue_wait span
};

/// Bounded multi-producer single-consumer request queue. `push` fails when
/// full (the caller answers `busy`); `close` lets the executor drain what
/// is queued and then stop — the graceful-shutdown path.
class JobQueue {
 public:
  explicit JobQueue(std::size_t limit)
      : limit_(limit),
        depth_(obs::MetricsRegistry::global().gauge(
            "rt_server_queue_depth",
            "Requests currently waiting in the executor queue")) {}

  bool push(Job job) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || jobs_.size() >= limit_) return false;
      jobs_.push_back(std::move(job));
      depth_.set(static_cast<std::int64_t>(jobs_.size()));
    }
    ready_.notify_one();
    return true;
  }

  /// Blocks for the next job; nullopt once closed AND drained.
  std::optional<Job> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [&] { return closed_ || !jobs_.empty(); });
    if (jobs_.empty()) return std::nullopt;
    Job job = std::move(jobs_.front());
    jobs_.pop_front();
    depth_.set(static_cast<std::int64_t>(jobs_.size()));
    return job;
  }

  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

 private:
  const std::size_t limit_;
  const obs::Gauge depth_;
  std::mutex mu_;
  std::condition_variable ready_;
  std::deque<Job> jobs_;
  bool closed_ = false;
};

/// Reads one connection: splits lines, parses, enqueues. Every `run` line
/// is answered — `busy` on queue overflow, otherwise (eventually) the
/// executor's rows + `end`. Malformed lines answer a bare `end` so clients
/// never hang on a typo. Returns when the client disconnects, sends
/// `quit`/`shutdown`, or the server begins draining.
void reader_loop(const std::shared_ptr<Connection>& conn, JobQueue& queue,
                 const ServerOptions& opts,
                 const std::atomic<bool>& draining) {
  std::string buffer;
  char chunk[4096];
  while (conn->open.load(std::memory_order_relaxed) &&
         !draining.load(std::memory_order_relaxed)) {
    struct pollfd pfd {};
    pfd.fd = conn->fd;
    pfd.events = POLLIN;
    const int pr = ::poll(&pfd, 1, 200);
    if (pr < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (pr == 0) continue;  // timeout: re-check the stop flags
    const ssize_t n = ::read(conn->fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) break;  // client closed its end
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t eol = 0;
    while ((eol = buffer.find('\n')) != std::string::npos) {
      const std::string line = buffer.substr(0, eol);
      buffer.erase(0, eol + 1);
      ParsedLine parsed = parse_line(line, opts);
      switch (parsed.verb) {
        case Verb::kQuit:
          conn->open.store(false, std::memory_order_relaxed);
          return;
        case Verb::kShutdown:
          wake_accept_loop();
          conn->open.store(false, std::memory_order_relaxed);
          return;
        case Verb::kRun:
        case Verb::kStats: {
          Job job{conn, std::move(parsed.specs), parsed.deadline_ms,
                  parsed.verb, obs::Tracer::now_ns()};
          if (!queue.push(std::move(job))) conn->send("busy\n");
          break;
        }
        case Verb::kNone:
          conn->send("end\n");
          break;
      }
    }
  }
}

/// Runs queued grids one at a time (the determinism barrier: concurrent
/// clients share one execution order, so byte-level results never depend
/// on scheduling) until the queue is closed and drained.
void executor_loop(service::CampaignService& svc, JobQueue& queue,
                   const ServerOptions& opts) {
  while (auto job = queue.pop()) {
    if (!job->conn->open.load(std::memory_order_relaxed)) continue;
    if (job->verb == Verb::kStats) {
      // Answered on the executor so a `stats` line queued after a `run`
      // reflects that run — same ordering the client observes.
      job->conn->send(render_stats() + "end\n");
      continue;
    }
    const std::uint64_t id =
        g_request_id.fetch_add(1, std::memory_order_relaxed) + 1;
    obs::record_span("request_queue_wait", "server", job->enqueue_ns,
                     obs::Tracer::now_ns(), id, "request");
    service::GridRequest request{std::move(job->specs), job->deadline_ms};
    service::GridResponse response;
    {
      RT_TRACE_SPAN("request_execute", "server", id, "request");
      response = svc.run_grid_checked(request);
    }
    std::string body;
    {
      RT_TRACE_SPAN("request_serialize", "server", id, "request");
      body = render_response(response, opts.json);
      body += "end\n";
    }
    job->conn->send(body);
    log_request_stats(svc, response, id);
  }
}

/// Serves the Unix socket until `shutdown`, SIGTERM or SIGINT, then drains
/// the queue (every accepted request is answered) and exits 0.
int serve_socket(service::CampaignService& svc, const ServerOptions& opts) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  struct sockaddr_un addr {};
  addr.sun_family = AF_UNIX;
  if (opts.socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "error: socket path too long\n");
    ::close(listener);
    return 1;
  }
  std::strncpy(addr.sun_path, opts.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  // A stale socket file is replaced; anything we CANNOT remove (EPERM, a
  // directory, ...) would make bind() fail confusingly later or hijack
  // traffic — refuse to start instead.
  if (::unlink(opts.socket_path.c_str()) != 0 && errno != ENOENT) {
    std::fprintf(stderr, "error: cannot remove stale socket %s: %s\n",
                 opts.socket_path.c_str(), std::strerror(errno));
    ::close(listener);
    return 1;
  }
  if (::bind(listener, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, opts.backlog) != 0) {
    std::perror("bind/listen");
    ::close(listener);
    return 1;
  }
  // Owner-only: campaign requests can cost minutes of CPU, so the socket
  // is not a shared utility by default.
  if (::chmod(opts.socket_path.c_str(), 0600) != 0) {
    std::perror("chmod");
    ::close(listener);
    ::unlink(opts.socket_path.c_str());
    return 1;
  }

  int wake[2];
  if (::pipe(wake) != 0) {
    std::perror("pipe");
    ::close(listener);
    ::unlink(opts.socket_path.c_str());
    return 1;
  }
  g_wake_pipe_w = wake[1];
  std::signal(SIGTERM, on_terminate_signal);
  std::signal(SIGINT, on_terminate_signal);

  log_json("\"event\":\"listening\",\"socket\":\"" +
           json_escape(opts.socket_path) +
           "\",\"backlog\":" + std::to_string(opts.backlog) +
           ",\"queue_limit\":" + std::to_string(opts.queue_limit));

  JobQueue queue(static_cast<std::size_t>(opts.queue_limit));
  std::atomic<bool> draining{false};
  std::thread executor(
      [&] { executor_loop(svc, queue, opts); });
  std::vector<std::thread> readers;
  std::vector<std::shared_ptr<Connection>> connections;

  for (;;) {
    struct pollfd pfds[2] = {};
    pfds[0].fd = listener;
    pfds[0].events = POLLIN;
    pfds[1].fd = wake[0];
    pfds[1].events = POLLIN;
    if (::poll(pfds, 2, -1) < 0) {
      if (errno == EINTR) continue;
      std::perror("poll");
      break;
    }
    if (pfds[1].revents != 0) break;  // shutdown verb or SIGTERM/SIGINT
    if (pfds[0].revents == 0) continue;
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      std::perror("accept");
      break;
    }
    auto conn = std::make_shared<Connection>(fd);
    connections.push_back(conn);
    readers.emplace_back(
        [conn, &queue, &opts, &draining] {
          reader_loop(conn, queue, opts, draining);
        });
  }

  // Graceful drain: no new connections or requests, but everything already
  // accepted is executed and answered before exit.
  log_json("\"event\":\"draining\"");
  draining.store(true, std::memory_order_relaxed);
  ::close(listener);
  ::unlink(opts.socket_path.c_str());
  for (auto& t : readers) t.join();
  queue.close();
  executor.join();
  for (auto& conn : connections) {
    conn->open.store(false, std::memory_order_relaxed);
  }
  connections.clear();
  ::close(wake[0]);
  ::close(wake[1]);
  g_wake_pipe_w = -1;
  print_cache_summary(svc);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ServerOptions opts;
  if (const char* env = std::getenv("RT_CAMPAIGN_CACHE")) {
    opts.cache_dir = env;
  }
  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], argv[i]);
        usage(argv[0], 2);
      }
      return argv[++i];
    };
    // Strict flag numbers: `--workers 4x` or `--threads abc` is a usage
    // error, not a silent 0.
    const auto uint_value = [&](std::uint64_t lo,
                                std::uint64_t hi) -> std::uint64_t {
      const char* flag = argv[i];
      const std::string text = value();
      const auto v = parse_uint(text, lo, hi);
      if (!v) {
        std::fprintf(stderr, "%s: bad value '%s' for %s\n", argv[0],
                     text.c_str(), flag);
        usage(argv[0], 2);
      }
      return *v;
    };
    if (std::strcmp(argv[i], "--cache-dir") == 0) {
      opts.cache_dir = value();
    } else if (std::strcmp(argv[i], "--cache-max-mb") == 0) {
      opts.cache_max_mb = static_cast<std::size_t>(
          uint_value(0, std::numeric_limits<std::size_t>::max() >> 20));
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      opts.workers = static_cast<unsigned>(uint_value(0, 4096));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      opts.threads = static_cast<unsigned>(uint_value(0, 4096));
    } else if (std::strcmp(argv[i], "--backlog") == 0) {
      opts.backlog = static_cast<int>(uint_value(1, 4096));
    } else if (std::strcmp(argv[i], "--queue-limit") == 0) {
      opts.queue_limit = static_cast<int>(uint_value(1, 1 << 20));
    } else if (std::strcmp(argv[i], "--request-timeout-ms") == 0) {
      opts.request_timeout_ms =
          static_cast<double>(uint_value(1, 1ull << 40));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opts.json = true;
    } else if (std::strcmp(argv[i], "--socket") == 0) {
      opts.socket_path = value();
    } else if (std::strcmp(argv[i], "--no-oracles") == 0) {
      opts.no_oracles = true;
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      opts.trace_path = value();
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      opts.metrics_path = value();
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], argv[i]);
      usage(argv[0], 2);
    }
  }
  std::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill us
  if (service::FaultInjector::instance().arm_from_env()) {
    log_json("\"event\":\"chaos_armed\",\"source\":\"RT_CHAOS\"");
  }
  // Tracing: RT_TRACE=PATH or --trace PATH arms the span tracer; an
  // explicit flag wins for the output path.
  obs::Tracer& tracer = obs::Tracer::global();
  if (!tracer.arm_from_env() && !opts.trace_path.empty()) tracer.arm();
  const std::string trace_out =
      !opts.trace_path.empty() ? opts.trace_path : tracer.env_path();

  experiments::LoopConfig loop;
  experiments::OracleSet oracles;
  if (!opts.no_oracles) {
    experiments::ShTrainingConfig train;
    oracles = experiments::load_or_train_oracles(
        experiments::default_cache_dir(), loop, train);
  }
  const experiments::CampaignRunner runner(loop, oracles);

  service::ServiceConfig cfg;
  if (!opts.cache_dir.empty()) {
    cfg.cache = service::CacheConfig{opts.cache_dir,
                                     opts.cache_max_mb * 1024 * 1024};
  }
  cfg.workers = opts.workers;
  cfg.threads = opts.threads;
  service::CampaignService svc(runner, cfg);

  log_json(
      "\"event\":\"start\",\"cache\":" +
      (opts.cache_dir.empty() ? std::string("null")
                              : "\"" + json_escape(opts.cache_dir) + "\"") +
      ",\"workers\":" + std::to_string(opts.workers) + ",\"oracles\":" +
      (opts.no_oracles ? "false" : "true"));
  const int rc = opts.socket_path.empty() ? serve_stdin(svc, opts)
                                          : serve_socket(svc, opts);

  if (tracer.armed() && !trace_out.empty()) {
    if (tracer.write_chrome_trace(trace_out)) {
      log_json("\"event\":\"trace_written\",\"path\":\"" +
               json_escape(trace_out) + "\",\"spans\":" +
               std::to_string(tracer.span_count()) + ",\"dropped\":" +
               std::to_string(tracer.dropped_spans()));
    } else {
      log_json("\"event\":\"trace_write_failed\",\"path\":\"" +
               json_escape(trace_out) + "\"");
    }
  }
  if (!opts.metrics_path.empty()) {
    std::FILE* f = std::fopen(opts.metrics_path.c_str(), "w");
    if (f != nullptr) {
      const std::string line = render_stats();
      std::fwrite(line.data(), 1, line.size(), f);
      std::fclose(f);
      log_json("\"event\":\"metrics_written\",\"path\":\"" +
               json_escape(opts.metrics_path) + "\"");
    } else {
      log_json("\"event\":\"metrics_write_failed\",\"path\":\"" +
               json_escape(opts.metrics_path) + "\"");
    }
  }
  return rc;
}
