// Campaign-as-a-service front-end: a long-lived process answering
// line-delimited campaign-grid requests against one shared content-hash
// result cache (rt::service::CampaignService). Batch mode reads requests
// from stdin; --socket PATH serves the same protocol on a Unix stream
// socket. Result CSV goes to stdout (bit-deterministic: a repeated request
// is byte-identical); timing and cache-hit stats go to stderr, so CI can
// compare result bytes across passes while asserting on the hit counts.
//
// Request language (one request per line; '#' starts a comment):
//   run scenarios=DS-1,DS-2 vectors=Disappear modes=RwoSH,Golden
//       runs=6 seed=11 [monitors=m1,m2] [param=name:value]
//       [sweep=name:v1,v2,...]       (all on ONE line)
//   quit | shutdown
// Vectors: Disappear, Move_Out, Move_In. Modes: R, RwoSH, Golden, Random.
// `param` pins one scenario parameter (repeatable); `sweep` crosses a
// parameter axis exactly like the grid builder's sweep().

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cinttypes>
#include <cmath>
#include <csignal>
#include <cstdint>
#include <iostream>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "experiments/campaign_grid.hpp"
#include "experiments/sh_training.hpp"
#include "service/campaign_service.hpp"

using namespace rt;

namespace {

struct ServerOptions {
  std::string cache_dir;       ///< empty = no result cache
  std::size_t cache_max_mb{256};
  unsigned workers{0};         ///< forked workers per miss batch
  unsigned threads{0};         ///< in-process threads when workers == 0
  bool json{false};            ///< stream JSONL instead of CSV
  std::string socket_path;     ///< empty = stdin batch mode
  bool no_oracles{false};      ///< skip oracle loading (R requests run
                               ///< without a safety hijacker model)
};

[[noreturn]] void usage(const char* argv0, int code) {
  std::FILE* out = code == 0 ? stdout : stderr;
  std::fprintf(
      out,
      "usage: %s [--cache-dir PATH] [--cache-max-mb N] [--workers N]\n"
      "          [--threads N] [--json] [--socket PATH] [--no-oracles]\n"
      "Reads 'run ...' requests from stdin (or the Unix socket) and streams\n"
      "results; see the header of examples/campaign_server.cpp for the\n"
      "request language. RT_CAMPAIGN_CACHE sets the default cache dir.\n",
      argv0);
  std::exit(code);
}

/// Strict unsigned parse: the WHOLE string must be base-10 digits and the
/// value must land in [lo, hi]. Unlike atoi/strtoull this rejects empty
/// strings, signs, whitespace, trailing junk ("12x") and overflow instead
/// of silently returning 0 or wrapping — a garbled `runs=abc` must be an
/// error reply, not a 0-run campaign.
std::optional<std::uint64_t> parse_uint(const std::string& s,
                                        std::uint64_t lo,
                                        std::uint64_t hi) {
  if (s.empty()) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const auto digit = static_cast<std::uint64_t>(c - '0');
    if (v > (std::numeric_limits<std::uint64_t>::max() - digit) / 10) {
      return std::nullopt;  // overflow
    }
    v = v * 10 + digit;
  }
  if (v < lo || v > hi) return std::nullopt;
  return v;
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string item;
  std::istringstream in(text);
  while (std::getline(in, item, sep)) out.push_back(item);
  return out;
}

/// Parsed key=value arguments of one `run` request.
struct Request {
  std::vector<std::string> scenarios;
  std::vector<core::AttackVector> vectors{core::AttackVector::kDisappear};
  std::vector<experiments::AttackMode> modes{
      experiments::AttackMode::kRobotack};
  std::vector<std::string> monitors;
  int runs{8};
  std::uint64_t seed{20200613};
  std::vector<std::pair<std::string, std::vector<double>>> sweeps;
};

std::optional<core::AttackVector> parse_vector(const std::string& name) {
  if (name == "Disappear") return core::AttackVector::kDisappear;
  if (name == "Move_Out") return core::AttackVector::kMoveOut;
  if (name == "Move_In") return core::AttackVector::kMoveIn;
  return std::nullopt;
}

std::optional<experiments::AttackMode> parse_mode(const std::string& name) {
  if (name == "R") return experiments::AttackMode::kRobotack;
  if (name == "RwoSH") return experiments::AttackMode::kNoSh;
  if (name == "Golden") return experiments::AttackMode::kGolden;
  if (name == "Random") return experiments::AttackMode::kRandomBaseline;
  return std::nullopt;
}

/// Parses everything after the `run` verb. Returns nullopt (with a stderr
/// diagnostic) on any unknown key, name or malformed number — a bad
/// request is rejected, never half-run.
std::optional<Request> parse_request(const std::vector<std::string>& words) {
  Request req;
  for (std::size_t w = 1; w < words.size(); ++w) {
    const std::string& word = words[w];
    const std::size_t eq = word.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "error: expected key=value, got '%s'\n",
                   word.c_str());
      return std::nullopt;
    }
    const std::string key = word.substr(0, eq);
    const std::string value = word.substr(eq + 1);
    if (key == "scenarios") {
      req.scenarios = split(value, ',');
    } else if (key == "vectors") {
      req.vectors.clear();
      for (const auto& name : split(value, ',')) {
        const auto v = parse_vector(name);
        if (!v) {
          std::fprintf(stderr, "error: unknown vector '%s'\n", name.c_str());
          return std::nullopt;
        }
        req.vectors.push_back(*v);
      }
    } else if (key == "modes") {
      req.modes.clear();
      for (const auto& name : split(value, ',')) {
        const auto m = parse_mode(name);
        if (!m) {
          std::fprintf(stderr, "error: unknown mode '%s'\n", name.c_str());
          return std::nullopt;
        }
        req.modes.push_back(*m);
      }
    } else if (key == "monitors") {
      req.monitors = split(value, ',');
    } else if (key == "runs") {
      const auto runs = parse_uint(value, 1,
                                   std::numeric_limits<int>::max());
      if (!runs) {
        std::fprintf(stderr, "error: bad runs '%s' (want a positive integer)\n",
                     value.c_str());
        return std::nullopt;
      }
      req.runs = static_cast<int>(*runs);
    } else if (key == "seed") {
      const auto seed = parse_uint(
          value, 0, std::numeric_limits<std::uint64_t>::max());
      if (!seed) {
        std::fprintf(stderr, "error: bad seed '%s'\n", value.c_str());
        return std::nullopt;
      }
      req.seed = *seed;
    } else if (key == "param" || key == "sweep") {
      const std::size_t colon = value.find(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "error: %s expects name:value[,value...]\n",
                     key.c_str());
        return std::nullopt;
      }
      std::vector<double> values;
      for (const auto& tok : split(value.substr(colon + 1), ',')) {
        char* end = nullptr;
        const double d = std::strtod(tok.c_str(), &end);
        if (end == tok.c_str() || *end != '\0' || !std::isfinite(d)) {
          // Unconsumed trailing characters and nan/inf tokens are both
          // rejected — a non-finite scenario parameter is never meaningful.
          std::fprintf(stderr, "error: bad %s value '%s'\n", key.c_str(),
                       tok.c_str());
          return std::nullopt;
        }
        values.push_back(d);
      }
      if (values.empty() || (key == "param" && values.size() != 1)) {
        std::fprintf(stderr, "error: bad %s '%s'\n", key.c_str(),
                     value.c_str());
        return std::nullopt;
      }
      req.sweeps.emplace_back(value.substr(0, colon), std::move(values));
    } else {
      std::fprintf(stderr, "error: unknown key '%s'\n", key.c_str());
      return std::nullopt;
    }
  }
  if (req.scenarios.empty()) {
    std::fprintf(stderr, "error: request needs scenarios=...\n");
    return std::nullopt;
  }
  return req;
}

/// Expands a request into campaign specs via the shared grid builder (a
/// `param` pin is a one-value sweep, so per-family defaults survive for
/// everything unpinned).
std::optional<std::vector<experiments::CampaignSpec>> build_specs(
    const Request& req) {
  experiments::CampaignGridBuilder builder;
  builder.scenarios(req.scenarios)
      .vectors(req.vectors)
      .modes(req.modes)
      .runs(req.runs)
      .seed(req.seed);
  if (!req.monitors.empty()) builder.monitors(req.monitors);
  for (const auto& [name, values] : req.sweeps) builder.sweep(name, values);
  try {
    return builder.build();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return std::nullopt;
  }
}

const char* kCsvHeader =
    "name,scenario,vector,mode,runs,seed,n,triggered,eb,crash,detected,"
    "false_alarms,eb_rate,crash_rate,detection_rate,median_k\n";

void emit_result(const experiments::CampaignResult& r, bool json,
                 std::FILE* out) {
  const auto& s = r.spec;
  if (json) {
    std::fprintf(
        out,
        "{\"name\":\"%s\",\"scenario\":\"%s\",\"vector\":\"%s\","
        "\"mode\":\"%s\",\"runs\":%d,\"seed\":%" PRIu64 ",\"n\":%d,"
        "\"triggered\":%d,\"eb\":%d,\"crash\":%d,\"detected\":%d,"
        "\"false_alarms\":%d,\"eb_rate\":%.6f,\"crash_rate\":%.6f,"
        "\"detection_rate\":%.6f,\"median_k\":%.6f}\n",
        s.name.c_str(), s.scenario.c_str(), core::to_string(s.vector),
        to_string(s.mode), s.runs, s.seed, r.n(), r.triggered_count(),
        r.eb_count(), r.crash_count(), r.detected_count(),
        r.false_alarm_count(), r.eb_rate(), r.crash_rate(),
        r.detection_rate(), r.median_k());
  } else {
    std::fprintf(out,
                 "%s,%s,%s,%s,%d,%" PRIu64 ",%d,%d,%d,%d,%d,%d,%.6f,%.6f,"
                 "%.6f,%.6f\n",
                 s.name.c_str(), s.scenario.c_str(),
                 core::to_string(s.vector), to_string(s.mode), s.runs,
                 s.seed, r.n(), r.triggered_count(), r.eb_count(),
                 r.crash_count(), r.detected_count(), r.false_alarm_count(),
                 r.eb_rate(), r.crash_rate(), r.detection_rate(),
                 r.median_k());
  }
}

/// Handles one request line. Returns false when the connection/session
/// should end (quit/shutdown).
bool handle_line(const std::string& line, service::CampaignService& svc,
                 const ServerOptions& opts, std::FILE* out) {
  std::string text = line;
  const std::size_t hash = text.find('#');
  if (hash != std::string::npos) text.resize(hash);
  std::istringstream in(text);
  std::vector<std::string> words;
  std::string word;
  while (in >> word) words.push_back(word);
  if (words.empty()) return true;
  if (words[0] == "quit" || words[0] == "shutdown") return false;
  if (words[0] != "run") {
    std::fprintf(stderr, "error: unknown verb '%s'\n", words[0].c_str());
    return true;
  }
  const auto req = parse_request(words);
  if (!req) return true;
  const auto specs = build_specs(*req);
  if (!specs) return true;

  const auto results = svc.run_grid(*specs);
  if (!opts.json) std::fputs(kCsvHeader, out);
  for (const auto& r : results) emit_result(r, opts.json, out);
  std::fflush(out);

  const auto& rs = svc.last_request();
  std::fprintf(stderr,
               "# request: specs=%zu hits=%zu misses=%zu wall_ms=%.1f\n",
               rs.specs, rs.cache_hits, rs.specs - rs.cache_hits,
               rs.wall_ms);
  return true;
}

void print_cache_summary(const service::CampaignService& svc) {
  const auto cs = svc.cache_stats();
  std::fprintf(stderr,
               "# cache: hits=%llu misses=%llu stale=%llu corrupt=%llu "
               "stores=%llu evictions=%llu\n",
               static_cast<unsigned long long>(cs.hits),
               static_cast<unsigned long long>(cs.misses),
               static_cast<unsigned long long>(cs.stale),
               static_cast<unsigned long long>(cs.corrupt),
               static_cast<unsigned long long>(cs.stores),
               static_cast<unsigned long long>(cs.evictions));
}

/// Serves the stdin batch: every line is a request, EOF or quit ends the
/// batch, and the cumulative cache summary is the last stderr line.
int serve_stdin(service::CampaignService& svc, const ServerOptions& opts) {
  std::string line;
  while (std::getline(std::cin, line)) {
    if (!handle_line(line, svc, opts, stdout)) break;
  }
  print_cache_summary(svc);
  return 0;
}

/// Serves the same protocol on a Unix stream socket, one client at a time
/// (requests are CPU-bound grid runs; concurrency comes from --workers).
/// A client line `shutdown` stops the server; `quit` only ends the
/// connection.
int serve_socket(service::CampaignService& svc, const ServerOptions& opts) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  struct sockaddr_un addr {};
  addr.sun_family = AF_UNIX;
  if (opts.socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "error: socket path too long\n");
    ::close(listener);
    return 1;
  }
  std::strncpy(addr.sun_path, opts.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(opts.socket_path.c_str());
  if (::bind(listener, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener, 4) != 0) {
    std::perror("bind/listen");
    ::close(listener);
    return 1;
  }
  std::fprintf(stderr, "# listening on %s\n", opts.socket_path.c_str());

  bool running = true;
  while (running) {
    const int fd = ::accept(listener, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      std::perror("accept");
      break;
    }
    std::FILE* out = ::fdopen(fd, "w");
    if (out == nullptr) {
      ::close(fd);
      continue;
    }
    // Line-buffered reader over the same descriptor.
    std::string buffer;
    char chunk[4096];
    ssize_t n = 0;
    bool client_open = true;
    while (client_open && (n = ::read(fd, chunk, sizeof chunk)) > 0) {
      buffer.append(chunk, static_cast<std::size_t>(n));
      std::size_t eol = 0;
      while (client_open &&
             (eol = buffer.find('\n')) != std::string::npos) {
        const std::string line = buffer.substr(0, eol);
        buffer.erase(0, eol + 1);
        if (line == "shutdown") {
          running = false;
          client_open = false;
        } else if (!handle_line(line, svc, opts, out)) {
          client_open = false;
        } else {
          std::fputs("end\n", out);
          std::fflush(out);
        }
      }
    }
    std::fclose(out);  // also closes fd
  }
  ::close(listener);
  ::unlink(opts.socket_path.c_str());
  print_cache_summary(svc);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ServerOptions opts;
  if (const char* env = std::getenv("RT_CAMPAIGN_CACHE")) {
    opts.cache_dir = env;
  }
  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], argv[i]);
        usage(argv[0], 2);
      }
      return argv[++i];
    };
    // Strict flag numbers: `--workers 4x` or `--threads abc` is a usage
    // error, not a silent 0.
    const auto uint_value = [&](std::uint64_t lo,
                                std::uint64_t hi) -> std::uint64_t {
      const char* flag = argv[i];
      const std::string text = value();
      const auto v = parse_uint(text, lo, hi);
      if (!v) {
        std::fprintf(stderr, "%s: bad value '%s' for %s\n", argv[0],
                     text.c_str(), flag);
        usage(argv[0], 2);
      }
      return *v;
    };
    if (std::strcmp(argv[i], "--cache-dir") == 0) {
      opts.cache_dir = value();
    } else if (std::strcmp(argv[i], "--cache-max-mb") == 0) {
      opts.cache_max_mb = static_cast<std::size_t>(
          uint_value(0, std::numeric_limits<std::size_t>::max() >> 20));
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      opts.workers = static_cast<unsigned>(uint_value(0, 4096));
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      opts.threads = static_cast<unsigned>(uint_value(0, 4096));
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opts.json = true;
    } else if (std::strcmp(argv[i], "--socket") == 0) {
      opts.socket_path = value();
    } else if (std::strcmp(argv[i], "--no-oracles") == 0) {
      opts.no_oracles = true;
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      usage(argv[0], 0);
    } else {
      std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], argv[i]);
      usage(argv[0], 2);
    }
  }
  std::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill us

  experiments::LoopConfig loop;
  experiments::OracleSet oracles;
  if (!opts.no_oracles) {
    experiments::ShTrainingConfig train;
    oracles = experiments::load_or_train_oracles(
        experiments::default_cache_dir(), loop, train);
  }
  const experiments::CampaignRunner runner(loop, oracles);

  service::ServiceConfig cfg;
  if (!opts.cache_dir.empty()) {
    cfg.cache = service::CacheConfig{opts.cache_dir,
                                     opts.cache_max_mb * 1024 * 1024};
  }
  cfg.workers = opts.workers;
  cfg.threads = opts.threads;
  service::CampaignService svc(runner, cfg);

  std::fprintf(stderr, "# campaign server: cache=%s workers=%u oracles=%s\n",
               opts.cache_dir.empty() ? "(off)" : opts.cache_dir.c_str(),
               opts.workers, opts.no_oracles ? "off" : "on");
  return opts.socket_path.empty() ? serve_stdin(svc, opts)
                                  : serve_socket(svc, opts);
}
