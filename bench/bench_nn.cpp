// Microbenchmarks of the NN substrate and the malware's decision path:
// oracle inference, the SH binary-search decision (the paper stresses its
// O(log K_max) latency), and a training epoch.

#include <benchmark/benchmark.h>

#include "bench_json_main.hpp"

#include "core/safety_hijacker.hpp"
#include "nn/loss.hpp"
#include "nn/trainer.hpp"

using namespace rt;

namespace {

std::shared_ptr<core::SafetyOracle> quick_oracle() {
  auto oracle = std::make_shared<core::SafetyOracle>(3);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  stats::Rng rng(4);
  for (int i = 0; i < 400; ++i) {
    const double delta = rng.uniform(0.0, 40.0);
    const double k = rng.uniform(3.0, 70.0);
    xs.push_back({delta, -5.0, 0.0, 0.0, 0.0, k});
    ys.push_back(delta - 0.3 * k);
  }
  nn::TrainConfig cfg;
  cfg.epochs = 25;
  oracle->train(nn::Dataset::from_samples(xs, ys), cfg);
  return oracle;
}

void BM_OracleInference(benchmark::State& state) {
  auto oracle = quick_oracle();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        oracle->predict(20.0, {-5.0, 0.0}, {0.0, 0.0}, 30.0));
  }
}
BENCHMARK(BM_OracleInference);

// Batched serving at the measured sweet-spot width (32): state.range(0)
// queries per iteration through ONE matrix-matrix forward. Compare
// items_per_second against BM_OracleInference to read the batch speedup.
void BM_OracleBatchInference(benchmark::State& state) {
  auto oracle = quick_oracle();
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  std::vector<core::OracleQuery> queries(batch);
  for (std::size_t i = 0; i < batch; ++i) {
    queries[i] = {20.0 + static_cast<double>(i), {-5.0, 0.0}, {0.0, 0.0},
                  30.0};
  }
  std::vector<double> out(batch);
  for (auto _ : state) {
    oracle->predict_batch(queries, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_OracleBatchInference)->Arg(32);

void BM_SafetyHijackerDecision(benchmark::State& state) {
  core::SafetyHijacker sh(core::SafetyHijacker::Config{},
                          perception::DetectorNoiseModel::paper_defaults());
  sh.set_oracle(core::AttackVector::kMoveOut, quick_oracle());
  for (auto _ : state) {
    benchmark::DoNotOptimize(sh.decide(core::AttackVector::kMoveOut,
                                       sim::ActorType::kVehicle, 20.0,
                                       {-5.0, 0.0}, {0.0, 0.0}));
  }
}
BENCHMARK(BM_SafetyHijackerDecision);

void BM_TrainingEpoch(benchmark::State& state) {
  stats::Rng rng(9);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  for (int i = 0; i < 512; ++i) {
    xs.push_back({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0),
                  rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0),
                  rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)});
    ys.push_back(xs.back()[0] * 2.0);
  }
  const nn::Dataset data = nn::Dataset::from_samples(xs, ys);
  nn::Mlp net = nn::make_safety_hijacker_net(rng);
  nn::StandardScaler scaler;
  nn::TrainConfig cfg;
  cfg.epochs = 1;
  cfg.patience = 0;
  nn::Trainer trainer(cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(trainer.train(net, data, scaler));
  }
}
BENCHMARK(BM_TrainingEpoch);

}  // namespace

int main(int argc, char** argv) {
  return rt::bench::bench_json_main(argc, argv);
}
