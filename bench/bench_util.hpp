#pragma once

// Shared helpers for the benchmark/reproduction binaries.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "experiments/campaign.hpp"
#include "experiments/sh_training.hpp"

namespace rt::bench {

/// Number of runs per campaign: paper uses 131-185; default is sized to
/// keep every bench binary under ~a minute. Override with ROBOTACK_RUNS.
inline int runs_per_campaign() {
  if (const char* env = std::getenv("ROBOTACK_RUNS")) {
    return std::max(4, std::atoi(env));
  }
  return 60;
}

/// Campaign-engine thread count: 0 = one thread per hardware core.
/// Override with ROBOTACK_THREADS (e.g. =1 for the serial baseline).
inline unsigned campaign_threads() {
  if (const char* env = std::getenv("ROBOTACK_THREADS")) {
    return static_cast<unsigned>(std::max(1, std::atoi(env)));
  }
  return 0;
}

/// Loads (or trains once and caches under data/) the three per-vector
/// safety-hijacker oracles.
inline experiments::OracleSet oracles(const experiments::LoopConfig& loop) {
  experiments::ShTrainingConfig cfg;
  return experiments::load_or_train_oracles(
      experiments::default_cache_dir(), loop, cfg);
}

inline void header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

}  // namespace rt::bench
