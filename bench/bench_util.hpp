#pragma once

// Shared helpers for the benchmark/reproduction binaries.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include <vector>

#include "experiments/campaign.hpp"
#include "experiments/reporting.hpp"
#include "experiments/sh_training.hpp"
#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/campaign_service.hpp"

namespace rt::bench {

/// Number of runs per campaign: paper uses 131-185; default is sized to
/// keep every bench binary under ~a minute. Override with ROBOTACK_RUNS.
inline int runs_per_campaign() {
  if (const char* env = std::getenv("ROBOTACK_RUNS")) {
    return std::max(4, std::atoi(env));
  }
  return 60;
}

/// Campaign-engine thread count: 0 = one thread per hardware core.
/// Override with ROBOTACK_THREADS (e.g. =1 for the serial baseline).
inline unsigned campaign_threads() {
  if (const char* env = std::getenv("ROBOTACK_THREADS")) {
    return static_cast<unsigned>(std::max(1, std::atoi(env)));
  }
  return 0;
}

/// Campaign result-cache directory shared by the table_* drivers and the
/// campaign server: empty = no caching. Override with RT_CAMPAIGN_CACHE.
inline std::string campaign_cache_dir() {
  if (const char* env = std::getenv("RT_CAMPAIGN_CACHE")) return env;
  return {};
}

/// Loads (or trains once and caches under data/) the three per-vector
/// safety-hijacker oracles.
inline experiments::OracleSet oracles(const experiments::LoopConfig& loop) {
  experiments::ShTrainingConfig cfg;
  return experiments::load_or_train_oracles(
      experiments::default_cache_dir(), loop, cfg);
}

inline void header(const char* title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("================================================================\n");
}

/// Shared CLI options of the grid drivers. Defaults come from the
/// environment knobs (ROBOTACK_RUNS / ROBOTACK_THREADS) so existing
/// invocations keep working; flags override the environment.
struct BenchOptions {
  int runs{0};
  unsigned threads{0};  ///< 0 = one thread per hardware core
  std::uint64_t seed{0};
  std::string csv_path;   ///< empty = no CSV output
  std::string json_path;  ///< empty = no JSON perf records
  std::string cache_dir;  ///< empty = no result cache (env RT_CAMPAIGN_CACHE)
  unsigned workers{0};    ///< forked grid workers; 0 = in-process threads
  std::string trace_path;    ///< Chrome trace JSON written on exit
  std::string metrics_path;  ///< Prometheus metrics text written on exit
};

/// Parses --runs N, --seed S, --threads T, --csv PATH, --json PATH,
/// --cache-dir PATH, --workers N, --trace PATH, --metrics PATH (and
/// --help). Unknown flags or missing values print usage and exit non-zero.
inline BenchOptions parse_options(int argc, char** argv,
                                  std::uint64_t default_seed) {
  BenchOptions opts;
  opts.runs = runs_per_campaign();
  opts.threads = campaign_threads();
  opts.seed = default_seed;
  opts.cache_dir = campaign_cache_dir();
  const auto usage = [&](std::FILE* out) {
    std::fprintf(out,
                 "usage: %s [--runs N] [--seed S] [--threads T] [--csv PATH] "
                 "[--json PATH] [--cache-dir PATH] [--workers N]\n"
                 "  --runs N     runs per campaign (default %d; env ROBOTACK_RUNS)\n"
                 "  --seed S     base campaign seed (default %llu)\n"
                 "  --threads T  campaign-engine threads, 0 = per core "
                 "(env ROBOTACK_THREADS)\n"
                 "  --csv PATH   also write the result table as CSV\n"
                 "  --json PATH  also write machine-readable perf records\n"
                 "  --cache-dir PATH  campaign result cache "
                 "(env RT_CAMPAIGN_CACHE; empty = off)\n"
                 "  --workers N  forked grid worker processes "
                 "(0 = in-process threads)\n"
                 "  --trace PATH    arm span tracing, write a Chrome trace "
                 "JSON on exit (env RT_TRACE=PATH)\n"
                 "  --metrics PATH  write the final metrics snapshot as "
                 "Prometheus text on exit\n",
                 argv[0], opts.runs,
                 static_cast<unsigned long long>(default_seed));
  };
  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s: missing value for %s\n", argv[0], argv[i]);
        usage(stderr);
        std::exit(2);
      }
      return argv[++i];
    };
    const auto numeric = [&](const char* text) -> unsigned long long {
      char* end = nullptr;
      const unsigned long long parsed = std::strtoull(text, &end, 10);
      if (end == text || *end != '\0') {
        std::fprintf(stderr, "%s: %s expects a number, got '%s'\n", argv[0],
                     argv[i - 1], text);
        usage(stderr);
        std::exit(2);
      }
      return parsed;
    };
    if (std::strcmp(argv[i], "--runs") == 0) {
      opts.runs = std::max(1, static_cast<int>(numeric(value())));
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      opts.seed = numeric(value());
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      opts.threads = static_cast<unsigned>(numeric(value()));
    } else if (std::strcmp(argv[i], "--csv") == 0) {
      opts.csv_path = value();
    } else if (std::strcmp(argv[i], "--json") == 0) {
      opts.json_path = value();
    } else if (std::strcmp(argv[i], "--cache-dir") == 0) {
      opts.cache_dir = value();
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      opts.workers = static_cast<unsigned>(numeric(value()));
    } else if (std::strcmp(argv[i], "--trace") == 0) {
      opts.trace_path = value();
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      opts.metrics_path = value();
    } else if (std::strcmp(argv[i], "--help") == 0 ||
               std::strcmp(argv[i], "-h") == 0) {
      usage(stdout);
      std::exit(0);
    } else {
      std::fprintf(stderr, "%s: unknown flag %s\n", argv[0], argv[i]);
      usage(stderr);
      std::exit(2);
    }
  }
  // Arm tracing before any instrumented work runs: RT_TRACE=PATH or
  // --trace PATH (the flag wins for the output path).
  if (!obs::Tracer::global().arm_from_env() && !opts.trace_path.empty()) {
    obs::Tracer::global().arm();
  }
  if (opts.trace_path.empty()) {
    opts.trace_path = obs::Tracer::global().env_path();
  }
  return opts;
}

/// Shared observability epilogue: writes the Chrome trace (when tracing
/// was armed) and/or the Prometheus metrics snapshot, confirming paths on
/// stdout like the CSV/JSON epilogues do. Call once, after the last
/// instrumented work of the driver.
inline void finish_observability(const BenchOptions& opts) {
  obs::Tracer& tracer = obs::Tracer::global();
  if (tracer.armed() && !opts.trace_path.empty()) {
    if (tracer.write_chrome_trace(opts.trace_path)) {
      std::printf("wrote %s (%zu spans, %llu dropped)\n",
                  opts.trace_path.c_str(), tracer.span_count(),
                  static_cast<unsigned long long>(tracer.dropped_spans()));
    } else {
      std::fprintf(stderr, "failed to write trace %s\n",
                   opts.trace_path.c_str());
    }
  }
  if (!opts.metrics_path.empty()) {
    const std::string text =
        obs::render_prometheus(obs::MetricsRegistry::global().snapshot());
    std::FILE* f = std::fopen(opts.metrics_path.c_str(), "w");
    if (f != nullptr) {
      std::fwrite(text.data(), 1, text.size(), f);
      std::fclose(f);
      std::printf("wrote %s\n", opts.metrics_path.c_str());
    } else {
      std::fprintf(stderr, "failed to write metrics %s\n",
                   opts.metrics_path.c_str());
    }
  }
}

/// Shared CSV epilogue of the grid drivers: writes the table when --csv
/// was given and confirms the path on stdout.
inline void maybe_write_csv(const BenchOptions& opts,
                            const std::vector<std::string>& header,
                            const std::vector<std::vector<std::string>>& rows) {
  if (opts.csv_path.empty()) return;
  experiments::write_csv(opts.csv_path, header, rows);
  std::printf("wrote %s\n", opts.csv_path.c_str());
}

/// Builds the CampaignService implied by --cache-dir/--workers (plus
/// --threads for in-process misses). The service outlives the returned
/// executor, so drivers keep it alive for the whole grid run and may read
/// its cache/request stats afterwards.
inline std::unique_ptr<service::CampaignService> make_service(
    const experiments::CampaignRunner& runner, const BenchOptions& opts) {
  service::ServiceConfig cfg;
  if (!opts.cache_dir.empty()) {
    cfg.cache = service::CacheConfig{opts.cache_dir};
  }
  cfg.workers = opts.workers;
  cfg.threads = opts.threads;
  return std::make_unique<service::CampaignService>(runner, cfg);
}

/// Shared grid-run epilogue for drivers that route through a service:
/// reports cache traffic when a cache was configured.
inline void report_service_stats(const service::CampaignService& svc) {
  if (svc.config().cache) {
    const auto cs = svc.cache_stats();
    std::printf(
        "cache: hits=%llu misses=%llu stale=%llu corrupt=%llu (dir %s)\n",
        static_cast<unsigned long long>(cs.hits),
        static_cast<unsigned long long>(cs.misses),
        static_cast<unsigned long long>(cs.stale),
        static_cast<unsigned long long>(cs.corrupt),
        svc.config().cache->dir.c_str());
  }
  if (svc.config().workers >= 1) {
    const auto& ss = svc.shard_stats();
    std::printf("workers: %u forked, %d deaths, %d retries\n", ss.workers,
                ss.worker_deaths, ss.shard_retries);
  }
}

/// Shared JSON epilogue: writes the perf records when --json was given and
/// confirms the path on stdout. CI uses this to track the perf trajectory
/// across PRs (BENCH_campaign.json).
inline void maybe_write_bench_json(
    const BenchOptions& opts,
    const std::vector<experiments::BenchJsonRecord>& records) {
  if (opts.json_path.empty()) return;
  experiments::write_bench_json(opts.json_path, records);
  std::printf("wrote %s\n", opts.json_path.c_str());
}

}  // namespace rt::bench
