// Reproduces Fig. 6: minimum safety potential (from attack start to scenario
// end), RoboTack ("R") vs RoboTack-without-safety-hijacker ("R w/o SH"),
// plus the §VI-D improvement ratios.

#include <cstdio>

#include "bench_util.hpp"
#include "experiments/reporting.hpp"
#include "stats/summary.hpp"

using namespace rt;

namespace {

struct Panel {
  const char* name;
  sim::ScenarioId scenario;
  core::AttackVector vector;
  double paper_median_nosh;
  double paper_median_r;
};

}  // namespace

int main() {
  bench::header("Fig. 6 — min safety potential: R w/o SH vs R");
  experiments::LoopConfig loop;
  const auto oracles = bench::oracles(loop);
  experiments::CampaignRunner runner(loop, oracles);
  const int n = bench::runs_per_campaign();

  const Panel panels[] = {
      {"DS-1-Disappear", sim::ScenarioId::kDs1, core::AttackVector::kDisappear,
       19.0, 9.0},
      {"DS-1-Move_Out", sim::ScenarioId::kDs1, core::AttackVector::kMoveOut,
       19.0, 13.0},
      {"DS-2-Disappear", sim::ScenarioId::kDs2, core::AttackVector::kDisappear,
       7.0, 3.0},
      {"DS-2-Move_Out", sim::ScenarioId::kDs2, core::AttackVector::kMoveOut,
       9.0, 3.0},
  };

  for (const Panel& p : panels) {
    experiments::CampaignSpec nosh{std::string(p.name) + "-RwoSH", p.scenario,
                                   p.vector, experiments::AttackMode::kNoSh,
                                   n, 555};
    experiments::CampaignSpec smart{std::string(p.name) + "-R", p.scenario,
                                    p.vector,
                                    experiments::AttackMode::kRobotack, n,
                                    777};
    const auto rn = runner.run(nosh);
    const auto rs = runner.run(smart);
    const auto dn = rn.min_deltas();
    const auto ds = rs.min_deltas();
    std::printf("\n%s (paper medians: R w/o SH %.0f, R %.0f; delta<4 = accident)\n",
                p.name, p.paper_median_nosh, p.paper_median_r);
    if (!dn.empty()) {
      std::printf("  R w/o SH: %s\n", stats::boxplot(dn).to_string().c_str());
    }
    if (!ds.empty()) {
      std::printf("  R:        %s\n", stats::boxplot(ds).to_string().c_str());
    }
    const double eb_ratio =
        rn.eb_rate() > 0 ? rs.eb_rate() / rn.eb_rate() : 0.0;
    const double crash_ratio =
        rn.crash_rate() > 0 ? rs.crash_rate() / rn.crash_rate() : 0.0;
    std::printf(
        "  EB: %s vs %s (x%.1f)   crashes: %s vs %s (x%.1f)\n",
        experiments::fmt_pct(rs.eb_rate()).c_str(),
        experiments::fmt_pct(rn.eb_rate()).c_str(), eb_ratio,
        experiments::fmt_pct(rs.crash_rate()).c_str(),
        experiments::fmt_pct(rn.crash_rate()).c_str(), crash_ratio);
  }

  // Move_In scenarios: EB-only comparison (paper: 1.9x / 1.6x more EB).
  bench::header("Move_In EB comparison (paper: DS-3 1.9x, DS-4 1.6x)");
  for (const auto& [name, sid] :
       {std::pair{"DS-3-Move_In", sim::ScenarioId::kDs3},
        std::pair{"DS-4-Move_In", sim::ScenarioId::kDs4}}) {
    experiments::CampaignSpec nosh{std::string(name) + "-RwoSH", sid,
                                   core::AttackVector::kMoveIn,
                                   experiments::AttackMode::kNoSh, n, 999};
    experiments::CampaignSpec smart{std::string(name) + "-R", sid,
                                    core::AttackVector::kMoveIn,
                                    experiments::AttackMode::kRobotack, n,
                                    333};
    const auto rn = runner.run(nosh);
    const auto rs = runner.run(smart);
    std::printf("  %s: EB %s (R) vs %s (R w/o SH), ratio x%.1f\n", name,
                experiments::fmt_pct(rs.eb_rate()).c_str(),
                experiments::fmt_pct(rn.eb_rate()).c_str(),
                rn.eb_rate() > 0 ? rs.eb_rate() / rn.eb_rate() : 0.0);
  }
  return 0;
}
