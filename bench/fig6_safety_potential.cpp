// Reproduces Fig. 6: minimum safety potential (from attack start to scenario
// end), RoboTack ("R") vs RoboTack-without-safety-hijacker ("R w/o SH"),
// plus the §VI-D improvement ratios.

#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "experiments/campaign_grid.hpp"
#include "experiments/reporting.hpp"
#include "stats/summary.hpp"

using namespace rt;

namespace {

struct Panel {
  const char* scenario;
  core::AttackVector vector;
  double paper_median_nosh;
  double paper_median_r;
};

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv, /*default_seed=*/555);
  bench::header("Fig. 6 — min safety potential: R w/o SH vs R");
  experiments::LoopConfig loop;
  const auto oracles = bench::oracles(loop);
  experiments::CampaignRunner runner(loop, oracles);
  experiments::CampaignScheduler scheduler(runner, opts.threads);

  // Every panel's R / R-w/o-SH pair as one grid: modes × vectors ×
  // scenarios, with the Move_In scenarios as a second block.
  const auto specs =
      experiments::CampaignGridBuilder()
          .runs(opts.runs)
          .seed(opts.seed)
          .modes({experiments::AttackMode::kNoSh,
                  experiments::AttackMode::kRobotack})
          .vectors({core::AttackVector::kDisappear,
                    core::AttackVector::kMoveOut})
          .scenarios({"DS-1", "DS-2"})
          .add_grid()
          .vectors({core::AttackVector::kMoveIn})
          .scenarios({"DS-3", "DS-4"})
          .build();
  const auto results = scheduler.run_all(specs);
  const auto find = [&](const std::string& name)
      -> const experiments::CampaignResult& {
    for (const auto& r : results) {
      if (r.spec.name == name) return r;
    }
    std::fprintf(stderr, "campaign %s missing from grid\n", name.c_str());
    std::abort();
  };

  std::vector<std::string> csv_head{"panel", "median RwoSH", "median R",
                                    "EB RwoSH", "EB R", "crash RwoSH",
                                    "crash R"};
  std::vector<std::vector<std::string>> csv_rows;

  const Panel panels[] = {
      {"DS-1", core::AttackVector::kDisappear, 19.0, 9.0},
      {"DS-1", core::AttackVector::kMoveOut, 19.0, 13.0},
      {"DS-2", core::AttackVector::kDisappear, 7.0, 3.0},
      {"DS-2", core::AttackVector::kMoveOut, 9.0, 3.0},
  };

  for (const Panel& p : panels) {
    const std::string base =
        std::string(p.scenario) + "-" + core::to_string(p.vector);
    const auto& rn = find(base + "-RwoSH");
    const auto& rs = find(base + "-R");
    const auto dn = rn.min_deltas();
    const auto ds = rs.min_deltas();
    std::printf(
        "\n%s (paper medians: R w/o SH %.0f, R %.0f; delta<4 = accident)\n",
        base.c_str(), p.paper_median_nosh, p.paper_median_r);
    if (!dn.empty()) {
      std::printf("  R w/o SH: %s\n", stats::boxplot(dn).to_string().c_str());
    }
    if (!ds.empty()) {
      std::printf("  R:        %s\n", stats::boxplot(ds).to_string().c_str());
    }
    const double eb_ratio =
        rn.eb_rate() > 0 ? rs.eb_rate() / rn.eb_rate() : 0.0;
    const double crash_ratio =
        rn.crash_rate() > 0 ? rs.crash_rate() / rn.crash_rate() : 0.0;
    std::printf(
        "  EB: %s vs %s (x%.1f)   crashes: %s vs %s (x%.1f)\n",
        experiments::fmt_pct(rs.eb_rate()).c_str(),
        experiments::fmt_pct(rn.eb_rate()).c_str(), eb_ratio,
        experiments::fmt_pct(rs.crash_rate()).c_str(),
        experiments::fmt_pct(rn.crash_rate()).c_str(), crash_ratio);
    csv_rows.push_back({base,
                        experiments::fmt(dn.empty() ? 0.0 : stats::median(dn)),
                        experiments::fmt(ds.empty() ? 0.0 : stats::median(ds)),
                        experiments::fmt_pct(rn.eb_rate()),
                        experiments::fmt_pct(rs.eb_rate()),
                        experiments::fmt_pct(rn.crash_rate()),
                        experiments::fmt_pct(rs.crash_rate())});
  }

  // Move_In scenarios: EB-only comparison (paper: 1.9x / 1.6x more EB).
  bench::header("Move_In EB comparison (paper: DS-3 1.9x, DS-4 1.6x)");
  for (const char* scenario : {"DS-3", "DS-4"}) {
    const std::string base = std::string(scenario) + "-Move_In";
    const auto& rn = find(base + "-RwoSH");
    const auto& rs = find(base + "-R");
    std::printf("  %s: EB %s (R) vs %s (R w/o SH), ratio x%.1f\n",
                base.c_str(), experiments::fmt_pct(rs.eb_rate()).c_str(),
                experiments::fmt_pct(rn.eb_rate()).c_str(),
                rn.eb_rate() > 0 ? rs.eb_rate() / rn.eb_rate() : 0.0);
    csv_rows.push_back({base, "-", "-",
                        experiments::fmt_pct(rn.eb_rate()),
                        experiments::fmt_pct(rs.eb_rate()),
                        experiments::fmt_pct(rn.crash_rate()),
                        experiments::fmt_pct(rs.crash_rate())});
  }
  bench::maybe_write_csv(opts, csv_head, csv_rows);
  return 0;
}
