// Ablation: the role of sensor fusion (§I claims temporal tracking + fusion
// mask naive attacks). Compares attack success with normal LiDAR, degraded
// LiDAR, and camera-only perception on DS-1 (vehicle victim).

#include <cstdio>

#include "bench_util.hpp"
#include "experiments/reporting.hpp"

using namespace rt;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv, /*default_seed=*/111);
  bench::header("Ablation — sensor fusion (DS-1 Move_Out, vehicle victim)");
  experiments::LoopConfig base;
  const auto oracles = bench::oracles(base);
  const int n = opts.runs;

  struct Case {
    const char* label;
    double vehicle_range;
    double lidar_weight;
  };
  const Case cases[] = {
      {"full fusion (paper setup)", 80.0, 0.85},
      {"weak LiDAR (range 30 m)", 30.0, 0.85},
      {"camera-only (no LiDAR)", 0.0, 0.85},
  };

  std::vector<std::string> head{"configuration", "golden EB", "attack EB",
                                "attack crash"};
  std::vector<std::vector<std::string>> rows;
  for (const Case& c : cases) {
    experiments::LoopConfig loop = base;
    loop.lidar.vehicle_range = c.vehicle_range;
    loop.fusion.lidar_weight_vehicle = c.lidar_weight;
    experiments::CampaignRunner runner(loop, oracles);
    experiments::CampaignScheduler scheduler(runner, opts.threads);

    experiments::CampaignSpec golden{"golden", "DS-1",
                                     core::AttackVector::kMoveOut,
                                     experiments::AttackMode::kGolden,
                                     std::max(8, n / 2), opts.seed,
                                     std::nullopt};
    experiments::CampaignSpec attack{"attack", "DS-1",
                                     core::AttackVector::kMoveOut,
                                     experiments::AttackMode::kRobotack, n,
                                     opts.seed + 111, std::nullopt};
    const auto results = scheduler.run_all({golden, attack});
    const auto& g = results[0];
    const auto& a = results[1];
    rows.push_back({c.label, experiments::fmt_pct(g.eb_rate()),
                    experiments::fmt_pct(a.eb_rate()),
                    experiments::fmt_pct(a.crash_rate())});
  }
  std::printf("%s", experiments::format_table(head, rows).c_str());
  bench::maybe_write_csv(opts, head, rows);
  std::printf(
      "\nexpected: without LiDAR corroboration the camera-channel attack\n"
      "gets easier (and the golden runs less stable) — fusion is the\n"
      "defense the attacker must out-maneuver, not a full shield.\n");
  return 0;
}
