// Reproduces Fig. 5: characterization of the (simulated) YOLOv3 detector.
//  (a-b) continuous misdetection streak distributions + Exp(loc=1) fits
//  (c-f) normalized bbox-center error distributions + Normal fits
// Prints paper-reported vs measured parameters and ASCII histograms.

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "experiments/characterization.hpp"
#include "experiments/reporting.hpp"
#include "stats/histogram.hpp"
#include "stats/summary.hpp"

using namespace rt;

namespace {

struct PaperRow {
  const char* panel;
  double mu_or_lambda;
  double sigma;
  double p99;
};

void print_class(const char* name,
                 const experiments::ClassCharacterization& c,
                 const PaperRow& streak_paper, const PaperRow& x_paper,
                 const PaperRow& y_paper,
                 std::vector<std::vector<std::string>>& csv_rows) {
  std::printf("\n--- %s (object-frames: %zu, misdetection rate: %s) ---\n",
              name, c.object_frames,
              experiments::fmt_pct(c.misdetection_rate()).c_str());

  // Body fit of the streak distribution (the heavy tail is reported via the
  // empirical p99, exactly as the paper's numbers imply).
  std::vector<double> body;
  for (double s : c.streaks) {
    if (s <= 12.0) body.push_back(s);
  }
  const auto body_fit = stats::fit_exponential(body, 1.0);
  const double emp_p99 =
      c.streaks.empty() ? 0.0 : stats::percentile(c.streaks, 99.0);

  std::vector<std::string> head{"panel", "quantity", "paper", "measured"};
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"streaks", "Exp lambda (body fit)",
                  experiments::fmt(streak_paper.mu_or_lambda, 3),
                  experiments::fmt(body_fit.lambda, 3)});
  rows.push_back({"streaks", "empirical p99 (frames)",
                  experiments::fmt(streak_paper.p99, 1),
                  experiments::fmt(emp_p99, 1)});
  rows.push_back({"center dx", "Normal mu",
                  experiments::fmt(x_paper.mu_or_lambda, 3),
                  experiments::fmt(c.fit_x.mu, 3)});
  rows.push_back({"center dx", "Normal sigma (overlap-conditioned)",
                  experiments::fmt(x_paper.sigma, 3),
                  experiments::fmt(c.fit_x.sigma, 3)});
  rows.push_back({"center dy", "Normal mu",
                  experiments::fmt(y_paper.mu_or_lambda, 3),
                  experiments::fmt(c.fit_y.mu, 3)});
  rows.push_back({"center dy", "Normal sigma (overlap-conditioned)",
                  experiments::fmt(y_paper.sigma, 3),
                  experiments::fmt(c.fit_y.sigma, 3)});
  std::printf("%s", experiments::format_table(head, rows).c_str());
  for (const auto& row : rows) {
    std::vector<std::string> tagged{name};
    tagged.insert(tagged.end(), row.begin(), row.end());
    csv_rows.push_back(std::move(tagged));
  }

  std::printf("\nmisdetection streak length histogram (log scale):\n");
  stats::Histogram streak_hist(1.0, 61.0, 12);
  streak_hist.add_all(c.streaks);
  std::printf("%s", streak_hist.render(40, /*log_scale=*/true).c_str());

  std::printf("\nnormalized center dx histogram:\n");
  stats::Histogram dx_hist(-1.0, 1.0, 16);
  dx_hist.add_all(c.deltas_x);
  std::printf("%s", dx_hist.render(40).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv, /*default_seed=*/20200613);
  bench::header(
      "Fig. 5 — YOLOv3 detector characterization (paper vs measured)");

  experiments::CharacterizationConfig cfg;
  // --runs scales the characterization footage: the historical default of
  // 60 runs maps to the 400 s used since PR 1, so default invocations are
  // bit-identical to the pre-flag binary.
  cfg.duration_s = 400.0 * opts.runs / 60.0;
  cfg.seed = opts.seed;
  std::printf("footage: %.0f s at %.0f Hz, seed %llu (--runs/--seed)\n",
              cfg.duration_s, cfg.camera_hz,
              static_cast<unsigned long long>(cfg.seed));
  const auto t0 = std::chrono::steady_clock::now();
  const auto result = experiments::characterize_detector(
      cfg, perception::CameraModel{},
      perception::DetectorNoiseModel::paper_defaults());
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  std::vector<std::vector<std::string>> csv_rows;
  // Paper values from Fig. 5 captions.
  print_class("Vehicle", result.vehicle,
              {"streak", 0.327, 0.0, 59.4},
              {"dx", 0.023, 0.464, 1.145},
              {"dy", 0.094, 0.586, 1.775}, csv_rows);
  print_class("Pedestrian", result.pedestrian,
              {"streak", 0.717, 0.0, 31.0},
              {"dx", 0.254, 2.010, 5.235},
              {"dy", 0.186, 0.409, 1.868}, csv_rows);

  bench::maybe_write_csv(opts, {"class", "panel", "quantity", "paper",
                                "measured"},
                         csv_rows);
  bench::maybe_write_bench_json(
      opts, {{"fig5_characterization",
              elapsed > 0.0 ? cfg.duration_s * cfg.camera_hz / elapsed : 0.0,
              elapsed * 1000.0, 1, opts.seed}});

  std::printf(
      "\nNotes:\n"
      " - 'overlap-conditioned' sigma: like the paper, only detections that\n"
      "   overlap the ground truth enter the center-error population; the\n"
      "   attacker bound uses the full configured population fit.\n"
      " - streak p99 is empirical; the paper's own p99 (31 / 59.4) also far\n"
      "   exceeds its fitted exponential's analytic p99 (heavy tail).\n");
  return 0;
}
