// Reproduces Fig. 8:
//  (a) attack success probability vs binned NN prediction error
//      (DS-1/DS-2 Move_Out);
//  (b) predicted vs ground-truth safety potential after the attack
//      (DS-1 Move_Out), plus the §IV-B validation accuracies.

#include <cmath>
#include <cstdio>
#include <map>
#include <span>

#include "bench_util.hpp"
#include "experiments/reporting.hpp"
#include "experiments/sh_training.hpp"
#include "stats/summary.hpp"

using namespace rt;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv, /*default_seed=*/97531);
  bench::header("Fig. 8 — safety hijacker NN accuracy");
  experiments::LoopConfig loop;

  // Freshly train (not cached) so we can report validation accuracy per
  // vector, matching §IV-B's "within 5 m (vehicles) / 1.5 m (pedestrians)".
  experiments::ShTrainingConfig cfg;
  for (const auto v : {core::AttackVector::kMoveOut,
                       core::AttackVector::kDisappear,
                       core::AttackVector::kMoveIn}) {
    nn::TrainResult tr;
    auto oracle = experiments::train_oracle(v, loop, cfg, &tr);
    std::printf("oracle %-10s val MSE %.2f  val MAE %.2f m  (epochs run: %zu)\n",
                core::to_string(v), tr.final_val_loss, tr.final_val_mae,
                tr.history.size());
  }

  // (b) predicted vs ground truth over k — DS-1 Move_Out.
  bench::header("(b) predicted vs ground-truth delta_{t+k}, DS-1 Move_Out");
  const auto oracles = bench::oracles(loop);
  auto oracle = oracles.at(core::AttackVector::kMoveOut);
  experiments::ShTrainingConfig probe;
  probe.delta_triggers = {16.0};
  probe.ks = {8, 16, 24, 32, 40, 48, 56, 64};
  probe.repeats = 2;
  probe.seed = 13579;
  // Ground truth labels come from scripted runs; predictions from the
  // trained oracle on the same launch features.
  const nn::Dataset ds = experiments::generate_sh_dataset(
      core::AttackVector::kMoveOut, loop, probe);
  std::printf("  k   ground-truth delta   predicted delta   |error|\n");
  std::map<int, std::pair<std::vector<double>, std::vector<double>>> by_k;
  std::vector<double> errors;
  // Batched serving (bit-identical to per-sample predict; see
  // core::OracleBatchBuffer): gather the whole k sweep into 32-wide
  // flushes and consume predictions in push order.
  core::OracleBatchBuffer batch;
  std::size_t j0 = 0;
  const auto consume = [&](std::span<const double> preds) {
    for (std::size_t i = 0; i < preds.size(); ++i) {
      const std::size_t j = j0 + i;
      const int k = static_cast<int>(ds.x(5, j));
      by_k[k].first.push_back(ds.y(0, j));
      by_k[k].second.push_back(preds[i]);
      errors.push_back(std::abs(preds[i] - ds.y(0, j)));
    }
    j0 += preds.size();
  };
  for (std::size_t j = 0; j < ds.size(); ++j) {
    batch.push({ds.x(0, j),
                {ds.x(1, j), ds.x(2, j)},
                {ds.x(3, j), ds.x(4, j)},
                ds.x(5, j)});
    if (batch.full()) consume(batch.flush(*oracle));
  }
  if (!batch.empty()) consume(batch.flush(*oracle));
  for (const auto& [k, pair] : by_k) {
    std::printf("  %-3d %8.2f m %18.2f m %12.2f m\n", k,
                stats::mean(pair.first), stats::mean(pair.second),
                std::abs(stats::mean(pair.first) - stats::mean(pair.second)));
  }
  if (!errors.empty()) {
    std::printf("  overall |error|: %s\n",
                stats::boxplot(errors).to_string().c_str());
  }

  // (a) success probability vs binned prediction error, Move_Out campaigns.
  bench::header("(a) success probability vs NN prediction error (binned)");
  experiments::CampaignRunner runner(loop, oracles);
  experiments::CampaignScheduler scheduler(runner, opts.threads);
  const int n = opts.runs;
  std::vector<experiments::CampaignSpec> specs;
  for (const char* name : {"DS-1", "DS-2"}) {
    specs.push_back({std::string(name) + "-Move_Out-R", name,
                     core::AttackVector::kMoveOut,
                     experiments::AttackMode::kRobotack, n, opts.seed,
                     std::nullopt});
  }
  std::vector<std::pair<double, bool>> samples;  // (|error|, success)
  for (const auto& result : scheduler.run_all(specs)) {
    for (const auto& r : result.runs) {
      if (!r.attack.triggered) continue;
      const double err =
          std::abs(r.attack.predicted_delta - r.min_delta_since_attack);
      samples.emplace_back(err, r.crash || r.eb);
    }
  }
  // Bin by error and report success fraction (paper: decreasing).
  const double bins[] = {0.0, 2.0, 4.0, 6.0, 9.0, 13.0, 1e9};
  std::vector<std::string> csv_head{"err_lo", "err_hi", "n", "success_prob"};
  std::vector<std::vector<std::string>> csv_rows;
  std::printf("  |pred err| bin      n    success prob\n");
  for (std::size_t b = 0; b + 1 < std::size(bins); ++b) {
    int count = 0;
    int success = 0;
    for (const auto& [e, s] : samples) {
      if (e >= bins[b] && e < bins[b + 1]) {
        ++count;
        success += static_cast<int>(s);
      }
    }
    if (count == 0) continue;
    std::printf("  [%5.1f, %5.1f)  %5d    %.2f\n", bins[b],
                bins[b + 1] > 100 ? 99.9 : bins[b + 1], count,
                static_cast<double>(success) / count);
    csv_rows.push_back(
        {experiments::fmt(bins[b]),
         bins[b + 1] > 100 ? "inf" : experiments::fmt(bins[b + 1]),
         std::to_string(count),
         experiments::fmt(static_cast<double>(success) / count, 3)});
  }
  bench::maybe_write_csv(opts, csv_head, csv_rows);
  std::printf(
      "\npaper: success probability decreases as prediction error grows;\n"
      "NN within ~5 m (vehicles) / ~1.5 m (pedestrians) on validation.\n");
  return 0;
}
