// Reproduces Table II: smart-malware attack summary vs the random baseline,
// plus the paper's §VI headline aggregates (EB / crash rates, pedestrian vs
// vehicle asymmetry).

#include <cstdio>

#include "bench_util.hpp"
#include "experiments/reporting.hpp"
#include "experiments/thread_pool.hpp"
#include "obs/clock.hpp"

using namespace rt;

namespace {

struct PaperRow {
  const char* id;
  double k;
  double eb_pct;
  double crash_pct;  // negative: not applicable
};

constexpr PaperRow kPaper[] = {
    {"DS-1-Disappear-R", 48, 53.5, 31.7},
    {"DS-2-Disappear-R", 14, 94.4, 82.6},
    {"DS-1-Move_Out-R", 65, 37.3, 17.3},
    {"DS-2-Move_Out-R", 32, 97.8, 84.1},
    {"DS-3-Move_In-R", 48, 94.6, -1},
    {"DS-4-Move_In-R", 24, 78.5, -1},
    {"DS-5-Baseline-Random", -1, 2.3, 0.0},
};

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv, /*default_seed=*/20200613);
  bench::header("Table II — attack summary (paper vs measured)");
  experiments::LoopConfig loop;
  const auto oracles = bench::oracles(loop);
  experiments::CampaignRunner runner(loop, oracles);

  experiments::CampaignScheduler scheduler(runner, opts.threads);
  const auto svc = bench::make_service(runner, opts);

  const int n = opts.runs;
  std::printf("runs per campaign: %d (--runs or ROBOTACK_RUNS to change)\n",
              n);
  std::printf("scheduler threads: %u (--threads or ROBOTACK_THREADS)\n",
              scheduler.threads());
  if (opts.workers >= 1) {
    std::printf("grid workers: %u forked processes (--workers)\n",
                opts.workers);
  }

  std::vector<std::string> head{"ID",       "K(paper)", "K",     "#runs",
                                "EB(paper)", "EB",       "crash(paper)",
                                "crash"};
  std::vector<std::vector<std::string>> rows;

  int total_runs = 0;
  int total_eb = 0;
  int crashable_runs = 0;
  int total_crash = 0;
  int ped_runs = 0;
  int ped_success = 0;
  int veh_runs = 0;
  int veh_success = 0;
  int random_runs = 0;
  int random_eb = 0;
  int random_crash = 0;

  const auto specs = experiments::table2_campaigns(n, opts.seed);
  const obs::Stopwatch watch;
  const auto results = svc->run_grid(specs);
  const double elapsed = watch.elapsed_s();
  int grid_runs = 0;
  for (const auto& r : results) grid_runs += r.n();
  std::printf("grid: %d runs in %.2f s  (%.1f runs/sec at %u threads)\n",
              grid_runs, elapsed, grid_runs / elapsed, scheduler.threads());
  bench::report_service_stats(*svc);
  // Traced runs get their own bench name so CI can keep the traced and
  // untraced throughput side by side in BENCH_campaign.json.
  const char* bench_name = obs::Tracer::global().armed()
                               ? "table2_campaign_grid_traced"
                               : "table2_campaign_grid";
  bench::maybe_write_bench_json(
      opts, {{bench_name, grid_runs / elapsed, elapsed * 1000.0,
              scheduler.threads(), opts.seed}});

  for (std::size_t i = 0; i < specs.size(); ++i) {
    const auto& result = results[i];
    const PaperRow& paper = kPaper[i];
    const bool move_in = specs[i].vector == core::AttackVector::kMoveIn &&
                         specs[i].mode == experiments::AttackMode::kRobotack;
    rows.push_back(
        {specs[i].name,
         paper.k < 0 ? "K*" : experiments::fmt(paper.k, 0),
         experiments::fmt(result.median_k(), 0),
         std::to_string(result.n()),
         experiments::fmt_pct(paper.eb_pct / 100.0),
         experiments::fmt_pct(result.eb_rate()),
         paper.crash_pct < 0 ? "-" : experiments::fmt_pct(paper.crash_pct / 100.0),
         move_in ? "-" : experiments::fmt_pct(result.crash_rate())});

    if (specs[i].mode == experiments::AttackMode::kRobotack) {
      total_runs += result.n();
      total_eb += result.eb_count();
      if (!move_in) {
        crashable_runs += result.n();
        total_crash += result.crash_count();
      }
      const bool is_ped =
          specs[i].scenario == "DS-2" || specs[i].scenario == "DS-4";
      for (const auto& r : result.runs) {
        const bool success = move_in ? r.eb : r.crash;
        (is_ped ? ped_runs : veh_runs) += 1;
        (is_ped ? ped_success : veh_success) += static_cast<int>(success);
      }
    } else {
      random_runs += result.n();
      random_eb += result.eb_count();
      random_crash += result.crash_count();
    }
  }
  std::printf("%s", experiments::format_table(head, rows).c_str());
  bench::maybe_write_csv(opts, head, rows);

  bench::header("headline aggregates (paper -> measured)");
  const double r_eb = total_runs ? 100.0 * total_eb / total_runs : 0.0;
  const double r_crash =
      crashable_runs ? 100.0 * total_crash / crashable_runs : 0.0;
  const double rnd_eb = random_runs ? 100.0 * random_eb / random_runs : 0.0;
  std::printf("RoboTack forced EB:        paper 75.2%%   measured %.1f%%\n",
              r_eb);
  std::printf("RoboTack accidents:        paper 52.6%%   measured %.1f%%\n",
              r_crash);
  std::printf("Random baseline EB:        paper  2.3%%   measured %.1f%%\n",
              rnd_eb);
  std::printf("Random baseline accidents: paper  0.0%%   measured %.1f%%\n",
              random_runs ? 100.0 * random_crash / random_runs : 0.0);
  std::printf("EB ratio RoboTack/random:  paper ~33x    measured %.1fx\n",
              rnd_eb > 0.0 ? r_eb / rnd_eb : 0.0);
  std::printf(
      "attack success, pedestrians: paper 84.1%%  measured %.1f%%\n",
      ped_runs ? 100.0 * ped_success / ped_runs : 0.0);
  std::printf(
      "attack success, vehicles:    paper 31.7%%  measured %.1f%%\n",
      veh_runs ? 100.0 * veh_success / veh_runs : 0.0);
  bench::finish_observability(opts);
  return 0;
}
