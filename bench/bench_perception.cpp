// Microbenchmarks of the perception substrate (google-benchmark):
// Hungarian assignment, Kalman updates, MOT steps, fusion, full pipeline,
// plus end-to-end campaign throughput through the parallel scheduler.

#include <benchmark/benchmark.h>

#include "bench_json_main.hpp"

#include "experiments/campaign.hpp"
#include "perception/detector_model.hpp"
#include "perception/hungarian.hpp"
#include "perception/mot_tracker.hpp"
#include "perception/perception_system.hpp"
#include "sim/scenario_registry.hpp"

using namespace rt;

namespace {

void BM_Hungarian(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  stats::Rng rng(1);
  math::Matrix cost(n, n);
  for (auto& v : cost.data()) v = rng.uniform(0.0, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(perception::solve_assignment(cost));
  }
}
BENCHMARK(BM_Hungarian)->Arg(4)->Arg(16)->Arg(64);

void BM_KalmanPredictUpdate(benchmark::State& state) {
  perception::Detection d;
  d.bbox = {100.0, 100.0, 40.0, 40.0};
  perception::BboxTrack track(
      1, d, 1.0 / 15.0,
      perception::DetectorNoiseModel::paper_defaults().vehicle);
  for (auto _ : state) {
    track.predict();
    track.update(d);
  }
}
BENCHMARK(BM_KalmanPredictUpdate);

void BM_MotTrackerStep(benchmark::State& state) {
  const auto n_objects = static_cast<int>(state.range(0));
  perception::MotTracker mot(1.0 / 15.0);
  perception::CameraFrame frame;
  for (int i = 0; i < n_objects; ++i) {
    perception::Detection d;
    d.bbox = {100.0 + 120.0 * i, 300.0, 50.0, 50.0};
    frame.detections.push_back(d);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mot.update(frame));
  }
}
BENCHMARK(BM_MotTrackerStep)->Arg(2)->Arg(8)->Arg(24);

void BM_DetectorModel(benchmark::State& state) {
  perception::DetectorModel det(perception::CameraModel{},
                                perception::DetectorNoiseModel::paper_defaults(),
                                stats::Rng(3));
  stats::Rng rng(4);
  sim::Scenario sc = sim::make_scenario("DS-5", rng);
  sim::World world = sc.make_world();
  const auto gt = world.ground_truth();
  double t = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.detect(gt, t));
    t += 1.0 / 15.0;
  }
}
BENCHMARK(BM_DetectorModel);

void BM_FullPerceptionStep(benchmark::State& state) {
  perception::CameraModel cam;
  perception::PerceptionSystem sys(cam, 1.0 / 15.0, 0.1);
  perception::DetectorModel det(
      cam, perception::DetectorNoiseModel::paper_defaults(), stats::Rng(5));
  perception::LidarModel lidar(perception::LidarConfig{}, stats::Rng(6));
  stats::Rng rng(7);
  sim::Scenario sc = sim::make_scenario("DS-5", rng);
  sim::World world = sc.make_world();
  const auto gt = world.ground_truth();
  double t = 0.0;
  for (auto _ : state) {
    sys.ingest_lidar(lidar.scan(gt));
    benchmark::DoNotOptimize(sys.step(det.detect(gt, t)));
    t += 1.0 / 15.0;
  }
}
BENCHMARK(BM_FullPerceptionStep);

// Closed-loop campaign throughput through the CampaignScheduler, by thread
// count. items_per_second is campaign runs/sec — the number every scaling
// PR should move. Uses the no-oracle NoSh mode so the benchmark is hermetic
// (no training, no cache directory).
void BM_CampaignSchedulerThroughput(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  experiments::LoopConfig loop;
  experiments::CampaignRunner runner(loop, {});
  experiments::CampaignScheduler scheduler(runner, threads);
  const experiments::CampaignSpec spec{
      "DS-1-Disappear-NoSh-bench", "DS-1",
      core::AttackVector::kDisappear, experiments::AttackMode::kNoSh, 16,
      4242};
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.run(spec));
  }
  state.SetItemsProcessed(state.iterations() * spec.runs);
}
BENCHMARK(BM_CampaignSchedulerThroughput)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  return rt::bench::bench_json_main(argc, argv);
}
