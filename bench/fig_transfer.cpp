// Oracle transfer matrix: train a safety-hijacker oracle per scenario
// family, evaluate every oracle on held-out launches from every family
// (predictive transfer), and deploy each oracle in closed-loop R-mode
// campaigns on every family (behavioral transfer). The cross-surface
// analogue of the paper's per-vector training (§IV-B), extended to the
// full scenario registry.

#include <chrono>
#include <cstdio>

#include "bench_util.hpp"
#include "experiments/reporting.hpp"
#include "experiments/transfer_matrix.hpp"

using namespace rt;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv, /*default_seed=*/424242);
  bench::header("Transfer matrix — train-on-X / eval-on-Y oracle transfer");

  experiments::LoopConfig loop;
  experiments::TransferConfig cfg;
  cfg.sh.seed = opts.seed;
  // Reduced launch grid: enough (delta_inject, k) spread to train a usable
  // per-family oracle while keeping the full matrix over every registered
  // family fast. The nn hyper-parameters stay at the paper defaults.
  cfg.sh.delta_triggers = {8.0, 16.0, 26.0};
  cfg.sh.ks = {8, 24, 48};
  cfg.sh.repeats = 2;
  cfg.campaign_runs = opts.runs;
  cfg.threads = opts.threads;

  const auto& registry = sim::ScenarioRegistry::global();
  std::printf("families: %zu   launches/family: %zu   campaign runs/cell: %d\n",
              registry.size(),
              cfg.sh.delta_triggers.size() * cfg.sh.ks.size() *
                  static_cast<std::size_t>(cfg.sh.repeats),
              cfg.campaign_runs);

  const auto t0 = std::chrono::steady_clock::now();
  const auto matrix = experiments::run_transfer_matrix(cfg, loop);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const auto head = experiments::TransferMatrix::csv_header();
  const auto rows = matrix.csv_rows();
  std::printf("%s", experiments::format_table(head, rows).c_str());
  bench::maybe_write_csv(opts, head, rows);
  int campaign_runs = 0;
  for (const auto& c : matrix.cells) campaign_runs += c.campaign_n;
  std::printf("matrix: %zu cells (%d campaign runs) in %.2f s\n",
              matrix.cells.size(), campaign_runs, elapsed);
  bench::maybe_write_bench_json(
      opts,
      {{"fig_transfer_matrix",
        elapsed > 0.0 ? campaign_runs / elapsed : 0.0, elapsed * 1000.0,
        opts.threads == 0 ? 0 : opts.threads, opts.seed}});

  // Transfer gap: on-diagonal (train == eval family) vs off-diagonal
  // predictive accuracy and behavioral trigger rate. The two metrics come
  // from different cell populations (a cell can have an empty holdout
  // split yet valid campaign results, and vice versa), so each keeps its
  // own denominator.
  struct Gap {
    double acc_sum{0.0};
    int acc_n{0};
    double trig_sum{0.0};
    int trig_n{0};
  };
  Gap diag;
  Gap off;
  for (const auto& c : matrix.cells) {
    Gap& g = c.train_set == c.eval_family ? diag : off;
    if (c.n_eval > 0) {
      g.acc_sum += c.accuracy;
      ++g.acc_n;
    }
    if (c.campaign_n > 0) {
      g.trig_sum += c.triggered_rate;
      ++g.trig_n;
    }
  }
  bench::header("transfer gap (diagonal = train family == eval family)");
  const auto print_gap = [](const char* label, const Gap& g) {
    std::printf("%s mean accuracy %.3f (%d cells)   mean trigger rate %.3f (%d cells)\n",
                label, g.acc_n > 0 ? g.acc_sum / g.acc_n : 0.0, g.acc_n,
                g.trig_n > 0 ? g.trig_sum / g.trig_n : 0.0, g.trig_n);
  };
  print_gap("diagonal:    ", diag);
  print_gap("off-diagonal:", off);
  return 0;
}
