// Ablations on the safety hijacker's two decision knobs:
//  - gamma_launch (the paper fixes ~10 m via simulation);
//  - K_max for Disappear (the paper ties it to the streak p99).

#include <cstdio>

#include "bench_util.hpp"
#include "experiments/reporting.hpp"
#include "experiments/thread_pool.hpp"

using namespace rt;

namespace {

experiments::CampaignResult run_with(
    const experiments::LoopConfig& base, const experiments::OracleSet& oracles,
    const std::string& scenario, core::AttackVector v, int n,
    std::uint64_t seed, unsigned threads, double gamma, double p99_mult,
    bool enable_ids) {
  experiments::LoopConfig loop = base;
  loop.enable_ids = enable_ids;
  experiments::CampaignResult result;
  result.runs.resize(static_cast<std::size_t>(n));
  // `derive` never advances the root, so each run's stream is a pure
  // function of (seed, index) and the sweep parallelizes bit-identically.
  const stats::Rng root(seed);
  experiments::ThreadPool pool(threads);
  pool.parallel_for(n, [&](int i) {
    stats::Rng run_rng = root.derive(static_cast<std::uint64_t>(i) + 1);
    const auto scenario_seed = run_rng.engine()();
    const auto loop_seed = run_rng.engine()();
    const auto attacker_seed = run_rng.engine()();
    stats::Rng srng(scenario_seed);
    sim::Scenario sc = sim::make_scenario(scenario, srng);
    experiments::ClosedLoop cl(sc, loop, loop_seed);
    auto cfg = experiments::make_attacker_config(
        loop, v, core::TimingPolicy::kSafetyHijacker);
    cfg.sh.gamma_launch = gamma;
    cfg.sh.disappear_p99_mult = p99_mult;
    auto attacker = std::make_unique<core::Robotack>(
        cfg, loop.camera, loop.noise, loop.mot, attacker_seed);
    for (const auto& [vec, o] : oracles) attacker->set_oracle(vec, o);
    cl.set_attacker(std::move(attacker));
    result.runs[static_cast<std::size_t>(i)] = cl.run();
  });
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv, /*default_seed=*/1357);
  experiments::LoopConfig loop;
  const auto oracles = bench::oracles(loop);
  const int n = opts.runs;

  std::vector<std::string> csv_head{"ablation", "param",     "triggered",
                                    "K_med",    "EB",        "crash",
                                    "IDS flagged"};
  std::vector<std::vector<std::string>> csv_rows;

  bench::header("Ablation — launch threshold gamma (DS-2 Move_Out)");
  {
    std::vector<std::string> head{"gamma", "triggered", "EB", "crash"};
    std::vector<std::vector<std::string>> rows;
    for (const double gamma : {3.0, 6.0, 10.0, 14.0, 20.0}) {
      const auto r = run_with(loop, oracles, "DS-2",
                              core::AttackVector::kMoveOut, n, opts.seed,
                              opts.threads, gamma, 1.0, false);
      rows.push_back({experiments::fmt(gamma, 0),
                      std::to_string(r.triggered_count()),
                      experiments::fmt_pct(r.eb_rate()),
                      experiments::fmt_pct(r.crash_rate())});
      csv_rows.push_back({"gamma", experiments::fmt(gamma, 0),
                          std::to_string(r.triggered_count()), "-",
                          experiments::fmt_pct(r.eb_rate()),
                          experiments::fmt_pct(r.crash_rate()), "-"});
    }
    std::printf("%s", experiments::format_table(head, rows).c_str());
    std::printf(
        "expected: tiny gamma rarely launches; huge gamma launches too\n"
        "early and wastes the attack window.\n");
  }

  bench::header("Ablation — Disappear K_max multiplier (DS-1, IDS on)");
  {
    std::vector<std::string> head{"p99 mult", "K(med)", "EB", "crash",
                                  "IDS flagged"};
    std::vector<std::vector<std::string>> rows;
    for (const double mult : {0.5, 1.0, 2.0}) {
      const auto r = run_with(loop, oracles, "DS-1",
                              core::AttackVector::kDisappear, n, opts.seed,
                              opts.threads, 6.0, mult, true);
      const std::string ids = experiments::fmt_pct(
          static_cast<double>(r.ids_flagged_count()) / std::max(1, r.n()));
      rows.push_back({experiments::fmt(mult, 1),
                      experiments::fmt(r.median_k(), 0),
                      experiments::fmt_pct(r.eb_rate()),
                      experiments::fmt_pct(r.crash_rate()), ids});
      csv_rows.push_back({"p99_mult", experiments::fmt(mult, 1), "-",
                          experiments::fmt(r.median_k(), 0),
                          experiments::fmt_pct(r.eb_rate()),
                          experiments::fmt_pct(r.crash_rate()), ids});
    }
    std::printf("%s", experiments::format_table(head, rows).c_str());
    std::printf(
        "expected: halving K_max weakens the blackout; doubling it raises\n"
        "the IDS absence-alarm rate (blackout beyond the natural tail).\n");
  }
  bench::maybe_write_csv(opts, csv_head, csv_rows);
  return 0;
}
