// Reproduces Fig. 7: K' — the number of frames the trajectory hijacker
// actively shifts the victim's bounding box before holding the faked
// trajectory — split by attack vector and victim class.

#include <cstdio>

#include "bench_util.hpp"
#include "experiments/reporting.hpp"
#include "stats/summary.hpp"

using namespace rt;

int main() {
  bench::header("Fig. 7 — K' shift time per vector and victim class");
  experiments::LoopConfig loop;
  const auto oracles = bench::oracles(loop);
  experiments::CampaignRunner runner(loop, oracles);
  const int n = bench::runs_per_campaign();

  struct Cell {
    const char* label;
    const char* scenario;
    core::AttackVector vector;
    double paper_median;
  };
  // Paper medians (Fig. 7): vehicle Move_Out 6, Move_In 10;
  // pedestrian Move_Out 5, Move_In 3 (Disappear has no shift phase in our
  // implementation; the paper lists its total perturbation instead).
  const Cell cells[] = {
      {"Vehicle / Move_Out (DS-1)", "DS-1", core::AttackVector::kMoveOut,
       6.0},
      {"Vehicle / Move_In  (DS-3)", "DS-3", core::AttackVector::kMoveIn,
       10.0},
      {"Pedestrian / Move_Out (DS-2)", "DS-2", core::AttackVector::kMoveOut,
       5.0},
      {"Pedestrian / Move_In  (DS-4)", "DS-4", core::AttackVector::kMoveIn,
       3.0},
  };

  for (const Cell& c : cells) {
    experiments::CampaignSpec spec{c.label, c.scenario, c.vector,
                                   experiments::AttackMode::kRobotack, n,
                                   2468};
    const auto result = runner.run(spec);
    const auto ks = result.k_primes();
    std::printf("\n%s (paper median K' = %.0f)\n", c.label, c.paper_median);
    if (ks.empty()) {
      std::printf("  no triggered Move_* attacks in %d runs\n", result.n());
    } else {
      std::printf("  K': %s\n", stats::boxplot(ks).to_string().c_str());
    }
  }

  std::printf(
      "\nNote: in this reproduction the IoU association gate binds harder\n"
      "for the pedestrian's small bbox, so the absolute K' ordering between\n"
      "classes can differ from the paper (see EXPERIMENTS.md); K' remaining\n"
      "a small fraction of the total attack K (stealth, §VI-E) holds.\n");
  return 0;
}
