// Reproduces Fig. 7: K' — the number of frames the trajectory hijacker
// actively shifts the victim's bounding box before holding the faked
// trajectory — split by attack vector and victim class.

#include <cstdio>

#include "bench_util.hpp"
#include "experiments/reporting.hpp"
#include "stats/summary.hpp"

using namespace rt;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv, /*default_seed=*/2468);
  bench::header("Fig. 7 — K' shift time per vector and victim class");
  experiments::LoopConfig loop;
  const auto oracles = bench::oracles(loop);
  experiments::CampaignRunner runner(loop, oracles);
  experiments::CampaignScheduler scheduler(runner, opts.threads);
  const int n = opts.runs;

  struct Cell {
    const char* label;
    const char* scenario;
    core::AttackVector vector;
    double paper_median;
  };
  // Paper medians (Fig. 7): vehicle Move_Out 6, Move_In 10;
  // pedestrian Move_Out 5, Move_In 3 (Disappear has no shift phase in our
  // implementation; the paper lists its total perturbation instead).
  const Cell cells[] = {
      {"Vehicle / Move_Out (DS-1)", "DS-1", core::AttackVector::kMoveOut,
       6.0},
      {"Vehicle / Move_In  (DS-3)", "DS-3", core::AttackVector::kMoveIn,
       10.0},
      {"Pedestrian / Move_Out (DS-2)", "DS-2", core::AttackVector::kMoveOut,
       5.0},
      {"Pedestrian / Move_In  (DS-4)", "DS-4", core::AttackVector::kMoveIn,
       3.0},
  };

  std::vector<experiments::CampaignSpec> specs;
  for (const Cell& c : cells) {
    specs.push_back({c.label, c.scenario, c.vector,
                     experiments::AttackMode::kRobotack, n, opts.seed,
                     std::nullopt});
  }
  const auto results = scheduler.run_all(specs);

  std::vector<std::string> csv_head{"cell",   "n_kprime", "min", "q1",
                                    "median", "q3",       "max"};
  std::vector<std::vector<std::string>> csv_rows;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Cell& c = cells[i];
    const auto ks = results[i].k_primes();
    std::printf("\n%s (paper median K' = %.0f)\n", c.label, c.paper_median);
    if (ks.empty()) {
      std::printf("  no triggered Move_* attacks in %d runs\n",
                  results[i].n());
      csv_rows.push_back({c.label, "0", "-", "-", "-", "-", "-"});
    } else {
      const auto box = stats::boxplot(ks);
      std::printf("  K': %s\n", box.to_string().c_str());
      csv_rows.push_back({c.label, std::to_string(box.n),
                          experiments::fmt(box.min),
                          experiments::fmt(box.q1),
                          experiments::fmt(box.median),
                          experiments::fmt(box.q3),
                          experiments::fmt(box.max)});
    }
  }
  bench::maybe_write_csv(opts, csv_head, csv_rows);

  std::printf(
      "\nNote: in this reproduction the IoU association gate binds harder\n"
      "for the pedestrian's small bbox, so the absolute K' ordering between\n"
      "classes can differ from the paper (see EXPERIMENTS.md); K' remaining\n"
      "a small fraction of the total attack K (stealth, §VI-E) holds.\n");
  return 0;
}
