// The attack-vs-defense matrix: every registered scenario family × its
// natural attack vector × attack mode × runtime attack monitor, with
// detection rate, detection latency (frames from launch to first alert)
// and the false-positive rate on the no-attack golden baselines. The paper
// argues RoboTack's perturbations evade implicit safety checks (§III-B,
// §VI-E); this table makes the claim measurable monitor by monitor — and
// shows which defenses the crude baselines cannot evade.

#include <cstdio>

#include "bench_util.hpp"
#include "defense/monitor_registry.hpp"
#include "experiments/defense_grid.hpp"
#include "experiments/reporting.hpp"
#include "experiments/thread_pool.hpp"

using namespace rt;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv, /*default_seed=*/20200613);
  bench::header("Attack vs defense — scenario × vector × mode × monitor");

  experiments::LoopConfig loop;
  const auto oracles = bench::oracles(loop);

  experiments::DefenseGridConfig cfg;
  cfg.runs = opts.runs;
  cfg.seed = opts.seed;
  cfg.threads = opts.threads;

  // --cache-dir / --workers route the grid through the campaign service
  // (content-hash cache and/or forked shards); results are identical.
  experiments::CampaignRunner runner(loop, oracles);
  const auto svc = bench::make_service(runner, opts);
  if (!opts.cache_dir.empty() || opts.workers >= 1) {
    cfg.executor = svc->executor();
  }

  const auto& monitors = defense::MonitorRegistry::global();
  std::printf("monitors:\n");
  for (const auto& key : monitors.keys()) {
    std::printf("  %-20s %s\n", key.c_str(),
                monitors.get(key).description.c_str());
  }
  std::printf("runs per campaign: %d, seed %llu, threads %u\n", cfg.runs,
              static_cast<unsigned long long>(cfg.seed),
              cfg.threads == 0 ? experiments::ThreadPool::default_threads()
                               : cfg.threads);

  const obs::Stopwatch watch;
  const auto grid = experiments::run_defense_grid(cfg, loop, oracles);
  const double elapsed = watch.elapsed_s();
  int total_runs = 0;
  for (const auto& c : grid.cells) total_runs += c.n;
  std::printf("grid: %zu cells, %d runs in %.2f s (%.1f runs/sec)\n",
              grid.cells.size(), total_runs, elapsed, total_runs / elapsed);
  bench::report_service_stats(*svc);
  bench::maybe_write_bench_json(
      opts, {{"defense_grid", total_runs / elapsed, elapsed * 1000.0,
              cfg.threads == 0 ? experiments::ThreadPool::default_threads()
                               : cfg.threads,
              opts.seed}});

  std::vector<std::string> head{"campaign", "monitor", "#runs",
                                "trig",     "det",     "det rate",
                                "med frames", "FP rate", "EB",
                                "crash"};
  std::vector<std::vector<std::string>> rows;
  for (const auto& c : grid.cells) {
    rows.push_back({c.campaign, c.monitor.empty() ? "none" : c.monitor,
                    std::to_string(c.n), std::to_string(c.triggered),
                    std::to_string(c.detected),
                    experiments::fmt_pct(c.detection_rate),
                    c.median_frames_to_detection < 0.0
                        ? "-"
                        : experiments::fmt(c.median_frames_to_detection, 0),
                    experiments::fmt_pct(c.false_alarm_rate),
                    experiments::fmt_pct(c.eb_rate),
                    experiments::fmt_pct(c.crash_rate)});
  }
  std::printf("%s", experiments::format_table(head, rows).c_str());
  bench::maybe_write_csv(opts, experiments::DefenseGrid::csv_header(),
                         grid.csv_rows());

  // Headline per-monitor aggregates: how well each defends against the
  // smart malware vs the crude baselines, and what it costs in false
  // alarms on clean runs.
  bench::header("per-monitor summary (aggregated over scenarios)");
  std::vector<std::string> shead{"monitor", "mode", "trig", "det",
                                 "det rate", "FP rate"};
  std::vector<std::vector<std::string>> srows;
  for (const auto& key : monitors.keys()) {
    struct Agg {
      int n{0};
      int triggered{0};
      int detected{0};
      int false_alarms{0};
    };
    std::vector<std::pair<std::string, Agg>> by_mode;
    for (const auto& c : grid.cells) {
      if (c.monitor != key) continue;
      Agg* agg = nullptr;
      for (auto& [mode, a] : by_mode) {
        if (mode == c.mode) agg = &a;
      }
      if (agg == nullptr) {
        by_mode.emplace_back(c.mode, Agg{});
        agg = &by_mode.back().second;
      }
      agg->n += c.n;
      agg->triggered += c.triggered;
      agg->detected += c.detected;
      agg->false_alarms += c.false_alarms;
    }
    for (const auto& [mode, a] : by_mode) {
      srows.push_back(
          {key, mode, std::to_string(a.triggered), std::to_string(a.detected),
           experiments::fmt_pct(
               a.triggered ? static_cast<double>(a.detected) / a.triggered
                           : 0.0),
           experiments::fmt_pct(
               a.n ? static_cast<double>(a.false_alarms) / a.n : 0.0)});
    }
  }
  std::printf("%s", experiments::format_table(shead, srows).c_str());
  std::printf(
      "\nreading the table: 'det rate' counts alerts at/after a triggered\n"
      "launch; 'FP rate' counts everything else the stack raised (golden\n"
      "rows are pure false-positive baselines). RoboTack is built to duck\n"
      "the per-frame gates; the CUSUM drift and sensor-consistency tests\n"
      "are the ones that make it pay for every perturbed frame.\n");
  bench::finish_observability(opts);
  return 0;
}
