// Ablation: the stealth/noise bound (§III-B's "within one standard
// deviation"). Sweeps the trajectory hijacker's sigma multiplier (and an
// unbounded variant) on DS-2 Move_Out with the IDS enabled, reporting both
// attack success and detectability — the trade-off the paper's bound sits on.

#include <cstdio>

#include "bench_util.hpp"
#include "experiments/reporting.hpp"
#include "experiments/thread_pool.hpp"

using namespace rt;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv, /*default_seed=*/8642);
  bench::header("Ablation — perturbation noise bound vs IDS detection");
  experiments::LoopConfig loop;
  loop.enable_ids = true;
  const auto oracles = bench::oracles(loop);
  const int n = opts.runs;

  struct Case {
    const char* label;
    double sigma_mult;
    bool enforce;
  };
  const Case cases[] = {
      {"0.5 sigma", 0.5, true},
      {"1.0 sigma (paper)", 1.0, true},
      {"2.0 sigma", 2.0, true},
      {"unbounded", 1.0, false},
  };

  std::vector<std::string> head{"bound", "EB", "crash", "IDS flagged"};
  std::vector<std::vector<std::string>> rows;
  for (const Case& c : cases) {
    std::vector<experiments::RunResult> results(
        static_cast<std::size_t>(n));
    // `derive` never advances the root, so each run's stream is a pure
    // function of (seed, index) and the sweep parallelizes bit-identically.
    const stats::Rng root(opts.seed);
    experiments::ThreadPool pool(opts.threads);
    pool.parallel_for(n, [&](int i) {
      stats::Rng run_rng = root.derive(static_cast<std::uint64_t>(i) + 1);
      const auto scenario_seed = run_rng.engine()();
      const auto loop_seed = run_rng.engine()();
      const auto attacker_seed = run_rng.engine()();
      stats::Rng srng(scenario_seed);
      sim::Scenario sc = sim::make_scenario("DS-2", srng);
      experiments::ClosedLoop cl(sc, loop, loop_seed);
      auto cfg = experiments::make_attacker_config(
          loop, core::AttackVector::kMoveOut,
          core::TimingPolicy::kSafetyHijacker);
      cfg.th.sigma_mult = c.sigma_mult;
      cfg.th.enforce_noise_bound = c.enforce;
      auto attacker = std::make_unique<core::Robotack>(
          cfg, loop.camera, loop.noise, loop.mot, attacker_seed);
      for (const auto& [v, o] : oracles) attacker->set_oracle(v, o);
      cl.set_attacker(std::move(attacker));
      results[static_cast<std::size_t>(i)] = cl.run();
    });
    int eb = 0;
    int crash = 0;
    int flagged = 0;
    for (const auto& r : results) {
      eb += r.eb;
      crash += r.crash;
      flagged += r.ids_flagged;
    }
    rows.push_back({c.label,
                    experiments::fmt_pct(static_cast<double>(eb) / n),
                    experiments::fmt_pct(static_cast<double>(crash) / n),
                    experiments::fmt_pct(static_cast<double>(flagged) / n)});
  }
  std::printf("%s", experiments::format_table(head, rows).c_str());
  bench::maybe_write_csv(opts, head, rows);
  std::printf(
      "\nexpected shape: tighter bounds slow the hijack (lower success);\n"
      "looser bounds raise IDS innovation alarms. The paper's 1-sigma rule\n"
      "sits at the stealth/effectiveness knee.\n");
  return 0;
}
