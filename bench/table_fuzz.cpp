// Procedural scenario fuzzing: a coverage-guided search over the sampled
// scenario space of every registered family. Two searches share one budget
// shape — one maximizes attack damage (crash + EB under "R w/o SH", which
// needs no trained oracles and keeps this driver hermetic), one hunts for
// corners where a damaging attack evades the full monitor stack. The
// frontier rows print as corpus lines ("<template> <seed>") ready to pin in
// tests/corpus/scenarios.txt, and every frontier sample is then re-judged
// by the clean-run invariant suite (a frontier corner is where the *attack*
// hurts; the unattacked world must still be safe and alert-free).

#include <cstdio>

#include "bench_util.hpp"
#include "defense/monitor_registry.hpp"
#include "experiments/scenario_search.hpp"
#include "experiments/thread_pool.hpp"

using namespace rt;

namespace {

experiments::ScenarioSearchResult run_search(
    experiments::ScenarioSearchConfig cfg, const experiments::LoopConfig& loop,
    double& elapsed_s) {
  const obs::Stopwatch watch;
  const auto result =
      experiments::run_scenario_search(cfg, loop, /*oracles=*/{});
  elapsed_s = watch.elapsed_s();
  return result;
}

void print_frontier(const experiments::ScenarioSearchResult& result) {
  std::vector<std::string> head{"template", "corpus line", "score",
                                "crash",    "EB",          "det rate",
                                "#runs"};
  std::vector<std::vector<std::string>> rows;
  for (const auto& e : result.frontier) {
    rows.push_back({e.template_key, e.corpus_line(),
                    experiments::fmt(e.score, 3),
                    experiments::fmt_pct(e.crash_rate),
                    experiments::fmt_pct(e.eb_rate),
                    experiments::fmt_pct(e.detection_rate),
                    std::to_string(e.runs)});
  }
  std::printf("%s", experiments::format_table(head, rows).c_str());
  std::printf("evaluated %zu samples (%d rejected structurally), %d runs\n",
              result.evaluated.size(), result.rejected_samples,
              result.total_runs);
}

}  // namespace

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv, /*default_seed=*/20200613);
  bench::header("Scenario fuzzing — coverage-guided search frontier");

  experiments::LoopConfig loop;
  experiments::ScenarioSearchConfig cfg;
  cfg.runs_per_sample = opts.runs;
  cfg.seed = opts.seed;
  cfg.threads = opts.threads;
  cfg.monitors = defense::MonitorRegistry::global().keys();

  // --cache-dir / --workers score each round's specs through the campaign
  // service (the search itself passes oracles={}; the executor's runner
  // must match for bit-identical scoring).
  const experiments::CampaignRunner service_runner(loop, {});
  const auto svc = bench::make_service(service_runner, opts);
  if (!opts.cache_dir.empty() || opts.workers >= 1) {
    cfg.executor = svc->executor();
  }
  const unsigned threads = opts.threads == 0
                               ? experiments::ThreadPool::default_threads()
                               : opts.threads;
  std::printf("templates: %zu, %d rounds x %d samples, %d runs/sample, "
              "seed %llu, threads %u\n",
              sim::ScenarioRegistry::global().keys().size(), cfg.rounds,
              cfg.samples_per_round, cfg.runs_per_sample,
              static_cast<unsigned long long>(cfg.seed), threads);

  std::vector<experiments::BenchJsonRecord> records;
  std::vector<std::vector<std::string>> csv_rows;
  experiments::ScenarioSearchResult searches[2];
  const experiments::SearchObjective objectives[2] = {
      experiments::SearchObjective::kAttackSuccess,
      experiments::SearchObjective::kEvadeMonitors};
  for (int i = 0; i < 2; ++i) {
    cfg.objective = objectives[i];
    double elapsed = 0.0;
    searches[i] = run_search(cfg, loop, elapsed);
    bench::header((std::string("objective: ") + to_string(cfg.objective))
                      .c_str());
    print_frontier(searches[i]);
    records.push_back({std::string("fuzz_search_") + to_string(cfg.objective),
                       elapsed > 0.0 ? searches[i].total_runs / elapsed : 0.0,
                       elapsed * 1000.0, threads, opts.seed});
    for (const auto& row : searches[i].csv_rows()) {
      std::vector<std::string> tagged{to_string(cfg.objective)};
      tagged.insert(tagged.end(), row.begin(), row.end());
      csv_rows.push_back(std::move(tagged));
    }
  }

  // Clean-run invariant sweep over the union frontier: the search found the
  // corners where the malware wins; the same corners unattacked must stay
  // collision-free, inside the ego envelope, and raise zero alerts.
  bench::header("clean-run invariants on the frontier");
  const sim::ScenarioSampler sampler;
  int violations = 0;
  for (const auto& search : searches) {
    for (const auto& e : search.frontier) {
      const auto sample = sampler.sample(e.template_key, e.sample_seed);
      const auto check = experiments::check_clean_run(sample, loop);
      if (!check.ok()) {
        ++violations;
        std::printf("VIOLATION %s\n%s\n", sample.spec_string().c_str(),
                    check.report.to_string().c_str());
      }
    }
  }
  std::printf(violations == 0 ? "all frontier samples clean\n"
                              : "%d frontier samples violated invariants\n",
              violations);

  std::vector<std::string> csv_header{"objective"};
  for (const auto& col : experiments::ScenarioSearchResult::csv_header()) {
    csv_header.push_back(col);
  }
  bench::report_service_stats(*svc);
  bench::maybe_write_csv(opts, csv_header, csv_rows);
  bench::maybe_write_bench_json(opts, records);
  bench::finish_observability(opts);
  return violations == 0 ? 0 : 1;
}
