// Campaign-service benchmark: runs the Table II grid through one
// content-hash result cache — a cold pass (all misses, real simulation), a
// warm pass (all hits, pure cache reads) and a chaos pass (fresh cache,
// deterministic fault injection on the cache-write and pipe-write sites) —
// and enforces the service contract: the warm pass must be >= 10x faster
// and bit-identical to the cold pass, and the chaos pass must absorb every
// injected fault and still reproduce the cold bytes. With --workers N the
// cold and chaos passes additionally exercise the forked multi-process
// sharder. Chaos accounting is asserted against the metrics registry
// (rt_fault_injections_total, rt_shard_*), not scraped from stderr.

#include <cstdio>
#include <filesystem>
#include <string>
#include <unistd.h>

#include "bench_util.hpp"
#include "experiments/campaign_serde.hpp"
#include "experiments/reporting.hpp"
#include "service/fault_injection.hpp"

using namespace rt;

int main(int argc, char** argv) {
  const auto opts = bench::parse_options(argc, argv, /*default_seed=*/20200613);
  bench::header("Campaign service — cold vs warm cache over Table II");

  experiments::LoopConfig loop;
  const auto oracles = bench::oracles(loop);
  experiments::CampaignRunner runner(loop, oracles);

  // --cache-dir reuses (and keeps) a caller-owned cache; the default is a
  // private scratch dir wiped before the cold pass and removed at exit, so
  // "cold" genuinely means cold.
  namespace fs = std::filesystem;
  std::string cache_dir = opts.cache_dir;
  const bool owned = cache_dir.empty();
  if (owned) {
    cache_dir = (fs::temp_directory_path() /
                 ("rt_table_service_" + std::to_string(::getpid())))
                    .string();
  }
  std::error_code ec;
  if (owned) fs::remove_all(cache_dir, ec);

  auto run_pass = [&](const char* label, const std::string& dir,
                      double& elapsed_s, std::size_t& hits,
                      service::ShardStats* shard_out = nullptr) {
    bench::BenchOptions pass = opts;
    pass.cache_dir = dir;
    auto svc = bench::make_service(runner, pass);
    const auto specs = experiments::table2_campaigns(opts.runs, opts.seed);
    const obs::Stopwatch watch;
    const auto results = svc->run_grid(specs);
    elapsed_s = watch.elapsed_s();
    hits = svc->last_request().cache_hits;
    if (shard_out != nullptr) *shard_out = svc->shard_stats();
    int grid_runs = 0;
    for (const auto& r : results) grid_runs += r.n();
    std::printf("%s: %zu specs, %d runs in %.3f s (hits=%zu)\n", label,
                specs.size(), grid_runs, elapsed_s, hits);
    bench::report_service_stats(*svc);
    // Canonical bytes of the whole grid, for the bit-identity check.
    std::string blob;
    for (const auto& r : results) {
      blob += experiments::serialize_campaign_result(r);
    }
    return blob;
  };

  double cold_s = 0.0;
  double warm_s = 0.0;
  std::size_t cold_hits = 0;
  std::size_t warm_hits = 0;
  const std::string cold = run_pass("cold", cache_dir, cold_s, cold_hits);
  const std::string warm = run_pass("warm", cache_dir, warm_s, warm_hits);
  if (owned) fs::remove_all(cache_dir, ec);

  // Chaos pass: a fresh cache directory with the deterministic fault
  // injector armed against the cache-write and pipe-write sites at 50%.
  // Every fault must be absorbed (stores decline, dead workers re-run) and
  // the grid must still come back byte-identical to the cold pass.
  const std::string chaos_dir =
      (fs::temp_directory_path() /
       ("rt_table_service_chaos_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(chaos_dir, ec);
  double chaos_s = 0.0;
  std::size_t chaos_hits = 0;
  std::string chaos;
  std::uint64_t chaos_faults = 0;
  service::ShardStats chaos_shards;
  // The registry is cumulative, so the chaos pass is judged on deltas
  // around it; the firing counter must agree with the injector's own
  // tally (both count parent-process events only).
  const auto before = obs::MetricsRegistry::global().snapshot();
  {
    service::FaultPlan plan;
    plan.seed = opts.seed;
    plan.rules.push_back({service::FaultSite::kCacheWrite,
                          service::FaultType::kIoError, 0.5, -1, 0});
    plan.rules.push_back({service::FaultSite::kPipeWrite,
                          service::FaultType::kIoError, 0.5, -1, 0});
    service::ArmedFaults armed(std::move(plan));
    chaos = run_pass("chaos", chaos_dir, chaos_s, chaos_hits, &chaos_shards);
    chaos_faults = service::FaultInjector::instance().injected_total();
  }
  const auto after = obs::MetricsRegistry::global().snapshot();
  const auto delta = [&](const char* name) {
    return after.counter(name) - before.counter(name);
  };
  fs::remove_all(chaos_dir, ec);
  std::printf("chaos: %llu faults injected (parent process)\n",
              static_cast<unsigned long long>(chaos_faults));

  const auto specs = experiments::table2_campaigns(opts.runs, opts.seed);
  int grid_runs = 0;
  for (const auto& s : specs) grid_runs += s.runs;
  const double speedup = warm_s > 0.0 ? cold_s / warm_s : 0.0;
  std::printf("warm speedup: %.1fx (contract: >= 10x)\n", speedup);
  bench::maybe_write_bench_json(
      opts,
      {{"table_service_cold", cold_s > 0.0 ? grid_runs / cold_s : 0.0,
        cold_s * 1000.0, opts.workers >= 1 ? opts.workers : opts.threads,
        opts.seed},
       {"table_service_warm", warm_s > 0.0 ? grid_runs / warm_s : 0.0,
        warm_s * 1000.0, opts.workers >= 1 ? opts.workers : opts.threads,
        opts.seed},
       {"table_service_chaos", chaos_s > 0.0 ? grid_runs / chaos_s : 0.0,
        chaos_s * 1000.0, opts.workers >= 1 ? opts.workers : opts.threads,
        opts.seed}});

  bool ok = true;
  if (warm != cold) {
    std::printf("FAIL: warm results differ from cold results\n");
    ok = false;
  }
  if (cold_hits != 0) {
    std::printf("FAIL: cold pass hit the cache (%zu hits)\n", cold_hits);
    ok = false;
  }
  if (warm_hits != specs.size()) {
    std::printf("FAIL: warm pass missed the cache (%zu/%zu hits)\n",
                warm_hits, specs.size());
    ok = false;
  }
  if (speedup < 10.0) {
    std::printf("FAIL: warm pass only %.1fx faster than cold\n", speedup);
    ok = false;
  }
  if (chaos != cold) {
    std::printf("FAIL: chaos results differ from cold results\n");
    ok = false;
  }
  if (chaos_hits != 0) {
    std::printf("FAIL: chaos pass hit its fresh cache (%zu hits)\n",
                chaos_hits);
    ok = false;
  }
  // Chaos accounting through the metrics registry: every parent-process
  // firing the injector counted must also have landed in
  // rt_fault_injections_total, and the sharder's recovery counters must
  // match the ShardStats of the chaos request.
  if (delta("rt_fault_injections_total") != chaos_faults) {
    std::printf("FAIL: rt_fault_injections_total moved %llu, injector "
                "counted %llu\n",
                static_cast<unsigned long long>(
                    delta("rt_fault_injections_total")),
                static_cast<unsigned long long>(chaos_faults));
    ok = false;
  }
  if (chaos_faults == 0) {
    std::printf("FAIL: chaos pass injected no faults\n");
    ok = false;
  }
  if (opts.workers >= 1) {
    const struct {
      const char* metric;
      std::uint64_t expect;
    } shard_checks[] = {
        {"rt_shard_worker_deaths_total",
         static_cast<std::uint64_t>(chaos_shards.worker_deaths)},
        {"rt_shard_retry_waves_total",
         static_cast<std::uint64_t>(chaos_shards.shard_retries)},
        {"rt_shard_cells_recovered_in_process_total",
         static_cast<std::uint64_t>(chaos_shards.cells_recovered_in_process)},
    };
    for (const auto& check : shard_checks) {
      if (delta(check.metric) != check.expect) {
        std::printf("FAIL: %s moved %llu, ShardStats says %llu\n",
                    check.metric,
                    static_cast<unsigned long long>(delta(check.metric)),
                    static_cast<unsigned long long>(check.expect));
        ok = false;
      }
    }
  }
  std::printf("%s\n", ok ? "service contract holds" : "service contract VIOLATED");
  bench::finish_observability(opts);
  return ok ? 0 : 1;
}
