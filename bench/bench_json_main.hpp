#pragma once

// Custom main for the google-benchmark binaries: adds the same `--json
// PATH` flag the grid drivers have, so CI can track microbenchmark numbers
// (BENCH_nn.json / BENCH_perception.json) alongside the campaign-grid
// records. Every non-aggregate benchmark run becomes one BenchJsonRecord:
// runs_per_sec is the benchmark's items_per_second counter when present
// (campaign runs/sec for the scheduler benchmark), otherwise iterations
// per second; wall_ms is the mean real time per iteration.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "experiments/reporting.hpp"

namespace rt::bench {

class JsonCollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      experiments::BenchJsonRecord rec;
      rec.bench = run.benchmark_name();
      const double wall_s =
          run.iterations > 0
              ? run.real_accumulated_time /
                    static_cast<double>(run.iterations)
              : run.real_accumulated_time;
      rec.wall_ms = wall_s * 1e3;
      const auto it = run.counters.find("items_per_second");
      rec.runs_per_sec = it != run.counters.end()
                             ? static_cast<double>(it->second)
                             : (wall_s > 0.0 ? 1.0 / wall_s : 0.0);
      rec.threads = static_cast<unsigned>(run.threads);
      rec.seed = 0;  // microbenchmarks fix their seeds internally
      records_.push_back(std::move(rec));
    }
    ConsoleReporter::ReportRuns(reports);
  }

  [[nodiscard]] const std::vector<experiments::BenchJsonRecord>& records()
      const {
    return records_;
  }

 private:
  std::vector<experiments::BenchJsonRecord> records_;
};

/// Drop-in replacement for BENCHMARK_MAIN()'s body: strips `--json PATH`
/// from argv, forwards the rest to google-benchmark, and writes the
/// collected records when the flag was given.
inline int bench_json_main(int argc, char** argv) {
  std::string json_path;
  std::vector<char*> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
      continue;
    }
    args.push_back(argv[i]);
  }
  int forwarded = static_cast<int>(args.size());
  benchmark::Initialize(&forwarded, args.data());
  if (benchmark::ReportUnrecognizedArguments(forwarded, args.data())) {
    return 1;
  }
  JsonCollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_path.empty()) {
    experiments::write_bench_json(json_path, reporter.records());
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace rt::bench
