// The observability layer's own contracts: deterministic metric merges,
// strict bucket semantics, ring-buffer wraparound accounting, the binary
// worker payload round-trip, the strict Chrome-trace parser, and — the one
// that guards everything else — tracing passivity: arming the tracer must
// not change a single campaign byte.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "experiments/campaign.hpp"
#include "experiments/campaign_serde.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_reader.hpp"

namespace rt::obs {
namespace {

// ----------------------------------------------------------- metrics

TEST(Metrics, CounterCountsAndRegistrationIsIdempotent) {
  MetricsRegistry reg;
  const Counter a = reg.counter("t_total", "help");
  const Counter b = reg.counter("t_total");  // same underlying metric
  a.inc();
  b.inc(3);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counter("t_total"), 4u);
  EXPECT_EQ(snap.metrics.size(), 1u);
  EXPECT_EQ(snap.metrics[0].help, "help");
}

TEST(Metrics, KindMismatchThrows) {
  MetricsRegistry reg;
  (void)reg.counter("x_total");
  EXPECT_THROW((void)reg.gauge("x_total"), std::logic_error);
  EXPECT_THROW((void)reg.histogram("x_total", {1.0}), std::logic_error);
  (void)reg.histogram("h_ms", {1.0, 2.0});
  EXPECT_THROW((void)reg.histogram("h_ms", {1.0, 3.0}), std::logic_error);
}

TEST(Metrics, DefaultConstructedHandlesAreInert) {
  Counter c;
  Gauge g;
  Histogram h;
  c.inc();
  g.set(5);
  h.observe(1.0);
  EXPECT_EQ(g.value(), 0);
}

TEST(Metrics, HistogramBucketBoundariesArePrometheusLe) {
  MetricsRegistry reg;
  const Histogram h = reg.histogram("lat_ms", {1.0, 2.0, 5.0});
  // An observation exactly AT a bound lands in that bucket (v <= bound).
  h.observe(1.0);
  h.observe(2.0);
  h.observe(5.0);
  h.observe(0.5);   // below the first bound
  h.observe(3.0);   // between 2 and 5
  h.observe(100.0); // above every bound: +Inf
  const auto snap = reg.snapshot();
  const MetricSnapshot* m = snap.find("lat_ms");
  ASSERT_NE(m, nullptr);
  ASSERT_EQ(m->histogram.buckets.size(), 4u);
  EXPECT_EQ(m->histogram.buckets[0], 2u);  // 0.5, 1.0
  EXPECT_EQ(m->histogram.buckets[1], 1u);  // 2.0
  EXPECT_EQ(m->histogram.buckets[2], 2u);  // 3.0, 5.0
  EXPECT_EQ(m->histogram.buckets[3], 1u);  // 100.0
  EXPECT_EQ(m->histogram.count, 6u);
  EXPECT_NEAR(m->histogram.sum, 111.5, 1e-9);
}

TEST(Metrics, CrossThreadMergeIsDeterministic) {
  // Two registries fed the same multiset of observations from differently
  // interleaved threads must snapshot (and render) to identical bytes —
  // the fixed-point sum cells make even the double sums exact.
  const auto feed = [](MetricsRegistry& reg, unsigned threads) {
    const Counter c = reg.counter("ops_total");
    const Histogram h = reg.histogram("v_ms", {1.0, 10.0, 100.0});
    const unsigned total = 8000;
    const unsigned per = total / threads;
    std::vector<std::thread> ts;
    for (unsigned t = 0; t < threads; ++t) {
      ts.emplace_back([&, t] {
        for (unsigned i = t * per; i < (t + 1) * per; ++i) {
          c.inc();
          h.observe((i % 200) * 0.731);
        }
      });
    }
    for (auto& t : ts) t.join();
  };
  MetricsRegistry one;
  MetricsRegistry eight;
  // Same global index range 0..7999, split over 1 vs 8 threads: the same
  // multiset of observations, differently interleaved and sharded.
  feed(one, 1);
  feed(eight, 8);
  EXPECT_EQ(render_json(one.snapshot()), render_json(eight.snapshot()));
  EXPECT_EQ(render_prometheus(one.snapshot()),
            render_prometheus(eight.snapshot()));
}

TEST(Metrics, PrometheusRenderShape) {
  MetricsRegistry reg;
  reg.counter("req_total", "requests").inc(2);
  reg.gauge("depth").set(-3);
  reg.histogram("w_ms", {1.0, 5.0}, "wall").observe(2.0);
  const std::string text = render_prometheus(reg.snapshot());
  EXPECT_NE(text.find("# HELP req_total requests"), std::string::npos);
  EXPECT_NE(text.find("# TYPE req_total counter"), std::string::npos);
  EXPECT_NE(text.find("req_total 2"), std::string::npos);
  EXPECT_NE(text.find("depth -3"), std::string::npos);
  // Cumulative buckets: le="5" includes the le="1" count.
  EXPECT_NE(text.find("w_ms_bucket{le=\"1\"} 0"), std::string::npos);
  EXPECT_NE(text.find("w_ms_bucket{le=\"5\"} 1"), std::string::npos);
  EXPECT_NE(text.find("w_ms_bucket{le=\"+Inf\"} 1"), std::string::npos);
  EXPECT_NE(text.find("w_ms_count 1"), std::string::npos);
}

// ----------------------------------------------------------- tracing

/// Tests share the global tracer; each one arms a fresh configuration and
/// leaves the tracer disarmed and empty behind.
struct TracerGuard {
  explicit TracerGuard(std::size_t capacity) {
    Tracer::global().clear();
    Tracer::global().arm(TraceConfig{capacity});
  }
  ~TracerGuard() {
    Tracer::global().disarm();
    Tracer::global().clear();
  }
};

TEST(Tracing, RingWraparoundDropsOldestAndCounts) {
  TracerGuard guard(8);
  for (int i = 0; i < 20; ++i) {
    record_span("wrap", "test", static_cast<std::uint64_t>(i * 10),
                static_cast<std::uint64_t>(i * 10 + 5),
                static_cast<std::uint64_t>(i), "i");
  }
  EXPECT_EQ(Tracer::global().span_count(), 8u);
  EXPECT_EQ(Tracer::global().dropped_spans(), 12u);
  // The 8 survivors are the NEWEST spans (12..19), oldest first.
  const auto local = Tracer::global().collect_local();
  ASSERT_EQ(local.size(), 8u);
  for (std::size_t i = 0; i < local.size(); ++i) {
    EXPECT_EQ(local[i].second.arg, 12 + i) << "slot " << i;
  }
}

TEST(Tracing, DisarmedRecordingIsANoOp) {
  Tracer::global().clear();
  ASSERT_FALSE(Tracer::global().armed());
  record_span("ignored", "test", 0, 10);
  {
    RT_TRACE_SPAN("also_ignored", "test");
  }
  EXPECT_EQ(Tracer::global().span_count(), 0u);
}

TEST(Tracing, ChromeTraceRoundTripsThroughStrictParser) {
  TracerGuard guard(64);
  {
    RT_TRACE_SPAN("outer", "test", 42, "answer");
    RT_TRACE_SPAN("inner", "test");
  }
  const std::string json = Tracer::global().render_chrome_trace();
  const ParsedTrace parsed = parse_chrome_trace(json);
  EXPECT_TRUE(parsed.has_span("outer"));
  EXPECT_TRUE(parsed.has_span("inner"));
  EXPECT_EQ(parsed.dropped_spans, 0u);
  // The strict parser rejects what a lenient one would shrug off.
  EXPECT_THROW(parse_chrome_trace(json + "x"), TraceParseError);
  EXPECT_THROW(parse_chrome_trace(json.substr(0, json.size() / 2)),
               TraceParseError);
  EXPECT_THROW(parse_chrome_trace("{}"), TraceParseError);
}

TEST(Tracing, SerializeAbsorbRoundTrip) {
  TracerGuard guard(64);
  record_span("worker_side", "test", 100, 250, 7, "cells");
  const std::string payload = Tracer::global().serialize_and_clear();
  EXPECT_EQ(Tracer::global().span_count(), 0u);  // drained
  ASSERT_TRUE(Tracer::global().absorb(payload, /*worker=*/3));
  ASSERT_EQ(Tracer::global().remote_spans().size(), 1u);
  const RemoteSpan& span = Tracer::global().remote_spans()[0];
  EXPECT_EQ(span.name, "worker_side");
  EXPECT_EQ(span.start_ns, 100u);
  EXPECT_EQ(span.dur_ns, 150u);
  EXPECT_EQ(span.arg, 7u);
  EXPECT_EQ(span.arg_name, "cells");
  EXPECT_EQ(span.worker, 3u);
  // The absorbed span exports under the worker's pid lane.
  const ParsedTrace parsed =
      parse_chrome_trace(Tracer::global().render_chrome_trace());
  const auto pids = parsed.span_pids();
  ASSERT_EQ(pids.size(), 1u);
  EXPECT_EQ(pids[0], 3u);
}

TEST(Tracing, CorruptPayloadIsRejectedWholeAndCounted) {
  TracerGuard guard(64);
  record_span("a", "test", 1, 2);
  record_span("b", "test", 3, 4);
  std::string payload = Tracer::global().serialize_and_clear();
  const std::uint64_t failures_before = Tracer::global().absorb_failures();

  std::string truncated = payload.substr(0, payload.size() - 3);
  EXPECT_FALSE(Tracer::global().absorb(truncated, 1));
  std::string trailing = payload + "xyz";
  EXPECT_FALSE(Tracer::global().absorb(trailing, 1));
  std::string flipped = payload;
  flipped[0] ^= 0x40;  // magic
  EXPECT_FALSE(Tracer::global().absorb(flipped, 1));

  EXPECT_EQ(Tracer::global().absorb_failures(), failures_before + 3);
  // No partial merge: a rejected payload contributes zero spans.
  EXPECT_TRUE(Tracer::global().remote_spans().empty());
  // The intact payload still absorbs.
  EXPECT_TRUE(Tracer::global().absorb(payload, 1));
  EXPECT_EQ(Tracer::global().remote_spans().size(), 2u);
}

// --------------------------------------------------------- passivity

TEST(Tracing, ArmedTracerNeverChangesCampaignBytes) {
  // The acceptance gate in miniature: the same NoSh campaign, disarmed vs
  // armed, at 1 and 8 threads, must serialize to identical bytes — spans
  // observe the schedule, they never participate in it.
  experiments::LoopConfig loop;
  experiments::CampaignRunner runner(loop, {});
  const experiments::CampaignSpec spec{
      "DS-1-Disappear-RwoSH-x6", "DS-1", core::AttackVector::kDisappear,
      experiments::AttackMode::kNoSh, 6, 20200613};

  Tracer::global().clear();
  ASSERT_FALSE(Tracer::global().armed());
  const std::string base = experiments::serialize_campaign_result(
      experiments::CampaignScheduler(runner, 1).run(spec));

  for (const unsigned threads : {1u, 8u}) {
    TracerGuard guard(1 << 12);
    const std::string traced = experiments::serialize_campaign_result(
        experiments::CampaignScheduler(runner, threads).run(spec));
    EXPECT_EQ(traced, base) << "tracing changed results at " << threads
                            << " threads";
    EXPECT_GT(Tracer::global().span_count(), 0u)
        << "tracer was armed but recorded nothing";
  }
}

}  // namespace
}  // namespace rt::obs
