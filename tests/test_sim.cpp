#include <gtest/gtest.h>

#include "sim/actor.hpp"
#include "sim/ego_vehicle.hpp"
#include "sim/road.hpp"
#include "sim/scenario_registry.hpp"
#include "sim/world.hpp"

namespace rt::sim {
namespace {

TEST(Actor, FollowsWaypointAtSpeed) {
  Actor a(1, ActorType::kVehicle, {0.0, 0.0}, StartTrigger::immediately(),
          {{{10.0, 0.0}, 2.0}});
  for (int i = 0; i < 10; ++i) a.step(0.5, i * 0.5, 0.0);
  EXPECT_NEAR(a.state().position.x, 10.0, 1e-9);
  EXPECT_TRUE(a.route_finished());
  EXPECT_DOUBLE_EQ(a.state().velocity.x, 0.0);
}

TEST(Actor, TimeTrigger) {
  Actor a(1, ActorType::kPedestrian, {5.0, 0.0}, StartTrigger::at_time(1.0),
          {{{5.0, 10.0}, 1.0}});
  a.step(0.5, 0.5, 0.0);
  EXPECT_FALSE(a.started());
  EXPECT_DOUBLE_EQ(a.state().position.y, 0.0);
  a.step(0.5, 1.0, 0.0);
  EXPECT_TRUE(a.started());
  a.step(0.5, 1.5, 0.0);
  EXPECT_GT(a.state().position.y, 0.0);
}

TEST(Actor, EgoWithinTrigger) {
  Actor a(1, ActorType::kPedestrian, {50.0, -6.0},
          StartTrigger::ego_within(30.0), {{{50.0, 6.0}, 1.0}});
  a.step(0.1, 0.1, 0.0);  // ego 50 m away
  EXPECT_FALSE(a.started());
  a.step(0.1, 0.2, 25.0);  // ego 25 m away
  EXPECT_TRUE(a.started());
}

TEST(Actor, MultiLegRoute) {
  Actor a(1, ActorType::kVehicle, {0.0, 0.0}, StartTrigger::immediately(),
          {{{4.0, 0.0}, 4.0}, {{4.0, 3.0}, 1.0}});
  a.step(1.0, 1.0, 0.0);
  EXPECT_NEAR(a.state().position.x, 4.0, 1e-9);
  for (int i = 0; i < 3; ++i) a.step(1.0, 2.0 + i, 0.0);
  EXPECT_NEAR(a.state().position.y, 3.0, 1e-9);
}

TEST(EgoVehicle, AcceleratesWithJerkLimit) {
  EgoVehicle ego(0.0, 0.0);
  ego.step(0.1, 2.0);
  // Jerk limit (12 m/s^3) allows only 1.2 m/s^2 change in 0.1 s.
  EXPECT_NEAR(ego.acceleration(), 1.2, 1e-9);
  ego.step(0.1, 2.0);
  EXPECT_NEAR(ego.acceleration(), 2.0, 1e-9);
  EXPECT_GT(ego.speed(), 0.0);
}

TEST(EgoVehicle, NoReverseFromBraking) {
  EgoVehicle ego(0.0, 0.5);
  for (int i = 0; i < 50; ++i) ego.step(0.1, -6.0);
  EXPECT_DOUBLE_EQ(ego.speed(), 0.0);
  EXPECT_DOUBLE_EQ(ego.acceleration(), 0.0);
}

TEST(EgoVehicle, SpeedCap) {
  EgoVehicle ego(0.0, kph_to_mps(49.0));
  for (int i = 0; i < 200; ++i) ego.step(0.1, 2.5);
  EXPECT_LE(ego.speed(), ego.limits().max_speed + 1e-9);
}

TEST(EgoVehicle, CommandClamped) {
  EgoVehicle ego(0.0, 10.0);
  for (int i = 0; i < 30; ++i) ego.step(0.1, -100.0);
  // Deceleration saturates at max_decel.
  EXPECT_GE(ego.acceleration(), -ego.limits().max_decel - 1e-9);
}

TEST(Road, CorridorAndLanePredicates) {
  EXPECT_TRUE(Road::in_ego_lane(0.0));
  EXPECT_TRUE(Road::in_ego_lane(1.8));
  EXPECT_FALSE(Road::in_ego_lane(2.0));
  EXPECT_TRUE(Road::overlaps_ego_corridor(0.0, 1.8, 1.8));
  EXPECT_FALSE(Road::overlaps_ego_corridor(3.0, 1.8, 1.8));
  // Boundary: half widths sum to 1.8 -> 1.79 overlaps, 1.81 does not.
  EXPECT_TRUE(Road::overlaps_ego_corridor(1.79, 1.8, 1.8));
  EXPECT_FALSE(Road::overlaps_ego_corridor(1.81, 1.8, 1.8));
}

TEST(World, GroundTruthRelativeState) {
  EgoVehicle ego(10.0, 5.0);
  std::vector<Actor> actors;
  actors.emplace_back(1, ActorType::kVehicle, math::Vec2{40.0, 0.0},
                      StartTrigger::immediately(),
                      std::vector<Waypoint>{{{1000.0, 0.0}, 7.0}});
  World w(ego, std::move(actors));
  w.step(0.1, 0.0);
  const auto gt = w.ground_truth();
  ASSERT_EQ(gt.size(), 1u);
  EXPECT_NEAR(gt[0].rel_position.x, 30.0 + 0.7 - 0.5, 0.2);
  EXPECT_NEAR(gt[0].abs_velocity.x, 7.0, 1e-6);
  EXPECT_NEAR(gt[0].rel_velocity.x, 7.0 - w.ego().speed(), 1e-6);
  EXPECT_TRUE(w.ground_truth_for(1).has_value());
  EXPECT_FALSE(w.ground_truth_for(99).has_value());
}

TEST(World, LongitudinalGap) {
  GroundTruthObject g;
  g.dims = default_dimensions(ActorType::kVehicle);
  g.rel_position = {20.0, 0.0};
  // gap = 20 - 2.3 - 2.3 = 15.4
  EXPECT_NEAR(g.longitudinal_gap(4.6), 15.4, 1e-9);
  g.rel_position = {4.0, 0.0};
  EXPECT_DOUBLE_EQ(g.longitudinal_gap(4.6), 0.0);  // clamped at contact
}

TEST(World, CollisionDetection) {
  EgoVehicle ego(0.0, 0.0);
  std::vector<Actor> actors;
  actors.emplace_back(1, ActorType::kVehicle, math::Vec2{4.0, 0.0});
  World w(ego, std::move(actors));
  EXPECT_TRUE(w.collision());  // centers 4 m apart, lengths 4.6 each

  std::vector<Actor> far;
  far.emplace_back(1, ActorType::kVehicle, math::Vec2{10.0, 0.0});
  World w2(EgoVehicle(0.0, 0.0), std::move(far));
  EXPECT_FALSE(w2.collision());
}

TEST(World, NearestInPath) {
  EgoVehicle ego(0.0, 10.0);
  std::vector<Actor> actors;
  actors.emplace_back(1, ActorType::kVehicle, math::Vec2{50.0, 0.0});
  actors.emplace_back(2, ActorType::kVehicle, math::Vec2{30.0, 0.0});
  actors.emplace_back(3, ActorType::kVehicle,
                      math::Vec2{20.0, Road::kParkingLaneCenter});
  actors.emplace_back(4, ActorType::kVehicle, math::Vec2{-10.0, 0.0});
  World w(ego, std::move(actors));
  const auto nearest = w.nearest_in_path();
  ASSERT_TRUE(nearest.has_value());
  EXPECT_EQ(nearest->id, 2);  // in-lane and closest ahead
}

class ScenarioBuildTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ScenarioBuildTest, ConstructsConsistentWorld) {
  stats::Rng rng(3);
  const Scenario s = make_scenario(GetParam(), rng);
  EXPECT_EQ(s.key, GetParam());
  EXPECT_FALSE(s.actors.empty());
  EXPECT_GT(s.duration, 5.0);
  EXPECT_GT(s.ego_cruise_speed, 0.0);
  // The designated target exists.
  bool found = false;
  for (const auto& a : s.actors) found = found || a.id() == s.target_id;
  EXPECT_TRUE(found);
  World w = s.make_world();
  EXPECT_FALSE(w.collision());
  EXPECT_EQ(w.ground_truth().size(), s.actors.size());
}

INSTANTIATE_TEST_SUITE_P(AllScenarios, ScenarioBuildTest,
                         ::testing::Values("DS-1", "DS-2", "DS-3", "DS-4",
                                           "DS-5", "cut-in",
                                           "staggered-crossing",
                                           "dense-follow"));

TEST(Scenario, Ds5Randomized) {
  stats::Rng r1(1);
  stats::Rng r2(2);
  const Scenario a = make_scenario("DS-5", r1);
  const Scenario b = make_scenario("DS-5", r2);
  // Different seeds produce different NPC layouts.
  bool differs = a.actors.size() != b.actors.size();
  for (std::size_t i = 0; !differs && i < a.actors.size() && i < b.actors.size();
       ++i) {
    differs = a.actors[i].state().position.x != b.actors[i].state().position.x;
  }
  EXPECT_TRUE(differs);
}

TEST(Types, UnitConversions) {
  EXPECT_DOUBLE_EQ(kph_to_mps(45.0), 12.5);
  EXPECT_DOUBLE_EQ(mps_to_kph(12.5), 45.0);
}

}  // namespace
}  // namespace rt::sim
