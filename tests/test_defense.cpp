// Tests of the rt::defense runtime-attack-monitor subsystem: registry
// validation, per-monitor unit behaviour on synthetic perception streams,
// the passivity contract (monitors never change driving outcomes), and
// pinned detection-rate / frames-to-detection / false-positive goldens on
// the attack-vs-defense grid at fixed seeds.

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <vector>

#include "defense/innovation_gate_monitor.hpp"
#include "defense/kinematics_monitor.hpp"
#include "defense/monitor_registry.hpp"
#include "defense/monitor_stack.hpp"
#include "defense/sensor_consistency_monitor.hpp"
#include "experiments/campaign.hpp"
#include "experiments/campaign_grid.hpp"
#include "experiments/defense_grid.hpp"

namespace rt {
namespace {

using defense::AttackMonitor;
using defense::MonitorContext;
using defense::MonitorRegistry;
using defense::MonitorSpec;
using defense::MonitorStack;

// ------------------------------------------------------------- registry

TEST(MonitorRegistry, BuiltinsRegisteredInStableOrder) {
  auto& registry = MonitorRegistry::global();
  ASSERT_GE(registry.size(), 3u);
  const auto keys = registry.keys();
  EXPECT_EQ(keys[0], "innovation-gate");
  EXPECT_EQ(keys[1], "sensor-consistency");
  EXPECT_EQ(keys[2], "kinematics");
  EXPECT_EQ(registry.index_of("innovation-gate"), 0u);
  EXPECT_EQ(registry.index_of("kinematics"), 2u);
  EXPECT_TRUE(registry.contains("sensor-consistency"));
  EXPECT_FALSE(registry.contains("no-such-monitor"));
  for (const auto& key : keys) {
    EXPECT_FALSE(registry.get(key).description.empty()) << key;
    auto monitor = registry.make(key, MonitorContext{});
    ASSERT_NE(monitor, nullptr);
    EXPECT_EQ(monitor->key(), key);
    EXPECT_FALSE(monitor->report().fired);
  }
}

TEST(MonitorRegistry, UnknownKeyListsKnownKeys) {
  auto& registry = MonitorRegistry::global();
  try {
    (void)registry.get("definitely-unknown");
    FAIL() << "expected std::out_of_range";
  } catch (const std::out_of_range& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("definitely-unknown"), std::string::npos);
    EXPECT_NE(message.find("innovation-gate"), std::string::npos);
    EXPECT_NE(message.find("sensor-consistency"), std::string::npos);
    EXPECT_NE(message.find("kinematics"), std::string::npos);
  }
}

TEST(MonitorRegistry, RejectsBadRegistrations) {
  MonitorRegistry registry;
  const MonitorSpec::Factory factory =
      [](const MonitorContext& ctx) -> std::unique_ptr<AttackMonitor> {
    return std::make_unique<defense::KinematicsMonitor>(
        ctx.tuning.kinematics, ctx.dt);
  };
  EXPECT_THROW(registry.register_monitor({"", "empty key", factory}),
               std::invalid_argument);
  EXPECT_THROW(registry.register_monitor({"no-factory", "missing", nullptr}),
               std::invalid_argument);
  registry.register_monitor({"ok", "fine", factory});
  EXPECT_THROW(registry.register_monitor({"ok", "duplicate", factory}),
               std::invalid_argument);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(MonitorStack, UnknownKeyThrowsAndGridBuilderValidatesEagerly) {
  EXPECT_THROW(MonitorStack({"nope"}, MonitorContext{}), std::out_of_range);
  EXPECT_THROW(experiments::CampaignGridBuilder().monitors({"nope"}),
               std::out_of_range);
  EXPECT_THROW(experiments::CampaignGridBuilder().monitors({}),
               std::invalid_argument);
}

// ------------------------------------------ synthetic monitor behaviour

/// A camera track at ~30 m range (bottom edge at v=620 back-projects to
/// 30 m with the default camera), matched and mature.
perception::TrackView track_at_30m(int id = 1) {
  perception::TrackView t;
  t.track_id = id;
  t.cls = sim::ActorType::kVehicle;
  t.bbox = {960.0, 600.0, 90.0, 40.0};
  t.predicted_bbox = t.bbox;
  t.hits = 12;
  t.matched_this_frame = true;
  return t;
}

perception::PerceptionOutput frame_with(perception::TrackView t,
                                        double time) {
  perception::PerceptionOutput out;
  out.time = time;
  out.camera_tracks = {t};
  return out;
}

TEST(InnovationGateMonitor, SustainedMahalanobisSpikesFire) {
  defense::InnovationGateConfig cfg;
  defense::InnovationGateMonitor monitor(
      cfg, perception::CameraModel{},
      perception::DetectorNoiseModel::paper_defaults());
  perception::CameraFrame frame;
  // Spikes below the consecutive requirement never fire.
  for (int i = 0; i < cfg.spike_consecutive - 1; ++i) {
    auto t = track_at_30m();
    t.innovation_m2 = cfg.gate_m2 * 2.0;
    monitor.observe(frame, frame_with(t, 0.1 * i));
  }
  auto calm = track_at_30m();
  calm.innovation_m2 = 1.0;
  monitor.observe(frame, frame_with(calm, 0.5));
  EXPECT_FALSE(monitor.report().fired);
  // A full streak fires.
  for (int i = 0; i < cfg.spike_consecutive; ++i) {
    auto t = track_at_30m();
    t.innovation_m2 = cfg.gate_m2 * 2.0;
    monitor.observe(frame, frame_with(t, 1.0 + 0.1 * i));
  }
  EXPECT_TRUE(monitor.report().fired);
  EXPECT_NE(monitor.report().reason.find("Mahalanobis"), std::string::npos);
}

TEST(InnovationGateMonitor, BiasedDriftAccumulatesZeroMeanDoesNot) {
  const auto noise = perception::DetectorNoiseModel::paper_defaults();
  defense::InnovationGateConfig cfg;
  const double sigma = noise.vehicle.center_x.sigma;
  const double mu = noise.vehicle.center_x.mu;
  {
    // Alternating-sign sub-sigma noise: the CUSUM must stay quiet even
    // after many frames.
    defense::InnovationGateMonitor monitor(cfg, perception::CameraModel{},
                                           noise);
    perception::CameraFrame frame;
    for (int i = 0; i < 400; ++i) {
      auto t = track_at_30m();
      t.innovation_m2 = 1.0;
      t.innovation_x = mu + (i % 2 == 0 ? sigma : -sigma);
      monitor.observe(frame, frame_with(t, 0.1 * i));
    }
    EXPECT_FALSE(monitor.report().fired);
  }
  {
    // A persistent one-sigma bias — the §III-B attacker's envelope —
    // accumulates (1 - slack) per frame and must cross the threshold.
    defense::InnovationGateMonitor monitor(cfg, perception::CameraModel{},
                                           noise);
    perception::CameraFrame frame;
    const int frames_needed = static_cast<int>(
        cfg.cusum_threshold / (1.0 - cfg.cusum_slack)) + 2;
    for (int i = 0; i < frames_needed; ++i) {
      auto t = track_at_30m();
      t.innovation_m2 = 1.0;
      t.innovation_x = mu + sigma;
      monitor.observe(frame, frame_with(t, 0.1 * i));
    }
    EXPECT_TRUE(monitor.report().fired);
    EXPECT_NE(monitor.report().reason.find("CUSUM"), std::string::npos);
  }
}

TEST(InnovationGateMonitor, ClosePassRegimeIsExempt) {
  defense::InnovationGateConfig cfg;
  defense::InnovationGateMonitor monitor(
      cfg, perception::CameraModel{},
      perception::DetectorNoiseModel::paper_defaults());
  perception::CameraFrame frame;
  for (int i = 0; i < 50; ++i) {
    auto t = track_at_30m();
    // Bottom edge at v=820 back-projects to ~8.6 m — inside min_range_m.
    t.predicted_bbox = {960.0, 740.0, 300.0, 160.0};
    t.bbox = t.predicted_bbox;
    t.innovation_m2 = cfg.gate_m2 * 10.0;
    monitor.observe(frame, frame_with(t, 0.1 * i));
  }
  EXPECT_FALSE(monitor.report().fired);
}

perception::WorldTrack world_track(int id, double x, double y,
                                   double vy = 0.0,
                                   sim::ActorType cls =
                                       sim::ActorType::kVehicle) {
  perception::WorldTrack w;
  w.track_id = id;
  w.cls = cls;
  w.rel_position = {x, y};
  w.rel_velocity = {0.0, vy};
  w.hits = 12;
  w.matched_this_frame = true;
  return w;
}

perception::LidarTrack lidar_track(int id, double x, double y) {
  perception::LidarTrack l;
  l.track_id = id;
  l.rel_position = {x, y};
  l.hits = 6;
  return l;
}

TEST(SensorConsistencyMonitor, BreakawayFromCorroboratedTrackFires) {
  defense::SensorConsistencyConfig cfg;
  defense::SensorConsistencyMonitor monitor(
      cfg, perception::CameraModel{},
      perception::DetectorNoiseModel::paper_defaults(),
      perception::LidarConfig{});
  perception::CameraFrame frame;
  perception::PerceptionOutput out;
  // Corroborated phase: camera and LiDAR agree.
  for (int i = 0; i < cfg.min_paired_frames + 2; ++i) {
    out.time = 0.1 * i;
    out.camera_world = {world_track(1, 30.0, 0.0)};
    out.lidar_tracks = {lidar_track(7, 30.0, 0.0)};
    monitor.observe(frame, out);
  }
  EXPECT_FALSE(monitor.report().fired);
  // Hijacked phase: the camera estimate walks out laterally while LiDAR
  // keeps reporting the truth — the Move_Out breakaway signature.
  for (int i = 0; i < cfg.breakaway_consecutive; ++i) {
    out.time = 2.0 + 0.1 * i;
    out.camera_world = {world_track(1, 30.0, 3.0)};
    out.lidar_tracks = {lidar_track(7, 30.0, 0.0)};
    monitor.observe(frame, out);
  }
  EXPECT_TRUE(monitor.report().fired);
  EXPECT_NE(monitor.report().reason.find("broke away"), std::string::npos);
}

TEST(SensorConsistencyMonitor, LidarAbsenceFiresBeyondStreakTail) {
  defense::SensorConsistencyConfig cfg;
  const auto noise = perception::DetectorNoiseModel::paper_defaults();
  defense::SensorConsistencyMonitor monitor(cfg, perception::CameraModel{},
                                            noise,
                                            perception::LidarConfig{});
  perception::CameraFrame frame;
  perception::PerceptionOutput out;
  const int limit =
      static_cast<int>(noise.vehicle.streak_p99 * cfg.absence_p99_mult);
  for (int i = 0; i <= limit; ++i) {
    out.time = 0.1 * i;
    out.camera_world = {};
    out.lidar_tracks = {lidar_track(7, 30.0, 0.0)};
    monitor.observe(frame, out);
    if (i < limit) {
      EXPECT_FALSE(monitor.report().fired) << "fired early at frame " << i;
    }
  }
  EXPECT_TRUE(monitor.report().fired);
  EXPECT_NE(monitor.report().reason.find("missing from camera"),
            std::string::npos);
}

TEST(SensorConsistencyMonitor, GhostCountsOnlyInCoverageFrames) {
  defense::SensorConsistencyConfig cfg;
  defense::SensorConsistencyMonitor monitor(
      cfg, perception::CameraModel{},
      perception::DetectorNoiseModel::paper_defaults(),
      perception::LidarConfig{});
  perception::CameraFrame frame;
  perception::PerceptionOutput out;
  out.lidar_tracks = {};
  // A long camera-only life *outside* LiDAR coverage must not arm the
  // ghost test (nothing to disagree with out there)...
  for (int i = 0; i < cfg.ghost_frames + 10; ++i) {
    out.time = 0.1 * i;
    out.camera_world = {world_track(1, 75.0, 0.0)};
    monitor.observe(frame, out);
  }
  EXPECT_FALSE(monitor.report().fired);
  // ...but the same track never corroborated *inside* coverage is a ghost.
  for (int i = 0; i < cfg.ghost_frames; ++i) {
    out.time = 20.0 + 0.1 * i;
    out.camera_world = {world_track(1, 30.0, 0.0)};
    monitor.observe(frame, out);
  }
  EXPECT_TRUE(monitor.report().fired);
  EXPECT_NE(monitor.report().reason.find("camera-only"), std::string::npos);
}

TEST(SensorConsistencyMonitor, SpuriousPairingFramesDoNotWhitelistGhosts) {
  // A few frames of transient LiDAR clutter inside the pairing gate must
  // not permanently exempt an injected camera-only object from the ghost
  // test (maturity for the breakaway test is min_paired_frames; anything
  // below stays uncorroborated for the ghost counter).
  defense::SensorConsistencyConfig cfg;
  ASSERT_GT(cfg.min_paired_frames, 2);
  defense::SensorConsistencyMonitor monitor(
      cfg, perception::CameraModel{},
      perception::DetectorNoiseModel::paper_defaults(),
      perception::LidarConfig{});
  perception::CameraFrame frame;
  perception::PerceptionOutput out;
  // Two clutter frames pair the ghost...
  for (int i = 0; i < 2; ++i) {
    out.time = 0.1 * i;
    out.camera_world = {world_track(1, 30.0, 0.0)};
    out.lidar_tracks = {lidar_track(7, 30.0, 0.0)};
    monitor.observe(frame, out);
  }
  // ...then the clutter vanishes and the camera-only object persists.
  out.lidar_tracks = {};
  for (int i = 0; i < cfg.ghost_frames; ++i) {
    out.time = 1.0 + 0.1 * i;
    out.camera_world = {world_track(1, 30.0, 0.0)};
    monitor.observe(frame, out);
  }
  EXPECT_TRUE(monitor.report().fired);
  EXPECT_NE(monitor.report().reason.find("camera-only"), std::string::npos);
}

TEST(SensorConsistencyMonitor, SingleFrameJumpForgivenSustainedTeleportNot) {
  defense::SensorConsistencyConfig cfg;
  defense::SensorConsistencyMonitor monitor(
      cfg, perception::CameraModel{},
      perception::DetectorNoiseModel::paper_defaults(),
      perception::LidarConfig{});
  perception::CameraFrame frame;
  perception::PerceptionOutput out;
  out.lidar_tracks = {lidar_track(7, 30.0, 0.0)};
  const auto step = [&](double y, double time) {
    out.time = time;
    out.camera_world = {world_track(1, 30.0, y)};
    // Keep the LiDAR pair glued to the camera estimate so only the
    // teleport test is exercised.
    out.lidar_tracks = {lidar_track(7, 30.0, y)};
    monitor.observe(frame, out);
  };
  // One benign ID-switch-style jump, then stable: forgiven.
  step(0.0, 0.0);
  step(0.0, 0.1);
  step(5.0, 0.2);
  for (int i = 0; i < 10; ++i) step(5.0, 0.3 + 0.1 * i);
  EXPECT_FALSE(monitor.report().fired);
  // Sustained jumping: fires on the second consecutive over-bound jump.
  step(0.0, 2.0);
  step(5.0, 2.1);
  EXPECT_TRUE(monitor.report().fired);
  EXPECT_NE(monitor.report().reason.find("teleported"), std::string::npos);
}

TEST(KinematicsMonitor, ImplausibleLateralRampFiresConstantVelocityDoesNot) {
  defense::KinematicsConfig cfg;
  const double dt = 1.0 / 15.0;
  {
    defense::KinematicsMonitor monitor(cfg, dt);
    perception::CameraFrame frame;
    perception::PerceptionOutput out;
    // Constant lateral velocity: zero acceleration, silent.
    for (int i = 0; i < 60; ++i) {
      out.time = dt * i;
      out.camera_world = {world_track(1, 30.0, 0.1 * i, 1.5)};
      monitor.observe(frame, out);
    }
    EXPECT_FALSE(monitor.report().fired);
  }
  {
    defense::KinematicsMonitor monitor(cfg, dt);
    perception::CameraFrame frame;
    perception::PerceptionOutput out;
    // Lateral velocity ramping 3 m/s per frame = 45 m/s^2: far beyond any
    // vehicle.
    for (int i = 0; i < 30; ++i) {
      out.time = dt * i;
      out.camera_world = {world_track(1, 30.0, 0.0, 3.0 * i)};
      monitor.observe(frame, out);
    }
    EXPECT_TRUE(monitor.report().fired);
    EXPECT_NE(monitor.report().reason.find("lateral"), std::string::npos);
  }
  {
    // The same absurd ramp outside the judged range window: exempt.
    defense::KinematicsMonitor monitor(cfg, dt);
    perception::CameraFrame frame;
    perception::PerceptionOutput out;
    for (int i = 0; i < 30; ++i) {
      out.time = dt * i;
      out.camera_world = {
          world_track(1, cfg.max_range_m + 20.0, 0.0, 3.0 * i)};
      monitor.observe(frame, out);
    }
    EXPECT_FALSE(monitor.report().fired);
  }
}

TEST(MonitorStack, ReportAggregatesEarliestAlert) {
  MonitorContext ctx;
  MonitorStack stack({"innovation-gate", "sensor-consistency", "kinematics"},
                     ctx);
  EXPECT_EQ(stack.size(), 3u);
  perception::CameraFrame frame;
  // Drive only the innovation monitor over its spike threshold.
  for (int i = 0; i < 10; ++i) {
    auto t = track_at_30m();
    t.innovation_m2 = 100.0;
    stack.on_perception(frame, frame_with(t, 1.0 + 0.1 * i));
  }
  const auto report = stack.report();
  EXPECT_TRUE(report.flagged);
  EXPECT_EQ(report.first_monitor, "innovation-gate");
  ASSERT_EQ(report.monitors.size(), 3u);
  EXPECT_TRUE(report.monitors[0].fired);
  EXPECT_FALSE(report.monitors[1].fired);
  EXPECT_FALSE(report.monitors[2].fired);
  EXPECT_GE(report.first_alert_time, 1.0);
  // Detection labels are the harness's job; a raw stack report leaves them.
  EXPECT_FALSE(report.detected);
  EXPECT_EQ(report.frames_to_detection, -1);
}

// ------------------------------------- campaign integration + goldens

experiments::CampaignSpec nosh_spec(const std::string& scenario,
                                    const std::string& monitor, int runs,
                                    std::uint64_t seed) {
  experiments::CampaignSpec spec;
  spec.name = scenario + "-defense";
  spec.scenario = scenario;
  spec.vector = core::AttackVector::kMoveOut;
  spec.mode = experiments::AttackMode::kNoSh;
  spec.runs = runs;
  spec.seed = seed;
  if (!monitor.empty()) spec.monitors = {monitor};
  return spec;
}

TEST(DefenseCampaign, MonitorsArePassiveDrivingOutcomesBitIdentical) {
  // The passivity contract: deploying the full stack changes nothing about
  // the driving outcome of any run — only the defense fields differ.
  experiments::LoopConfig loop;
  experiments::CampaignRunner runner(loop, {});
  auto undefended = nosh_spec("DS-1", "", 6, 777);
  auto defended = nosh_spec("DS-1", "sensor-consistency", 6, 777);
  defended.monitors = {"innovation-gate", "sensor-consistency",
                       "kinematics"};
  const auto a = runner.run(undefended);
  const auto b = runner.run(defended);
  ASSERT_EQ(a.n(), b.n());
  for (int i = 0; i < a.n(); ++i) {
    const auto& ra = a.runs[static_cast<std::size_t>(i)];
    const auto& rb = b.runs[static_cast<std::size_t>(i)];
    EXPECT_EQ(ra.eb, rb.eb) << i;
    EXPECT_EQ(ra.crash, rb.crash) << i;
    EXPECT_DOUBLE_EQ(ra.min_delta, rb.min_delta) << i;
    EXPECT_DOUBLE_EQ(ra.end_time, rb.end_time) << i;
    EXPECT_EQ(ra.attack.triggered, rb.attack.triggered) << i;
    EXPECT_DOUBLE_EQ(ra.attack.start_time, rb.attack.start_time) << i;
  }
  // The undefended twin reports no defense activity at all.
  EXPECT_EQ(a.detected_count(), 0);
  EXPECT_EQ(a.false_alarm_count(), 0);
}

TEST(DefenseCampaign, DetectionSemanticsAreConsistent) {
  experiments::LoopConfig loop;
  experiments::CampaignRunner runner(loop, {});
  const auto result =
      runner.run(nosh_spec("DS-1", "sensor-consistency", 10, 4242));
  const double dt = loop.camera_dt();
  for (const auto& r : result.runs) {
    if (r.defense.detected) {
      EXPECT_TRUE(r.attack.triggered);
      EXPECT_TRUE(r.defense.flagged);
      EXPECT_GE(r.defense.frames_to_detection, 0);
      // Detection is judged per monitor: the credited monitor's own first
      // alert is at/after launch and consistent with the latency, even if
      // another monitor (or the stack's earliest alert) predates launch.
      ASSERT_FALSE(r.defense.detected_by.empty());
      bool credited_found = false;
      for (const auto& m : r.defense.monitors) {
        if (m.monitor != r.defense.detected_by) continue;
        credited_found = true;
        EXPECT_TRUE(m.fired);
        EXPECT_GE(m.first_alert_time, r.attack.start_time - 1e-9);
        EXPECT_NEAR(r.defense.frames_to_detection,
                    (m.first_alert_time - r.attack.start_time) / dt, 0.51);
      }
      EXPECT_TRUE(credited_found);
    } else {
      EXPECT_EQ(r.defense.frames_to_detection, -1);
      EXPECT_TRUE(r.defense.detected_by.empty());
    }
  }
  EXPECT_EQ(result.detected_count(),
            static_cast<int>(result.frames_to_detection().size()));
}

// Pinned goldens, measured at commit time with the counter-based
// Rng::from_stream derivation (exact, not statistical — drift means run or
// monitor semantics changed; re-measure and update in the same PR, noting
// it in CHANGES.md).
//
// Re-pinned for the PR 8 counter-based noise migration: Rng::normal now
// draws one engine word through the inverse CDF, so every run's sensor
// noise moved. Old pins (std::normal_distribution noise; that path and
// its RT_LEGACY_NOISE switch are now removed): DS-1 detected 12/12 with
// median 12 frames,
// cut-in detected 11/12 with median 13 frames.
TEST(GoldenDefense, Ds1NoShSensorConsistencyPins) {
  experiments::LoopConfig loop;
  experiments::CampaignRunner runner(loop, {});
  const auto result =
      runner.run(nosh_spec("DS-1", "sensor-consistency", 12, 4242));
  EXPECT_EQ(result.triggered_count(), 12);
  EXPECT_EQ(result.detected_count(), 10);
  EXPECT_EQ(result.false_alarm_count(), 0);
  EXPECT_NEAR(result.detection_rate(), 10.0 / 12.0, 1e-12);
  EXPECT_NEAR(result.median_frames_to_detection(), 11.0, 1e-9);
}

TEST(GoldenDefense, CutInNoShSensorConsistencyPins) {
  experiments::LoopConfig loop;
  experiments::CampaignRunner runner(loop, {});
  const auto result =
      runner.run(nosh_spec("cut-in", "sensor-consistency", 12, 4242));
  EXPECT_EQ(result.triggered_count(), 12);
  EXPECT_EQ(result.detected_count(), 10);
  EXPECT_EQ(result.false_alarm_count(), 0);
  EXPECT_NEAR(result.median_frames_to_detection(), 12.5, 1e-9);
}

TEST(GoldenDefense, FalsePositivePinsOnNoAttackBaselines) {
  // Full three-monitor stack on golden (no-attack) campaigns: the pinned
  // false-positive budget is zero on every family's baseline.
  experiments::LoopConfig loop;
  experiments::CampaignRunner runner(loop, {});
  for (const char* scenario : {"DS-1", "DS-2", "DS-3", "DS-4", "cut-in"}) {
    experiments::CampaignSpec spec;
    spec.name = std::string(scenario) + "-Golden-stack";
    spec.scenario = scenario;
    spec.mode = experiments::AttackMode::kGolden;
    spec.runs = 8;
    spec.seed = 4242;
    spec.monitors = {"innovation-gate", "sensor-consistency", "kinematics"};
    const auto result = runner.run(spec);
    EXPECT_EQ(result.false_alarm_count(), 0) << scenario;
    EXPECT_EQ(result.detected_count(), 0) << scenario;
  }
}

TEST(DefenseGrid, SmallGridSchemaAndAggregates) {
  experiments::DefenseGridConfig cfg;
  cfg.scenarios = {"DS-1", "cut-in"};
  cfg.monitors = {"", "sensor-consistency"};
  cfg.modes = {experiments::AttackMode::kNoSh,
               experiments::AttackMode::kGolden};
  cfg.runs = 4;
  cfg.seed = 4242;
  cfg.threads = 1;
  experiments::LoopConfig loop;
  const auto grid = experiments::run_defense_grid(cfg, loop, {});
  // 2 scenarios x 2 modes x 2 monitor cells.
  ASSERT_EQ(grid.cells.size(), 8u);
  const auto rows = grid.csv_rows();
  ASSERT_EQ(rows.size(), grid.cells.size());
  for (const auto& row : rows) {
    EXPECT_EQ(row.size(), experiments::DefenseGrid::csv_header().size());
  }
  for (const auto& cell : grid.cells) {
    EXPECT_EQ(cell.n, 4);
    EXPECT_EQ(cell.vector_name, "Move_Out");
    if (cell.mode == "Golden") EXPECT_EQ(cell.triggered, 0);
    if (cell.monitor.empty()) {
      EXPECT_EQ(cell.detected, 0);
      EXPECT_EQ(cell.false_alarms, 0);
      EXPECT_EQ(cell.median_frames_to_detection, -1.0);
    }
  }
  // The undefended and defended cells of the same campaign share driving
  // outcomes (passivity seen through the grid).
  EXPECT_DOUBLE_EQ(grid.cells[0].eb_rate, grid.cells[1].eb_rate);
  EXPECT_DOUBLE_EQ(grid.cells[0].crash_rate, grid.cells[1].crash_rate);
}

TEST(DefenseGrid, GridBuilderMonitorAxisNamingAndSeeds) {
  const auto specs = experiments::CampaignGridBuilder()
                         .runs(3)
                         .seed(100)
                         .modes({experiments::AttackMode::kNoSh})
                         .vectors({core::AttackVector::kMoveOut})
                         .monitors({"", "kinematics"})
                         .scenarios({"DS-1"})
                         .build();
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].name, "DS-1-Move_Out-RwoSH");
  EXPECT_TRUE(specs[0].monitors.empty());
  EXPECT_EQ(specs[0].seed, 100u);
  EXPECT_EQ(specs[1].name, "DS-1-Move_Out-RwoSH-kinematics");
  ASSERT_EQ(specs[1].monitors.size(), 1u);
  EXPECT_EQ(specs[1].monitors[0], "kinematics");
  // Monitor variants of one campaign cell share the cell seed (passive
  // monitors observe the exact same runs); the next cell advances it.
  EXPECT_EQ(specs[1].seed, 100u);
  const auto two_cells = experiments::CampaignGridBuilder()
                             .runs(3)
                             .seed(100)
                             .modes({experiments::AttackMode::kNoSh})
                             .vectors({core::AttackVector::kMoveOut})
                             .monitors({"", "kinematics"})
                             .scenarios({"DS-1", "DS-2"})
                             .build();
  ASSERT_EQ(two_cells.size(), 4u);
  EXPECT_EQ(two_cells[2].seed, 1100u);
  EXPECT_EQ(two_cells[3].seed, 1100u);
}

}  // namespace
}  // namespace rt
