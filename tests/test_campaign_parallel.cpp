#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "experiments/campaign.hpp"
#include "experiments/campaign_grid.hpp"
#include "experiments/sh_training.hpp"
#include "experiments/thread_pool.hpp"

namespace rt::experiments {
namespace {

// --------------------------------------------------------- ThreadPool

TEST(ThreadPool, InlineModeRunsOnCallingThread) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  const auto caller = std::this_thread::get_id();
  std::thread::id ran_on;
  pool.submit([&] { ran_on = std::this_thread::get_id(); });
  pool.wait_idle();
  EXPECT_EQ(ran_on, caller);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  for (unsigned threads : {1u, 2u, 4u, ThreadPool::default_threads()}) {
    ThreadPool pool(threads);
    const int n = 257;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, [&](int i) { hits[static_cast<std::size_t>(i)]++; });
    for (int i = 0; i < n; ++i) {
      EXPECT_EQ(hits[static_cast<std::size_t>(i)].load(), 1)
          << "index " << i << " with " << threads << " threads";
    }
  }
}

TEST(ThreadPool, ParallelForEmptyAndNegative) {
  ThreadPool pool(2);
  int calls = 0;
  pool.parallel_for(0, [&](int) { ++calls; });
  pool.parallel_for(-5, [&](int) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ThreadPool, WaitIdleRethrowsFirstTaskException) {
  for (unsigned threads : {1u, 4u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        {
          pool.parallel_for(8, [](int i) {
            if (i == 3) throw std::runtime_error("boom");
          });
        },
        std::runtime_error);
    // The pool must stay usable after an exception.
    std::atomic<int> ok{0};
    pool.parallel_for(4, [&](int) { ok++; });
    EXPECT_EQ(ok.load(), 4);
  }
}

TEST(ThreadPool, DefaultThreadsAtLeastOne) {
  EXPECT_GE(ThreadPool::default_threads(), 1u);
  ThreadPool pool;  // 0 => default
  EXPECT_GE(pool.size(), 1u);
}

// --------------------------------------------------- CampaignScheduler

void expect_identical(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.n(), b.n());
  EXPECT_EQ(a.eb_count(), b.eb_count());
  EXPECT_EQ(a.crash_count(), b.crash_count());
  EXPECT_EQ(a.triggered_count(), b.triggered_count());
  EXPECT_EQ(a.ids_flagged_count(), b.ids_flagged_count());
  EXPECT_DOUBLE_EQ(a.median_k(), b.median_k());
  EXPECT_EQ(a.detected_count(), b.detected_count());
  EXPECT_EQ(a.false_alarm_count(), b.false_alarm_count());
  EXPECT_DOUBLE_EQ(a.median_frames_to_detection(),
                   b.median_frames_to_detection());
  for (int i = 0; i < a.n(); ++i) {
    const auto& ra = a.runs[static_cast<std::size_t>(i)];
    const auto& rb = b.runs[static_cast<std::size_t>(i)];
    EXPECT_EQ(ra.eb, rb.eb) << "run " << i;
    EXPECT_EQ(ra.crash, rb.crash) << "run " << i;
    EXPECT_EQ(ra.attack.triggered, rb.attack.triggered) << "run " << i;
    EXPECT_DOUBLE_EQ(ra.min_delta, rb.min_delta) << "run " << i;
    EXPECT_DOUBLE_EQ(ra.end_time, rb.end_time) << "run " << i;
    EXPECT_EQ(ra.defense.flagged, rb.defense.flagged) << "run " << i;
    EXPECT_EQ(ra.defense.detected, rb.defense.detected) << "run " << i;
    EXPECT_EQ(ra.defense.frames_to_detection,
              rb.defense.frames_to_detection)
        << "run " << i;
    EXPECT_DOUBLE_EQ(ra.defense.first_alert_time,
                     rb.defense.first_alert_time)
        << "run " << i;
  }
}

CampaignSpec small_spec() {
  return {"DS-1-Disappear-R-x8", "DS-1",
          core::AttackVector::kDisappear, AttackMode::kRobotack, 8, 777};
}

TEST(CampaignScheduler, OneThreadMatchesSerialRunner) {
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  const auto serial = runner.run(small_spec());
  const auto scheduled = CampaignScheduler(runner, 1).run(small_spec());
  expect_identical(serial, scheduled);
}

TEST(CampaignScheduler, HardwareConcurrencyMatchesOneThread) {
  // The determinism contract: aggregates (and every per-run field) are
  // bit-identical at 1 thread and at hardware_concurrency() threads.
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  const auto one = CampaignScheduler(runner, 1).run(small_spec());
  const unsigned hw = ThreadPool::default_threads();
  const auto many = CampaignScheduler(runner, hw).run(small_spec());
  expect_identical(one, many);
  // And at an oversubscribed thread count (> runs, > cores).
  const auto over = CampaignScheduler(runner, 16).run(small_spec());
  expect_identical(one, over);
}

TEST(CampaignScheduler, GridKeepsSpecOrderAndReportsProgress) {
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  std::vector<CampaignSpec> specs{
      {"a", "DS-1", core::AttackVector::kDisappear,
       AttackMode::kNoSh, 3, 1},
      {"b", "DS-3", core::AttackVector::kMoveIn,
       AttackMode::kGolden, 2, 2},
      {"c", "DS-2", core::AttackVector::kMoveOut,
       AttackMode::kNoSh, 4, 3},
  };
  CampaignScheduler scheduler(runner, 4);
  std::vector<int> completions(specs.size(), 0);
  int last_done_c = 0;
  const auto results = scheduler.run_all(
      specs, [&](std::size_t spec, int done, int total) {
        ASSERT_LT(spec, specs.size());
        EXPECT_EQ(total, specs[spec].runs);
        completions[spec]++;
        if (spec == 2) {
          // Per-spec completion counts are monotonically increasing even
          // when runs finish out of order across the grid.
          EXPECT_EQ(done, last_done_c + 1);
          last_done_c = done;
        }
      });
  ASSERT_EQ(results.size(), specs.size());
  for (std::size_t s = 0; s < specs.size(); ++s) {
    EXPECT_EQ(results[s].spec.name, specs[s].name);
    EXPECT_EQ(results[s].n(), specs[s].runs);
    EXPECT_EQ(completions[s], specs[s].runs);
  }
}

TEST(CampaignScheduler, GridMatchesPerSpecSerialRuns) {
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  std::vector<CampaignSpec> specs{
      {"x", "DS-2", core::AttackVector::kDisappear,
       AttackMode::kNoSh, 4, 11},
      {"y", "DS-5", core::AttackVector::kMoveOut,
       AttackMode::kRandomBaseline, 4, 12},
  };
  const auto grid = CampaignScheduler(runner, 0).run_all(specs);
  ASSERT_EQ(grid.size(), 2u);
  for (std::size_t s = 0; s < specs.size(); ++s) {
    expect_identical(runner.run(specs[s]), grid[s]);
  }
}

TEST(CampaignScheduler, SharedOracleRobotackModeIsDeterministic) {
  // Full R mode: concurrent runs query the *same* trained oracle. Inference
  // must be mutation-free (Layer contract), so this is both a determinism
  // check and — under ASan/TSan — a data-race canary for the shared net.
  LoopConfig loop;
  ShTrainingConfig sh;
  sh.delta_triggers = {12.0, 20.0};
  sh.ks = {10, 30};
  sh.repeats = 1;
  sh.seed = 99;
  sh.train.epochs = 10;
  sh.train.patience = 0;
  OracleSet oracles;
  oracles[core::AttackVector::kDisappear] =
      train_oracle(core::AttackVector::kDisappear, loop, sh);
  CampaignRunner runner(loop, oracles);
  const auto one = CampaignScheduler(runner, 1).run(small_spec());
  EXPECT_GT(one.triggered_count(), 0);  // the oracle actually fires
  const auto many = CampaignScheduler(runner, 8).run(small_spec());
  expect_identical(one, many);
}

TEST(CampaignScheduler, NewScenarioFamiliesDeterministicAcrossThreads) {
  // The three extended families (one deterministic cut-in, one two-victim
  // crossing, one randomized dense-traffic) run green through a grid-built
  // campaign with bit-identical 1-vs-N-thread results.
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  const auto specs =
      CampaignGridBuilder()
          .runs(4)
          .seed(2468)
          .modes({AttackMode::kNoSh})
          .vectors({core::AttackVector::kMoveOut})
          .scenarios({"cut-in", "staggered-crossing", "dense-follow"})
          .build();
  ASSERT_EQ(specs.size(), 3u);
  EXPECT_EQ(specs[0].name, "cut-in-Move_Out-RwoSH");
  const auto one = CampaignScheduler(runner, 1).run_all(specs);
  const auto many = CampaignScheduler(runner, 8).run_all(specs);
  ASSERT_EQ(one.size(), many.size());
  for (std::size_t i = 0; i < one.size(); ++i) {
    expect_identical(one[i], many[i]);
  }
}

TEST(CampaignScheduler, DefenseGridDeterministicAcrossThreads) {
  // Monitors consume no randomness and write only their own per-run
  // report, so a monitored grid — including detection outcomes and
  // frames-to-detection — is bit-identical at 1 vs 8 threads.
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  const auto specs =
      CampaignGridBuilder()
          .runs(6)
          .seed(1357)
          .modes({AttackMode::kNoSh, AttackMode::kGolden})
          .vectors({core::AttackVector::kMoveOut})
          .monitors({"innovation-gate", "sensor-consistency", "kinematics"})
          .scenarios({"DS-1", "cut-in"})
          .build();
  ASSERT_EQ(specs.size(), 12u);
  const auto one = CampaignScheduler(runner, 1).run_all(specs);
  const auto many = CampaignScheduler(runner, 8).run_all(specs);
  ASSERT_EQ(one.size(), many.size());
  int detected_total = 0;
  for (std::size_t i = 0; i < one.size(); ++i) {
    expect_identical(one[i], many[i]);
    detected_total += one[i].detected_count();
  }
  // The grid actually detects something (the invariance is not vacuous).
  EXPECT_GT(detected_total, 0);
}

TEST(CampaignRunner, RunOneIsPureFunctionOfSpecAndIndex) {
  LoopConfig loop;
  CampaignRunner runner(loop, {});
  const auto spec = small_spec();
  // Out-of-order and repeated calls return the same result as in-order.
  const RunResult direct = runner.run_one(spec, 5);
  const auto full = runner.run(spec);
  EXPECT_EQ(direct.eb, full.runs[5].eb);
  EXPECT_DOUBLE_EQ(direct.min_delta, full.runs[5].min_delta);
  EXPECT_DOUBLE_EQ(direct.end_time, full.runs[5].end_time);
}

}  // namespace
}  // namespace rt::experiments
