// Curriculum-driven oracle training: curriculum resolution, the parallel
// launch grid's thread-count invariance, golden dataset-hash pins for the
// default (paper) curriculum, and the curriculum-keyed oracle cache.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "experiments/sh_training.hpp"
#include "nn/serialize.hpp"

namespace rt::experiments {
namespace {

using core::AttackVector;

// Small launch grid: 8 launches per vector, sub-second even under ASan.
// (Seed 123, not the GoldenTableII 99: at seed 99 one DS-1 Move_Out launch
// sat on an optimization-level-sensitive branch, so its bits were not
// pinnable across the Release and Debug/ASan suites. The divergence was
// traced to the planner's std::pow(., 2.0), which gcc folds to a multiply
// at -O2 but routes through libm at -O0; it is squared explicitly now, and
// 123 is kept only to avoid re-pinning.)
ShTrainingConfig small_config() {
  ShTrainingConfig cfg;
  cfg.delta_triggers = {12.0, 20.0};
  cfg.ks = {10, 30};
  cfg.repeats = 1;
  cfg.seed = 123;
  cfg.train.epochs = 5;
  cfg.train.patience = 0;
  cfg.threads = 1;
  return cfg;
}

class TempDir {
 public:
  TempDir() {
    dir_ = std::filesystem::temp_directory_path() /
           ("sh_training_test_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter_++));
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  [[nodiscard]] std::string path() const { return dir_.string(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path dir_;
};

// ----------------------------------------------------- curriculum lookup

TEST(ScenariosFor, PaperMappingIsTheDefault) {
  EXPECT_EQ(scenarios_for(AttackVector::kMoveOut),
            (std::vector<std::string>{"DS-1", "DS-2"}));
  EXPECT_EQ(scenarios_for(AttackVector::kDisappear),
            (std::vector<std::string>{"DS-1", "DS-2"}));
  EXPECT_EQ(scenarios_for(AttackVector::kMoveIn),
            (std::vector<std::string>{"DS-3", "DS-4"}));

  // The curriculum-aware overload falls back to the same mapping on a
  // default-constructed config.
  const ShTrainingConfig cfg;
  for (const auto v : {AttackVector::kMoveOut, AttackVector::kDisappear,
                       AttackVector::kMoveIn}) {
    EXPECT_EQ(scenarios_for(v, cfg), scenarios_for(v));
  }
}

TEST(ScenariosFor, CurriculumOverridesPerVector) {
  ShTrainingConfig cfg;
  cfg.curricula[AttackVector::kMoveOut] = {"cut-in", "DS-1", "dense-follow"};
  EXPECT_EQ(scenarios_for(AttackVector::kMoveOut, cfg),
            (std::vector<std::string>{"cut-in", "DS-1", "dense-follow"}));
  // Other vectors keep the paper mapping.
  EXPECT_EQ(scenarios_for(AttackVector::kMoveIn, cfg),
            scenarios_for(AttackVector::kMoveIn));
  // An empty list means "default", not "no scenarios".
  cfg.curricula[AttackVector::kMoveIn] = {};
  EXPECT_EQ(scenarios_for(AttackVector::kMoveIn, cfg),
            scenarios_for(AttackVector::kMoveIn));
}

// ------------------------------------------- launch grid: determinism

TEST(GenerateShDataset, BitIdenticalAtOneAndEightThreads) {
  LoopConfig loop;
  ShTrainingConfig cfg = small_config();
  cfg.threads = 1;
  const nn::Dataset serial =
      generate_sh_dataset(AttackVector::kMoveOut, loop, cfg);
  cfg.threads = 8;
  const nn::Dataset parallel =
      generate_sh_dataset(AttackVector::kMoveOut, loop, cfg);
  ASSERT_EQ(serial.size(), parallel.size());
  EXPECT_EQ(serial.content_hash(), parallel.content_hash());
}

TEST(GenerateShDataset, CurriculumChangesTheDataset) {
  LoopConfig loop;
  ShTrainingConfig cfg = small_config();
  const nn::Dataset paper =
      generate_sh_dataset(AttackVector::kMoveOut, loop, cfg);
  cfg.curricula[AttackVector::kMoveOut] = {"cut-in"};
  const nn::Dataset custom =
      generate_sh_dataset(AttackVector::kMoveOut, loop, cfg);
  EXPECT_GT(custom.size(), 0u);
  EXPECT_NE(paper.content_hash(), custom.content_hash());
}

// Golden pins: the default curriculum must reproduce the pre-curriculum
// serial pipeline bit for bit (the full-grid hash below was measured on
// the serial implementation before the ThreadPool fan-out landed; the
// small-grid hashes pin the same streams at a faster grid). If one of
// these moves, cached oracles and the §IV-B training data changed
// meaning — re-measure on purpose and say so in CHANGES.md.
//
// Re-pinned for the PR 8 counter-based noise migration (Rng::normal now
// draws one engine word through the inverse CDF; the historical
// std::normal_distribution path and its RT_LEGACY_NOISE switch are now
// removed).
// Old pins, for the record: Move_Out 0x84698609b1dde15e, Disappear
// 0xca61304a2a8a193f, Move_In 0x4e840efd0ccf25ba; full default Move_Out
// grid 293 rows / 0xfb0b3087230ddd77.

TEST(GenerateShDataset, GoldenSmallGridHashes) {
  LoopConfig loop;
  const ShTrainingConfig cfg = small_config();
  struct Pin {
    AttackVector v;
    std::size_t size;
    std::uint64_t hash;
  };
  const Pin pins[] = {
      {AttackVector::kMoveOut, 8, 0x2ae70a0aaf7fd7c4ULL},
      {AttackVector::kDisappear, 8, 0x2cf1f2d4cc5f3a5dULL},
      {AttackVector::kMoveIn, 8, 0x246671554a54ae05ULL},
  };
  for (const Pin& pin : pins) {
    const nn::Dataset d = generate_sh_dataset(pin.v, loop, cfg);
    EXPECT_EQ(d.size(), pin.size) << core::to_string(pin.v);
    EXPECT_EQ(d.content_hash(), pin.hash) << core::to_string(pin.v);
  }
}

TEST(GenerateShDataset, GoldenDefaultCurriculumReproducesCachedOracleData) {
  // The full default grid for Move_Out — the exact dataset the cached
  // data/sh_oracle_Move_Out.txt was trained on.
  LoopConfig loop;
  const ShTrainingConfig cfg;  // paper defaults end to end
  const nn::Dataset d = generate_sh_dataset(AttackVector::kMoveOut, loop, cfg);
  EXPECT_EQ(d.size(), 296u);
  EXPECT_EQ(d.content_hash(), 0xc3f227283a163b3fULL);
}

// ------------------------------------------------- curriculum-keyed cache

TEST(OracleCache, FingerprintKeysOnCurriculumAndGrid) {
  const ShTrainingConfig base = small_config();
  const auto v = AttackVector::kMoveOut;
  const std::uint64_t fp = sh_dataset_fingerprint(v, base);

  // Stable under re-evaluation and under changes that do not affect the
  // launch grid (nn hyper-parameters, thread count).
  ShTrainingConfig same = base;
  same.train.epochs = 500;
  same.threads = 16;
  EXPECT_EQ(sh_dataset_fingerprint(v, same), fp);

  ShTrainingConfig curriculum = base;
  curriculum.curricula[v] = {"cut-in"};
  EXPECT_NE(sh_dataset_fingerprint(v, curriculum), fp);
  // A curriculum for a different vector leaves this vector's key alone.
  ShTrainingConfig other = base;
  other.curricula[AttackVector::kMoveIn] = {"cut-in"};
  EXPECT_EQ(sh_dataset_fingerprint(v, other), fp);

  ShTrainingConfig grid = base;
  grid.ks.push_back(50);
  EXPECT_NE(sh_dataset_fingerprint(v, grid), fp);
  ShTrainingConfig seed = base;
  seed.seed += 1;
  EXPECT_NE(sh_dataset_fingerprint(v, seed), fp);
  ShTrainingConfig reps = base;
  reps.repeats += 1;
  EXPECT_NE(sh_dataset_fingerprint(v, reps), fp);

  // The fingerprint lands in the cache filename.
  const std::string path = oracle_cache_path("cache", v, base);
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx",
                static_cast<unsigned long long>(fp));
  EXPECT_NE(path.find(hex), std::string::npos);
  EXPECT_NE(path.find("Move_Out"), std::string::npos);
  EXPECT_NE(path, oracle_cache_path("cache", v, curriculum));
}

TEST(OracleCache, LegacyNameStillLoadsForTheDefaultConfig) {
  TempDir dir;
  LoopConfig loop;
  // Write a (cheaply trained) model under the pre-curriculum filename.
  const auto tiny = small_config();
  const auto trained = train_oracle(AttackVector::kMoveOut, loop, tiny);
  const std::string legacy = dir.path() + "/sh_oracle_Move_Out.txt";
  trained->save(legacy);

  // Loading with the *default* config must fall back to the legacy file —
  // no retraining (a full default-grid retrain would be minutes, and would
  // write the hashed filename).
  const ShTrainingConfig def;
  const auto loaded =
      load_or_train_oracle(AttackVector::kMoveOut, dir.path(), loop, def);
  ASSERT_TRUE(loaded->trained());
  EXPECT_FALSE(std::filesystem::exists(
      oracle_cache_path(dir.path(), AttackVector::kMoveOut, def)));
  // Same weights: identical predictions.
  const double a = trained->predict(20.0, {-5.0, 0.1}, {0.2, 0.0}, 30.0);
  const double b = loaded->predict(20.0, {-5.0, 0.1}, {0.2, 0.0}, 30.0);
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(OracleCache, CurriculumChangeInvalidatesLegacyCache) {
  TempDir dir;
  LoopConfig loop;
  ShTrainingConfig tiny = small_config();
  const auto trained = train_oracle(AttackVector::kMoveOut, loop, tiny);
  trained->save(dir.path() + "/sh_oracle_Move_Out.txt");

  // A non-default curriculum must NOT pick up the legacy file: it trains
  // fresh and caches under the fingerprinted name.
  ShTrainingConfig custom = small_config();
  custom.curricula[AttackVector::kMoveOut] = {"cut-in"};
  const auto oracle =
      load_or_train_oracle(AttackVector::kMoveOut, dir.path(), loop, custom);
  ASSERT_TRUE(oracle->trained());
  const std::string hashed =
      oracle_cache_path(dir.path(), AttackVector::kMoveOut, custom);
  EXPECT_TRUE(std::filesystem::exists(hashed));
  EXPECT_EQ(oracle->provenance().curriculum, "cut-in");

  // Second call round-trips through the fingerprinted cache file.
  const auto reloaded =
      load_or_train_oracle(AttackVector::kMoveOut, dir.path(), loop, custom);
  EXPECT_EQ(reloaded->provenance().curriculum, "cut-in");
  EXPECT_EQ(reloaded->provenance().fingerprint,
            sh_dataset_fingerprint(AttackVector::kMoveOut, custom));
  const double a = oracle->predict(15.0, {-4.0, 0.0}, {0.0, 0.0}, 20.0);
  const double b = reloaded->predict(15.0, {-4.0, 0.0}, {0.0, 0.0}, 20.0);
  EXPECT_DOUBLE_EQ(a, b);
}

// ------------------------------------------------------------ provenance

TEST(OracleProvenance, RecordedByTrainOracleAndSerialized) {
  TempDir dir;
  LoopConfig loop;
  const auto cfg = small_config();
  const auto oracle = train_oracle(AttackVector::kDisappear, loop, cfg);
  EXPECT_EQ(oracle->provenance().vector, "Disappear");
  EXPECT_EQ(oracle->provenance().curriculum, "DS-1,DS-2");
  EXPECT_EQ(oracle->provenance().fingerprint,
            sh_dataset_fingerprint(AttackVector::kDisappear, cfg));

  const std::string path = dir.path() + "/prov.txt";
  oracle->save(path);
  core::SafetyOracle fresh;
  ASSERT_TRUE(fresh.load(path));
  EXPECT_EQ(fresh.provenance().vector, "Disappear");
  EXPECT_EQ(fresh.provenance().curriculum, "DS-1,DS-2");
  EXPECT_EQ(fresh.provenance().fingerprint,
            oracle->provenance().fingerprint);
}

TEST(OracleProvenance, LegacyFilesLoadWithEmptyProvenance) {
  TempDir dir;
  LoopConfig loop;
  const auto cfg = small_config();
  const auto oracle = train_oracle(AttackVector::kMoveOut, loop, cfg);
  // A legacy cache file: model only, no oracle-meta trailer.
  const std::string path = dir.path() + "/legacy.txt";
  nn::save_model_file(path, oracle->net(), {});

  core::SafetyOracle fresh;
  ASSERT_TRUE(fresh.load(path));
  EXPECT_TRUE(fresh.trained());
  EXPECT_TRUE(fresh.provenance().vector.empty());
  EXPECT_TRUE(fresh.provenance().curriculum.empty());
  EXPECT_EQ(fresh.provenance().fingerprint, 0u);
}


// ------------------------------------- trained-weight goldens (perf PR)

// Pins computed on the pre-kernel-refactor implementation (allocating
// Matrix operators, per-batch trainer allocations, serial pipelines). The
// workspace/kernel rewrite must leave every trained bit unchanged.
//
// Re-pinned for the PR 8 counter-based noise migration: the campaign noise
// feeding the training grids moved, the trainer itself did not. Old pins:
// small grid net 0x251492c33d2bb186 / oracle 0x95b4a0960a1ca157 (val loss
// 69.758052867208917), paper-default net 0x9674b244dddd74e1 / oracle
// 0x4c3c5ac199f83a3e.

TEST(TrainedOracleGolden, SmallGridMoveOutWeightsAreBitIdentical) {
  LoopConfig loop;
  ShTrainingConfig cfg;
  cfg.delta_triggers = {8.0, 16.0, 26.0};
  cfg.ks = {8, 24, 48};
  cfg.repeats = 2;
  cfg.seed = 123;
  cfg.threads = 1;
  nn::TrainResult result;
  auto oracle = train_oracle(AttackVector::kMoveOut, loop, cfg, &result);
  EXPECT_EQ(oracle->net().content_hash(), 0x821e0dd461efde73ULL);
  EXPECT_EQ(oracle->content_hash(), 0x93767914af91bdd8ULL);
  EXPECT_EQ(result.final_val_loss, 153.18231636430434);
}

TEST(TrainedOracleGolden, DefaultMoveOutOracleIsUnchangedByTheRefactor) {
  // The full paper-default Move_Out pipeline (DS-1+DS-2 grid, 80-epoch
  // training): the deployed oracle's exact weights and fitted scaler.
  LoopConfig loop;
  ShTrainingConfig cfg;
  cfg.threads = 1;
  auto oracle = train_oracle(AttackVector::kMoveOut, loop, cfg);
  EXPECT_EQ(oracle->net().content_hash(), 0x30df666f2c66b46fULL);
  EXPECT_EQ(oracle->content_hash(), 0xc2210ec90aefa063ULL);
}

// ------------------------------------------------ pooled oracle training

TEST(PooledTraining, OracleSetIsBitIdenticalAtOneAndEightThreads) {
  LoopConfig loop;
  ShTrainingConfig cfg = small_config();
  // Multi-vector curricula so every per-vector pipeline does real work.
  cfg.curricula[AttackVector::kMoveOut] = {"DS-1", "cut-in"};
  cfg.curricula[AttackVector::kDisappear] = {"DS-2", "dense-follow"};

  TempDir serial_dir;
  TempDir pooled_dir;
  ShTrainingConfig serial_cfg = cfg;
  serial_cfg.threads = 1;
  const OracleSet serial =
      load_or_train_oracles(serial_dir.path(), loop, serial_cfg);
  ShTrainingConfig pooled_cfg = cfg;
  pooled_cfg.threads = 8;
  const OracleSet pooled =
      load_or_train_oracles(pooled_dir.path(), loop, pooled_cfg);

  ASSERT_EQ(serial.size(), 3u);
  ASSERT_EQ(pooled.size(), 3u);
  for (const auto& [vector, oracle] : serial) {
    ASSERT_TRUE(pooled.contains(vector));
    EXPECT_EQ(oracle->content_hash(), pooled.at(vector)->content_hash())
        << core::to_string(vector);
    EXPECT_TRUE(pooled.at(vector)->trained());
  }
}

TEST(PooledTraining, CachedFilesRoundTripThroughThePool) {
  LoopConfig loop;
  ShTrainingConfig cfg = small_config();
  cfg.threads = 8;
  TempDir dir;
  const OracleSet trained = load_or_train_oracles(dir.path(), loop, cfg);
  // Second call must load every oracle from the curriculum-keyed cache and
  // reproduce the same weights.
  const OracleSet loaded = load_or_train_oracles(dir.path(), loop, cfg);
  for (const auto& [vector, oracle] : trained) {
    EXPECT_EQ(oracle->content_hash(), loaded.at(vector)->content_hash())
        << core::to_string(vector);
    EXPECT_TRUE(
        std::filesystem::exists(oracle_cache_path(dir.path(), vector, cfg)));
  }
}

}  // namespace
}  // namespace rt::experiments

