// Heap-allocation pins for the destination-passing kernel work: the
// campaign hot paths (Kalman step, oracle inference) must not allocate at
// steady state. A counting global operator new is the only reliable
// observer, so these live in their own binary — the counter covers every
// allocation in the process, including gtest's own.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "core/robotack.hpp"
#include "core/safety_oracle.hpp"
#include "defense/monitor_stack.hpp"
#include "math/matrix.hpp"
#include "nn/mlp.hpp"
#include "obs/trace.hpp"
#include "perception/bbox_track.hpp"
#include "perception/detector_model.hpp"
#include "perception/kalman_filter.hpp"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};

}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rt {
namespace {

// Sanitizer builds interpose their own allocator machinery; the counts are
// not representative there, so the pins only run in plain builds.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif

std::uint64_t allocations() {
  return g_alloc_count.load(std::memory_order_relaxed);
}

TEST(AllocationPins, KalmanFilterStepIsAllocationFreeAfterWarmup) {
  if (kSanitized) GTEST_SKIP() << "allocation counts not meaningful";
  perception::Detection d;
  d.bbox = {100.0, 100.0, 40.0, 40.0};
  perception::BboxTrack track(
      1, d, 1.0 / 15.0,
      perception::DetectorNoiseModel::paper_defaults().vehicle);
  // Warm-up: first steps size the fixed scratch matrices.
  for (int i = 0; i < 3; ++i) {
    track.predict();
    track.update(d);
    (void)track.mahalanobis2(d.bbox);
  }
  const std::uint64_t before = allocations();
  for (int i = 0; i < 200; ++i) {
    track.predict();
    d.bbox.cx += 0.25;
    track.update(d);
    (void)track.mahalanobis2(d.bbox);
  }
  EXPECT_EQ(allocations(), before)
      << "KalmanFilter predict/update/mahalanobis2 allocated on the steady "
         "state path";
}

TEST(AllocationPins, MlpPredictIsAllocationFreeAfterWarmup) {
  if (kSanitized) GTEST_SKIP() << "allocation counts not meaningful";
  stats::Rng rng(7);
  nn::Mlp net = nn::make_safety_hijacker_net(rng);
  math::Matrix x(6, 1, 0.5);
  // Warm-up sizes the thread-local workspace.
  (void)net.predict(x);
  (void)net.predict(x);
  const std::uint64_t before = allocations();
  double sink = 0.0;
  for (int i = 0; i < 100; ++i) {
    x(0, 0) = static_cast<double>(i);
    sink += net.predict(x)(0, 0);
  }
  EXPECT_EQ(allocations(), before)
      << "Mlp::predict allocated on the steady-state path (sink " << sink
      << ")";
}

TEST(AllocationPins, RobotackAttackOnPathIsAllocationFreeAfterWarmup) {
  if (kSanitized) GTEST_SKIP() << "allocation counts not meaningful";
  // The malware's man-in-the-middle step on an ACTIVE Move_Out attack:
  // truth-replica update, trajectory hijack in place, ADS-replica update —
  // all over member scratch, no CameraFrame copy, no heap traffic.
  core::RobotackConfig cfg;
  cfg.vector = core::AttackVector::kMoveOut;
  cfg.timing = core::TimingPolicy::kAtDeltaThreshold;
  cfg.delta_trigger = 30.0;  // triggers immediately at this geometry
  cfg.fixed_k = 1000;        // keep the attack active for the whole pin
  core::Robotack bot(cfg, perception::CameraModel{},
                     perception::DetectorNoiseModel::paper_defaults(),
                     perception::MotConfig{}, 99);

  // A stationary in-lane vehicle at ~30 m (bottom edge v=620).
  perception::Detection det;
  det.cls = sim::ActorType::kVehicle;
  det.bbox = {960.0, 580.0, 96.0, 80.0};
  perception::CameraFrame frame;
  const double dt = cfg.dt;
  for (int i = 0; i < 40; ++i) {
    frame.time += dt;
    frame.detections.clear();
    frame.detections.push_back(det);
    bot.process_in_place(frame, 10.0);
  }
  ASSERT_TRUE(bot.attack_active()) << "attack did not arm during warm-up";
  const std::uint64_t before = allocations();
  for (int i = 0; i < 200; ++i) {
    frame.time += dt;
    frame.detections.clear();
    frame.detections.push_back(det);
    bot.process_in_place(frame, 10.0);
  }
  EXPECT_EQ(allocations(), before)
      << "Robotack::process_in_place allocated on the active-attack path";
  EXPECT_TRUE(bot.attack_active());
  EXPECT_GT(bot.log().frames_perturbed, 0);
}

TEST(AllocationPins, MonitorStackObserveIsAllocationFreeAfterWarmup) {
  if (kSanitized) GTEST_SKIP() << "allocation counts not meaningful";
  // The defense hook sits on the same per-frame hot path: once the track
  // set is stable, a full three-monitor observe allocates nothing.
  defense::MonitorContext ctx;
  defense::MonitorStack stack(
      {"innovation-gate", "sensor-consistency", "kinematics"}, ctx);
  perception::CameraFrame frame;
  perception::PerceptionOutput out;
  perception::TrackView t;
  t.track_id = 1;
  t.cls = sim::ActorType::kVehicle;
  t.bbox = {960.0, 600.0, 90.0, 40.0};
  t.predicted_bbox = t.bbox;
  t.hits = 12;
  t.matched_this_frame = true;
  t.innovation_m2 = 1.0;
  out.camera_tracks = {t};
  perception::WorldTrack w;
  w.track_id = 1;
  w.cls = sim::ActorType::kVehicle;
  w.rel_position = {30.0, 0.0};
  w.rel_velocity = {-2.0, 0.0};
  w.hits = 12;
  w.matched_this_frame = true;
  out.camera_world = {w};
  perception::LidarTrack l;
  l.track_id = 7;
  l.rel_position = {30.0, 0.0};
  l.hits = 6;
  out.lidar_tracks = {l};
  for (int i = 0; i < 10; ++i) {
    out.time = 0.1 * i;
    stack.on_perception(frame, out);
  }
  const std::uint64_t before = allocations();
  for (int i = 0; i < 200; ++i) {
    out.time = 1.0 + 0.1 * i;
    stack.on_perception(frame, out);
  }
  EXPECT_EQ(allocations(), before)
      << "MonitorStack::on_perception allocated at steady state";
}

TEST(AllocationPins, SafetyOraclePredictIsAllocationFreeAfterWarmup) {
  if (kSanitized) GTEST_SKIP() << "allocation counts not meaningful";
  core::SafetyOracle oracle(3);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  stats::Rng rng(4);
  for (int i = 0; i < 64; ++i) {
    xs.push_back({rng.uniform(0.0, 40.0), -5.0, 0.0, 0.0, 0.0,
                  rng.uniform(3.0, 70.0)});
    ys.push_back(xs.back()[0] - 0.3 * xs.back()[5]);
  }
  nn::TrainConfig cfg;
  cfg.epochs = 2;
  oracle.train(nn::Dataset::from_samples(xs, ys), cfg);
  (void)oracle.predict(20.0, {-5.0, 0.0}, {0.0, 0.0}, 30.0);
  (void)oracle.predict(18.0, {-5.0, 0.0}, {0.0, 0.0}, 24.0);
  const std::uint64_t before = allocations();
  double sink = 0.0;
  for (int i = 0; i < 100; ++i) {
    sink += oracle.predict(20.0 + i * 0.1, {-5.0, 0.1}, {0.1, 0.0}, 30.0);
  }
  EXPECT_EQ(allocations(), before)
      << "SafetyOracle::predict allocated on the steady-state path (sink "
      << sink << ")";
}

TEST(AllocationPins, SafetyOraclePredictBatchIsAllocationFreeAfterWarmup) {
  if (kSanitized) GTEST_SKIP() << "allocation counts not meaningful";
  core::SafetyOracle oracle(3);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  stats::Rng rng(4);
  for (int i = 0; i < 64; ++i) {
    xs.push_back({rng.uniform(0.0, 40.0), -5.0, 0.0, 0.0, 0.0,
                  rng.uniform(3.0, 70.0)});
    ys.push_back(xs.back()[0] - 0.3 * xs.back()[5]);
  }
  nn::TrainConfig cfg;
  cfg.epochs = 2;
  oracle.train(nn::Dataset::from_samples(xs, ys), cfg);
  constexpr std::size_t kBatch = 32;
  std::vector<core::OracleQuery> queries(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    queries[i] = {20.0 + 0.1 * static_cast<double>(i), {-5.0, 0.1},
                  {0.1, 0.0}, 30.0};
  }
  std::vector<double> out(kBatch);
  // Warm the thread-local gather matrix + workspace at this batch width.
  oracle.predict_batch(queries, out);
  oracle.predict_batch(queries, out);
  const std::uint64_t before = allocations();
  double sink = 0.0;
  for (int i = 0; i < 100; ++i) {
    queries[0].delta = 20.0 + 0.01 * i;
    oracle.predict_batch(queries, out);
    sink += out[0];
  }
  EXPECT_EQ(allocations(), before)
      << "SafetyOracle::predict_batch allocated on the steady-state path "
      << "(sink " << sink << ")";
}

// Tracing must not buy observability with heap traffic: with the global
// tracer ARMED, the instrumented hot paths stay allocation-free. The only
// allocation tracing ever makes is the one-time per-thread ring
// acquisition, which the warm-up span absorbs.

TEST(AllocationPins, TracedKalmanFilterStepIsAllocationFree) {
  if (kSanitized) GTEST_SKIP() << "allocation counts not meaningful";
  obs::Tracer::global().arm(obs::TraceConfig{1 << 12});
  perception::Detection d;
  d.bbox = {100.0, 100.0, 40.0, 40.0};
  perception::BboxTrack track(
      1, d, 1.0 / 15.0,
      perception::DetectorNoiseModel::paper_defaults().vehicle);
  for (int i = 0; i < 3; ++i) {
    RT_TRACE_SPAN("kf_step_warmup", "test");
    track.predict();
    track.update(d);
    (void)track.mahalanobis2(d.bbox);
  }
  const std::uint64_t before = allocations();
  for (int i = 0; i < 200; ++i) {
    RT_TRACE_SPAN("kf_step", "test", static_cast<std::uint64_t>(i), "i");
    track.predict();
    d.bbox.cx += 0.25;
    track.update(d);
    (void)track.mahalanobis2(d.bbox);
  }
  EXPECT_EQ(allocations(), before)
      << "traced KalmanFilter step allocated — span recording must be free";
  EXPECT_GE(obs::Tracer::global().span_count(), 200u);
  obs::Tracer::global().disarm();
  obs::Tracer::global().clear();
}

TEST(AllocationPins, TracedOraclePredictBatchIsAllocationFree) {
  if (kSanitized) GTEST_SKIP() << "allocation counts not meaningful";
  core::SafetyOracle oracle(3);
  std::vector<std::vector<double>> xs;
  std::vector<double> ys;
  stats::Rng rng(4);
  for (int i = 0; i < 64; ++i) {
    xs.push_back({rng.uniform(0.0, 40.0), -5.0, 0.0, 0.0, 0.0,
                  rng.uniform(3.0, 70.0)});
    ys.push_back(xs.back()[0] - 0.3 * xs.back()[5]);
  }
  nn::TrainConfig cfg;
  cfg.epochs = 2;
  oracle.train(nn::Dataset::from_samples(xs, ys), cfg);
  constexpr std::size_t kBatch = 32;
  std::vector<core::OracleQuery> queries(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    queries[i] = {20.0 + 0.1 * static_cast<double>(i), {-5.0, 0.1},
                  {0.1, 0.0}, 30.0};
  }
  std::vector<double> out(kBatch);
  obs::Tracer::global().arm(obs::TraceConfig{1 << 12});
  {
    RT_TRACE_SPAN("batch_warmup", "test");
    oracle.predict_batch(queries, out);
    oracle.predict_batch(queries, out);
  }
  const std::uint64_t before = allocations();
  double sink = 0.0;
  for (int i = 0; i < 100; ++i) {
    RT_TRACE_SPAN("batch_predict", "test");
    queries[0].delta = 20.0 + 0.01 * i;
    oracle.predict_batch(queries, out);
    sink += out[0];
  }
  EXPECT_EQ(allocations(), before)
      << "traced predict_batch allocated on the steady-state path (sink "
      << sink << ")";
  obs::Tracer::global().disarm();
  obs::Tracer::global().clear();
}

}  // namespace
}  // namespace rt
